#include "ssm/changepoint.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mic::ssm {
namespace {

std::vector<double> SlopeBreakSeries(int n, int change_point, double slope,
                                     double noise_sd, std::uint64_t seed,
                                     double season_amp = 0.0) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (int t = 0; t < n; ++t) {
    double value = 10.0;
    value += season_amp * std::sin(2.0 * M_PI * t / 12.0);
    if (change_point >= 0 && t >= change_point) {
      value += slope * (t - change_point + 1);
    }
    value += rng.NextGaussian(0.0, noise_sd);
    x[t] = value;
  }
  return x;
}

ChangePointOptions FastOptions(bool seasonal = false,
                               double aic_margin = 0.0) {
  ChangePointOptions options;
  options.seasonal = seasonal;
  options.fit.optimizer.max_evaluations = 200;
  options.aic_margin = aic_margin;
  return options;
}

TEST(ChangePointTest, ExactFindsPlantedBreak) {
  const auto x = SlopeBreakSeries(43, 22, 1.2, 0.4, 7);
  ChangePointDetector detector(x, FastOptions());
  auto result = detector.DetectExact();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->has_change);
  EXPECT_NEAR(result->change_point, 22, 2);
}

TEST(ChangePointTest, ApproximateFindsBreakNearby) {
  const auto x = SlopeBreakSeries(43, 22, 1.2, 0.4, 7);
  ChangePointDetector detector(x, FastOptions());
  auto result = detector.DetectApproximate();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->has_change);
  EXPECT_NEAR(result->change_point, 22, 6);
}

TEST(ChangePointTest, ApproximateUsesFarFewerFits) {
  const auto x = SlopeBreakSeries(43, 20, 1.0, 0.4, 11);
  ChangePointDetector exact(x, FastOptions());
  ASSERT_TRUE(exact.DetectExact().ok());
  ChangePointDetector approximate(x, FastOptions());
  ASSERT_TRUE(approximate.DetectApproximate().ok());
  // Exact: 42 candidates + no-change. Approximate: ~log2(43) + 2.
  EXPECT_EQ(exact.fits_performed(), 43);
  EXPECT_LE(approximate.fits_performed(), 10);
}

TEST(ChangePointTest, FlatNoiseRarelyYieldsChangeWithMargin) {
  // Plain AIC (margin 0) over ~40 candidates picks up spurious breaks on
  // pure noise at a substantial rate (select-the-minimum optimism); a
  // modest evidence margin suppresses them while, per the planted-break
  // tests above, keeping full recall on genuine breaks.
  int detections_margin0 = 0;
  int detections_margin4 = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(400 + seed);
    std::vector<double> x(43);
    for (double& value : x) value = rng.NextGaussian(5.0, 1.0);
    ChangePointDetector plain(x, FastOptions());
    auto plain_result = plain.DetectExact();
    ASSERT_TRUE(plain_result.ok());
    if (plain_result->has_change) ++detections_margin0;
    ChangePointDetector margined(x, FastOptions(false, 4.0));
    auto margined_result = margined.DetectExact();
    ASSERT_TRUE(margined_result.ok());
    if (margined_result->has_change) ++detections_margin4;
  }
  EXPECT_LE(detections_margin4, 2);
  EXPECT_LE(detections_margin4, detections_margin0);
}

TEST(ChangePointTest, MarginKeepsRecallOnStrongBreaks) {
  int detections = 0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto x = SlopeBreakSeries(43, 22, 1.2, 0.4, 500 + seed);
    ChangePointDetector detector(x, FastOptions(false, 4.0));
    auto result = detector.DetectExact();
    ASSERT_TRUE(result.ok());
    if (result->has_change) ++detections;
  }
  EXPECT_EQ(detections, 6);
}

TEST(ChangePointTest, SeasonalSeriesWithoutBreakYieldsNoChange) {
  const auto x = SlopeBreakSeries(43, -1, 0.0, 0.3, 17, /*season_amp=*/3.0);
  ChangePointDetector detector(
      x, FastOptions(/*seasonal=*/true, /*aic_margin=*/4.0));
  auto result = detector.DetectExact();
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->has_change);
}

TEST(ChangePointTest, SeasonalBreakDetectedUnderSeasonality) {
  const auto x = SlopeBreakSeries(43, 25, 1.5, 0.3, 19, /*season_amp=*/3.0);
  ChangePointDetector detector(x, FastOptions(/*seasonal=*/true));
  auto result = detector.DetectExact();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->has_change);
  EXPECT_NEAR(result->change_point, 25, 3);
}

TEST(ChangePointTest, AicCurveDipsAtTrueBreak) {
  const auto x = SlopeBreakSeries(43, 18, 1.5, 0.3, 23);
  ChangePointDetector detector(x, FastOptions());
  auto curve = detector.AicCurve();
  ASSERT_TRUE(curve.ok());
  // The minimum of the curve lies near the planted break (Fig. 5).
  int argmin = 1;
  for (int t = 1; t < 43; ++t) {
    if ((*curve)[t] < (*curve)[argmin]) argmin = t;
  }
  EXPECT_NEAR(argmin, 18, 2);
  // Far-away candidates are clearly worse.
  EXPECT_GT((*curve)[5], (*curve)[argmin] + 2.0);
}

TEST(ChangePointTest, CacheMakesSecondRunFree) {
  const auto x = SlopeBreakSeries(43, 20, 1.0, 0.4, 29);
  ChangePointDetector detector(x, FastOptions());
  ASSERT_TRUE(detector.DetectExact().ok());
  const int fits_after_exact = detector.fits_performed();
  ASSERT_TRUE(detector.DetectApproximate().ok());
  EXPECT_EQ(detector.fits_performed(), fits_after_exact);
}

// Property (paper Table VI: "no false-positive case exists ... due to
// the nature of Algorithm 2"): whenever the exact search declares no
// change, the approximate search must also declare no change, because
// its final AIC comparison uses a candidate from the same pool.
class NoFalsePositiveTest : public ::testing::TestWithParam<int> {};

TEST_P(NoFalsePositiveTest, ApproximateNeverFlagsWhenExactDoesNot) {
  Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
  std::vector<double> x(43);
  for (double& value : x) value = rng.NextGaussian(8.0, 1.0);
  ChangePointDetector exact(x, FastOptions());
  ChangePointDetector approximate(x, FastOptions());
  auto exact_result = exact.DetectExact();
  auto approximate_result = approximate.DetectApproximate();
  ASSERT_TRUE(exact_result.ok());
  ASSERT_TRUE(approximate_result.ok());
  if (!exact_result->has_change) {
    EXPECT_FALSE(approximate_result->has_change);
  }
}

INSTANTIATE_TEST_SUITE_P(NoiseSeeds, NoFalsePositiveTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace mic::ssm
