#include "runtime/thread_pool.h"

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "medmodel/medication_model.h"
#include "runtime/task_seed.h"
#include "synth/generator.h"
#include "synth/scenario.h"
#include "trend/pipeline.h"

namespace mic::runtime {
namespace {

TEST(ThreadPoolTest, CoversFullRangeExactlyOnce) {
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    constexpr std::size_t kItems = 1000;
    std::vector<std::atomic<int>> visits(kItems);
    Status status = pool.ParallelFor(
        0, kItems, 7,
        [&visits](std::size_t begin, std::size_t end, std::size_t) {
          for (std::size_t i = begin; i < end; ++i) {
            visits[i].fetch_add(1, std::memory_order_relaxed);
          }
          return Status::OK();
        });
    ASSERT_TRUE(status.ok()) << status;
    for (std::size_t i = 0; i < kItems; ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPoolTest, ChunkDecompositionIsDeterministic) {
  // Chunk boundaries depend only on (range, chunk), never on threads.
  for (int threads : {1, 3, 8}) {
    ThreadPool pool(threads);
    std::mutex mu;
    std::set<std::tuple<std::size_t, std::size_t, std::size_t>> chunks;
    ASSERT_TRUE(pool.ParallelFor(
                        5, 47, 10,
                        [&](std::size_t begin, std::size_t end,
                            std::size_t index) {
                          std::lock_guard<std::mutex> lock(mu);
                          chunks.insert({begin, end, index});
                          return Status::OK();
                        })
                    .ok());
    const std::set<std::tuple<std::size_t, std::size_t, std::size_t>>
        expected = {{5, 15, 0}, {15, 25, 1}, {25, 35, 2},
                    {35, 45, 3}, {45, 47, 4}};
    EXPECT_EQ(chunks, expected) << "threads " << threads;
  }
}

TEST(ThreadPoolTest, FirstErrorPropagatesAndCancels) {
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    std::atomic<int> executed{0};
    Status status = pool.ParallelFor(
        0, 1000, 1,
        [&executed](std::size_t, std::size_t, std::size_t index) {
          executed.fetch_add(1, std::memory_order_relaxed);
          if (index == 3) {
            return Status::NumericError("chunk 3 diverged");
          }
          return Status::OK();
        });
    EXPECT_EQ(status.code(), StatusCode::kNumericError);
    EXPECT_EQ(status.message(), "chunk 3 diverged");
    // Cancellation skips (almost all of) the remaining chunks; with a
    // few threads in flight a handful may still start.
    EXPECT_LT(executed.load(), 1000) << "threads " << threads;
  }
}

TEST(ThreadPoolTest, ExceptionsSurfaceAsInternalStatus) {
  ThreadPool pool(2);
  Status status = pool.ParallelFor(
      0, 8, 1, [](std::size_t, std::size_t, std::size_t index) -> Status {
        if (index == 1) throw std::runtime_error("task blew up");
        return Status::OK();
      });
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("task blew up"), std::string::npos);
}

TEST(ThreadPoolTest, RejectsNestedUse) {
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    Status inner_status = Status::OK();
    std::mutex mu;
    Status status = pool.ParallelFor(
        0, 4, 1, [&](std::size_t, std::size_t, std::size_t) {
          Status nested = pool.ParallelFor(
              0, 2, 1, [](std::size_t, std::size_t, std::size_t) {
                return Status::OK();
              });
          std::lock_guard<std::mutex> lock(mu);
          if (inner_status.ok()) inner_status = nested;
          return Status::OK();
        });
    EXPECT_TRUE(status.ok()) << status;
    EXPECT_EQ(inner_status.code(), StatusCode::kFailedPrecondition)
        << "threads " << threads;
  }
}

TEST(ThreadPoolTest, NullPoolRunsInlineWithSameChunks) {
  std::vector<std::size_t> order;
  Status status = ParallelFor(
      nullptr, 0, 10, 4,
      [&order](std::size_t begin, std::size_t end, std::size_t index) {
        EXPECT_EQ(begin, index * 4);
        EXPECT_EQ(end, std::min<std::size_t>(10, begin + 4));
        order.push_back(index);
        return Status::OK();
      });
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ThreadPoolTest, ValidatesArguments) {
  ThreadPool pool(1);
  auto noop = [](std::size_t, std::size_t, std::size_t) {
    return Status::OK();
  };
  EXPECT_EQ(pool.ParallelFor(0, 4, 0, noop).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(pool.ParallelFor(4, 0, 1, noop).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(pool.ParallelFor(4, 4, 1, noop).ok());  // empty range
}

TEST(ThreadPoolTest, RecordsStageStats) {
  ThreadPool pool(2);
  auto noop = [](std::size_t, std::size_t, std::size_t) {
    return Status::OK();
  };
  ASSERT_TRUE(pool.ParallelFor(0, 100, 10, noop, "stage-a").ok());
  ASSERT_TRUE(pool.ParallelFor(0, 50, 10, noop, "stage-a").ok());
  ASSERT_TRUE(pool.ParallelFor(0, 30, 10, noop, "stage-b").ok());
  const RuntimeStats stats = pool.stats();
  ASSERT_EQ(stats.stages.size(), 2u);
  EXPECT_EQ(stats.stages[0].stage, "stage-a");
  EXPECT_EQ(stats.stages[0].calls, 2u);
  EXPECT_EQ(stats.stages[0].tasks, 15u);
  EXPECT_EQ(stats.stages[0].items, 150u);
  EXPECT_EQ(stats.stages[1].stage, "stage-b");
  EXPECT_EQ(stats.stages[1].tasks, 3u);
  const StageStats totals = stats.Totals();
  EXPECT_EQ(totals.tasks, 18u);
  EXPECT_NE(stats.ToJson().find("\"stage\":\"stage-a\""),
            std::string::npos);
  pool.ResetStats();
  EXPECT_TRUE(pool.stats().stages.empty());
}

TEST(TaskSeedTest, SplitIsDeterministicAndDecorrelated) {
  EXPECT_EQ(SplitTaskSeed(42, 7), SplitTaskSeed(42, 7));
  EXPECT_NE(SplitTaskSeed(42, 7), SplitTaskSeed(42, 8));
  EXPECT_NE(SplitTaskSeed(42, 7), SplitTaskSeed(43, 7));

  // Streams from adjacent task indices must not collide.
  Rng a = MakeTaskRng(42, 0);
  Rng b = MakeTaskRng(42, 1);
  EXPECT_NE(a.NextUint64(), b.NextUint64());
}

TEST(TaskSeedTest, SeededParallelForIsThreadCountInvariant) {
  constexpr std::size_t kTasks = 64;
  auto draw_all = [](int threads) {
    ThreadPool pool(threads);
    std::vector<std::uint64_t> draws(kTasks);
    Status status = ParallelForSeeded(
        &pool, 0, kTasks, 1, /*base_seed=*/20190411,
        [&draws](std::size_t, std::size_t, std::size_t index, Rng& rng) {
          draws[index] = rng.NextUint64();
          return Status::OK();
        });
    EXPECT_TRUE(status.ok());
    return draws;
  };
  EXPECT_EQ(draw_all(1), draw_all(8));
}

// The tentpole determinism contract, end to end: EM log-likelihood and
// detected changepoint months are identical at 1 and 8 threads.
TEST(RuntimeDeterminismTest, EmFitBitIdenticalAcrossThreadCounts) {
  auto world = synth::World::Create(synth::MakeTinyWorldConfig(6, 99));
  ASSERT_TRUE(world.ok());
  synth::ClaimGenerator generator(&*world);
  auto data = generator.Generate();
  ASSERT_TRUE(data.ok());

  auto fit_with_threads = [&](int threads) {
    ThreadPool pool(threads);
    ExecContext context;
    context.pool = &pool;
    auto fitted = medmodel::MedicationModel::Fit(
        data->corpus.month(0), medmodel::MedicationModelOptions{},
        /*prior=*/nullptr, context);
    EXPECT_TRUE(fitted.ok()) << fitted.status();
    return std::move(fitted).value();
  };
  auto one = fit_with_threads(1);
  auto eight = fit_with_threads(8);
  EXPECT_EQ(one->fit_stats().final_log_likelihood,
            eight->fit_stats().final_log_likelihood);
  EXPECT_EQ(one->fit_stats().log_likelihood_trace,
            eight->fit_stats().log_likelihood_trace);
}

TEST(RuntimeDeterminismTest, PipelineChangepointsIdenticalAcrossThreads) {
  auto world = synth::World::Create(synth::MakeTinyWorldConfig(24, 5));
  ASSERT_TRUE(world.ok());
  synth::ClaimGenerator generator(&*world);
  auto data = generator.Generate();
  ASSERT_TRUE(data.ok());

  auto run_with_threads = [&](int threads) {
    ThreadPool pool(threads);
    ExecContext context;
    context.pool = &pool;
    trend::PipelineConfig config;
    config.reproducer.filter_options.min_disease_count = 1;
    config.reproducer.filter_options.min_medicine_count = 1;
    config.analyzer.detector.seasonal = false;  // 24-month window.
    config.analyzer.detector.fit.optimizer.max_evaluations = 120;
    auto result = trend::RunPipeline(data->corpus, config, context);
    EXPECT_TRUE(result.ok()) << result.status();
    return std::move(result).value();
  };
  const trend::PipelineResult one = run_with_threads(1);
  const trend::PipelineResult eight = run_with_threads(8);

  auto expect_identical = [](const std::vector<trend::SeriesAnalysis>& a,
                             const std::vector<trend::SeriesAnalysis>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].has_change, b[i].has_change) << i;
      EXPECT_EQ(a[i].change_point, b[i].change_point) << i;
      EXPECT_EQ(a[i].aic, b[i].aic) << i;           // bitwise
      EXPECT_EQ(a[i].lambda, b[i].lambda) << i;     // bitwise
      EXPECT_EQ(a[i].scale, b[i].scale) << i;
    }
  };
  expect_identical(one.report.diseases, eight.report.diseases);
  expect_identical(one.report.medicines, eight.report.medicines);
  expect_identical(one.report.prescriptions, eight.report.prescriptions);
}

}  // namespace
}  // namespace mic::runtime
