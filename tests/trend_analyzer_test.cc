#include "trend/trend_analyzer.h"

#include <bit>
#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "obs/metrics.h"
#include "runtime/thread_pool.h"

namespace mic::trend {
namespace {

std::vector<double> Series(int n, double level, int change_point,
                           double slope, double noise_sd,
                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (int t = 0; t < n; ++t) {
    double value = level + rng.NextGaussian(0.0, noise_sd);
    if (change_point >= 0 && t >= change_point) {
      value += slope * (t - change_point + 1);
    }
    x[t] = value;
  }
  return x;
}

TrendAnalyzerOptions FastOptions() {
  TrendAnalyzerOptions options;
  options.detector.seasonal = false;
  options.detector.fit.optimizer.max_evaluations = 150;
  return options;
}

TEST(TrendAnalyzerTest, DetectsBreakInSingleSeries) {
  TrendAnalyzer analyzer(FastOptions());
  const auto x = Series(43, 50.0, 20, 6.0, 2.0, 7);
  auto analysis = analyzer.AnalyzeSeries(ExecContext{}, SeriesKind::kPrescription,
                                         DiseaseId(0), MedicineId(0), x);
  ASSERT_TRUE(analysis.ok());
  EXPECT_TRUE(analysis->has_change);
  EXPECT_NEAR(analysis->change_point, 20, 6);
  // Lambda is reported in original units (the series was normalized
  // internally): slope ~ 6 per month.
  EXPECT_NEAR(analysis->lambda, 6.0, 2.0);
  EXPECT_GT(analysis->scale, 1.0);  // SD of this series is well above 1.
}

TEST(TrendAnalyzerTest, FlatSeriesHasNoChange) {
  TrendAnalyzer analyzer(FastOptions());
  const auto x = Series(43, 30.0, -1, 0.0, 1.0, 11);
  auto analysis = analyzer.AnalyzeSeries(ExecContext{}, SeriesKind::kDisease,
                                         DiseaseId(0), MedicineId(), x);
  ASSERT_TRUE(analysis.ok());
  EXPECT_FALSE(analysis->has_change);
  EXPECT_EQ(analysis->change_point, ssm::kNoChangePoint);
  EXPECT_DOUBLE_EQ(analysis->lambda, 0.0);
}

TEST(TrendAnalyzerTest, AnalyzeAllCoversEverySeries) {
  medmodel::SeriesSet set(43);
  // Pair (0, 0) with a break; its disease side flat, medicine side flat.
  const auto broken = Series(43, 40.0, 18, 5.0, 1.5, 3);
  const auto flat = Series(43, 40.0, -1, 0.0, 1.5, 4);
  for (int t = 0; t < 43; ++t) {
    set.Add(DiseaseId(0), MedicineId(0), t, broken[t]);
    set.Add(DiseaseId(1), MedicineId(1), t, flat[t]);
  }
  TrendAnalyzer analyzer(FastOptions());
  auto report = analyzer.AnalyzeAll(ExecContext{}, set);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->prescriptions.size(), 2u);
  EXPECT_EQ(report->diseases.size(), 2u);
  EXPECT_EQ(report->medicines.size(), 2u);
  EXPECT_GE(report->CountChanges(SeriesKind::kPrescription), 1u);
}

TEST(TrendAnalyzerTest, ClassifiesMedicineDerivedChange) {
  TrendReport report;
  SeriesAnalysis disease;
  disease.kind = SeriesKind::kDisease;
  disease.disease = DiseaseId(0);
  disease.has_change = false;
  report.disease_index.emplace(DiseaseId(0), 0);
  report.diseases.push_back(disease);

  SeriesAnalysis medicine;
  medicine.kind = SeriesKind::kMedicine;
  medicine.medicine = MedicineId(0);
  medicine.has_change = true;
  medicine.change_point = 21;
  report.medicine_index.emplace(MedicineId(0), 0);
  report.medicines.push_back(medicine);

  SeriesAnalysis prescription;
  prescription.kind = SeriesKind::kPrescription;
  prescription.disease = DiseaseId(0);
  prescription.medicine = MedicineId(0);
  prescription.has_change = true;
  prescription.change_point = 20;

  TrendAnalyzer analyzer(FastOptions());
  EXPECT_EQ(analyzer.ClassifyPrescriptionChange(report, prescription),
            ChangeCause::kMedicineDerived);
}

TEST(TrendAnalyzerTest, ClassifiesDiseaseDerivedBeforeMedicine) {
  TrendReport report;
  SeriesAnalysis disease;
  disease.disease = DiseaseId(0);
  disease.has_change = true;
  disease.change_point = 19;
  report.disease_index.emplace(DiseaseId(0), 0);
  report.diseases.push_back(disease);

  SeriesAnalysis medicine;
  medicine.medicine = MedicineId(0);
  medicine.has_change = true;
  medicine.change_point = 20;
  report.medicine_index.emplace(MedicineId(0), 0);
  report.medicines.push_back(medicine);

  SeriesAnalysis prescription;
  prescription.disease = DiseaseId(0);
  prescription.medicine = MedicineId(0);
  prescription.has_change = true;
  prescription.change_point = 20;

  TrendAnalyzer analyzer(FastOptions());
  // Disease wins ties (checked first): an epidemiological cause explains
  // the prescription shift without invoking the medicine.
  EXPECT_EQ(analyzer.ClassifyPrescriptionChange(report, prescription),
            ChangeCause::kDiseaseDerived);
}

TEST(TrendAnalyzerTest, ClassifiesPrescriptionDerivedWhenIsolated) {
  TrendReport report;
  SeriesAnalysis disease;
  disease.disease = DiseaseId(0);
  disease.has_change = false;
  report.disease_index.emplace(DiseaseId(0), 0);
  report.diseases.push_back(disease);
  SeriesAnalysis medicine;
  medicine.medicine = MedicineId(0);
  medicine.has_change = true;
  medicine.change_point = 5;  // Far from the prescription break.
  report.medicine_index.emplace(MedicineId(0), 0);
  report.medicines.push_back(medicine);

  SeriesAnalysis prescription;
  prescription.disease = DiseaseId(0);
  prescription.medicine = MedicineId(0);
  prescription.has_change = true;
  prescription.change_point = 25;

  TrendAnalyzer analyzer(FastOptions());
  EXPECT_EQ(analyzer.ClassifyPrescriptionChange(report, prescription),
            ChangeCause::kPrescriptionDerived);
}

TEST(TrendAnalyzerTest, NoChangeClassifiesAsNone) {
  TrendReport report;
  SeriesAnalysis prescription;
  prescription.has_change = false;
  TrendAnalyzer analyzer(FastOptions());
  EXPECT_EQ(analyzer.ClassifyPrescriptionChange(report, prescription),
            ChangeCause::kNone);
}

TEST(TrendAnalyzerTest, CauseNamesAreStable) {
  EXPECT_EQ(ChangeCauseName(ChangeCause::kNone), "none");
  EXPECT_EQ(ChangeCauseName(ChangeCause::kDiseaseDerived),
            "disease-derived");
  EXPECT_EQ(ChangeCauseName(ChangeCause::kMedicineDerived),
            "medicine-derived");
  EXPECT_EQ(ChangeCauseName(ChangeCause::kPrescriptionDerived),
            "prescription-derived");
}

void ExpectAnalysesBitIdentical(
    const std::vector<SeriesAnalysis>& a,
    const std::vector<SeriesAnalysis>& b) {
  ASSERT_EQ(a.size(), b.size());
  auto bits = [](double value) {
    return std::bit_cast<std::uint64_t>(value);
  };
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_TRUE(a[i].disease == b[i].disease);
    EXPECT_TRUE(a[i].medicine == b[i].medicine);
    EXPECT_EQ(a[i].has_change, b[i].has_change);
    EXPECT_EQ(a[i].change_point, b[i].change_point);
    EXPECT_EQ(bits(a[i].lambda), bits(b[i].lambda));
    EXPECT_EQ(bits(a[i].aic), bits(b[i].aic));
    EXPECT_EQ(bits(a[i].aic_without_intervention),
              bits(b[i].aic_without_intervention));
    EXPECT_EQ(bits(a[i].scale), bits(b[i].scale));
    EXPECT_EQ(a[i].fits_performed, b[i].fits_performed);
  }
}

TEST(TrendAnalyzerTest, AnalyzeAllByteIdenticalAcrossThreadCounts) {
  // The candidate-level wavefront must reproduce the report — every
  // field of every analysis, plus the counters — bit for bit at any
  // pool width. Mix breaking, flat, and degenerate (constant) series
  // over both search algorithms to cover the machine's branches.
  medmodel::SeriesSet set(43);
  const auto broken = Series(43, 40.0, 18, 5.0, 1.5, 3);
  const auto flat = Series(43, 40.0, -1, 0.0, 1.5, 4);
  const auto late_break = Series(43, 25.0, 35, 7.0, 1.0, 5);
  for (int t = 0; t < 43; ++t) {
    set.Add(DiseaseId(0), MedicineId(0), t, broken[t]);
    set.Add(DiseaseId(1), MedicineId(1), t, flat[t]);
    set.Add(DiseaseId(2), MedicineId(2), t, late_break[t]);
    set.Add(DiseaseId(0), MedicineId(2), t, 40.0);  // Constant: sd = 0.
  }
  for (bool approximate : {false, true}) {
    TrendAnalyzerOptions options = FastOptions();
    options.use_approximate = approximate;
    TrendAnalyzer analyzer(options);

    auto run = [&](int threads, obs::MetricsRegistry* metrics) {
      runtime::ThreadPool pool(threads);
      ExecContext context;
      context.pool = &pool;
      context.metrics = metrics;
      auto report = analyzer.AnalyzeAll(context, set);
      EXPECT_TRUE(report.ok()) << report.status();
      return std::move(report).value();
    };

    obs::MetricsRegistry metrics1, metrics4, metrics8;
    const TrendReport at1 = run(1, &metrics1);
    const TrendReport at4 = run(4, &metrics4);
    const TrendReport at8 = run(8, &metrics8);
    ExpectAnalysesBitIdentical(at1.diseases, at4.diseases);
    ExpectAnalysesBitIdentical(at1.medicines, at4.medicines);
    ExpectAnalysesBitIdentical(at1.prescriptions, at4.prescriptions);
    ExpectAnalysesBitIdentical(at1.diseases, at8.diseases);
    ExpectAnalysesBitIdentical(at1.medicines, at8.medicines);
    ExpectAnalysesBitIdentical(at1.prescriptions, at8.prescriptions);
    EXPECT_EQ(metrics1.CountersToJson(), metrics4.CountersToJson());
    EXPECT_EQ(metrics1.CountersToJson(), metrics8.CountersToJson());
  }
}

TEST(TrendAnalyzerTest, AnalyzeAllMatchesSerialAnalyzeSeries) {
  // The wavefront AnalyzeAll and the serial AnalyzeSeries drive the
  // same detector machine; spot-check they agree field for field.
  medmodel::SeriesSet set(43);
  const auto broken = Series(43, 40.0, 18, 5.0, 1.5, 3);
  for (int t = 0; t < 43; ++t) {
    set.Add(DiseaseId(0), MedicineId(0), t, broken[t]);
  }
  TrendAnalyzer analyzer(FastOptions());
  auto report = analyzer.AnalyzeAll(ExecContext{}, set);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->prescriptions.size(), 1u);
  auto single = analyzer.AnalyzeSeries(
      ExecContext{}, SeriesKind::kPrescription, DiseaseId(0),
      MedicineId(0), broken);
  ASSERT_TRUE(single.ok());
  const SeriesAnalysis& a = report->prescriptions[0];
  EXPECT_EQ(a.has_change, single->has_change);
  EXPECT_EQ(a.change_point, single->change_point);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.lambda),
            std::bit_cast<std::uint64_t>(single->lambda));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.aic),
            std::bit_cast<std::uint64_t>(single->aic));
  EXPECT_EQ(a.fits_performed, single->fits_performed);
}

TEST(TrendAnalyzerTest, ApproximateAndExactAgreeOnStrongBreak) {
  const auto x = Series(43, 20.0, 24, 8.0, 1.0, 17);
  TrendAnalyzerOptions exact_options = FastOptions();
  exact_options.use_approximate = false;
  TrendAnalyzer exact(exact_options);
  TrendAnalyzer approximate(FastOptions());
  auto exact_analysis = exact.AnalyzeSeries(
      ExecContext{}, SeriesKind::kPrescription, DiseaseId(0), MedicineId(0),
      x);
  auto approximate_analysis = approximate.AnalyzeSeries(
      ExecContext{}, SeriesKind::kPrescription, DiseaseId(0), MedicineId(0),
      x);
  ASSERT_TRUE(exact_analysis.ok());
  ASSERT_TRUE(approximate_analysis.ok());
  EXPECT_TRUE(exact_analysis->has_change);
  EXPECT_TRUE(approximate_analysis->has_change);
  EXPECT_GT(exact_analysis->fits_performed,
            approximate_analysis->fits_performed);
}

}  // namespace
}  // namespace mic::trend
