#include "trend/trend_analyzer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mic::trend {
namespace {

std::vector<double> Series(int n, double level, int change_point,
                           double slope, double noise_sd,
                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (int t = 0; t < n; ++t) {
    double value = level + rng.NextGaussian(0.0, noise_sd);
    if (change_point >= 0 && t >= change_point) {
      value += slope * (t - change_point + 1);
    }
    x[t] = value;
  }
  return x;
}

TrendAnalyzerOptions FastOptions() {
  TrendAnalyzerOptions options;
  options.detector.seasonal = false;
  options.detector.fit.optimizer.max_evaluations = 150;
  return options;
}

TEST(TrendAnalyzerTest, DetectsBreakInSingleSeries) {
  TrendAnalyzer analyzer(FastOptions());
  const auto x = Series(43, 50.0, 20, 6.0, 2.0, 7);
  auto analysis = analyzer.AnalyzeSeries(SeriesKind::kPrescription,
                                         DiseaseId(0), MedicineId(0), x);
  ASSERT_TRUE(analysis.ok());
  EXPECT_TRUE(analysis->has_change);
  EXPECT_NEAR(analysis->change_point, 20, 6);
  // Lambda is reported in original units (the series was normalized
  // internally): slope ~ 6 per month.
  EXPECT_NEAR(analysis->lambda, 6.0, 2.0);
  EXPECT_GT(analysis->scale, 1.0);  // SD of this series is well above 1.
}

TEST(TrendAnalyzerTest, FlatSeriesHasNoChange) {
  TrendAnalyzer analyzer(FastOptions());
  const auto x = Series(43, 30.0, -1, 0.0, 1.0, 11);
  auto analysis = analyzer.AnalyzeSeries(SeriesKind::kDisease,
                                         DiseaseId(0), MedicineId(), x);
  ASSERT_TRUE(analysis.ok());
  EXPECT_FALSE(analysis->has_change);
  EXPECT_EQ(analysis->change_point, ssm::kNoChangePoint);
  EXPECT_DOUBLE_EQ(analysis->lambda, 0.0);
}

TEST(TrendAnalyzerTest, AnalyzeAllCoversEverySeries) {
  medmodel::SeriesSet set(43);
  // Pair (0, 0) with a break; its disease side flat, medicine side flat.
  const auto broken = Series(43, 40.0, 18, 5.0, 1.5, 3);
  const auto flat = Series(43, 40.0, -1, 0.0, 1.5, 4);
  for (int t = 0; t < 43; ++t) {
    set.Add(DiseaseId(0), MedicineId(0), t, broken[t]);
    set.Add(DiseaseId(1), MedicineId(1), t, flat[t]);
  }
  TrendAnalyzer analyzer(FastOptions());
  auto report = analyzer.AnalyzeAll(set);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->prescriptions.size(), 2u);
  EXPECT_EQ(report->diseases.size(), 2u);
  EXPECT_EQ(report->medicines.size(), 2u);
  EXPECT_GE(report->CountChanges(SeriesKind::kPrescription), 1u);
}

TEST(TrendAnalyzerTest, ClassifiesMedicineDerivedChange) {
  TrendReport report;
  SeriesAnalysis disease;
  disease.kind = SeriesKind::kDisease;
  disease.disease = DiseaseId(0);
  disease.has_change = false;
  report.disease_index.emplace(DiseaseId(0), 0);
  report.diseases.push_back(disease);

  SeriesAnalysis medicine;
  medicine.kind = SeriesKind::kMedicine;
  medicine.medicine = MedicineId(0);
  medicine.has_change = true;
  medicine.change_point = 21;
  report.medicine_index.emplace(MedicineId(0), 0);
  report.medicines.push_back(medicine);

  SeriesAnalysis prescription;
  prescription.kind = SeriesKind::kPrescription;
  prescription.disease = DiseaseId(0);
  prescription.medicine = MedicineId(0);
  prescription.has_change = true;
  prescription.change_point = 20;

  TrendAnalyzer analyzer(FastOptions());
  EXPECT_EQ(analyzer.ClassifyPrescriptionChange(report, prescription),
            ChangeCause::kMedicineDerived);
}

TEST(TrendAnalyzerTest, ClassifiesDiseaseDerivedBeforeMedicine) {
  TrendReport report;
  SeriesAnalysis disease;
  disease.disease = DiseaseId(0);
  disease.has_change = true;
  disease.change_point = 19;
  report.disease_index.emplace(DiseaseId(0), 0);
  report.diseases.push_back(disease);

  SeriesAnalysis medicine;
  medicine.medicine = MedicineId(0);
  medicine.has_change = true;
  medicine.change_point = 20;
  report.medicine_index.emplace(MedicineId(0), 0);
  report.medicines.push_back(medicine);

  SeriesAnalysis prescription;
  prescription.disease = DiseaseId(0);
  prescription.medicine = MedicineId(0);
  prescription.has_change = true;
  prescription.change_point = 20;

  TrendAnalyzer analyzer(FastOptions());
  // Disease wins ties (checked first): an epidemiological cause explains
  // the prescription shift without invoking the medicine.
  EXPECT_EQ(analyzer.ClassifyPrescriptionChange(report, prescription),
            ChangeCause::kDiseaseDerived);
}

TEST(TrendAnalyzerTest, ClassifiesPrescriptionDerivedWhenIsolated) {
  TrendReport report;
  SeriesAnalysis disease;
  disease.disease = DiseaseId(0);
  disease.has_change = false;
  report.disease_index.emplace(DiseaseId(0), 0);
  report.diseases.push_back(disease);
  SeriesAnalysis medicine;
  medicine.medicine = MedicineId(0);
  medicine.has_change = true;
  medicine.change_point = 5;  // Far from the prescription break.
  report.medicine_index.emplace(MedicineId(0), 0);
  report.medicines.push_back(medicine);

  SeriesAnalysis prescription;
  prescription.disease = DiseaseId(0);
  prescription.medicine = MedicineId(0);
  prescription.has_change = true;
  prescription.change_point = 25;

  TrendAnalyzer analyzer(FastOptions());
  EXPECT_EQ(analyzer.ClassifyPrescriptionChange(report, prescription),
            ChangeCause::kPrescriptionDerived);
}

TEST(TrendAnalyzerTest, NoChangeClassifiesAsNone) {
  TrendReport report;
  SeriesAnalysis prescription;
  prescription.has_change = false;
  TrendAnalyzer analyzer(FastOptions());
  EXPECT_EQ(analyzer.ClassifyPrescriptionChange(report, prescription),
            ChangeCause::kNone);
}

TEST(TrendAnalyzerTest, CauseNamesAreStable) {
  EXPECT_EQ(ChangeCauseName(ChangeCause::kNone), "none");
  EXPECT_EQ(ChangeCauseName(ChangeCause::kDiseaseDerived),
            "disease-derived");
  EXPECT_EQ(ChangeCauseName(ChangeCause::kMedicineDerived),
            "medicine-derived");
  EXPECT_EQ(ChangeCauseName(ChangeCause::kPrescriptionDerived),
            "prescription-derived");
}

TEST(TrendAnalyzerTest, ApproximateAndExactAgreeOnStrongBreak) {
  const auto x = Series(43, 20.0, 24, 8.0, 1.0, 17);
  TrendAnalyzerOptions exact_options = FastOptions();
  exact_options.use_approximate = false;
  TrendAnalyzer exact(exact_options);
  TrendAnalyzer approximate(FastOptions());
  auto exact_analysis = exact.AnalyzeSeries(
      SeriesKind::kPrescription, DiseaseId(0), MedicineId(0), x);
  auto approximate_analysis = approximate.AnalyzeSeries(
      SeriesKind::kPrescription, DiseaseId(0), MedicineId(0), x);
  ASSERT_TRUE(exact_analysis.ok());
  ASSERT_TRUE(approximate_analysis.ok());
  EXPECT_TRUE(exact_analysis->has_change);
  EXPECT_TRUE(approximate_analysis->has_change);
  EXPECT_GT(exact_analysis->fits_performed,
            approximate_analysis->fits_performed);
}

}  // namespace
}  // namespace mic::trend
