#include "common/strings.h"

#include <gtest/gtest.h>

namespace mic {
namespace {

TEST(SplitTest, BasicSplit) {
  EXPECT_EQ(Split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, PreservesEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StripTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(StripWhitespace("  hello \t\r\n"), "hello");
  EXPECT_EQ(StripWhitespace("x"), "x");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("a b"), "a b");
}

TEST(JoinTest, JoinsWithDelimiter) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(ParseInt64Test, ParsesValidIntegers) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64("-17"), -17);
  EXPECT_EQ(*ParseInt64("  8  "), 8);
  EXPECT_EQ(*ParseInt64("0"), 0);
}

TEST(ParseInt64Test, RejectsGarbage) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("abc").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
}

TEST(ParseDoubleTest, ParsesValidDoubles) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e-3"), -1e-3);
  EXPECT_DOUBLE_EQ(*ParseDouble(" 7 "), 7.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("x").ok());
  EXPECT_FALSE(ParseDouble("1.5pts").ok());
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.3f", 1.0 / 3.0), "0.333");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

}  // namespace
}  // namespace mic
