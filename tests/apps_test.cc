#include "apps/geo_spread.h"
#include "apps/hospital_gap.h"

#include <gtest/gtest.h>

#include "synth/generator.h"
#include "synth/scenario.h"

namespace mic::apps {
namespace {

// A small paper world exercising generics with city delays and the
// antibiotic class bias.
synth::GeneratedData GeneratePaperData() {
  synth::PaperWorldOptions options;
  options.num_months = 24;
  options.num_patients = 600;
  options.num_hospitals = 18;
  options.num_background_diseases = 0;
  auto world = synth::MakePaperWorld(options);
  EXPECT_TRUE(world.ok());
  synth::ClaimGenerator generator(&*world);
  auto data = generator.Generate();
  EXPECT_TRUE(data.ok());
  return std::move(data).value();
}

medmodel::ReproducerOptions FastReproducer() {
  medmodel::ReproducerOptions options;
  options.filter_options.min_disease_count = 1;
  options.filter_options.min_medicine_count = 1;
  options.min_series_total = 0.0;
  options.model_options.max_iterations = 30;
  return options;
}

TEST(GeoSpreadTest, SharesAreSaneAndGenericAppearsAfterRelease) {
  synth::GeneratedData data = GeneratePaperData();
  const Catalog& catalog = data.corpus.catalog();
  const MedicineId original =
      *catalog.medicines().Lookup(synth::names::kAntiPlateletOriginal);
  const MedicineId generic3 =
      *catalog.medicines().Lookup(synth::names::kAntiPlateletGeneric3);
  const std::vector<MedicineId> group = {original, generic3};

  GeoSpreadOptions options;
  options.reproducer = FastReproducer();
  const int entry = synth::PaperWorldEvents::kGenericEntry;
  options.snapshot_months = {entry - 1, entry + 1, 23};
  auto report = AnalyzeGeoSpread(data.corpus, group, options);
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->cells.empty());

  // Before entry, generic share must be ~0 everywhere; after entry it
  // should be positive in at least one non-delayed city.
  double generic_before = 0.0;
  double generic_after = 0.0;
  for (std::uint32_t c = 0; c < catalog.cities().size(); ++c) {
    generic_before += report->Count(CityId(c), generic3, 0);
    generic_after += report->Count(CityId(c), generic3, 2);
  }
  EXPECT_NEAR(generic_before, 0.0, 1e-9);
  EXPECT_GT(generic_after, 0.0);

  // Shares are within [0, 1].
  for (std::uint32_t c = 0; c < catalog.cities().size(); ++c) {
    for (std::size_t s = 0; s < 3; ++s) {
      const double share =
          report->Share(CityId(c), generic3, group, s);
      EXPECT_GE(share, 0.0);
      EXPECT_LE(share, 1.0);
    }
  }
}

TEST(GeoSpreadTest, DelayedCityAdoptsLater) {
  synth::GeneratedData data = GeneratePaperData();
  const Catalog& catalog = data.corpus.catalog();
  const MedicineId generic3 =
      *catalog.medicines().Lookup(synth::names::kAntiPlateletGeneric3);
  auto north = catalog.cities().Lookup("north-city");
  ASSERT_TRUE(north.ok());

  GeoSpreadOptions options;
  options.reproducer = FastReproducer();
  const int entry = synth::PaperWorldEvents::kGenericEntry;
  options.snapshot_months = {entry + 1};
  auto report = AnalyzeGeoSpread(data.corpus, {generic3}, options);
  ASSERT_TRUE(report.ok());
  // north-city has a 14-month delay: one month after the entry it
  // cannot have prescriptions of the generic.
  EXPECT_NEAR(report->Count(*north, generic3, 0), 0.0, 1e-9);
}

TEST(GeoSpreadTest, ValidatesInputs) {
  synth::GeneratedData data = GeneratePaperData();
  GeoSpreadOptions options;
  options.snapshot_months = {2};
  EXPECT_FALSE(AnalyzeGeoSpread(data.corpus, {}, options).ok());
  options.snapshot_months.clear();
  EXPECT_FALSE(
      AnalyzeGeoSpread(data.corpus, {MedicineId(0)}, options).ok());
  options.snapshot_months = {99};
  EXPECT_FALSE(
      AnalyzeGeoSpread(data.corpus, {MedicineId(0)}, options).ok());
}

TEST(HospitalGapTest, SmallHospitalsMisuseAntibiotic) {
  synth::GeneratedData data = GeneratePaperData();
  const Catalog& catalog = data.corpus.catalog();
  const MedicineId antibiotic =
      *catalog.medicines().Lookup(synth::names::kAntibiotic);
  const DiseaseId cold =
      *catalog.diseases().Lookup(synth::names::kColdSyndrome);

  HospitalGapOptions options;
  options.reproducer = FastReproducer();
  auto report = AnalyzeHospitalGap(data.corpus, antibiotic, options);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->classes.size(), 3u);

  auto cold_ratio = [&](const HospitalClassRanking& ranking) {
    for (const DiseaseShare& share : ranking.top_diseases) {
      if (share.disease == cold) return share.ratio;
    }
    return 0.0;
  };
  const double small = cold_ratio(report->classes[0]);
  const double large = cold_ratio(report->classes[2]);
  // The class bias prescribes antibiotics for colds at small hospitals
  // only (Table II's pattern).
  EXPECT_GT(small, 0.0);
  EXPECT_GT(small, large);
}

TEST(HospitalGapTest, RatiosSumToAtMostOne) {
  synth::GeneratedData data = GeneratePaperData();
  const Catalog& catalog = data.corpus.catalog();
  const MedicineId antibiotic =
      *catalog.medicines().Lookup(synth::names::kAntibiotic);
  HospitalGapOptions options;
  options.reproducer = FastReproducer();
  options.top_k = 5;
  auto report = AnalyzeHospitalGap(data.corpus, antibiotic, options);
  ASSERT_TRUE(report.ok());
  for (const HospitalClassRanking& ranking : report->classes) {
    EXPECT_LE(ranking.top_diseases.size(), 5u);
    double total = 0.0;
    double previous = 1.0;
    for (const DiseaseShare& share : ranking.top_diseases) {
      EXPECT_LE(share.ratio, previous + 1e-12);  // Sorted descending.
      previous = share.ratio;
      total += share.ratio;
    }
    EXPECT_LE(total, 1.0 + 1e-9);
  }
}

}  // namespace
}  // namespace mic::apps
