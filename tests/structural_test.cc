#include "ssm/structural.h"

#include <cmath>

#include <gtest/gtest.h>

#include "ssm/kalman.h"

namespace mic::ssm {
namespace {

TEST(SlopeShiftTest, DefinitionMatchesPaper) {
  // w_t = t - t_cp + 1 for t >= t_cp, else 0 (0-based months).
  const std::vector<double> w = SlopeShiftRegressor(3, 7);
  EXPECT_EQ(w, (std::vector<double>{0, 0, 0, 1, 2, 3, 4}));
}

TEST(SlopeShiftTest, NoChangePointIsAllZero) {
  const std::vector<double> w = SlopeShiftRegressor(kNoChangePoint, 5);
  EXPECT_EQ(w, (std::vector<double>(5, 0.0)));
}

TEST(StructuralSpecTest, ParameterAccounting) {
  StructuralSpec ll;
  EXPECT_EQ(ll.NumVarianceParameters(), 2);
  EXPECT_EQ(ll.NumDiffuseStates(), 1);
  EXPECT_EQ(ll.TotalParameters(), 3);

  StructuralSpec ll_s;
  ll_s.seasonal = true;
  EXPECT_EQ(ll_s.NumVarianceParameters(), 3);
  EXPECT_EQ(ll_s.NumDiffuseStates(), 12);
  EXPECT_EQ(ll_s.TotalParameters(), 15);

  StructuralSpec ll_i;
  ll_i.set_change_point(5);
  EXPECT_EQ(ll_i.NumVarianceParameters(), 2);
  EXPECT_EQ(ll_i.NumDiffuseStates(), 1);
  EXPECT_EQ(ll_i.TotalParameters(), 4);  // + lambda

  StructuralSpec full;
  full.seasonal = true;
  full.set_change_point(5);
  EXPECT_EQ(full.NumVarianceParameters(), 3);
  EXPECT_EQ(full.NumDiffuseStates(), 12);
  EXPECT_EQ(full.TotalParameters(), 16);
  EXPECT_EQ(full.ToString(), "LL+S+I(slope@5)");
}

TEST(LayoutTest, StateIndicesAreConsistent) {
  StructuralSpec full;
  full.seasonal = true;
  full.set_change_point(2);
  const StructuralLayout layout = LayoutFor(full);
  EXPECT_EQ(layout.level_index, 0u);
  EXPECT_EQ(layout.seasonal_index, 1u);
  // Intervention is a profiled regression parameter, not a state.
  EXPECT_EQ(layout.state_dim, 12u);

  StructuralSpec ll_i;
  ll_i.set_change_point(2);
  EXPECT_EQ(LayoutFor(ll_i).state_dim, 1u);
}

TEST(BuildTest, ModelValidates) {
  StructuralSpec full;
  full.seasonal = true;
  full.set_change_point(10);
  auto model = BuildStructuralModel(full, {1.0, 0.1, 0.01});
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(model->Validate().ok());
  EXPECT_EQ(model->state_dim(), 12u);
  EXPECT_EQ(model->num_diffuse, 12);
  EXPECT_TRUE(model->time_varying.empty());
}

TEST(BuildTest, RejectsBadInputs) {
  StructuralSpec spec;
  EXPECT_FALSE(BuildStructuralModel(spec, {0.0, 0.1, 0.0}).ok());
  EXPECT_FALSE(BuildStructuralModel(spec, {1.0, -0.1, 0.0}).ok());
  spec.period = 1;
  spec.seasonal = true;
  EXPECT_FALSE(BuildStructuralModel(spec, {1.0, 0.1, 0.0}).ok());
}

TEST(BuildTest, SeasonalTransitionNegatesSum) {
  StructuralSpec spec;
  spec.seasonal = true;
  auto model = BuildStructuralModel(spec, {1.0, 0.0, 0.0});
  ASSERT_TRUE(model.ok());
  la::Vector state(12);
  for (int j = 0; j < 11; ++j) {
    state[1 + j] = (j % 2 == 0) ? 1.0 : -1.0;
  }
  for (int step = 0; step < 36; ++step) {
    la::Vector next = model->transition * state;
    // gamma_{t+1} = -(sum of last 11 gammas).
    double expected = 0.0;
    for (int j = 0; j < 11; ++j) expected -= state[1 + j];
    EXPECT_NEAR(next[1], expected, 1e-12);
    state = next;
  }
}

TEST(RegressionFilterTest, RecoversPlantedLambda) {
  // x_t = 5 + lambda * w_t with tiny noise; the GLS profile must
  // recover lambda accurately.
  StructuralSpec spec;
  auto model = BuildStructuralModel(spec, {0.01, 1e-6, 0.0});
  ASSERT_TRUE(model.ok());
  const int n = 40;
  const std::vector<double> w = SlopeShiftRegressor(20, n);
  std::vector<double> x(n);
  const double lambda = 1.7;
  for (int t = 0; t < n; ++t) x[t] = 5.0 + lambda * w[t];
  auto result = RunFilterWithRegression(*model, x, w);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->identified);
  EXPECT_NEAR(result->lambda, lambda, 1e-3);
  // Profiled likelihood must beat the base likelihood.
  EXPECT_GT(result->profiled_log_likelihood,
            result->base.log_likelihood);
}

TEST(RegressionFilterTest, ZeroRegressorIsUnidentified) {
  StructuralSpec spec;
  auto model = BuildStructuralModel(spec, {1.0, 0.1, 0.0});
  ASSERT_TRUE(model.ok());
  const std::vector<double> x(20, 3.0);
  const std::vector<double> w(20, 0.0);
  auto result = RunFilterWithRegression(*model, x, w);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->identified);
  EXPECT_DOUBLE_EQ(result->lambda, 0.0);
  EXPECT_DOUBLE_EQ(result->profiled_log_likelihood,
                   result->base.log_likelihood);
}

TEST(RegressionFilterTest, ShortRegressorRejected) {
  StructuralSpec spec;
  auto model = BuildStructuralModel(spec, {1.0, 0.1, 0.0});
  ASSERT_TRUE(model.ok());
  const std::vector<double> x(20, 3.0);
  const std::vector<double> w(5, 0.0);
  EXPECT_FALSE(RunFilterWithRegression(*model, x, w).ok());
}

// Parameterized: every spec variant must produce a runnable base model
// whose filter yields a finite likelihood on a benign series.
class SpecVariantTest : public ::testing::TestWithParam<int> {};

TEST_P(SpecVariantTest, FilterRunsOnBenignSeries) {
  const int variant = GetParam();
  StructuralSpec spec;
  spec.seasonal = (variant & 1) != 0;
  if ((variant & 2) != 0) spec.set_change_point(20);
  auto model = BuildStructuralModel(spec, {1.0, 0.05, 0.01});
  ASSERT_TRUE(model.ok());
  std::vector<double> x;
  for (int t = 0; t < 43; ++t) {
    x.push_back(10.0 + 2.0 * std::sin(2.0 * M_PI * t / 12.0) +
                (t >= 20 ? 0.5 * (t - 19) : 0.0));
  }
  auto result = RunFilter(*model, x);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(std::isfinite(result->log_likelihood));
  EXPECT_EQ(result->skipped_diffuse, spec.NumDiffuseStates());
}

INSTANTIATE_TEST_SUITE_P(AllVariants, SpecVariantTest,
                         ::testing::Range(0, 4));

}  // namespace
}  // namespace mic::ssm
