#include "la/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

namespace mic::la {
namespace {

TEST(VectorTest, BasicOps) {
  Vector a{1.0, 2.0, 3.0};
  Vector b{4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 32.0);
  Vector c = a + b;
  EXPECT_DOUBLE_EQ(c[0], 5.0);
  EXPECT_DOUBLE_EQ(c[2], 9.0);
  c -= a;
  EXPECT_DOUBLE_EQ(c[1], 5.0);
  EXPECT_DOUBLE_EQ((2.0 * a)[2], 6.0);
  EXPECT_DOUBLE_EQ(a.Sum(), 6.0);
  EXPECT_DOUBLE_EQ(a.Norm(), std::sqrt(14.0));
}

TEST(MatrixTest, IdentityAndDiagonal) {
  Matrix eye = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(eye(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(eye(0, 1), 0.0);
  Matrix diag = Matrix::Diagonal(Vector{2.0, 3.0});
  EXPECT_DOUBLE_EQ(diag(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(diag(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(diag(0, 1), 0.0);
}

TEST(MatrixTest, MultiplyKnown) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, MatrixVectorProduct) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Vector x{1.0, 1.0};
  Vector y = a * x;
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(MatrixTest, TransposeRoundTrip) {
  Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  Matrix att = a.Transpose().Transpose();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      EXPECT_DOUBLE_EQ(att(r, c), a(r, c));
    }
  }
  EXPECT_EQ(a.Transpose().rows(), 3u);
  EXPECT_EQ(a.Transpose().cols(), 2u);
}

TEST(MatrixTest, OuterProduct) {
  Matrix outer = Outer(Vector{1.0, 2.0}, Vector{3.0, 4.0});
  EXPECT_DOUBLE_EQ(outer(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(outer(1, 1), 8.0);
}

TEST(MatrixTest, QuadraticForm) {
  Matrix m{{2.0, 0.0}, {0.0, 3.0}};
  EXPECT_DOUBLE_EQ(QuadraticForm(Vector{1.0, 2.0}, m), 2.0 + 12.0);
}

TEST(MatrixTest, Symmetrize) {
  Matrix m{{1.0, 2.0}, {4.0, 1.0}};
  m.Symmetrize();
  EXPECT_DOUBLE_EQ(m(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(CholeskyTest, FactorReproducesMatrix) {
  Matrix a{{4.0, 2.0, 0.6},
           {2.0, 5.0, 1.0},
           {0.6, 1.0, 3.0}};
  auto chol = Cholesky(a);
  ASSERT_TRUE(chol.ok());
  Matrix reconstructed = *chol * chol->Transpose();
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(reconstructed(r, c), a(r, c), 1e-12);
    }
  }
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // Eigenvalues 3 and -1.
  EXPECT_FALSE(Cholesky(a).ok());
  EXPECT_EQ(Cholesky(a).status().code(), StatusCode::kNumericError);
}

TEST(CholeskyTest, SolveMatchesDirect) {
  Matrix a{{4.0, 1.0}, {1.0, 3.0}};
  Vector b{1.0, 2.0};
  auto x = CholeskySolve(a, b);
  ASSERT_TRUE(x.ok());
  Vector ax = a * *x;
  EXPECT_NEAR(ax[0], b[0], 1e-12);
  EXPECT_NEAR(ax[1], b[1], 1e-12);
}

TEST(SolveTest, InverseRoundTrip) {
  Matrix a{{2.0, 1.0, 0.0}, {1.0, 3.0, 1.0}, {0.0, 1.0, 2.0}};
  auto inverse = Inverse(a);
  ASSERT_TRUE(inverse.ok());
  Matrix product = a * *inverse;
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(product(r, c), r == c ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(SolveTest, SingularFails) {
  Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_FALSE(Inverse(a).ok());
}

TEST(SolveTest, PivotingHandlesZeroLeadingEntry) {
  Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  Matrix b{{1.0}, {2.0}};
  auto x = Solve(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)(0, 0), 2.0, 1e-12);
  EXPECT_NEAR((*x)(1, 0), 1.0, 1e-12);
}

TEST(LogDetTest, MatchesKnownValue) {
  Matrix a{{2.0, 0.0}, {0.0, 8.0}};
  auto logdet = LogDet(a);
  ASSERT_TRUE(logdet.ok());
  EXPECT_NEAR(*logdet, std::log(16.0), 1e-12);
}

// Property sweep: random SPD matrices A = B B' + n I stay solvable and
// solutions verify A x = b.
class CholeskyPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CholeskyPropertyTest, RandomSpdSolves) {
  const int seed = GetParam();
  // Simple LCG for test-local determinism.
  std::uint64_t state = static_cast<std::uint64_t>(seed) * 2654435761u + 1;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 11) * 0x1.0p-53 - 0.5;
  };
  const std::size_t n = 2 + static_cast<std::size_t>(seed % 6);
  Matrix b(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) b(r, c) = next();
  }
  Matrix a = b * b.Transpose();
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  Vector rhs(n);
  for (std::size_t i = 0; i < n; ++i) rhs[i] = next();

  auto x = CholeskySolve(a, rhs);
  ASSERT_TRUE(x.ok());
  Vector ax = a * *x;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(ax[i], rhs[i], 1e-9);
  }
  auto logdet = LogDet(a);
  ASSERT_TRUE(logdet.ok());
  EXPECT_TRUE(std::isfinite(*logdet));
}

INSTANTIATE_TEST_SUITE_P(RandomMatrices, CholeskyPropertyTest,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace mic::la
