// Tests for the §IX extensions: intervention shapes beyond the slope
// shift, the multi-regressor GLS profile, greedy multi-break detection,
// and alternative selection criteria.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ssm/changepoint.h"
#include "ssm/decompose.h"

namespace mic::ssm {
namespace {

TEST(InterventionRegressorTest, ShapesMatchDefinitions) {
  EXPECT_EQ(InterventionRegressor({3, InterventionKind::kSlopeShift}, 6),
            (std::vector<double>{0, 0, 0, 1, 2, 3}));
  EXPECT_EQ(InterventionRegressor({3, InterventionKind::kLevelShift}, 6),
            (std::vector<double>{0, 0, 0, 1, 1, 1}));
  EXPECT_EQ(InterventionRegressor({3, InterventionKind::kPulse}, 6),
            (std::vector<double>{0, 0, 0, 1, 0, 0}));
  // No change point -> all zero for every kind.
  for (InterventionKind kind :
       {InterventionKind::kSlopeShift, InterventionKind::kLevelShift,
        InterventionKind::kPulse}) {
    EXPECT_EQ(InterventionRegressor({kNoChangePoint, kind}, 4),
              (std::vector<double>(4, 0.0)));
  }
}

TEST(InterventionKindTest, NamesAreStable) {
  EXPECT_EQ(InterventionKindName(InterventionKind::kSlopeShift), "slope");
  EXPECT_EQ(InterventionKindName(InterventionKind::kLevelShift), "level");
  EXPECT_EQ(InterventionKindName(InterventionKind::kPulse), "pulse");
}

TEST(MultiRegressionFilterTest, RecoversTwoPlantedCoefficients) {
  StructuralSpec spec;
  auto model = BuildStructuralModel(spec, {0.01, 1e-8, 0.0});
  ASSERT_TRUE(model.ok());
  const int n = 40;
  const auto w1 = InterventionRegressor({10, InterventionKind::kSlopeShift},
                                        n);
  const auto w2 = InterventionRegressor({25, InterventionKind::kLevelShift},
                                        n);
  std::vector<double> x(n);
  for (int t = 0; t < n; ++t) {
    x[t] = 3.0 + 0.8 * w1[t] - 4.0 * w2[t];
  }
  auto result = RunFilterWithRegressors(*model, x, {w1, w2});
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->identified);
  ASSERT_EQ(result->lambdas.size(), 2u);
  EXPECT_NEAR(result->lambdas[0], 0.8, 1e-2);
  EXPECT_NEAR(result->lambdas[1], -4.0, 0.1);
  EXPECT_GT(result->profiled_log_likelihood,
            result->base.log_likelihood);
}

TEST(MultiRegressionFilterTest, MatchesSingleRegressorSpecialization) {
  StructuralSpec spec;
  auto model = BuildStructuralModel(spec, {0.5, 0.05, 0.0});
  ASSERT_TRUE(model.ok());
  const int n = 35;
  const auto w = InterventionRegressor({15, InterventionKind::kSlopeShift},
                                       n);
  Rng rng(3);
  std::vector<double> x(n);
  for (int t = 0; t < n; ++t) {
    x[t] = 5.0 + 0.6 * w[t] + rng.NextGaussian(0.0, 0.5);
  }
  auto single = RunFilterWithRegression(*model, x, w);
  auto multi = RunFilterWithRegressors(*model, x, {w});
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(multi.ok());
  EXPECT_NEAR(single->lambda, multi->lambdas[0], 1e-9);
  EXPECT_NEAR(single->profiled_log_likelihood,
              multi->profiled_log_likelihood, 1e-9);
}

TEST(MultiRegressionFilterTest, CollinearRegressorsUnidentified) {
  StructuralSpec spec;
  auto model = BuildStructuralModel(spec, {1.0, 0.1, 0.0});
  ASSERT_TRUE(model.ok());
  const int n = 30;
  const auto w = InterventionRegressor({10, InterventionKind::kSlopeShift},
                                       n);
  std::vector<double> x(n, 2.0);
  auto result = RunFilterWithRegressors(*model, x, {w, w});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->identified);
  EXPECT_DOUBLE_EQ(result->profiled_log_likelihood,
                   result->base.log_likelihood);
}

TEST(MultiRegressionFilterTest, HandlesMissingObservations) {
  StructuralSpec spec;
  auto model = BuildStructuralModel(spec, {0.2, 0.02, 0.0});
  ASSERT_TRUE(model.ok());
  const int n = 36;
  const auto w1 =
      InterventionRegressor({12, InterventionKind::kSlopeShift}, n);
  const auto w2 =
      InterventionRegressor({24, InterventionKind::kLevelShift}, n);
  Rng rng(29);
  std::vector<double> x(n);
  for (int t = 0; t < n; ++t) {
    x[t] = 4.0 + 0.7 * w1[t] + 3.0 * w2[t] +
           rng.NextGaussian(0.0, 0.3);
  }
  x[5] = std::numeric_limits<double>::quiet_NaN();
  x[18] = std::numeric_limits<double>::quiet_NaN();
  auto result = RunFilterWithRegressors(*model, x, {w1, w2});
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->identified);
  EXPECT_NEAR(result->lambdas[0], 0.7, 0.2);
  EXPECT_NEAR(result->lambdas[1], 3.0, 0.8);
  EXPECT_TRUE(std::isnan(result->base.innovations[5]));
  EXPECT_TRUE(std::isnan(result->base.innovations[18]));
}

TEST(FitTest, LevelShiftInterventionFitsStepSeries) {
  Rng rng(11);
  std::vector<double> x(43);
  for (int t = 0; t < 43; ++t) {
    x[t] = (t >= 20 ? 12.0 : 5.0) + rng.NextGaussian(0.0, 0.5);
  }
  StructuralSpec level_spec;
  level_spec.set_change_point(20, InterventionKind::kLevelShift);
  StructuralSpec slope_spec;
  slope_spec.set_change_point(20, InterventionKind::kSlopeShift);
  auto level_fit = FitStructuralModel(x, level_spec);
  auto slope_fit = FitStructuralModel(x, slope_spec);
  ASSERT_TRUE(level_fit.ok());
  ASSERT_TRUE(slope_fit.ok());
  // The step series is exactly a level shift; that shape must win.
  EXPECT_LT(level_fit->aic, slope_fit->aic);
  EXPECT_NEAR(level_fit->lambda, 7.0, 1.0);
}

TEST(FitTest, PulseCapturesOutlier) {
  Rng rng(13);
  std::vector<double> x(43);
  for (int t = 0; t < 43; ++t) x[t] = 5.0 + rng.NextGaussian(0.0, 0.4);
  x[21] += 9.0;
  StructuralSpec pulse;
  pulse.set_change_point(21, InterventionKind::kPulse);
  auto fitted = FitStructuralModel(x, pulse);
  ASSERT_TRUE(fitted.ok());
  EXPECT_NEAR(fitted->lambda, 9.0, 1.5);
  auto decomposition = Decompose(*fitted, x);
  ASSERT_TRUE(decomposition.ok());
  EXPECT_NEAR(decomposition->intervention[21], fitted->lambda, 1e-9);
  EXPECT_DOUBLE_EQ(decomposition->intervention[20], 0.0);
}

TEST(FitTest, TwoInterventionDecompositionSumsCorrectly) {
  Rng rng(17);
  std::vector<double> x(43);
  for (int t = 0; t < 43; ++t) {
    double value = 4.0 + rng.NextGaussian(0.0, 0.3);
    if (t >= 12) value += 1.0 * (t - 11);
    if (t >= 30) value += 1.2 * (t - 29);
    x[t] = value;
  }
  StructuralSpec spec;
  spec.interventions = {{12, InterventionKind::kSlopeShift},
                        {30, InterventionKind::kSlopeShift}};
  EXPECT_EQ(spec.TotalParameters(), 1 + 2 + 2);
  auto fitted = FitStructuralModel(x, spec);
  ASSERT_TRUE(fitted.ok());
  ASSERT_EQ(fitted->lambdas.size(), 2u);
  EXPECT_NEAR(fitted->lambdas[0], 1.0, 0.4);
  EXPECT_NEAR(fitted->lambdas[1], 1.2, 0.6);
  auto decomposition = Decompose(*fitted, x);
  ASSERT_TRUE(decomposition.ok());
  for (std::size_t t = 0; t < x.size(); ++t) {
    EXPECT_NEAR(decomposition->fitted[t] + decomposition->irregular[t],
                x[t], 1e-9);
  }
}

ChangePointOptions FastOptions() {
  ChangePointOptions options;
  options.seasonal = false;
  options.fit.optimizer.max_evaluations = 200;
  return options;
}

std::vector<double> TwoBreakSeries(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(43);
  for (int t = 0; t < 43; ++t) {
    double value = 8.0 + rng.NextGaussian(0.0, 0.4);
    if (t >= 12) value += 1.4 * (t - 11);
    if (t >= 28) value -= 2.4 * (t - 27);  // Trend reversal.
    x[t] = value;
  }
  return x;
}

TEST(DetectMultipleTest, FindsBothBreaks) {
  ChangePointOptions options = FastOptions();
  options.aic_margin = 2.0;
  ChangePointDetector detector(TwoBreakSeries(5), options);
  auto result = detector.DetectMultiple(3);
  ASSERT_TRUE(result.ok());
  // Both planted breaks must be recovered (a modest extra break may
  // also pay for itself at this margin).
  ASSERT_GE(result->interventions.size(), 2u);
  auto detected_near = [&result](int target) {
    for (const Intervention& intervention : result->interventions) {
      if (std::abs(intervention.change_point - target) <= 3) return true;
    }
    return false;
  };
  EXPECT_TRUE(detected_near(12));
  EXPECT_TRUE(detected_near(28));
  EXPECT_LT(result->best_aic, result->aic_without_intervention);
}

TEST(DetectMultipleTest, StopsWhenNoBreakPays) {
  Rng rng(23);
  std::vector<double> x(43);
  for (double& value : x) value = rng.NextGaussian(3.0, 1.0);
  ChangePointOptions options = FastOptions();
  options.aic_margin = 6.0;
  ChangePointDetector detector(x, options);
  auto result = detector.DetectMultiple(3);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->interventions.empty());
  EXPECT_DOUBLE_EQ(result->best_aic, result->aic_without_intervention);
}

TEST(DetectMultipleTest, RejectsBadMaxBreaks) {
  ChangePointDetector detector({1.0, 2.0, 3.0}, FastOptions());
  EXPECT_FALSE(detector.DetectMultiple(0).ok());
}

TEST(CriterionTest, FormulasMatchDefinitions) {
  // logL = -50, k = 3, n = 43.
  EXPECT_DOUBLE_EQ(
      InformationCriterion(-50.0, 3, 43, SelectionCriterion::kAic), 106.0);
  EXPECT_NEAR(
      InformationCriterion(-50.0, 3, 43, SelectionCriterion::kAicc),
      106.0 + 2.0 * 3 * 4 / (43.0 - 3 - 1), 1e-12);
  EXPECT_NEAR(
      InformationCriterion(-50.0, 3, 43, SelectionCriterion::kBic),
      100.0 + 3.0 * std::log(43.0), 1e-12);
  // AICc degenerates to +inf when n <= k + 1.
  EXPECT_TRUE(std::isinf(
      InformationCriterion(-50.0, 3, 4, SelectionCriterion::kAicc)));
  EXPECT_EQ(SelectionCriterionName(SelectionCriterion::kBic), "BIC");
}

TEST(CriterionTest, BicIsMoreConservativeThanAic) {
  // BIC's heavier parameter penalty can only reduce detections.
  int aic_detections = 0;
  int bic_detections = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(700 + seed);
    std::vector<double> x(43);
    for (double& value : x) value = rng.NextGaussian(5.0, 1.0);
    ChangePointOptions aic_options = FastOptions();
    ChangePointDetector aic_detector(x, aic_options);
    auto aic_result = aic_detector.DetectExact();
    ASSERT_TRUE(aic_result.ok());
    if (aic_result->has_change) ++aic_detections;

    ChangePointOptions bic_options = FastOptions();
    bic_options.criterion = SelectionCriterion::kBic;
    ChangePointDetector bic_detector(x, bic_options);
    auto bic_result = bic_detector.DetectExact();
    ASSERT_TRUE(bic_result.ok());
    if (bic_result->has_change) ++bic_detections;
  }
  EXPECT_LE(bic_detections, aic_detections);
}

TEST(CriterionTest, LevelShiftSearchFindsStepBreak) {
  Rng rng(31);
  std::vector<double> x(43);
  for (int t = 0; t < 43; ++t) {
    x[t] = (t >= 26 ? 14.0 : 6.0) + rng.NextGaussian(0.0, 0.6);
  }
  ChangePointOptions options = FastOptions();
  options.candidate_kinds = {InterventionKind::kLevelShift};
  ChangePointDetector detector(x, options);
  auto result = detector.DetectExact();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->has_change);
  EXPECT_NEAR(result->change_point, 26, 1);
  EXPECT_NEAR(result->best_model.lambda, 8.0, 1.0);
}

}  // namespace
}  // namespace mic::ssm
