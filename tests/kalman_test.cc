#include "ssm/kalman.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "ssm/model.h"
#include "ssm/structural.h"

namespace mic::ssm {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

// A fully specified 1-state local level model with a *known* prior
// (non-diffuse) so results can be verified against the scalar Kalman
// recursions computed by hand.
StateSpaceModel LocalLevelModel(double obs_var, double level_var,
                                double prior_mean, double prior_var) {
  StateSpaceModel model;
  model.transition = la::Matrix{{1.0}};
  model.selection = la::Matrix{{1.0}};
  model.state_noise = la::Matrix{{level_var}};
  model.observation = la::Vector{1.0};
  model.observation_variance = obs_var;
  model.initial_state = la::Vector{prior_mean};
  model.initial_covariance = la::Matrix{{prior_var}};
  model.num_diffuse = 0;
  return model;
}

TEST(KalmanFilterTest, MatchesScalarRecursionsOnLocalLevel) {
  const double h = 2.0;   // observation variance
  const double q = 0.5;   // level variance
  const StateSpaceModel model = LocalLevelModel(h, q, 0.0, 10.0);
  const std::vector<double> x = {1.0, 0.5, 1.5, 2.0};

  auto result = RunFilter(model, x);
  ASSERT_TRUE(result.ok());

  // Scalar recursions.
  double a = 0.0;
  double p = 10.0;
  double loglik = 0.0;
  for (std::size_t t = 0; t < x.size(); ++t) {
    const double f = p + h;
    EXPECT_NEAR(result->predictions[t], a, 1e-12);
    EXPECT_NEAR(result->prediction_variances[t], f, 1e-12);
    const double v = x[t] - a;
    loglik -= 0.5 * (std::log(2.0 * M_PI) + std::log(f) + v * v / f);
    const double k = p / f;
    a = a + k * v;
    p = p * (1.0 - k) + q;
  }
  EXPECT_NEAR(result->log_likelihood, loglik, 1e-10);
  EXPECT_EQ(result->effective_observations, 4);
  EXPECT_EQ(result->skipped_diffuse, 0);
}

TEST(KalmanFilterTest, MissingObservationsAreSkipped) {
  const StateSpaceModel model = LocalLevelModel(1.0, 0.1, 0.0, 5.0);
  const std::vector<double> with_gap = {1.0, kNan, 1.2, 1.1};
  auto result = RunFilter(model, with_gap);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->effective_observations, 3);
  EXPECT_TRUE(std::isnan(result->innovations[1]));
  // Prediction after the gap carries the last filtered level.
  EXPECT_NEAR(result->predictions[2], result->predictions[1], 1e-12);
  // Variance grows through the gap by the level noise.
  EXPECT_GT(result->prediction_variances[2],
            result->prediction_variances[1]);
}

TEST(KalmanFilterTest, DiffuseInitializationSkipsEarlyTerms) {
  StructuralSpec spec;  // local level, diffuse.
  auto model = BuildStructuralModel(spec, {1.0, 0.1, 0.0});
  ASSERT_TRUE(model.ok());
  const std::vector<double> x = {5.0, 5.5, 5.2, 5.4, 5.1, 5.3, 5.2, 5.0,
                                 5.1, 5.2};
  auto result = RunFilter(*model, x);
  ASSERT_TRUE(result.ok());
  // Exactly one diffuse state -> first term skipped.
  EXPECT_EQ(result->skipped_diffuse, 1);
  EXPECT_EQ(result->effective_observations, 9);
  EXPECT_TRUE(std::isfinite(result->log_likelihood));
}

TEST(KalmanFilterTest, RejectsDimensionMismatch) {
  StateSpaceModel model = LocalLevelModel(1.0, 0.1, 0.0, 1.0);
  model.observation = la::Vector{1.0, 0.0};  // Wrong size.
  auto result = RunFilter(model, {1.0, 2.0});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(KalmanSmootherTest, SmoothedIsCloserToDataThanPredicted) {
  const StateSpaceModel model = LocalLevelModel(1.0, 0.2, 0.0, 10.0);
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  auto smoothed = RunSmoother(model, x);
  ASSERT_TRUE(smoothed.ok());
  ASSERT_EQ(smoothed->smoothed_states.size(), x.size());
  // A rising ramp: smoothed level at early times should exceed the
  // filter's one-step prediction (which lags) because smoothing sees the
  // future.
  auto filtered = RunFilter(model, x);
  ASSERT_TRUE(filtered.ok());
  EXPECT_GT(smoothed->smoothed_states[1][0], filtered->predictions[1]);
  // Variance must be non-negative everywhere.
  for (const la::Vector& var : smoothed->smoothed_variances) {
    EXPECT_GE(var[0], -1e-8);
  }
}

TEST(KalmanSmootherTest, ConstantSeriesSmoothsToConstant) {
  const StateSpaceModel model = LocalLevelModel(1.0, 0.01, 0.0, 100.0);
  const std::vector<double> x(12, 7.0);
  auto smoothed = RunSmoother(model, x);
  ASSERT_TRUE(smoothed.ok());
  for (std::size_t t = 0; t < x.size(); ++t) {
    EXPECT_NEAR(smoothed->smoothed_states[t][0], 7.0, 0.05);
  }
}

TEST(ForecastTest, LocalLevelForecastIsFlat) {
  const StateSpaceModel model = LocalLevelModel(0.5, 0.05, 0.0, 50.0);
  std::vector<double> x;
  for (int t = 0; t < 20; ++t) x.push_back(3.0 + 0.01 * (t % 2));
  auto forecast = ForecastAhead(model, x, 5);
  ASSERT_TRUE(forecast.ok());
  ASSERT_EQ(forecast->mean.size(), 5u);
  for (double value : forecast->mean) {
    EXPECT_NEAR(value, 3.0, 0.1);
  }
  // Forecast variance grows with the horizon for a random-walk level.
  for (std::size_t i = 1; i < forecast->variance.size(); ++i) {
    EXPECT_GT(forecast->variance[i], forecast->variance[i - 1]);
  }
}

TEST(ForecastTest, RejectsNonPositiveHorizon) {
  const StateSpaceModel model = LocalLevelModel(1.0, 0.1, 0.0, 1.0);
  EXPECT_FALSE(ForecastAhead(model, {1.0, 2.0}, 0).ok());
}

// Brute-force cross-check: for a tiny local-level model, the smoothed
// state means and the log-likelihood must match direct multivariate
// Gaussian conditioning on the joint distribution of (states,
// observations).
TEST(KalmanBruteForceTest, SmootherMatchesJointGaussianConditioning) {
  const double h = 0.7;       // observation variance
  const double q = 0.4;       // level variance
  const double p0 = 2.5;      // prior variance
  const double a0 = 1.0;      // prior mean
  const std::vector<double> x = {1.4, 0.9, 2.1, 1.7};
  const std::size_t n = x.size();

  // Joint covariance. States: a_1..a_4 with a_1 ~ N(a0, p0),
  // a_{t+1} = a_t + xi_t. Cov(a_s, a_t) = p0 + q * (min(s,t) - 1).
  // Observations: x_t = a_t + eps_t.
  la::Matrix cov_states(n, n);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t t = 0; t < n; ++t) {
      cov_states(s, t) = p0 + q * static_cast<double>(std::min(s, t));
    }
  }
  la::Matrix cov_obs = cov_states;
  for (std::size_t t = 0; t < n; ++t) cov_obs(t, t) += h;

  // E[a | x] = mu_a + Cov(a, x) Cov(x)^-1 (x - mu_x); mu both a0.
  la::Vector centered(n);
  for (std::size_t t = 0; t < n; ++t) centered[t] = x[t] - a0;
  auto weights = la::CholeskySolve(cov_obs, centered);
  ASSERT_TRUE(weights.ok());
  la::Vector expected = cov_states * *weights;
  for (std::size_t t = 0; t < n; ++t) expected[t] += a0;

  StateSpaceModel model;
  model.transition = la::Matrix{{1.0}};
  model.selection = la::Matrix{{1.0}};
  model.state_noise = la::Matrix{{q}};
  model.observation = la::Vector{1.0};
  model.observation_variance = h;
  model.initial_state = la::Vector{a0};
  model.initial_covariance = la::Matrix{{p0}};

  auto smoothed = RunSmoother(model, x);
  ASSERT_TRUE(smoothed.ok());
  for (std::size_t t = 0; t < n; ++t) {
    EXPECT_NEAR(smoothed->smoothed_states[t][0], expected[t], 1e-9)
        << "t = " << t;
  }

  // Log-likelihood: x ~ N(a0 * 1, cov_obs).
  auto logdet = la::LogDet(cov_obs);
  ASSERT_TRUE(logdet.ok());
  const double quadratic = la::Dot(centered, *weights);
  const double expected_loglik =
      -0.5 * (static_cast<double>(n) * std::log(2.0 * M_PI) + *logdet +
              quadratic);
  auto filtered = RunFilter(model, x);
  ASSERT_TRUE(filtered.ok());
  EXPECT_NEAR(filtered->log_likelihood, expected_loglik, 1e-9);
}

// Property sweep over noise regimes: the likelihood must be finite and
// the smoother must agree with the filter at the final time step
// (no future information beyond t = n).
class KalmanPropertyTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(KalmanPropertyTest, SmootherMatchesFilterAtFinalStep) {
  const auto [h, q] = GetParam();
  const StateSpaceModel model = LocalLevelModel(h, q, 0.0, 10.0);
  std::vector<double> x;
  for (int t = 0; t < 30; ++t) {
    x.push_back(std::sin(0.3 * t) + 0.1 * t);
  }
  KalmanOptions options;
  options.store_states = true;
  auto filtered = RunFilter(model, x, options);
  ASSERT_TRUE(filtered.ok());
  EXPECT_TRUE(std::isfinite(filtered->log_likelihood));

  auto smoothed = RunSmoother(model, x);
  ASSERT_TRUE(smoothed.ok());
  // At the last time, smoothed = filtered (posterior given all data).
  const la::Vector& a_last = filtered->predicted_states.back();
  const la::Matrix& p_last = filtered->predicted_covariances.back();
  const double f =
      p_last(0, 0) + h;
  const double v = x.back() - a_last[0];
  const double filtered_last = a_last[0] + p_last(0, 0) * v / f;
  EXPECT_NEAR(smoothed->smoothed_states.back()[0], filtered_last, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    NoiseRegimes, KalmanPropertyTest,
    ::testing::Values(std::pair{1.0, 0.1}, std::pair{1.0, 10.0},
                      std::pair{0.01, 1.0}, std::pair{100.0, 0.5},
                      std::pair{1e-4, 1e-4}));

}  // namespace
}  // namespace mic::ssm
