#include "synth/world_io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "synth/scenario.h"

namespace mic::synth {
namespace {

TEST(WorldIoTest, ParsesFullExample) {
  std::istringstream in(R"(
# demo world
config,months=24,start_month=2,seed=77
hospitals,count=12,small=0.5,medium=0.4,large=0.1
patients,count=500,visit=0.4,boost=0.3,acute=1.5
city,north,weight=1.0
city,south,weight=2.0
disease,flu,weight=1.5,amplitude=1.0,peak=0,sharpness=2.5,outlier=10:3.0
disease,bp,weight=0.3,chronic=0.35,intensity=0.5
disease,fading,weight=1.0,prevalence=12:0.4:6
medicine,antiviral,propensity=1.1,indication=flu:1.0
medicine,newdrug,release=12,indication=bp:0.8:14:6,propensity_event=0:0.2:0,city_delay=north:4
medicine,generic,generic_of=antiviral,indication=flu:0.9,release=10
medicine,fader,indication=fading
bias,small,antiviral,bp,weight=0.3
)");
  auto config = ReadWorldConfig(in);
  ASSERT_TRUE(config.ok()) << config.status();
  EXPECT_EQ(config->num_months, 24);
  EXPECT_EQ(config->start_calendar_month, 2);
  EXPECT_EQ(config->seed, 77u);
  EXPECT_EQ(config->hospitals.count, 12u);
  EXPECT_DOUBLE_EQ(config->hospitals.medium_fraction, 0.4);
  EXPECT_EQ(config->patients.count, 500u);
  EXPECT_DOUBLE_EQ(config->patients.mean_acute_diseases, 1.5);
  ASSERT_EQ(config->cities.size(), 2u);
  EXPECT_DOUBLE_EQ(config->cities[1].population_weight, 2.0);

  ASSERT_EQ(config->diseases.size(), 3u);
  const DiseaseSpec& flu = config->diseases[0];
  EXPECT_DOUBLE_EQ(flu.base_weight, 1.5);
  EXPECT_DOUBLE_EQ(flu.seasonality.amplitude, 1.0);
  EXPECT_DOUBLE_EQ(flu.seasonality.sharpness, 2.5);
  EXPECT_DOUBLE_EQ(flu.outlier_multipliers.at(10), 3.0);
  EXPECT_DOUBLE_EQ(config->diseases[1].chronic_fraction, 0.35);
  ASSERT_EQ(config->diseases[2].prevalence_events.size(), 1u);
  EXPECT_EQ(config->diseases[2].prevalence_events[0].ramp_months, 6);

  ASSERT_EQ(config->medicines.size(), 4u);
  const MedicineSpec& newdrug = config->medicines[1];
  EXPECT_EQ(newdrug.release_month, 12);
  ASSERT_EQ(newdrug.indications.size(), 1u);
  EXPECT_EQ(newdrug.indications[0].start_month, 14);
  EXPECT_EQ(newdrug.indications[0].ramp_months, 6);
  ASSERT_EQ(newdrug.propensity_events.size(), 1u);
  EXPECT_DOUBLE_EQ(newdrug.propensity_events[0].target_multiplier, 0.2);
  EXPECT_EQ(newdrug.city_release_delays.at("north"), 4);
  EXPECT_EQ(config->medicines[2].generic_of, "antiviral");

  ASSERT_EQ(config->class_biases.size(), 1u);
  EXPECT_EQ(config->class_biases[0].hospital_class, HospitalClass::kSmall);
  EXPECT_DOUBLE_EQ(config->class_biases[0].weight, 0.3);

  // The parsed config must build a valid world.
  EXPECT_TRUE(World::Create(*config).ok());
}

TEST(WorldIoTest, PaperWorldRoundTrips) {
  PaperWorldOptions options;
  options.num_background_diseases = 3;
  const WorldConfig original = MakePaperWorldConfig(options);
  std::ostringstream out;
  ASSERT_TRUE(WriteWorldConfig(original, out).ok());

  std::istringstream in(out.str());
  auto parsed = ReadWorldConfig(in);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->num_months, original.num_months);
  EXPECT_EQ(parsed->diseases.size(), original.diseases.size());
  EXPECT_EQ(parsed->medicines.size(), original.medicines.size());
  EXPECT_EQ(parsed->class_biases.size(), original.class_biases.size());
  EXPECT_EQ(parsed->cities.size(), original.cities.size());
  for (std::size_t i = 0; i < original.diseases.size(); ++i) {
    EXPECT_EQ(parsed->diseases[i].name, original.diseases[i].name);
    EXPECT_NEAR(parsed->diseases[i].base_weight,
                original.diseases[i].base_weight, 1e-9);
    EXPECT_EQ(parsed->diseases[i].prevalence_events.size(),
              original.diseases[i].prevalence_events.size());
  }
  for (std::size_t i = 0; i < original.medicines.size(); ++i) {
    EXPECT_EQ(parsed->medicines[i].name, original.medicines[i].name);
    EXPECT_EQ(parsed->medicines[i].indications.size(),
              original.medicines[i].indications.size());
    EXPECT_EQ(parsed->medicines[i].city_release_delays,
              original.medicines[i].city_release_delays);
  }
  EXPECT_TRUE(World::Create(*parsed).ok());
}

TEST(WorldIoTest, RejectsMalformedLines) {
  {
    std::istringstream in("banana,x\n");
    EXPECT_FALSE(ReadWorldConfig(in).ok());
  }
  {
    std::istringstream in("disease\n");  // Missing name.
    EXPECT_FALSE(ReadWorldConfig(in).ok());
  }
  {
    std::istringstream in("disease,flu,unknown_key=1\n");
    EXPECT_FALSE(ReadWorldConfig(in).ok());
  }
  {
    std::istringstream in("medicine,m,indication=\n");
    EXPECT_FALSE(ReadWorldConfig(in).ok());
  }
  {
    std::istringstream in("bias,giant,m,d\n");  // Unknown class.
    EXPECT_FALSE(ReadWorldConfig(in).ok());
  }
  {
    std::istringstream in("config,months=abc\n");
    EXPECT_FALSE(ReadWorldConfig(in).ok());
  }
  {
    std::istringstream in("medicine,m,city_delay=oops\n");
    EXPECT_FALSE(ReadWorldConfig(in).ok());
  }
}

TEST(WorldIoTest, ErrorsCarryLineNumbers) {
  std::istringstream in("city,a\n\n# comment\nbanana,x\n");
  auto config = ReadWorldConfig(in);
  ASSERT_FALSE(config.ok());
  EXPECT_NE(config.status().message().find("line 4"), std::string::npos);
}

TEST(WorldIoTest, MissingFileIsIoError) {
  EXPECT_EQ(ReadWorldConfigFile("/nonexistent/world.cfg").status().code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace mic::synth
