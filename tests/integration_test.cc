// End-to-end pipeline test on a scaled-down paper world: generate MIC
// claims, reproduce the series with the medication model, and detect the
// scripted structural breaks with the state space machinery — the full
// Fig. 1 loop.

#include <gtest/gtest.h>

#include "medmodel/timeseries.h"
#include "stats/metrics.h"
#include "synth/generator.h"
#include "synth/scenario.h"
#include "trend/trend_analyzer.h"

namespace mic {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::PaperWorldOptions options;
    options.num_months = 43;
    options.num_patients = 700;
    options.num_hospitals = 15;
    options.num_background_diseases = 0;
    auto world = synth::MakePaperWorld(options);
    ASSERT_TRUE(world.ok());
    world_ = new synth::World(std::move(world).value());
    synth::ClaimGenerator generator(world_);
    auto data = generator.Generate();
    ASSERT_TRUE(data.ok());
    data_ = new synth::GeneratedData(std::move(data).value());

    medmodel::ReproducerOptions reproducer;
    reproducer.filter_options.min_disease_count = 2;
    reproducer.filter_options.min_medicine_count = 2;
    reproducer.min_series_total = 10.0;
    auto series = medmodel::ReproduceSeries(data_->corpus, reproducer);
    ASSERT_TRUE(series.ok());
    series_ = new medmodel::SeriesSet(std::move(series).value());
  }

  static void TearDownTestSuite() {
    delete series_;
    delete data_;
    delete world_;
    series_ = nullptr;
    data_ = nullptr;
    world_ = nullptr;
  }

  static synth::World* world_;
  static synth::GeneratedData* data_;
  static medmodel::SeriesSet* series_;
};

synth::World* PipelineTest::world_ = nullptr;
synth::GeneratedData* PipelineTest::data_ = nullptr;
medmodel::SeriesSet* PipelineTest::series_ = nullptr;

TEST_F(PipelineTest, CorpusLooksLikeMicData) {
  EXPECT_EQ(data_->corpus.num_months(), 43u);
  // Multi-disease records (the missing-link problem exists).
  double mean_diseases = 0.0;
  for (std::size_t t = 0; t < 43; ++t) {
    mean_diseases += data_->corpus.month(t).MeanDiseasesPerRecord();
  }
  mean_diseases /= 43.0;
  EXPECT_GT(mean_diseases, 1.5);
}

TEST_F(PipelineTest, ReproducedSeriesTrackTruth) {
  // For the well-identified chronic pair (hypertension, depressor), the
  // reproduced monthly counts should track the true counts closely.
  const DiseaseId hypertension =
      *world_->FindDisease(synth::names::kHypertension);
  const MedicineId depressor =
      *world_->FindMedicine(synth::names::kDepressor);
  const auto reproduced = series_->Prescription(hypertension, depressor);
  const auto truth = data_->truth.Series(hypertension, depressor);
  double truth_total = 0.0;
  double absolute_error = 0.0;
  for (int t = 0; t < 43; ++t) {
    truth_total += truth[t];
    absolute_error += std::fabs(reproduced[t] - truth[t]);
  }
  ASSERT_GT(truth_total, 0.0);
  EXPECT_LT(absolute_error / truth_total, 0.25);
}

TEST_F(PipelineTest, NewMedicineBreakDetected) {
  // The new osteoporosis drug releases at t = 5; its medicine series
  // must show a change near there.
  const MedicineId new_drug =
      *world_->FindMedicine(synth::names::kNewOsteoporosisDrug);
  const auto series = series_->Medicine(new_drug);
  trend::TrendAnalyzerOptions options;
  options.detector.seasonal = false;
  options.detector.fit.optimizer.max_evaluations = 200;
  // Paper-faithful plain AIC comparison (margin 0).
  options.detector.aic_margin = 0.0;
  options.use_approximate = false;
  trend::TrendAnalyzer analyzer(options);
  auto analysis = analyzer.AnalyzeSeries(
      ExecContext{}, trend::SeriesKind::kMedicine, DiseaseId(), new_drug,
      series);
  ASSERT_TRUE(analysis.ok());
  EXPECT_TRUE(analysis->has_change);
  // The series is exactly zero until the release and then ramps, so the
  // AIC valley extends a few months before the true onset; accept a
  // detection within five months (the paper's own case studies report
  // the release month at figure resolution).
  EXPECT_NEAR(analysis->change_point,
              synth::PaperWorldEvents::kOsteoporosisRelease, 5);
  EXPECT_GT(analysis->lambda, 0.0);  // Rising slope.
}

TEST_F(PipelineTest, IndicationExpansionDetectedOnPairSeries) {
  // The dementia drug gains the Lewy-body indication at t = 18; the
  // PAIR series breaks while the medicine as a whole changes much less.
  const DiseaseId lewy =
      *world_->FindDisease(synth::names::kLewyBodyDementia);
  const MedicineId drug =
      *world_->FindMedicine(synth::names::kDementiaDrug);
  const auto pair_series = series_->Prescription(lewy, drug);
  double total = 0.0;
  for (double value : pair_series) total += value;
  ASSERT_GT(total, 10.0) << "pair series survived pruning";

  trend::TrendAnalyzerOptions options;
  options.detector.seasonal = false;
  options.detector.fit.optimizer.max_evaluations = 200;
  // The indication expansion phases in over many months, so the AIC
  // landscape around the onset is flat; use the paper's plain AIC
  // comparison (margin 0) and accept an onset within the ramp.
  options.detector.aic_margin = 0.0;
  options.use_approximate = false;
  trend::TrendAnalyzer analyzer(options);
  auto analysis = analyzer.AnalyzeSeries(
      ExecContext{}, trend::SeriesKind::kPrescription, lewy, drug,
      pair_series);
  ASSERT_TRUE(analysis.ok());
  EXPECT_TRUE(analysis->has_change);
  EXPECT_NEAR(analysis->change_point,
              synth::PaperWorldEvents::kLewyIndicationExpansion, 8);
}

TEST_F(PipelineTest, SeasonalInfluenzaSeriesPrefersSeasonalModel) {
  const DiseaseId influenza =
      *world_->FindDisease(synth::names::kInfluenza);
  const auto series = series_->Disease(influenza);
  // Normalize scale for the fit.
  std::vector<double> normalized = series;
  const double sd = stats::StdDev(series);
  ASSERT_GT(sd, 0.0);
  for (double& value : normalized) value /= sd;

  ssm::StructuralSpec ll;
  ssm::StructuralSpec ll_s;
  ll_s.seasonal = true;
  auto fit_ll = ssm::FitStructuralModel(normalized, ll);
  auto fit_ll_s = ssm::FitStructuralModel(normalized, ll_s);
  ASSERT_TRUE(fit_ll.ok());
  ASSERT_TRUE(fit_ll_s.ok());
  EXPECT_LT(fit_ll_s->aic, fit_ll->aic);
}

TEST_F(PipelineTest, TruthSeriesAndReproducedSeriesAgreeInAggregate) {
  // Aggregate conservation: total reproduced prescriptions equal total
  // medicine mentions that survive filtering, within filtering slack.
  double reproduced_total = 0.0;
  series_->ForEachPair(
      [&](DiseaseId, MedicineId, const std::vector<double>& values) {
        for (double value : values) reproduced_total += value;
      });
  double mentions = 0.0;
  for (std::size_t t = 0; t < 43; ++t) {
    for (const MicRecord& record : data_->corpus.month(t).records()) {
      mentions += record.TotalMedicineMentions();
    }
  }
  EXPECT_GT(reproduced_total, 0.7 * mentions);
  EXPECT_LE(reproduced_total, mentions + 1e-6);
}

}  // namespace
}  // namespace mic
