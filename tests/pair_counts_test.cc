// Tests for the sparse pair-count accumulator and the small report
// structures that back the applications.

#include <gtest/gtest.h>

#include "apps/geo_spread.h"
#include "common/logging.h"
#include "medmodel/pair_counts.h"
#include "trend/trend_analyzer.h"

namespace mic {
namespace {

TEST(PairKeyTest, RoundTrips) {
  const DiseaseId d(123456);
  const MedicineId m(654321);
  const std::uint64_t key = medmodel::PairKey(d, m);
  EXPECT_EQ(medmodel::PairDisease(key), d);
  EXPECT_EQ(medmodel::PairMedicine(key), m);
  // Distinct pairs get distinct keys even with swapped values.
  EXPECT_NE(key, medmodel::PairKey(DiseaseId(654321), MedicineId(123456)));
}

TEST(PairCountsTest, AccumulatesAndIterates) {
  medmodel::PairCounts counts;
  EXPECT_TRUE(counts.empty());
  counts.Add(DiseaseId(1), MedicineId(2), 1.5);
  counts.Add(DiseaseId(1), MedicineId(2), 2.5);
  counts.Add(DiseaseId(3), MedicineId(4), 1.0);
  EXPECT_EQ(counts.size(), 2u);
  EXPECT_DOUBLE_EQ(counts.Get(DiseaseId(1), MedicineId(2)), 4.0);
  EXPECT_DOUBLE_EQ(counts.Get(DiseaseId(9), MedicineId(9)), 0.0);

  double total = 0.0;
  counts.ForEach([&total](DiseaseId, MedicineId, double value) {
    total += value;
  });
  EXPECT_DOUBLE_EQ(total, 5.0);
}

TEST(GeoReportTest, CountAndShareArithmetic) {
  apps::GeoSpreadReport report;
  report.snapshot_months = {0, 1};
  report.cells.push_back({CityId(0), MedicineId(0), {10.0, 20.0}});
  report.cells.push_back({CityId(0), MedicineId(1), {30.0, 20.0}});
  report.cells.push_back({CityId(1), MedicineId(0), {5.0, 0.0}});

  EXPECT_DOUBLE_EQ(report.Count(CityId(0), MedicineId(1), 0), 30.0);
  EXPECT_DOUBLE_EQ(report.Count(CityId(1), MedicineId(1), 0), 0.0);
  // Out-of-range snapshot index is 0.
  EXPECT_DOUBLE_EQ(report.Count(CityId(0), MedicineId(0), 7), 0.0);

  const std::vector<MedicineId> group = {MedicineId(0), MedicineId(1)};
  EXPECT_DOUBLE_EQ(report.Share(CityId(0), MedicineId(0), group, 0), 0.25);
  EXPECT_DOUBLE_EQ(report.Share(CityId(0), MedicineId(1), group, 1), 0.5);
  // Empty group total -> share 0 (not a division by zero).
  EXPECT_DOUBLE_EQ(report.Share(CityId(1), MedicineId(1), group, 1), 0.0);
}

TEST(TrendReportTest, CountChangesPerKind) {
  trend::TrendReport report;
  auto add = [&report](trend::SeriesKind kind, bool change) {
    trend::SeriesAnalysis analysis;
    analysis.kind = kind;
    analysis.has_change = change;
    switch (kind) {
      case trend::SeriesKind::kDisease:
        report.diseases.push_back(analysis);
        break;
      case trend::SeriesKind::kMedicine:
        report.medicines.push_back(analysis);
        break;
      case trend::SeriesKind::kPrescription:
        report.prescriptions.push_back(analysis);
        break;
    }
  };
  add(trend::SeriesKind::kDisease, true);
  add(trend::SeriesKind::kDisease, false);
  add(trend::SeriesKind::kMedicine, true);
  add(trend::SeriesKind::kPrescription, true);
  add(trend::SeriesKind::kPrescription, true);
  add(trend::SeriesKind::kPrescription, false);
  EXPECT_EQ(report.CountChanges(trend::SeriesKind::kDisease), 1u);
  EXPECT_EQ(report.CountChanges(trend::SeriesKind::kMedicine), 1u);
  EXPECT_EQ(report.CountChanges(trend::SeriesKind::kPrescription), 2u);
}

TEST(LoggingTest, LevelGate) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Messages below the level are silently discarded (no crash).
  MIC_LOG(Debug) << "discarded";
  MIC_LOG(Info) << "discarded";
  SetLogLevel(before);
}

}  // namespace
}  // namespace mic
