#include "obs/trace_log.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/exec_context.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/thread_pool.h"
#include "synth/generator.h"
#include "synth/scenario.h"
#include "trend/pipeline.h"

namespace mic::obs {
namespace {

TEST(TraceLogTest, RecordsBeginEndPairsInOrder) {
  TraceLog trace;
  trace.BeginEvent("outer");
  trace.BeginEvent("outer/inner");
  trace.EndEvent("outer/inner");
  trace.EndEvent("outer");

  const std::vector<ThreadTrace> snapshot = trace.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].tid, 0u);
  EXPECT_EQ(snapshot[0].dropped, 0u);
  ASSERT_EQ(snapshot[0].events.size(), 4u);
  EXPECT_EQ(snapshot[0].events[0].name, "outer");
  EXPECT_EQ(snapshot[0].events[0].phase, TraceEvent::Phase::kBegin);
  EXPECT_EQ(snapshot[0].events[1].name, "outer/inner");
  EXPECT_EQ(snapshot[0].events[3].phase, TraceEvent::Phase::kEnd);
  // Timestamps never run backwards within one thread's timeline.
  for (std::size_t i = 1; i < snapshot[0].events.size(); ++i) {
    EXPECT_GE(snapshot[0].events[i].ts_ns,
              snapshot[0].events[i - 1].ts_ns);
  }
  EXPECT_EQ(trace.event_count(), 4u);
  EXPECT_EQ(trace.dropped_count(), 0u);
}

// Each thread owns its ring: concurrent writers never interleave into
// one another's timelines, and each per-thread view preserves the
// thread's own record order.
TEST(TraceLogTest, PerThreadTimelinesStaySeparatedAndOrdered) {
  constexpr int kThreads = 4;
  constexpr int kEventsPerThread = 50;
  TraceLog trace;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trace, t] {
      const std::string name = "worker-" + std::to_string(t);
      for (int i = 0; i < kEventsPerThread; ++i) {
        trace.BeginEvent(name, static_cast<std::uint64_t>(i));
        trace.EndEvent(name, static_cast<std::uint64_t>(i));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const std::vector<ThreadTrace> snapshot = trace.Snapshot();
  ASSERT_EQ(snapshot.size(), static_cast<std::size_t>(kThreads));
  std::set<std::uint32_t> tids;
  std::set<std::string> names;
  for (const ThreadTrace& thread : snapshot) {
    tids.insert(thread.tid);
    ASSERT_EQ(thread.events.size(),
              static_cast<std::size_t>(2 * kEventsPerThread));
    // One writer per ring: every event carries the same name, chunk
    // indices advance 0,0,1,1,..., and timestamps are monotone.
    names.insert(thread.events[0].name);
    for (std::size_t i = 0; i < thread.events.size(); ++i) {
      EXPECT_EQ(thread.events[i].name, thread.events[0].name);
      EXPECT_EQ(thread.events[i].chunk, static_cast<std::uint64_t>(i / 2));
      EXPECT_EQ(thread.events[i].phase, (i % 2 == 0)
                                            ? TraceEvent::Phase::kBegin
                                            : TraceEvent::Phase::kEnd);
      if (i > 0) {
        EXPECT_GE(thread.events[i].ts_ns, thread.events[i - 1].ts_ns);
      }
    }
  }
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kThreads));
}

TEST(TraceLogTest, RingWrapDropsOldestAndCountsDrops) {
  TraceLog trace(/*capacity_per_thread=*/8);
  for (int i = 0; i < 20; ++i) {
    trace.BeginEvent("e" + std::to_string(i));
  }
  EXPECT_EQ(trace.event_count(), 8u);
  EXPECT_EQ(trace.dropped_count(), 12u);

  const std::vector<ThreadTrace> snapshot = trace.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].dropped, 12u);
  ASSERT_EQ(snapshot[0].events.size(), 8u);
  // The survivors are the newest 8, still in record order.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(snapshot[0].events[i].name, "e" + std::to_string(12 + i));
  }
  // The drop total is surfaced in the export, not silently eaten.
  EXPECT_NE(trace.ToChromeTraceJson().find("\"droppedEvents\":12"),
            std::string::npos);
}

// TraceChunks captures the dispatching thread's span path and replays
// it around every chunk, so chunk events (and spans opened inside the
// chunk) nest under the stage that issued the ParallelFor even though
// they execute on pool workers with empty span stacks.
TEST(TraceLogTest, ParallelForChunksInheritTheCallersSpanPath) {
  TraceLog trace;
  runtime::ThreadPool pool(4);
  ExecContext context{&pool, nullptr, &trace};

  {
    Span outer(context, "outer");
    Status status = pool.ParallelFor(
        0, 64, /*chunk=*/8,
        TraceChunks(&trace, "stage",
                    [&](std::size_t, std::size_t, std::size_t) {
                      Span inner(context, "inner");
                      return Status::OK();
                    }));
    ASSERT_TRUE(status.ok());
  }

  std::set<std::uint64_t> chunks_seen;
  int inner_begins = 0;
  for (const ThreadTrace& thread : trace.Snapshot()) {
    for (const TraceEvent& event : thread.events) {
      if (event.chunk != TraceEvent::kNoChunk) {
        EXPECT_EQ(event.name, "outer/stage");
        if (event.phase == TraceEvent::Phase::kBegin) {
          chunks_seen.insert(event.chunk);
        }
      } else if (event.name != "outer") {
        EXPECT_EQ(event.name, "outer/stage/inner");
        if (event.phase == TraceEvent::Phase::kBegin) ++inner_begins;
      }
    }
  }
  EXPECT_EQ(chunks_seen.size(), 8u);  // 64 items / chunk 8.
  EXPECT_EQ(*chunks_seen.rbegin(), 7u);
  EXPECT_EQ(inner_begins, 8);
}

// Null trace: the wrapper must hand back the function unchanged rather
// than paying for a capture.
TEST(TraceLogTest, TraceChunksIsPassThroughWithoutATrace) {
  bool ran = false;
  auto fn = TraceChunks(nullptr, "stage",
                        [&ran](std::size_t, std::size_t, std::size_t) {
                          ran = true;
                          return Status::OK();
                        });
  ASSERT_TRUE(fn(0, 1, 0).ok());
  EXPECT_TRUE(ran);
}

// Cheap structural validation of the Chrome-trace export (the shell
// smoke test parses it with a real JSON parser): balanced braces
// outside strings, the required top-level fields, paired B/E counts.
void ExpectChromeTraceWellFormed(const std::string& json) {
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"droppedEvents\":"), std::string::npos);
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (c == '\\') {
      escaped = true;
    } else if (c == '"') {
      in_string = !in_string;
    } else if (!in_string && (c == '{' || c == '[')) {
      ++depth;
    } else if (!in_string && (c == '}' || c == ']')) {
      --depth;
      ASSERT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

// The acceptance scenario: a traced 4-thread pipeline run produces a
// well-formed timeline that spans more than one thread id with chunk
// events nested under their owning span path, while the deterministic
// metrics counters stay bit-identical to the 1-thread traced run.
TEST(TraceLogPipelineTest, FourThreadTimelineIsWellFormedAndCountersMatch) {
  auto world = synth::World::Create(synth::MakeTinyWorldConfig(24, 5));
  ASSERT_TRUE(world.ok());
  synth::ClaimGenerator generator(&*world);
  auto data = generator.Generate();
  ASSERT_TRUE(data.ok());

  trend::PipelineConfig options;
  options.reproducer.filter_options.min_disease_count = 1;
  options.reproducer.filter_options.min_medicine_count = 1;
  options.reproducer.min_series_total = 10.0;
  options.analyzer.detector.seasonal = false;  // 24-month window.
  options.analyzer.detector.fit.optimizer.max_evaluations = 150;

  auto run = [&](int threads, MetricsRegistry* metrics, TraceLog* trace) {
    runtime::ThreadPool pool(threads);
    ExecContext context{&pool, metrics, trace};
    auto result = trend::RunPipeline(data->corpus, options, context);
    ASSERT_TRUE(result.ok());
  };

  MetricsRegistry serial_metrics;
  TraceLog serial_trace;
  run(1, &serial_metrics, &serial_trace);
  MetricsRegistry parallel_metrics;
  TraceLog parallel_trace;
  run(4, &parallel_metrics, &parallel_trace);

  // Counters are part of the determinism contract; tracing must not
  // perturb them and thread count must not either.
  EXPECT_EQ(serial_metrics.CountersToJson(),
            parallel_metrics.CountersToJson());

  ExpectChromeTraceWellFormed(serial_trace.ToChromeTraceJson());
  ExpectChromeTraceWellFormed(parallel_trace.ToChromeTraceJson());

  const std::vector<ThreadTrace> threads = parallel_trace.Snapshot();
  EXPECT_GT(threads.size(), 1u);  // Workers recorded chunk events.

  // Every chunk event sits under the pipeline's span path, and each
  // thread's begin/end events pair up.
  std::set<std::string> chunk_paths;
  for (const ThreadTrace& thread : threads) {
    std::map<std::string, int> open;
    for (const TraceEvent& event : thread.events) {
      if (event.chunk != TraceEvent::kNoChunk) {
        EXPECT_EQ(event.name.rfind("pipeline/", 0), 0u) << event.name;
        chunk_paths.insert(event.name);
      }
      open[event.name] +=
          event.phase == TraceEvent::Phase::kBegin ? 1 : -1;
      EXPECT_GE(open[event.name], 0) << event.name;
    }
    for (const auto& [name, count] : open) {
      EXPECT_EQ(count, 0) << name << " left unbalanced";
    }
  }
  EXPECT_TRUE(chunk_paths.count("pipeline/reproduce/em_fit/em-estep"))
      << "EM chunk events missing";
  EXPECT_TRUE(chunk_paths.count("pipeline/detect/trend-sweep"))
      << "candidate sweep chunk events missing";
}

TEST(TraceLogTest, RetainSinceCopiesTheEventsRecordedAfterTheMark) {
  TraceLog trace;
  trace.BeginEvent("warmup");
  trace.EndEvent("warmup");

  const std::uint64_t mark = trace.ThreadMark();
  trace.BeginEvent("req/r1/serve/report_csv");
  trace.EndEvent("req/r1/serve/report_csv");
  trace.RetainSince(mark, "r1");

  ASSERT_EQ(trace.retained_count(), 1u);
  const std::vector<RetainedTrace> retained = trace.RetainedSnapshot();
  EXPECT_EQ(retained[0].label, "r1");
  ASSERT_EQ(retained[0].events.size(), 2u);
  EXPECT_EQ(retained[0].events[0].name, "req/r1/serve/report_csv");
  EXPECT_EQ(retained[0].events[0].phase, TraceEvent::Phase::kBegin);
  EXPECT_EQ(retained[0].events[1].phase, TraceEvent::Phase::kEnd);
}

// Retention is what makes tail sampling useful on a saturated ring:
// the retained copy survives arbitrarily many later wraps.
TEST(TraceLogTest, RetainedEventsSurviveRingWrap) {
  TraceLog trace(/*capacity_per_thread=*/8);
  const std::uint64_t mark = trace.ThreadMark();
  trace.BeginEvent("req/slow");
  trace.EndEvent("req/slow");
  trace.RetainSince(mark, "slow");

  for (int i = 0; i < 64; ++i) {
    trace.BeginEvent("req/fast");
    trace.EndEvent("req/fast");
  }
  EXPECT_GT(trace.dropped_count(), 0u);

  const std::vector<RetainedTrace> retained = trace.RetainedSnapshot();
  ASSERT_EQ(retained.size(), 1u);
  EXPECT_EQ(retained[0].events[0].name, "req/slow");
}

TEST(TraceLogTest, RetainedGroupsAreBoundedOldestFirstEviction) {
  TraceLog trace;
  for (std::size_t i = 0; i < TraceLog::kRetainedGroupCap + 5; ++i) {
    const std::uint64_t mark = trace.ThreadMark();
    trace.BeginEvent("req/" + std::to_string(i));
    trace.EndEvent("req/" + std::to_string(i));
    trace.RetainSince(mark, "g" + std::to_string(i));
  }
  const std::vector<RetainedTrace> retained = trace.RetainedSnapshot();
  ASSERT_EQ(retained.size(), TraceLog::kRetainedGroupCap);
  EXPECT_EQ(retained.front().label, "g5");
  EXPECT_EQ(retained.back().label,
            "g" + std::to_string(TraceLog::kRetainedGroupCap + 4));
}

// A mark taken before events the ring has already recycled clamps to
// the surviving window instead of reading stale storage.
TEST(TraceLogTest, RetainSinceClampsToTheSurvivingWindow) {
  TraceLog trace(/*capacity_per_thread=*/4);
  const std::uint64_t mark = trace.ThreadMark();
  for (int i = 0; i < 10; ++i) {
    trace.BeginEvent("e" + std::to_string(i));
  }
  trace.RetainSince(mark, "clamped");
  const std::vector<RetainedTrace> retained = trace.RetainedSnapshot();
  ASSERT_EQ(retained.size(), 1u);
  ASSERT_EQ(retained[0].events.size(), 4u);
  EXPECT_EQ(retained[0].events.back().name, "e9");
}

}  // namespace
}  // namespace mic::obs
