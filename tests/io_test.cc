#include "mic/io.h"

#include <sstream>

#include <gtest/gtest.h>

namespace mic {
namespace {

TEST(IoTest, CorpusRoundTrip) {
  MicCorpus corpus;
  Catalog& catalog = corpus.catalog();
  MicRecord record;
  record.hospital = catalog.hospitals().Intern("h0");
  record.patient = catalog.patients().Intern("p0");
  record.diseases = {{catalog.diseases().Intern("flu"), 2},
                     {catalog.diseases().Intern("cold"), 1}};
  record.medicines = {{catalog.medicines().Intern("antiviral"), 1}};
  record.Normalize();
  MonthlyDataset month(0);
  month.AddRecord(record);
  ASSERT_TRUE(corpus.AddMonth(std::move(month)).ok());
  ASSERT_TRUE(corpus.AddMonth(MonthlyDataset(1)).ok());

  std::ostringstream out;
  ASSERT_TRUE(WriteCorpusCsv(corpus, out).ok());

  std::istringstream in(out.str());
  auto read_back = ReadCorpusCsv(in);
  ASSERT_TRUE(read_back.ok());
  // Month 1 was empty, so only month 0 is materialized on read.
  ASSERT_GE(read_back->num_months(), 1u);
  ASSERT_EQ(read_back->month(0).size(), 1u);
  const MicRecord& rr = read_back->month(0).records()[0];
  EXPECT_EQ(read_back->catalog().hospitals().Name(rr.hospital), "h0");
  EXPECT_EQ(rr.TotalDiseaseMentions(), 3u);
  EXPECT_EQ(rr.TotalMedicineMentions(), 1u);
  // The "flu:2" multiplicity survived.
  bool found = false;
  for (const auto& entry : rr.diseases) {
    if (read_back->catalog().diseases().Name(entry.id) == "flu") {
      EXPECT_EQ(entry.count, 2u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(IoTest, RejectsMissingHeader) {
  std::istringstream in("not,a,header\n");
  EXPECT_FALSE(ReadCorpusCsv(in).ok());
}

TEST(IoTest, RejectsWrongFieldCount) {
  std::istringstream in(
      "month,hospital,patient,diseases,medicines\n0,h,p,flu\n");
  EXPECT_FALSE(ReadCorpusCsv(in).ok());
}

TEST(IoTest, RejectsNegativeMonth) {
  std::istringstream in(
      "month,hospital,patient,diseases,medicines\n-1,h,p,flu,med\n");
  EXPECT_FALSE(ReadCorpusCsv(in).ok());
}

TEST(IoTest, RejectsMalformedBag) {
  std::istringstream in(
      "month,hospital,patient,diseases,medicines\n0,h,p,flu:x,med\n");
  EXPECT_FALSE(ReadCorpusCsv(in).ok());
  std::istringstream in2(
      "month,hospital,patient,diseases,medicines\n0,h,p,flu:0,med\n");
  EXPECT_FALSE(ReadCorpusCsv(in2).ok());
  std::istringstream in3(
      "month,hospital,patient,diseases,medicines\n0,h,p,a:1:2,med\n");
  EXPECT_FALSE(ReadCorpusCsv(in3).ok());
}

TEST(IoTest, SkipsBlankLinesAndFillsMonthGaps) {
  std::istringstream in(
      "month,hospital,patient,diseases,medicines\n"
      "\n"
      "2,h,p,flu,med\n");
  auto corpus = ReadCorpusCsv(in);
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus->num_months(), 3u);
  EXPECT_TRUE(corpus->month(0).empty());
  EXPECT_TRUE(corpus->month(1).empty());
  EXPECT_EQ(corpus->month(2).size(), 1u);
}

TEST(IoTest, HospitalsRoundTrip) {
  Catalog catalog;
  const HospitalId h0 = catalog.hospitals().Intern("h0");
  const HospitalId h1 = catalog.hospitals().Intern("h1");
  catalog.SetHospitalInfo(h0, {catalog.cities().Intern("tsu"), 10});
  catalog.SetHospitalInfo(h1, {catalog.cities().Intern("ise"), 450});

  std::ostringstream out;
  ASSERT_TRUE(WriteHospitalsCsv(catalog, out).ok());

  Catalog fresh;
  std::istringstream in(out.str());
  ASSERT_TRUE(ReadHospitalsCsv(in, fresh).ok());
  auto info = fresh.GetHospitalInfo(*fresh.hospitals().Lookup("h1"));
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->beds, 450u);
  EXPECT_EQ(fresh.cities().Name(info->city), "ise");
}

TEST(IoTest, HospitalsRejectNegativeBeds) {
  Catalog catalog;
  std::istringstream in("hospital,city,beds\nh,c,-5\n");
  EXPECT_FALSE(ReadHospitalsCsv(in, catalog).ok());
}

TEST(IoTest, FileRoundTrip) {
  MicCorpus corpus;
  Catalog& catalog = corpus.catalog();
  MicRecord record;
  record.hospital = catalog.hospitals().Intern("h");
  record.patient = catalog.patients().Intern("p");
  record.diseases = {{catalog.diseases().Intern("flu"), 1}};
  record.medicines = {{catalog.medicines().Intern("med"), 2}};
  MonthlyDataset month(0);
  month.AddRecord(record);
  ASSERT_TRUE(corpus.AddMonth(std::move(month)).ok());

  const std::string path = ::testing::TempDir() + "/io_test_corpus.csv";
  ASSERT_TRUE(WriteCorpusCsvFile(corpus, path).ok());
  auto read_back = ReadCorpusCsvFile(path);
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back->TotalRecords(), 1u);
  std::remove(path.c_str());
}

TEST(IoTest, MissingFileSurfacesIoError) {
  auto result = ReadCorpusCsvFile("/nonexistent-dir/corpus.csv");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  MicCorpus corpus;
  EXPECT_EQ(
      WriteCorpusCsvFile(corpus, "/nonexistent-dir/corpus.csv").code(),
      StatusCode::kIoError);
}

// Robustness sweep: random garbage after a valid header must produce an
// error or an empty corpus, never a crash or hang.
class GarbageInputTest : public ::testing::TestWithParam<int> {};

TEST_P(GarbageInputTest, ParserNeverCrashes) {
  std::uint64_t state = static_cast<std::uint64_t>(GetParam()) * 977 + 13;
  auto next_byte = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    // Printable-ish ASCII plus separators.
    const char alphabet[] = "abc,;:0129 -\n\t.!";
    return alphabet[(state >> 33) % (sizeof(alphabet) - 1)];
  };
  std::string payload = "month,hospital,patient,diseases,medicines\n";
  for (int i = 0; i < 400; ++i) payload.push_back(next_byte());
  std::istringstream in(payload);
  auto result = ReadCorpusCsv(in);  // ok() or error; both acceptable.
  if (result.ok()) {
    // Whatever parsed must be internally consistent.
    for (std::size_t t = 0; t < result->num_months(); ++t) {
      for (const MicRecord& record : result->month(t).records()) {
        (void)record.TotalDiseaseMentions();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GarbageInputTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace mic
