#include "medmodel/series_io.h"

#include <sstream>

#include <gtest/gtest.h>

namespace mic::medmodel {
namespace {

SeriesSet MakeSet(Catalog& catalog) {
  SeriesSet series(4);
  const DiseaseId flu = catalog.diseases().Intern("flu");
  const MedicineId antiviral = catalog.medicines().Intern("antiviral");
  series.Add(flu, antiviral, 0, 3.5);
  series.Add(flu, antiviral, 2, 1.25);
  const DiseaseId bp = catalog.diseases().Intern("bp");
  const MedicineId depressor = catalog.medicines().Intern("depressor");
  series.Add(bp, depressor, 1, 7.0);
  return series;
}

TEST(SeriesIoTest, RoundTripPreservesAllViews) {
  Catalog catalog;
  const SeriesSet original = MakeSet(catalog);
  std::ostringstream out;
  ASSERT_TRUE(WriteSeriesCsv(original, catalog, out).ok());

  Catalog fresh;
  std::istringstream in(out.str());
  auto read_back = ReadSeriesCsv(in, fresh);
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back->num_months(), 4);
  EXPECT_EQ(read_back->num_pairs(), 2u);
  EXPECT_EQ(read_back->num_diseases(), 2u);
  EXPECT_EQ(read_back->num_medicines(), 2u);

  const DiseaseId flu = *fresh.diseases().Lookup("flu");
  const MedicineId antiviral = *fresh.medicines().Lookup("antiviral");
  const auto pair = read_back->Prescription(flu, antiviral);
  EXPECT_DOUBLE_EQ(pair[0], 3.5);
  EXPECT_DOUBLE_EQ(pair[1], 0.0);
  EXPECT_DOUBLE_EQ(pair[2], 1.25);
  const auto disease = read_back->Disease(flu);
  EXPECT_DOUBLE_EQ(disease[0], 3.5);
  const auto medicine = read_back->Medicine(antiviral);
  EXPECT_DOUBLE_EQ(medicine[2], 1.25);
}

TEST(SeriesIoTest, RejectsBadHeader) {
  Catalog catalog;
  std::istringstream in("wrong,header\n");
  EXPECT_FALSE(ReadSeriesCsv(in, catalog).ok());
}

TEST(SeriesIoTest, RejectsInconsistentLengths) {
  Catalog catalog;
  std::istringstream in(
      "kind,disease,medicine,values\n"
      "disease,flu,-,1;2;3\n"
      "disease,bp,-,1;2\n");
  EXPECT_FALSE(ReadSeriesCsv(in, catalog).ok());
}

TEST(SeriesIoTest, RejectsUnknownKind) {
  Catalog catalog;
  std::istringstream in(
      "kind,disease,medicine,values\n"
      "banana,flu,-,1;2\n");
  EXPECT_FALSE(ReadSeriesCsv(in, catalog).ok());
}

TEST(SeriesIoTest, RejectsUnparsableValues) {
  Catalog catalog;
  std::istringstream in(
      "kind,disease,medicine,values\n"
      "disease,flu,-,1;x;3\n");
  EXPECT_FALSE(ReadSeriesCsv(in, catalog).ok());
}

TEST(SeriesIoTest, SettersOverwriteSingleView) {
  SeriesSet series(3);
  series.SetDiseaseSeries(DiseaseId(0), {1.0, 2.0, 3.0});
  EXPECT_EQ(series.num_diseases(), 1u);
  EXPECT_EQ(series.num_pairs(), 0u);
  EXPECT_DOUBLE_EQ(series.Disease(DiseaseId(0))[1], 2.0);
  // Short vectors are padded to the month count.
  series.SetMedicineSeries(MedicineId(1), {5.0});
  const auto medicine = series.Medicine(MedicineId(1));
  ASSERT_EQ(medicine.size(), 3u);
  EXPECT_DOUBLE_EQ(medicine[0], 5.0);
  EXPECT_DOUBLE_EQ(medicine[2], 0.0);
}

}  // namespace
}  // namespace mic::medmodel
