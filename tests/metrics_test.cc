#include "stats/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace mic::stats {
namespace {

TEST(DescriptiveTest, MeanAndStdDev) {
  const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0,
                                      9.0};
  EXPECT_DOUBLE_EQ(Mean(values), 5.0);
  // Sample SD with n-1: sqrt(32/7).
  EXPECT_NEAR(StdDev(values), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({1.0}), 0.0);
}

TEST(MedianTest, OddAndEven) {
  EXPECT_DOUBLE_EQ(*Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(*Median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(*Median({5.0}), 5.0);
  EXPECT_FALSE(Median({}).ok());
}

TEST(RmseTest, KnownValue) {
  EXPECT_DOUBLE_EQ(*Rmse({1.0, 2.0}, {1.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(*Rmse({0.0, 0.0}, {3.0, 4.0}),
                   std::sqrt((9.0 + 16.0) / 2.0));
  EXPECT_FALSE(Rmse({1.0}, {1.0, 2.0}).ok());
  EXPECT_FALSE(Rmse({}, {}).ok());
}

TEST(IncompleteBetaTest, KnownValues) {
  // I_x(1, 1) = x.
  EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, 0.3), 0.3, 1e-10);
  // I_x(2, 1) = x^2.
  EXPECT_NEAR(RegularizedIncompleteBeta(2.0, 1.0, 0.5), 0.25, 1e-10);
  // Symmetry: I_x(a, b) = 1 - I_{1-x}(b, a).
  const double lhs = RegularizedIncompleteBeta(2.5, 3.5, 0.4);
  const double rhs = 1.0 - RegularizedIncompleteBeta(3.5, 2.5, 0.6);
  EXPECT_NEAR(lhs, rhs, 1e-10);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 2.0, 1.0), 1.0);
}

TEST(StudentTTest, CdfKnownValues) {
  // t distribution with large dof approaches the normal: CDF(1.96) ~ .975.
  EXPECT_NEAR(StudentTCdf(1.96, 1000.0), 0.975, 2e-3);
  // Symmetric around zero.
  EXPECT_NEAR(StudentTCdf(0.0, 7.0), 0.5, 1e-12);
  EXPECT_NEAR(StudentTCdf(-2.0, 10.0) + StudentTCdf(2.0, 10.0), 1.0,
              1e-10);
  // t(1) = Cauchy: CDF(1) = 0.75.
  EXPECT_NEAR(StudentTCdf(1.0, 1.0), 0.75, 1e-8);
}

TEST(PairedTTestTest, KnownExample) {
  // Differences: {1, 2, 3, 4, 5}: mean 3, sd sqrt(2.5),
  // t = 3 / (sqrt(2.5)/sqrt(5)) = 3 / 0.7071 = 4.2426.
  const std::vector<double> a = {2.0, 4.0, 6.0, 8.0, 10.0};
  const std::vector<double> b = {1.0, 2.0, 3.0, 4.0, 5.0};
  auto result = PairedTTest(a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->t_statistic, 4.2426, 1e-3);
  EXPECT_EQ(result->degrees_of_freedom, 4);
  EXPECT_NEAR(result->mean_difference, 3.0, 1e-12);
  EXPECT_NEAR(result->cohens_d, 3.0 / std::sqrt(2.5), 1e-6);
  // Two-sided p for t = 4.24, dof = 4 is ~0.0132.
  EXPECT_NEAR(result->p_value, 0.0132, 2e-3);
}

TEST(PairedTTestTest, IdenticalSamplesGiveZeroT) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  auto result = PairedTTest(a, a);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->t_statistic, 0.0);
  EXPECT_DOUBLE_EQ(result->p_value, 1.0);
}

TEST(PairedTTestTest, ConstantNonzeroDifference) {
  const std::vector<double> a = {2.0, 3.0, 4.0};
  const std::vector<double> b = {1.0, 2.0, 3.0};
  auto result = PairedTTest(a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(std::isinf(result->t_statistic));
  EXPECT_DOUBLE_EQ(result->p_value, 0.0);
}

TEST(PairedTTestTest, RejectsBadInput) {
  EXPECT_FALSE(PairedTTest({1.0}, {1.0}).ok());
  EXPECT_FALSE(PairedTTest({1.0, 2.0}, {1.0}).ok());
}

TEST(AveragePrecisionTest, HandComputedExamples) {
  // Ranked: R, N, R, N with 2 relevant total, K = 4:
  // AP = (1/1 + 2/3) / 2 = 0.8333.
  EXPECT_NEAR(AveragePrecisionAtK({true, false, true, false}, 4, 2),
              (1.0 + 2.0 / 3.0) / 2.0, 1e-12);
  // Perfect ranking.
  EXPECT_DOUBLE_EQ(AveragePrecisionAtK({true, true, false}, 3, 2), 1.0);
  // Nothing relevant retrieved.
  EXPECT_DOUBLE_EQ(AveragePrecisionAtK({false, false}, 2, 3), 0.0);
  // num_relevant = 0.
  EXPECT_DOUBLE_EQ(AveragePrecisionAtK({true}, 1, 0), 0.0);
  // Normalizer is min(K, num_relevant): 1 relevant in top-1 of many.
  EXPECT_DOUBLE_EQ(AveragePrecisionAtK({true, false}, 2, 1), 1.0);
}

TEST(NdcgTest, HandComputedExamples) {
  // Ranked R, N, R with 2 relevant: DCG = 1 + 1/log2(4) = 1.5,
  // IDCG = 1 + 1/log2(3).
  const double idcg = 1.0 + 1.0 / std::log2(3.0);
  EXPECT_NEAR(NdcgAtK({true, false, true}, 3, 2), 1.5 / idcg, 1e-12);
  EXPECT_DOUBLE_EQ(NdcgAtK({true, true}, 2, 2), 1.0);
  EXPECT_DOUBLE_EQ(NdcgAtK({false, false}, 2, 2), 0.0);
  EXPECT_DOUBLE_EQ(NdcgAtK({}, 5, 0), 0.0);
}

TEST(KappaTest, PerfectAgreement) {
  BinaryConfusion confusion;
  confusion.both_positive = 40;
  confusion.both_negative = 60;
  auto kappa = CohensKappa(confusion);
  ASSERT_TRUE(kappa.ok());
  EXPECT_DOUBLE_EQ(*kappa, 1.0);
}

TEST(KappaTest, KnownValue) {
  // Classic example: a=20, b=5, c=10, d=15 ->
  // po = 35/50 = 0.7; pe = (30/50)(25/50) + (20/50)(25/50) = 0.5;
  // kappa = 0.4.
  BinaryConfusion confusion;
  confusion.both_positive = 20;
  confusion.only_first = 5;
  confusion.only_second = 10;
  confusion.both_negative = 15;
  auto kappa = CohensKappa(confusion);
  ASSERT_TRUE(kappa.ok());
  EXPECT_NEAR(*kappa, 0.4, 1e-12);
}

TEST(KappaTest, EmptyFails) {
  EXPECT_FALSE(CohensKappa(BinaryConfusion{}).ok());
}

TEST(ConfusionTest, AddRoutesCells) {
  BinaryConfusion confusion;
  confusion.Add(true, true);
  confusion.Add(true, false);
  confusion.Add(false, true);
  confusion.Add(false, false);
  confusion.Add(false, false);
  EXPECT_EQ(confusion.both_positive, 1u);
  EXPECT_EQ(confusion.only_first, 1u);
  EXPECT_EQ(confusion.only_second, 1u);
  EXPECT_EQ(confusion.both_negative, 2u);
  EXPECT_EQ(confusion.Total(), 5u);
}

}  // namespace
}  // namespace mic::stats
