// Tests for corpus summaries, SeriesSet ranking helpers, and the
// generator's determinism snapshot.

#include <gtest/gtest.h>

#include "medmodel/timeseries.h"
#include "mic/summary.h"
#include "synth/generator.h"
#include "synth/scenario.h"

namespace mic {
namespace {

MicRecord MakeRecord(Catalog& catalog, const char* hospital,
                     const char* patient,
                     std::initializer_list<const char*> diseases,
                     std::initializer_list<const char*> medicines) {
  MicRecord record;
  record.hospital = catalog.hospitals().Intern(hospital);
  record.patient = catalog.patients().Intern(patient);
  for (const char* name : diseases) {
    record.diseases.push_back({catalog.diseases().Intern(name), 1});
  }
  for (const char* name : medicines) {
    record.medicines.push_back({catalog.medicines().Intern(name), 1});
  }
  record.Normalize();
  return record;
}

TEST(CorpusSummaryTest, ComputesMonthlyAndRecordMeans) {
  MicCorpus corpus;
  Catalog& catalog = corpus.catalog();
  MonthlyDataset m0(0);
  m0.AddRecord(MakeRecord(catalog, "h0", "p0", {"a", "b"}, {"x"}));
  m0.AddRecord(MakeRecord(catalog, "h1", "p1", {"a"}, {"x", "y"}));
  MonthlyDataset m1(1);
  m1.AddRecord(MakeRecord(catalog, "h0", "p0", {"b", "c"}, {"y"}));
  ASSERT_TRUE(corpus.AddMonth(std::move(m0)).ok());
  ASSERT_TRUE(corpus.AddMonth(std::move(m1)).ok());

  auto summary = SummarizeCorpus(corpus);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->num_months, 2u);
  EXPECT_EQ(summary->total_records, 3u);
  EXPECT_DOUBLE_EQ(summary->mean_records_per_month, 1.5);
  EXPECT_DOUBLE_EQ(summary->mean_hospitals_per_month, 1.5);
  EXPECT_DOUBLE_EQ(summary->mean_patients_per_month, 1.5);
  EXPECT_DOUBLE_EQ(summary->mean_distinct_diseases_per_month, 2.0);
  EXPECT_DOUBLE_EQ(summary->mean_distinct_medicines_per_month, 1.5);
  EXPECT_DOUBLE_EQ(summary->mean_diseases_per_record, 5.0 / 3.0);
  EXPECT_DOUBLE_EQ(summary->mean_medicines_per_record, 4.0 / 3.0);

  const std::string text = FormatCorpusSummary(*summary);
  EXPECT_NE(text.find("total records:"), std::string::npos);
  EXPECT_NE(text.find("1.667"), std::string::npos);
}

TEST(CorpusSummaryTest, EmptyCorpusFails) {
  MicCorpus corpus;
  EXPECT_FALSE(SummarizeCorpus(corpus).ok());
}

TEST(SeriesRankingTest, TopMedicinesAndDiseases) {
  medmodel::SeriesSet series(3);
  series.Add(DiseaseId(0), MedicineId(0), 0, 10.0);
  series.Add(DiseaseId(0), MedicineId(1), 1, 30.0);
  series.Add(DiseaseId(0), MedicineId(2), 2, 20.0);
  series.Add(DiseaseId(1), MedicineId(1), 0, 5.0);

  const auto top = series.TopMedicines(DiseaseId(0), 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, MedicineId(1));
  EXPECT_DOUBLE_EQ(top[0].second, 30.0);
  EXPECT_EQ(top[1].first, MedicineId(2));

  const auto diseases = series.TopDiseases(MedicineId(1), 5);
  ASSERT_EQ(diseases.size(), 2u);
  EXPECT_EQ(diseases[0].first, DiseaseId(0));
  EXPECT_EQ(diseases[1].first, DiseaseId(1));

  EXPECT_TRUE(series.TopMedicines(DiseaseId(9), 3).empty());
}

// Determinism snapshot: the tiny world at a fixed seed must generate
// byte-identical aggregates across library versions on one platform —
// the reproducibility contract every bench relies on. If an intentional
// generator change breaks this, update the constants.
TEST(DeterminismTest, TinyWorldSnapshot) {
  auto world = synth::World::Create(synth::MakeTinyWorldConfig(12, 7));
  ASSERT_TRUE(world.ok());
  synth::ClaimGenerator generator(&*world);
  auto data = generator.Generate();
  ASSERT_TRUE(data.ok());

  auto summary = SummarizeCorpus(data->corpus);
  ASSERT_TRUE(summary.ok());
  std::uint64_t disease_mentions = 0;
  std::uint64_t medicine_mentions = 0;
  for (std::size_t t = 0; t < data->corpus.num_months(); ++t) {
    for (const MicRecord& record : data->corpus.month(t).records()) {
      disease_mentions += record.TotalDiseaseMentions();
      medicine_mentions += record.TotalMedicineMentions();
    }
  }
  // Snapshot constants (tiny world, seed 7, 12 months).
  EXPECT_EQ(summary->total_records, 1681u);
  EXPECT_EQ(disease_mentions, 3801u);
  EXPECT_EQ(medicine_mentions, 3757u);
}

}  // namespace
}  // namespace mic
