#include "mic/filter.h"

#include <gtest/gtest.h>

namespace mic {
namespace {

MicRecord MakeRecord(std::initializer_list<int> diseases,
                     std::initializer_list<int> medicines) {
  MicRecord record;
  for (int id : diseases) {
    record.diseases.push_back({DiseaseId(static_cast<std::uint32_t>(id)), 1});
  }
  for (int id : medicines) {
    record.medicines.push_back(
        {MedicineId(static_cast<std::uint32_t>(id)), 1});
  }
  record.Normalize();
  return record;
}

MonthlyDataset MakeMonth() {
  // Disease 0 appears 3x, disease 1 appears 1x; medicine 0 3x,
  // medicine 1 1x.
  MonthlyDataset month(0);
  month.AddRecord(MakeRecord({0, 1}, {0}));
  month.AddRecord(MakeRecord({0}, {0, 1}));
  month.AddRecord(MakeRecord({0}, {0}));
  return month;
}

TEST(FilterTest, RemovesRareItems) {
  MonthlyDataset month = MakeMonth();
  FilterOptions options;
  options.min_disease_count = 2;
  options.min_medicine_count = 2;
  const FilterReport report = FilterMonth(options, month);
  EXPECT_EQ(report.diseases_removed, 1u);
  EXPECT_EQ(report.medicines_removed, 1u);
  for (const MicRecord& record : month.records()) {
    for (const auto& disease : record.diseases) {
      EXPECT_EQ(disease.id, DiseaseId(0));
    }
    for (const auto& medicine : record.medicines) {
      EXPECT_EQ(medicine.id, MedicineId(0));
    }
  }
}

TEST(FilterTest, DropsEmptiedRecords) {
  MonthlyDataset month(0);
  month.AddRecord(MakeRecord({0}, {1}));   // medicine 1 is rare
  month.AddRecord(MakeRecord({0}, {0}));
  month.AddRecord(MakeRecord({0}, {0}));
  FilterOptions options;
  options.min_disease_count = 1;
  options.min_medicine_count = 2;
  const FilterReport report = FilterMonth(options, month);
  EXPECT_EQ(report.records_dropped, 1u);
  EXPECT_EQ(month.size(), 2u);
}

TEST(FilterTest, KeepEmptyRecordsWhenDisabled) {
  MonthlyDataset month(0);
  month.AddRecord(MakeRecord({0}, {1}));
  month.AddRecord(MakeRecord({0}, {0}));
  month.AddRecord(MakeRecord({0}, {0}));
  FilterOptions options;
  options.min_medicine_count = 2;
  options.drop_empty_records = false;
  FilterMonth(options, month);
  EXPECT_EQ(month.size(), 3u);
  EXPECT_TRUE(month.records()[0].medicines.empty());
}

TEST(FilterTest, ThresholdOneKeepsEverything) {
  MonthlyDataset month = MakeMonth();
  FilterOptions options;
  options.min_disease_count = 1;
  options.min_medicine_count = 1;
  const FilterReport report = FilterMonth(options, month);
  EXPECT_EQ(report.diseases_removed, 0u);
  EXPECT_EQ(report.medicines_removed, 0u);
  EXPECT_EQ(report.records_dropped, 0u);
  EXPECT_EQ(month.size(), 3u);
}

TEST(FilterTest, CorpusFilterAggregates) {
  MicCorpus corpus;
  {
    MonthlyDataset month = MakeMonth();
    month.set_month(0);
    ASSERT_TRUE(corpus.AddMonth(std::move(month)).ok());
  }
  {
    MonthlyDataset month = MakeMonth();
    month.set_month(1);
    ASSERT_TRUE(corpus.AddMonth(std::move(month)).ok());
  }
  FilterOptions options;
  options.min_disease_count = 2;
  options.min_medicine_count = 2;
  const FilterReport report = FilterCorpus(options, corpus);
  EXPECT_EQ(report.diseases_removed, 2u);  // One per month.
  EXPECT_EQ(report.medicines_removed, 2u);
}

// Multiplicity counts towards the threshold: a disease mentioned 5 times
// in one record passes min_count = 5.
TEST(FilterTest, MultiplicityCounts) {
  MonthlyDataset month(0);
  MicRecord record;
  record.diseases = {{DiseaseId(0), 5}};
  record.medicines = {{MedicineId(0), 5}};
  month.AddRecord(record);
  FilterOptions options;  // Default thresholds are 5.
  const FilterReport report = FilterMonth(options, month);
  EXPECT_EQ(report.diseases_removed, 0u);
  EXPECT_EQ(report.medicines_removed, 0u);
  EXPECT_EQ(month.size(), 1u);
}

}  // namespace
}  // namespace mic
