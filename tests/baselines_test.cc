#include "medmodel/baselines.h"

#include <gtest/gtest.h>

namespace mic::medmodel {
namespace {

MicRecord MakeRecord(std::initializer_list<std::pair<int, int>> diseases,
                     std::initializer_list<std::pair<int, int>> medicines) {
  MicRecord record;
  for (const auto& [id, count] : diseases) {
    record.diseases.push_back({DiseaseId(static_cast<std::uint32_t>(id)),
                               static_cast<std::uint32_t>(count)});
  }
  for (const auto& [id, count] : medicines) {
    record.medicines.push_back({MedicineId(static_cast<std::uint32_t>(id)),
                                static_cast<std::uint32_t>(count)});
  }
  record.Normalize();
  return record;
}

MonthlyDataset SimpleMonth() {
  MonthlyDataset month(0);
  month.AddRecord(MakeRecord({{0, 1}}, {{0, 2}}));
  month.AddRecord(MakeRecord({{0, 1}, {1, 1}}, {{0, 1}, {1, 1}}));
  month.AddRecord(MakeRecord({{1, 2}}, {{1, 1}}));
  return month;
}

TEST(CooccurrenceModelTest, PhiProportionalToEquationTen) {
  BaselineOptions options;
  options.smoothing = 0.0;
  auto model = CooccurrenceModel::Fit(SimpleMonth(), options);
  ASSERT_TRUE(model.ok());
  // Cooc(d0, m0) = 1*2 (record 1) + 1*1 (record 2) = 3;
  // Cooc(d0, m1) = 1*1 = 1.
  EXPECT_NEAR((*model)->Phi(DiseaseId(0), MedicineId(0)), 0.75, 1e-12);
  EXPECT_NEAR((*model)->Phi(DiseaseId(0), MedicineId(1)), 0.25, 1e-12);
  // Cooc(d1, m0) = 1; Cooc(d1, m1) = 1 + 2 = 3.
  EXPECT_NEAR((*model)->Phi(DiseaseId(1), MedicineId(1)), 0.75, 1e-12);
  // Unseen pairs and diseases are 0.
  EXPECT_DOUBLE_EQ((*model)->Phi(DiseaseId(7), MedicineId(0)), 0.0);
}

TEST(CooccurrenceModelTest, RawCountsExposedAsPairCounts) {
  BaselineOptions options;
  options.smoothing = 0.0;
  auto model = CooccurrenceModel::Fit(SimpleMonth(), options);
  ASSERT_TRUE(model.ok());
  const PairCounts& counts = (*model)->MonthlyPairCounts();
  EXPECT_DOUBLE_EQ(counts.Get(DiseaseId(0), MedicineId(0)), 3.0);
  EXPECT_DOUBLE_EQ(counts.Get(DiseaseId(1), MedicineId(1)), 3.0);
  EXPECT_DOUBLE_EQ(counts.Get(DiseaseId(1), MedicineId(0)), 1.0);
}

TEST(CooccurrenceModelTest, SmoothingKeepsUnseenPositive) {
  BaselineOptions options;
  options.smoothing = 0.01;
  auto model = CooccurrenceModel::Fit(SimpleMonth(), options);
  ASSERT_TRUE(model.ok());
  // d1 never cooccurs with... both medicines cooccur; use a pair with
  // zero raw count within a seen disease row: none here, so check the
  // floor directly via a seen disease and the floor magnitude.
  const double floor = 0.01 / 2.0;
  EXPECT_GE((*model)->Phi(DiseaseId(0), MedicineId(1)), floor);
}

TEST(CooccurrenceModelTest, RejectsEmptyMonth) {
  MonthlyDataset empty(0);
  EXPECT_FALSE(CooccurrenceModel::Fit(empty).ok());
  BaselineOptions bad;
  bad.smoothing = -0.1;
  EXPECT_FALSE(CooccurrenceModel::Fit(SimpleMonth(), bad).ok());
}

TEST(UnigramModelTest, ProbabilitiesMatchFrequencies) {
  BaselineOptions options;
  options.smoothing = 0.0;
  auto model = UnigramModel::Fit(SimpleMonth(), options);
  ASSERT_TRUE(model.ok());
  // m0 mentions: 3; m1 mentions: 2; total 5.
  EXPECT_NEAR((*model)->Probability(MedicineId(0)), 0.6, 1e-12);
  EXPECT_NEAR((*model)->Probability(MedicineId(1)), 0.4, 1e-12);
  // Prediction ignores the record content.
  const MicRecord record = MakeRecord({{0, 1}}, {});
  EXPECT_DOUBLE_EQ((*model)->PredictiveProbability(record, MedicineId(0)),
                   0.6);
}

TEST(UnigramModelTest, EmptyPairCounts) {
  auto model = UnigramModel::Fit(SimpleMonth());
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE((*model)->MonthlyPairCounts().empty());
}

TEST(UnigramModelTest, RejectsMonthWithoutMedicines) {
  MonthlyDataset month(0);
  month.AddRecord(MakeRecord({{0, 1}}, {}));
  EXPECT_FALSE(UnigramModel::Fit(month).ok());
}

}  // namespace
}  // namespace mic::medmodel
