// Tests for the trigonometric seasonal form (the dummy form's
// alternative representation, Commandeur & Koopman ch. 4).

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ssm/decompose.h"
#include "ssm/fit.h"
#include "ssm/kalman.h"
#include "ssm/structural.h"

namespace mic::ssm {
namespace {

std::vector<double> SeasonalSeries(int n, double amplitude,
                                   double noise_sd, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (int t = 0; t < n; ++t) {
    x[t] = 10.0 + amplitude * std::sin(2.0 * M_PI * t / 12.0) +
           rng.NextGaussian(0.0, noise_sd);
  }
  return x;
}

TEST(TrigSeasonalTest, StateCountsAndNames) {
  StructuralSpec spec;
  spec.seasonal = true;
  spec.seasonal_form = SeasonalForm::kTrigonometric;
  spec.harmonics = 2;
  EXPECT_EQ(spec.NumSeasonalStates(), 4);
  EXPECT_EQ(spec.NumDiffuseStates(), 5);
  spec.harmonics = 6;  // Nyquist harmonic for period 12 has one state.
  EXPECT_EQ(spec.NumSeasonalStates(), 11);
  EXPECT_EQ(spec.ToString(), "LL+S(trig:6)");
  EXPECT_EQ(SeasonalFormName(SeasonalForm::kDummy), "dummy");
  EXPECT_EQ(SeasonalFormName(SeasonalForm::kTrigonometric), "trig");
  // Full trig (period/2 harmonics) has the same state count as dummy.
  StructuralSpec dummy;
  dummy.seasonal = true;
  EXPECT_EQ(spec.NumSeasonalStates(), dummy.NumSeasonalStates());
}

TEST(TrigSeasonalTest, RejectsBadHarmonics) {
  StructuralSpec spec;
  spec.seasonal = true;
  spec.seasonal_form = SeasonalForm::kTrigonometric;
  spec.harmonics = 0;
  EXPECT_FALSE(BuildStructuralModel(spec, {1.0, 0.1, 0.01}).ok());
  spec.harmonics = 7;  // > period/2 for period 12.
  EXPECT_FALSE(BuildStructuralModel(spec, {1.0, 0.1, 0.01}).ok());
}

TEST(TrigSeasonalTest, DeterministicRotationHasPeriodTwelve) {
  StructuralSpec spec;
  spec.seasonal = true;
  spec.seasonal_form = SeasonalForm::kTrigonometric;
  spec.harmonics = 2;
  auto model = BuildStructuralModel(spec, {1.0, 0.0, 0.0});
  ASSERT_TRUE(model.ok());
  // With zero noise, applying the transition 12 times returns the
  // seasonal states to their start (rotation by 2 pi).
  la::Vector state(model->state_dim());
  state[1] = 1.0;
  state[2] = 0.3;
  state[3] = -0.7;
  state[4] = 0.2;
  la::Vector rotated = state;
  for (int step = 0; step < 12; ++step) {
    rotated = model->transition * rotated;
  }
  for (std::size_t i = 0; i < state.size(); ++i) {
    EXPECT_NEAR(rotated[i], state[i], 1e-9) << "state " << i;
  }
}

TEST(TrigSeasonalTest, FitsSinusoidWithOneHarmonic) {
  const auto x = SeasonalSeries(48, 4.0, 0.3, 5);
  StructuralSpec trig;
  trig.seasonal = true;
  trig.seasonal_form = SeasonalForm::kTrigonometric;
  trig.harmonics = 1;
  auto fitted = FitStructuralModel(x, trig);
  ASSERT_TRUE(fitted.ok());
  auto decomposition = Decompose(*fitted, x);
  ASSERT_TRUE(decomposition.ok());
  // The smoothed seasonal tracks the planted sinusoid.
  double error = 0.0;
  for (int t = 12; t < 48; ++t) {
    const double truth = 4.0 * std::sin(2.0 * M_PI * t / 12.0);
    error += std::fabs(decomposition->seasonal[t] - truth);
  }
  EXPECT_LT(error / 36.0, 0.6);
}

TEST(TrigSeasonalTest, OneHarmonicBeatsDummyOnPureSinusoid) {
  // A pure first-harmonic seasonal: the 1-harmonic trig model (3 states,
  // AIC parameter count 1+2+3) should beat the 11-state dummy form.
  const auto x = SeasonalSeries(43, 4.0, 0.4, 11);
  StructuralSpec trig;
  trig.seasonal = true;
  trig.seasonal_form = SeasonalForm::kTrigonometric;
  trig.harmonics = 1;
  StructuralSpec dummy;
  dummy.seasonal = true;
  auto fit_trig = FitStructuralModel(x, trig);
  auto fit_dummy = FitStructuralModel(x, dummy);
  ASSERT_TRUE(fit_trig.ok());
  ASSERT_TRUE(fit_dummy.ok());
  EXPECT_LT(fit_trig->aic, fit_dummy->aic);
}

TEST(TrigSeasonalTest, WorksWithInterventionSearch) {
  Rng rng(21);
  std::vector<double> x(43);
  for (int t = 0; t < 43; ++t) {
    x[t] = 10.0 + 3.0 * std::sin(2.0 * M_PI * t / 12.0) +
           (t >= 24 ? 1.4 * (t - 23) : 0.0) +
           rng.NextGaussian(0.0, 0.4);
  }
  StructuralSpec spec;
  spec.seasonal = true;
  spec.seasonal_form = SeasonalForm::kTrigonometric;
  spec.harmonics = 2;
  spec.set_change_point(24);
  auto fitted = FitStructuralModel(x, spec);
  ASSERT_TRUE(fitted.ok());
  EXPECT_NEAR(fitted->lambda, 1.4, 0.5);
  auto decomposition = Decompose(*fitted, x);
  ASSERT_TRUE(decomposition.ok());
  for (std::size_t t = 0; t < x.size(); ++t) {
    EXPECT_NEAR(decomposition->fitted[t] + decomposition->irregular[t],
                x[t], 1e-9);
  }
}

}  // namespace
}  // namespace mic::ssm
