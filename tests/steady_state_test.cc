// Tests for the steady-state Kalman filter shortcut: once the predicted
// covariance converges, the filter freezes it — results must match the
// full recursion to within the steadiness tolerance, and the shortcut
// must disable itself whenever it would be unsound.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ssm/kalman.h"
#include "ssm/structural.h"

namespace mic::ssm {
namespace {

std::vector<double> LongSeries(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  double level = 5.0;
  for (double& value : x) {
    level += rng.NextGaussian(0.0, 0.2);
    value = level + 2.0 * std::sin(0.5 * level) +
            rng.NextGaussian(0.0, 0.7);
  }
  return x;
}

TEST(SteadyStateTest, MatchesFullRecursionLocalLevel) {
  StructuralSpec spec;
  auto model = BuildStructuralModel(spec, {0.8, 0.1, 0.0});
  ASSERT_TRUE(model.ok());
  const auto x = LongSeries(400, 3);

  KalmanOptions fast;
  fast.allow_steady_state = true;
  KalmanOptions slow;
  slow.allow_steady_state = false;
  auto fast_result = RunFilter(*model, x, fast);
  auto slow_result = RunFilter(*model, x, slow);
  ASSERT_TRUE(fast_result.ok());
  ASSERT_TRUE(slow_result.ok());
  EXPECT_NEAR(fast_result->log_likelihood, slow_result->log_likelihood,
              1e-6);
  for (std::size_t t = 0; t < x.size(); ++t) {
    EXPECT_NEAR(fast_result->predictions[t], slow_result->predictions[t],
                1e-6);
    EXPECT_NEAR(fast_result->prediction_variances[t],
                slow_result->prediction_variances[t], 1e-8);
  }
}

TEST(SteadyStateTest, MatchesFullRecursionSeasonal) {
  StructuralSpec spec;
  spec.seasonal = true;
  auto model = BuildStructuralModel(spec, {1.0, 0.05, 0.01});
  ASSERT_TRUE(model.ok());
  const auto x = LongSeries(300, 7);

  KalmanOptions fast;
  KalmanOptions slow;
  slow.allow_steady_state = false;
  auto fast_result = RunFilter(*model, x, fast);
  auto slow_result = RunFilter(*model, x, slow);
  ASSERT_TRUE(fast_result.ok());
  ASSERT_TRUE(slow_result.ok());
  EXPECT_NEAR(fast_result->log_likelihood, slow_result->log_likelihood,
              1e-5);
}

TEST(SteadyStateTest, GapRestartsCovarianceTransient) {
  StructuralSpec spec;
  auto model = BuildStructuralModel(spec, {0.5, 0.2, 0.0});
  ASSERT_TRUE(model.ok());
  auto x = LongSeries(200, 11);
  // A mid-stream gap: the covariance grows through it, so the frozen
  // steady-state F would be wrong right after the gap.
  for (int t = 100; t < 105; ++t) {
    x[t] = std::numeric_limits<double>::quiet_NaN();
  }
  KalmanOptions fast;
  KalmanOptions slow;
  slow.allow_steady_state = false;
  auto fast_result = RunFilter(*model, x, fast);
  auto slow_result = RunFilter(*model, x, slow);
  ASSERT_TRUE(fast_result.ok());
  ASSERT_TRUE(slow_result.ok());
  EXPECT_NEAR(fast_result->log_likelihood, slow_result->log_likelihood,
              1e-6);
  // Variance right after the gap must reflect the widened uncertainty.
  EXPECT_NEAR(fast_result->prediction_variances[105],
              slow_result->prediction_variances[105], 1e-8);
  EXPECT_GT(fast_result->prediction_variances[105],
            fast_result->prediction_variances[99]);
}

TEST(SteadyStateTest, DisabledWhenStatesStored) {
  // store_states needs every P_t; the shortcut must not run. We verify
  // by checking the stored covariances keep evolving as in the slow
  // path.
  StructuralSpec spec;
  auto model = BuildStructuralModel(spec, {0.5, 0.2, 0.0});
  ASSERT_TRUE(model.ok());
  const auto x = LongSeries(150, 13);
  KalmanOptions options;
  options.store_states = true;
  auto result = RunFilter(*model, x, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->predicted_covariances.size(), x.size());
  // And the smoother (which uses stored states) still round-trips.
  auto smoothed = RunSmoother(*model, x);
  ASSERT_TRUE(smoothed.ok());
}

}  // namespace
}  // namespace mic::ssm
