#include "mic/dataset.h"

#include <gtest/gtest.h>

namespace mic {
namespace {

MicRecord MakeRecord(std::initializer_list<std::pair<int, int>> diseases,
                     std::initializer_list<std::pair<int, int>> medicines,
                     int hospital = 0) {
  MicRecord record;
  record.hospital = HospitalId(static_cast<std::uint32_t>(hospital));
  record.patient = PatientId(0);
  for (const auto& [id, count] : diseases) {
    record.diseases.push_back({DiseaseId(static_cast<std::uint32_t>(id)),
                               static_cast<std::uint32_t>(count)});
  }
  for (const auto& [id, count] : medicines) {
    record.medicines.push_back({MedicineId(static_cast<std::uint32_t>(id)),
                                static_cast<std::uint32_t>(count)});
  }
  record.Normalize();
  return record;
}

TEST(MonthlyDatasetTest, FrequenciesAggregateMultiplicity) {
  MonthlyDataset month(0);
  month.AddRecord(MakeRecord({{0, 2}, {1, 1}}, {{0, 1}}));
  month.AddRecord(MakeRecord({{0, 1}}, {{0, 2}, {1, 1}}));

  const auto diseases = month.DiseaseFrequencies();
  EXPECT_EQ(diseases.at(DiseaseId(0)), 3u);
  EXPECT_EQ(diseases.at(DiseaseId(1)), 1u);
  const auto medicines = month.MedicineFrequencies();
  EXPECT_EQ(medicines.at(MedicineId(0)), 3u);
  EXPECT_EQ(medicines.at(MedicineId(1)), 1u);

  EXPECT_EQ(month.CountDistinctDiseases(), 2u);
  EXPECT_EQ(month.CountDistinctMedicines(), 2u);
  EXPECT_DOUBLE_EQ(month.MeanDiseasesPerRecord(), 2.0);
  EXPECT_DOUBLE_EQ(month.MeanMedicinesPerRecord(), 2.0);
}

TEST(MonthlyDatasetTest, EmptyDatasetStats) {
  MonthlyDataset month(3);
  EXPECT_TRUE(month.empty());
  EXPECT_DOUBLE_EQ(month.MeanDiseasesPerRecord(), 0.0);
  EXPECT_EQ(month.CountDistinctDiseases(), 0u);
}

TEST(MicCorpusTest, MonthsMustBeConsecutive) {
  MicCorpus corpus;
  EXPECT_TRUE(corpus.AddMonth(MonthlyDataset(0)).ok());
  EXPECT_TRUE(corpus.AddMonth(MonthlyDataset(1)).ok());
  EXPECT_FALSE(corpus.AddMonth(MonthlyDataset(5)).ok());
  EXPECT_EQ(corpus.num_months(), 2u);
}

TEST(MicCorpusTest, TotalRecordsSumsAcrossMonths) {
  MicCorpus corpus;
  MonthlyDataset m0(0);
  m0.AddRecord(MakeRecord({{0, 1}}, {{0, 1}}));
  m0.AddRecord(MakeRecord({{1, 1}}, {{1, 1}}));
  MonthlyDataset m1(1);
  m1.AddRecord(MakeRecord({{0, 1}}, {{0, 1}}));
  ASSERT_TRUE(corpus.AddMonth(std::move(m0)).ok());
  ASSERT_TRUE(corpus.AddMonth(std::move(m1)).ok());
  EXPECT_EQ(corpus.TotalRecords(), 3u);
}

TEST(MicCorpusTest, FilterByHospitalKeepsCatalogAndMonths) {
  MicCorpus corpus;
  corpus.catalog().hospitals().Intern("h0");
  corpus.catalog().hospitals().Intern("h1");
  MonthlyDataset m0(0);
  m0.AddRecord(MakeRecord({{0, 1}}, {{0, 1}}, /*hospital=*/0));
  m0.AddRecord(MakeRecord({{1, 1}}, {{1, 1}}, /*hospital=*/1));
  ASSERT_TRUE(corpus.AddMonth(std::move(m0)).ok());
  ASSERT_TRUE(corpus.AddMonth(MonthlyDataset(1)).ok());

  MicCorpus filtered = corpus.FilterByHospital(
      [](HospitalId h) { return h == HospitalId(0); });
  EXPECT_EQ(filtered.num_months(), 2u);
  EXPECT_EQ(filtered.TotalRecords(), 1u);
  EXPECT_EQ(filtered.month(0).records()[0].hospital, HospitalId(0));
  // Catalog is shared, not copied.
  EXPECT_EQ(&filtered.catalog(), &corpus.catalog());
}

}  // namespace
}  // namespace mic
