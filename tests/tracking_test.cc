// Tests for the temporal-coupling extension (§IX): fitting month t with
// month t-1's model as a Dirichlet prior on Phi.

#include <gtest/gtest.h>

#include "medmodel/evaluation.h"
#include "medmodel/medication_model.h"
#include "medmodel/timeseries.h"
#include "synth/generator.h"
#include "synth/scenario.h"

namespace mic::medmodel {
namespace {

MicRecord MakeRecord(std::initializer_list<int> diseases,
                     std::initializer_list<int> medicines) {
  MicRecord record;
  for (int id : diseases) {
    record.diseases.push_back({DiseaseId(static_cast<std::uint32_t>(id)), 1});
  }
  for (int id : medicines) {
    record.medicines.push_back(
        {MedicineId(static_cast<std::uint32_t>(id)), 1});
  }
  record.Normalize();
  return record;
}

TEST(TrackingTest, PriorStrengthZeroMatchesIndependentFit) {
  MonthlyDataset month(0);
  for (int i = 0; i < 20; ++i) month.AddRecord(MakeRecord({0, 1}, {0, 1}));
  for (int i = 0; i < 10; ++i) month.AddRecord(MakeRecord({1}, {1}));

  auto independent = MedicationModel::Fit(month);
  MedicationModelOptions options;
  options.prior_strength = 0.0;
  auto with_null_prior =
      MedicationModel::Fit(month, options, independent->get());
  ASSERT_TRUE(independent.ok());
  ASSERT_TRUE(with_null_prior.ok());
  for (int d = 0; d < 2; ++d) {
    for (int m = 0; m < 2; ++m) {
      EXPECT_DOUBLE_EQ((*independent)->Phi(DiseaseId(d), MedicineId(m)),
                       (*with_null_prior)->Phi(DiseaseId(d), MedicineId(m)));
    }
  }
}

TEST(TrackingTest, PriorPullsSparseMonthTowardPreviousPhi) {
  // Month 0: abundant, clean evidence that disease 0 -> medicine 0.
  MonthlyDataset month0(0);
  for (int i = 0; i < 50; ++i) month0.AddRecord(MakeRecord({0}, {0}));
  for (int i = 0; i < 50; ++i) month0.AddRecord(MakeRecord({1}, {1}));
  auto prior = MedicationModel::Fit(month0);
  ASSERT_TRUE(prior.ok());

  // Month 1: only ambiguous records; independently unidentifiable.
  MonthlyDataset month1(1);
  for (int i = 0; i < 20; ++i) {
    month1.AddRecord(MakeRecord({0, 1}, {0, 1}));
  }
  auto independent = MedicationModel::Fit(month1);
  MedicationModelOptions tracked_options;
  tracked_options.prior_strength = 10.0;
  auto tracked =
      MedicationModel::Fit(month1, tracked_options, prior->get());
  ASSERT_TRUE(independent.ok());
  ASSERT_TRUE(tracked.ok());

  // Independent EM on purely ambiguous data stays at its symmetric
  // initialization; the tracked fit must break the tie towards the
  // previous month's links.
  const double tracked_correct =
      (*tracked)->Phi(DiseaseId(0), MedicineId(0));
  const double tracked_wrong =
      (*tracked)->Phi(DiseaseId(0), MedicineId(1));
  EXPECT_GT(tracked_correct, 2.0 * tracked_wrong);
  const double independent_correct =
      (*independent)->Phi(DiseaseId(0), MedicineId(0));
  EXPECT_GT(tracked_correct, independent_correct + 0.1);
}

TEST(TrackingTest, PhiStaysNormalizedUnderPrior) {
  MonthlyDataset month(0);
  for (int i = 0; i < 30; ++i) month.AddRecord(MakeRecord({0, 1}, {0, 1}));
  auto prior = MedicationModel::Fit(month);
  ASSERT_TRUE(prior.ok());
  MedicationModelOptions options;
  options.prior_strength = 5.0;
  auto tracked = MedicationModel::Fit(month, options, prior->get());
  ASSERT_TRUE(tracked.ok());
  for (int d = 0; d < 2; ++d) {
    double total = 0.0;
    for (int m = 0; m < 2; ++m) {
      total += (*tracked)->Phi(DiseaseId(d), MedicineId(m));
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(TrackingTest, NegativePriorStrengthRejected) {
  MonthlyDataset month(0);
  month.AddRecord(MakeRecord({0}, {0}));
  MedicationModelOptions options;
  options.prior_strength = -1.0;
  EXPECT_FALSE(MedicationModel::Fit(month, options).ok());
}

TEST(TrackingTest, CoupledReproductionImprovesHeldOutPerplexity) {
  // Small monthly samples make independent fits noisy; coupling months
  // should help predict held-out medicines.
  auto config = synth::MakeTinyWorldConfig(10, 99);
  config.patients.count = 80;  // Deliberately sparse months.
  auto world = synth::World::Create(config);
  ASSERT_TRUE(world.ok());
  synth::ClaimGenerator generator(&*world);
  auto data = generator.Generate();
  ASSERT_TRUE(data.ok());

  double independent_log_perplexity = 0.0;
  double tracked_log_perplexity = 0.0;
  int months_scored = 0;
  std::unique_ptr<MedicationModel> previous_independent;
  std::unique_ptr<MedicationModel> previous_tracked;
  Rng rng(5);
  for (std::size_t t = 0; t < data->corpus.num_months(); ++t) {
    HoldoutSplit split =
        SplitMedicines(data->corpus.month(t), 0.2, rng);
    if (split.NumTestMentions() == 0) continue;
    auto independent = MedicationModel::Fit(split.train);
    MedicationModelOptions tracked_options;
    tracked_options.prior_strength = 30.0;
    auto tracked = MedicationModel::Fit(split.train, tracked_options,
                                        previous_tracked.get());
    if (!independent.ok() || !tracked.ok()) continue;
    auto ppl_independent = Perplexity(**independent, split);
    auto ppl_tracked = Perplexity(**tracked, split);
    if (ppl_independent.ok() && ppl_tracked.ok()) {
      independent_log_perplexity += std::log(*ppl_independent);
      tracked_log_perplexity += std::log(*ppl_tracked);
      ++months_scored;
    }
    previous_independent = std::move(*independent);
    previous_tracked = std::move(*tracked);
  }
  ASSERT_GT(months_scored, 5);
  EXPECT_LT(tracked_log_perplexity, independent_log_perplexity);
}

TEST(TrackingTest, ReproducerChainsWhenCouplingEnabled) {
  auto world = synth::World::Create(synth::MakeTinyWorldConfig(6, 3));
  ASSERT_TRUE(world.ok());
  synth::ClaimGenerator generator(&*world);
  auto data = generator.Generate();
  ASSERT_TRUE(data.ok());
  ReproducerOptions options;
  options.filter_options.min_disease_count = 1;
  options.filter_options.min_medicine_count = 1;
  options.min_series_total = 0.0;
  options.model_options.prior_strength = 20.0;
  auto series = ReproduceSeries(data->corpus, options);
  ASSERT_TRUE(series.ok());
  EXPECT_GT(series->num_pairs(), 0u);
  // Conservation still holds per month.
  for (std::size_t t = 0; t < data->corpus.num_months(); ++t) {
    double reproduced = 0.0;
    series->ForEachPair([&](DiseaseId, MedicineId,
                            const std::vector<double>& values) {
      reproduced += values[t];
    });
    std::uint64_t mentions = 0;
    for (const MicRecord& record : data->corpus.month(t).records()) {
      mentions += record.TotalMedicineMentions();
    }
    EXPECT_NEAR(reproduced, static_cast<double>(mentions), 1e-6);
  }
}

}  // namespace
}  // namespace mic::medmodel
