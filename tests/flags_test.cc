#include "tools/flags.h"

#include <gtest/gtest.h>

namespace mic::tools {
namespace {

Flags ParseOk(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "mictrend");
  auto flags = Flags::Parse(static_cast<int>(argv.size()),
                            const_cast<char**>(argv.data()));
  EXPECT_TRUE(flags.ok()) << flags.status();
  return std::move(flags).value();
}

TEST(FlagsTest, ParsesSubcommandAndFlags) {
  const Flags flags =
      ParseOk({"generate", "--out", "corpus.csv", "--patients", "500"});
  EXPECT_EQ(flags.command(), "generate");
  EXPECT_EQ(flags.GetString("out"), "corpus.csv");
  EXPECT_EQ(*flags.GetInt("patients", 0), 500);
  EXPECT_FALSE(flags.Has("missing"));
  EXPECT_EQ(*flags.GetInt("missing", 7), 7);
}

TEST(FlagsTest, EqualsSyntax) {
  const Flags flags = ParseOk({"detect", "--margin=4.5", "--seasonal=false"});
  EXPECT_DOUBLE_EQ(*flags.GetDouble("margin", 0.0), 4.5);
  EXPECT_FALSE(*flags.GetBool("seasonal", true));
}

TEST(FlagsTest, BareBooleanFlag) {
  const Flags flags = ParseOk({"stats", "--verbose"});
  EXPECT_TRUE(*flags.GetBool("verbose"));
}

TEST(FlagsTest, NoSubcommand) {
  const Flags flags = ParseOk({"--help"});
  EXPECT_TRUE(flags.command().empty());
  EXPECT_TRUE(*flags.GetBool("help"));
}

TEST(FlagsTest, RejectsMalformedBoolean) {
  const Flags flags = ParseOk({"detect", "--seasonal=maybe"});
  auto value = flags.GetBool("seasonal", true);
  ASSERT_FALSE(value.ok());
  EXPECT_NE(value.status().message().find("--seasonal"), std::string::npos);
}

TEST(FlagsTest, RejectsStrayPositional) {
  std::vector<const char*> argv = {"mictrend", "detect", "stray"};
  auto flags = Flags::Parse(3, const_cast<char**>(argv.data()));
  EXPECT_FALSE(flags.ok());
}

TEST(FlagsTest, BadNumberSurfacesParseError) {
  const Flags flags = ParseOk({"detect", "--margin", "abc"});
  EXPECT_FALSE(flags.GetDouble("margin", 0.0).ok());
}

}  // namespace
}  // namespace mic::tools
