#include "tools/cli_common.h"

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace mic::tools {
namespace {

Flags ParseOrDie(std::vector<std::string> args) {
  std::vector<char*> argv;
  std::string program = "mictrend";
  argv.push_back(program.data());
  for (std::string& arg : args) argv.push_back(arg.data());
  auto flags = Flags::Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(flags.ok()) << flags.status().message();
  return *flags;
}

TEST(CommandTableTest, CoversAllFiveSubcommands) {
  std::set<std::string> names;
  for (const CommandSpec& command : CommandTable()) {
    names.insert(std::string(command.name));
  }
  EXPECT_EQ(names, (std::set<std::string>{"generate", "stats", "reproduce",
                                          "detect", "pipeline"}));
}

TEST(CommandTableTest, FlagNamesAreUniquePerCommand) {
  for (const CommandSpec& command : CommandTable()) {
    std::set<std::string_view> seen;
    for (const FlagSpec& flag : command.flags) {
      EXPECT_TRUE(seen.insert(flag.name).second)
          << "duplicate --" << flag.name << " in " << command.name;
    }
  }
}

TEST(CommandTableTest, EveryCommandAcceptsTheObservabilityFlags) {
  for (const CommandSpec& command : CommandTable()) {
    for (const char* name : {"metrics-out", "trace-out", "log-json"}) {
      bool found = false;
      for (const FlagSpec& flag : command.flags) {
        if (flag.name == name) found = true;
      }
      EXPECT_TRUE(found) << command.name << " is missing --" << name;
    }
  }
}

TEST(CommandTableTest, RuntimeStatsIsFullyRemoved) {
  for (const CommandSpec& command : CommandTable()) {
    for (const FlagSpec& flag : command.flags) {
      EXPECT_NE(flag.name, "runtime-stats") << command.name;
    }
  }
  // The rejection is deliberate (not the generic unknown-flag error)
  // and points at the replacement.
  const CommandSpec* pipeline = FindCommand("pipeline");
  ASSERT_NE(pipeline, nullptr);
  const Status rejected = ValidateFlags(
      *pipeline,
      ParseOrDie({"pipeline", "--corpus", "c.csv", "--runtime-stats"}));
  EXPECT_EQ(rejected.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rejected.message().find("--metrics-out"), std::string::npos)
      << rejected.message();
  EXPECT_NE(rejected.message().find("removed"), std::string::npos)
      << rejected.message();
}

// The regression the table fixes: the usage screen is generated from
// the same specs the parser validates against, so every declared flag
// (notably the pipeline detector flags the old hand-written Usage()
// dropped) must appear in the text.
TEST(UsageTextTest, MentionsEveryDeclaredFlag) {
  const std::string usage = BuildUsageText();
  for (const CommandSpec& command : CommandTable()) {
    EXPECT_NE(usage.find(command.name), std::string::npos)
        << std::string(command.name);
    for (const FlagSpec& flag : command.flags) {
      EXPECT_NE(usage.find("--" + std::string(flag.name)),
                std::string::npos)
          << "usage drops --" << flag.name << " of " << command.name;
    }
  }
}

TEST(UsageTextTest, PipelineSectionListsDetectorFlags) {
  const std::string usage = BuildUsageText();
  const std::size_t pipeline = usage.find("\n  pipeline");
  ASSERT_NE(pipeline, std::string::npos);
  for (const char* flag :
       {"--algorithm", "--margin", "--criterion", "--kind", "--min-tail"}) {
    EXPECT_NE(usage.find(flag, pipeline), std::string::npos) << flag;
  }
}

TEST(ValidateFlagsTest, RejectsUnknownAndMissingRequired) {
  const CommandSpec* pipeline = FindCommand("pipeline");
  ASSERT_NE(pipeline, nullptr);
  EXPECT_TRUE(ValidateFlags(*pipeline,
                            ParseOrDie({"pipeline", "--corpus", "c.csv",
                                        "--margin", "2"}))
                  .ok());
  const Status unknown = ValidateFlags(
      *pipeline, ParseOrDie({"pipeline", "--corpus", "c.csv", "--bogus"}));
  EXPECT_EQ(unknown.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(unknown.message().find("--bogus"), std::string::npos);
  const Status missing =
      ValidateFlags(*pipeline, ParseOrDie({"pipeline", "--margin", "2"}));
  EXPECT_EQ(missing.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(missing.message().find("--corpus"), std::string::npos);
  EXPECT_EQ(FindCommand("bogus"), nullptr);
}

TEST(DetectorOptionsTest, DefaultsDifferPerCaller) {
  const Flags empty = ParseOrDie({"detect"});
  auto detect = DetectorOptionsFromFlags(empty, DetectorFlagDefaults{});
  ASSERT_TRUE(detect.ok());
  EXPECT_EQ(detect->aic_margin, 0.0);
  EXPECT_EQ(detect->min_tail_observations, 1);
  auto pipeline =
      DetectorOptionsFromFlags(empty, DetectorFlagDefaults{4.0, 3,
                                                           "approx"});
  ASSERT_TRUE(pipeline.ok());
  EXPECT_EQ(pipeline->aic_margin, 4.0);
  EXPECT_EQ(pipeline->min_tail_observations, 3);

  const Flags overridden =
      ParseOrDie({"pipeline", "--margin", "7.5", "--min-tail", "2",
                  "--criterion", "bic", "--kind", "auto"});
  auto custom = DetectorOptionsFromFlags(
      overridden, DetectorFlagDefaults{4.0, 3, "approx"});
  ASSERT_TRUE(custom.ok());
  EXPECT_EQ(custom->aic_margin, 7.5);
  EXPECT_EQ(custom->min_tail_observations, 2);
  EXPECT_EQ(custom->criterion, ssm::SelectionCriterion::kBic);
  EXPECT_EQ(custom->candidate_kinds.size(), 2u);
  EXPECT_EQ(DetectorOptionsFromFlags(
                ParseOrDie({"detect", "--criterion", "nope"}))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(DetectorOptionsTest, AlgorithmSelectionHonorsDefaults) {
  const Flags empty = ParseOrDie({"detect"});
  auto exact = UseExactAlgorithm(empty, DetectorFlagDefaults{});
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(*exact);
  auto approx =
      UseExactAlgorithm(empty, DetectorFlagDefaults{4.0, 3, "approx"});
  ASSERT_TRUE(approx.ok());
  EXPECT_FALSE(*approx);
  auto flipped = UseExactAlgorithm(
      ParseOrDie({"pipeline", "--algorithm", "exact"}),
      DetectorFlagDefaults{4.0, 3, "approx"});
  ASSERT_TRUE(flipped.ok());
  EXPECT_TRUE(*flipped);
  EXPECT_EQ(UseExactAlgorithm(
                ParseOrDie({"detect", "--algorithm", "nope"}),
                DetectorFlagDefaults{})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(CliRunTest, MetricsEnabledOnlyWhenRequested) {
  auto plain = CliRun::FromFlags(ParseOrDie({"stats"}), false);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->metrics(), nullptr);
  EXPECT_EQ(plain->context().metrics, nullptr);
  ASSERT_NE(plain->pool(), nullptr);
  EXPECT_EQ(plain->pool()->num_threads(), 1);

  auto with_metrics = CliRun::FromFlags(
      ParseOrDie({"pipeline", "--metrics-out", "m.json", "--threads", "3"}),
      true);
  ASSERT_TRUE(with_metrics.ok());
  ASSERT_NE(with_metrics->metrics(), nullptr);
  EXPECT_EQ(with_metrics->context().metrics, with_metrics->metrics());
  EXPECT_EQ(with_metrics->pool()->num_threads(), 3);

  EXPECT_EQ(CliRun::FromFlags(ParseOrDie({"pipeline", "--threads", "0"}),
                              true)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(CliRunTest, TraceEnabledOnlyWhenRequested) {
  auto plain = CliRun::FromFlags(ParseOrDie({"pipeline"}), true);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->trace(), nullptr);
  EXPECT_EQ(plain->context().trace, nullptr);

  auto with_trace = CliRun::FromFlags(
      ParseOrDie({"pipeline", "--trace-out", "t.json"}), true);
  ASSERT_TRUE(with_trace.ok());
  ASSERT_NE(with_trace->trace(), nullptr);
  EXPECT_EQ(with_trace->context().trace, with_trace->trace());
  // Requesting a trace without metrics keeps counters off.
  EXPECT_EQ(with_trace->metrics(), nullptr);
}

}  // namespace
}  // namespace mic::tools
