#include "tools/cli_common.h"

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/registry.h"
#include "store/backend.h"

namespace mic::tools {
namespace {

Flags ParseOrDie(std::vector<std::string> args) {
  std::vector<char*> argv;
  std::string program = "mictrend";
  argv.push_back(program.data());
  for (std::string& arg : args) argv.push_back(arg.data());
  auto flags = Flags::Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(flags.ok()) << flags.status().message();
  return *flags;
}

TEST(CommandTableTest, CoversAllNineSubcommands) {
  std::set<std::string> names;
  for (const CommandSpec& command : CommandTable()) {
    names.insert(std::string(command.name));
  }
  EXPECT_EQ(names,
            (std::set<std::string>{"generate", "import", "stats",
                                   "reproduce", "detect", "pipeline",
                                   "drilldown", "serve", "query"}));
}

TEST(CommandTableTest, QueryFlagsMirrorTheServeRegistry) {
  // The query command's flag set is generated from the endpoint table:
  // every declared wire parameter must be reachable as a CLI flag.
  const CommandSpec* query = FindCommand("query");
  ASSERT_NE(query, nullptr);
  const auto has_flag = [&](std::string_view name) {
    for (const FlagSpec& flag : query->flags) {
      if (flag.name == name) return true;
    }
    return false;
  };
  for (const serve::EndpointSpec& endpoint : serve::EndpointTable()) {
    for (const serve::ParamSpec& param : endpoint.params) {
      EXPECT_TRUE(has_flag(CliFlagName(param.name)))
          << "query is missing --" << CliFlagName(param.name) << " of op "
          << endpoint.name;
    }
  }
  // The --op flag's value hint enumerates every registered op.
  const FlagSpec* op = nullptr;
  for (const FlagSpec& flag : query->flags) {
    if (flag.name == "op") op = &flag;
  }
  ASSERT_NE(op, nullptr);
  for (const serve::EndpointSpec& endpoint : serve::EndpointTable()) {
    EXPECT_NE(std::string(op->value).find(endpoint.name),
              std::string::npos)
        << endpoint.name;
  }
}

TEST(CommandTableTest, CliFlagNameDashesWireUnderscores) {
  EXPECT_EQ(CliFlagName("axis"), "axis");
  EXPECT_EQ(CliFlagName("min_share"), "min-share");
  EXPECT_EQ(CliFlagName("top_k"), "top-k");
  EXPECT_EQ(CliFlagName("snapshot_months"), "snapshot-months");
}

TEST(CommandTableTest, FlagNamesAreUniquePerCommand) {
  for (const CommandSpec& command : CommandTable()) {
    std::set<std::string_view> seen;
    for (const FlagSpec& flag : command.flags) {
      EXPECT_TRUE(seen.insert(flag.name).second)
          << "duplicate --" << flag.name << " in " << command.name;
    }
  }
}

TEST(CommandTableTest, EveryCommandAcceptsTheObservabilityFlags) {
  for (const CommandSpec& command : CommandTable()) {
    for (const char* name : {"metrics-out", "trace-out", "log-json"}) {
      bool found = false;
      for (const FlagSpec& flag : command.flags) {
        if (flag.name == name) found = true;
      }
      EXPECT_TRUE(found) << command.name << " is missing --" << name;
    }
  }
}

TEST(CommandTableTest, RuntimeStatsIsFullyRemoved) {
  for (const CommandSpec& command : CommandTable()) {
    for (const FlagSpec& flag : command.flags) {
      EXPECT_NE(flag.name, "runtime-stats") << command.name;
    }
  }
  // The rejection is deliberate (not the generic unknown-flag error)
  // and points at the replacement.
  const CommandSpec* pipeline = FindCommand("pipeline");
  ASSERT_NE(pipeline, nullptr);
  const Status rejected = ValidateFlags(
      *pipeline,
      ParseOrDie({"pipeline", "--corpus", "c.csv", "--runtime-stats"}));
  EXPECT_EQ(rejected.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rejected.message().find("--metrics-out"), std::string::npos)
      << rejected.message();
  EXPECT_NE(rejected.message().find("removed"), std::string::npos)
      << rejected.message();
}

// The regression the table fixes: the usage screen is generated from
// the same specs the parser validates against, so every declared flag
// (notably the pipeline detector flags the old hand-written Usage()
// dropped) must appear in the text.
TEST(UsageTextTest, MentionsEveryDeclaredFlag) {
  const std::string usage = BuildUsageText();
  for (const CommandSpec& command : CommandTable()) {
    EXPECT_NE(usage.find(command.name), std::string::npos)
        << std::string(command.name);
    for (const FlagSpec& flag : command.flags) {
      EXPECT_NE(usage.find("--" + std::string(flag.name)),
                std::string::npos)
          << "usage drops --" << flag.name << " of " << command.name;
    }
  }
}

TEST(UsageTextTest, PipelineSectionListsDetectorFlags) {
  const std::string usage = BuildUsageText();
  const std::size_t pipeline = usage.find("\n  pipeline");
  ASSERT_NE(pipeline, std::string::npos);
  for (const char* flag :
       {"--algorithm", "--margin", "--criterion", "--kind", "--min-tail"}) {
    EXPECT_NE(usage.find(flag, pipeline), std::string::npos) << flag;
  }
}

TEST(ValidateFlagsTest, RejectsUnknownAndMissingRequired) {
  const CommandSpec* pipeline = FindCommand("pipeline");
  ASSERT_NE(pipeline, nullptr);
  EXPECT_TRUE(ValidateFlags(*pipeline,
                            ParseOrDie({"pipeline", "--corpus", "c.csv",
                                        "--margin", "2"}))
                  .ok());
  const Status unknown = ValidateFlags(
      *pipeline, ParseOrDie({"pipeline", "--corpus", "c.csv", "--bogus"}));
  EXPECT_EQ(unknown.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(unknown.message().find("--bogus"), std::string::npos);
  const Status missing =
      ValidateFlags(*pipeline, ParseOrDie({"pipeline", "--margin", "2"}));
  EXPECT_EQ(missing.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(missing.message().find("--corpus"), std::string::npos);
  EXPECT_EQ(FindCommand("bogus"), nullptr);
}

TEST(DetectorOptionsTest, DefaultsDifferPerCaller) {
  const Flags empty = ParseOrDie({"detect"});
  auto detect = DetectorOptionsFromFlags(empty, DetectorFlagDefaults{});
  ASSERT_TRUE(detect.ok());
  EXPECT_EQ(detect->aic_margin, 0.0);
  EXPECT_EQ(detect->min_tail_observations, 1);
  auto pipeline =
      DetectorOptionsFromFlags(empty, DetectorFlagDefaults{4.0, 3,
                                                           "approx"});
  ASSERT_TRUE(pipeline.ok());
  EXPECT_EQ(pipeline->aic_margin, 4.0);
  EXPECT_EQ(pipeline->min_tail_observations, 3);

  const Flags overridden =
      ParseOrDie({"pipeline", "--margin", "7.5", "--min-tail", "2",
                  "--criterion", "bic", "--kind", "auto"});
  auto custom = DetectorOptionsFromFlags(
      overridden, DetectorFlagDefaults{4.0, 3, "approx"});
  ASSERT_TRUE(custom.ok());
  EXPECT_EQ(custom->aic_margin, 7.5);
  EXPECT_EQ(custom->min_tail_observations, 2);
  EXPECT_EQ(custom->criterion, ssm::SelectionCriterion::kBic);
  EXPECT_EQ(custom->candidate_kinds.size(), 2u);
  EXPECT_EQ(DetectorOptionsFromFlags(
                ParseOrDie({"detect", "--criterion", "nope"}))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(DetectorOptionsTest, AlgorithmSelectionHonorsDefaults) {
  const Flags empty = ParseOrDie({"detect"});
  auto exact = UseExactAlgorithm(empty, DetectorFlagDefaults{});
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(*exact);
  auto approx =
      UseExactAlgorithm(empty, DetectorFlagDefaults{4.0, 3, "approx"});
  ASSERT_TRUE(approx.ok());
  EXPECT_FALSE(*approx);
  auto flipped = UseExactAlgorithm(
      ParseOrDie({"pipeline", "--algorithm", "exact"}),
      DetectorFlagDefaults{4.0, 3, "approx"});
  ASSERT_TRUE(flipped.ok());
  EXPECT_TRUE(*flipped);
  EXPECT_EQ(UseExactAlgorithm(
                ParseOrDie({"detect", "--algorithm", "nope"}),
                DetectorFlagDefaults{})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(CliRunTest, MetricsEnabledOnlyWhenRequested) {
  auto plain = CliRun::FromFlags(ParseOrDie({"stats"}), false);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->metrics(), nullptr);
  EXPECT_EQ(plain->context().metrics, nullptr);
  ASSERT_NE(plain->pool(), nullptr);
  EXPECT_EQ(plain->pool()->num_threads(), 1);

  auto with_metrics = CliRun::FromFlags(
      ParseOrDie({"pipeline", "--metrics-out", "m.json", "--threads", "3"}),
      true);
  ASSERT_TRUE(with_metrics.ok());
  ASSERT_NE(with_metrics->metrics(), nullptr);
  EXPECT_EQ(with_metrics->context().metrics, with_metrics->metrics());
  EXPECT_EQ(with_metrics->pool()->num_threads(), 3);

  EXPECT_EQ(CliRun::FromFlags(ParseOrDie({"pipeline", "--threads", "0"}),
                              true)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(CliRunTest, TraceEnabledOnlyWhenRequested) {
  auto plain = CliRun::FromFlags(ParseOrDie({"pipeline"}), true);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->trace(), nullptr);
  EXPECT_EQ(plain->context().trace, nullptr);

  auto with_trace = CliRun::FromFlags(
      ParseOrDie({"pipeline", "--trace-out", "t.json"}), true);
  ASSERT_TRUE(with_trace.ok());
  ASSERT_NE(with_trace->trace(), nullptr);
  EXPECT_EQ(with_trace->context().trace, with_trace->trace());
  // Requesting a trace without metrics keeps counters off.
  EXPECT_EQ(with_trace->metrics(), nullptr);
}

TEST(CommandTableTest, StoreFlagsCoverTheCorpusReadingCommands) {
  const auto has_flag = [](const CommandSpec* spec, std::string_view name) {
    for (const FlagSpec& flag : spec->flags) {
      if (flag.name == name) return true;
    }
    return false;
  };
  // Every command that ingests a corpus can point at a claim store.
  for (const char* name : {"stats", "reproduce", "pipeline"}) {
    const CommandSpec* spec = FindCommand(name);
    ASSERT_NE(spec, nullptr) << name;
    EXPECT_TRUE(has_flag(spec, "store")) << name;
    EXPECT_TRUE(has_flag(spec, "store-dir")) << name;
  }
  // detect reads a series CSV, not a corpus — no store surface.
  const CommandSpec* detect = FindCommand("detect");
  ASSERT_NE(detect, nullptr);
  EXPECT_FALSE(has_flag(detect, "store"));
  EXPECT_FALSE(has_flag(detect, "store-dir"));

  const CommandSpec* import = FindCommand("import");
  ASSERT_NE(import, nullptr);
  for (const FlagSpec& flag : import->flags) {
    if (flag.name == "corpus" || flag.name == "store-dir") {
      EXPECT_TRUE(flag.required) << flag.name;
    }
  }
  EXPECT_TRUE(has_flag(import, "append"));
  EXPECT_TRUE(has_flag(import, "hospitals"));
  // import is serial ingest: no --threads.
  EXPECT_FALSE(has_flag(import, "threads"));
}

TEST(StoreConfigTest, ParsesBackendsAndRejectsNamingMistakes) {
  auto off = StoreConfigFromFlags(ParseOrDie({"pipeline"}));
  ASSERT_TRUE(off.ok());
  EXPECT_FALSE(off->enabled());
  EXPECT_EQ(off->backend, store::BackendKind::kAuto);

  auto dir_only = StoreConfigFromFlags(
      ParseOrDie({"pipeline", "--store-dir", "s"}));
  ASSERT_TRUE(dir_only.ok());
  EXPECT_TRUE(dir_only->enabled());
  EXPECT_EQ(dir_only->backend, store::BackendKind::kAuto);

  auto explicit_backend = StoreConfigFromFlags(
      ParseOrDie({"pipeline", "--store", "file", "--store-dir", "s"}));
  ASSERT_TRUE(explicit_backend.ok());
  EXPECT_EQ(explicit_backend->backend, store::BackendKind::kFile);

  // --store names a backend but nothing to read: point at the missing
  // flag, not a generic error.
  const Status orphan =
      StoreConfigFromFlags(ParseOrDie({"pipeline", "--store", "mmap"}))
          .status();
  EXPECT_EQ(orphan.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(orphan.message().find("--store-dir"), std::string::npos);

  const Status bogus =
      StoreConfigFromFlags(
          ParseOrDie({"pipeline", "--store", "turbo", "--store-dir", "s"}))
          .status();
  EXPECT_EQ(bogus.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bogus.message().find("auto, mmap"), std::string::npos);
}

TEST(StoreConfigTest, PipelineConfigCarriesTheStoreGroup) {
  auto config = PipelineConfigFromFlags(
      ParseOrDie({"pipeline", "--store", "file", "--store-dir", "s"}),
      DetectorFlagDefaults{4.0, 3, "approx"});
  ASSERT_TRUE(config.ok());
  EXPECT_TRUE(config->store.enabled());
  EXPECT_EQ(config->store.directory, "s");
  EXPECT_EQ(config->store.backend, store::BackendKind::kFile);
}

}  // namespace
}  // namespace mic::tools
