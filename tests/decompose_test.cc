#include "ssm/decompose.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mic::ssm {
namespace {

std::vector<double> MakeSeries(int n, double level, double season_amp,
                               int change_point, double slope,
                               double noise_sd, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (int t = 0; t < n; ++t) {
    double value = level +
                   season_amp * std::sin(2.0 * M_PI * t / 12.0) +
                   rng.NextGaussian(0.0, noise_sd);
    if (change_point >= 0 && t >= change_point) {
      value += slope * (t - change_point + 1);
    }
    x[t] = value;
  }
  return x;
}

TEST(DecomposeTest, ComponentsSumToFitted) {
  const auto x = MakeSeries(43, 12.0, 3.0, 20, 1.0, 0.3, 5);
  StructuralSpec spec;
  spec.seasonal = true;
  spec.set_change_point(20);
  auto fitted = FitStructuralModel(x, spec);
  ASSERT_TRUE(fitted.ok());
  auto decomposition = Decompose(*fitted, x);
  ASSERT_TRUE(decomposition.ok());
  for (std::size_t t = 0; t < x.size(); ++t) {
    EXPECT_NEAR(decomposition->fitted[t] + decomposition->irregular[t],
                x[t], 1e-9);
    EXPECT_NEAR(decomposition->fitted[t],
                decomposition->level[t] + decomposition->seasonal[t] +
                    decomposition->intervention[t],
                1e-9);
  }
}

TEST(DecomposeTest, RecoversLevelOfFlatSeries) {
  const auto x = MakeSeries(43, 25.0, 0.0, -1, 0.0, 0.4, 6);
  StructuralSpec spec;
  auto fitted = FitStructuralModel(x, spec);
  ASSERT_TRUE(fitted.ok());
  auto decomposition = Decompose(*fitted, x);
  ASSERT_TRUE(decomposition.ok());
  for (std::size_t t = 4; t < x.size(); ++t) {
    EXPECT_NEAR(decomposition->level[t], 25.0, 1.0);
  }
  // No seasonal or intervention requested -> those components are zero.
  for (std::size_t t = 0; t < x.size(); ++t) {
    EXPECT_DOUBLE_EQ(decomposition->seasonal[t], 0.0);
    EXPECT_DOUBLE_EQ(decomposition->intervention[t], 0.0);
  }
}

TEST(DecomposeTest, SeasonalComponentTracksPlantedSeason) {
  const auto x = MakeSeries(48, 10.0, 4.0, -1, 0.0, 0.2, 7);
  StructuralSpec spec;
  spec.seasonal = true;
  auto fitted = FitStructuralModel(x, spec);
  ASSERT_TRUE(fitted.ok());
  auto decomposition = Decompose(*fitted, x);
  ASSERT_TRUE(decomposition.ok());
  // Peak month of sin(2 pi t / 12) is t = 3 (mod 12); check the smoothed
  // seasonal is large positive there and negative at t = 9 (mod 12).
  double peak_mean = 0.0;
  double trough_mean = 0.0;
  int count = 0;
  for (int t = 12; t + 12 < 48; t += 12) {
    peak_mean += decomposition->seasonal[t + 3];
    trough_mean += decomposition->seasonal[t + 9];
    ++count;
  }
  peak_mean /= count;
  trough_mean /= count;
  EXPECT_GT(peak_mean, 2.0);
  EXPECT_LT(trough_mean, -2.0);
}

TEST(DecomposeTest, InterventionComponentMatchesSlopeShape) {
  const auto x = MakeSeries(43, 10.0, 0.0, 25, 2.0, 0.3, 8);
  StructuralSpec spec;
  spec.set_change_point(25);
  auto fitted = FitStructuralModel(x, spec);
  ASSERT_TRUE(fitted.ok());
  auto decomposition = Decompose(*fitted, x);
  ASSERT_TRUE(decomposition.ok());
  // Zero before the break.
  for (int t = 0; t < 25; ++t) {
    EXPECT_DOUBLE_EQ(decomposition->intervention[t], 0.0);
  }
  // Linear after the break with slope lambda ~ 2.
  EXPECT_NEAR(fitted->lambda, 2.0, 0.4);
  EXPECT_NEAR(decomposition->intervention[30] -
                  decomposition->intervention[29],
              fitted->lambda, 1e-9);
}

TEST(DecomposeTest, OutlierLandsInIrregular) {
  auto x = MakeSeries(43, 10.0, 0.0, -1, 0.0, 0.2, 9);
  x[21] += 8.0;  // One-month spike (the paper's influenza outbreak).
  StructuralSpec spec;
  auto fitted = FitStructuralModel(x, spec);
  ASSERT_TRUE(fitted.ok());
  auto decomposition = Decompose(*fitted, x);
  ASSERT_TRUE(decomposition.ok());
  // The spike month should have by far the largest irregular magnitude.
  std::size_t argmax = 0;
  for (std::size_t t = 1; t < x.size(); ++t) {
    if (std::fabs(decomposition->irregular[t]) >
        std::fabs(decomposition->irregular[argmax])) {
      argmax = t;
    }
  }
  EXPECT_EQ(argmax, 21u);
  EXPECT_GT(std::fabs(decomposition->irregular[21]), 3.0);
}

}  // namespace
}  // namespace mic::ssm
