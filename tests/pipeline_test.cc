#include "trend/pipeline.h"

#include <gtest/gtest.h>

#include "runtime/thread_pool.h"
#include "synth/generator.h"
#include "synth/scenario.h"

namespace mic::trend {
namespace {

TEST(PipelineApiTest, RunsEndToEndOnTinyWorld) {
  auto world = synth::World::Create(synth::MakeTinyWorldConfig(24, 5));
  ASSERT_TRUE(world.ok());
  synth::ClaimGenerator generator(&*world);
  auto data = generator.Generate();
  ASSERT_TRUE(data.ok());

  PipelineConfig options;
  options.reproducer.filter_options.min_disease_count = 1;
  options.reproducer.filter_options.min_medicine_count = 1;
  options.reproducer.min_series_total = 10.0;
  options.analyzer.detector.seasonal = false;  // 24-month window.
  options.analyzer.detector.fit.optimizer.max_evaluations = 150;
  // Exact search with the paper's plain AIC comparison so the scripted
  // break is reliably surfaced on this small world.
  options.analyzer.detector.aic_margin = 0.0;
  options.analyzer.use_approximate = false;
  auto result = RunPipeline(data->corpus, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->series.num_pairs(), 0u);
  EXPECT_EQ(result->report.prescriptions.size(),
            result->series.num_pairs());
  EXPECT_EQ(result->report.diseases.size(),
            result->series.num_diseases());
  EXPECT_EQ(result->report.medicines.size(),
            result->series.num_medicines());
  // The tiny world's new drug (released mid-window with a ramp) should
  // show up as a medicine-level change.
  const MedicineId new_drug =
      *data->corpus.catalog().medicines().Lookup("new-drug");
  bool found = false;
  for (const SeriesAnalysis& analysis : result->report.medicines) {
    if (analysis.medicine == new_drug && analysis.has_change) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(PipelineApiTest, PropagatesReproductionErrors) {
  MicCorpus empty;
  EXPECT_FALSE(RunPipeline(empty).ok());
}

// Running the pipeline through a 4-thread pool must reproduce the
// single-thread report bit for bit (the mic::runtime determinism
// contract: fixed chunking, chunk-order merges).
TEST(PipelineApiTest, FourThreadsMatchesSingleThreadBitwise) {
  auto world = synth::World::Create(synth::MakeTinyWorldConfig(24, 5));
  ASSERT_TRUE(world.ok());
  synth::ClaimGenerator generator(&*world);
  auto data = generator.Generate();
  ASSERT_TRUE(data.ok());

  auto run = [&](runtime::ThreadPool* pool) {
    PipelineConfig options;
    options.reproducer.filter_options.min_disease_count = 1;
    options.reproducer.filter_options.min_medicine_count = 1;
    options.reproducer.min_series_total = 10.0;
    options.analyzer.detector.seasonal = false;
    options.analyzer.detector.fit.optimizer.max_evaluations = 150;
    ExecContext context;
    context.pool = pool;
    auto result = RunPipeline(data->corpus, options, context);
    EXPECT_TRUE(result.ok()) << result.status();
    return std::move(result).value();
  };
  runtime::ThreadPool single(1);
  runtime::ThreadPool four(4);
  const PipelineResult baseline = run(&single);
  const PipelineResult parallel = run(&four);

  auto expect_bitwise = [](const std::vector<SeriesAnalysis>& a,
                           const std::vector<SeriesAnalysis>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].kind, b[i].kind) << i;
      EXPECT_EQ(a[i].has_change, b[i].has_change) << i;
      EXPECT_EQ(a[i].change_point, b[i].change_point) << i;
      EXPECT_EQ(a[i].aic, b[i].aic) << i;        // exact, not NEAR
      EXPECT_EQ(a[i].lambda, b[i].lambda) << i;  // exact, not NEAR
      EXPECT_EQ(a[i].scale, b[i].scale) << i;
      EXPECT_EQ(a[i].fits_performed, b[i].fits_performed) << i;
    }
  };
  expect_bitwise(baseline.report.diseases, parallel.report.diseases);
  expect_bitwise(baseline.report.medicines, parallel.report.medicines);
  expect_bitwise(baseline.report.prescriptions,
                 parallel.report.prescriptions);

  // The reproduced series (EM stage) must agree exactly as well.
  ASSERT_EQ(baseline.series.num_pairs(), parallel.series.num_pairs());
  baseline.series.ForEachPair([&](DiseaseId d, MedicineId m,
                                  const std::vector<double>& series) {
    EXPECT_EQ(series, parallel.series.Prescription(d, m));
  });
}

}  // namespace
}  // namespace mic::trend
