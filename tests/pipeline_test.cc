#include "trend/pipeline.h"

#include <gtest/gtest.h>

#include "synth/generator.h"
#include "synth/scenario.h"

namespace mic::trend {
namespace {

TEST(PipelineApiTest, RunsEndToEndOnTinyWorld) {
  auto world = synth::World::Create(synth::MakeTinyWorldConfig(24, 5));
  ASSERT_TRUE(world.ok());
  synth::ClaimGenerator generator(&*world);
  auto data = generator.Generate();
  ASSERT_TRUE(data.ok());

  PipelineOptions options;
  options.reproducer.filter_options.min_disease_count = 1;
  options.reproducer.filter_options.min_medicine_count = 1;
  options.reproducer.min_series_total = 10.0;
  options.analyzer.detector.seasonal = false;  // 24-month window.
  options.analyzer.detector.fit.optimizer.max_evaluations = 150;
  // Exact search with the paper's plain AIC comparison so the scripted
  // break is reliably surfaced on this small world.
  options.analyzer.detector.aic_margin = 0.0;
  options.analyzer.use_approximate = false;
  auto result = RunPipeline(data->corpus, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->series.num_pairs(), 0u);
  EXPECT_EQ(result->report.prescriptions.size(),
            result->series.num_pairs());
  EXPECT_EQ(result->report.diseases.size(),
            result->series.num_diseases());
  EXPECT_EQ(result->report.medicines.size(),
            result->series.num_medicines());
  // The tiny world's new drug (released mid-window with a ramp) should
  // show up as a medicine-level change.
  const MedicineId new_drug =
      *data->corpus.catalog().medicines().Lookup("new-drug");
  bool found = false;
  for (const SeriesAnalysis& analysis : result->report.medicines) {
    if (analysis.medicine == new_drug && analysis.has_change) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(PipelineApiTest, PropagatesReproductionErrors) {
  MicCorpus empty;
  EXPECT_FALSE(RunPipeline(empty).ok());
}

}  // namespace
}  // namespace mic::trend
