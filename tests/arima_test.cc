#include "arima/arima.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mic::arima {
namespace {

std::vector<double> SimulateAr1(int n, double phi, double sigma, double mean,
                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  double state = 0.0;
  // Burn in to reach stationarity.
  for (int t = 0; t < 200; ++t) {
    state = phi * state + rng.NextGaussian(0.0, sigma);
  }
  for (int t = 0; t < n; ++t) {
    state = phi * state + rng.NextGaussian(0.0, sigma);
    x[t] = mean + state;
  }
  return x;
}

TEST(PacfTransformTest, AlwaysStationary) {
  // Even extreme raw values map to AR polynomials with roots outside
  // the unit circle; check |sum of coefficients| < 1 as the simplest
  // necessary condition for AR(1)/AR(2) stationarity on a grid.
  for (double u1 = -5.0; u1 <= 5.0; u1 += 2.5) {
    const auto ar1 = PacfToCoefficients({u1});
    EXPECT_LT(std::fabs(ar1[0]), 1.0);
    for (double u2 = -5.0; u2 <= 5.0; u2 += 2.5) {
      const auto ar2 = PacfToCoefficients({u1, u2});
      // AR(2) stationarity triangle: |phi2| < 1, phi2 + phi1 < 1,
      // phi2 - phi1 < 1.
      EXPECT_LT(std::fabs(ar2[1]), 1.0);
      EXPECT_LT(ar2[1] + ar2[0], 1.0);
      EXPECT_LT(ar2[1] - ar2[0], 1.0);
    }
  }
}

TEST(PacfTransformTest, EmptyIsEmpty) {
  EXPECT_TRUE(PacfToCoefficients({}).empty());
}

// Property: for any raw point, the AR polynomial produced by the
// transform is stationary — verified by checking that the deterministic
// AR recursion's impulse response decays rather than explodes.
class PacfStationarityTest : public ::testing::TestWithParam<int> {};

TEST_P(PacfStationarityTest, ImpulseResponseDecays) {
  const int seed = GetParam();
  std::uint64_t state = static_cast<std::uint64_t>(seed) * 1911 + 3;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    // Keep partial autocorrelations away from +-1 (tanh(2.5) ~ 0.987);
    // stationarity holds for ANY raw value, but near-unit roots decay
    // too slowly for a finite-horizon decay check.
    return (static_cast<double>(state >> 11) * 0x1.0p-53 - 0.5) * 5.0;
  };
  const std::size_t order = 1 + static_cast<std::size_t>(seed % 4);
  std::vector<double> raw(order);
  for (double& value : raw) value = next();
  const auto ar = PacfToCoefficients(raw);
  ASSERT_EQ(ar.size(), order);

  // Impulse response: y_0 = 1, y_t = sum phi_i y_{t-i}. Stationarity
  // does not bound how slowly the response decays (Levinson can place
  // poles arbitrarily close to the unit circle), but it does mean the
  // response stays bounded and its energy envelope never grows.
  std::vector<double> response = {1.0};
  double max_abs = 1.0;
  double early_energy = 0.0;
  double late_energy = 0.0;
  for (int t = 1; t < 1200; ++t) {
    double value = 0.0;
    for (std::size_t i = 0; i < order && i < response.size(); ++i) {
      value += ar[i] * response[response.size() - 1 - i];
    }
    response.push_back(value);
    max_abs = std::max(max_abs, std::fabs(value));
    if (t < 300) early_energy += value * value;
    if (t >= 900) late_energy += value * value;
  }
  EXPECT_LT(max_abs, 1e3) << "order " << order;
  EXPECT_LE(late_energy, early_energy + 1e-9) << "order " << order;
}

INSTANTIATE_TEST_SUITE_P(RandomPacfs, PacfStationarityTest,
                         ::testing::Range(0, 16));

TEST(ArimaFitTest, RecoversAr1Coefficient) {
  const auto x = SimulateAr1(300, 0.7, 1.0, 5.0, 42);
  auto fitted = FitArima(x, {1, 0, 0});
  ASSERT_TRUE(fitted.ok());
  ASSERT_EQ(fitted->ar.size(), 1u);
  EXPECT_NEAR(fitted->ar[0], 0.7, 0.1);
  EXPECT_NEAR(fitted->mean, 5.0, 0.5);
  EXPECT_NEAR(fitted->sigma2, 1.0, 0.25);
}

TEST(ArimaFitTest, WhiteNoiseVarianceMatches) {
  Rng rng(77);
  std::vector<double> x(400);
  for (double& value : x) value = rng.NextGaussian(2.0, 3.0);
  auto fitted = FitArima(x, {0, 0, 0});
  ASSERT_TRUE(fitted.ok());
  EXPECT_NEAR(fitted->sigma2, 9.0, 1.5);
  EXPECT_NEAR(fitted->mean, 2.0, 0.5);
}

TEST(ArimaFitTest, Ma1LikelihoodBeatsWhiteNoiseOnMa1Data) {
  Rng rng(11);
  std::vector<double> x(300);
  double previous_shock = rng.NextGaussian();
  for (double& value : x) {
    const double shock = rng.NextGaussian();
    value = shock + 0.6 * previous_shock;
    previous_shock = shock;
  }
  auto ma1 = FitArima(x, {0, 0, 1});
  auto wn = FitArima(x, {0, 0, 0});
  ASSERT_TRUE(ma1.ok());
  ASSERT_TRUE(wn.ok());
  EXPECT_GT(ma1->log_likelihood, wn->log_likelihood);
  EXPECT_LT(ma1->aic, wn->aic);
}

TEST(ArimaFitTest, RejectsDegenerateInput) {
  EXPECT_FALSE(FitArima({1.0, 2.0}, {3, 0, 3}).ok());
  EXPECT_FALSE(FitArima({1.0}, {0, 1, 0}).ok());
  EXPECT_FALSE(FitArima({1.0, 2.0, 3.0}, {-1, 0, 0}).ok());
}

TEST(ArimaSelectTest, PrefersLowOrderOnWhiteNoise) {
  Rng rng(123);
  std::vector<double> x(200);
  for (double& value : x) value = rng.NextGaussian(0.0, 1.0);
  ArimaSelectionOptions options;
  options.max_p = 2;
  options.max_q = 2;
  auto best = SelectArima(x, options);
  ASSERT_TRUE(best.ok());
  EXPECT_LE(best->order.p + best->order.q, 1);
  EXPECT_EQ(best->order.d, 0);
}

TEST(ArimaSelectTest, PrefersDifferencingOnRandomWalk) {
  Rng rng(321);
  std::vector<double> x(200);
  double level = 0.0;
  for (double& value : x) {
    level += rng.NextGaussian(0.0, 1.0);
    value = level;
  }
  ArimaSelectionOptions options;
  options.max_p = 1;
  options.max_q = 1;
  auto best = SelectArima(x, options);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->order.d, 1);
}

TEST(ArimaForecastTest, MeanRevertingForecastApproachesMean) {
  const auto x = SimulateAr1(300, 0.6, 1.0, 10.0, 55);
  auto fitted = FitArima(x, {1, 0, 0});
  ASSERT_TRUE(fitted.ok());
  auto forecast = ForecastArima(*fitted, x, 24);
  ASSERT_TRUE(forecast.ok());
  ASSERT_EQ(forecast->size(), 24u);
  // AR(1) forecasts decay geometrically towards the mean.
  EXPECT_NEAR(forecast->back(), 10.0, 1.0);
}

TEST(ArimaForecastTest, RandomWalkForecastIsFlatFromLastValue) {
  Rng rng(99);
  std::vector<double> x(150);
  double level = 5.0;
  for (double& value : x) {
    level += rng.NextGaussian(0.0, 0.5);
    value = level;
  }
  auto fitted = FitArima(x, {0, 1, 0});
  ASSERT_TRUE(fitted.ok());
  auto forecast = ForecastArima(*fitted, x, 6);
  ASSERT_TRUE(forecast.ok());
  // Pure random walk with small drift: first forecast close to the last
  // observation.
  EXPECT_NEAR((*forecast)[0], x.back(), 0.5);
  // Drift accumulates linearly.
  const double drift = (*forecast)[5] - (*forecast)[4];
  EXPECT_NEAR(drift, fitted->mean, 1e-9);
}

TEST(ArimaForecastTest, SecondDifferenceForecastContinuesTrend) {
  // x_t = 0.5 t^2 has constant second difference 1; an ARIMA(0,2,0)
  // forecast must continue the quadratic exactly.
  std::vector<double> x(60);
  for (int t = 0; t < 60; ++t) {
    x[t] = 0.5 * static_cast<double>(t) * static_cast<double>(t);
  }
  auto fitted = FitArima(x, {0, 2, 0});
  ASSERT_TRUE(fitted.ok());
  auto forecast = ForecastArima(*fitted, x, 3);
  ASSERT_TRUE(forecast.ok());
  for (int h = 0; h < 3; ++h) {
    const double t = static_cast<double>(60 + h);
    EXPECT_NEAR((*forecast)[h], 0.5 * t * t, 1.0);
  }
}

TEST(ArimaForecastTest, RejectsBadHorizon) {
  const auto x = SimulateAr1(60, 0.5, 1.0, 0.0, 5);
  auto fitted = FitArima(x, {1, 0, 0});
  ASSERT_TRUE(fitted.ok());
  EXPECT_FALSE(ForecastArima(*fitted, x, 0).ok());
}

// Property: AIC selection on AR(p) data should never pick an order that
// fits dramatically worse than the truth.
class ArimaOrderPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(ArimaOrderPropertyTest, SelectedAicBeatsWhiteNoise) {
  const double phi = GetParam();
  const auto x = SimulateAr1(250, phi, 1.0, 0.0, 777);
  ArimaSelectionOptions options;
  options.max_p = 2;
  options.max_q = 2;
  auto best = SelectArima(x, options);
  auto wn = FitArima(x, {0, 0, 0});
  ASSERT_TRUE(best.ok());
  ASSERT_TRUE(wn.ok());
  EXPECT_LE(best->aic, wn->aic + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(PhiSweep, ArimaOrderPropertyTest,
                         ::testing::Values(0.0, 0.3, 0.6, 0.9, -0.5));

}  // namespace
}  // namespace mic::arima
