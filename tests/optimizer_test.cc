#include "ssm/optimizer.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace mic::ssm {
namespace {

TEST(NelderMeadTest, MinimizesQuadratic1D) {
  auto objective = [](const std::vector<double>& x) {
    return (x[0] - 3.0) * (x[0] - 3.0);
  };
  auto result = MinimizeNelderMead(objective, {0.0});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->best_point[0], 3.0, 1e-3);
  EXPECT_NEAR(result->best_value, 0.0, 1e-6);
  EXPECT_TRUE(result->converged);
}

TEST(NelderMeadTest, MinimizesShiftedQuadratic3D) {
  auto objective = [](const std::vector<double>& x) {
    double value = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double target = static_cast<double>(i) - 1.0;
      value += (x[i] - target) * (x[i] - target) * (1.0 + i);
    }
    return value;
  };
  auto result = MinimizeNelderMead(objective, {5.0, 5.0, 5.0});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->best_point[0], -1.0, 1e-2);
  EXPECT_NEAR(result->best_point[1], 0.0, 1e-2);
  EXPECT_NEAR(result->best_point[2], 1.0, 1e-2);
}

TEST(NelderMeadTest, HandlesRosenbrock) {
  auto rosenbrock = [](const std::vector<double>& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  NelderMeadOptions options;
  options.max_evaluations = 5000;
  options.tolerance = 1e-12;
  auto result = MinimizeNelderMead(rosenbrock, {-1.2, 1.0}, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->best_point[0], 1.0, 5e-2);
  EXPECT_NEAR(result->best_point[1], 1.0, 1e-1);
}

TEST(NelderMeadTest, SurvivesInfiniteRegions) {
  // Objective rejects half the space; the minimizer must still find the
  // feasible minimum at x = 2.
  auto objective = [](const std::vector<double>& x) {
    if (x[0] < 0.0) return std::numeric_limits<double>::infinity();
    return (x[0] - 2.0) * (x[0] - 2.0);
  };
  auto result = MinimizeNelderMead(objective, {1.0});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->best_point[0], 2.0, 1e-3);
}

TEST(NelderMeadTest, RespectsEvaluationBudget) {
  int calls = 0;
  auto objective = [&calls](const std::vector<double>& x) {
    ++calls;
    return x[0] * x[0];
  };
  NelderMeadOptions options;
  options.max_evaluations = 25;
  auto result = MinimizeNelderMead(objective, {100.0}, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(calls, 27);  // Budget plus the final simplex evaluation slack.
  EXPECT_EQ(result->evaluations, calls);
}

TEST(NelderMeadTest, EmptyStartFails) {
  auto objective = [](const std::vector<double>&) { return 0.0; };
  EXPECT_FALSE(MinimizeNelderMead(objective, {}).ok());
}

// The optimizer must improve on the starting value for a family of
// random convex bowls.
class NelderMeadPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(NelderMeadPropertyTest, ImprovesOnStart) {
  const double shift = static_cast<double>(GetParam());
  auto objective = [shift](const std::vector<double>& x) {
    double value = 0.0;
    for (double xi : x) value += (xi - shift) * (xi - shift);
    return std::sqrt(value + 1.0);
  };
  const std::vector<double> start = {0.0, 0.0};
  auto result = MinimizeNelderMead(objective, start);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->best_value, objective(start) + 1e-12);
  EXPECT_NEAR(result->best_point[0], shift, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Shifts, NelderMeadPropertyTest,
                         ::testing::Values(-7, -3, -1, 0, 1, 2, 5, 11));

}  // namespace
}  // namespace mic::ssm
