// Tests for the raw StateSpaceModel spec (validation, observation
// vector assembly) and structural forecasting.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ssm/fit.h"
#include "ssm/kalman.h"
#include "ssm/model.h"
#include "ssm/structural.h"

namespace mic::ssm {
namespace {

StateSpaceModel ValidModel() {
  StateSpaceModel model;
  model.transition = la::Matrix{{1.0, 1.0}, {0.0, 1.0}};
  model.selection = la::Matrix{{1.0}, {0.0}};
  model.state_noise = la::Matrix{{0.5}};
  model.observation = la::Vector{1.0, 0.0};
  model.observation_variance = 1.0;
  model.initial_state = la::Vector{0.0, 0.0};
  model.initial_covariance = la::Matrix{{10.0, 0.0}, {0.0, 10.0}};
  model.num_diffuse = 0;
  return model;
}

TEST(StateSpaceModelTest, ValidModelPasses) {
  EXPECT_TRUE(ValidModel().Validate().ok());
}

TEST(StateSpaceModelTest, DimensionMismatchesRejected) {
  {
    StateSpaceModel model = ValidModel();
    model.transition = la::Matrix{{1.0}};
    EXPECT_FALSE(model.Validate().ok());
  }
  {
    StateSpaceModel model = ValidModel();
    model.selection = la::Matrix{{1.0}};
    EXPECT_FALSE(model.Validate().ok());
  }
  {
    StateSpaceModel model = ValidModel();
    model.state_noise = la::Matrix{{1.0, 0.0}, {0.0, 1.0}};
    EXPECT_FALSE(model.Validate().ok());
  }
  {
    StateSpaceModel model = ValidModel();
    model.initial_state = la::Vector{0.0};
    EXPECT_FALSE(model.Validate().ok());
  }
  {
    StateSpaceModel model = ValidModel();
    model.initial_covariance = la::Matrix{{1.0}};
    EXPECT_FALSE(model.Validate().ok());
  }
  {
    StateSpaceModel model = ValidModel();
    model.observation = la::Vector();
    EXPECT_FALSE(model.Validate().ok());
  }
}

TEST(StateSpaceModelTest, BadVarianceAndDiffuseRejected) {
  {
    StateSpaceModel model = ValidModel();
    model.observation_variance = -1.0;
    EXPECT_FALSE(model.Validate().ok());
  }
  {
    StateSpaceModel model = ValidModel();
    model.observation_variance =
        std::numeric_limits<double>::infinity();
    EXPECT_FALSE(model.Validate().ok());
  }
  {
    StateSpaceModel model = ValidModel();
    model.num_diffuse = 5;
    EXPECT_FALSE(model.Validate().ok());
  }
  {
    StateSpaceModel model = ValidModel();
    model.time_varying.push_back({7, {1.0, 2.0}});
    EXPECT_FALSE(model.Validate().ok());
  }
}

TEST(StateSpaceModelTest, ObservationVectorAppliesOverrides) {
  StateSpaceModel model = ValidModel();
  model.time_varying.push_back({1, {0.5, 0.25}});
  const la::Vector z0 = model.ObservationVector(0);
  EXPECT_DOUBLE_EQ(z0[0], 1.0);
  EXPECT_DOUBLE_EQ(z0[1], 0.5);
  const la::Vector z1 = model.ObservationVector(1);
  EXPECT_DOUBLE_EQ(z1[1], 0.25);
  // Past the override's range the fixed entry is used.
  const la::Vector z5 = model.ObservationVector(5);
  EXPECT_DOUBLE_EQ(z5[1], 0.0);
}

TEST(ForecastStructuralTest, ExtendsSlopeThroughHorizon) {
  Rng rng(9);
  std::vector<double> x(40);
  for (int t = 0; t < 40; ++t) {
    x[t] = 5.0 + (t >= 20 ? 1.5 * (t - 19) : 0.0) +
           rng.NextGaussian(0.0, 0.3);
  }
  StructuralSpec spec;
  spec.set_change_point(20);
  auto fitted = FitStructuralModel(x, spec);
  ASSERT_TRUE(fitted.ok());
  auto forecast = ForecastStructural(*fitted, x, 6);
  ASSERT_TRUE(forecast.ok());
  ASSERT_EQ(forecast->mean.size(), 6u);
  // The trend continues: consecutive forecasts differ by ~lambda.
  for (std::size_t h = 1; h < forecast->mean.size(); ++h) {
    EXPECT_NEAR(forecast->mean[h] - forecast->mean[h - 1],
                fitted->lambda, 0.3);
  }
  // Lambda uncertainty widens the intervals with the horizon.
  EXPECT_GT(forecast->variance.back(), forecast->variance.front());
}

TEST(ForecastStructuralTest, LevelShiftForecastStaysAtNewLevel) {
  Rng rng(15);
  std::vector<double> x(40);
  for (int t = 0; t < 40; ++t) {
    x[t] = (t >= 18 ? 14.0 : 6.0) + rng.NextGaussian(0.0, 0.4);
  }
  StructuralSpec spec;
  spec.set_change_point(18, InterventionKind::kLevelShift);
  auto fitted = FitStructuralModel(x, spec);
  ASSERT_TRUE(fitted.ok());
  auto forecast = ForecastStructural(*fitted, x, 5);
  ASSERT_TRUE(forecast.ok());
  for (double value : forecast->mean) {
    EXPECT_NEAR(value, 14.0, 1.0);
  }
}

TEST(ForecastStructuralTest, NoInterventionDelegatesToPlainForecast) {
  Rng rng(21);
  std::vector<double> x(30);
  for (double& value : x) value = 9.0 + rng.NextGaussian(0.0, 0.5);
  StructuralSpec spec;
  auto fitted = FitStructuralModel(x, spec);
  ASSERT_TRUE(fitted.ok());
  auto structural = ForecastStructural(*fitted, x, 4);
  auto plain = ForecastAhead(fitted->model, x, 4);
  ASSERT_TRUE(structural.ok());
  ASSERT_TRUE(plain.ok());
  for (std::size_t h = 0; h < 4; ++h) {
    EXPECT_DOUBLE_EQ(structural->mean[h], plain->mean[h]);
  }
  EXPECT_FALSE(ForecastStructural(*fitted, x, 0).ok());
}

}  // namespace
}  // namespace mic::ssm
