#include "synth/generator.h"

#include <gtest/gtest.h>

#include "synth/scenario.h"

namespace mic::synth {
namespace {

GeneratedData GenerateTiny(int num_months = 12, std::uint64_t seed = 7) {
  auto world = World::Create(MakeTinyWorldConfig(num_months, seed));
  EXPECT_TRUE(world.ok());
  ClaimGenerator generator(&*world);
  auto data = generator.Generate();
  EXPECT_TRUE(data.ok());
  return std::move(data).value();
}

TEST(GeneratorTest, ProducesRequestedMonths) {
  GeneratedData data = GenerateTiny(12);
  EXPECT_EQ(data.corpus.num_months(), 12u);
  EXPECT_GT(data.corpus.TotalRecords(), 100u);
  EXPECT_EQ(data.truth.num_months(), 12);
}

TEST(GeneratorTest, DeterministicGivenSeed) {
  auto world = World::Create(MakeTinyWorldConfig(6, 7));
  ASSERT_TRUE(world.ok());
  ClaimGenerator generator(&*world);
  auto first = generator.Generate(123);
  auto world2 = World::Create(MakeTinyWorldConfig(6, 7));
  ASSERT_TRUE(world2.ok());
  ClaimGenerator generator2(&*world2);
  auto second = generator2.Generate(123);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first->corpus.TotalRecords(), second->corpus.TotalRecords());
  for (std::size_t t = 0; t < first->corpus.num_months(); ++t) {
    const auto& month_a = first->corpus.month(t);
    const auto& month_b = second->corpus.month(t);
    ASSERT_EQ(month_a.size(), month_b.size());
    for (std::size_t r = 0; r < month_a.size(); ++r) {
      EXPECT_EQ(month_a.records()[r].diseases,
                month_b.records()[r].diseases);
      EXPECT_EQ(month_a.records()[r].medicines,
                month_b.records()[r].medicines);
    }
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  auto world = World::Create(MakeTinyWorldConfig(6, 7));
  ASSERT_TRUE(world.ok());
  ClaimGenerator generator(&*world);
  auto first = generator.Generate(1);
  auto second = generator.Generate(2);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_NE(first->corpus.TotalRecords(), second->corpus.TotalRecords());
}

TEST(GeneratorTest, TruthTotalsMatchObservableMedicineCounts) {
  GeneratedData data = GenerateTiny(8, 11);
  // Every prescribed medicine mention has exactly one true causing
  // disease, so per-month truth totals equal observable medicine totals.
  for (std::size_t t = 0; t < data.corpus.num_months(); ++t) {
    std::uint64_t observable = 0;
    for (const MicRecord& record : data.corpus.month(t).records()) {
      observable += record.TotalMedicineMentions();
    }
    std::uint64_t truth_total = 0;
    data.truth.ForEachPair([&](DiseaseId, MedicineId,
                               const std::vector<std::uint32_t>& counts) {
      truth_total += counts[t];
    });
    EXPECT_EQ(truth_total, observable) << "month " << t;
  }
}

TEST(GeneratorTest, TruthLinksRespectAvailability) {
  // "new-drug" releases at month num_months/2; no true link can exist
  // before that.
  const int num_months = 12;
  auto world = World::Create(MakeTinyWorldConfig(num_months, 5));
  ASSERT_TRUE(world.ok());
  ClaimGenerator generator(&*world);
  auto data = generator.Generate();
  ASSERT_TRUE(data.ok());
  const MedicineId new_drug = *world->FindMedicine("new-drug");
  data->truth.ForEachPair([&](DiseaseId, MedicineId m,
                              const std::vector<std::uint32_t>& counts) {
    if (!(m == new_drug)) return;
    for (int t = 0; t < num_months / 2; ++t) {
      EXPECT_EQ(counts[t], 0u) << "pre-release prescription at t=" << t;
    }
  });
  // And it is actually prescribed after release.
  const DiseaseId pain = *world->FindDisease("pain");
  EXPECT_GT(data->truth.Total(pain, new_drug), 0u);
}

TEST(GeneratorTest, RecordsAreNormalized) {
  GeneratedData data = GenerateTiny(4, 3);
  for (std::size_t t = 0; t < data.corpus.num_months(); ++t) {
    for (const MicRecord& record : data.corpus.month(t).records()) {
      for (std::size_t i = 1; i < record.diseases.size(); ++i) {
        EXPECT_TRUE(record.diseases[i - 1].id < record.diseases[i].id);
      }
      for (std::size_t i = 1; i < record.medicines.size(); ++i) {
        EXPECT_TRUE(record.medicines[i - 1].id < record.medicines[i].id);
      }
      EXPECT_FALSE(record.diseases.empty());
    }
  }
}

TEST(GeneratorTest, HospitalsAreRegisteredWithAttributes) {
  GeneratedData data = GenerateTiny(4, 9);
  const Catalog& catalog = data.corpus.catalog();
  EXPECT_GT(catalog.hospitals().size(), 0u);
  for (std::uint32_t h = 0; h < catalog.hospitals().size(); ++h) {
    auto info = catalog.GetHospitalInfo(HospitalId(h));
    ASSERT_TRUE(info.ok());
    EXPECT_LT(info->city.value(), catalog.cities().size());
  }
}

TEST(GeneratorTest, HospitalClassQuotasAreHonored) {
  // Largest-remainder allocation guarantees every class with positive
  // fraction is represented, even in small worlds and for any seed.
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 99ull}) {
    auto config = MakeTinyWorldConfig(2, seed);
    config.hospitals.count = 10;
    config.hospitals.small_fraction = 0.6;
    config.hospitals.medium_fraction = 0.3;
    config.hospitals.large_fraction = 0.1;
    auto world = World::Create(config);
    ASSERT_TRUE(world.ok());
    ClaimGenerator generator(&*world);
    auto data = generator.Generate();
    ASSERT_TRUE(data.ok());
    const Catalog& catalog = data->corpus.catalog();
    int counts[3] = {0, 0, 0};
    for (std::uint32_t h = 0; h < catalog.hospitals().size(); ++h) {
      auto info = catalog.GetHospitalInfo(HospitalId(h));
      ASSERT_TRUE(info.ok());
      ++counts[static_cast<int>(ClassifyHospital(info->beds))];
    }
    EXPECT_EQ(counts[0] + counts[1] + counts[2], 10);
    EXPECT_GE(counts[0], 5);  // ~6 small expected.
    EXPECT_GE(counts[1], 2);  // ~3 medium.
    EXPECT_GE(counts[2], 1);  // at least one large, always.
  }
}

TEST(GeneratorTest, ChronicDiseaseAppearsPersistently) {
  // "bp" is chronic for 40% of tiny-world patients; it should appear in
  // every month with substantial counts.
  GeneratedData data = GenerateTiny(12, 21);
  const Catalog& catalog = data.corpus.catalog();
  auto bp = catalog.diseases().Lookup("bp");
  ASSERT_TRUE(bp.ok());
  for (std::size_t t = 0; t < data.corpus.num_months(); ++t) {
    const auto freq = data.corpus.month(t).DiseaseFrequencies();
    auto it = freq.find(*bp);
    ASSERT_NE(it, freq.end()) << "month " << t;
    EXPECT_GT(it->second, 10u);
  }
}

TEST(GeneratorTest, SeasonalDiseaseFollowsSeason) {
  // Tiny world's "flu" peaks in January (calendar month 0). The window
  // starts in March (start_calendar_month = 2), so January is t = 10
  // and July is t = 4: January counts must dominate.
  GeneratedData data = GenerateTiny(12, 33);
  const Catalog& catalog = data.corpus.catalog();
  auto flu = catalog.diseases().Lookup("flu");
  ASSERT_TRUE(flu.ok());
  const auto january = data.corpus.month(10).DiseaseFrequencies();
  const auto july = data.corpus.month(4).DiseaseFrequencies();
  const std::uint64_t january_count =
      january.count(*flu) ? january.at(*flu) : 0;
  const std::uint64_t july_count = july.count(*flu) ? july.at(*flu) : 0;
  EXPECT_GT(january_count, 2 * july_count + 1);
}

}  // namespace
}  // namespace mic::synth
