#include "medmodel/medication_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "medmodel/baselines.h"
#include "runtime/thread_pool.h"
#include "synth/generator.h"
#include "synth/scenario.h"

namespace mic::medmodel {
namespace {

MicRecord MakeRecord(std::initializer_list<int> diseases,
                     std::initializer_list<int> medicines) {
  MicRecord record;
  for (int id : diseases) {
    record.diseases.push_back({DiseaseId(static_cast<std::uint32_t>(id)), 1});
  }
  for (int id : medicines) {
    record.medicines.push_back(
        {MedicineId(static_cast<std::uint32_t>(id)), 1});
  }
  record.Normalize();
  return record;
}

// The paper's Fig. 2 situation in miniature: disease 0 (hypertension) is
// chronic and cooccurs with disease 1 (pain) whose medicine 1
// (analgesic) is everywhere; medicine 0 (depressor) is only ever
// prescribed when disease 0 is present ALONE as well, which identifies
// the link.
MonthlyDataset DisambiguationMonth() {
  MonthlyDataset month(0);
  // Records with both diseases and both medicines: ambiguous.
  for (int i = 0; i < 30; ++i) {
    month.AddRecord(MakeRecord({0, 1}, {0, 1}));
  }
  // Records with only disease 1 and only the analgesic: identify
  // medicine 1 as pain's medicine.
  for (int i = 0; i < 40; ++i) {
    month.AddRecord(MakeRecord({1}, {1}));
  }
  // A few pure-hypertension records with the depressor.
  for (int i = 0; i < 10; ++i) {
    month.AddRecord(MakeRecord({0}, {0}));
  }
  return month;
}

TEST(MedicationModelTest, EmLogLikelihoodIsMonotone) {
  auto model = MedicationModel::Fit(DisambiguationMonth());
  ASSERT_TRUE(model.ok());
  const auto& trace = (*model)->fit_stats().log_likelihood_trace;
  ASSERT_GE(trace.size(), 2u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i], trace[i - 1] - 1e-9) << "iteration " << i;
  }
}

TEST(MedicationModelTest, PhiRowsAreDistributions) {
  auto fitted = MedicationModel::Fit(DisambiguationMonth());
  ASSERT_TRUE(fitted.ok());
  const MedicationModel& model = **fitted;
  for (int d = 0; d < 2; ++d) {
    double total = 0.0;
    for (int m = 0; m < 2; ++m) {
      const double phi = model.Phi(DiseaseId(d), MedicineId(m));
      EXPECT_GE(phi, 0.0);
      total += phi;
    }
    EXPECT_NEAR(total, 1.0, 1e-6) << "disease " << d;
  }
}

TEST(MedicationModelTest, EtaMatchesEquationFour) {
  auto fitted = MedicationModel::Fit(DisambiguationMonth());
  ASSERT_TRUE(fitted.ok());
  // Disease 0 mentions: 30 + 10 = 40; disease 1: 30 + 40 = 70.
  EXPECT_NEAR((*fitted)->Eta(DiseaseId(0)), 40.0 / 110.0, 1e-12);
  EXPECT_NEAR((*fitted)->Eta(DiseaseId(1)), 70.0 / 110.0, 1e-12);
  EXPECT_DOUBLE_EQ((*fitted)->Eta(DiseaseId(5)), 0.0);
}

TEST(MedicationModelTest, ThetaMatchesEquationTwo) {
  const MicRecord record = MakeRecord({0, 0, 1}, {0});
  // After Normalize: disease 0 count 2, disease 1 count 1, N_r = 3.
  EXPECT_NEAR(MedicationModel::Theta(record, DiseaseId(0)), 2.0 / 3.0,
              1e-12);
  EXPECT_NEAR(MedicationModel::Theta(record, DiseaseId(1)), 1.0 / 3.0,
              1e-12);
  EXPECT_DOUBLE_EQ(MedicationModel::Theta(record, DiseaseId(9)), 0.0);
}

TEST(MedicationModelTest, ResolvesAmbiguousLinksBetterThanCooccurrence) {
  const MonthlyDataset month = DisambiguationMonth();
  auto proposed = MedicationModel::Fit(month);
  auto baseline = CooccurrenceModel::Fit(month);
  ASSERT_TRUE(proposed.ok());
  ASSERT_TRUE(baseline.ok());

  // Ground truth: medicine 0 belongs to disease 0; medicine 1 to
  // disease 1. The latent model must assign phi(0 -> 0) > phi(0 -> 1)
  // restricted... specifically the depressor mass under hypertension
  // should dominate the analgesic mass under hypertension more strongly
  // than under the cooccurrence baseline.
  const double proposed_ratio =
      (*proposed)->Phi(DiseaseId(0), MedicineId(0)) /
      (*proposed)->Phi(DiseaseId(0), MedicineId(1));
  const double baseline_ratio =
      (*baseline)->Phi(DiseaseId(0), MedicineId(0)) /
      (*baseline)->Phi(DiseaseId(0), MedicineId(1));
  EXPECT_GT(proposed_ratio, baseline_ratio);
  EXPECT_GT(proposed_ratio, 1.0);
}

TEST(MedicationModelTest, PairCountsConserveMedicineMass) {
  const MonthlyDataset month = DisambiguationMonth();
  auto fitted = MedicationModel::Fit(month);
  ASSERT_TRUE(fitted.ok());
  // Sum over diseases of x_dm equals the total mentions of medicine m
  // (each mention distributes responsibility 1 across diseases).
  double total_m0 = 0.0;
  double total_m1 = 0.0;
  (*fitted)->MonthlyPairCounts().ForEach(
      [&](DiseaseId, MedicineId m, double value) {
        if (m == MedicineId(0)) total_m0 += value;
        if (m == MedicineId(1)) total_m1 += value;
      });
  EXPECT_NEAR(total_m0, 40.0, 1e-6);  // 30 ambiguous + 10 pure.
  EXPECT_NEAR(total_m1, 70.0, 1e-6);
}

TEST(MedicationModelTest, PredictiveProbabilitySumsToOneOverMedicines) {
  const MonthlyDataset month = DisambiguationMonth();
  auto fitted = MedicationModel::Fit(month);
  ASSERT_TRUE(fitted.ok());
  const MicRecord record = MakeRecord({0, 1}, {0});
  double total = 0.0;
  for (int m = 0; m < 2; ++m) {
    total += (*fitted)->PredictiveProbability(record, MedicineId(m));
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(MedicationModelTest, RejectsDegenerateInputs) {
  MonthlyDataset empty(0);
  EXPECT_FALSE(MedicationModel::Fit(empty).ok());

  MonthlyDataset no_medicines(0);
  no_medicines.AddRecord(MakeRecord({0}, {}));
  EXPECT_FALSE(MedicationModel::Fit(no_medicines).ok());

  MedicationModelOptions bad;
  bad.max_iterations = 0;
  EXPECT_FALSE(MedicationModel::Fit(DisambiguationMonth(), bad).ok());
  bad.max_iterations = 10;
  bad.phi_smoothing = 1.5;
  EXPECT_FALSE(MedicationModel::Fit(DisambiguationMonth(), bad).ok());
}

TEST(MedicationModelTest, ConvergesOnGeneratedWorldMonth) {
  auto world = synth::World::Create(synth::MakeTinyWorldConfig(3, 77));
  ASSERT_TRUE(world.ok());
  synth::ClaimGenerator generator(&*world);
  auto data = generator.Generate();
  ASSERT_TRUE(data.ok());
  auto fitted = MedicationModel::Fit(data->corpus.month(0));
  ASSERT_TRUE(fitted.ok());
  EXPECT_LT((*fitted)->fit_stats().iterations, 100);
  EXPECT_TRUE(std::isfinite((*fitted)->fit_stats().final_log_likelihood));
}

// Fitting through a 4-thread pool must be bitwise-equal to the inline
// fit: the E step reduces fixed 256-record chunks merged in chunk
// order, so scheduling can never reorder the floating-point sums. The
// month here is large enough (800 records) to span several chunks.
TEST(MedicationModelTest, FourThreadFitIsBitwiseEqualToSerial) {
  MonthlyDataset month(0);
  for (int repeat = 0; repeat < 10; ++repeat) {
    for (int i = 0; i < 30; ++i) month.AddRecord(MakeRecord({0, 1}, {0, 1}));
    for (int i = 0; i < 40; ++i) month.AddRecord(MakeRecord({1}, {1}));
    for (int i = 0; i < 10; ++i) month.AddRecord(MakeRecord({0}, {0}));
  }

  auto serial = MedicationModel::Fit(month);
  ASSERT_TRUE(serial.ok());

  runtime::ThreadPool pool(4);
  ExecContext context;
  context.pool = &pool;
  auto parallel = MedicationModel::Fit(month, MedicationModelOptions{},
                                       /*prior=*/nullptr, context);
  ASSERT_TRUE(parallel.ok());

  // Exact equality throughout — no tolerance.
  EXPECT_EQ((*serial)->fit_stats().iterations,
            (*parallel)->fit_stats().iterations);
  EXPECT_EQ((*serial)->fit_stats().final_log_likelihood,
            (*parallel)->fit_stats().final_log_likelihood);
  EXPECT_EQ((*serial)->fit_stats().log_likelihood_trace,
            (*parallel)->fit_stats().log_likelihood_trace);
  for (int d = 0; d < 2; ++d) {
    EXPECT_EQ((*serial)->Eta(DiseaseId(d)), (*parallel)->Eta(DiseaseId(d)));
    for (int m = 0; m < 2; ++m) {
      EXPECT_EQ((*serial)->Phi(DiseaseId(d), MedicineId(m)),
                (*parallel)->Phi(DiseaseId(d), MedicineId(m)));
    }
  }
  (*serial)->MonthlyPairCounts().ForEach(
      [&](DiseaseId d, MedicineId m, double value) {
        EXPECT_EQ(value, (*parallel)->MonthlyPairCounts().Get(d, m));
      });
}

// Property: under any smoothing in range, Phi stays a (sub)distribution.
class SmoothingPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(SmoothingPropertyTest, PhiStaysNormalized) {
  MedicationModelOptions options;
  options.phi_smoothing = GetParam();
  auto fitted = MedicationModel::Fit(DisambiguationMonth(), options);
  ASSERT_TRUE(fitted.ok());
  double total = 0.0;
  for (int m = 0; m < 2; ++m) {
    total += (*fitted)->Phi(DiseaseId(0), MedicineId(m));
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Smoothings, SmoothingPropertyTest,
                         ::testing::Values(0.0, 1e-6, 1e-3, 0.1, 0.5));

}  // namespace
}  // namespace mic::medmodel
