// Tests for the hierarchical drill-down layer (trend/drilldown.h):
// tree shape (class grouping, single-child chains, chain reuse across
// sibling groups), deterministic aggregation over children with
// disjoint month coverage, leaf reuse from the flat report, the drill
// cache round trip, bit-identical reports at 1 vs 4 threads, and the
// subgroup search (ground-truth driver recovery, tie breaking,
// min-share cutoff, error cases).

#include "trend/drilldown.h"

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cache/cache_store.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "runtime/thread_pool.h"
#include "synth/generator.h"
#include "synth/scenario.h"
#include "trend/pipeline.h"

namespace mic::trend {
namespace {

namespace fs = std::filesystem;

std::vector<double> Series(int n, double level, int change_point,
                           double slope, double noise_sd,
                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (int t = 0; t < n; ++t) {
    double value = level + rng.NextGaussian(0.0, noise_sd);
    if (change_point >= 0 && t >= change_point) {
      value += slope * (t - change_point + 1);
    }
    x[t] = value;
  }
  return x;
}

TrendAnalyzerOptions FastOptions() {
  TrendAnalyzerOptions options;
  options.detector.seasonal = false;
  options.detector.fit.optimizer.max_evaluations = 150;
  return options;
}

// A corpus whose catalog holds the given medicine names (ids in list
// order) but no records — the medicine axis reads only the catalog.
MicCorpus MedicineCatalog(const std::vector<std::string>& names) {
  MicCorpus corpus;
  for (const std::string& name : names) {
    corpus.catalog().medicines().Intern(name);
  }
  return corpus;
}

// Analyzed world for the medicine-axis tests: three medicines, one
// two-member class ("beta"), one hyphen-free name ("solo") that forms
// an own-class chain.
struct MedicineWorld {
  MicCorpus corpus;
  medmodel::SeriesSet series;
  TrendReport report;
  TrendAnalyzerOptions options;

  static MedicineWorld Create() {
    MedicineWorld world;
    world.corpus =
        MedicineCatalog({"beta-ramp", "beta-flat", "solo"});
    world.series = medmodel::SeriesSet(24);
    world.series.SetMedicineSeries(MedicineId(0),
                                   Series(24, 30.0, 12, 5.0, 1.0, 3));
    world.series.SetMedicineSeries(MedicineId(1),
                                   Series(24, 50.0, -1, 0.0, 1.0, 4));
    world.series.SetMedicineSeries(MedicineId(2),
                                   Series(24, 20.0, -1, 0.0, 1.0, 5));
    world.options = FastOptions();
    TrendAnalyzer analyzer(world.options);
    auto report = analyzer.AnalyzeAll(ExecContext{}, world.series);
    EXPECT_TRUE(report.ok()) << report.status();
    world.report = std::move(*report);
    return world;
  }
};

TEST(DrillDownTest, AxisNamesRoundTrip) {
  for (DrillAxis axis : {DrillAxis::kMedicine, DrillAxis::kDisease,
                         DrillAxis::kHospital}) {
    auto parsed = ParseDrillAxis(DrillAxisName(axis));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, axis);
  }
  EXPECT_EQ(ParseDrillAxis("city").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DrillDownTest, BuildsClassTreeWithSingleChildChains) {
  MedicineWorld world = MedicineWorld::Create();
  obs::MetricsRegistry metrics;
  ExecContext context;
  context.metrics = &metrics;
  auto drill =
      BuildDrillDown(context, world.corpus, world.series, world.report,
                     DrillAxis::kMedicine, world.options);
  ASSERT_TRUE(drill.ok()) << drill.status();

  // all + beta + {beta-flat, beta-ramp} + solo-class + solo-leaf.
  ASSERT_EQ(drill->nodes.size(), 6u);
  EXPECT_EQ(drill->num_months, 24);
  const DrillNode& root = drill->nodes[0];
  EXPECT_EQ(root.name, "all");
  EXPECT_EQ(root.parent, -1);
  EXPECT_FALSE(root.is_leaf);

  // Children of every internal node are name-sorted.
  const int beta = drill->FindNode("beta");
  ASSERT_GE(beta, 0);
  const DrillNode& beta_node = drill->nodes[beta];
  ASSERT_EQ(beta_node.children.size(), 2u);
  EXPECT_EQ(drill->nodes[beta_node.children[0]].name, "beta-flat");
  EXPECT_EQ(drill->nodes[beta_node.children[1]].name, "beta-ramp");
  EXPECT_EQ(beta_node.depth, 1);
  EXPECT_EQ(drill->nodes[beta_node.children[0]].depth, 2);

  // "solo" has no hyphen: it is its own class, a single-child chain.
  // FindNode resolves the class node (first in preorder); its one
  // child is the leaf of the same name.
  const int solo = drill->FindNode("solo");
  ASSERT_GE(solo, 0);
  const DrillNode& solo_node = drill->nodes[solo];
  EXPECT_FALSE(solo_node.is_leaf);
  ASSERT_EQ(solo_node.children.size(), 1u);
  const DrillNode& solo_leaf = drill->nodes[solo_node.children[0]];
  EXPECT_TRUE(solo_leaf.is_leaf);
  EXPECT_EQ(solo_leaf.name, "solo");
  EXPECT_EQ(solo_leaf.series, world.series.Medicine(MedicineId(2)));
  EXPECT_EQ(solo_node.series, solo_leaf.series);

  // Topological order: every child index is greater than its parent's.
  for (std::size_t i = 0; i < drill->nodes.size(); ++i) {
    for (int child : drill->nodes[i].children) {
      EXPECT_GT(child, static_cast<int>(i));
      EXPECT_EQ(drill->nodes[child].parent, static_cast<int>(i));
    }
  }

  // Root series is the elementwise sum of all three medicines.
  for (int t = 0; t < 24; ++t) {
    const double expected = world.series.Medicine(MedicineId(0))[t] +
                            world.series.Medicine(MedicineId(1))[t] +
                            world.series.Medicine(MedicineId(2))[t];
    EXPECT_DOUBLE_EQ(root.series[t], expected) << t;
  }

  // All three leaves reused the flat report's verdicts.
  EXPECT_EQ(metrics.counter_value("trend.rollup.nodes"), 6u);
  EXPECT_EQ(metrics.counter_value("trend.rollup.leaf_reuses"), 3u);
  const int ramp = drill->FindNode("beta-ramp");
  ASSERT_GE(ramp, 0);
  const SeriesAnalysis& flat =
      world.report.medicines[world.report.medicine_index.at(MedicineId(0))];
  EXPECT_EQ(drill->nodes[ramp].analysis.aic, flat.aic);
  EXPECT_EQ(drill->nodes[ramp].analysis.change_point, flat.change_point);
  EXPECT_TRUE(drill->nodes[ramp].analysis.has_change);
}

TEST(DrillDownTest, RecoversTheInjectedDriver) {
  MedicineWorld world = MedicineWorld::Create();
  auto drill =
      BuildDrillDown(ExecContext{}, world.corpus, world.series,
                     world.report, DrillAxis::kMedicine, world.options);
  ASSERT_TRUE(drill.ok()) << drill.status();

  // The ramp was injected into beta-ramp only; the aggregate "all"
  // series inherits its shift, and the subgroup search must descend
  // all -> beta -> beta-ramp.
  ASSERT_TRUE(drill->nodes[0].analysis.has_change);
  auto explain = ExplainShift(*drill, "all");
  ASSERT_TRUE(explain.ok()) << explain.status();
  EXPECT_EQ(explain->target, "all");
  ASSERT_EQ(explain->path.size(), 3u);
  EXPECT_EQ(explain->path[0].node, "all");
  EXPECT_EQ(explain->path[1].node, "beta");
  EXPECT_EQ(explain->path[2].node, "beta-ramp");
  EXPECT_EQ(explain->driver, "beta-ramp");
  EXPECT_GT(explain->driver_share, 0.6);
  EXPECT_LE(explain->driver_share, 1.5);
  EXPECT_GT(explain->delta, 0.0);
  // Shares along the path are relative to the previous step.
  EXPECT_DOUBLE_EQ(explain->path[0].share, 1.0);
  EXPECT_GE(explain->path[1].share, 0.6);
}

TEST(DrillDownTest, ExplainTieBreaksToTheLowestNamedSibling) {
  // Hand-built tree: two children with numerically identical shifted
  // series. The search must deterministically keep the first
  // (lowest-named) sibling on the exact tie.
  DrillDownReport report;
  report.axis = DrillAxis::kMedicine;
  report.num_months = 12;
  std::vector<double> child(12, 5.0);
  for (int t = 6; t < 12; ++t) child[t] = 15.0;

  DrillNode root;
  root.name = "all";
  root.children = {1, 2};
  root.series.assign(12, 10.0);
  for (int t = 6; t < 12; ++t) root.series[t] = 30.0;
  root.analysis.has_change = true;
  root.analysis.change_point = 6;
  report.nodes.push_back(root);
  for (const char* name : {"aa", "ab"}) {
    DrillNode node;
    node.name = name;
    node.parent = 0;
    node.depth = 1;
    node.is_leaf = true;
    node.series = child;
    report.nodes.push_back(node);
  }

  // Each child contributes exactly half the shift; with min_share 0.4
  // the descent continues and the tie picks "aa".
  auto explain = ExplainShift(report, "all", 0.4);
  ASSERT_TRUE(explain.ok()) << explain.status();
  ASSERT_EQ(explain->path.size(), 2u);
  EXPECT_EQ(explain->path[1].node, "aa");
  EXPECT_DOUBLE_EQ(explain->path[1].share, 0.5);
  EXPECT_EQ(explain->driver, "aa");
  EXPECT_DOUBLE_EQ(explain->driver_share, 0.5);

  // With the default 0.6 cutoff neither child qualifies: the target
  // itself is the smallest subgroup.
  auto shallow = ExplainShift(report, "all", 0.6);
  ASSERT_TRUE(shallow.ok());
  EXPECT_EQ(shallow->path.size(), 1u);
  EXPECT_EQ(shallow->driver, "all");
  EXPECT_DOUBLE_EQ(shallow->driver_share, 1.0);
}

TEST(DrillDownTest, ExplainRejectsUnknownAndChangelessNodes) {
  MedicineWorld world = MedicineWorld::Create();
  auto drill =
      BuildDrillDown(ExecContext{}, world.corpus, world.series,
                     world.report, DrillAxis::kMedicine, world.options);
  ASSERT_TRUE(drill.ok());
  EXPECT_EQ(ExplainShift(*drill, "no-such-node").status().code(),
            StatusCode::kNotFound);
  ASSERT_FALSE(drill->nodes[drill->FindNode("beta-flat")]
                   .analysis.has_change);
  EXPECT_EQ(ExplainShift(*drill, "beta-flat").status().code(),
            StatusCode::kNotFound);
}

// Hospital axis over a hand-built corpus whose two hospitals are active
// in DISJOINT month ranges: the aggregates must still cover the full
// window, with zeros where a child has no records.
TEST(DrillDownTest, HospitalAxisAggregatesDisjointMonthCoverage) {
  MicCorpus corpus;
  Catalog& catalog = corpus.catalog();
  const HospitalId early = catalog.hospitals().Intern("hosp-early");
  const HospitalId late = catalog.hospitals().Intern("hosp-late");
  const CityId metro = catalog.cities().Intern("metro");
  catalog.SetHospitalInfo(early, {metro, 10});   // small
  catalog.SetHospitalInfo(late, {metro, 500});   // large
  const DiseaseId flu = catalog.diseases().Intern("flu");
  const MedicineId drug = catalog.medicines().Intern("drug-a");

  const int months = 24;
  for (int t = 0; t < months; ++t) {
    MonthlyDataset month{t};
    MicRecord record;
    record.hospital = t < 12 ? early : late;
    record.patient = PatientId(1);
    record.diseases = {{flu, 1}};
    // 2 mentions/month in the early half, 6 in the late half: the
    // city aggregate steps up at month 12.
    record.medicines = {{drug, t < 12 ? 2u : 6u}};
    month.AddRecord(std::move(record));
    ASSERT_TRUE(corpus.AddMonth(std::move(month)).ok());
  }

  medmodel::SeriesSet series(months);  // Hospital axis ignores it.
  TrendReport report;
  auto drill = BuildDrillDown(ExecContext{}, corpus, series, report,
                              DrillAxis::kHospital, FastOptions());
  ASSERT_TRUE(drill.ok()) << drill.status();

  // all -> metro -> {metro/small -> hosp-early, metro/large -> hosp-late}.
  ASSERT_EQ(drill->nodes.size(), 6u);
  const int city = drill->FindNode("metro");
  ASSERT_GE(city, 0);
  EXPECT_EQ(drill->nodes[city].children.size(), 2u);
  const int early_leaf = drill->FindNode("hosp-early");
  const int late_leaf = drill->FindNode("hosp-late");
  ASSERT_GE(early_leaf, 0);
  ASSERT_GE(late_leaf, 0);
  EXPECT_EQ(drill->nodes[drill->nodes[early_leaf].parent].name,
            "metro/small");
  EXPECT_EQ(drill->nodes[drill->nodes[late_leaf].parent].name,
            "metro/large");

  // Disjoint coverage: each leaf's series spans all 24 months, zero
  // outside its active range, and the city sums them without gaps.
  for (int t = 0; t < months; ++t) {
    EXPECT_DOUBLE_EQ(drill->nodes[early_leaf].series[t],
                     t < 12 ? 2.0 : 0.0);
    EXPECT_DOUBLE_EQ(drill->nodes[late_leaf].series[t],
                     t < 12 ? 0.0 : 6.0);
    EXPECT_DOUBLE_EQ(drill->nodes[city].series[t], t < 12 ? 2.0 : 6.0);
  }
  EXPECT_DOUBLE_EQ(drill->nodes[early_leaf].total, 24.0);
  EXPECT_DOUBLE_EQ(drill->nodes[late_leaf].total, 72.0);
  EXPECT_DOUBLE_EQ(drill->nodes[0].total, 96.0);
}

TEST(DrillDownTest, CacheRoundTripIsByteIdenticalAndCountsHits) {
  MedicineWorld world = MedicineWorld::Create();
  fs::path dir = fs::path(::testing::TempDir()) / "drill_cache";
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);

  auto build = [&](cache::CacheStore* store,
                   obs::MetricsRegistry* metrics) {
    ExecContext context;
    context.cache = store;
    context.metrics = metrics;
    auto drill =
        BuildDrillDown(context, world.corpus, world.series, world.report,
                       DrillAxis::kMedicine, world.options);
    EXPECT_TRUE(drill.ok()) << drill.status();
    return std::move(*drill);
  };

  obs::MetricsRegistry cold_metrics;
  cache::CacheStore writer(dir.string(), cache::CacheMode::kWrite,
                           &cold_metrics);
  ASSERT_TRUE(writer.Open().ok());
  const DrillDownReport cold = build(&writer, &cold_metrics);
  // 3 internal nodes fitted fresh (leaves come from the flat report).
  EXPECT_EQ(cold_metrics.counter_value("trend.rollup.cache_misses"), 3u);

  obs::MetricsRegistry warm_metrics;
  cache::CacheStore reader(dir.string(), cache::CacheMode::kRead,
                           &warm_metrics);
  ASSERT_TRUE(reader.Open().ok());
  const DrillDownReport warm = build(&reader, &warm_metrics);
  EXPECT_EQ(warm_metrics.counter_value("trend.rollup.cache_hits"), 3u);
  EXPECT_EQ(warm_metrics.counter_value("trend.rollup.cache_misses"), 0u);

  ASSERT_EQ(cold.nodes.size(), warm.nodes.size());
  for (std::size_t i = 0; i < cold.nodes.size(); ++i) {
    EXPECT_EQ(cold.nodes[i].name, warm.nodes[i].name);
    EXPECT_EQ(cold.nodes[i].series, warm.nodes[i].series) << i;
    EXPECT_EQ(cold.nodes[i].analysis.has_change,
              warm.nodes[i].analysis.has_change)
        << i;
    EXPECT_EQ(cold.nodes[i].analysis.change_point,
              warm.nodes[i].analysis.change_point)
        << i;
    EXPECT_EQ(cold.nodes[i].analysis.aic, warm.nodes[i].analysis.aic)
        << i;
    EXPECT_EQ(cold.nodes[i].analysis.lambda,
              warm.nodes[i].analysis.lambda)
        << i;
  }
}

// The full pipeline integration: drill-down reports requested through
// PipelineConfig must be bit-identical at 1 and 4 threads, across all
// three axes.
TEST(DrillDownTest, FourThreadsMatchSingleThreadBitwise) {
  auto world = synth::World::Create(synth::MakeTinyWorldConfig(24, 5));
  ASSERT_TRUE(world.ok());
  synth::ClaimGenerator generator(&*world);
  auto data = generator.Generate();
  ASSERT_TRUE(data.ok());

  auto run = [&](runtime::ThreadPool* pool) {
    PipelineConfig options;
    options.reproducer.filter_options.min_disease_count = 1;
    options.reproducer.filter_options.min_medicine_count = 1;
    options.reproducer.min_series_total = 10.0;
    options.analyzer.detector.seasonal = false;
    options.analyzer.detector.fit.optimizer.max_evaluations = 150;
    options.drilldown_axes = {DrillAxis::kMedicine, DrillAxis::kDisease,
                              DrillAxis::kHospital};
    ExecContext context;
    context.pool = pool;
    auto result = RunPipeline(data->corpus, options, context);
    EXPECT_TRUE(result.ok()) << result.status();
    return std::move(result).value();
  };
  runtime::ThreadPool single(1);
  runtime::ThreadPool four(4);
  const PipelineResult baseline = run(&single);
  const PipelineResult parallel = run(&four);

  ASSERT_EQ(baseline.drilldowns.size(), 3u);
  ASSERT_EQ(parallel.drilldowns.size(), 3u);
  for (std::size_t a = 0; a < 3; ++a) {
    const DrillDownReport& b = baseline.drilldowns[a];
    const DrillDownReport& p = parallel.drilldowns[a];
    EXPECT_EQ(b.axis, p.axis);
    ASSERT_EQ(b.nodes.size(), p.nodes.size());
    ASSERT_GT(b.nodes.size(), 1u);
    for (std::size_t i = 0; i < b.nodes.size(); ++i) {
      EXPECT_EQ(b.nodes[i].name, p.nodes[i].name) << i;
      EXPECT_EQ(b.nodes[i].parent, p.nodes[i].parent) << i;
      EXPECT_EQ(b.nodes[i].children, p.nodes[i].children) << i;
      EXPECT_EQ(b.nodes[i].series, p.nodes[i].series) << i;  // bitwise
      EXPECT_EQ(b.nodes[i].total, p.nodes[i].total) << i;
      EXPECT_EQ(b.nodes[i].analysis.has_change,
                p.nodes[i].analysis.has_change)
          << i;
      EXPECT_EQ(b.nodes[i].analysis.change_point,
                p.nodes[i].analysis.change_point)
          << i;
      EXPECT_EQ(b.nodes[i].analysis.aic, p.nodes[i].analysis.aic) << i;
      EXPECT_EQ(b.nodes[i].analysis.lambda, p.nodes[i].analysis.lambda)
          << i;
      EXPECT_EQ(b.nodes[i].analysis.fits_performed,
                p.nodes[i].analysis.fits_performed)
          << i;
    }
  }
}

}  // namespace
}  // namespace mic::trend
