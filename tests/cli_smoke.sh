#!/bin/sh
# End-to-end smoke test of the mictrend CLI: generate -> stats ->
# reproduce -> detect -> pipeline, plus a custom --world config.
# Usage: cli_smoke.sh <path-to-mictrend-binary> <work-dir>
set -e

MICTREND="$1"
WORK="$2"
mkdir -p "$WORK"

"$MICTREND" generate --out "$WORK/corpus.csv" \
  --hospitals-out "$WORK/hospitals.csv" \
  --months 12 --patients 250 --background 3 --seed 7

test -s "$WORK/corpus.csv"
test -s "$WORK/hospitals.csv"

"$MICTREND" stats --corpus "$WORK/corpus.csv" | grep -q "months: 12"

"$MICTREND" reproduce --corpus "$WORK/corpus.csv" \
  --out "$WORK/series.csv" --min-total 5
test -s "$WORK/series.csv"
head -1 "$WORK/series.csv" | grep -q "kind,disease,medicine,values"

"$MICTREND" detect --series "$WORK/series.csv" --algorithm approx \
  --seasonal false --margin 4 --min-tail 3 > "$WORK/detect.csv"
head -1 "$WORK/detect.csv" | grep -q "kind,disease,medicine,change"

"$MICTREND" pipeline --corpus "$WORK/corpus.csv" --min-total 5 \
  --out "$WORK/report.csv" | grep -q "reproduced"
test -s "$WORK/report.csv"

# The parallel runtime must reproduce the serial pipeline bit for bit.
"$MICTREND" pipeline --corpus "$WORK/corpus.csv" --min-total 5 \
  --threads 4 \
  --out "$WORK/report_mt.csv" | grep -q "reproduced"
cmp "$WORK/report.csv" "$WORK/report_mt.csv"

# The removed --runtime-stats flag is rejected with a pointer to its
# replacement, not a generic unknown-flag error.
if "$MICTREND" pipeline --corpus "$WORK/corpus.csv" --runtime-stats \
    > "$WORK/rts.out" 2>&1; then
  echo "expected failure for removed --runtime-stats" >&2
  exit 1
fi
grep -q -- "--metrics-out" "$WORK/rts.out" || {
  echo "--runtime-stats rejection must name --metrics-out" >&2
  exit 1
}

# --metrics-out writes valid JSON with the pipeline's counters, and the
# counters section is bit-identical across thread counts.
"$MICTREND" pipeline --corpus "$WORK/corpus.csv" --min-total 5 \
  --seasonal false --out "$WORK/r1.csv" --threads 1 \
  --metrics-out "$WORK/m1.json" 2>&1 | grep -q "wrote metrics to"
"$MICTREND" pipeline --corpus "$WORK/corpus.csv" --min-total 5 \
  --seasonal false --out "$WORK/r4.csv" --threads 4 \
  --metrics-out "$WORK/m4.json" > /dev/null
if command -v python3 >/dev/null 2>&1; then
  python3 - "$WORK/m1.json" "$WORK/m4.json" << 'EOF'
import json, sys
one, four = (json.load(open(path)) for path in sys.argv[1:3])
for key in ("em.fits", "em.iterations", "ssm.kalman_passes",
            "changepoint.aic_evaluations", "trend.series_analyzed",
            "reproduce.months_fitted", "runtime.threads"):
    assert key in one["counters"] or key in one["gauges"], key
assert one["counters"] == four["counters"], "counters differ by threads"
assert "pipeline/reproduce/em_fit" in one["timers"], "missing span timer"
EOF
else
  grep -q '"em.iterations"' "$WORK/m1.json"
fi

# --trace-out writes parseable Chrome-trace JSON with begin/end pairs
# and ParallelFor chunk events nested under their owning span path;
# --log-json writes a JSON-lines run log that opens with the run_start
# metadata record.
"$MICTREND" pipeline --corpus "$WORK/corpus.csv" --min-total 5 \
  --seasonal false --threads 4 --trace-out "$WORK/trace.json" \
  --log-json "$WORK/run.jsonl" 2>&1 | grep -q "wrote trace to"
test -s "$WORK/trace.json"
test -s "$WORK/run.jsonl"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$WORK/trace.json" "$WORK/run.jsonl" << 'EOF'
import json, sys
trace = json.load(open(sys.argv[1]))
events = trace["traceEvents"]
assert "droppedEvents" in trace, "missing drop accounting"
begins = [e for e in events if e.get("ph") == "B"]
ends = [e for e in events if e.get("ph") == "E"]
assert len(begins) == len(ends), "unbalanced begin/end events"
chunked = {e["name"] for e in begins if "chunk" in e.get("args", {})}
assert any(n.startswith("pipeline/") for n in chunked), \
    f"chunk events not nested under the pipeline span: {chunked}"
records = [json.loads(line) for line in open(sys.argv[2])]
assert records[0]["event"] == "run_start", records[0]
assert records[0]["threads"] == 4, records[0]
assert all("ts" in r and "level" in r and "message" in r
           for r in records), "malformed log record"
EOF
else
  grep -q '"traceEvents"' "$WORK/trace.json"
  grep -q '"run_start"' "$WORK/run.jsonl"
fi

# detect honors --threads and --metrics-out too.
"$MICTREND" detect --series "$WORK/series.csv" --algorithm approx \
  --seasonal false --margin 4 --min-tail 3 --threads 2 \
  --metrics-out "$WORK/detect_metrics.json" > "$WORK/detect_mt.csv"
cmp "$WORK/detect.csv" "$WORK/detect_mt.csv"
grep -q '"changepoint.approximate.aic_evaluations"' \
  "$WORK/detect_metrics.json"

# mic::cache incremental engine: a cold seeding run (--cache=write)
# followed by a warm rerun (--cache=rw) against the same directory must
# write a byte-identical report while serving hits from the cache.
"$MICTREND" pipeline --corpus "$WORK/corpus.csv" --min-total 5 \
  --seasonal false --cache write --cache-dir "$WORK/cache" \
  --out "$WORK/cache_cold.csv" > /dev/null
"$MICTREND" pipeline --corpus "$WORK/corpus.csv" --min-total 5 \
  --seasonal false --cache rw --cache-dir "$WORK/cache" \
  --out "$WORK/cache_warm.csv" \
  --metrics-out "$WORK/cache_metrics.json" > /dev/null
cmp "$WORK/cache_cold.csv" "$WORK/cache_warm.csv"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$WORK/cache_metrics.json" << 'EOF'
import json, sys
counters = json.load(open(sys.argv[1]))["counters"]
assert counters.get("cache.hits", 0) > 0, counters
assert counters.get("cache.misses", 1) == 0, counters
assert counters.get("cache.read_errors", 1) == 0, counters
assert counters.get("trend.series_cache_hits", 0) > 0, counters
EOF
else
  grep -q '"cache.hits"' "$WORK/cache_metrics.json"
fi

# Invalid cache flag combinations are rejected naming the flag.
if "$MICTREND" pipeline --corpus "$WORK/corpus.csv" --cache rw \
    > "$WORK/cache_err.out" 2>&1; then
  echo "expected failure for --cache without --cache-dir" >&2
  exit 1
fi
grep -q -- "--cache-dir" "$WORK/cache_err.out" || {
  echo "cache rejection must name --cache-dir" >&2
  exit 1
}

# mic::store persistent claim store: import seeds a columnar store,
# and a store-backed pipeline run writes a byte-identical report to
# the CSV-backed run at 1 and 4 threads. Drop any store a previous
# smoke run left behind — import refuses to overwrite one.
rm -rf "$WORK/store"
"$MICTREND" import --corpus "$WORK/corpus.csv" \
  --hospitals "$WORK/hospitals.csv" \
  --store-dir "$WORK/store" | grep -q "imported 12 of 12 months"
test -s "$WORK/store/MANIFEST"
test -s "$WORK/store/dict.seg"
test -s "$WORK/store/m0000.seg"
"$MICTREND" pipeline --store-dir "$WORK/store" --corpus "$WORK/corpus.csv" \
  --min-total 5 --out "$WORK/report_store.csv" \
  2> "$WORK/store_ingest.err" > /dev/null
grep -q "ingested 12 months from store" "$WORK/store_ingest.err"
cmp "$WORK/report.csv" "$WORK/report_store.csv"
"$MICTREND" pipeline --store-dir "$WORK/store" --corpus "$WORK/corpus.csv" \
  --min-total 5 --threads 4 --out "$WORK/report_store_mt.csv" > /dev/null 2>&1
cmp "$WORK/report.csv" "$WORK/report_store_mt.csv"

# Re-importing the same corpus without --append is refused (the store
# is a commit log, not a scratch dir), while --append is a no-op that
# reports zero new months.
if "$MICTREND" import --corpus "$WORK/corpus.csv" \
    --store-dir "$WORK/store" > "$WORK/import_err.out" 2>&1; then
  echo "expected failure for re-import without --append" >&2
  exit 1
fi
grep -q -- "--append" "$WORK/import_err.out"
"$MICTREND" import --corpus "$WORK/corpus.csv" --store-dir "$WORK/store" \
  --append | grep -q "imported 0 of 12 months"

# A corrupt segment degrades to a warned cold CSV parse, not a crash
# and not silent bad data.
cp "$WORK/store/m0003.seg" "$WORK/m0003.seg.bak"
printf 'garbage' > "$WORK/store/m0003.seg"
"$MICTREND" stats --corpus "$WORK/corpus.csv" \
  --store-dir "$WORK/store" > "$WORK/stats_fallback.out" \
  2> "$WORK/store_fallback.err"
grep -q "warning: store ingest failed" "$WORK/store_fallback.err"
grep -q "falling back to cold CSV parse" "$WORK/store_fallback.err"
grep -q "months: 12" "$WORK/stats_fallback.out"
cp "$WORK/m0003.seg.bak" "$WORK/store/m0003.seg"

# Store flag mistakes are rejected naming the fix.
if "$MICTREND" pipeline --corpus "$WORK/corpus.csv" --store mmap \
    > "$WORK/store_err.out" 2>&1; then
  echo "expected failure for --store without --store-dir" >&2
  exit 1
fi
grep -q -- "--store-dir" "$WORK/store_err.out"
if "$MICTREND" pipeline --corpus "$WORK/corpus.csv" \
    --store bogus --store-dir "$WORK/store" \
    > "$WORK/store_err2.out" 2>&1; then
  echo "expected failure for bogus --store backend" >&2
  exit 1
fi
grep -q "auto, mmap" "$WORK/store_err2.out"

# Hierarchical drill-down: a hand-written corpus with one stepped
# medicine ("step-ramp" jumps 2 -> 8 at month 12, "step-flat" stays 3)
# must put a detected change on every aggregate above the ramp, and the
# subgroup search must walk all -> step -> step-ramp and name the ramp
# as the driver of the whole shift.
{
  echo "month,hospital,patient,diseases,medicines"
  m=0
  while [ "$m" -lt 24 ]; do
    if [ "$m" -lt 12 ]; then ramp=2; else ramp=8; fi
    p=0
    while [ "$p" -lt 4 ]; do
      echo "$m,hospital-0,patient-$p,flu:2,step-ramp:$ramp;step-flat:3"
      p=$((p + 1))
    done
    m=$((m + 1))
  done
} > "$WORK/step.csv"
"$MICTREND" drilldown --corpus "$WORK/step.csv" --min-total 5 \
  --axis medicine --out "$WORK/step_drill.csv" \
  --json "$WORK/step_drill.json" \
  --explain all --explain-out "$WORK/step_explain.json" \
  > "$WORK/step_drill.out"
head -1 "$WORK/step_drill.csv" | grep -q "axis,node,parent,depth,leaf"
grep -q "driver: step-ramp (100.0% of the shift)" "$WORK/step_drill.out"
grep -q '"driver":"step-ramp"' "$WORK/step_explain.json"

# The drill-down tree is bit-identical at 1 and 4 threads.
"$MICTREND" drilldown --corpus "$WORK/step.csv" --min-total 5 \
  --axis medicine --threads 4 --json "$WORK/step_drill_mt.json" > /dev/null
cmp "$WORK/step_drill.json" "$WORK/step_drill_mt.json"

# Axis and flag mistakes are rejected naming the offender.
if "$MICTREND" drilldown --corpus "$WORK/step.csv" --axis city \
    > "$WORK/drill_err.out" 2>&1; then
  echo "expected failure for unknown drill axis" >&2
  exit 1
fi
grep -q "city" "$WORK/drill_err.out"
if "$MICTREND" drilldown --corpus "$WORK/step.csv" --axis medicine \
    --explain-out "$WORK/x.json" > "$WORK/drill_err2.out" 2>&1; then
  echo "expected failure for --explain-out without --explain" >&2
  exit 1
fi
grep -q -- "--explain" "$WORK/drill_err2.out"

# mictrend serve: a compact daemon round trip against the store seeded
# above — health, then the served report must byte-match the offline
# `pipeline --out` artifact (both run cold with the same defaults), then
# a clean shutdown through the protocol.
rm -f "$WORK/serve_port.txt"
"$MICTREND" serve --store-dir "$WORK/store" --min-total 5 \
  --port 0 --port-file "$WORK/serve_port.txt" --workers 2 \
  > "$WORK/serve.log" 2>&1 &
SERVE_PID=$!
i=0
while [ ! -s "$WORK/serve_port.txt" ]; do
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "serve daemon died during startup:" >&2
    cat "$WORK/serve.log" >&2
    exit 1
  fi
  i=$((i + 1))
  if [ "$i" -gt 240 ]; then
    echo "serve daemon never wrote the port file" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
  fi
  sleep 0.5
done
SERVE_PORT=$(cat "$WORK/serve_port.txt")
"$MICTREND" query --port "$SERVE_PORT" --op health | grep -q '"ok":true'
"$MICTREND" query --port "$SERVE_PORT" --op report_csv \
  --out "$WORK/served.csv"
cmp "$WORK/report.csv" "$WORK/served.csv"
# An error envelope exits non-zero and names the code.
if "$MICTREND" query --port "$SERVE_PORT" --op series --kind disease \
    --disease no-such-disease > "$WORK/query_err.out" 2>&1; then
  echo "expected failure for an unknown series name" >&2
  exit 1
fi
grep -q '"not_found"' "$WORK/query_err.out"
# Windowed telemetry: the stats op reports the requests above, and the
# HTTP /varz body on the same port carries the same window/channel
# structure (values move between the two reads, so only keys compare).
"$MICTREND" query --port "$SERVE_PORT" --op stats --out "$WORK/stats.json"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$WORK/stats.json" "$SERVE_PORT" << 'EOF'
import json, sys, urllib.request
stats = json.load(open(sys.argv[1]))
assert stats["ok"] is True, stats
data = stats["data"]
assert data["slot_width_seconds"] > 0 and data["slots"] > 0, data
minute = data["windows"]["60s"]
assert minute["serve.health"]["count"] >= 1, minute["serve.health"]
assert minute["serve.report_csv"]["count"] >= 1, minute
assert minute["serve.series"]["errors"] >= 1, minute["serve.series"]
varz = json.loads(urllib.request.urlopen(
    f"http://127.0.0.1:{sys.argv[2]}/varz", timeout=30).read())
assert sorted(varz["windows"]) == sorted(data["windows"]), varz
for window in varz["windows"]:
    assert sorted(varz["windows"][window]) == \
        sorted(data["windows"][window]), window
print("stats/varz window payloads structurally identical")
EOF
fi
# The served drill-down document is byte-identical to the offline
# `drilldown --json` twin over the same months (same tree, same
# renderer), and the registry rejects cross-op flags client-side.
"$MICTREND" drilldown --corpus "$WORK/corpus.csv" --min-total 5 \
  --axis medicine --json "$WORK/drill_offline.json" > /dev/null
"$MICTREND" query --port "$SERVE_PORT" --op drilldown --axis medicine \
  --out "$WORK/drill_served.json"
cmp "$WORK/drill_offline.json" "$WORK/drill_served.json"
if "$MICTREND" query --port "$SERVE_PORT" --op health --axis medicine \
    > "$WORK/query_err2.out" 2>&1; then
  echo "expected failure for a cross-op query flag" >&2
  exit 1
fi
grep -q -- "--axis does not apply to op 'health'" "$WORK/query_err2.out"
if "$MICTREND" query --port "$SERVE_PORT" --op explain --axis medicine \
    --node no-such-node > "$WORK/query_err3.out" 2>&1; then
  echo "expected failure for an unknown explain node" >&2
  exit 1
fi
grep -q '"not_found"' "$WORK/query_err3.out"
"$MICTREND" query --port "$SERVE_PORT" --op shutdown > /dev/null
wait "$SERVE_PID"
grep -q "server stopped" "$WORK/serve.log"

# Every JSON example in the wire-protocol reference must parse: the doc
# is normative, so a stale example is a test failure.
PROTOCOL_DOC="$(dirname "$0")/../docs/serve_protocol.md"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$PROTOCOL_DOC" << 'EOF'
import json, sys
blocks, current = [], None
for line in open(sys.argv[1]):
    stripped = line.strip()
    if current is None and stripped == "```json":
        current = []
    elif current is not None and stripped == "```":
        blocks.append("".join(current))
        current = None
    elif current is not None:
        current.append(line)
assert current is None, "unterminated ```json fence"
assert len(blocks) >= 10, f"expected >= 10 JSON examples, found {len(blocks)}"
for i, block in enumerate(blocks):
    try:
        json.loads(block)
    except Exception as error:
        raise AssertionError(f"example {i + 1} is not valid JSON: {error}\n{block}")
print(f"serve_protocol.md: {len(blocks)} JSON examples parse")
EOF
fi

# Undeclared flags are rejected, and the usage screen the parser
# validates against advertises the pipeline detector flags.
if "$MICTREND" pipeline --corpus "$WORK/corpus.csv" --bogus 2>/dev/null; then
  echo "expected failure for unknown flag" >&2
  exit 1
fi
"$MICTREND" 2>&1 | grep -q -- "--algorithm" || {
  echo "usage screen is missing the pipeline detector flags" >&2
  exit 1
}

# Custom world config.
cat > "$WORK/world.cfg" << 'EOF'
config,months=6,seed=5
hospitals,count=4,small=0.5,medium=0.4,large=0.1
patients,count=80,visit=0.5,boost=0.3,acute=1.5
city,only,weight=1
disease,flu,weight=1.0,intensity=1.0
medicine,antiviral,indication=flu:1.0
EOF
"$MICTREND" generate --world "$WORK/world.cfg" --out "$WORK/c2.csv"
"$MICTREND" stats --corpus "$WORK/c2.csv" | grep -q "months: 6"

# Unknown subcommand exits non-zero.
if "$MICTREND" bogus 2>/dev/null; then
  echo "expected failure for unknown subcommand" >&2
  exit 1
fi

echo "cli smoke OK"
