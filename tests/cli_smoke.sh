#!/bin/sh
# End-to-end smoke test of the mictrend CLI: generate -> stats ->
# reproduce -> detect -> pipeline, plus a custom --world config.
# Usage: cli_smoke.sh <path-to-mictrend-binary> <work-dir>
set -e

MICTREND="$1"
WORK="$2"
mkdir -p "$WORK"

"$MICTREND" generate --out "$WORK/corpus.csv" \
  --hospitals-out "$WORK/hospitals.csv" \
  --months 12 --patients 250 --background 3 --seed 7

test -s "$WORK/corpus.csv"
test -s "$WORK/hospitals.csv"

"$MICTREND" stats --corpus "$WORK/corpus.csv" | grep -q "months: 12"

"$MICTREND" reproduce --corpus "$WORK/corpus.csv" \
  --out "$WORK/series.csv" --min-total 5
test -s "$WORK/series.csv"
head -1 "$WORK/series.csv" | grep -q "kind,disease,medicine,values"

"$MICTREND" detect --series "$WORK/series.csv" --algorithm approx \
  --seasonal false --margin 4 --min-tail 3 > "$WORK/detect.csv"
head -1 "$WORK/detect.csv" | grep -q "kind,disease,medicine,change"

"$MICTREND" pipeline --corpus "$WORK/corpus.csv" --min-total 5 \
  --out "$WORK/report.csv" | grep -q "reproduced"
test -s "$WORK/report.csv"

# The parallel runtime must reproduce the serial pipeline bit for bit.
"$MICTREND" pipeline --corpus "$WORK/corpus.csv" --min-total 5 \
  --threads 4 --runtime-stats \
  --out "$WORK/report_mt.csv" | grep -q "runtime-stats threads=4"
cmp "$WORK/report.csv" "$WORK/report_mt.csv"

# Custom world config.
cat > "$WORK/world.cfg" << 'EOF'
config,months=6,seed=5
hospitals,count=4,small=0.5,medium=0.4,large=0.1
patients,count=80,visit=0.5,boost=0.3,acute=1.5
city,only,weight=1
disease,flu,weight=1.0,intensity=1.0
medicine,antiviral,indication=flu:1.0
EOF
"$MICTREND" generate --world "$WORK/world.cfg" --out "$WORK/c2.csv"
"$MICTREND" stats --corpus "$WORK/c2.csv" | grep -q "months: 6"

# Unknown subcommand exits non-zero.
if "$MICTREND" bogus 2>/dev/null; then
  echo "expected failure for unknown subcommand" >&2
  exit 1
fi

echo "cli smoke OK"
