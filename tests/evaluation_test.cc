#include "medmodel/evaluation.h"

#include <gtest/gtest.h>

#include "medmodel/baselines.h"
#include "medmodel/medication_model.h"
#include "synth/generator.h"
#include "synth/scenario.h"

namespace mic::medmodel {
namespace {

MonthlyDataset GeneratedMonth(std::uint64_t seed = 5) {
  auto world = synth::World::Create(synth::MakeTinyWorldConfig(3, seed));
  EXPECT_TRUE(world.ok());
  synth::ClaimGenerator generator(&*world);
  auto data = generator.Generate();
  EXPECT_TRUE(data.ok());
  return data->corpus.month(1);
}

TEST(SplitTest, PartitionPreservesMentions) {
  const MonthlyDataset month = GeneratedMonth();
  Rng rng(3);
  const HoldoutSplit split = SplitMedicines(month, 0.1, rng);
  ASSERT_EQ(split.train.size(), month.size());
  ASSERT_EQ(split.test_medicines.size(), month.size());
  for (std::size_t r = 0; r < month.size(); ++r) {
    const std::size_t original =
        month.records()[r].TotalMedicineMentions();
    const std::size_t train =
        split.train.records()[r].TotalMedicineMentions();
    const std::size_t test = split.test_medicines[r].size();
    EXPECT_EQ(train + test, original) << "record " << r;
    // Disease bags are untouched.
    EXPECT_EQ(split.train.records()[r].diseases,
              month.records()[r].diseases);
  }
}

TEST(SplitTest, FractionIsRoughlyRespected) {
  const MonthlyDataset month = GeneratedMonth(11);
  Rng rng(17);
  const HoldoutSplit split = SplitMedicines(month, 0.2, rng);
  std::size_t total = 0;
  for (const MicRecord& record : month.records()) {
    total += record.TotalMedicineMentions();
  }
  const double fraction =
      static_cast<double>(split.NumTestMentions()) /
      static_cast<double>(total);
  EXPECT_NEAR(fraction, 0.2, 0.05);
}

TEST(SplitTest, NoRecordLosesAllTrainingMedicines) {
  const MonthlyDataset month = GeneratedMonth(13);
  Rng rng(23);
  // Extreme fraction: without the keep-one rule every record would end
  // up empty.
  const HoldoutSplit split = SplitMedicines(month, 0.99, rng);
  for (std::size_t r = 0; r < split.train.size(); ++r) {
    if (month.records()[r].TotalMedicineMentions() > 0) {
      EXPECT_GT(split.train.records()[r].TotalMedicineMentions(), 0u);
    }
  }
}

TEST(PerplexityTest, ProposedBeatsUnigramOnStructuredData) {
  const MonthlyDataset month = GeneratedMonth(29);
  Rng rng(31);
  const HoldoutSplit split = SplitMedicines(month, 0.1, rng);

  auto proposed = MedicationModel::Fit(split.train);
  auto unigram = UnigramModel::Fit(split.train);
  ASSERT_TRUE(proposed.ok());
  ASSERT_TRUE(unigram.ok());

  auto ppl_proposed = Perplexity(**proposed, split);
  auto ppl_unigram = Perplexity(**unigram, split);
  ASSERT_TRUE(ppl_proposed.ok());
  ASSERT_TRUE(ppl_unigram.ok());
  // Tiny world links diseases to disjoint medicines, so conditioning on
  // the diseases must help substantially.
  EXPECT_LT(*ppl_proposed, *ppl_unigram);
}

TEST(PerplexityTest, PerfectModelHasLowPerplexity) {
  // One disease, one medicine: the trained model predicts the held-out
  // medicine with probability ~1.
  MonthlyDataset month(0);
  for (int i = 0; i < 50; ++i) {
    MicRecord record;
    record.diseases = {{DiseaseId(0), 1}};
    record.medicines = {{MedicineId(0), 2}};
    month.AddRecord(record);
  }
  Rng rng(37);
  const HoldoutSplit split = SplitMedicines(month, 0.3, rng);
  auto model = MedicationModel::Fit(split.train);
  ASSERT_TRUE(model.ok());
  auto perplexity = Perplexity(**model, split);
  ASSERT_TRUE(perplexity.ok());
  EXPECT_NEAR(*perplexity, 1.0, 0.01);
}

TEST(PerplexityTest, FailsWithoutTestMentions) {
  MonthlyDataset month(0);
  MicRecord record;
  record.diseases = {{DiseaseId(0), 1}};
  record.medicines = {{MedicineId(0), 1}};
  month.AddRecord(record);
  Rng rng(41);
  const HoldoutSplit split = SplitMedicines(month, 0.0, rng);
  auto model = MedicationModel::Fit(split.train);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(Perplexity(**model, split).ok());
}

TEST(PerplexityTest, ClampsUnseenMedicines) {
  MonthlyDataset month(0);
  MicRecord record;
  record.diseases = {{DiseaseId(0), 1}};
  record.medicines = {{MedicineId(0), 1}};
  month.AddRecord(record);
  auto model = MedicationModel::Fit(month);
  ASSERT_TRUE(model.ok());
  HoldoutSplit split;
  split.train = month;
  split.test_medicines = {{MedicineId(99)}};  // Never seen in training.
  auto perplexity = Perplexity(**model, split);
  ASSERT_TRUE(perplexity.ok());
  EXPECT_TRUE(std::isfinite(*perplexity));
  EXPECT_GT(*perplexity, 1e6);  // Heavy but finite penalty.
}

}  // namespace
}  // namespace mic::medmodel
