#include "mic/record.h"

#include <gtest/gtest.h>

#include "mic/catalog.h"

namespace mic {
namespace {

TEST(MicRecordTest, NormalizeSortsAndMerges) {
  MicRecord record;
  record.diseases = {{DiseaseId(3), 1}, {DiseaseId(1), 2}, {DiseaseId(3), 4}};
  record.medicines = {{MedicineId(2), 1}, {MedicineId(2), 1},
                      {MedicineId(0), 1}};
  record.Normalize();

  ASSERT_EQ(record.diseases.size(), 2u);
  EXPECT_EQ(record.diseases[0].id, DiseaseId(1));
  EXPECT_EQ(record.diseases[0].count, 2u);
  EXPECT_EQ(record.diseases[1].id, DiseaseId(3));
  EXPECT_EQ(record.diseases[1].count, 5u);

  ASSERT_EQ(record.medicines.size(), 2u);
  EXPECT_EQ(record.medicines[0].id, MedicineId(0));
  EXPECT_EQ(record.medicines[1].id, MedicineId(2));
  EXPECT_EQ(record.medicines[1].count, 2u);
}

TEST(MicRecordTest, TotalsCountMultiplicity) {
  MicRecord record;
  record.diseases = {{DiseaseId(0), 2}, {DiseaseId(1), 3}};
  record.medicines = {{MedicineId(0), 4}};
  EXPECT_EQ(record.TotalDiseaseMentions(), 5u);
  EXPECT_EQ(record.TotalMedicineMentions(), 4u);
}

TEST(MicRecordTest, EmptyRecordTotalsAreZero) {
  MicRecord record;
  EXPECT_EQ(record.TotalDiseaseMentions(), 0u);
  EXPECT_EQ(record.TotalMedicineMentions(), 0u);
  record.Normalize();  // Must not crash.
  EXPECT_TRUE(record.diseases.empty());
}

TEST(TypedIdTest, DistinctIdSpaces) {
  const DiseaseId d(3);
  const DiseaseId d2(3);
  EXPECT_EQ(d, d2);
  EXPECT_TRUE(DiseaseId(1) < DiseaseId(2));
  EXPECT_FALSE(DiseaseId().valid());
  EXPECT_TRUE(DiseaseId(0).valid());
}

TEST(VocabularyTest, InternIsIdempotent) {
  Vocabulary<DiseaseId> vocab;
  const DiseaseId a = vocab.Intern("flu");
  const DiseaseId b = vocab.Intern("cold");
  EXPECT_NE(a, b);
  EXPECT_EQ(vocab.Intern("flu"), a);
  EXPECT_EQ(vocab.size(), 2u);
  EXPECT_EQ(vocab.Name(a), "flu");
  EXPECT_EQ(*vocab.Lookup("cold"), b);
  EXPECT_FALSE(vocab.Lookup("unknown").ok());
}

TEST(HospitalClassTest, PaperBedBoundaries) {
  EXPECT_EQ(ClassifyHospital(0), HospitalClass::kSmall);
  EXPECT_EQ(ClassifyHospital(19), HospitalClass::kSmall);
  EXPECT_EQ(ClassifyHospital(20), HospitalClass::kMedium);
  EXPECT_EQ(ClassifyHospital(399), HospitalClass::kMedium);
  EXPECT_EQ(ClassifyHospital(400), HospitalClass::kLarge);
  EXPECT_EQ(HospitalClassName(HospitalClass::kSmall), "small");
  EXPECT_EQ(HospitalClassName(HospitalClass::kLarge), "large");
}

TEST(CatalogTest, HospitalInfoRoundTrip) {
  Catalog catalog;
  const HospitalId hospital = catalog.hospitals().Intern("h1");
  EXPECT_FALSE(catalog.GetHospitalInfo(hospital).ok());
  const CityId city = catalog.cities().Intern("tsu");
  catalog.SetHospitalInfo(hospital, {city, 120});
  auto info = catalog.GetHospitalInfo(hospital);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->city, city);
  EXPECT_EQ(info->beds, 120u);
}

}  // namespace
}  // namespace mic
