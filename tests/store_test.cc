#include "store/claim_store.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cache/cache_store.h"
#include "cache/fingerprint.h"
#include "common/exec_context.h"
#include "medmodel/timeseries.h"
#include "obs/metrics.h"
#include "runtime/thread_pool.h"
#include "store/backend.h"
#include "synth/generator.h"
#include "synth/scenario.h"
#include "trend/pipeline.h"

namespace mic {
namespace {

namespace fs = std::filesystem;

fs::path FreshDir(const char* name) {
  fs::path dir = fs::path(::testing::TempDir()) / name;
  std::error_code ec;
  fs::remove_all(dir, ec);
  return dir;
}

MicCorpus TinyCorpus(int months, std::uint64_t seed) {
  auto world = synth::World::Create(synth::MakeTinyWorldConfig(months, seed));
  EXPECT_TRUE(world.ok());
  synth::ClaimGenerator generator(&*world);
  auto data = generator.Generate();
  EXPECT_TRUE(data.ok());
  return std::move(data->corpus);
}

// The first `months` months of `corpus`, sharing its catalog — the
// shape of last month's CSV batch next to this month's full one.
MicCorpus Prefix(const MicCorpus& corpus, std::size_t months) {
  MicCorpus prefix(corpus.shared_catalog());
  for (std::size_t t = 0; t < months; ++t) {
    EXPECT_TRUE(prefix.AddMonth(corpus.month(t)).ok());
  }
  return prefix;
}

void ExpectCorporaBitIdentical(const MicCorpus& a, const MicCorpus& b) {
  ASSERT_EQ(a.num_months(), b.num_months());
  for (std::size_t t = 0; t < a.num_months(); ++t) {
    EXPECT_EQ(a.month(t).month(), b.month(t).month()) << t;
    EXPECT_EQ(a.month(t).records(), b.month(t).records()) << t;
  }
  const Catalog& ca = a.catalog();
  const Catalog& cb = b.catalog();
  ASSERT_EQ(ca.diseases().size(), cb.diseases().size());
  for (std::uint32_t i = 0; i < ca.diseases().size(); ++i) {
    EXPECT_EQ(ca.diseases().Name(DiseaseId(i)),
              cb.diseases().Name(DiseaseId(i)));
  }
  ASSERT_EQ(ca.medicines().size(), cb.medicines().size());
  for (std::uint32_t i = 0; i < ca.medicines().size(); ++i) {
    EXPECT_EQ(ca.medicines().Name(MedicineId(i)),
              cb.medicines().Name(MedicineId(i)));
  }
  ASSERT_EQ(ca.hospitals().size(), cb.hospitals().size());
  for (std::uint32_t i = 0; i < ca.hospitals().size(); ++i) {
    EXPECT_EQ(ca.hospitals().Name(HospitalId(i)),
              cb.hospitals().Name(HospitalId(i)));
    auto info_a = ca.GetHospitalInfo(HospitalId(i));
    auto info_b = cb.GetHospitalInfo(HospitalId(i));
    ASSERT_EQ(info_a.ok(), info_b.ok()) << i;
    if (info_a.ok()) {
      EXPECT_EQ(info_a->city, info_b->city) << i;
      EXPECT_EQ(info_a->beds, info_b->beds) << i;
    }
  }
  ASSERT_EQ(ca.patients().size(), cb.patients().size());
  for (std::uint32_t i = 0; i < ca.patients().size(); ++i) {
    EXPECT_EQ(ca.patients().Name(PatientId(i)),
              cb.patients().Name(PatientId(i)));
  }
}

TEST(BackendTest, ParsesAndNamesKinds) {
  ASSERT_TRUE(store::ParseBackendKind("auto").ok());
  EXPECT_EQ(*store::ParseBackendKind("auto"), store::BackendKind::kAuto);
  EXPECT_EQ(*store::ParseBackendKind("mmap"), store::BackendKind::kMmap);
  EXPECT_EQ(*store::ParseBackendKind("file"), store::BackendKind::kFile);
  EXPECT_FALSE(store::ParseBackendKind("fast").ok());
  EXPECT_EQ(store::BackendKindName(store::BackendKind::kFile), "file");
}

TEST(BackendTest, AutoResolvesToARealBackend) {
  auto backend = store::MakeBackend(store::BackendKind::kAuto);
  ASSERT_TRUE(backend.ok());
  if (store::MmapAvailable()) {
    EXPECT_EQ((*backend)->name(), "mmap");
  } else {
    EXPECT_EQ((*backend)->name(), "file");
  }
}

TEST(BackendTest, EnvelopeDetectsEveryCorruptionMode) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5, 6, 7};
  std::vector<std::uint8_t> sealed = store::SealSegment(payload);

  const auto view = [](const std::vector<std::uint8_t>& bytes) {
    store::SegmentView v;
    v.data = bytes.data();
    v.size = bytes.size();
    return v;
  };

  auto ok = store::UnsealSegment(view(sealed), "seg");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(std::vector<std::uint8_t>(ok->data, ok->data + ok->size),
            payload);

  std::vector<std::uint8_t> truncated(sealed.begin(), sealed.end() - 1);
  EXPECT_FALSE(store::UnsealSegment(view(truncated), "seg").ok());

  std::vector<std::uint8_t> flipped = sealed;
  flipped.back() ^= 0x01;  // One payload bit.
  EXPECT_FALSE(store::UnsealSegment(view(flipped), "seg").ok());

  std::vector<std::uint8_t> bad_magic = sealed;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(store::UnsealSegment(view(bad_magic), "seg").ok());

  std::vector<std::uint8_t> future = sealed;
  future[4] = 0x7f;  // Format version nobody ships yet.
  EXPECT_FALSE(store::UnsealSegment(view(future), "seg").ok());

  std::vector<std::uint8_t> tiny = {'M', 'I'};
  EXPECT_FALSE(store::UnsealSegment(view(tiny), "seg").ok());
}

TEST(ClaimStoreTest, RoundTripsACorpusBitIdentically) {
  const MicCorpus corpus = TinyCorpus(6, 99);
  const fs::path dir = FreshDir("store_roundtrip");

  obs::MetricsRegistry metrics;
  auto opened = store::ClaimStore::Open(dir.string(), {}, &metrics);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->num_months(), 0u);
  EXPECT_FALSE(opened->OpenWorld().ok());  // Empty store is an error.

  auto appended = store::ImportCorpus(corpus, *opened);
  ASSERT_TRUE(appended.ok());
  EXPECT_EQ(*appended, corpus.num_months());
  EXPECT_EQ(metrics.counter_value("store.records_written"),
            corpus.TotalRecords());

  auto loaded = opened->OpenWorld();
  ASSERT_TRUE(loaded.ok());
  ExpectCorporaBitIdentical(corpus, *loaded);
  EXPECT_EQ(metrics.counter_value("store.records_read"),
            corpus.TotalRecords());

  // Every loaded month carries its persisted content fingerprint, and
  // it is the digest the cache layer would have computed itself.
  for (std::size_t t = 0; t < loaded->num_months(); ++t) {
    ASSERT_TRUE(loaded->month(t).has_content_fingerprint()) << t;
    EXPECT_EQ(loaded->month(t).content_fingerprint(),
              cache::FingerprintMonth(corpus.month(t)))
        << t;
  }
  // A CSV-built month carries no stamp.
  EXPECT_FALSE(corpus.month(0).has_content_fingerprint());
}

TEST(ClaimStoreTest, MmapAndFileBackendsLoadTheSameWorld) {
  if (!store::MmapAvailable()) GTEST_SKIP() << "no mmap on this platform";
  const MicCorpus corpus = TinyCorpus(5, 11);
  const fs::path dir = FreshDir("store_backends");

  auto writer = store::ClaimStore::Open(
      dir.string(), {.backend = store::BackendKind::kMmap});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(store::ImportCorpus(corpus, *writer).ok());

  auto via_mmap = store::ClaimStore::Open(
      dir.string(), {.backend = store::BackendKind::kMmap});
  auto via_file = store::ClaimStore::Open(
      dir.string(), {.backend = store::BackendKind::kFile});
  ASSERT_TRUE(via_mmap.ok());
  ASSERT_TRUE(via_file.ok());
  EXPECT_EQ(via_mmap->backend_name(), "mmap");
  EXPECT_EQ(via_file->backend_name(), "file");
  EXPECT_EQ(via_mmap->Fingerprint(), via_file->Fingerprint());

  auto world_mmap = via_mmap->OpenWorld();
  auto world_file = via_file->OpenWorld();
  ASSERT_TRUE(world_mmap.ok());
  ASSERT_TRUE(world_file.ok());
  ExpectCorporaBitIdentical(*world_mmap, *world_file);
}

TEST(ClaimStoreTest, AppendExtendsTheWorldAndRekeysTheFingerprint) {
  const MicCorpus full = TinyCorpus(7, 42);
  const MicCorpus prefix = Prefix(full, 6);
  const fs::path dir = FreshDir("store_append");

  auto opened = store::ClaimStore::Open(dir.string());
  ASSERT_TRUE(opened.ok());
  ASSERT_TRUE(store::ImportCorpus(prefix, *opened).ok());
  const std::uint64_t before = opened->Fingerprint();

  // Re-importing the same world is a no-op.
  auto again = store::ImportCorpus(prefix, *opened);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);
  EXPECT_EQ(opened->Fingerprint(), before);

  // The monthly batch: one new month appended, earlier segments kept.
  auto appended = store::ImportCorpus(full, *opened);
  ASSERT_TRUE(appended.ok());
  EXPECT_EQ(*appended, 1u);
  EXPECT_EQ(opened->num_months(), 7u);
  EXPECT_NE(opened->Fingerprint(), before);

  // A reopened store sees the appended world, bit-identically.
  auto reopened = store::ClaimStore::Open(dir.string());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->Fingerprint(), opened->Fingerprint());
  auto world = reopened->OpenWorld();
  ASSERT_TRUE(world.ok());
  ExpectCorporaBitIdentical(full, *world);
}

TEST(ClaimStoreTest, RejectsConflictingOrOutOfOrderAppends) {
  const MicCorpus corpus = TinyCorpus(4, 3);
  const fs::path dir = FreshDir("store_conflicts");

  auto opened = store::ClaimStore::Open(dir.string());
  ASSERT_TRUE(opened.ok());
  ASSERT_TRUE(store::ImportCorpus(corpus, *opened).ok());

  // A corpus whose overlapping months differ must not silently rewrite
  // history.
  const MicCorpus other = TinyCorpus(4, 4);
  auto conflict = store::ImportCorpus(other, *opened);
  ASSERT_FALSE(conflict.ok());
  EXPECT_NE(conflict.status().message().find("differs"), std::string::npos);

  // AppendMonth enforces the consecutive-months contract directly.
  MonthlyDataset wrong_index(static_cast<MonthIndex>(99));
  EXPECT_FALSE(
      opened->AppendMonth(wrong_index, corpus.catalog()).ok());

  // Records must resolve in the catalog they are stored against.
  MonthlyDataset next(static_cast<MonthIndex>(corpus.num_months()));
  MicRecord alien;
  alien.hospital = HospitalId(0);
  alien.patient = PatientId(0);
  alien.diseases.push_back({DiseaseId(1u << 20), 1});
  next.AddRecord(alien);
  EXPECT_FALSE(opened->AppendMonth(next, corpus.catalog()).ok());
}

TEST(ClaimStoreTest, CorruptSegmentFailsLoudlyAndCounts) {
  const MicCorpus corpus = TinyCorpus(4, 17);
  const fs::path dir = FreshDir("store_corrupt");

  {
    auto seeder = store::ClaimStore::Open(dir.string());
    ASSERT_TRUE(seeder.ok());
    ASSERT_TRUE(store::ImportCorpus(corpus, *seeder).ok());
  }
  {
    std::ofstream stomp(dir / "m0002.seg",
                        std::ios::binary | std::ios::trunc);
    stomp << "garbage";
  }

  obs::MetricsRegistry metrics;
  auto opened = store::ClaimStore::Open(dir.string(), {}, &metrics);
  ASSERT_TRUE(opened.ok());  // The manifest itself is intact.
  auto world = opened->OpenWorld();
  ASSERT_FALSE(world.ok());  // Source of truth: no silent degradation.
  EXPECT_EQ(metrics.counter_value("store.read_errors"), 1u);

  // A corrupt manifest refuses to open outright — "empty store" would
  // let a later append bury the old world.
  {
    std::ofstream stomp(dir / "MANIFEST",
                        std::ios::binary | std::ios::trunc);
    stomp << "garbage";
  }
  EXPECT_FALSE(store::ClaimStore::Open(dir.string()).ok());
}

TEST(ClaimStoreTest, StaleSegmentAfterHistoryEditIsDetected) {
  const MicCorpus corpus = TinyCorpus(3, 23);
  const fs::path dir = FreshDir("store_stale");
  auto seeder = store::ClaimStore::Open(dir.string());
  ASSERT_TRUE(seeder.ok());
  ASSERT_TRUE(store::ImportCorpus(corpus, *seeder).ok());

  // Swap two month segments: each file is internally consistent
  // (envelope checks pass) but disagrees with the manifest's per-month
  // fingerprints — exactly the torn-edit shape the embedded digest
  // exists to catch.
  fs::rename(dir / "m0001.seg", dir / "tmp.seg");
  fs::rename(dir / "m0002.seg", dir / "m0001.seg");
  fs::rename(dir / "tmp.seg", dir / "m0002.seg");

  auto opened = store::ClaimStore::Open(dir.string());
  ASSERT_TRUE(opened.ok());
  EXPECT_FALSE(opened->OpenWorld().ok());
}

trend::PipelineConfig TinyPipelineConfig() {
  trend::PipelineConfig config;
  config.reproducer.filter_options.min_disease_count = 1;
  config.reproducer.filter_options.min_medicine_count = 1;
  config.reproducer.min_series_total = 10.0;
  config.analyzer.detector.seasonal = false;  // 24-month window
  config.analyzer.detector.fit.optimizer.max_evaluations = 150;
  return config;
}

void ExpectAnalysesBitIdentical(
    const std::vector<trend::SeriesAnalysis>& a,
    const std::vector<trend::SeriesAnalysis>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << i;
    EXPECT_EQ(a[i].has_change, b[i].has_change) << i;
    EXPECT_EQ(a[i].change_point, b[i].change_point) << i;
    EXPECT_EQ(a[i].aic, b[i].aic) << i;        // bitwise
    EXPECT_EQ(a[i].lambda, b[i].lambda) << i;  // bitwise
  }
}

// The acceptance bar for the whole subsystem: a store-ingested pipeline
// run reports exactly what the CSV-corpus run reports, serial and
// parallel.
TEST(StorePipelineTest, StoreRunMatchesCorpusRunAtOneAndFourThreads) {
  const MicCorpus corpus = TinyCorpus(24, 5);
  const fs::path dir = FreshDir("store_pipeline");
  {
    auto seeder = store::ClaimStore::Open(dir.string());
    ASSERT_TRUE(seeder.ok());
    ASSERT_TRUE(store::ImportCorpus(corpus, *seeder).ok());
  }

  auto from_corpus = trend::RunPipeline(corpus, TinyPipelineConfig());
  ASSERT_TRUE(from_corpus.ok());

  for (int threads : {1, 4}) {
    runtime::ThreadPool pool(threads);
    obs::MetricsRegistry metrics;
    ExecContext context;
    context.pool = &pool;
    context.metrics = &metrics;
    trend::PipelineConfig config = TinyPipelineConfig();
    config.store.directory = dir.string();
    auto from_store = trend::RunPipelineFromStore(config, context);
    ASSERT_TRUE(from_store.ok()) << "threads " << threads;
    ExpectAnalysesBitIdentical(from_corpus->report.diseases,
                               from_store->report.diseases);
    ExpectAnalysesBitIdentical(from_corpus->report.medicines,
                               from_store->report.medicines);
    ExpectAnalysesBitIdentical(from_corpus->report.prescriptions,
                               from_store->report.prescriptions);
    EXPECT_EQ(metrics.counter_value("store.read_errors"), 0u);
    EXPECT_GT(metrics.counter_value("store.segments_read"), 0u);
  }
}

// Store-stamped fingerprints feed the cache layer without re-hashing:
// a warm rerun over a store-loaded corpus hits every snapshot and
// counts one fingerprint reuse per non-empty month.
TEST(StorePipelineTest, StampedFingerprintsDriveCacheWarmStarts) {
  const MicCorpus corpus = TinyCorpus(6, 99);
  const fs::path store_dir = FreshDir("store_warm_store");
  const fs::path cache_dir = FreshDir("store_warm_cache");
  {
    auto seeder = store::ClaimStore::Open(store_dir.string());
    ASSERT_TRUE(seeder.ok());
    ASSERT_TRUE(store::ImportCorpus(corpus, *seeder).ok());
  }
  auto opened = store::ClaimStore::Open(store_dir.string());
  ASSERT_TRUE(opened.ok());
  auto loaded = opened->OpenWorld();
  ASSERT_TRUE(loaded.ok());

  medmodel::ReproducerOptions options;
  options.filter_options.min_disease_count = 1;
  options.filter_options.min_medicine_count = 1;

  obs::MetricsRegistry cold_metrics;
  cache::CacheStore seed_cache(cache_dir.string(),
                               cache::CacheMode::kWrite, &cold_metrics);
  ASSERT_TRUE(seed_cache.Open().ok());
  ExecContext cold_context;
  cold_context.metrics = &cold_metrics;
  cold_context.cache = &seed_cache;
  auto cold = medmodel::ReproduceSeries(*loaded, options, cold_context);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold_metrics.counter_value("reproduce.fingerprint_reuses"),
            loaded->num_months());

  obs::MetricsRegistry warm_metrics;
  cache::CacheStore warm_cache(cache_dir.string(), cache::CacheMode::kRead,
                               &warm_metrics);
  ASSERT_TRUE(warm_cache.Open().ok());
  ExecContext warm_context;
  warm_context.metrics = &warm_metrics;
  warm_context.cache = &warm_cache;
  auto warm = medmodel::ReproduceSeries(*loaded, options, warm_context);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm_metrics.counter_value("reproduce.snapshot_hits"),
            loaded->num_months());
  EXPECT_EQ(warm_metrics.counter_value("reproduce.months_fitted"), 0u);

  ASSERT_EQ(cold->num_pairs(), warm->num_pairs());
  cold->ForEachPair([&](DiseaseId d, MedicineId m,
                        const std::vector<double>& series) {
    EXPECT_EQ(series, warm->Prescription(d, m));
  });
}

}  // namespace
}  // namespace mic
