#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace mic {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
  EXPECT_TRUE(status.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad input");
  EXPECT_EQ(status.ToString(), "Invalid argument: bad input");
}

TEST(StatusTest, CopySemantics) {
  Status original = Status::NotFound("missing");
  Status copy = original;
  EXPECT_EQ(copy, original);
  copy = Status::OK();
  EXPECT_TRUE(copy.ok());
  EXPECT_FALSE(original.ok());
}

TEST(StatusTest, AllFactoryCodesRoundTrip) {
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::NotImplemented("x").code(),
            StatusCode::kNotImplemented);
  EXPECT_EQ(Status::NumericError("x").code(), StatusCode::kNumericError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

Status FailIfNegative(int value) {
  if (value < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnIfError(int value) {
  MIC_RETURN_IF_ERROR(FailIfNegative(value));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> ParsePositive(int value) {
  if (value <= 0) return Status::OutOfRange("must be positive");
  return value;
}

Result<int> Doubled(int value) {
  MIC_ASSIGN_OR_RETURN(int parsed, ParsePositive(value));
  return parsed * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = ParsePositive(21);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 21);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result = ParsePositive(-3);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(result.value_or(99), 99);
}

TEST(ResultTest, AssignOrReturnChains) {
  EXPECT_EQ(*Doubled(4), 8);
  EXPECT_FALSE(Doubled(0).ok());
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> result = std::make_unique<int>(7);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 7);
}

}  // namespace
}  // namespace mic
