#include "apps/repositioning.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mic::apps {
namespace {

// Hand-constructed SeriesSet + TrendReport with three prescription
// verdicts (the end-to-end path from raw series to a report is covered
// by the trend analyzer tests):
//   (0,0) a new-indication signature (zero then rising, isolated break);
//   (1,1) a break explained by its medicine series breaking too;
//   (2,2) no break.
struct Fixture {
  medmodel::SeriesSet series{43};
  trend::TrendAnalyzer analyzer;
  trend::TrendReport report;

  explicit Fixture(double noise = 0.4) {
    Rng rng(7);
    for (int t = 0; t < 43; ++t) {
      const double rising =
          (t >= 20 ? 2.0 * (t - 19) : 0.0) +
          std::max(0.0, rng.NextGaussian(0.0, noise));
      series.SetPrescriptionSeries(DiseaseId(0), MedicineId(0), {});
      series.Add(DiseaseId(0), MedicineId(0), t, rising);
      series.Add(DiseaseId(1), MedicineId(1), t,
                 10.0 + (t >= 15 ? 1.5 * (t - 14) : 0.0));
      series.Add(DiseaseId(2), MedicineId(2), t, 8.0);
    }

    auto add_marginal = [this](int id, bool change, int cp) {
      trend::SeriesAnalysis disease;
      disease.kind = trend::SeriesKind::kDisease;
      disease.disease = DiseaseId(static_cast<std::uint32_t>(id));
      disease.has_change = false;
      report.disease_index.emplace(disease.disease,
                                   report.diseases.size());
      report.diseases.push_back(disease);
      trend::SeriesAnalysis medicine;
      medicine.kind = trend::SeriesKind::kMedicine;
      medicine.medicine = MedicineId(static_cast<std::uint32_t>(id));
      medicine.has_change = change;
      medicine.change_point = change ? cp : ssm::kNoChangePoint;
      report.medicine_index.emplace(medicine.medicine,
                                    report.medicines.size());
      report.medicines.push_back(medicine);
    };
    add_marginal(0, false, 0);
    add_marginal(1, true, 15);  // Medicine 1 breaks with its pair.
    add_marginal(2, false, 0);

    auto add_pair = [this](int id, bool change, int cp, double lambda,
                           double evidence) {
      trend::SeriesAnalysis pair;
      pair.kind = trend::SeriesKind::kPrescription;
      pair.disease = DiseaseId(static_cast<std::uint32_t>(id));
      pair.medicine = MedicineId(static_cast<std::uint32_t>(id));
      pair.has_change = change;
      pair.change_point = change ? cp : ssm::kNoChangePoint;
      pair.lambda = lambda;
      pair.aic_without_intervention = 100.0;
      pair.aic = 100.0 - evidence;
      report.prescriptions.push_back(pair);
    };
    add_pair(0, true, 20, 2.0, 12.0);
    add_pair(1, true, 15, 1.5, 10.0);
    add_pair(2, false, 0, 0.0, 0.0);
  }
};

TEST(RepositioningTest, FindsNewIndicationSignature) {
  Fixture fixture;
  auto candidates = ScreenRepositioningCandidates(
      fixture.series, fixture.report, fixture.analyzer);
  ASSERT_TRUE(candidates.ok());
  ASSERT_GE(candidates->size(), 1u);
  const RepositioningCandidate& top = candidates->front();
  EXPECT_EQ(top.disease, DiseaseId(0));
  EXPECT_EQ(top.medicine, MedicineId(0));
  EXPECT_NEAR(top.change_point, 20, 4);
  EXPECT_GT(top.lambda, 0.0);
  EXPECT_GT(top.evidence, 4.0);
  EXPECT_LE(top.prior_share, 0.25);
  // The medicine-derived pair (1,1) must NOT be a candidate: its
  // medicine series breaks at the same time.
  for (const RepositioningCandidate& candidate : *candidates) {
    EXPECT_FALSE(candidate.disease == DiseaseId(1) &&
                 candidate.medicine == MedicineId(1));
  }
}

TEST(RepositioningTest, PriorShareFilterBlocksEstablishedPairs) {
  Fixture fixture;
  RepositioningOptions options;
  options.max_prior_share = 0.0;  // Demand strictly zero prior use.
  auto candidates = ScreenRepositioningCandidates(
      fixture.series, fixture.report, fixture.analyzer, options);
  ASSERT_TRUE(candidates.ok());
  for (const RepositioningCandidate& candidate : *candidates) {
    EXPECT_DOUBLE_EQ(candidate.prior_share, 0.0);
  }
}

TEST(RepositioningTest, EvidenceThresholdFilters) {
  Fixture fixture;
  RepositioningOptions options;
  options.min_evidence = 1e9;
  auto candidates = ScreenRepositioningCandidates(
      fixture.series, fixture.report, fixture.analyzer, options);
  ASSERT_TRUE(candidates.ok());
  EXPECT_TRUE(candidates->empty());
}

TEST(RepositioningTest, RejectsBadOptions) {
  Fixture fixture;
  RepositioningOptions options;
  options.max_prior_share = 1.5;
  EXPECT_FALSE(ScreenRepositioningCandidates(fixture.series, fixture.report,
                                             fixture.analyzer, options)
                   .ok());
}

TEST(RepositioningTest, EmptyReportYieldsNoCandidates) {
  medmodel::SeriesSet series(43);
  trend::TrendReport report;
  trend::TrendAnalyzer analyzer;
  auto candidates =
      ScreenRepositioningCandidates(series, report, analyzer);
  ASSERT_TRUE(candidates.ok());
  EXPECT_TRUE(candidates->empty());
}

}  // namespace
}  // namespace mic::apps
