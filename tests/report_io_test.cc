#include "trend/report_io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "common/strings.h"

namespace mic::trend {
namespace {

TEST(ReportIoTest, WritesAllRowsWithCauses) {
  Catalog catalog;
  const DiseaseId flu = catalog.diseases().Intern("flu");
  const MedicineId antiviral = catalog.medicines().Intern("antiviral");

  TrendReport report;
  SeriesAnalysis disease;
  disease.kind = SeriesKind::kDisease;
  disease.disease = flu;
  disease.has_change = false;
  disease.aic = 50.0;
  disease.aic_without_intervention = 50.0;
  report.disease_index.emplace(flu, 0);
  report.diseases.push_back(disease);

  SeriesAnalysis medicine;
  medicine.kind = SeriesKind::kMedicine;
  medicine.medicine = antiviral;
  medicine.has_change = true;
  medicine.change_point = 20;
  medicine.lambda = 1.5;
  medicine.aic = 40.0;
  medicine.aic_without_intervention = 55.0;
  report.medicine_index.emplace(antiviral, 0);
  report.medicines.push_back(medicine);

  SeriesAnalysis pair;
  pair.kind = SeriesKind::kPrescription;
  pair.disease = flu;
  pair.medicine = antiviral;
  pair.has_change = true;
  pair.change_point = 21;
  pair.lambda = 1.2;
  pair.aic = 42.0;
  pair.aic_without_intervention = 60.0;
  report.prescriptions.push_back(pair);

  TrendAnalyzer analyzer;
  std::ostringstream out;
  ASSERT_TRUE(WriteReportCsv(report, analyzer, catalog, out).ok());

  const auto lines = Split(out.str(), '\n');
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ(lines[0],
            "kind,disease,medicine,change,month,lambda,criterion,"
            "criterion_no_change,cause");
  EXPECT_EQ(Split(lines[1], ',')[0], "disease");
  EXPECT_EQ(Split(lines[1], ',')[3], "0");
  const auto medicine_fields = Split(lines[2], ',');
  EXPECT_EQ(medicine_fields[0], "medicine");
  EXPECT_EQ(medicine_fields[1], "-");
  EXPECT_EQ(medicine_fields[2], "antiviral");
  EXPECT_EQ(medicine_fields[3], "1");
  EXPECT_EQ(medicine_fields[4], "20");
  const auto pair_fields = Split(lines[3], ',');
  EXPECT_EQ(pair_fields[0], "prescription");
  // The medicine breaks one month earlier -> medicine-derived cause.
  EXPECT_EQ(pair_fields[8], "medicine-derived");
}

TEST(ReportIoTest, EmptyReportStillHasHeader) {
  Catalog catalog;
  TrendReport report;
  TrendAnalyzer analyzer;
  std::ostringstream out;
  ASSERT_TRUE(WriteReportCsv(report, analyzer, catalog, out).ok());
  const auto lines = Split(out.str(), '\n');
  EXPECT_GE(lines.size(), 1u);
  EXPECT_EQ(Split(lines[0], ',').size(), 9u);
}

TEST(ReportIoTest, FileFailureSurfaces) {
  Catalog catalog;
  TrendReport report;
  TrendAnalyzer analyzer;
  EXPECT_FALSE(WriteReportCsvFile(report, analyzer, catalog,
                                  "/nonexistent-dir/report.csv")
                   .ok());
}

}  // namespace
}  // namespace mic::trend
