#include "obs/metrics.h"

#include <filesystem>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "medmodel/medication_model.h"
#include "obs/runtime_metrics.h"
#include "obs/trace.h"
#include "runtime/thread_pool.h"
#include "store/claim_store.h"
#include "synth/generator.h"
#include "synth/scenario.h"
#include "trend/pipeline.h"

namespace mic::obs {
namespace {

TEST(MetricsRegistryTest, CounterConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  Counter* counter = registry.counter("test.hits");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter->value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(registry.counter_value("test.hits"), counter->value());
  EXPECT_EQ(registry.counter_value("never.touched"), 0u);
}

TEST(MetricsRegistryTest, HandlesAreStableAndSharedByName) {
  MetricsRegistry registry;
  Counter* first = registry.counter("a");
  registry.counter("b");
  registry.counter("c");
  EXPECT_EQ(first, registry.counter("a"));
  first->Increment(3);
  EXPECT_EQ(registry.counter_value("a"), 3u);
}

TEST(HistogramTest, BucketEdgesAreInclusiveUpperBounds) {
  MetricsRegistry registry;
  Histogram* histogram = registry.histogram("h", {1.0, 2.0});
  histogram->Observe(0.5);  // <= 1.0 -> bucket 0
  histogram->Observe(1.0);  // == edge -> bucket 0 (value <= edge)
  histogram->Observe(1.5);  // bucket 1
  histogram->Observe(2.0);  // bucket 1
  histogram->Observe(99.0);  // overflow (+inf) bucket
  EXPECT_EQ(histogram->bucket_count(0), 2u);
  EXPECT_EQ(histogram->bucket_count(1), 2u);
  EXPECT_EQ(histogram->bucket_count(2), 1u);
  EXPECT_EQ(histogram->count(), 5u);
  EXPECT_DOUBLE_EQ(histogram->sum(), 0.5 + 1.0 + 1.5 + 2.0 + 99.0);
  // A second resolution by name returns the same instance; the edges
  // argument is ignored after creation.
  EXPECT_EQ(histogram, registry.histogram("h", {7.0}));
  EXPECT_EQ(histogram->edges(), (std::vector<double>{1.0, 2.0}));
}

TEST(HistogramTest, ConcurrentObservationsKeepExactBucketCounts) {
  MetricsRegistry registry;
  Histogram* histogram = registry.histogram("h", {10.0, 20.0});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 3000;  // Divisible by the 30-value cycle.
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([histogram] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram->Observe(static_cast<double>(i % 30));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(histogram->count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Each 30-value cycle lands 11 values (0..10) in bucket 0, 10
  // (11..20) in bucket 1, and 9 (21..29) in the overflow bucket.
  const std::uint64_t cycles =
      static_cast<std::uint64_t>(kThreads) * kPerThread / 30;
  EXPECT_EQ(histogram->bucket_count(0), cycles * 11);
  EXPECT_EQ(histogram->bucket_count(1), cycles * 10);
  EXPECT_EQ(histogram->bucket_count(2), cycles * 9);
}

TEST(SpanTest, NestedSpansBuildSlashJoinedPaths) {
  MetricsRegistry registry;
  EXPECT_EQ(Span::CurrentPath(), "");
  {
    Span outer(&registry, "pipeline");
    EXPECT_EQ(outer.path(), "pipeline");
    EXPECT_EQ(Span::CurrentPath(), "pipeline");
    {
      Span inner(&registry, "reproduce");
      EXPECT_EQ(inner.path(), "pipeline/reproduce");
      EXPECT_EQ(Span::CurrentPath(), "pipeline/reproduce");
      {
        Span leaf(&registry, "em_fit");
        EXPECT_EQ(leaf.path(), "pipeline/reproduce/em_fit");
      }
    }
    // A sibling after the nested block attaches to the outer span.
    Span sibling(&registry, "detect");
    EXPECT_EQ(sibling.path(), "pipeline/detect");
  }
  EXPECT_EQ(Span::CurrentPath(), "");
  EXPECT_EQ(registry.timer("pipeline/reproduce/em_fit")->count(), 1u);
  EXPECT_EQ(registry.timer("pipeline/reproduce")->count(), 1u);
  EXPECT_EQ(registry.timer("pipeline/detect")->count(), 1u);
  // The outer span records only at destruction, which happened above.
  EXPECT_EQ(registry.timer("pipeline")->count(), 1u);
}

TEST(SpanTest, NullRegistryIsInert) {
  {
    Span span(nullptr, "ghost");
    EXPECT_EQ(Span::CurrentPath(), "");
    ScopedTimer timer(nullptr);
    ScopedTimer named(nullptr, "ghost");
  }
  // Null-safe helpers must be no-ops, not crashes.
  Increment(GetCounter(nullptr, "x"));
  Set(GetGauge(nullptr, "x"), 1.0);
  Add(GetGauge(nullptr, "x"), 1.0);
  Observe(GetHistogram(nullptr, "x", {1.0}), 0.5);
}

TEST(ScopedTimerTest, RecordsOneObservationPerScope) {
  MetricsRegistry registry;
  Timer* timer = registry.timer("work");
  for (int i = 0; i < 3; ++i) {
    ScopedTimer scope(timer);
  }
  EXPECT_EQ(timer->count(), 3u);
  EXPECT_GE(timer->seconds(), 0.0);
}

TEST(ExporterTest, JsonIsDeterministicAcrossInsertionOrder) {
  MetricsRegistry forward;
  forward.counter("a.one")->Increment(1);
  forward.counter("b.two")->Increment(2);
  forward.gauge("g")->Set(0.5);
  MetricsRegistry backward;
  backward.gauge("g")->Set(0.5);
  backward.counter("b.two")->Increment(2);
  backward.counter("a.one")->Increment(1);
  EXPECT_EQ(forward.ToJson(), backward.ToJson());
  EXPECT_EQ(forward.CountersToJson(), backward.CountersToJson());
  EXPECT_EQ(forward.CountersToJson(), "{\"a.one\":1,\"b.two\":2}");
  EXPECT_NE(forward.ToJson().find("\"counters\":"), std::string::npos);
  EXPECT_NE(forward.ToJson().find("\"gauges\":"), std::string::npos);
  EXPECT_NE(forward.ToJson().find("\"timers\":"), std::string::npos);
  EXPECT_NE(forward.ToJson().find("\"histograms\":"), std::string::npos);
}

TEST(ExporterTest, CsvHasOneRowPerScalar) {
  MetricsRegistry registry;
  registry.counter("c")->Increment(7);
  registry.timer("t")->Record(1000);
  const std::string csv = registry.ToCsv();
  EXPECT_NE(csv.find("counter,c,value,7"), std::string::npos);
  EXPECT_NE(csv.find("timer,t,count,1"), std::string::npos);
}

TEST(RuntimeMetricsTest, FoldsStageStatsIntoRegistry) {
  runtime::ThreadPool pool(2);
  auto noop = [](std::size_t, std::size_t, std::size_t) {
    return Status::OK();
  };
  ASSERT_TRUE(pool.ParallelFor(0, 100, 10, noop, "stage-a").ok());
  MetricsRegistry registry;
  FoldRuntimeStats(pool.stats(), pool.num_threads(), &registry);
  EXPECT_EQ(registry.counter_value("runtime.stage-a.calls"), 1u);
  EXPECT_EQ(registry.counter_value("runtime.stage-a.tasks"), 10u);
  EXPECT_EQ(registry.counter_value("runtime.stage-a.items"), 100u);
  EXPECT_DOUBLE_EQ(registry.gauge("runtime.threads")->value(), 2.0);
}

// The ExecContext is the only way execution resources reach a fit
// after the removal of the per-options pool fields: the context's pool
// sees the EM stages, and an empty context runs inline.
TEST(ExecContextTest, ContextPoolDrivesTheFit) {
  auto world = synth::World::Create(synth::MakeTinyWorldConfig(6, 99));
  ASSERT_TRUE(world.ok());
  synth::ClaimGenerator generator(&*world);
  auto data = generator.Generate();
  ASSERT_TRUE(data.ok());

  runtime::ThreadPool context_pool(2);
  ExecContext context;
  context.pool = &context_pool;
  auto fitted = medmodel::MedicationModel::Fit(
      data->corpus.month(0), medmodel::MedicationModelOptions{}, nullptr,
      context);
  ASSERT_TRUE(fitted.ok()) << fitted.status();
  EXPECT_FALSE(context_pool.stats().stages.empty());

  // An empty context fits inline and produces the identical model.
  auto inline_fit = medmodel::MedicationModel::Fit(
      data->corpus.month(0), medmodel::MedicationModelOptions{}, nullptr,
      ExecContext{});
  ASSERT_TRUE(inline_fit.ok()) << inline_fit.status();
  EXPECT_EQ((*fitted)->fit_stats().final_log_likelihood,
            (*inline_fit)->fit_stats().final_log_likelihood);
}

// The tentpole acceptance test: every counter the pipeline emits is
// bit-identical at 1 and 4 threads (timers and gauges are excluded from
// the contract and from CountersToJson()).
TEST(ObsDeterminismTest, PipelineCountersIdenticalAcrossThreadCounts) {
  auto world = synth::World::Create(synth::MakeTinyWorldConfig(24, 5));
  ASSERT_TRUE(world.ok());
  synth::ClaimGenerator generator(&*world);
  auto data = generator.Generate();
  ASSERT_TRUE(data.ok());

  auto counters_with_threads = [&](int threads) {
    runtime::ThreadPool pool(threads);
    MetricsRegistry registry;
    trend::PipelineConfig options;
    options.reproducer.filter_options.min_disease_count = 1;
    options.reproducer.filter_options.min_medicine_count = 1;
    options.analyzer.detector.seasonal = false;  // 24-month window.
    options.analyzer.detector.fit.optimizer.max_evaluations = 120;
    ExecContext context;
    context.pool = &pool;
    context.metrics = &registry;
    auto result = trend::RunPipeline(data->corpus, options, context);
    EXPECT_TRUE(result.ok()) << result.status();
    return registry.CountersToJson();
  };
  const std::string one = counters_with_threads(1);
  const std::string four = counters_with_threads(4);
  EXPECT_EQ(one, four);
  // The instrumentation actually fired: the EM and detector stages all
  // contributed counters.
  EXPECT_NE(one.find("\"em.fits\":"), std::string::npos);
  EXPECT_NE(one.find("\"em.iterations\":"), std::string::npos);
  EXPECT_NE(one.find("\"ssm.kalman_passes\":"), std::string::npos);
  EXPECT_NE(one.find("\"changepoint.aic_evaluations\":"),
            std::string::npos);
  EXPECT_NE(one.find("\"trend.series_analyzed\":"), std::string::npos);
  EXPECT_NE(one.find("\"reproduce.months_fitted\":"), std::string::npos);
}

// Spans cover the pipeline's serial skeleton: the root "pipeline" span
// nests "reproduce" and "detect", and each EM fit lands under the
// reproduce span.
TEST(ObsDeterminismTest, PipelineSpansNestUnderRoot) {
  auto world = synth::World::Create(synth::MakeTinyWorldConfig(6, 99));
  ASSERT_TRUE(world.ok());
  synth::ClaimGenerator generator(&*world);
  auto data = generator.Generate();
  ASSERT_TRUE(data.ok());

  MetricsRegistry registry;
  trend::PipelineConfig options;
  options.reproducer.filter_options.min_disease_count = 1;
  options.reproducer.filter_options.min_medicine_count = 1;
  options.analyzer.detector.seasonal = false;
  options.analyzer.detector.fit.optimizer.max_evaluations = 60;
  ExecContext context;
  context.metrics = &registry;
  auto result = trend::RunPipeline(data->corpus, options, context);
  ASSERT_TRUE(result.ok()) << result.status();

  EXPECT_EQ(registry.timer("pipeline")->count(), 1u);
  EXPECT_EQ(registry.timer("pipeline/reproduce")->count(), 1u);
  EXPECT_EQ(registry.timer("pipeline/detect")->count(), 1u);
  EXPECT_EQ(registry.timer("pipeline/reproduce/em_fit")->count(),
            registry.counter_value("em.fits"));
  EXPECT_GT(registry.timer("trend.series_fit")->count(), 0u);
}

// The claim store's counters join the determinism contract: a
// store-ingested pipeline run exports bit-identical counters at 1 and
// 4 threads (ingest is serial, so thread count cannot touch store.*,
// and the stamped fingerprints feed reproduce.* deterministically).
TEST(ObsDeterminismTest, StoreCountersIdenticalAcrossThreadCounts) {
  auto world = synth::World::Create(synth::MakeTinyWorldConfig(24, 5));
  ASSERT_TRUE(world.ok());
  synth::ClaimGenerator generator(&*world);
  auto data = generator.Generate();
  ASSERT_TRUE(data.ok());

  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "obs_store_determinism";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  {
    auto seeder = store::ClaimStore::Open(dir.string());
    ASSERT_TRUE(seeder.ok());
    ASSERT_TRUE(store::ImportCorpus(data->corpus, *seeder).ok());
  }

  auto counters_with_threads = [&](int threads) {
    runtime::ThreadPool pool(threads);
    MetricsRegistry registry;
    trend::PipelineConfig options;
    options.reproducer.filter_options.min_disease_count = 1;
    options.reproducer.filter_options.min_medicine_count = 1;
    options.analyzer.detector.seasonal = false;  // 24-month window.
    options.analyzer.detector.fit.optimizer.max_evaluations = 120;
    options.store.directory = dir.string();
    ExecContext context;
    context.pool = &pool;
    context.metrics = &registry;
    auto result = trend::RunPipelineFromStore(options, context);
    EXPECT_TRUE(result.ok()) << result.status();
    return registry.CountersToJson();
  };
  const std::string one = counters_with_threads(1);
  const std::string four = counters_with_threads(4);
  EXPECT_EQ(one, four);
  EXPECT_NE(one.find("\"store.segments_read\":"), std::string::npos);
  EXPECT_NE(one.find("\"store.bytes_read\":"), std::string::npos);
  EXPECT_NE(one.find("\"store.records_read\":"), std::string::npos);
  EXPECT_NE(one.find("\"store.read_errors\":0"), std::string::npos);
}

}  // namespace
}  // namespace mic::obs
