// Bit-exactness contract of the fixed-dimension Kalman kernels: for
// every compiled state dimension (1, 5, 12) and every filter entry
// point, the fixed path must reproduce the dynamic path's output to the
// last bit — likelihoods, per-step series, and final state/covariance —
// including under missing observations and the steady-state shortcut.
// Also covers the KalmanKernel dispatch surface and FitOptions
// validation.

#include "ssm/kalman_fixed.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ssm/fit.h"
#include "ssm/kalman.h"
#include "ssm/structural.h"

namespace mic::ssm {
namespace {

// Bitwise double equality: distinguishes -0.0 from 0.0 and treats two
// NaNs of the same payload as equal (innovations are NaN at gaps).
void ExpectSameBits(double a, double b, const char* what) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
      << what << ": " << a << " vs " << b;
}

void ExpectSameBits(const std::vector<double>& a,
                    const std::vector<double>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ExpectSameBits(a[i], b[i], what);
  }
}

void ExpectSameVector(const la::Vector& a, const la::Vector& b,
                      const char* what) {
  ExpectSameBits(a.data(), b.data(), what);
}

void ExpectSameMatrix(const la::Matrix& a, const la::Matrix& b,
                      const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      ExpectSameBits(a(r, c), b(r, c), what);
    }
  }
}

void ExpectSameFilterResult(const FilterResult& a, const FilterResult& b) {
  ExpectSameBits(a.log_likelihood, b.log_likelihood, "log_likelihood");
  EXPECT_EQ(a.effective_observations, b.effective_observations);
  EXPECT_EQ(a.skipped_diffuse, b.skipped_diffuse);
  ExpectSameBits(a.predictions, b.predictions, "predictions");
  ExpectSameBits(a.prediction_variances, b.prediction_variances,
                 "prediction_variances");
  ExpectSameBits(a.innovations, b.innovations, "innovations");
  ExpectSameVector(a.final_state, b.final_state, "final_state");
  ExpectSameMatrix(a.final_covariance, b.final_covariance,
                   "final_covariance");
  ASSERT_EQ(a.predicted_states.size(), b.predicted_states.size());
  for (std::size_t t = 0; t < a.predicted_states.size(); ++t) {
    ExpectSameVector(a.predicted_states[t], b.predicted_states[t],
                     "predicted_states");
  }
  ASSERT_EQ(a.predicted_covariances.size(), b.predicted_covariances.size());
  for (std::size_t t = 0; t < a.predicted_covariances.size(); ++t) {
    ExpectSameMatrix(a.predicted_covariances[t], b.predicted_covariances[t],
                     "predicted_covariances");
  }
}

// A structural spec whose base model has the requested state dimension:
// 1 = level only, 5 = level + two trig harmonics, 12 = level + the
// paper's period-12 dummy seasonal.
StructuralSpec SpecForDim(int dim) {
  StructuralSpec spec;
  if (dim == 1) {
    spec.seasonal = false;
  } else if (dim == 5) {
    spec.seasonal = true;
    spec.seasonal_form = SeasonalForm::kTrigonometric;
    spec.harmonics = 2;
  } else {
    spec.seasonal = true;
    spec.seasonal_form = SeasonalForm::kDummy;
  }
  return spec;
}

StateSpaceModel ModelForDim(int dim) {
  StructuralVariances variances;
  variances.observation = 0.9;
  variances.level = 0.2;
  variances.seasonal = 0.03;
  auto model = BuildStructuralModel(SpecForDim(dim), variances);
  EXPECT_TRUE(model.ok()) << model.status();
  EXPECT_EQ(model->state_dim(), static_cast<std::size_t>(dim));
  return std::move(model).value();
}

std::vector<double> MakeSeries(int n, std::uint64_t seed,
                               bool with_gaps = false) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (int t = 0; t < n; ++t) {
    x[t] = 2.0 + 0.05 * t + std::sin(t * 0.5236) +
           rng.NextGaussian(0.0, 0.4);
  }
  if (with_gaps) {
    for (int t = 5; t < n; t += 9) {
      x[t] = std::numeric_limits<double>::quiet_NaN();
    }
  }
  return x;
}

TEST(KalmanFixedTest, KernelTableCoversTheStructuralDimensions) {
  EXPECT_TRUE(HasFixedKernel(1));
  EXPECT_TRUE(HasFixedKernel(5));
  EXPECT_TRUE(HasFixedKernel(12));
  EXPECT_FALSE(HasFixedKernel(0));
  EXPECT_FALSE(HasFixedKernel(2));
  EXPECT_FALSE(HasFixedKernel(3));
  EXPECT_FALSE(HasFixedKernel(13));
}

TEST(KalmanFixedTest, RunFilterBitExactAcrossDims) {
  for (int dim : {1, 5, 12}) {
    const StateSpaceModel model = ModelForDim(dim);
    const auto series = MakeSeries(43, 11 + dim);
    KalmanOptions options;
    options.store_states = true;
    auto fixed = RunFilterFixed(model, series, options);
    auto dynamic = RunFilter(model, series, options);
    ASSERT_TRUE(fixed.ok()) << fixed.status();
    ASSERT_TRUE(dynamic.ok()) << dynamic.status();
    ExpectSameFilterResult(*fixed, *dynamic);
  }
}

TEST(KalmanFixedTest, RunFilterBitExactWithMissingObservations) {
  for (int dim : {1, 5, 12}) {
    const StateSpaceModel model = ModelForDim(dim);
    const auto series = MakeSeries(60, 23 + dim, /*with_gaps=*/true);
    auto fixed = RunFilterFixed(model, series);
    auto dynamic = RunFilter(model, series);
    ASSERT_TRUE(fixed.ok()) << fixed.status();
    ASSERT_TRUE(dynamic.ok()) << dynamic.status();
    ExpectSameFilterResult(*fixed, *dynamic);
  }
}

TEST(KalmanFixedTest, RunFilterBitExactThroughSteadyState) {
  // Long series push the time-invariant covariance recursion into its
  // steady state (n >= dim^2 + 20); both paths must take the shortcut
  // at the same step and stay identical.
  for (int dim : {1, 5, 12}) {
    const StateSpaceModel model = ModelForDim(dim);
    const auto series = MakeSeries(220, 31 + dim);
    auto fixed = RunFilterFixed(model, series);
    auto dynamic = RunFilter(model, series);
    ASSERT_TRUE(fixed.ok()) << fixed.status();
    ASSERT_TRUE(dynamic.ok()) << dynamic.status();
    ExpectSameFilterResult(*fixed, *dynamic);

    KalmanOptions no_steady;
    no_steady.allow_steady_state = false;
    auto fixed_ns = RunFilterFixed(model, series, no_steady);
    auto dynamic_ns = RunFilter(model, series, no_steady);
    ASSERT_TRUE(fixed_ns.ok()) << fixed_ns.status();
    ASSERT_TRUE(dynamic_ns.ok()) << dynamic_ns.status();
    ExpectSameFilterResult(*fixed_ns, *dynamic_ns);
  }
}

TEST(KalmanFixedTest, RegressionBitExactAcrossDims) {
  for (int dim : {1, 5, 12}) {
    const StateSpaceModel model = ModelForDim(dim);
    const auto series = MakeSeries(43, 47 + dim, /*with_gaps=*/true);
    const auto regressor =
        SlopeShiftRegressor(20, static_cast<int>(series.size()));
    auto fixed = RunFilterWithRegressionFixed(model, series, regressor);
    auto dynamic = RunFilterWithRegression(model, series, regressor);
    ASSERT_TRUE(fixed.ok()) << fixed.status();
    ASSERT_TRUE(dynamic.ok()) << dynamic.status();
    ExpectSameBits(fixed->lambda, dynamic->lambda, "lambda");
    ExpectSameBits(fixed->lambda_variance, dynamic->lambda_variance,
                   "lambda_variance");
    ExpectSameBits(fixed->profiled_log_likelihood,
                   dynamic->profiled_log_likelihood,
                   "profiled_log_likelihood");
  }
}

TEST(KalmanFixedTest, MultiRegressorBitExactAcrossDims) {
  for (int dim : {1, 5, 12}) {
    const StateSpaceModel model = ModelForDim(dim);
    const auto series = MakeSeries(43, 59 + dim);
    const int n = static_cast<int>(series.size());
    const std::vector<std::vector<double>> regressors = {
        InterventionRegressor({15, InterventionKind::kSlopeShift}, n),
        InterventionRegressor({28, InterventionKind::kLevelShift}, n)};
    auto fixed = RunFilterWithRegressorsFixed(model, series, regressors);
    auto dynamic = RunFilterWithRegressors(model, series, regressors);
    ASSERT_TRUE(fixed.ok()) << fixed.status();
    ASSERT_TRUE(dynamic.ok()) << dynamic.status();
    ExpectSameBits(fixed->lambdas, dynamic->lambdas, "lambdas");
    ExpectSameBits(fixed->profiled_log_likelihood,
                   dynamic->profiled_log_likelihood,
                   "profiled_log_likelihood");

    // Zero regressors degenerates to the plain filter in both paths.
    auto fixed_empty = RunFilterWithRegressorsFixed(model, series, {});
    auto dynamic_empty = RunFilterWithRegressors(model, series, {});
    ASSERT_TRUE(fixed_empty.ok()) << fixed_empty.status();
    ASSERT_TRUE(dynamic_empty.ok()) << dynamic_empty.status();
    EXPECT_TRUE(fixed_empty->lambdas.empty());
    ExpectSameBits(fixed_empty->profiled_log_likelihood,
                   dynamic_empty->profiled_log_likelihood,
                   "profiled_log_likelihood (no regressors)");
  }
}

TEST(KalmanFixedTest, KernelDispatchResolvesAndAgrees) {
  const StateSpaceModel supported = ModelForDim(12);
  EXPECT_TRUE(ResolveToFixedKernel(KalmanKernel::kAuto, supported));
  EXPECT_TRUE(ResolveToFixedKernel(KalmanKernel::kFixed, supported));
  EXPECT_FALSE(ResolveToFixedKernel(KalmanKernel::kDynamic, supported));

  // A 3-state model (level + one trig harmonic + Nyquist) has no
  // compiled kernel; kAuto must fall back to dynamic.
  StructuralSpec odd = SpecForDim(5);
  odd.harmonics = 1;
  auto odd_model = BuildStructuralModel(odd, StructuralVariances{});
  ASSERT_TRUE(odd_model.ok()) << odd_model.status();
  ASSERT_FALSE(HasFixedKernel(odd_model->state_dim()));
  EXPECT_FALSE(ResolveToFixedKernel(KalmanKernel::kAuto, *odd_model));

  const auto series = MakeSeries(43, 71);
  auto via_auto = RunFilterKernel(KalmanKernel::kAuto, supported, series);
  auto via_fixed = RunFilterKernel(KalmanKernel::kFixed, supported, series);
  auto via_dynamic =
      RunFilterKernel(KalmanKernel::kDynamic, supported, series);
  ASSERT_TRUE(via_auto.ok() && via_fixed.ok() && via_dynamic.ok());
  ExpectSameFilterResult(*via_auto, *via_fixed);
  ExpectSameFilterResult(*via_auto, *via_dynamic);

  // kFixed on an unsupported dimension fails loudly instead of
  // silently falling back.
  auto rejected = RunFilterFixed(*odd_model, series);
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
}

TEST(KalmanFixedTest, FixedKalmanTypeChecksItsDimension) {
  EXPECT_TRUE(FixedKalman<12>::Supported());
  EXPECT_TRUE(FixedKalman<1>::Supported());
  EXPECT_FALSE(FixedKalman<3>::Supported());

  const StateSpaceModel model = ModelForDim(12);
  const auto series = MakeSeries(43, 83);
  auto typed = FixedKalman<12>::Run(model, series);
  auto dynamic = RunFilter(model, series);
  ASSERT_TRUE(typed.ok()) << typed.status();
  ASSERT_TRUE(dynamic.ok()) << dynamic.status();
  ExpectSameFilterResult(*typed, *dynamic);

  auto mismatched = FixedKalman<1>::Run(model, series);
  EXPECT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.status().code(), StatusCode::kInvalidArgument);
}

TEST(KalmanFixedTest, FitOptionsValidateReportsFieldPaths) {
  FitOptions options;
  EXPECT_TRUE(options.Validate().ok());

  options.restarts = -1;
  auto invalid = options.Validate();
  EXPECT_FALSE(invalid.ok());
  EXPECT_NE(invalid.message().find("fit.restarts"), std::string::npos);

  options = FitOptions{};
  options.optimizer.max_evaluations = 0;
  EXPECT_NE(options.Validate().message().find(
                "fit.optimizer.max_evaluations"),
            std::string::npos);

  options = FitOptions{};
  options.optimizer.tolerance = 0.0;
  EXPECT_NE(options.Validate().message().find("fit.optimizer.tolerance"),
            std::string::npos);

  options = FitOptions{};
  options.optimizer.initial_step = -0.5;
  EXPECT_NE(options.Validate().message().find("fit.optimizer.initial_step"),
            std::string::npos);
}

TEST(KalmanFixedTest, FitKernelChoiceIsBitExact) {
  // End to end through the optimizer: the kernel choice must not move a
  // single bit of the fitted model, for both the paper's dim-12 model
  // and the non-seasonal dim-1 model, with and without an intervention.
  for (int dim : {1, 12}) {
    StructuralSpec spec = SpecForDim(dim);
    spec.set_change_point(20);
    const auto series = MakeSeries(43, 97 + dim);
    FitOptions fixed_options;
    fixed_options.kernel = KalmanKernel::kFixed;
    fixed_options.optimizer.max_evaluations = 120;
    FitOptions dynamic_options = fixed_options;
    dynamic_options.kernel = KalmanKernel::kDynamic;
    FitOptions auto_options = fixed_options;
    auto_options.kernel = KalmanKernel::kAuto;

    auto fixed = FitStructuralModel(series, spec, fixed_options);
    auto dynamic = FitStructuralModel(series, spec, dynamic_options);
    auto automatic = FitStructuralModel(series, spec, auto_options);
    ASSERT_TRUE(fixed.ok()) << fixed.status();
    ASSERT_TRUE(dynamic.ok()) << dynamic.status();
    ASSERT_TRUE(automatic.ok()) << automatic.status();
    for (const auto* other : {&*dynamic, &*automatic}) {
      ExpectSameBits(fixed->log_likelihood, other->log_likelihood,
                     "fit log_likelihood");
      ExpectSameBits(fixed->aic, other->aic, "fit aic");
      ExpectSameBits(fixed->lambda, other->lambda, "fit lambda");
      ExpectSameBits(fixed->variances.observation,
                     other->variances.observation, "fit observation var");
      ExpectSameBits(fixed->variances.level, other->variances.level,
                     "fit level var");
      EXPECT_EQ(fixed->optimizer_evaluations, other->optimizer_evaluations);
      EXPECT_EQ(fixed->kalman_passes, other->kalman_passes);
    }
  }
}

TEST(KalmanFixedTest, FitRejectsFixedKernelOnUnsupportedDimension) {
  StructuralSpec odd = SpecForDim(5);
  odd.harmonics = 1;  // 3 states: no compiled kernel.
  FitOptions options;
  options.kernel = KalmanKernel::kFixed;
  auto fitted = FitStructuralModel(MakeSeries(43, 101), odd, options);
  ASSERT_FALSE(fitted.ok());
  EXPECT_EQ(fitted.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(fitted.status().message().find("fit.kernel"),
            std::string::npos);

  // kAuto on the same spec silently uses the dynamic path.
  options.kernel = KalmanKernel::kAuto;
  auto fallback = FitStructuralModel(MakeSeries(43, 101), odd, options);
  EXPECT_TRUE(fallback.ok()) << fallback.status();
}

TEST(KalmanFixedTest, KernelNamesAreStable) {
  EXPECT_EQ(KalmanKernelName(KalmanKernel::kAuto), "auto");
  EXPECT_EQ(KalmanKernelName(KalmanKernel::kDynamic), "dynamic");
  EXPECT_EQ(KalmanKernelName(KalmanKernel::kFixed), "fixed");
}

}  // namespace
}  // namespace mic::ssm
