// Tests for the incomplete gamma / chi-square machinery, the Ljung-Box
// residual diagnostic, and the Wilcoxon signed-rank test.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ssm/fit.h"
#include "ssm/kalman.h"
#include "stats/metrics.h"

namespace mic::stats {
namespace {

TEST(PearsonTest, KnownValues) {
  EXPECT_NEAR(*PearsonCorrelation({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0,
              1e-12);
  EXPECT_NEAR(*PearsonCorrelation({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0,
              1e-12);
  // Hand-computed: r of {1,2,3} vs {1,3,2} = 0.5.
  EXPECT_NEAR(*PearsonCorrelation({1, 2, 3}, {1, 3, 2}), 0.5, 1e-12);
  EXPECT_FALSE(PearsonCorrelation({1, 1, 1}, {1, 2, 3}).ok());
  EXPECT_FALSE(PearsonCorrelation({1, 2}, {1}).ok());
  EXPECT_FALSE(PearsonCorrelation({1}, {1}).ok());
}

TEST(IncompleteGammaTest, KnownValues) {
  // P(1, x) = 1 - e^-x.
  EXPECT_NEAR(RegularizedLowerGamma(1.0, 2.0), 1.0 - std::exp(-2.0),
              1e-12);
  // P(0.5, x) = erf(sqrt(x)).
  EXPECT_NEAR(RegularizedLowerGamma(0.5, 1.0), std::erf(1.0), 1e-10);
  // Boundaries.
  EXPECT_DOUBLE_EQ(RegularizedLowerGamma(3.0, 0.0), 0.0);
  EXPECT_NEAR(RegularizedLowerGamma(3.0, 100.0), 1.0, 1e-12);
  // Large-x branch (continued fraction).
  EXPECT_NEAR(RegularizedLowerGamma(2.0, 10.0),
              1.0 - std::exp(-10.0) * (1.0 + 10.0), 1e-10);
}

TEST(ChiSquareTest, KnownQuantiles) {
  // chi2(1): CDF(3.841) ~ 0.95; chi2(10): CDF(18.307) ~ 0.95.
  EXPECT_NEAR(ChiSquareCdf(3.841, 1.0), 0.95, 2e-3);
  EXPECT_NEAR(ChiSquareCdf(18.307, 10.0), 0.95, 2e-3);
  EXPECT_NEAR(ChiSquareCdf(0.0, 4.0), 0.0, 1e-12);
  // Median of chi2(2) is 2 ln 2.
  EXPECT_NEAR(ChiSquareCdf(2.0 * std::log(2.0), 2.0), 0.5, 1e-10);
}

TEST(LjungBoxTest, WhiteNoisePassesAutocorrelatedFails) {
  Rng rng(42);
  std::vector<double> white(300);
  for (double& value : white) value = rng.NextGaussian();
  auto white_result = LjungBoxTest(white, 10);
  ASSERT_TRUE(white_result.ok());
  EXPECT_GT(white_result->p_value, 0.01);

  // Strong AR(1) residuals must fail decisively.
  std::vector<double> correlated(300);
  double state = 0.0;
  for (double& value : correlated) {
    state = 0.8 * state + rng.NextGaussian();
    value = state;
  }
  auto correlated_result = LjungBoxTest(correlated, 10);
  ASSERT_TRUE(correlated_result.ok());
  EXPECT_LT(correlated_result->p_value, 1e-6);
  EXPECT_GT(correlated_result->q_statistic,
            white_result->q_statistic);
}

TEST(LjungBoxTest, SkipsNaNsAndValidatesInput) {
  Rng rng(7);
  std::vector<double> residuals(100);
  for (double& value : residuals) value = rng.NextGaussian();
  residuals[0] = std::numeric_limits<double>::quiet_NaN();
  residuals[50] = std::numeric_limits<double>::quiet_NaN();
  auto result = LjungBoxTest(residuals, 5);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(std::isfinite(result->q_statistic));

  EXPECT_FALSE(LjungBoxTest(residuals, 0).ok());
  EXPECT_FALSE(LjungBoxTest({1.0, 2.0}, 5).ok());
  EXPECT_FALSE(LjungBoxTest(std::vector<double>(50, 3.0), 5).ok());
}

TEST(LjungBoxTest, StructuralModelInnovationsAreWhite) {
  // Innovations of a correctly specified model should pass Ljung-Box —
  // a residual diagnostic end-to-end check.
  Rng rng(13);
  std::vector<double> x(120);
  double level = 10.0;
  for (double& value : x) {
    level += rng.NextGaussian(0.0, 0.3);
    value = level + rng.NextGaussian(0.0, 1.0);
  }
  ssm::StructuralSpec spec;  // Local level: the true model.
  auto fitted = ssm::FitStructuralModel(x, spec);
  ASSERT_TRUE(fitted.ok());
  auto filter = ssm::RunFilter(fitted->model, x);
  ASSERT_TRUE(filter.ok());
  // Standardize innovations; skip the diffuse first one.
  std::vector<double> standardized;
  for (std::size_t t = 1; t < x.size(); ++t) {
    standardized.push_back(filter->innovations[t] /
                           std::sqrt(filter->prediction_variances[t]));
  }
  auto result = LjungBoxTest(standardized, 10, /*fitted_parameters=*/2);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->p_value, 0.01);
}

TEST(WilcoxonTest, DetectsConsistentShift) {
  Rng rng(13);
  std::vector<double> a(40);
  std::vector<double> b(40);
  for (std::size_t i = 0; i < a.size(); ++i) {
    b[i] = rng.NextGaussian(0.0, 1.0);
    a[i] = b[i] + 0.8 + rng.NextGaussian(0.0, 0.3);
  }
  auto result = WilcoxonSignedRank(a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->p_value, 0.001);
  EXPECT_GT(result->z_statistic, 3.0);
}

TEST(WilcoxonTest, NoShiftIsInsignificant) {
  Rng rng(17);
  std::vector<double> a(60);
  std::vector<double> b(60);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.NextGaussian();
    b[i] = rng.NextGaussian();
  }
  auto result = WilcoxonSignedRank(a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->p_value, 0.05);
}

TEST(WilcoxonTest, HandlesTiesAndZeros) {
  // Differences: {0, 1, 1, -1, 2, 2, 2, -2, 3}: zeros dropped, heavy
  // ties; must still produce a finite result.
  const std::vector<double> a = {5, 6, 6, 4, 7, 7, 7, 3, 8};
  const std::vector<double> b = {5, 5, 5, 5, 5, 5, 5, 5, 5};
  auto result = WilcoxonSignedRank(a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->effective_n, 8);
  EXPECT_TRUE(std::isfinite(result->z_statistic));
  EXPECT_GE(result->p_value, 0.0);
  EXPECT_LE(result->p_value, 1.0);
}

TEST(WilcoxonTest, ValidatesInput) {
  EXPECT_FALSE(WilcoxonSignedRank({1, 2}, {1}).ok());
  // All-zero differences.
  EXPECT_FALSE(
      WilcoxonSignedRank({1, 2, 3, 4, 5, 6}, {1, 2, 3, 4, 5, 6}).ok());
  // Too few non-zero differences.
  EXPECT_FALSE(WilcoxonSignedRank({1, 2, 3}, {0, 0, 0}).ok());
}

TEST(WilcoxonTest, AgreesWithTTestOnCleanShift) {
  Rng rng(19);
  std::vector<double> a(50);
  std::vector<double> b(50);
  for (std::size_t i = 0; i < a.size(); ++i) {
    b[i] = rng.NextGaussian(10.0, 2.0);
    a[i] = b[i] - 1.0 + rng.NextGaussian(0.0, 0.5);
  }
  auto wilcoxon = WilcoxonSignedRank(a, b);
  auto ttest = PairedTTest(a, b);
  ASSERT_TRUE(wilcoxon.ok());
  ASSERT_TRUE(ttest.ok());
  EXPECT_LT(wilcoxon->p_value, 0.01);
  EXPECT_LT(ttest->p_value, 0.01);
  EXPECT_LT(wilcoxon->z_statistic, 0.0);  // a below b.
  EXPECT_LT(ttest->t_statistic, 0.0);
}

}  // namespace
}  // namespace mic::stats
