#include "medmodel/timeseries.h"

#include <gtest/gtest.h>

#include "synth/generator.h"
#include "synth/scenario.h"

namespace mic::medmodel {
namespace {

synth::GeneratedData GenerateTiny(int num_months = 12,
                                  std::uint64_t seed = 3) {
  auto world =
      synth::World::Create(synth::MakeTinyWorldConfig(num_months, seed));
  EXPECT_TRUE(world.ok());
  synth::ClaimGenerator generator(&*world);
  auto data = generator.Generate();
  EXPECT_TRUE(data.ok());
  return std::move(data).value();
}

ReproducerOptions FastOptions() {
  ReproducerOptions options;
  options.filter_options.min_disease_count = 1;
  options.filter_options.min_medicine_count = 1;
  options.min_series_total = 0.0;
  return options;
}

TEST(SeriesSetTest, AddUpdatesAllThreeViews) {
  SeriesSet series(5);
  series.Add(DiseaseId(0), MedicineId(1), 2, 3.0);
  series.Add(DiseaseId(0), MedicineId(2), 2, 1.0);
  series.Add(DiseaseId(0), MedicineId(1), 4, 2.0);

  const auto pair = series.Prescription(DiseaseId(0), MedicineId(1));
  EXPECT_DOUBLE_EQ(pair[2], 3.0);
  EXPECT_DOUBLE_EQ(pair[4], 2.0);
  // Eq. 8: disease series sums pairs over medicines.
  const auto disease = series.Disease(DiseaseId(0));
  EXPECT_DOUBLE_EQ(disease[2], 4.0);
  const auto medicine = series.Medicine(MedicineId(1));
  EXPECT_DOUBLE_EQ(medicine[2], 3.0);
  // Absent keys give zero vectors of the right length.
  EXPECT_EQ(series.Prescription(DiseaseId(9), MedicineId(9)).size(), 5u);
  EXPECT_DOUBLE_EQ(series.Disease(DiseaseId(9))[0], 0.0);
}

TEST(SeriesSetTest, PruneRemovesLowTotalSeries) {
  SeriesSet series(3);
  series.Add(DiseaseId(0), MedicineId(0), 0, 20.0);
  series.Add(DiseaseId(1), MedicineId(1), 0, 2.0);
  EXPECT_EQ(series.num_pairs(), 2u);
  series.PruneRareSeries(10.0);
  EXPECT_EQ(series.num_pairs(), 1u);
  EXPECT_EQ(series.num_diseases(), 1u);
  EXPECT_EQ(series.num_medicines(), 1u);
  EXPECT_DOUBLE_EQ(series.Prescription(DiseaseId(1), MedicineId(1))[0],
                   0.0);
}

TEST(ReproduceTest, PairMassMatchesMedicineMentions) {
  synth::GeneratedData data = GenerateTiny(6, 5);
  auto series = ReproduceSeries(data.corpus, FastOptions());
  ASSERT_TRUE(series.ok());
  // Eq. 7 conserves mass: summed over pairs, the reproduced counts at
  // month t equal the number of medicine mentions at month t.
  for (std::size_t t = 0; t < data.corpus.num_months(); ++t) {
    double reproduced = 0.0;
    series->ForEachPair([&](DiseaseId, MedicineId,
                            const std::vector<double>& values) {
      reproduced += values[t];
    });
    std::uint64_t mentions = 0;
    for (const MicRecord& record : data.corpus.month(t).records()) {
      mentions += record.TotalMedicineMentions();
    }
    EXPECT_NEAR(reproduced, static_cast<double>(mentions), 1e-6)
        << "month " << t;
  }
}

TEST(ReproduceTest, ProposedTracksTruthBetterThanCooccurrence) {
  synth::GeneratedData data = GenerateTiny(12, 9);
  auto world = synth::World::Create(synth::MakeTinyWorldConfig(12, 9));
  ASSERT_TRUE(world.ok());

  ReproducerOptions proposed_options = FastOptions();
  auto proposed = ReproduceSeries(data.corpus, proposed_options);
  ReproducerOptions cooccurrence_options = FastOptions();
  cooccurrence_options.model_kind = LinkModelKind::kCooccurrence;
  auto cooccurrence = ReproduceSeries(data.corpus, cooccurrence_options);
  ASSERT_TRUE(proposed.ok());
  ASSERT_TRUE(cooccurrence.ok());

  // The Fig. 2 criterion on the tiny world: "depressor" is indicated
  // only for "bp", so its reproduced counts for OTHER diseases should
  // be near zero under the proposed model but inflated under
  // cooccurrence counting.
  const DiseaseId flu = *world->FindDisease("flu");
  const DiseaseId pain = *world->FindDisease("pain");
  const MedicineId depressor = *world->FindMedicine("depressor");
  double proposed_offtarget = 0.0;
  double cooccurrence_offtarget = 0.0;
  for (DiseaseId d : {flu, pain}) {
    for (double value : proposed->Prescription(d, depressor)) {
      proposed_offtarget += value;
    }
    for (double value : cooccurrence->Prescription(d, depressor)) {
      cooccurrence_offtarget += value;
    }
  }
  EXPECT_LT(proposed_offtarget, 0.35 * cooccurrence_offtarget);
}

TEST(ReproduceTest, MinTotalPrunesSparsePairs) {
  synth::GeneratedData data = GenerateTiny(6, 13);
  ReproducerOptions strict = FastOptions();
  strict.min_series_total = 1e9;  // Absurd threshold removes everything.
  auto series = ReproduceSeries(data.corpus, strict);
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->num_pairs(), 0u);
  EXPECT_EQ(series->num_diseases(), 0u);
}

TEST(ReproduceTest, EmptyCorpusFails) {
  MicCorpus corpus;
  EXPECT_FALSE(ReproduceSeries(corpus, FastOptions()).ok());
}

}  // namespace
}  // namespace mic::medmodel
