// Tests for the serve layer: the wire JSON model and framing, the
// hazard-pointer SnapshotHub, the TrendService request handlers
// (including byte-identity of the served report against the offline
// pipeline and live ingest), and the TCP transport end to end.
//
// The hammer test is the torn-snapshot detector: reader threads query
// report_csv/health in a tight loop while the main thread publishes new
// snapshots via ingest, and every response must be internally
// consistent — months == base_months + (version - 1) and the CSV must
// be the one offline run that matches that version, never a mix.

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cache/cache_store.h"
#include "common/exec_context.h"
#include "mic/io.h"
#include "obs/metrics.h"
#include "obs/trace_log.h"
#include "serve/drill_json.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "serve/service.h"
#include "serve/snapshot.h"
#include "serve/wire.h"
#include "store/claim_store.h"
#include "synth/generator.h"
#include "synth/scenario.h"
#include "trend/drilldown.h"
#include "trend/pipeline.h"
#include "trend/report_io.h"

namespace mic::serve {
namespace {

namespace fs = std::filesystem;

fs::path FreshDir(const char* name) {
  fs::path dir = fs::path(::testing::TempDir()) / name;
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
  return dir;
}

MicCorpus TinyCorpus(int months, std::uint64_t seed) {
  auto world = synth::World::Create(synth::MakeTinyWorldConfig(months, seed));
  EXPECT_TRUE(world.ok());
  synth::ClaimGenerator generator(&*world);
  auto data = generator.Generate();
  EXPECT_TRUE(data.ok());
  return std::move(data->corpus);
}

// The first `months` months of `corpus`, sharing its catalog.
MicCorpus Prefix(const MicCorpus& corpus, std::size_t months) {
  MicCorpus prefix(corpus.shared_catalog());
  for (std::size_t t = 0; t < months; ++t) {
    EXPECT_TRUE(prefix.AddMonth(corpus.month(t)).ok());
  }
  return prefix;
}

// The pipeline configuration every serve test shares: small filters so
// the tiny world keeps series, deterministic cold fits (no cache).
trend::PipelineConfig TestConfig(const std::string& store_dir) {
  trend::PipelineConfig config;
  config.reproducer.filter_options.min_disease_count = 1;
  config.reproducer.filter_options.min_medicine_count = 1;
  config.reproducer.min_series_total = 5.0;
  config.analyzer.detector.seasonal = false;
  config.analyzer.detector.fit.optimizer.max_evaluations = 150;
  config.store.directory = store_dir;
  return config;
}

// Writes month-prefix CSVs of one synthetic world plus its hospitals
// attribute file, then seeds a claim store from the `seed_months`
// prefix *as parsed back from CSV* — the same entity ordering a real
// deployment gets, so later CSV ingests extend the store's dictionary
// instead of conflicting with it.
struct ServeWorld {
  fs::path dir;               // working dir (CSVs live here)
  fs::path store_dir;         // the seeded claim store
  std::string hospitals_csv;  // path of the hospitals attribute file
  std::vector<std::string> corpus_csv;  // corpus_csv[m] = first m months

  static ServeWorld Create(const char* name, int total_months,
                           int seed_months, std::uint64_t seed = 7) {
    ServeWorld world;
    world.dir = FreshDir(name);
    world.store_dir = world.dir / "store";
    const MicCorpus full = TinyCorpus(total_months, seed);

    world.hospitals_csv = (world.dir / "hospitals.csv").string();
    {
      std::ofstream out(world.hospitals_csv);
      EXPECT_TRUE(WriteHospitalsCsv(full.catalog(), out).ok());
    }
    world.corpus_csv.resize(total_months + 1);
    for (int m = seed_months; m <= total_months; ++m) {
      world.corpus_csv[m] =
          (world.dir / ("corpus" + std::to_string(m) + ".csv")).string();
      EXPECT_TRUE(
          WriteCorpusCsvFile(Prefix(full, m), world.corpus_csv[m]).ok());
    }

    MicCorpus parsed = world.ParseCorpus(seed_months);
    auto store = store::ClaimStore::Open(world.store_dir.string());
    EXPECT_TRUE(store.ok());
    auto imported = store::ImportCorpus(parsed, *store);
    EXPECT_TRUE(imported.ok());
    EXPECT_EQ(*imported, static_cast<std::size_t>(seed_months));
    return world;
  }

  // The first `months` months as a deployment sees them: parsed from
  // CSV with hospital attributes joined in.
  MicCorpus ParseCorpus(int months) const {
    auto corpus = ReadCorpusCsvFile(corpus_csv[months]);
    EXPECT_TRUE(corpus.ok());
    std::ifstream in(hospitals_csv);
    EXPECT_TRUE(ReadHospitalsCsv(in, corpus->catalog()).ok());
    return std::move(*corpus);
  }

  // The offline reference: `mictrend pipeline` over the first `months`
  // months, serialized exactly as report_io writes it.
  std::string OfflineReportCsv(int months) const {
    const MicCorpus corpus = ParseCorpus(months);
    const trend::PipelineConfig config = TestConfig(store_dir.string());
    auto result = trend::RunPipeline(corpus, config);
    EXPECT_TRUE(result.ok()) << result.status();
    std::ostringstream csv;
    trend::TrendAnalyzer analyzer(config.analyzer);
    EXPECT_TRUE(trend::WriteReportCsv(result->report, analyzer,
                                      corpus.catalog(), csv)
                    .ok());
    return csv.str();
  }
};

JsonValue MakeRequest(std::string_view op) {
  JsonValue request = JsonValue::Object();
  request.Set("op", JsonValue::String(std::string(op)));
  return request;
}

std::string ErrorCode(const JsonValue& response) {
  const JsonValue* error = response.Find("error");
  return error == nullptr ? "" : error->GetString("code");
}

// ----------------------------------------------------------- JsonValue

TEST(JsonValueTest, RoundTripsEveryKindDeterministically) {
  const std::string text =
      R"({"null":null,"t":true,"f":false,"int":-42,"big":9007199254740993,)"
      R"("dbl":0.5,"str":"a\"b\\c\né","arr":[1,[2,3],{"k":"v"}],)"
      R"("obj":{"z":1,"a":2}})";
  auto parsed = JsonValue::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const std::string once = parsed->Serialize();
  auto reparsed = JsonValue::Parse(once);
  ASSERT_TRUE(reparsed.ok());
  // Deterministic: serialize(parse(serialize(x))) == serialize(x).
  EXPECT_EQ(reparsed->Serialize(), once);
  // Insertion order is preserved, so "z" still precedes "a".
  const JsonValue* obj = parsed->Find("obj");
  ASSERT_NE(obj, nullptr);
  ASSERT_EQ(obj->members().size(), 2u);
  EXPECT_EQ(obj->members()[0].first, "z");
}

TEST(JsonValueTest, DistinguishesIntegersFromDoubles) {
  auto parsed = JsonValue::Parse(R"({"i":5,"d":2.5,"huge":1e300})");
  ASSERT_TRUE(parsed.ok());
  // The 64-bit counter case: integers must not pick up a decimal point
  // (9007199254740993 would not survive a double round-trip).
  EXPECT_EQ(JsonValue::Parse("9007199254740993")->Serialize(),
            "9007199254740993");
  EXPECT_EQ(parsed->Find("i")->int_value(), 5);
  EXPECT_EQ(parsed->Find("i")->Serialize(), "5");
  EXPECT_EQ(parsed->Find("d")->Serialize(), "2.5");
  EXPECT_EQ(parsed->Find("huge")->number_value(), 1e300);
}

TEST(JsonValueTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{} trailing").ok());    // strict parse
  EXPECT_FALSE(JsonValue::Parse(R"({"a":})").ok());
  EXPECT_FALSE(JsonValue::Parse(R"("unterminated)").ok());
  EXPECT_FALSE(JsonValue::Parse("nul").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  // Depth limit: 70 nested arrays exceed the 64-container budget.
  std::string deep(70, '[');
  deep += std::string(70, ']');
  EXPECT_FALSE(JsonValue::Parse(deep).ok());
}

TEST(JsonValueTest, TypedGettersFallBack) {
  auto parsed = JsonValue::Parse(
      R"({"s":"text","i":7,"d":2.5,"b":true,"wrong":"type"})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->GetString("s"), "text");
  EXPECT_EQ(parsed->GetString("missing", "fb"), "fb");
  EXPECT_EQ(parsed->GetInt("i", -1), 7);
  EXPECT_EQ(parsed->GetInt("wrong", -1), -1);
  EXPECT_EQ(parsed->GetDouble("d", 0.0), 2.5);
  EXPECT_EQ(parsed->GetBool("b", false), true);
  EXPECT_EQ(parsed->GetBool("missing", true), true);
}

// ------------------------------------------------------------- framing

struct SocketPair {
  int fds[2];
  SocketPair() { EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0); }
  ~SocketPair() {
    if (fds[0] >= 0) close(fds[0]);
    if (fds[1] >= 0) close(fds[1]);
  }
  void CloseWriter() {
    close(fds[0]);
    fds[0] = -1;
  }
};

TEST(WireTest, FramesRoundTripAndCleanCloseIsNotFound) {
  SocketPair pair;
  const std::string payload = R"({"op":"health"})";
  ASSERT_TRUE(WriteFrame(pair.fds[0], payload).ok());
  auto read = ReadFrame(pair.fds[1]);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, payload);

  pair.CloseWriter();
  auto eof = ReadFrame(pair.fds[1]);
  EXPECT_EQ(eof.status().code(), StatusCode::kNotFound);
}

TEST(WireTest, TornFrameIsAnIoError) {
  SocketPair pair;
  // A header promising 100 bytes, then only 3 bytes and EOF.
  const unsigned char header[4] = {0, 0, 0, 100};
  ASSERT_EQ(write(pair.fds[0], header, 4), 4);
  ASSERT_EQ(write(pair.fds[0], "abc", 3), 3);
  pair.CloseWriter();
  auto read = ReadFrame(pair.fds[1]);
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
}

TEST(WireTest, OversizeDeclaredLengthIsAProtocolError) {
  SocketPair pair;
  WireLimits limits;
  limits.max_frame_bytes = 16;
  const unsigned char header[4] = {0, 0, 1, 0};  // declares 256 bytes
  ASSERT_EQ(write(pair.fds[0], header, 4), 4);
  auto read = ReadFrame(pair.fds[1], limits);
  EXPECT_EQ(read.status().code(), StatusCode::kFailedPrecondition);
  // And the writer refuses to produce such a frame in the first place.
  EXPECT_EQ(WriteFrame(pair.fds[0], std::string(32, 'x'), 16).code(),
            StatusCode::kInvalidArgument);
}

TEST(WireTest, StopFlagAndTimeoutBoundABlockedRead) {
  SocketPair pair;
  WireLimits limits;
  limits.poll_interval_ms = 10;

  std::atomic<bool> stop{true};
  auto stopped = ReadFrame(pair.fds[1], limits, &stop);
  EXPECT_EQ(stopped.status().code(), StatusCode::kFailedPrecondition);

  limits.timeout_ms = 30;
  auto timed_out = ReadFrame(pair.fds[1], limits);
  EXPECT_EQ(timed_out.status().code(), StatusCode::kOutOfRange);
}

// --------------------------------------------------------- SnapshotHub

WorldSnapshot* BareSnapshot(std::uint64_t version) {
  auto* snapshot = new WorldSnapshot();
  snapshot->version = version;
  return snapshot;
}

TEST(SnapshotHubTest, PublishWaitsForThePinnedReaderToDrain) {
  SnapshotHub hub;
  hub.Publish(BareSnapshot(1));
  auto reader = hub.Register();
  ASSERT_TRUE(reader.ok());

  std::atomic<bool> published{false};
  std::thread publisher;
  {
    SnapshotPin pin = hub.Acquire(*reader);
    EXPECT_EQ(pin->version, 1u);
    publisher = std::thread([&hub, &published] {
      hub.Publish(BareSnapshot(2));
      published.store(true, std::memory_order_seq_cst);
    });
    // The publisher must stall while the pin is live: the pinned
    // snapshot stays valid the whole time.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(published.load(std::memory_order_seq_cst));
    EXPECT_EQ(pin->version, 1u);
  }  // pin released -> publisher may retire version 1
  publisher.join();
  EXPECT_TRUE(published.load(std::memory_order_seq_cst));
  EXPECT_EQ(hub.UnsafeCurrent()->version, 2u);
}

TEST(SnapshotHubTest, RegisterExhaustsAndRecyclesSlots) {
  SnapshotHub hub;
  std::vector<SnapshotReader> readers;
  for (int i = 0; i < SnapshotHub::kMaxReaders; ++i) {
    auto reader = hub.Register();
    ASSERT_TRUE(reader.ok()) << i;
    readers.push_back(std::move(*reader));
  }
  EXPECT_EQ(hub.Register().status().code(),
            StatusCode::kFailedPrecondition);
  readers.pop_back();  // releasing a slot makes it claimable again
  EXPECT_TRUE(hub.Register().ok());
}

// ------------------------------------------------------- TrendService

TEST(ServiceTest, AnswersQueriesFromThePublishedSnapshot) {
  ServeWorld world = ServeWorld::Create("serve_queries", 8, 8);
  obs::MetricsRegistry metrics;
  ExecContext context;
  context.metrics = &metrics;
  auto service =
      TrendService::Create(TestConfig(world.store_dir.string()), context);
  ASSERT_TRUE(service.ok()) << service.status();
  auto reader = (*service)->hub().Register();
  ASSERT_TRUE(reader.ok());

  JsonValue health = (*service)->Handle(MakeRequest("health"), *reader);
  EXPECT_TRUE(health.GetBool("ok", false)) << health.Serialize();
  EXPECT_EQ(health.GetInt("version", -1), 1);
  EXPECT_EQ(health.GetInt("months", -1), 8);
  const JsonValue* data = health.Find("data");
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->GetInt("protocol", -1), kProtocolVersion);
  EXPECT_GT(data->GetInt("diseases", 0), 0);
  EXPECT_GT(data->GetInt("prescriptions", 0), 0);

  JsonValue series = MakeRequest("series");
  series.Set("kind", JsonValue::String("disease"));
  series.Set("disease", JsonValue::String("flu"));
  JsonValue row = (*service)->Handle(series, *reader);
  EXPECT_TRUE(row.GetBool("ok", false)) << row.Serialize();
  EXPECT_EQ(row.Find("data")->GetString("kind"), "disease");
  EXPECT_EQ(row.Find("data")->GetString("disease"), "flu");
  EXPECT_EQ(row.Find("data")->GetString("medicine"), "-");

  JsonValue top = MakeRequest("top_changes");
  top.Set("k", JsonValue::Int(3));
  JsonValue changes = (*service)->Handle(top, *reader);
  EXPECT_TRUE(changes.GetBool("ok", false)) << changes.Serialize();
  const JsonValue* rows = changes.Find("data")->Find("changes");
  ASSERT_NE(rows, nullptr);
  EXPECT_LE(rows->items().size(), 3u);
  // Ranked by criterion drop, descending.
  for (std::size_t i = 1; i < rows->items().size(); ++i) {
    EXPECT_GE(rows->items()[i - 1].GetDouble("criterion_drop", 0.0),
              rows->items()[i].GetDouble("criterion_drop", 0.0));
  }

  // Error envelopes: unknown op, unknown name, protocol mismatch.
  EXPECT_EQ(ErrorCode((*service)->Handle(MakeRequest("nope"), *reader)),
            "bad_request");
  JsonValue missing = MakeRequest("series");
  missing.Set("kind", JsonValue::String("disease"));
  missing.Set("disease", JsonValue::String("no-such-disease"));
  EXPECT_EQ(ErrorCode((*service)->Handle(missing, *reader)), "not_found");
  JsonValue future = MakeRequest("health");
  future.Set("protocol", JsonValue::Int(99));
  EXPECT_EQ(ErrorCode((*service)->Handle(future, *reader)), "bad_request");

  // Every op above also bumped its pre-resolved counters.
  EXPECT_EQ(metrics.counter_value("serve.requests.health"), 2u);
  EXPECT_EQ(metrics.counter_value("serve.requests.series"), 2u);
  EXPECT_EQ(metrics.counter_value("serve.errors.series"), 1u);
  EXPECT_EQ(metrics.counter_value("serve.requests.unknown"), 1u);
}

TEST(ServiceTest, ServedReportIsByteIdenticalToTheOfflinePipeline) {
  ServeWorld world = ServeWorld::Create("serve_identity", 8, 8);
  auto service =
      TrendService::Create(TestConfig(world.store_dir.string()), {});
  ASSERT_TRUE(service.ok()) << service.status();
  auto reader = (*service)->hub().Register();
  ASSERT_TRUE(reader.ok());

  JsonValue response =
      (*service)->Handle(MakeRequest("report_csv"), *reader);
  ASSERT_TRUE(response.GetBool("ok", false)) << response.Serialize();
  const std::string served = response.Find("data")->GetString("csv");
  EXPECT_FALSE(served.empty());
  EXPECT_EQ(served, world.OfflineReportCsv(8));
}

TEST(ServiceTest, RegistryRejectsUnknownAndMalformedParameters) {
  ServeWorld world = ServeWorld::Create("serve_registry", 8, 8);
  auto service =
      TrendService::Create(TestConfig(world.store_dir.string()), {});
  ASSERT_TRUE(service.ok()) << service.status();
  auto reader = (*service)->hub().Register();
  ASSERT_TRUE(reader.ok());

  // An unknown member is rejected naming the offender (protocol v2
  // behavior; a typo'd parameter is a client bug, not noise).
  JsonValue typo = MakeRequest("series");
  typo.Set("kind", JsonValue::String("disease"));
  typo.Set("diseaze", JsonValue::String("flu"));
  JsonValue rejected = (*service)->Handle(typo, *reader);
  EXPECT_EQ(ErrorCode(rejected), "bad_request");
  EXPECT_NE(rejected.Find("error")->GetString("message").find("diseaze"),
            std::string::npos)
      << rejected.Serialize();
  EXPECT_NE(rejected.Find("error")->GetString("message").find("series"),
            std::string::npos);

  // A declared parameter with the wrong JSON shape is also a
  // bad_request, before the handler ever runs.
  JsonValue shape = MakeRequest("top_changes");
  shape.Set("k", JsonValue::String("3"));
  JsonValue wrong = (*service)->Handle(shape, *reader);
  EXPECT_EQ(ErrorCode(wrong), "bad_request");
  EXPECT_NE(wrong.Find("error")->GetString("message").find("integer"),
            std::string::npos)
      << wrong.Serialize();

  // Missing required parameters fail schema validation uniformly.
  EXPECT_EQ(ErrorCode((*service)->Handle(MakeRequest("drilldown"), *reader)),
            "bad_request");
  EXPECT_EQ(ErrorCode((*service)->Handle(MakeRequest("explain"), *reader)),
            "bad_request");

  // "protocol" is an envelope member, never an unknown parameter.
  JsonValue versioned = MakeRequest("health");
  versioned.Set("protocol", JsonValue::Int(kProtocolVersion));
  EXPECT_TRUE((*service)->Handle(versioned, *reader).GetBool("ok", false));

  // The registry table itself: every op resolves, and the generated
  // usage text mentions each one (the docs cross-check relies on it).
  EXPECT_EQ(EndpointTable().size(), kNumEndpoints);
  const std::string usage = BuildOpsUsageText();
  for (const EndpointSpec& endpoint : EndpointTable()) {
    EXPECT_NE(FindEndpoint(endpoint.name), nullptr) << endpoint.name;
    EXPECT_NE(usage.find(endpoint.name), std::string::npos) << endpoint.name;
  }
  EXPECT_EQ(FindEndpoint("nope"), nullptr);
  // Usage prints CLI-style flags: wire "min_share" appears dashed.
  EXPECT_NE(usage.find("--min-share"), std::string::npos);
  EXPECT_EQ(usage.find("min_share"), std::string::npos);
}

TEST(ServiceTest, ServesDrilldownAndExplainFromTheSnapshot) {
  ServeWorld world = ServeWorld::Create("serve_drill", 8, 8);
  obs::MetricsRegistry metrics;
  ExecContext context;
  context.metrics = &metrics;
  auto service =
      TrendService::Create(TestConfig(world.store_dir.string()), context);
  ASSERT_TRUE(service.ok()) << service.status();
  auto reader = (*service)->hub().Register();
  ASSERT_TRUE(reader.ok());

  // Every axis is precomputed into the snapshot and served as-is.
  for (const char* axis : {"medicine", "disease", "hospital"}) {
    JsonValue request = MakeRequest("drilldown");
    request.Set("axis", JsonValue::String(axis));
    JsonValue response = (*service)->Handle(request, *reader);
    ASSERT_TRUE(response.GetBool("ok", false)) << response.Serialize();
    const JsonValue* data = response.Find("data");
    ASSERT_NE(data, nullptr);
    EXPECT_EQ(data->GetString("axis"), axis);
    const JsonValue* nodes = data->Find("nodes");
    ASSERT_NE(nodes, nullptr) << axis;
    ASSERT_FALSE(nodes->items().empty()) << axis;
    EXPECT_EQ(nodes->items()[0].GetString("name"), "all");
    EXPECT_EQ(data->GetInt("months", -1), 8);
  }
  EXPECT_GT(metrics.counter_value("trend.rollup.nodes"), 0u);

  // Unknown axis / node / changeless target surface as typed errors.
  JsonValue bad_axis = MakeRequest("drilldown");
  bad_axis.Set("axis", JsonValue::String("city"));
  EXPECT_EQ(ErrorCode((*service)->Handle(bad_axis, *reader)), "bad_request");

  JsonValue explain = MakeRequest("explain");
  explain.Set("axis", JsonValue::String("medicine"));
  explain.Set("node", JsonValue::String("no-such-node"));
  EXPECT_EQ(ErrorCode((*service)->Handle(explain, *reader)), "not_found");
}

TEST(ServiceTest, ServedDrilldownIsByteIdenticalToTheOfflineBuild) {
  ServeWorld world = ServeWorld::Create("serve_drill_identity", 8, 8);
  auto service =
      TrendService::Create(TestConfig(world.store_dir.string()), {});
  ASSERT_TRUE(service.ok()) << service.status();
  auto reader = (*service)->hub().Register();
  ASSERT_TRUE(reader.ok());

  // The offline twin: `mictrend drilldown --json` over the same months.
  const MicCorpus corpus = world.ParseCorpus(8);
  trend::PipelineConfig config = TestConfig(world.store_dir.string());
  config.drilldown_axes = {trend::DrillAxis::kMedicine};
  auto offline = trend::RunPipeline(corpus, config);
  ASSERT_TRUE(offline.ok()) << offline.status();
  ASSERT_EQ(offline->drilldowns.size(), 1u);
  const std::string offline_json =
      DrillDownToJson(offline->drilldowns.front()).Serialize();

  JsonValue request = MakeRequest("drilldown");
  request.Set("axis", JsonValue::String("medicine"));
  JsonValue response = (*service)->Handle(request, *reader);
  ASSERT_TRUE(response.GetBool("ok", false)) << response.Serialize();
  EXPECT_EQ(response.Find("data")->Serialize(), offline_json);
}

TEST(ServiceTest, IngestAppendsPublishesAndStaysByteIdentical) {
  ServeWorld world = ServeWorld::Create("serve_ingest", 9, 7);
  obs::MetricsRegistry metrics;
  ExecContext context;
  context.metrics = &metrics;
  auto service =
      TrendService::Create(TestConfig(world.store_dir.string()), context);
  ASSERT_TRUE(service.ok()) << service.status();
  auto reader = (*service)->hub().Register();
  ASSERT_TRUE(reader.ok());

  // Live ingest: the full-corpus CSV (months 0..7) appends month 7.
  JsonValue ingest = MakeRequest("ingest");
  ingest.Set("corpus", JsonValue::String(world.corpus_csv[8]));
  ingest.Set("hospitals", JsonValue::String(world.hospitals_csv));
  JsonValue response = (*service)->Handle(ingest, *reader);
  ASSERT_TRUE(response.GetBool("ok", false)) << response.Serialize();
  EXPECT_EQ(response.GetInt("version", -1), 2);
  EXPECT_EQ(response.GetInt("months", -1), 8);
  EXPECT_EQ(response.Find("data")->GetInt("appended", -1), 1);

  JsonValue report = (*service)->Handle(MakeRequest("report_csv"), *reader);
  ASSERT_TRUE(report.GetBool("ok", false));
  EXPECT_EQ(report.GetInt("version", -1), 2);
  EXPECT_EQ(report.Find("data")->GetString("csv"),
            world.OfflineReportCsv(8));

  // Re-ingesting the same corpus is a no-op append but still publishes
  // a fresh snapshot of the unchanged world.
  JsonValue again = (*service)->Handle(ingest, *reader);
  ASSERT_TRUE(again.GetBool("ok", false)) << again.Serialize();
  EXPECT_EQ(again.Find("data")->GetInt("appended", -1), 0);
  EXPECT_EQ(again.GetInt("months", -1), 8);

  // Refresh (no corpus in the request) picks up an external append.
  {
    MicCorpus nine = world.ParseCorpus(9);
    auto external = store::ClaimStore::Open(world.store_dir.string());
    ASSERT_TRUE(external.ok());
    auto appended = store::ImportCorpus(nine, *external);
    ASSERT_TRUE(appended.ok());
    EXPECT_EQ(*appended, 1u);
  }
  JsonValue refresh = (*service)->Handle(MakeRequest("ingest"), *reader);
  ASSERT_TRUE(refresh.GetBool("ok", false)) << refresh.Serialize();
  EXPECT_EQ(refresh.GetInt("months", -1), 9);
  EXPECT_EQ(refresh.Find("data")->GetInt("appended", -1), 1);

  JsonValue final_report =
      (*service)->Handle(MakeRequest("report_csv"), *reader);
  EXPECT_EQ(final_report.Find("data")->GetString("csv"),
            world.OfflineReportCsv(9));
  EXPECT_EQ(metrics.counter_value("serve.snapshots_published"), 4u);
  EXPECT_EQ(metrics.counter_value("serve.ingest.months_appended"), 2u);
}

TEST(ServiceTest, WarmIngestHitsTheCacheInsteadOfRefitting) {
  ServeWorld world = ServeWorld::Create("serve_warm", 8, 7);
  obs::MetricsRegistry metrics;
  cache::CacheStore cache((FreshDir("serve_warm_cache") / "c").string(),
                          cache::CacheMode::kReadWrite, &metrics);
  ASSERT_TRUE(cache.Open().ok());
  ExecContext context;
  context.metrics = &metrics;
  context.cache = &cache;
  trend::PipelineConfig config = TestConfig(world.store_dir.string());
  config.cache.mode = cache::CacheMode::kReadWrite;
  config.cache.directory = cache.directory();

  auto service = TrendService::Create(config, context);
  ASSERT_TRUE(service.ok()) << service.status();
  auto reader = (*service)->hub().Register();
  ASSERT_TRUE(reader.ok());
  const std::uint64_t cold_hits = metrics.counter_value("cache.hits");

  JsonValue ingest = MakeRequest("ingest");
  ingest.Set("corpus", JsonValue::String(world.corpus_csv[8]));
  ingest.Set("hospitals", JsonValue::String(world.hospitals_csv));
  JsonValue response = (*service)->Handle(ingest, *reader);
  ASSERT_TRUE(response.GetBool("ok", false)) << response.Serialize();
  EXPECT_EQ(response.GetInt("months", -1), 8);
  // The rebuild warm-started from the version-1 snapshot's cache
  // entries instead of refitting the first seven months cold.
  EXPECT_GT(metrics.counter_value("cache.hits"), cold_hits);
}

// The torn-snapshot detector. Reader threads hammer health/report_csv
// while the main thread ingests two more months; every response must be
// internally consistent with exactly one published version.
TEST(ServiceTest, ConcurrentQueriesNeverObserveATornSnapshot) {
  ServeWorld world = ServeWorld::Create("serve_hammer", 9, 7);
  auto service =
      TrendService::Create(TestConfig(world.store_dir.string()), {});
  ASSERT_TRUE(service.ok()) << service.status();
  constexpr std::size_t kBaseMonths = 7;

  // The offline truth each version must serve, keyed by version.
  const std::string expected_csv[4] = {
      "", world.OfflineReportCsv(7), world.OfflineReportCsv(8),
      world.OfflineReportCsv(9)};

  constexpr int kReaders = 4;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<std::uint64_t> responses{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kReaders; ++i) {
    threads.emplace_back([&, i] {
      auto reader = (*service)->hub().Register();
      if (!reader.ok()) {
        ++failures;
        return;
      }
      std::uint64_t last_version = 0;
      while (!stop.load(std::memory_order_seq_cst)) {
        const bool want_csv = (responses.fetch_add(1) + i) % 2 == 0;
        JsonValue response = (*service)->Handle(
            MakeRequest(want_csv ? "report_csv" : "health"), *reader);
        if (!response.GetBool("ok", false)) {
          ++failures;
          continue;
        }
        const std::int64_t version = response.GetInt("version", -1);
        const std::int64_t months = response.GetInt("months", -1);
        // The consistency invariant: every ingest below appends exactly
        // one month, so months is a function of version.
        if (version < 1 || version > 3 ||
            months != static_cast<std::int64_t>(kBaseMonths) + version - 1) {
          ++failures;
          continue;
        }
        if (version < static_cast<std::int64_t>(last_version)) {
          ++failures;  // a reader must never travel back in time
          continue;
        }
        last_version = static_cast<std::uint64_t>(version);
        if (want_csv &&
            response.Find("data")->GetString("csv") !=
                expected_csv[version]) {
          ++failures;  // torn: payload from a different version
        }
      }
    });
  }

  auto ingest_reader = (*service)->hub().Register();
  ASSERT_TRUE(ingest_reader.ok());
  for (int months = 8; months <= 9; ++months) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    JsonValue ingest = MakeRequest("ingest");
    ingest.Set("corpus", JsonValue::String(world.corpus_csv[months]));
    ingest.Set("hospitals", JsonValue::String(world.hospitals_csv));
    JsonValue response = (*service)->Handle(ingest, *ingest_reader);
    ASSERT_TRUE(response.GetBool("ok", false)) << response.Serialize();
    EXPECT_EQ(response.GetInt("months", -1), months);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  stop.store(true, std::memory_order_seq_cst);
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(responses.load(), 0u);
  EXPECT_EQ((*service)->hub().UnsafeCurrent()->version, 3u);
}

// ----------------------------------------------------------- TcpServer

TEST(ServerTest, ServesQueriesIngestAndShutdownOverLoopback) {
  ServeWorld world = ServeWorld::Create("serve_tcp", 8, 7);
  auto service =
      TrendService::Create(TestConfig(world.store_dir.string()), {});
  ASSERT_TRUE(service.ok()) << service.status();

  ServerOptions options;
  options.num_workers = 2;
  options.limits.poll_interval_ms = 10;
  auto server = TcpServer::Start(service->get(), options);
  ASSERT_TRUE(server.ok()) << server.status();
  EXPECT_GT((*server)->port(), 0);

  std::thread serving([&server] {
    EXPECT_TRUE((*server)->Serve().ok());
  });

  auto fd = ConnectTcp("127.0.0.1", (*server)->port());
  ASSERT_TRUE(fd.ok()) << fd.status();
  WireLimits limits;
  limits.timeout_ms = 30000;

  auto health = RoundTrip(*fd, MakeRequest("health"), limits);
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_TRUE(health->GetBool("ok", false));
  EXPECT_EQ(health->GetInt("months", -1), 7);

  JsonValue ingest = MakeRequest("ingest");
  ingest.Set("corpus", JsonValue::String(world.corpus_csv[8]));
  ingest.Set("hospitals", JsonValue::String(world.hospitals_csv));
  auto appended = RoundTrip(*fd, ingest, limits);
  ASSERT_TRUE(appended.ok()) << appended.status();
  EXPECT_TRUE(appended->GetBool("ok", false)) << appended->Serialize();
  EXPECT_EQ(appended->GetInt("months", -1), 8);

  // A second connection sees the new snapshot.
  auto fd2 = ConnectTcp("127.0.0.1", (*server)->port());
  ASSERT_TRUE(fd2.ok());
  auto health2 = RoundTrip(*fd2, MakeRequest("health"), limits);
  ASSERT_TRUE(health2.ok());
  EXPECT_EQ(health2->GetInt("version", -1), 2);
  EXPECT_EQ(health2->GetInt("months", -1), 8);
  close(*fd2);

  auto stopping = RoundTrip(*fd, MakeRequest("shutdown"), limits);
  ASSERT_TRUE(stopping.ok()) << stopping.status();
  EXPECT_TRUE(stopping->GetBool("ok", false));
  EXPECT_TRUE(stopping->Find("data")->GetBool("stopping", false));
  close(*fd);

  serving.join();  // the shutdown request winds the accept loop down
}

TEST(ServerTest, OversizeFrameIsAnsweredAndTheConnectionClosed) {
  ServeWorld world = ServeWorld::Create("serve_toolarge", 6, 6);
  auto service =
      TrendService::Create(TestConfig(world.store_dir.string()), {});
  ASSERT_TRUE(service.ok()) << service.status();

  ServerOptions options;
  options.num_workers = 1;
  options.limits.max_frame_bytes = 256;
  options.limits.poll_interval_ms = 10;
  auto server = TcpServer::Start(service->get(), options);
  ASSERT_TRUE(server.ok());
  std::thread serving([&server] { (*server)->Serve(); });

  auto fd = ConnectTcp("127.0.0.1", (*server)->port());
  ASSERT_TRUE(fd.ok());
  // A syntactically valid request padded past the server's frame limit
  // (the client's own limit is larger, so WriteFrame allows it).
  JsonValue request = MakeRequest("health");
  request.Set("padding", JsonValue::String(std::string(512, 'x')));
  ASSERT_TRUE(WriteFrame(*fd, request.Serialize(), 8u << 20).ok());
  WireLimits limits;
  limits.timeout_ms = 30000;
  auto response = ReadFrame(*fd, limits);
  ASSERT_TRUE(response.ok()) << response.status();
  auto parsed = JsonValue::Parse(*response);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->GetBool("ok", true));
  EXPECT_EQ(ErrorCode(*parsed), "frame_too_large");
  // The server closes the connection after answering.
  EXPECT_EQ(ReadFrame(*fd, limits).status().code(), StatusCode::kNotFound);
  close(*fd);

  (*server)->RequestStop();
  serving.join();
}

TEST(ServiceTest, StatsOpReportsWindowedTelemetry) {
  ServeWorld world = ServeWorld::Create("serve_stats", 6, 6);
  auto service =
      TrendService::Create(TestConfig(world.store_dir.string()), {});
  ASSERT_TRUE(service.ok()) << service.status();
  auto reader = (*service)->hub().Register();
  ASSERT_TRUE(reader.ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE((*service)
                    ->Handle(MakeRequest("health"), *reader)
                    .GetBool("ok", false));
  }
  JsonValue stats = (*service)->Handle(MakeRequest("stats"), *reader);
  ASSERT_TRUE(stats.GetBool("ok", false)) << stats.Serialize();
  const JsonValue* data = stats.Find("data");
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->GetInt("slot_width_seconds", -1), 10);
  EXPECT_EQ(data->GetInt("slots", -1), 60);
  const JsonValue* windows = data->Find("windows");
  ASSERT_NE(windows, nullptr);
  const JsonValue* minute = windows->Find("60s");
  ASSERT_NE(minute, nullptr);
  const JsonValue* health = minute->Find("serve.health");
  ASSERT_NE(health, nullptr);
  EXPECT_EQ(health->GetInt("count", -1), 3);
  EXPECT_EQ(health->GetInt("errors", -1), 0);
  EXPECT_GT(health->GetDouble("rps", 0.0), 0.0);
  EXPECT_GT(health->GetDouble("p99", 0.0), 0.0);
  // A request's own window sample lands after its response is built, so
  // the first stats call is visible to the second.
  JsonValue again = (*service)->Handle(MakeRequest("stats"), *reader);
  EXPECT_EQ(again.Find("data")
                ->Find("windows")
                ->Find("60s")
                ->Find("serve.stats")
                ->GetInt("count", -1),
            1);
  // Errors count into the same window.
  (void)(*service)->Handle(MakeRequest("nope"), *reader);
  JsonValue after = (*service)->Handle(MakeRequest("stats"), *reader);
  const JsonValue* unknown = after.Find("data")
                                 ->Find("windows")
                                 ->Find("60s")
                                 ->Find("serve.unknown");
  ASSERT_NE(unknown, nullptr);
  EXPECT_EQ(unknown->GetInt("count", -1), 1);
  EXPECT_EQ(unknown->GetInt("errors", -1), 1);
}

TEST(ServerTest, RequestStopWindsDownAnIdleServer) {
  ServeWorld world = ServeWorld::Create("serve_stop", 6, 6);
  auto service =
      TrendService::Create(TestConfig(world.store_dir.string()), {});
  ASSERT_TRUE(service.ok()) << service.status();

  ServerOptions options;
  options.num_workers = 2;
  options.limits.poll_interval_ms = 10;
  auto server = TcpServer::Start(service->get(), options);
  ASSERT_TRUE(server.ok());
  std::thread serving([&server] {
    EXPECT_TRUE((*server)->Serve().ok());
  });
  // An open but idle connection must not block shutdown: the worker's
  // blocked frame read observes the stop flag within one poll interval.
  auto fd = ConnectTcp("127.0.0.1", (*server)->port());
  ASSERT_TRUE(fd.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  (*server)->RequestStop();
  serving.join();
  close(*fd);
}

// --------------------------------------------- transport observability

// One-shot HTTP exchange against the daemon's port: sends `request`
// verbatim and returns everything until the server closes.
std::string HttpExchange(int port, const std::string& request) {
  auto fd = ConnectTcp("127.0.0.1", port);
  EXPECT_TRUE(fd.ok()) << fd.status();
  if (!fd.ok()) return "";
  EXPECT_EQ(write(*fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = read(*fd, buffer, sizeof(buffer));
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  close(*fd);
  return response;
}

std::string HttpBody(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

std::vector<JsonValue> ReadAccessLog(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::vector<JsonValue> records;
  std::string line;
  while (std::getline(in, line)) {
    auto parsed = JsonValue::Parse(line);
    EXPECT_TRUE(parsed.ok()) << line;
    if (parsed.ok()) records.push_back(std::move(*parsed));
  }
  return records;
}

TEST(ServerTest, AnswersHttpMetricsHealthzAndVarzOnTheFramedPort) {
  ServeWorld world = ServeWorld::Create("serve_http", 6, 6);
  obs::MetricsRegistry metrics;
  ExecContext context;
  context.metrics = &metrics;
  auto service =
      TrendService::Create(TestConfig(world.store_dir.string()), context);
  ASSERT_TRUE(service.ok()) << service.status();

  ServerOptions options;
  options.num_workers = 2;
  options.limits.poll_interval_ms = 10;
  auto server = TcpServer::Start(service->get(), options);
  ASSERT_TRUE(server.ok()) << server.status();
  std::thread serving([&server] { (*server)->Serve(); });
  const int port = (*server)->port();

  // One framed request first, so the windowed stats have something to
  // show and the multiplexer is exercised in both directions.
  {
    auto fd = ConnectTcp("127.0.0.1", port);
    ASSERT_TRUE(fd.ok());
    WireLimits limits;
    limits.timeout_ms = 30000;
    auto health = RoundTrip(*fd, MakeRequest("health"), limits);
    ASSERT_TRUE(health.ok()) << health.status();
    EXPECT_TRUE(health->GetBool("ok", false));
    close(*fd);
  }

  const std::string healthz =
      HttpExchange(port, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_EQ(healthz.rfind("HTTP/1.1 200 OK", 0), 0u) << healthz;
  EXPECT_EQ(HttpBody(healthz), "ok\n");

  const std::string exposition =
      HttpExchange(port, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_EQ(exposition.rfind("HTTP/1.1 200 OK", 0), 0u);
  EXPECT_NE(exposition.find("application/openmetrics-text"),
            std::string::npos);
  const std::string body = HttpBody(exposition);
  EXPECT_NE(
      body.find("# TYPE mictrend_serve_requests_health counter"),
      std::string::npos);
  EXPECT_NE(body.find("mictrend_serve_requests_health_total 1"),
            std::string::npos);
  EXPECT_NE(
      body.find(
          "mictrend_window_requests{channel=\"serve.health\",window=\"60s\"} 1"),
      std::string::npos);
  EXPECT_NE(body.find("mictrend_window_latency_seconds{"
                      "channel=\"serve.health\",window=\"60s\","
                      "quantile=\"0.99\"}"),
            std::string::npos);
  // OpenMetrics requires the EOF marker as the final line.
  EXPECT_EQ(body.substr(body.size() - 6), "# EOF\n");

  const std::string varz =
      HttpExchange(port, "GET /varz HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_EQ(varz.rfind("HTTP/1.1 200 OK", 0), 0u);
  auto parsed = JsonValue::Parse(HttpBody(varz));
  ASSERT_TRUE(parsed.ok()) << HttpBody(varz);
  const JsonValue* health_window =
      parsed->Find("windows")->Find("60s")->Find("serve.health");
  ASSERT_NE(health_window, nullptr);
  EXPECT_EQ(health_window->GetInt("count", -1), 1);

  // HEAD answers the same Content-Length with no body; unknown targets
  // are 404, and both close the connection after one exchange.
  const std::string head =
      HttpExchange(port, "HEAD /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_EQ(head.rfind("HTTP/1.1 200 OK", 0), 0u);
  EXPECT_NE(head.find("Content-Length: 3"), std::string::npos);
  EXPECT_EQ(HttpBody(head), "");
  const std::string missing =
      HttpExchange(port, "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_EQ(missing.rfind("HTTP/1.1 404 Not Found", 0), 0u);

  (*server)->RequestStop();
  serving.join();
}

TEST(ServerTest, SaturatedPendingQueueRejectsWithCounterAndAccessLog) {
  ServeWorld world = ServeWorld::Create("serve_overload", 6, 6);
  obs::MetricsRegistry metrics;
  ExecContext context;
  context.metrics = &metrics;
  auto service =
      TrendService::Create(TestConfig(world.store_dir.string()), context);
  ASSERT_TRUE(service.ok()) << service.status();

  ServerOptions options;
  options.num_workers = 1;
  // max_pending 0 makes every accepted connection an overload — the
  // deterministic way to pin the rejection path without racing a
  // worker for the queue.
  options.max_pending = 0;
  options.access_log_path = (world.dir / "access.jsonl").string();
  options.limits.poll_interval_ms = 10;
  auto server = TcpServer::Start(service->get(), options);
  ASSERT_TRUE(server.ok()) << server.status();
  std::thread serving([&server] { (*server)->Serve(); });

  auto fd = ConnectTcp("127.0.0.1", (*server)->port());
  ASSERT_TRUE(fd.ok());
  WireLimits limits;
  limits.timeout_ms = 30000;
  // The server answers unprompted before closing.
  auto response = ReadFrame(*fd, limits);
  ASSERT_TRUE(response.ok()) << response.status();
  auto parsed = JsonValue::Parse(*response);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->GetBool("ok", true));
  EXPECT_EQ(ErrorCode(*parsed), "overloaded");
  close(*fd);

  (*server)->RequestStop();
  serving.join();

  EXPECT_EQ(metrics.counter_value("serve.overload_rejections"), 1u);
  EXPECT_EQ(metrics.counter_value("serve.rejected.overloaded"), 1u);
  const std::vector<JsonValue> records =
      ReadAccessLog(options.access_log_path);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].GetString("endpoint"), "connect");
  EXPECT_EQ(records[0].GetString("error"), "overloaded");
  EXPECT_FALSE(records[0].GetString("id").empty());
}

TEST(ServerTest, AccessLogAndRequestScopedTraceShareIds) {
  ServeWorld world = ServeWorld::Create("serve_access", 7, 6);
  obs::MetricsRegistry metrics;
  obs::TraceLog trace;
  ExecContext context;
  context.metrics = &metrics;
  context.trace = &trace;
  auto service =
      TrendService::Create(TestConfig(world.store_dir.string()), context);
  ASSERT_TRUE(service.ok()) << service.status();

  ServerOptions options;
  options.num_workers = 1;
  options.access_log_path = (world.dir / "access.jsonl").string();
  // 1 ms: a health round trip stays under it, an ingest rebuild does
  // not, so tail-based retention keeps exactly the slow request.
  options.slow_request_threshold_ms = 1;
  options.limits.poll_interval_ms = 10;
  auto server = TcpServer::Start(service->get(), options);
  ASSERT_TRUE(server.ok()) << server.status();
  std::thread serving([&server] { (*server)->Serve(); });

  auto fd = ConnectTcp("127.0.0.1", (*server)->port());
  ASSERT_TRUE(fd.ok());
  WireLimits limits;
  limits.timeout_ms = 30000;
  auto health = RoundTrip(*fd, MakeRequest("health"), limits);
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_TRUE(health->GetBool("ok", false));
  JsonValue ingest = MakeRequest("ingest");
  ingest.Set("corpus", JsonValue::String(world.corpus_csv[7]));
  ingest.Set("hospitals", JsonValue::String(world.hospitals_csv));
  auto appended = RoundTrip(*fd, ingest, limits);
  ASSERT_TRUE(appended.ok()) << appended.status();
  EXPECT_TRUE(appended->GetBool("ok", false)) << appended->Serialize();
  close(*fd);

  (*server)->RequestStop();
  serving.join();

  const std::vector<JsonValue> records =
      ReadAccessLog(options.access_log_path);
  ASSERT_EQ(records.size(), 2u);
  const std::string health_id = records[0].GetString("id");
  const std::string ingest_id = records[1].GetString("id");
  EXPECT_EQ(records[0].GetString("endpoint"), "health");
  EXPECT_EQ(records[1].GetString("endpoint"), "ingest");
  EXPECT_TRUE(records[0].GetBool("ok", false));
  EXPECT_TRUE(records[1].GetBool("ok", false));
  EXPECT_EQ(records[0].GetInt("version", -1), 1);
  EXPECT_EQ(records[1].GetInt("version", -1), 2);
  EXPECT_FALSE(health_id.empty());
  EXPECT_NE(health_id, ingest_id);
  EXPECT_GT(records[0].GetDouble("latency_seconds", 0.0), 0.0);
  EXPECT_GT(records[0].GetInt("bytes_in", 0), 0);
  EXPECT_GT(records[0].GetInt("bytes_out", 0), 0);

  // The ids in the log are the ids on the trace timeline: every event
  // the request produced is nested under "req/<id>/".
  std::vector<std::string> names;
  for (const obs::ThreadTrace& thread : trace.Snapshot()) {
    for (const obs::TraceEvent& event : thread.events) {
      names.push_back(event.name);
    }
  }
  const auto has = [&names](const std::string& name) {
    for (const std::string& candidate : names) {
      if (candidate == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("req/" + health_id + "/serve/health")) << health_id;
  EXPECT_TRUE(has("req/" + ingest_id + "/serve/ingest")) << ingest_id;

  // Tail-based sampling retained the slow ingest's span tree under its
  // request id — and only that request.
  const std::vector<obs::RetainedTrace> retained =
      trace.RetainedSnapshot();
  ASSERT_EQ(retained.size(), 1u);
  EXPECT_EQ(retained[0].label, ingest_id);
  ASSERT_FALSE(retained[0].events.empty());
  bool saw_ingest_event = false;
  for (const obs::TraceEvent& event : retained[0].events) {
    if (event.name == "req/" + ingest_id + "/serve/ingest") {
      saw_ingest_event = true;
    }
  }
  EXPECT_TRUE(saw_ingest_event);
}

TEST(ServerTest, WatchdogCountsASwapStalledOnAPinnedReader) {
  ServeWorld world = ServeWorld::Create("serve_stall", 7, 6);
  obs::MetricsRegistry metrics;
  ExecContext context;
  context.metrics = &metrics;
  auto service =
      TrendService::Create(TestConfig(world.store_dir.string()), context);
  ASSERT_TRUE(service.ok()) << service.status();

  ServerOptions options;
  options.num_workers = 1;
  options.limits.poll_interval_ms = 10;
  options.swap_stall_deadline_ms = 50;
  auto server = TcpServer::Start(service->get(), options);
  ASSERT_TRUE(server.ok()) << server.status();
  std::thread serving([&server] { (*server)->Serve(); });

  auto pinner = (*service)->hub().Register();
  ASSERT_TRUE(pinner.ok());
  std::thread ingesting;
  {
    // Pin the live snapshot so the ingest's publish cannot drain.
    SnapshotPin pin = (*service)->hub().Acquire(*pinner);
    EXPECT_EQ(pin->version, 1u);
    ingesting = std::thread([&server, &world] {
      auto fd = ConnectTcp("127.0.0.1", (*server)->port());
      ASSERT_TRUE(fd.ok());
      WireLimits limits;
      limits.timeout_ms = 30000;
      JsonValue ingest = MakeRequest("ingest");
      ingest.Set("corpus", JsonValue::String(world.corpus_csv[7]));
      ingest.Set("hospitals", JsonValue::String(world.hospitals_csv));
      auto response = RoundTrip(*fd, ingest, limits);
      ASSERT_TRUE(response.ok()) << response.status();
      EXPECT_TRUE(response->GetBool("ok", false))
          << response->Serialize();
      close(*fd);
    });
    // The publish is now stuck on our pin; the watchdog must flag the
    // episode within deadline + a few poll intervals.
    for (int i = 0;
         i < 500 && metrics.counter_value("serve.swap.stalls") == 0;
         ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(metrics.counter_value("serve.swap.stalls"), 1u);
    // One stuck drain is one episode, however long it lasts.
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    EXPECT_EQ(metrics.counter_value("serve.swap.stalls"), 1u);
  }  // pin released -> the drain completes
  ingesting.join();

  (*server)->RequestStop();
  serving.join();
  EXPECT_EQ(metrics.counter_value("serve.swap.stalls"), 1u);
}

TEST(ServerTest, TraceRingDropRateIsExportedPerWindow) {
  ServeWorld world = ServeWorld::Create("serve_drops", 6, 6);
  obs::MetricsRegistry metrics;
  // A ring this small wraps after a handful of requests, so the hammer
  // below is guaranteed to drop events.
  obs::TraceLog trace(8);
  ExecContext context;
  context.metrics = &metrics;
  context.trace = &trace;
  auto service =
      TrendService::Create(TestConfig(world.store_dir.string()), context);
  ASSERT_TRUE(service.ok()) << service.status();

  ServerOptions options;
  options.num_workers = 2;
  options.limits.poll_interval_ms = 10;
  options.slow_request_threshold_ms = 0;  // retention off: drops only
  auto server = TcpServer::Start(service->get(), options);
  ASSERT_TRUE(server.ok()) << server.status();
  std::thread serving([&server] { (*server)->Serve(); });

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 30;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&server] {
      auto fd = ConnectTcp("127.0.0.1", (*server)->port());
      ASSERT_TRUE(fd.ok());
      WireLimits limits;
      limits.timeout_ms = 30000;
      for (int i = 0; i < kRequestsPerClient; ++i) {
        auto response = RoundTrip(*fd, MakeRequest("health"), limits);
        ASSERT_TRUE(response.ok()) << response.status();
        EXPECT_TRUE(response->GetBool("ok", false));
      }
      close(*fd);
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_GT(trace.dropped_count(), 0u);

  // The watchdog samples the drop totals into gauges and feeds the
  // per-interval delta into the "obs.trace.dropped" window channel.
  const auto dropped_gauge = [&metrics] {
    for (const auto& [name, value] : metrics.SnapshotGauges()) {
      if (name == "obs.trace.dropped") return value;
    }
    return -1.0;
  };
  for (int i = 0; i < 500 && dropped_gauge() <= 0.0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const double first = dropped_gauge();
  EXPECT_GT(first, 0.0);

  auto fd = ConnectTcp("127.0.0.1", (*server)->port());
  ASSERT_TRUE(fd.ok());
  WireLimits limits;
  limits.timeout_ms = 30000;
  auto stats = RoundTrip(*fd, MakeRequest("stats"), limits);
  ASSERT_TRUE(stats.ok()) << stats.status();
  ASSERT_TRUE(stats->GetBool("ok", false)) << stats->Serialize();
  const JsonValue* drops = stats->Find("data")
                               ->Find("windows")
                               ->Find("60s")
                               ->Find("obs.trace.dropped");
  ASSERT_NE(drops, nullptr);
  EXPECT_GT(drops->GetInt("count", 0), 0);
  EXPECT_GT(drops->GetDouble("rps", 0.0), 0.0);
  close(*fd);

  // The exported total is monotone: more traffic can only grow it.
  const double second = dropped_gauge();
  EXPECT_GE(second, first);

  (*server)->RequestStop();
  serving.join();
}

}  // namespace
}  // namespace mic::serve
