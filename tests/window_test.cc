#include "obs/window.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/openmetrics.h"

namespace mic::obs {
namespace {

// 1-second slots, 5-slot ring, 2 s / 5 s lookbacks: small enough to
// drive every transition by hand with the injected clock.
WindowOptions TinyOptions() {
  WindowOptions options;
  options.slot_width_ns = 1000ull * 1000ull * 1000ull;
  options.num_slots = 5;
  options.lookback_seconds = {2, 5};
  return options;
}

constexpr std::uint64_t kSecond = 1000ull * 1000ull * 1000ull;

TEST(WindowTest, AggregatesCountsErrorsAndQuantilesDeterministically) {
  std::atomic<std::uint64_t> now{0};
  WindowRegistry windows(TinyOptions(),
                         [&now] { return now.load(); });
  WindowedChannel* channel = windows.channel("serve.health");

  // 90 fast (<= 0.001 s bucket), 10 slow (<= 0.05 s bucket), 5 errors.
  for (int i = 0; i < 90; ++i) channel->Record(0.0009);
  for (int i = 0; i < 10; ++i) channel->Record(0.04, /*error=*/i < 5);

  const WindowStats stats = channel->Aggregate(2 * kSecond);
  EXPECT_EQ(stats.count, 100u);
  EXPECT_EQ(stats.errors, 5u);
  EXPECT_DOUBLE_EQ(stats.error_rate, 0.05);
  EXPECT_DOUBLE_EQ(stats.rps, 50.0);  // 100 requests / 2 s lookback
  EXPECT_DOUBLE_EQ(stats.p50, 0.001);
  EXPECT_DOUBLE_EQ(stats.p95, 0.05);
  EXPECT_DOUBLE_EQ(stats.p99, 0.05);
  EXPECT_DOUBLE_EQ(stats.max, 0.05);
  EXPECT_NEAR(stats.mean, (90 * 0.0009 + 10 * 0.04) / 100.0, 1e-12);
}

TEST(WindowTest, OldSlotsAgeOutOfTheShorterLookbacks) {
  std::atomic<std::uint64_t> now{kSecond / 2};  // epoch 0
  WindowRegistry windows(TinyOptions(),
                         [&now] { return now.load(); });
  WindowedChannel* channel = windows.channel("serve.series");
  channel->Record(0.002);

  now.store(3 * kSecond + kSecond / 2);  // epoch 3
  EXPECT_EQ(channel->Aggregate(2 * kSecond).count, 0u)
      << "epoch 0 is outside the trailing 2 s once the clock reaches "
         "epoch 3";
  EXPECT_EQ(channel->Aggregate(5 * kSecond).count, 1u);
}

TEST(WindowTest, RingReusesSlotsPastTheHorizon) {
  std::atomic<std::uint64_t> now{0};  // epoch 0
  WindowRegistry windows(TinyOptions(),
                         [&now] { return now.load(); });
  WindowedChannel* channel = windows.channel("serve.top_changes");
  channel->Record(0.002);
  channel->Record(0.002);

  // Epoch 5 maps to the same slot index as epoch 0 (5 % 5): the write
  // must turn the slot over and the stale epoch-0 samples must vanish
  // from every lookback.
  now.store(5 * kSecond + 1);
  channel->Record(0.004);
  const WindowStats stats = channel->Aggregate(5 * kSecond);
  EXPECT_EQ(stats.count, 1u);
  EXPECT_DOUBLE_EQ(stats.p50, 0.005);
}

TEST(WindowTest, AddCountFeedsRatesWithoutSkewingQuantiles) {
  std::atomic<std::uint64_t> now{0};
  WindowRegistry windows(TinyOptions(),
                         [&now] { return now.load(); });
  WindowedChannel* channel = windows.channel("obs.trace.dropped");
  channel->AddCount(40);
  channel->AddCount(2);

  const WindowStats stats = channel->Aggregate(2 * kSecond);
  EXPECT_EQ(stats.count, 42u);
  EXPECT_DOUBLE_EQ(stats.rps, 21.0);
  EXPECT_DOUBLE_EQ(stats.p50, 0.0) << "count-only deltas must not land "
                                      "in the value histogram";
  EXPECT_DOUBLE_EQ(stats.mean, 0.0);
}

TEST(WindowTest, ToJsonIsDeterministicForIdenticalHistories) {
  auto drive = [](WindowRegistry& windows,
                  std::atomic<std::uint64_t>& now) {
    windows.channel("serve.health")->Record(0.0009);
    windows.channel("serve.report_csv")->Record(0.3, /*error=*/true);
    now.store(kSecond);
    windows.channel("serve.health")->Record(0.002);
  };
  std::atomic<std::uint64_t> now_a{0};
  std::atomic<std::uint64_t> now_b{0};
  WindowRegistry a(TinyOptions(), [&now_a] { return now_a.load(); });
  WindowRegistry b(TinyOptions(), [&now_b] { return now_b.load(); });
  drive(a, now_a);
  drive(b, now_b);

  const std::string json = a.ToJson();
  EXPECT_EQ(json, b.ToJson());
  EXPECT_NE(json.find("\"windows\":{\"2s\":{"), std::string::npos);
  EXPECT_NE(json.find("\"5s\":{"), std::string::npos);
  EXPECT_NE(json.find("\"serve.health\":{\"count\":2"),
            std::string::npos);
  EXPECT_NE(json.find("\"serve.report_csv\":{\"count\":1,\"errors\":1"),
            std::string::npos);
}

// All slot state is atomic: concurrent recorders under a fixed clock
// (no turnover races) must neither lose counts nor trip TSan.
TEST(WindowTest, ConcurrentRecordsAreAllCounted) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::atomic<std::uint64_t> now{0};
  WindowRegistry windows(TinyOptions(),
                         [&now] { return now.load(); });
  WindowedChannel* channel = windows.channel("serve.health");
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([channel] {
      for (int i = 0; i < kPerThread; ++i) {
        channel->Record(0.0009, /*error=*/i % 100 == 0);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const WindowStats stats = channel->Aggregate(2 * kSecond);
  EXPECT_EQ(stats.count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(stats.errors, static_cast<std::uint64_t>(kThreads) * 10);
}

TEST(OpenMetricsTest, SanitizesNames) {
  EXPECT_EQ(OpenMetricsName("serve.latency.top-changes"),
            "mictrend_serve_latency_top_changes");
  EXPECT_EQ(OpenMetricsName("cache.hits"), "mictrend_cache_hits");
}

TEST(OpenMetricsTest, RendersEveryMetricKindWithTypeAndHelp) {
  MetricsRegistry metrics;
  metrics.counter("serve.requests.health")->Increment(3);
  metrics.gauge("serve.queue_depth")->Set(2.0);
  Timer* timer = metrics.timer("serve.latency.health");
  timer->Record(1000000);  // 1 ms
  Histogram* histogram =
      metrics.histogram("serve.frame_bytes", {1.0, 2.0});
  histogram->Observe(0.5);
  histogram->Observe(1.5);
  histogram->Observe(5.0);

  std::atomic<std::uint64_t> now{0};
  WindowRegistry windows(TinyOptions(),
                         [&now] { return now.load(); });
  windows.channel("serve.health")->Record(0.0009);

  const std::string text = RenderOpenMetrics(&metrics, &windows);
  EXPECT_NE(
      text.find("# TYPE mictrend_serve_requests_health counter\n"
                "mictrend_serve_requests_health_total 3\n"),
      std::string::npos);
  EXPECT_NE(text.find("# HELP mictrend_serve_requests_health "
                      "serve.requests.health\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE mictrend_serve_queue_depth gauge\n"
                      "mictrend_serve_queue_depth 2\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("mictrend_serve_latency_health_calls_total 1\n"),
      std::string::npos);
  // Histogram buckets are cumulative and close with +Inf.
  EXPECT_NE(text.find("mictrend_serve_frame_bytes_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("mictrend_serve_frame_bytes_bucket{le=\"2\"} 2\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("mictrend_serve_frame_bytes_bucket{le=\"+Inf\"} 3\n"),
      std::string::npos);
  EXPECT_NE(text.find("mictrend_serve_frame_bytes_count 3\n"),
            std::string::npos);
  // Windowed families carry channel/window (and quantile) labels.
  EXPECT_NE(text.find("mictrend_window_requests{channel=\"serve.health\","
                      "window=\"2s\"} 1\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("mictrend_window_latency_seconds{channel=\"serve.health\","
                "window=\"5s\",quantile=\"0.99\"} 0.001\n"),
      std::string::npos);
  // OpenMetrics terminator.
  EXPECT_EQ(text.rfind("# EOF\n"), text.size() - 6);
}

TEST(OpenMetricsTest, EscapesLabelValuesAndHelpText) {
  std::atomic<std::uint64_t> now{0};
  WindowRegistry windows(TinyOptions(),
                         [&now] { return now.load(); });
  windows.channel("bad\"channel\\name")->Record(0.0009);

  const std::string text = RenderOpenMetrics(nullptr, &windows);
  EXPECT_NE(
      text.find("{channel=\"bad\\\"channel\\\\name\",window=\"2s\"}"),
      std::string::npos);
}

}  // namespace
}  // namespace mic::obs
