#include "cache/cache_store.h"

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include <gtest/gtest.h>

#include "cache/fingerprint.h"
#include "cache/snapshot_io.h"
#include "common/exec_context.h"
#include "medmodel/medication_model.h"
#include "medmodel/timeseries.h"
#include "obs/metrics.h"
#include "runtime/thread_pool.h"
#include "ssm/changepoint.h"
#include "ssm/fit.h"
#include "ssm/kalman.h"
#include "synth/generator.h"
#include "synth/scenario.h"
#include "trend/pipeline.h"

namespace mic {
namespace {

namespace fs = std::filesystem;

// Fresh per-test scratch directory under the gtest temp root.
fs::path FreshDir(const char* name) {
  fs::path dir = fs::path(::testing::TempDir()) / name;
  std::error_code ec;
  fs::remove_all(dir, ec);
  return dir;
}

MicRecord MakeRecord(std::initializer_list<int> diseases,
                     std::initializer_list<int> medicines) {
  MicRecord record;
  for (int id : diseases) {
    record.diseases.push_back({DiseaseId(static_cast<std::uint32_t>(id)), 1});
  }
  for (int id : medicines) {
    record.medicines.push_back(
        {MedicineId(static_cast<std::uint32_t>(id)), 1});
  }
  record.Normalize();
  return record;
}

MonthlyDataset SmallMonth(int extra_records = 0) {
  MonthlyDataset month(0);
  for (int i = 0; i < 30; ++i) month.AddRecord(MakeRecord({0, 1}, {0, 1}));
  for (int i = 0; i < 40; ++i) month.AddRecord(MakeRecord({1}, {1}));
  for (int i = 0; i < 10 + extra_records; ++i) {
    month.AddRecord(MakeRecord({0}, {0}));
  }
  return month;
}

TEST(FingerprintTest, HasherIsDeterministicAndOrderSensitive) {
  cache::Hasher a;
  a.Mix(7).MixSigned(-3).MixDouble(1.5).MixString("em");
  cache::Hasher b;
  b.Mix(7).MixSigned(-3).MixDouble(1.5).MixString("em");
  EXPECT_EQ(a.digest(), b.digest());

  cache::Hasher reordered;
  reordered.MixSigned(-3).Mix(7).MixDouble(1.5).MixString("em");
  EXPECT_NE(a.digest(), reordered.digest());

  // Doubles hash by bit pattern: 0.0 and -0.0 compare equal but are
  // distinct inputs, so they must produce distinct keys.
  cache::Hasher pos, neg;
  pos.MixDouble(0.0);
  neg.MixDouble(-0.0);
  EXPECT_NE(pos.digest(), neg.digest());
}

TEST(FingerprintTest, MonthKeyTracksRecordContent) {
  const std::uint64_t base = cache::FingerprintMonth(SmallMonth());
  EXPECT_EQ(base, cache::FingerprintMonth(SmallMonth()));
  EXPECT_NE(base, cache::FingerprintMonth(SmallMonth(/*extra_records=*/1)));
}

TEST(FingerprintTest, SeriesKeyTracksValueBits) {
  const std::vector<double> series = {1.0, 2.0, 3.5};
  std::vector<double> nudged = series;
  nudged[1] = std::nextafter(nudged[1], 10.0);
  EXPECT_EQ(cache::FingerprintSeries(series),
            cache::FingerprintSeries({1.0, 2.0, 3.5}));
  EXPECT_NE(cache::FingerprintSeries(series),
            cache::FingerprintSeries(nudged));
}

TEST(FingerprintTest, KeyToHexIsFixedWidthLowercase) {
  EXPECT_EQ(cache::KeyToHex(0), "0000000000000000");
  EXPECT_EQ(cache::KeyToHex(0xDEADBEEFull), "00000000deadbeef");
  EXPECT_EQ(cache::KeyToHex(~0ull), "ffffffffffffffff");
}

TEST(SnapshotIoTest, RoundTripsEveryFieldType) {
  cache::SnapshotWriter writer;
  writer.PutU32(42);
  writer.PutU64(~0ull);
  writer.PutI64(-7);
  writer.PutDouble(-0.0);
  writer.PutString("phi");
  const std::vector<std::uint8_t> payload = writer.Take();

  cache::SnapshotReader reader(payload);
  auto u32 = reader.U32();
  ASSERT_TRUE(u32.ok());
  EXPECT_EQ(*u32, 42u);
  auto u64 = reader.U64();
  ASSERT_TRUE(u64.ok());
  EXPECT_EQ(*u64, ~0ull);
  auto i64 = reader.I64();
  ASSERT_TRUE(i64.ok());
  EXPECT_EQ(*i64, -7);
  auto value = reader.Double();
  ASSERT_TRUE(value.ok());
  EXPECT_TRUE(std::signbit(*value));
  auto text = reader.String();
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "phi");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(SnapshotIoTest, TruncationFailsInsteadOfAborting) {
  cache::SnapshotWriter writer;
  writer.PutU64(123);
  std::vector<std::uint8_t> payload = writer.Take();
  payload.pop_back();
  cache::SnapshotReader reader(payload);
  EXPECT_FALSE(reader.U64().ok());
  EXPECT_FALSE(reader.AtEnd());
}

TEST(CacheStoreTest, ParsesAndNamesModes) {
  ASSERT_TRUE(cache::ParseCacheMode("rw").ok());
  EXPECT_EQ(*cache::ParseCacheMode("off"), cache::CacheMode::kOff);
  EXPECT_EQ(*cache::ParseCacheMode("read"), cache::CacheMode::kRead);
  EXPECT_EQ(*cache::ParseCacheMode("write"), cache::CacheMode::kWrite);
  EXPECT_EQ(*cache::ParseCacheMode("rw"), cache::CacheMode::kReadWrite);
  EXPECT_FALSE(cache::ParseCacheMode("always").ok());
  EXPECT_EQ(cache::CacheModeName(cache::CacheMode::kReadWrite), "rw");
}

TEST(CacheStoreTest, RoundTripsPayloadsAndCounts) {
  const fs::path dir = FreshDir("cache_store_roundtrip");
  obs::MetricsRegistry metrics;
  cache::CacheStore store(dir.string(), cache::CacheMode::kReadWrite,
                          &metrics);
  ASSERT_TRUE(store.Open().ok());

  const std::uint64_t key = 0x1234;
  EXPECT_FALSE(store.Get("em", key).ok());  // cold miss
  EXPECT_EQ(metrics.counter_value("cache.misses"), 1u);

  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  ASSERT_TRUE(store.Put("em", key, payload).ok());
  auto back = store.Get("em", key);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, payload);
  EXPECT_EQ(metrics.counter_value("cache.hits"), 1u);
  EXPECT_GT(metrics.counter_value("cache.bytes_written"), 0u);

  // Namespaces are disjoint key spaces.
  EXPECT_FALSE(store.Get("series", key).ok());
}

TEST(CacheStoreTest, ModesGateReadsAndWrites) {
  const fs::path dir = FreshDir("cache_store_modes");
  cache::CacheStore seeder(dir.string(), cache::CacheMode::kReadWrite);
  ASSERT_TRUE(seeder.Open().ok());
  const std::vector<std::uint8_t> payload = {9, 9, 9};
  ASSERT_TRUE(seeder.Put("em", 1, payload).ok());

  cache::CacheStore read_only(dir.string(), cache::CacheMode::kRead);
  ASSERT_TRUE(read_only.Open().ok());
  EXPECT_TRUE(read_only.can_read());
  EXPECT_FALSE(read_only.can_write());
  EXPECT_TRUE(read_only.Get("em", 1).ok());
  ASSERT_TRUE(read_only.Put("em", 2, payload).ok());  // silent no-op
  EXPECT_FALSE(read_only.Get("em", 2).ok());

  cache::CacheStore write_only(dir.string(), cache::CacheMode::kWrite);
  ASSERT_TRUE(write_only.Open().ok());
  EXPECT_FALSE(write_only.can_read());
  EXPECT_TRUE(write_only.can_write());
  EXPECT_FALSE(write_only.Get("em", 1).ok());  // reads disabled
  ASSERT_TRUE(write_only.Put("em", 3, payload).ok());
  EXPECT_TRUE(read_only.Get("em", 3).ok());
}

TEST(CacheStoreTest, CorruptEntryCountsAsReadError) {
  const fs::path dir = FreshDir("cache_store_corrupt");
  obs::MetricsRegistry metrics;
  cache::CacheStore store(dir.string(), cache::CacheMode::kReadWrite,
                          &metrics);
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.Put("em", 5, {1, 2, 3}).ok());

  // Stomp the entry in place: the documented layout is
  // <dir>/<ns>/<key-hex>.snap.
  const fs::path entry = dir / "em" / (cache::KeyToHex(5) + ".snap");
  ASSERT_TRUE(fs::exists(entry));
  {
    std::ofstream stomp(entry, std::ios::binary | std::ios::trunc);
    stomp << "garbage";
  }
  EXPECT_FALSE(store.Get("em", 5).ok());
  EXPECT_EQ(metrics.counter_value("cache.read_errors"), 1u);
}

TEST(ModelSnapshotTest, RoundTripsBitExactly) {
  auto fitted = medmodel::MedicationModel::Fit(SmallMonth());
  ASSERT_TRUE(fitted.ok());
  const medmodel::MedicationModel& original = **fitted;

  auto restored = medmodel::MedicationModel::Deserialize(
      original.Serialize());
  ASSERT_TRUE(restored.ok());
  const medmodel::MedicationModel& copy = **restored;

  EXPECT_EQ(original.fit_stats().final_log_likelihood,
            copy.fit_stats().final_log_likelihood);
  EXPECT_EQ(original.fit_stats().iterations, copy.fit_stats().iterations);
  for (int d = 0; d < 2; ++d) {
    EXPECT_EQ(original.Eta(DiseaseId(d)), copy.Eta(DiseaseId(d)));
    for (int m = 0; m < 2; ++m) {
      EXPECT_EQ(original.Phi(DiseaseId(d), MedicineId(m)),
                copy.Phi(DiseaseId(d), MedicineId(m)));
    }
  }
  original.MonthlyPairCounts().ForEach(
      [&](DiseaseId d, MedicineId m, double value) {
        EXPECT_EQ(value, copy.MonthlyPairCounts().Get(d, m));
      });

  // Re-serializing the restored model reproduces the same bytes, so
  // chained warm runs keep hitting the same keys.
  EXPECT_EQ(original.Serialize(), copy.Serialize());
}

TEST(ModelSnapshotTest, RejectsTruncatedPayload) {
  auto fitted = medmodel::MedicationModel::Fit(SmallMonth());
  ASSERT_TRUE(fitted.ok());
  std::vector<std::uint8_t> payload = (*fitted)->Serialize();
  payload.resize(payload.size() / 2);
  EXPECT_FALSE(medmodel::MedicationModel::Deserialize(payload).ok());
}

// A warm-started EM fit runs to the same convergence tolerance as a
// cold one, so the likelihood it reaches must be equivalent even when
// the prior month differs slightly.
TEST(WarmStartTest, WarmFitReachesColdLikelihood) {
  const MonthlyDataset month = SmallMonth();
  auto cold = medmodel::MedicationModel::Fit(month);
  ASSERT_TRUE(cold.ok());

  auto prior = medmodel::MedicationModel::Fit(SmallMonth(5));
  ASSERT_TRUE(prior.ok());

  medmodel::MedicationModelOptions options;
  options.warm_start = true;
  auto warm = medmodel::MedicationModel::Fit(month, options, prior->get());
  ASSERT_TRUE(warm.ok());

  const double cold_ll = (*cold)->fit_stats().final_log_likelihood;
  const double warm_ll = (*warm)->fit_stats().final_log_likelihood;
  EXPECT_NEAR(warm_ll, cold_ll, 1e-3 * std::fabs(cold_ll));
}

TEST(ReproduceCacheTest, WarmRerunServesEverySnapshot) {
  auto world = synth::World::Create(synth::MakeTinyWorldConfig(6, 99));
  ASSERT_TRUE(world.ok());
  synth::ClaimGenerator generator(&*world);
  auto data = generator.Generate();
  ASSERT_TRUE(data.ok());

  const fs::path dir = FreshDir("reproduce_cache");
  medmodel::ReproducerOptions options;
  options.filter_options.min_disease_count = 1;
  options.filter_options.min_medicine_count = 1;

  obs::MetricsRegistry cold_metrics;
  cache::CacheStore seed_store(dir.string(), cache::CacheMode::kWrite,
                               &cold_metrics);
  ASSERT_TRUE(seed_store.Open().ok());
  ExecContext cold_context;
  cold_context.metrics = &cold_metrics;
  cold_context.cache = &seed_store;
  auto cold = medmodel::ReproduceSeries(data->corpus, options, cold_context);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold_metrics.counter_value("reproduce.snapshot_hits"), 0u);

  obs::MetricsRegistry warm_metrics;
  cache::CacheStore warm_store(dir.string(), cache::CacheMode::kRead,
                               &warm_metrics);
  ASSERT_TRUE(warm_store.Open().ok());
  ExecContext warm_context;
  warm_context.metrics = &warm_metrics;
  warm_context.cache = &warm_store;
  auto warm = medmodel::ReproduceSeries(data->corpus, options, warm_context);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm_metrics.counter_value("reproduce.snapshot_hits"), 6u);
  EXPECT_EQ(warm_metrics.counter_value("reproduce.months_fitted"), 0u);

  ASSERT_EQ(cold->num_pairs(), warm->num_pairs());
  cold->ForEachPair([&](DiseaseId d, MedicineId m,
                        const std::vector<double>& series) {
    EXPECT_EQ(series, warm->Prescription(d, m));
  });
}

void ExpectAnalysesBitIdentical(
    const std::vector<trend::SeriesAnalysis>& a,
    const std::vector<trend::SeriesAnalysis>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << i;
    EXPECT_EQ(a[i].has_change, b[i].has_change) << i;
    EXPECT_EQ(a[i].change_point, b[i].change_point) << i;
    EXPECT_EQ(a[i].aic, b[i].aic) << i;        // bitwise
    EXPECT_EQ(a[i].lambda, b[i].lambda) << i;  // bitwise
    EXPECT_EQ(a[i].scale, b[i].scale) << i;
    EXPECT_EQ(a[i].fits_performed, b[i].fits_performed) << i;
  }
}

void ExpectReportsBitIdentical(const trend::TrendReport& a,
                               const trend::TrendReport& b) {
  ExpectAnalysesBitIdentical(a.diseases, b.diseases);
  ExpectAnalysesBitIdentical(a.medicines, b.medicines);
  ExpectAnalysesBitIdentical(a.prescriptions, b.prescriptions);
}

trend::PipelineConfig TinyWorldConfig(const fs::path& dir,
                                      cache::CacheMode mode) {
  trend::PipelineConfig config;
  config.reproducer.filter_options.min_disease_count = 1;
  config.reproducer.filter_options.min_medicine_count = 1;
  config.reproducer.min_series_total = 10.0;
  config.analyzer.detector.seasonal = false;  // 24-month window
  config.analyzer.detector.fit.optimizer.max_evaluations = 150;
  config.cache.directory = dir.string();
  config.cache.mode = mode;
  return config;
}

TEST(PipelineCacheTest, WarmRerunIsBitIdenticalAtOneAndFourThreads) {
  auto world = synth::World::Create(synth::MakeTinyWorldConfig(24, 5));
  ASSERT_TRUE(world.ok());
  synth::ClaimGenerator generator(&*world);
  auto data = generator.Generate();
  ASSERT_TRUE(data.ok());

  const fs::path dir = FreshDir("pipeline_cache_warm");
  auto seeded = trend::RunPipeline(
      data->corpus, TinyWorldConfig(dir, cache::CacheMode::kWrite));
  ASSERT_TRUE(seeded.ok());

  for (int threads : {1, 4}) {
    runtime::ThreadPool pool(threads);
    obs::MetricsRegistry metrics;
    ExecContext context;
    context.pool = &pool;
    context.metrics = &metrics;
    auto warm = trend::RunPipeline(
        data->corpus, TinyWorldConfig(dir, cache::CacheMode::kRead),
        context);
    ASSERT_TRUE(warm.ok()) << "threads " << threads;
    ExpectReportsBitIdentical(seeded->report, warm->report);
    EXPECT_GT(metrics.counter_value("trend.series_cache_hits"), 0u)
        << "threads " << threads;
    EXPECT_EQ(metrics.counter_value("trend.series_cache_misses"), 0u)
        << "threads " << threads;
    EXPECT_EQ(metrics.counter_value("cache.read_errors"), 0u);
  }
}

TEST(PipelineCacheTest, CorruptedSnapshotsFallBackToColdResults) {
  auto world = synth::World::Create(synth::MakeTinyWorldConfig(24, 5));
  ASSERT_TRUE(world.ok());
  synth::ClaimGenerator generator(&*world);
  auto data = generator.Generate();
  ASSERT_TRUE(data.ok());

  const fs::path dir = FreshDir("pipeline_cache_corrupt");
  auto seeded = trend::RunPipeline(
      data->corpus, TinyWorldConfig(dir, cache::CacheMode::kWrite));
  ASSERT_TRUE(seeded.ok());

  // Stomp every snapshot in the store.
  std::size_t stomped = 0;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::ofstream stomp(entry.path(), std::ios::binary | std::ios::trunc);
    stomp << "not a snapshot";
    ++stomped;
  }
  ASSERT_GT(stomped, 0u);

  obs::MetricsRegistry metrics;
  ExecContext context;
  context.metrics = &metrics;
  auto warm = trend::RunPipeline(
      data->corpus, TinyWorldConfig(dir, cache::CacheMode::kRead), context);
  ASSERT_TRUE(warm.ok());
  EXPECT_GT(metrics.counter_value("cache.read_errors"), 0u);
  EXPECT_EQ(metrics.counter_value("cache.hits"), 0u);
  // Every stage recomputed cold — and reproduced the seeded run's
  // numbers exactly, because hit/miss never changes the math.
  ExpectReportsBitIdentical(seeded->report, warm->report);
}

TEST(PipelineCacheTest, UnopenableCacheDirectoryDegradesToColdRun) {
  auto world = synth::World::Create(synth::MakeTinyWorldConfig(24, 5));
  ASSERT_TRUE(world.ok());
  synth::ClaimGenerator generator(&*world);
  auto data = generator.Generate();
  ASSERT_TRUE(data.ok());

  // A file where the cache directory should be: Open() fails, the
  // pipeline warns and runs cold instead of erroring out.
  const fs::path dir = FreshDir("pipeline_cache_blocked");
  { std::ofstream blocker(dir); blocker << "x"; }
  auto result = trend::RunPipeline(
      data->corpus, TinyWorldConfig(dir, cache::CacheMode::kReadWrite));
  EXPECT_TRUE(result.ok());
}

TEST(SharedAicMemoTest, MemoServesBothAlgorithmsWithoutChangingAnswers) {
  std::vector<double> series(43);
  for (int t = 0; t < 43; ++t) {
    series[t] = 0.05 * t + (t >= 28 ? 0.4 * (t - 28) : 0.0) +
                0.05 * std::sin(1.3 * t);
  }

  ssm::ChangePointOptions options;
  options.seasonal = false;
  options.fit.optimizer.max_evaluations = 150;

  // Memo-free baselines: what each algorithm finds on its own.
  auto baseline_exact = ssm::ChangePointDetector(series, options)
                            .DetectExact();
  auto baseline_approx = ssm::ChangePointDetector(series, options)
                             .DetectApproximate();
  ASSERT_TRUE(baseline_exact.ok());
  ASSERT_TRUE(baseline_approx.ok());
  EXPECT_TRUE(baseline_exact->has_change);

  obs::MetricsRegistry metrics;
  options.fit.metrics = &metrics;
  ssm::SharedAicMemo memo;
  options.shared_memo = &memo;
  options.series_key = cache::FingerprintSeries(series);

  ssm::ChangePointDetector exact(series, options);
  auto exact_result = exact.DetectExact();
  ASSERT_TRUE(exact_result.ok());
  EXPECT_GT(exact.fits_performed(), 0);
  EXPECT_GT(memo.size(), 0u);
  // The memo never changes the math: same break, same criterion bits.
  EXPECT_EQ(exact_result->has_change, baseline_exact->has_change);
  EXPECT_EQ(exact_result->change_point, baseline_exact->change_point);
  EXPECT_EQ(exact_result->best_aic, baseline_exact->best_aic);

  // A fresh detector over the same series: every candidate Algorithm 2
  // probes was already fitted by Algorithm 1, so its search runs
  // fit-free off the shared memo — and still answers exactly what the
  // memo-free Algorithm 2 answered.
  ssm::ChangePointDetector approximate(series, options);
  auto approx_result = approximate.DetectApproximate();
  ASSERT_TRUE(approx_result.ok());
  EXPECT_EQ(approximate.fits_performed(), 0);
  EXPECT_GT(metrics.counter_value("changepoint.shared_memo_hits"), 0u);
  EXPECT_EQ(approx_result->has_change, baseline_approx->has_change);
  EXPECT_EQ(approx_result->change_point, baseline_approx->change_point);
  EXPECT_EQ(approx_result->best_aic, baseline_approx->best_aic);
}

TEST(PipelineConfigTest, ValidateNamesTheOffendingFlag) {
  trend::PipelineConfig config;
  EXPECT_TRUE(config.Validate().ok());  // defaults are valid (cache off)

  config.cache.mode = cache::CacheMode::kRead;
  Status missing_dir = config.Validate();
  ASSERT_FALSE(missing_dir.ok());
  EXPECT_NE(missing_dir.message().find("--cache-dir"), std::string::npos);

  config.cache.mode = cache::CacheMode::kOff;
  config.cache.directory = "somewhere";
  Status missing_mode = config.Validate();
  ASSERT_FALSE(missing_mode.ok());
  EXPECT_NE(missing_mode.message().find("--cache"), std::string::npos);

  config.cache.directory.clear();
  config.analyzer.detector.min_candidate = 0;
  EXPECT_FALSE(config.Validate().ok());
  config.analyzer.detector.min_candidate = 2;
  config.analyzer.detector.candidate_kinds.clear();
  EXPECT_FALSE(config.Validate().ok());
}

TEST(KalmanWorkspaceTest, FilterPassesReuseTheThreadLocalWorkspace) {
  std::vector<double> series(30);
  for (int t = 0; t < 30; ++t) {
    series[t] = 1.0 + 0.1 * t + 0.2 * std::sin(0.9 * t);
  }
  ssm::StructuralSpec spec;
  spec.seasonal = false;
  ssm::FitOptions options;
  options.optimizer.max_evaluations = 120;
  auto fitted = ssm::FitStructuralModel(series, spec, options);
  ASSERT_TRUE(fitted.ok());

  ssm::KalmanWorkspace& workspace = ssm::KalmanWorkspace::ThreadLocal();
  const std::uint64_t before = workspace.acquires;
  ASSERT_TRUE(ssm::RunFilter(fitted->model, series).ok());
  EXPECT_EQ(workspace.acquires, before + 1);
}

}  // namespace
}  // namespace mic
