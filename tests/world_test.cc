#include "synth/world.h"

#include <cmath>

#include <gtest/gtest.h>

#include "synth/scenario.h"

namespace mic::synth {
namespace {

TEST(SeasonalityTest, FlatProfileIsOne) {
  SeasonalityProfile flat;
  EXPECT_TRUE(flat.IsFlat());
  for (int m = 0; m < 12; ++m) {
    EXPECT_DOUBLE_EQ(flat.Multiplier(m), 1.0);
  }
}

TEST(SeasonalityTest, PeakAtConfiguredMonth) {
  SeasonalityProfile profile{.amplitude = 0.8, .peak_month = 3};
  EXPECT_NEAR(profile.Multiplier(3), 1.8, 1e-12);
  EXPECT_NEAR(profile.Multiplier(9), 0.2, 1e-12);  // Opposite phase.
  // Never negative even with amplitude > 1.
  SeasonalityProfile extreme{.amplitude = 2.0, .peak_month = 0};
  EXPECT_DOUBLE_EQ(extreme.Multiplier(6), 0.0);
}

TEST(SeasonalityTest, SecondHarmonicGivesTwoPeaks) {
  SeasonalityProfile profile{.second_amplitude = 0.5,
                             .second_peak_month = 3};
  // cos(4 pi (m - 3) / 12) peaks at m = 3 and m = 9.
  EXPECT_NEAR(profile.Multiplier(3), 1.5, 1e-12);
  EXPECT_NEAR(profile.Multiplier(9), 1.5, 1e-12);
  EXPECT_NEAR(profile.Multiplier(0), 0.5, 1e-12);
  EXPECT_NEAR(profile.Multiplier(6), 0.5, 1e-12);
}

TEST(EventMultiplierTest, RampsLinearlyToTarget) {
  const std::vector<ScheduledEvent> events = {
      {.month = 10, .target_multiplier = 3.0, .ramp_months = 4}};
  EXPECT_DOUBLE_EQ(EventMultiplier(events, 9), 1.0);
  EXPECT_DOUBLE_EQ(EventMultiplier(events, 10), 1.0);
  EXPECT_DOUBLE_EQ(EventMultiplier(events, 12), 2.0);
  EXPECT_DOUBLE_EQ(EventMultiplier(events, 14), 3.0);
  EXPECT_DOUBLE_EQ(EventMultiplier(events, 40), 3.0);
}

TEST(EventMultiplierTest, InstantWhenNoRamp) {
  const std::vector<ScheduledEvent> events = {
      {.month = 5, .target_multiplier = 0.5}};
  EXPECT_DOUBLE_EQ(EventMultiplier(events, 4), 1.0);
  EXPECT_DOUBLE_EQ(EventMultiplier(events, 5), 0.5);
}

TEST(EventMultiplierTest, SequentialEventsChain) {
  // First drop to 0.2 instantly at t=2, then ramp from 0.2 to 1.0 over
  // 4 months starting at t=10.
  const std::vector<ScheduledEvent> events = {
      {.month = 2, .target_multiplier = 0.2},
      {.month = 10, .target_multiplier = 1.0, .ramp_months = 4}};
  EXPECT_DOUBLE_EQ(EventMultiplier(events, 1), 1.0);
  EXPECT_DOUBLE_EQ(EventMultiplier(events, 5), 0.2);
  EXPECT_DOUBLE_EQ(EventMultiplier(events, 10), 0.2);
  EXPECT_NEAR(EventMultiplier(events, 12), 0.6, 1e-12);
  EXPECT_DOUBLE_EQ(EventMultiplier(events, 14), 1.0);
  EXPECT_DOUBLE_EQ(EventMultiplier(events, 40), 1.0);
}

TEST(SeasonalityTest, SharpnessNarrowsPeaks) {
  SeasonalityProfile smooth{.amplitude = 1.0, .peak_month = 0,
                            .sharpness = 1.0};
  SeasonalityProfile sharp{.amplitude = 1.0, .peak_month = 0,
                           .sharpness = 3.0};
  // Same peak height...
  EXPECT_NEAR(smooth.Multiplier(0), sharp.Multiplier(0), 1e-12);
  // ...but the sharp profile decays faster off-peak.
  EXPECT_GT(smooth.Multiplier(2), sharp.Multiplier(2));
  EXPECT_GT(smooth.Multiplier(4), sharp.Multiplier(4));
  // Sharpness 1 reduces to the plain cosine.
  for (int m = 0; m < 12; ++m) {
    const double expected =
        1.0 + std::cos(2.0 * 3.14159265358979323846 * m / 12.0);
    EXPECT_NEAR(smooth.Multiplier(m), std::max(expected, 0.0), 1e-9);
  }
}

WorldConfig MinimalConfig() {
  WorldConfig config;
  config.num_months = 12;
  config.diseases = {{.name = "d0", .base_weight = 1.0}};
  config.medicines = {
      {.name = "m0", .indications = {{.disease = "d0", .weight = 1.0}}}};
  config.hospitals.count = 2;
  config.patients.count = 10;
  return config;
}

TEST(WorldValidationTest, AcceptsMinimalConfig) {
  auto world = World::Create(MinimalConfig());
  ASSERT_TRUE(world.ok());
  EXPECT_EQ(world->num_diseases(), 1u);
  EXPECT_EQ(world->num_medicines(), 1u);
  EXPECT_TRUE(world->IsIndicated(world->disease_id(0),
                                 world->medicine_id(0)));
}

TEST(WorldValidationTest, RejectsBrokenConfigs) {
  {
    WorldConfig config = MinimalConfig();
    config.num_months = 0;
    EXPECT_FALSE(World::Create(config).ok());
  }
  {
    WorldConfig config = MinimalConfig();
    config.diseases.push_back({.name = "d0"});  // Duplicate name.
    EXPECT_FALSE(World::Create(config).ok());
  }
  {
    WorldConfig config = MinimalConfig();
    config.medicines[0].indications[0].disease = "nonexistent";
    EXPECT_FALSE(World::Create(config).ok());
  }
  {
    WorldConfig config = MinimalConfig();
    config.medicines[0].indications.clear();
    EXPECT_FALSE(World::Create(config).ok());
  }
  {
    WorldConfig config = MinimalConfig();
    config.class_biases.push_back({.hospital_class = HospitalClass::kSmall,
                                   .medicine = "mX",
                                   .disease = "d0"});
    EXPECT_FALSE(World::Create(config).ok());
  }
  {
    WorldConfig config = MinimalConfig();
    config.patients.count = 0;
    EXPECT_FALSE(World::Create(config).ok());
  }
}

TEST(WorldTest, DiseaseWeightCombinesSeasonalityOutliersAndEvents) {
  WorldConfig config = MinimalConfig();
  config.start_calendar_month = 0;
  config.diseases[0].base_weight = 2.0;
  config.diseases[0].seasonality = {.amplitude = 0.5, .peak_month = 0};
  config.diseases[0].outlier_multipliers[3] = 4.0;
  auto world = World::Create(config);
  ASSERT_TRUE(world.ok());
  // t = 0 is January: multiplier 1.5.
  EXPECT_NEAR(world->DiseaseWeight(0, 0), 3.0, 1e-12);
  // t = 3 is April: cos(2 pi 3/12) = 0 -> multiplier 1, outlier 4.
  EXPECT_NEAR(world->DiseaseWeight(0, 3), 8.0, 1e-12);
}

TEST(WorldTest, AvailabilityRespectsReleaseAndCityDelay) {
  WorldConfig config = MinimalConfig();
  config.cities = {{"a", 1.0}, {"b", 1.0}};
  config.medicines[0].release_month = 4;
  config.medicines[0].city_release_delays["b"] = 3;
  auto world = World::Create(config);
  ASSERT_TRUE(world.ok());
  const CityId a = *world->catalog()->cities().Lookup("a");
  const CityId b = *world->catalog()->cities().Lookup("b");
  EXPECT_FALSE(world->IsAvailable(0, 3, a));
  EXPECT_TRUE(world->IsAvailable(0, 4, a));
  EXPECT_FALSE(world->IsAvailable(0, 6, b));
  EXPECT_TRUE(world->IsAvailable(0, 7, b));
}

TEST(WorldTest, IndicationWeightRampsAfterExpansion) {
  WorldConfig config = MinimalConfig();
  config.diseases.push_back({.name = "d1", .base_weight = 1.0});
  config.medicines[0].indications.push_back(
      {.disease = "d1", .weight = 1.0, .start_month = 6,
       .ramp_months = 3});
  auto world = World::Create(config);
  ASSERT_TRUE(world.ok());
  EXPECT_DOUBLE_EQ(world->IndicationWeight(1, 0, 5), 0.0);
  EXPECT_NEAR(world->IndicationWeight(1, 0, 6), 0.25, 1e-12);
  EXPECT_NEAR(world->IndicationWeight(1, 0, 8), 0.75, 1e-12);
  EXPECT_DOUBLE_EQ(world->IndicationWeight(1, 0, 9), 1.0);
  EXPECT_DOUBLE_EQ(world->IndicationWeight(1, 0, 30), 1.0);
}

TEST(WorldTest, ClassBiasOnlyForConfiguredClass) {
  WorldConfig config = MinimalConfig();
  config.diseases.push_back({.name = "cold", .base_weight = 1.0});
  config.class_biases.push_back({.hospital_class = HospitalClass::kSmall,
                                 .medicine = "m0",
                                 .disease = "cold",
                                 .weight = 0.7});
  auto world = World::Create(config);
  ASSERT_TRUE(world.ok());
  EXPECT_DOUBLE_EQ(
      world->ClassBiasWeight(HospitalClass::kSmall, 1, 0), 0.7);
  EXPECT_DOUBLE_EQ(
      world->ClassBiasWeight(HospitalClass::kLarge, 1, 0), 0.0);
  // "cold" has no indication edge, but the bias makes m0 a candidate.
  const auto& candidates = world->CandidateMedicines(1);
  EXPECT_EQ(candidates.size(), 1u);
  EXPECT_FALSE(world->IsIndicated(world->disease_id(1),
                                  world->medicine_id(0)));
}

TEST(ScenarioTest, PaperWorldValidates) {
  PaperWorldOptions options;
  options.num_patients = 50;
  options.num_background_diseases = 5;
  auto world = MakePaperWorld(options);
  ASSERT_TRUE(world.ok());
  EXPECT_TRUE(world->FindDisease(names::kInfluenza).ok());
  EXPECT_TRUE(world->FindMedicine(names::kAntibiotic).ok());
  // Paper ground truth example: the analgesic is NOT indicated for
  // hypertension (Fig. 2) while the depressor is.
  const DiseaseId hypertension = *world->FindDisease(names::kHypertension);
  EXPECT_TRUE(world->IsIndicated(hypertension,
                                 *world->FindMedicine(names::kDepressor)));
  EXPECT_FALSE(world->IsIndicated(hypertension,
                                  *world->FindMedicine(names::kAnalgesic)));
}

TEST(ScenarioTest, TinyWorldValidates) {
  auto world = World::Create(MakeTinyWorldConfig());
  ASSERT_TRUE(world.ok());
}

}  // namespace
}  // namespace mic::synth
