#include "ssm/fit.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mic::ssm {
namespace {

// Simulates x_t = level + seasonal + optional slope shift + noise.
std::vector<double> Simulate(int n, double level, double season_amp,
                             int change_point, double slope,
                             double noise_sd, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (int t = 0; t < n; ++t) {
    double value = level;
    value += season_amp * std::sin(2.0 * M_PI * t / 12.0);
    if (change_point >= 0 && t >= change_point) {
      value += slope * (t - change_point + 1);
    }
    value += rng.NextGaussian(0.0, noise_sd);
    x[t] = value;
  }
  return x;
}

TEST(FitTest, LocalLevelOnFlatSeries) {
  const std::vector<double> x = Simulate(43, 10.0, 0.0, -1, 0.0, 0.5, 1);
  StructuralSpec spec;
  auto fitted = FitStructuralModel(x, spec);
  ASSERT_TRUE(fitted.ok());
  EXPECT_TRUE(std::isfinite(fitted->log_likelihood));
  // On a flat series, the observation noise should absorb most variance.
  EXPECT_GT(fitted->variances.observation, fitted->variances.level);
}

TEST(FitTest, SeasonalComponentImprovesAicOnSeasonalData) {
  const std::vector<double> x = Simulate(43, 10.0, 4.0, -1, 0.0, 0.5, 2);
  StructuralSpec ll;
  StructuralSpec ll_s;
  ll_s.seasonal = true;
  auto fit_ll = FitStructuralModel(x, ll);
  auto fit_ll_s = FitStructuralModel(x, ll_s);
  ASSERT_TRUE(fit_ll.ok());
  ASSERT_TRUE(fit_ll_s.ok());
  EXPECT_LT(fit_ll_s->aic, fit_ll->aic);
}

TEST(FitTest, InterventionImprovesAicOnBrokenSeries) {
  const std::vector<double> x = Simulate(43, 10.0, 0.0, 20, 1.5, 0.5, 3);
  StructuralSpec ll;
  StructuralSpec ll_i;
  ll_i.set_change_point(20);
  auto fit_ll = FitStructuralModel(x, ll);
  auto fit_ll_i = FitStructuralModel(x, ll_i);
  ASSERT_TRUE(fit_ll.ok());
  ASSERT_TRUE(fit_ll_i.ok());
  EXPECT_LT(fit_ll_i->aic, fit_ll->aic);
}

TEST(FitTest, TrueChangePointBeatsWrongOne) {
  const std::vector<double> x = Simulate(43, 5.0, 0.0, 25, 2.0, 0.4, 4);
  StructuralSpec true_spec;
  true_spec.set_change_point(25);
  StructuralSpec wrong_spec;
  wrong_spec.set_change_point(8);
  auto fit_true = FitStructuralModel(x, true_spec);
  auto fit_wrong = FitStructuralModel(x, wrong_spec);
  ASSERT_TRUE(fit_true.ok());
  ASSERT_TRUE(fit_wrong.ok());
  EXPECT_LT(fit_true->aic, fit_wrong->aic);
}

TEST(FitTest, AicAccountsForParameters) {
  StructuralSpec ll;
  StructuralSpec full;
  full.seasonal = true;
  full.set_change_point(5);
  // Same log-likelihood -> richer model has higher (worse) AIC.
  EXPECT_GT(StructuralAic(-100.0, full), StructuralAic(-100.0, ll));
  EXPECT_DOUBLE_EQ(StructuralAic(-100.0, ll), 200.0 + 2.0 * 3.0);
  EXPECT_DOUBLE_EQ(StructuralAic(-100.0, full), 200.0 + 2.0 * 16.0);
}

TEST(FitTest, TooShortSeriesIsRejected) {
  StructuralSpec full;
  full.seasonal = true;
  full.set_change_point(2);
  const std::vector<double> x(8, 1.0);
  EXPECT_FALSE(FitStructuralModel(x, full).ok());
}

// Sweep noise levels: fitting must succeed and produce finite AIC.
class FitNoisePropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(FitNoisePropertyTest, FitsAcrossNoiseScales) {
  const double noise = GetParam();
  const std::vector<double> x =
      Simulate(43, 20.0, 3.0, 15, 1.0, noise, 99);
  StructuralSpec full;
  full.seasonal = true;
  full.set_change_point(15);
  auto fitted = FitStructuralModel(x, full);
  ASSERT_TRUE(fitted.ok()) << "noise " << noise;
  EXPECT_TRUE(std::isfinite(fitted->aic));
  EXPECT_GT(fitted->variances.observation, 0.0);
}

INSTANTIATE_TEST_SUITE_P(NoiseScales, FitNoisePropertyTest,
                         ::testing::Values(0.05, 0.2, 1.0, 5.0, 25.0));

}  // namespace
}  // namespace mic::ssm
