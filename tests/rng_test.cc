#include "common/rng.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace mic {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 10; ++i) {
    if (a.NextUint64() != b.NextUint64()) ++differing;
  }
  EXPECT_GE(differing, 9);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double value = rng.NextDouble();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
  }
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng rng(9);
  std::vector<int> histogram(7, 0);
  for (int i = 0; i < 7000; ++i) {
    const std::uint64_t value = rng.NextBounded(7);
    ASSERT_LT(value, 7u);
    ++histogram[value];
  }
  // Roughly uniform: each bucket within 35% of the expectation.
  for (int count : histogram) {
    EXPECT_NEAR(count, 1000, 350);
  }
}

TEST(RngTest, NextIntIsInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t value = rng.NextInt(-2, 2);
    ASSERT_GE(value, -2);
    ASSERT_LE(value, 2);
    saw_lo |= (value == -2);
    saw_hi |= (value == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sum_squares = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double value = rng.NextGaussian();
    sum += value;
    sum_squares += value * value;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_squares / n, 1.0, 0.05);
}

TEST(RngTest, PoissonMeanSmallAndLarge) {
  Rng rng(17);
  for (double mean : {0.5, 3.0, 80.0}) {
    double total = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
      total += static_cast<double>(rng.NextPoisson(mean));
    }
    EXPECT_NEAR(total / n, mean, mean * 0.05 + 0.05);
  }
  EXPECT_EQ(rng.NextPoisson(0.0), 0);
  EXPECT_EQ(rng.NextPoisson(-1.0), 0);
}

TEST(RngTest, BernoulliEdgesAndRate) {
  Rng rng(19);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, GammaMeanMatchesShape) {
  Rng rng(23);
  for (double shape : {0.5, 1.0, 4.0}) {
    double total = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) total += rng.NextGamma(shape);
    EXPECT_NEAR(total / n, shape, shape * 0.08);
  }
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(29);
  const std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> histogram(4, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const std::size_t pick = rng.NextCategorical(weights);
    ASSERT_LT(pick, 4u);
    ++histogram[pick];
  }
  EXPECT_EQ(histogram[2], 0);
  EXPECT_NEAR(histogram[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(histogram[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(histogram[3] / static_cast<double>(n), 0.6, 0.02);
}

TEST(RngTest, CategoricalDegenerateCases) {
  Rng rng(31);
  EXPECT_EQ(rng.NextCategorical({}), 0u);
  EXPECT_EQ(rng.NextCategorical({0.0, 0.0}), 2u);
  EXPECT_EQ(rng.NextCategorical({0.0, 5.0, 0.0}), 1u);
}

TEST(RngTest, DirichletSumsToOne) {
  Rng rng(37);
  for (double alpha : {0.1, 1.0, 10.0}) {
    const std::vector<double> draw = rng.NextDirichlet(alpha, 6);
    ASSERT_EQ(draw.size(), 6u);
    double total = 0.0;
    for (double value : draw) {
      EXPECT_GE(value, 0.0);
      total += value;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(43);
  Rng child = parent.Fork();
  // The child must not replay the parent's stream.
  Rng parent_again(43);
  (void)parent_again.NextUint64();  // Consumed by Fork.
  int equal = 0;
  for (int i = 0; i < 10; ++i) {
    if (child.NextUint64() == parent.NextUint64()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

}  // namespace
}  // namespace mic
