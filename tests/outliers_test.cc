#include "ssm/outliers.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mic::ssm {
namespace {

std::vector<double> CleanSeries(std::uint64_t seed, double noise = 0.4) {
  Rng rng(seed);
  std::vector<double> x(43);
  for (int t = 0; t < 43; ++t) {
    x[t] = 10.0 + 2.0 * std::sin(2.0 * M_PI * t / 12.0) +
           rng.NextGaussian(0.0, noise);
  }
  return x;
}

OutlierDetectionOptions SeasonalOptions() {
  OutlierDetectionOptions options;
  options.base_spec.seasonal = true;
  options.fit.optimizer.max_evaluations = 200;
  return options;
}

TEST(OutlierTest, CleanSeriesHasNoOutliers) {
  auto report = DetectOutliers(CleanSeries(1), SeasonalOptions());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->outlier_months.empty());
  EXPECT_TRUE(report->final_model.spec.interventions.empty());
}

TEST(OutlierTest, FindsSingleSpike) {
  auto x = CleanSeries(2);
  x[22] += 9.0;  // The paper's influenza-outbreak analogue.
  auto report = DetectOutliers(x, SeasonalOptions());
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->outlier_months.size(), 1u);
  EXPECT_EQ(report->outlier_months[0], 22);
  EXPECT_NEAR(report->magnitudes[0], 9.0, 3.0);
  // The final model's pulse absorbs the spike: its irregular at t=22 is
  // no longer extreme.
  EXPECT_LT(std::fabs(report->decomposition.irregular[22]), 2.0);
}

TEST(OutlierTest, FindsTwoSpikesInSeverityOrder) {
  auto x = CleanSeries(3);
  x[10] += 12.0;
  x[30] -= 7.0;
  auto report = DetectOutliers(x, SeasonalOptions());
  ASSERT_TRUE(report.ok());
  ASSERT_GE(report->outlier_months.size(), 2u);
  EXPECT_EQ(report->outlier_months[0], 10);  // Larger spike first.
  EXPECT_EQ(report->outlier_months[1], 30);
  EXPECT_GT(report->magnitudes[0], 0.0);
  EXPECT_LT(report->magnitudes[1], 0.0);
}

TEST(OutlierTest, RespectsMaxOutliers) {
  auto x = CleanSeries(4);
  x[5] += 10.0;
  x[15] += 10.0;
  x[25] += 10.0;
  OutlierDetectionOptions options = SeasonalOptions();
  options.max_outliers = 1;
  auto report = DetectOutliers(x, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->outlier_months.size(), 1u);
}

TEST(OutlierTest, KeepsBaseInterventions) {
  Rng rng(5);
  std::vector<double> x(43);
  for (int t = 0; t < 43; ++t) {
    x[t] = 5.0 + (t >= 20 ? 1.5 * (t - 19) : 0.0) +
           rng.NextGaussian(0.0, 0.4);
  }
  x[8] += 8.0;
  OutlierDetectionOptions options;
  options.base_spec.set_change_point(20);
  options.fit.optimizer.max_evaluations = 200;
  auto report = DetectOutliers(x, options);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->outlier_months.size(), 1u);
  EXPECT_EQ(report->outlier_months[0], 8);
  // Final spec: the original slope intervention plus the pulse.
  ASSERT_EQ(report->final_model.spec.interventions.size(), 2u);
  EXPECT_EQ(report->final_model.spec.interventions[0].kind,
            InterventionKind::kSlopeShift);
  EXPECT_EQ(report->final_model.spec.interventions[1].kind,
            InterventionKind::kPulse);
}

TEST(OutlierTest, RejectsBadOptions) {
  OutlierDetectionOptions options;
  options.threshold_sd = 0.0;
  EXPECT_FALSE(DetectOutliers(CleanSeries(6), options).ok());
  options.threshold_sd = 3.0;
  options.max_outliers = -1;
  EXPECT_FALSE(DetectOutliers(CleanSeries(6), options).ok());
}

}  // namespace
}  // namespace mic::ssm
