// mictrend command-line tool: the library's pipeline as composable
// shell steps over CSV files. Run `mictrend` with no arguments for the
// usage screen — it is generated from the command table in
// tools/cli_common.cc, the same table that validates the flags.

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include <unistd.h>

#include "cache/fingerprint.h"
#include "common/logging.h"
#include "common/strings.h"
#include "medmodel/series_io.h"
#include "serve/drill_json.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "serve/service.h"
#include "serve/wire.h"
#include "trend/drilldown.h"
#include "medmodel/timeseries.h"
#include "mic/io.h"
#include "obs/metrics.h"
#include "runtime/thread_pool.h"
#include "ssm/changepoint.h"
#include "stats/metrics.h"
#include "store/claim_store.h"
#include "synth/generator.h"
#include "synth/scenario.h"
#include "synth/world_io.h"
#include "tools/cli_common.h"
#include "tools/flags.h"
#include "trend/pipeline.h"
#include "trend/report_io.h"
#include "trend/trend_analyzer.h"

namespace mic::tools {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fputs(BuildUsageText().c_str(), stderr);
  return 2;
}

Result<synth::GeneratedData> GenerateFromFlags(const Flags& flags) {
  synth::WorldConfig config;
  if (flags.Has("world")) {
    // Custom world from the world_io text format.
    MIC_ASSIGN_OR_RETURN(
        config, synth::ReadWorldConfigFile(flags.GetString("world")));
  } else {
    synth::PaperWorldOptions options;
    MIC_ASSIGN_OR_RETURN(std::int64_t months, flags.GetInt("months", 43));
    MIC_ASSIGN_OR_RETURN(std::int64_t patients,
                         flags.GetInt("patients", 2000));
    MIC_ASSIGN_OR_RETURN(std::int64_t background,
                         flags.GetInt("background", 40));
    MIC_ASSIGN_OR_RETURN(std::int64_t seed,
                         flags.GetInt("seed", 20190411));
    options.num_months = static_cast<int>(months);
    options.num_patients = static_cast<std::size_t>(patients);
    options.num_background_diseases = static_cast<std::size_t>(background);
    options.seed = static_cast<std::uint64_t>(seed);
    config = synth::MakePaperWorldConfig(options);
  }
  MIC_ASSIGN_OR_RETURN(std::int64_t seed_override,
                       flags.GetInt("seed", 0));
  if (flags.Has("world") && seed_override != 0) {
    config.seed = static_cast<std::uint64_t>(seed_override);
  }
  MIC_ASSIGN_OR_RETURN(synth::World world,
                       synth::World::Create(std::move(config)));
  synth::ClaimGenerator generator(&world);
  return generator.Generate();
}

int RunGenerate(const Flags& flags) {
  auto run = CliRun::FromFlags(flags, /*with_pool=*/false);
  if (!run.ok()) return Fail(run.status());
  const std::string out_path = flags.GetString("out");
  auto data = GenerateFromFlags(flags);
  if (!data.ok()) return Fail(data.status());
  if (Status status = WriteCorpusCsvFile(data->corpus, out_path);
      !status.ok()) {
    return Fail(status);
  }
  std::printf("wrote %zu records over %zu months to %s\n",
              data->corpus.TotalRecords(), data->corpus.num_months(),
              out_path.c_str());
  const std::string hospitals_path = flags.GetString("hospitals-out");
  if (!hospitals_path.empty()) {
    std::ofstream out(hospitals_path);
    if (!out) {
      return Fail(Status::IoError("cannot open " + hospitals_path));
    }
    if (Status status =
            WriteHospitalsCsv(data->corpus.catalog(), out);
        !status.ok()) {
      return Fail(status);
    }
    std::printf("wrote hospital attributes to %s\n",
                hospitals_path.c_str());
  }
  obs::Increment(obs::GetCounter(run->metrics(), "cli.records_written"),
                 data->corpus.TotalRecords());
  obs::Increment(obs::GetCounter(run->metrics(), "cli.months_written"),
                 data->corpus.num_months());
  if (Status status = run->Finish(flags); !status.ok()) {
    return Fail(status);
  }
  return 0;
}

int RunImport(const Flags& flags) {
  auto run = CliRun::FromFlags(flags, /*with_pool=*/false);
  if (!run.ok()) return Fail(run.status());
  auto corpus = ReadCorpusCsvFile(flags.GetString("corpus"));
  if (!corpus.ok()) return Fail(corpus.status());
  const std::string hospitals_path = flags.GetString("hospitals");
  if (!hospitals_path.empty()) {
    std::ifstream in(hospitals_path);
    if (!in) {
      return Fail(Status::IoError("cannot open " + hospitals_path));
    }
    if (Status status = ReadHospitalsCsv(in, corpus->catalog());
        !status.ok()) {
      return Fail(status);
    }
  }
  auto append = flags.GetBool("append", false);
  if (!append.ok()) return Fail(append.status());
  auto store_config = StoreConfigFromFlags(flags);
  if (!store_config.ok()) return Fail(store_config.status());
  auto store = store::ClaimStore::Open(store_config->directory,
                                       {.backend = store_config->backend},
                                       run->metrics());
  if (!store.ok()) return Fail(store.status());
  if (!*append && store->num_months() > 0) {
    return Fail(Status::FailedPrecondition(
        "store at '" + store->directory() + "' already holds " +
        std::to_string(store->num_months()) +
        " months; pass --append to extend it"));
  }
  auto appended = store::ImportCorpus(*corpus, *store);
  if (!appended.ok()) return Fail(appended.status());
  std::printf("imported %zu of %zu months (%zu records) into %s "
              "(%s backend)\n",
              *appended, corpus->num_months(), corpus->TotalRecords(),
              store->directory().c_str(),
              std::string(store->backend_name()).c_str());
  std::printf("store fingerprint: %s\n",
              cache::KeyToHex(store->Fingerprint()).c_str());
  if (Status status = run->Finish(flags); !status.ok()) {
    return Fail(status);
  }
  return 0;
}

int RunStats(const Flags& flags) {
  auto run = CliRun::FromFlags(flags, /*with_pool=*/false);
  if (!run.ok()) return Fail(run.status());
  auto corpus = LoadCorpusFromFlags(flags, *run);
  if (!corpus.ok()) return Fail(corpus.status());
  std::printf("months: %zu\nrecords: %zu\n", corpus->num_months(),
              corpus->TotalRecords());
  double mean_diseases = 0.0;
  double mean_medicines = 0.0;
  std::size_t nonempty = 0;
  for (std::size_t t = 0; t < corpus->num_months(); ++t) {
    const MonthlyDataset& month = corpus->month(t);
    if (month.empty()) continue;
    mean_diseases += month.MeanDiseasesPerRecord();
    mean_medicines += month.MeanMedicinesPerRecord();
    ++nonempty;
    std::printf("  month %2zu: %6zu records, %5zu diseases, %5zu "
                "medicines\n",
                t, month.size(), month.CountDistinctDiseases(),
                month.CountDistinctMedicines());
  }
  if (nonempty > 0) {
    std::printf("mean diseases/record: %.3f\nmean medicines/record: %.3f\n",
                mean_diseases / static_cast<double>(nonempty),
                mean_medicines / static_cast<double>(nonempty));
  }
  obs::Increment(obs::GetCounter(run->metrics(), "cli.records_read"),
                 corpus->TotalRecords());
  if (Status status = run->Finish(flags); !status.ok()) {
    return Fail(status);
  }
  return 0;
}

int RunReproduce(const Flags& flags) {
  auto run = CliRun::FromFlags(flags, /*with_pool=*/true);
  if (!run.ok()) return Fail(run.status());
  auto corpus = LoadCorpusFromFlags(flags, *run);
  if (!corpus.ok()) return Fail(corpus.status());
  const std::string out_path = flags.GetString("out");

  auto config = PipelineConfigFromFlags(flags, DetectorFlagDefaults{});
  if (!config.ok()) return Fail(config.status());

  auto series =
      medmodel::ReproduceSeries(*corpus, config->reproducer,
                                run->context());
  if (!series.ok()) return Fail(series.status());
  if (Status status = medmodel::WriteSeriesCsvFile(
          *series, corpus->catalog(), out_path);
      !status.ok()) {
    return Fail(status);
  }
  std::printf("wrote %zu disease, %zu medicine, %zu prescription series "
              "to %s\n",
              series->num_diseases(), series->num_medicines(),
              series->num_pairs(), out_path.c_str());
  if (Status status = run->Finish(flags); !status.ok()) {
    return Fail(status);
  }
  return 0;
}

int RunDetect(const Flags& flags) {
  Catalog catalog;
  auto series = medmodel::ReadSeriesCsvFile(flags.GetString("series"),
                                            catalog);
  if (!series.ok()) return Fail(series.status());

  auto run = CliRun::FromFlags(flags, /*with_pool=*/true);
  if (!run.ok()) return Fail(run.status());

  const DetectorFlagDefaults defaults;  // margin 0, tail 1, exact
  auto options = DetectorOptionsFromFlags(flags, defaults);
  if (!options.ok()) return Fail(options.status());
  auto exact = UseExactAlgorithm(flags, defaults);
  if (!exact.ok()) return Fail(exact.status());
  auto max_breaks = flags.GetInt("max-breaks", 1);
  if (!max_breaks.ok()) return Fail(max_breaks.status());

  std::printf("kind,disease,medicine,change,month,lambda,criterion,"
              "criterion_no_change\n");

  const auto kind_name = [](trend::SeriesKind kind) {
    return kind == trend::SeriesKind::kDisease
               ? "disease"
               : (kind == trend::SeriesKind::kMedicine ? "medicine"
                                                       : "prescription");
  };
  const auto disease_name = [&catalog](trend::SeriesKind kind,
                                       DiseaseId d) {
    return kind != trend::SeriesKind::kMedicine
               ? catalog.diseases().Name(d)
               : std::string("-");
  };
  const auto medicine_name = [&catalog](trend::SeriesKind kind,
                                        MedicineId m) {
    return kind != trend::SeriesKind::kDisease
               ? catalog.medicines().Name(m)
               : std::string("-");
  };

  if (*max_breaks > 1) {
    // Multi-break report: run the greedy extension per series, serially
    // (the multi-break search is itself the expensive path).
    ssm::ChangePointOptions detector_options = *options;
    detector_options.fit.metrics = run->metrics();
    auto emit = [&](trend::SeriesKind kind, DiseaseId d, MedicineId m,
                    const std::vector<double>& values) {
      std::vector<double> normalized = values;
      const double sd = stats::StdDev(values);
      if (sd > 0.0) {
        for (double& value : normalized) value /= sd;
      }
      ssm::ChangePointDetector detector(normalized, detector_options);
      auto result = detector.DetectMultiple(static_cast<int>(*max_breaks));
      if (!result.ok()) return;
      std::string months;
      std::string lambdas;
      for (std::size_t k = 0; k < result->interventions.size(); ++k) {
        if (k > 0) {
          months += '|';
          lambdas += '|';
        }
        months += std::to_string(result->interventions[k].change_point);
        lambdas += StrFormat(
            "%.3f", (k < result->best_model.lambdas.size()
                         ? result->best_model.lambdas[k] * sd
                         : 0.0));
      }
      std::printf("%s,%s,%s,%d,%s,%s,%.3f,%.3f\n", kind_name(kind),
                  disease_name(kind, d).c_str(),
                  medicine_name(kind, m).c_str(),
                  result->interventions.empty() ? 0 : 1,
                  months.empty() ? "-" : months.c_str(),
                  lambdas.empty() ? "-" : lambdas.c_str(),
                  result->best_aic, result->aic_without_intervention);
    };
    series->ForEachDisease([&](DiseaseId d, const std::vector<double>& v) {
      emit(trend::SeriesKind::kDisease, d, MedicineId(), v);
    });
    series->ForEachMedicine(
        [&](MedicineId m, const std::vector<double>& v) {
          emit(trend::SeriesKind::kMedicine, DiseaseId(), m, v);
        });
    series->ForEachPair(
        [&](DiseaseId d, MedicineId m, const std::vector<double>& v) {
          emit(trend::SeriesKind::kPrescription, d, m, v);
        });
  } else {
    // Single-break: analyze every series through AnalyzeAll so --threads
    // parallelizes the fits; the report preserves the serial traversal
    // order, so the printed rows are bit-identical at any thread count.
    trend::TrendAnalyzerOptions analyzer_options;
    analyzer_options.detector = *options;
    analyzer_options.use_approximate = !*exact;
    trend::TrendAnalyzer analyzer(analyzer_options);
    auto report = analyzer.AnalyzeAll(run->context(), *series);
    if (!report.ok()) return Fail(report.status());
    auto emit_analysis = [&](const trend::SeriesAnalysis& analysis) {
      std::printf("%s,%s,%s,%d,%d,%.3f,%.3f,%.3f\n",
                  kind_name(analysis.kind),
                  disease_name(analysis.kind, analysis.disease).c_str(),
                  medicine_name(analysis.kind, analysis.medicine).c_str(),
                  analysis.has_change ? 1 : 0, analysis.change_point,
                  analysis.lambda, analysis.aic,
                  analysis.aic_without_intervention);
    };
    for (const trend::SeriesAnalysis& analysis : report->diseases) {
      emit_analysis(analysis);
    }
    for (const trend::SeriesAnalysis& analysis : report->medicines) {
      emit_analysis(analysis);
    }
    for (const trend::SeriesAnalysis& analysis : report->prescriptions) {
      emit_analysis(analysis);
    }
  }
  if (Status status = run->Finish(flags); !status.ok()) {
    return Fail(status);
  }
  return 0;
}

int RunPipeline(const Flags& flags) {
  auto run = CliRun::FromFlags(flags, /*with_pool=*/true);
  if (!run.ok()) return Fail(run.status());
  auto corpus = LoadCorpusFromFlags(flags, *run);
  if (!corpus.ok()) return Fail(corpus.status());

  const DetectorFlagDefaults defaults{4.0, 3, "approx"};
  auto config = PipelineConfigFromFlags(flags, defaults);
  if (!config.ok()) return Fail(config.status());

  auto result = trend::RunPipeline(*corpus, *config, run->context());
  if (!result.ok()) return Fail(result.status());
  const medmodel::SeriesSet& series = result->series;
  const trend::TrendReport& report = result->report;
  std::printf("reproduced %zu disease, %zu medicine, %zu prescription "
              "series\n",
              series.num_diseases(), series.num_medicines(),
              series.num_pairs());

  trend::TrendAnalyzer analyzer(config->analyzer);
  const Catalog& catalog = corpus->catalog();
  const std::string out_path = flags.GetString("out");
  if (!out_path.empty()) {
    if (Status status = trend::WriteReportCsvFile(report, analyzer,
                                                  catalog, out_path);
        !status.ok()) {
      return Fail(status);
    }
    std::printf("wrote analysis report to %s\n", out_path.c_str());
  }
  std::printf("\ndetected changes (algorithm %s, margin %g, tail %d):\n",
              config->analyzer.use_approximate ? "2 (approx)"
                                               : "1 (exact)",
              config->analyzer.detector.aic_margin,
              config->analyzer.detector.min_tail_observations);
  for (const trend::SeriesAnalysis& analysis : report.medicines) {
    if (!analysis.has_change) continue;
    std::printf("  medicine      %-32s month %2d  lambda %+8.2f\n",
                catalog.medicines().Name(analysis.medicine).c_str(),
                analysis.change_point, analysis.lambda);
  }
  for (const trend::SeriesAnalysis& analysis : report.diseases) {
    if (!analysis.has_change) continue;
    std::printf("  disease       %-32s month %2d  lambda %+8.2f\n",
                catalog.diseases().Name(analysis.disease).c_str(),
                analysis.change_point, analysis.lambda);
  }
  for (const trend::SeriesAnalysis& analysis : report.prescriptions) {
    if (!analysis.has_change) continue;
    const trend::ChangeCause cause =
        analyzer.ClassifyPrescriptionChange(report, analysis);
    std::printf("  prescription  %s -> %s  month %2d  %s\n",
                catalog.diseases().Name(analysis.disease).c_str(),
                catalog.medicines().Name(analysis.medicine).c_str(),
                analysis.change_point,
                std::string(trend::ChangeCauseName(cause)).c_str());
  }
  if (Status status = run->Finish(flags); !status.ok()) {
    return Fail(status);
  }
  return 0;
}

int RunDrilldown(const Flags& flags) {
  auto run = CliRun::FromFlags(flags, /*with_pool=*/true);
  if (!run.ok()) return Fail(run.status());
  auto corpus = LoadCorpusFromFlags(flags, *run);
  if (!corpus.ok()) return Fail(corpus.status());
  const std::string hospitals_path = flags.GetString("hospitals");
  if (!hospitals_path.empty()) {
    std::ifstream in(hospitals_path);
    if (!in) {
      return Fail(Status::IoError("cannot open " + hospitals_path));
    }
    if (Status status = ReadHospitalsCsv(in, corpus->catalog());
        !status.ok()) {
      return Fail(status);
    }
  }
  auto axis = trend::ParseDrillAxis(flags.GetString("axis"));
  if (!axis.ok()) return Fail(axis.status());
  auto min_share = flags.GetDouble("min-share", 0.6);
  if (!min_share.ok()) return Fail(min_share.status());
  if (!(*min_share > 0.0) || *min_share > 1.0) {
    return Fail(Status::InvalidArgument("--min-share must be in (0, 1]"));
  }
  if (flags.Has("explain-out") && !flags.Has("explain")) {
    return Fail(Status::InvalidArgument(
        "--explain-out requires --explain <node>"));
  }

  const DetectorFlagDefaults defaults{4.0, 3, "approx"};
  auto config = PipelineConfigFromFlags(flags, defaults);
  if (!config.ok()) return Fail(config.status());
  config->drilldown_axes = {*axis};

  auto result = trend::RunPipeline(*corpus, *config, run->context());
  if (!result.ok()) return Fail(result.status());
  const trend::DrillDownReport& drill = result->drilldowns.front();

  std::size_t leaves = 0;
  std::size_t changed = 0;
  for (const trend::DrillNode& node : drill.nodes) {
    if (node.is_leaf) ++leaves;
    if (node.analysis.has_change) ++changed;
  }
  std::printf("%s axis: %zu nodes (%zu leaves) over %d months, "
              "%zu with a detected change\n",
              std::string(trend::DrillAxisName(drill.axis)).c_str(),
              drill.nodes.size(), leaves, drill.num_months, changed);

  const std::string out_path = flags.GetString("out");
  if (!out_path.empty()) {
    if (Status status = trend::WriteDrillDownCsvFile(drill, out_path);
        !status.ok()) {
      return Fail(status);
    }
    std::printf("wrote drill-down CSV to %s\n", out_path.c_str());
  }
  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    // Byte-identical to `query --op drilldown --out`: same renderer,
    // same deterministic serialization (the drill-smoke gate relies on
    // this).
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      return Fail(Status::IoError("cannot open " + json_path));
    }
    out << serve::DrillDownToJson(drill).Serialize() << "\n";
    std::printf("wrote drill-down JSON to %s\n", json_path.c_str());
  }
  if (flags.Has("explain")) {
    auto explain =
        trend::ExplainShift(drill, flags.GetString("explain"), *min_share);
    if (!explain.ok()) return Fail(explain.status());
    std::printf("shift of '%s' at month %d (delta %+.3f):\n",
                explain->target.c_str(), explain->change_month,
                explain->delta);
    for (const trend::ExplainStep& step : explain->path) {
      std::printf("  %-40s delta %+10.3f  share %.3f\n",
                  step.node.c_str(), step.delta, step.share);
    }
    std::printf("driver: %s (%.1f%% of the shift)\n",
                explain->driver.c_str(), 100.0 * explain->driver_share);
    const std::string explain_path = flags.GetString("explain-out");
    if (!explain_path.empty()) {
      std::ofstream out(explain_path, std::ios::binary);
      if (!out) {
        return Fail(Status::IoError("cannot open " + explain_path));
      }
      out << serve::ExplainToJson(drill, *explain).Serialize() << "\n";
      std::printf("wrote explain JSON to %s\n", explain_path.c_str());
    }
  }
  if (Status status = run->Finish(flags); !status.ok()) {
    return Fail(status);
  }
  return 0;
}

int RunServe(const Flags& flags) {
  // force_metrics: the daemon's `metrics` endpoint and the cache.*
  // warm-start counters need a registry whether or not this run also
  // exports --metrics-out at exit. force_trace: request-scoped spans
  // and tail-based slow-request retention need the ring regardless of
  // --trace-out.
  auto run = CliRun::FromFlags(flags, /*with_pool=*/true,
                               /*force_metrics=*/true,
                               /*force_trace=*/true);
  if (!run.ok()) return Fail(run.status());

  const DetectorFlagDefaults defaults{4.0, 3, "approx"};
  auto config = PipelineConfigFromFlags(flags, defaults);
  if (!config.ok()) return Fail(config.status());

  auto service = serve::TrendService::Create(*config, run->context());
  if (!service.ok()) return Fail(service.status());

  serve::ServerOptions options;
  options.host = flags.GetString("host", "127.0.0.1");
  auto port = flags.GetInt("port", 0);
  if (!port.ok()) return Fail(port.status());
  options.port = static_cast<int>(*port);
  auto workers = flags.GetInt("workers", 4);
  if (!workers.ok()) return Fail(workers.status());
  options.num_workers = static_cast<int>(*workers);
  auto max_pending = flags.GetInt("max-pending", 64);
  if (!max_pending.ok()) return Fail(max_pending.status());
  options.max_pending = static_cast<int>(*max_pending);
  auto max_frame = flags.GetInt(
      "max-frame", static_cast<std::int64_t>(options.limits.max_frame_bytes));
  if (!max_frame.ok()) return Fail(max_frame.status());
  if (*max_frame < 16) {
    return Fail(Status::InvalidArgument(
        "--max-frame must be at least 16 bytes"));
  }
  options.limits.max_frame_bytes = static_cast<std::size_t>(*max_frame);
  options.access_log_path = flags.GetString("access-log");
  auto slow_ms = flags.GetInt("slow-ms", 500);
  if (!slow_ms.ok()) return Fail(slow_ms.status());
  options.slow_request_threshold_ms = static_cast<int>(*slow_ms);
  auto stall_ms = flags.GetInt("swap-stall-ms", 1000);
  if (!stall_ms.ok()) return Fail(stall_ms.status());
  options.swap_stall_deadline_ms = static_cast<int>(*stall_ms);

  auto server = serve::TcpServer::Start(service->get(), options);
  if (!server.ok()) return Fail(server.status());
  std::printf("serving on %s:%d (%d workers)\n", options.host.c_str(),
              (*server)->port(), options.num_workers);
  std::fflush(stdout);
  const std::string port_file = flags.GetString("port-file");
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    if (!out) {
      return Fail(Status::IoError("cannot open " + port_file));
    }
    out << (*server)->port() << "\n";
  }
  if (Status status = (*server)->Serve(); !status.ok()) {
    return Fail(status);
  }
  std::printf("server stopped\n");
  if (Status status = run->Finish(flags); !status.ok()) {
    return Fail(status);
  }
  return 0;
}

// Builds the request document for `op` from the flags, driven entirely
// by the op's registry row: each declared parameter maps to the flag
// CliFlagName(param) and is encoded per its declared type. Flags that
// belong to a DIFFERENT op are rejected up front (mirror of the
// server's unknown-parameter policy), as are missing required ones —
// both fail client-side with the flag's name instead of a wire round
// trip.
Result<serve::JsonValue> BuildQueryRequest(const serve::EndpointSpec& spec,
                                           const Flags& flags) {
  for (const serve::EndpointSpec& other : serve::EndpointTable()) {
    for (const serve::ParamSpec& param : other.params) {
      if (spec.FindParam(param.name) != nullptr) continue;
      const std::string flag = CliFlagName(param.name);
      if (flags.Has(flag)) {
        return Status::InvalidArgument(
            "--" + flag + " does not apply to op '" +
            std::string(spec.name) + "'");
      }
    }
  }
  serve::JsonValue request = serve::JsonValue::Object();
  request.Set("op", serve::JsonValue::String(std::string(spec.name)));
  for (const serve::ParamSpec& param : spec.params) {
    const std::string flag = CliFlagName(param.name);
    if (!flags.Has(flag)) {
      if (param.required) {
        return Status::InvalidArgument(
            "query --op " + std::string(spec.name) + ": --" + flag +
            " is required");
      }
      continue;
    }
    const std::string key(param.name);
    switch (param.type) {
      case serve::ParamType::kString:
        request.Set(key, serve::JsonValue::String(flags.GetString(flag)));
        break;
      case serve::ParamType::kInt: {
        MIC_ASSIGN_OR_RETURN(const std::int64_t value,
                             flags.GetInt(flag, 0));
        request.Set(key, serve::JsonValue::Int(value));
        break;
      }
      case serve::ParamType::kDouble: {
        MIC_ASSIGN_OR_RETURN(const double value,
                             flags.GetDouble(flag, 0.0));
        request.Set(key, serve::JsonValue::Number(value));
        break;
      }
      case serve::ParamType::kBool: {
        MIC_ASSIGN_OR_RETURN(const bool value, flags.GetBool(flag, false));
        request.Set(key, serve::JsonValue::Bool(value));
        break;
      }
      case serve::ParamType::kStringList: {
        serve::JsonValue list = serve::JsonValue::Array();
        for (const std::string& item : Split(flags.GetString(flag), ',')) {
          list.Append(serve::JsonValue::String(item));
        }
        request.Set(key, std::move(list));
        break;
      }
      case serve::ParamType::kIntList: {
        serve::JsonValue list = serve::JsonValue::Array();
        for (const std::string& item : Split(flags.GetString(flag), ',')) {
          MIC_ASSIGN_OR_RETURN(const std::int64_t parsed,
                               ParseInt64(item));
          list.Append(serve::JsonValue::Int(parsed));
        }
        request.Set(key, std::move(list));
        break;
      }
    }
  }
  return request;
}

int RunQuery(const Flags& flags) {
  auto run = CliRun::FromFlags(flags, /*with_pool=*/false);
  if (!run.ok()) return Fail(run.status());
  const std::string op = flags.GetString("op", "health");
  const serve::EndpointSpec* spec = serve::FindEndpoint(op);
  if (spec == nullptr) {
    std::string ops;
    for (const serve::EndpointSpec& endpoint : serve::EndpointTable()) {
      if (!ops.empty()) ops += '|';
      ops += endpoint.name;
    }
    return Fail(Status::InvalidArgument("unknown --op: " + op +
                                        " (expected " + ops + ")"));
  }
  auto request = BuildQueryRequest(*spec, flags);
  if (!request.ok()) return Fail(request.status());

  auto port = flags.GetInt("port", 0);
  if (!port.ok()) return Fail(port.status());
  auto fd = serve::ConnectTcp(flags.GetString("host", "127.0.0.1"),
                              static_cast<int>(*port));
  if (!fd.ok()) return Fail(fd.status());
  serve::WireLimits limits;
  auto timeout = flags.GetInt("timeout-ms", 30000);
  if (!timeout.ok()) return Fail(timeout.status());
  limits.timeout_ms = static_cast<int>(*timeout);
  auto response = serve::RoundTrip(*fd, *request, limits);
  ::close(*fd);
  if (!response.ok()) return Fail(response.status());

  // --out treatment follows the registry's per-op ResponseMode:
  // kRawMember writes data[raw_member]'s raw bytes (report_csv
  // byte-compares against the offline `pipeline --out` artifact),
  // kDataOnly writes data's deterministic serialization (drilldown /
  // explain byte-compare against `mictrend drilldown` output), and
  // kEnvelope writes the whole response.
  const bool ok = response->GetBool("ok", false);
  const std::string out_path = flags.GetString("out");
  const serve::JsonValue* data = response->Find("data");
  if (ok && !out_path.empty() && data != nullptr &&
      spec->response == serve::ResponseMode::kRawMember) {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      return Fail(Status::IoError("cannot open " + out_path));
    }
    out << data->GetString(std::string(spec->raw_member));
  } else if (ok && !out_path.empty() && data != nullptr &&
             spec->response == serve::ResponseMode::kDataOnly) {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      return Fail(Status::IoError("cannot open " + out_path));
    }
    out << data->Serialize() << "\n";
  } else if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      return Fail(Status::IoError("cannot open " + out_path));
    }
    out << response->Serialize() << "\n";
  } else {
    std::printf("%s\n", response->Serialize().c_str());
  }
  if (Status status = run->Finish(flags); !status.ok()) {
    return Fail(status);
  }
  return ok ? 0 : 1;
}

int Main(int argc, char** argv) {
  ApplyLogLevelFromEnv();
  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 flags.status().ToString().c_str());
    return Usage();
  }
  const CommandSpec* spec = FindCommand(flags->command());
  if (spec == nullptr) return Usage();
  if (Status status = ValidateFlags(*spec, *flags); !status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return Usage();
  }
  const std::string& command = flags->command();
  if (command == "generate") return RunGenerate(*flags);
  if (command == "import") return RunImport(*flags);
  if (command == "stats") return RunStats(*flags);
  if (command == "reproduce") return RunReproduce(*flags);
  if (command == "detect") return RunDetect(*flags);
  if (command == "pipeline") return RunPipeline(*flags);
  if (command == "drilldown") return RunDrilldown(*flags);
  if (command == "serve") return RunServe(*flags);
  if (command == "query") return RunQuery(*flags);
  return Usage();
}

}  // namespace
}  // namespace mic::tools

int main(int argc, char** argv) { return mic::tools::Main(argc, argv); }
