// mictrend command-line tool: the library's pipeline as composable
// shell steps over CSV files.
//
//   mictrend generate  --out corpus.csv [--hospitals-out h.csv]
//                      [--months 43] [--patients 2000] [--seed S]
//                      [--background 40]
//   mictrend stats     --corpus corpus.csv
//   mictrend reproduce --corpus corpus.csv --out series.csv
//                      [--min-total 10] [--coupling 0]
//                      [--model proposed|cooccurrence]
//   mictrend detect    --series series.csv [--algorithm exact|approx]
//                      [--margin 0] [--criterion aic|aicc|bic]
//                      [--kind slope|level|pulse|auto] [--seasonal true]
//                      [--min-tail 1] [--max-breaks 1]
//   mictrend pipeline  --corpus corpus.csv   (reproduce + detect +
//                      classify, printed as a report)

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "medmodel/series_io.h"
#include "medmodel/timeseries.h"
#include "mic/io.h"
#include "runtime/thread_pool.h"
#include "ssm/changepoint.h"
#include "stats/metrics.h"
#include "synth/generator.h"
#include "synth/scenario.h"
#include "synth/world_io.h"
#include "tools/flags.h"
#include "trend/report_io.h"
#include "trend/trend_analyzer.h"

namespace mic::tools {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: mictrend <generate|stats|reproduce|detect|pipeline> "
      "[--flags]\n"
      "  generate  --out corpus.csv [--world world.cfg]\n"
      "            [--hospitals-out h.csv] [--months 43]\n"
      "            [--patients 2000] [--background 40] [--seed 20190411]\n"
      "  stats     --corpus corpus.csv\n"
      "  reproduce --corpus corpus.csv --out series.csv [--min-total 10]\n"
      "            [--coupling 0] [--model proposed|cooccurrence]\n"
      "            [--threads N] [--runtime-stats]\n"
      "  detect    --series series.csv [--algorithm exact|approx]\n"
      "            [--margin 0] [--criterion aic|aicc|bic]\n"
      "            [--kind slope|level|pulse|auto] [--seasonal true]\n"
      "            [--min-tail 1] [--max-breaks 1]\n"
      "  pipeline  --corpus corpus.csv [--min-total 10] [--out report.csv]\n"
      "            [--threads N] [--runtime-stats]\n"
      "--threads defaults to the hardware concurrency; 1 runs inline\n"
      "(either way the output is bit-identical).\n");
  return 2;
}

/// Pool for --threads N (default: hardware concurrency; 1 spawns no
/// workers and preserves today's inline behavior exactly).
Result<std::unique_ptr<runtime::ThreadPool>> MakePoolFromFlags(
    const Flags& flags) {
  MIC_ASSIGN_OR_RETURN(std::int64_t threads, flags.GetInt("threads", 0));
  if (flags.Has("threads") && threads < 1) {
    return Status::InvalidArgument("--threads must be >= 1");
  }
  return std::make_unique<runtime::ThreadPool>(static_cast<int>(threads));
}

Result<synth::GeneratedData> GenerateFromFlags(const Flags& flags) {
  synth::WorldConfig config;
  if (flags.Has("world")) {
    // Custom world from the world_io text format.
    MIC_ASSIGN_OR_RETURN(
        config, synth::ReadWorldConfigFile(flags.GetString("world")));
  } else {
    synth::PaperWorldOptions options;
    MIC_ASSIGN_OR_RETURN(std::int64_t months, flags.GetInt("months", 43));
    MIC_ASSIGN_OR_RETURN(std::int64_t patients,
                         flags.GetInt("patients", 2000));
    MIC_ASSIGN_OR_RETURN(std::int64_t background,
                         flags.GetInt("background", 40));
    MIC_ASSIGN_OR_RETURN(std::int64_t seed,
                         flags.GetInt("seed", 20190411));
    options.num_months = static_cast<int>(months);
    options.num_patients = static_cast<std::size_t>(patients);
    options.num_background_diseases = static_cast<std::size_t>(background);
    options.seed = static_cast<std::uint64_t>(seed);
    config = synth::MakePaperWorldConfig(options);
  }
  MIC_ASSIGN_OR_RETURN(std::int64_t seed_override,
                       flags.GetInt("seed", 0));
  if (flags.Has("world") && seed_override != 0) {
    config.seed = static_cast<std::uint64_t>(seed_override);
  }
  MIC_ASSIGN_OR_RETURN(synth::World world,
                       synth::World::Create(std::move(config)));
  synth::ClaimGenerator generator(&world);
  return generator.Generate();
}

int RunGenerate(const Flags& flags) {
  const std::string out_path = flags.GetString("out");
  if (out_path.empty()) {
    std::fprintf(stderr, "generate: --out is required\n");
    return 2;
  }
  auto data = GenerateFromFlags(flags);
  if (!data.ok()) return Fail(data.status());
  if (Status status = WriteCorpusCsvFile(data->corpus, out_path);
      !status.ok()) {
    return Fail(status);
  }
  std::printf("wrote %zu records over %zu months to %s\n",
              data->corpus.TotalRecords(), data->corpus.num_months(),
              out_path.c_str());
  const std::string hospitals_path = flags.GetString("hospitals-out");
  if (!hospitals_path.empty()) {
    std::ofstream out(hospitals_path);
    if (!out) {
      return Fail(Status::IoError("cannot open " + hospitals_path));
    }
    if (Status status =
            WriteHospitalsCsv(data->corpus.catalog(), out);
        !status.ok()) {
      return Fail(status);
    }
    std::printf("wrote hospital attributes to %s\n",
                hospitals_path.c_str());
  }
  return 0;
}

int RunStats(const Flags& flags) {
  const std::string corpus_path = flags.GetString("corpus");
  if (corpus_path.empty()) {
    std::fprintf(stderr, "stats: --corpus is required\n");
    return 2;
  }
  auto corpus = ReadCorpusCsvFile(corpus_path);
  if (!corpus.ok()) return Fail(corpus.status());
  std::printf("months: %zu\nrecords: %zu\n", corpus->num_months(),
              corpus->TotalRecords());
  double mean_diseases = 0.0;
  double mean_medicines = 0.0;
  std::size_t nonempty = 0;
  for (std::size_t t = 0; t < corpus->num_months(); ++t) {
    const MonthlyDataset& month = corpus->month(t);
    if (month.empty()) continue;
    mean_diseases += month.MeanDiseasesPerRecord();
    mean_medicines += month.MeanMedicinesPerRecord();
    ++nonempty;
    std::printf("  month %2zu: %6zu records, %5zu diseases, %5zu "
                "medicines\n",
                t, month.size(), month.CountDistinctDiseases(),
                month.CountDistinctMedicines());
  }
  if (nonempty > 0) {
    std::printf("mean diseases/record: %.3f\nmean medicines/record: %.3f\n",
                mean_diseases / static_cast<double>(nonempty),
                mean_medicines / static_cast<double>(nonempty));
  }
  return 0;
}

int RunReproduce(const Flags& flags) {
  const std::string corpus_path = flags.GetString("corpus");
  const std::string out_path = flags.GetString("out");
  if (corpus_path.empty() || out_path.empty()) {
    std::fprintf(stderr, "reproduce: --corpus and --out are required\n");
    return 2;
  }
  auto corpus = ReadCorpusCsvFile(corpus_path);
  if (!corpus.ok()) return Fail(corpus.status());

  auto pool = MakePoolFromFlags(flags);
  if (!pool.ok()) return Fail(pool.status());

  medmodel::ReproducerOptions options;
  options.model_options.pool = pool->get();
  auto min_total = flags.GetDouble("min-total", 10.0);
  if (!min_total.ok()) return Fail(min_total.status());
  options.min_series_total = *min_total;
  auto coupling = flags.GetDouble("coupling", 0.0);
  if (!coupling.ok()) return Fail(coupling.status());
  options.model_options.prior_strength = *coupling;
  const std::string model = flags.GetString("model", "proposed");
  if (model == "cooccurrence") {
    options.model_kind = medmodel::LinkModelKind::kCooccurrence;
  } else if (model != "proposed") {
    std::fprintf(stderr, "reproduce: unknown --model '%s'\n",
                 model.c_str());
    return 2;
  }

  auto series = medmodel::ReproduceSeries(*corpus, options);
  if (!series.ok()) return Fail(series.status());
  if (Status status = medmodel::WriteSeriesCsvFile(
          *series, corpus->catalog(), out_path);
      !status.ok()) {
    return Fail(status);
  }
  std::printf("wrote %zu disease, %zu medicine, %zu prescription series "
              "to %s\n",
              series->num_diseases(), series->num_medicines(),
              series->num_pairs(), out_path.c_str());
  if (flags.GetBool("runtime-stats")) {
    std::printf("runtime-stats threads=%d %s\n",
                (*pool)->num_threads(), (*pool)->stats().ToJson().c_str());
  }
  return 0;
}

Result<ssm::ChangePointOptions> DetectorOptionsFromFlags(
    const Flags& flags) {
  ssm::ChangePointOptions options;
  options.seasonal = flags.GetBool("seasonal", true);
  MIC_ASSIGN_OR_RETURN(double margin, flags.GetDouble("margin", 0.0));
  options.aic_margin = margin;
  MIC_ASSIGN_OR_RETURN(std::int64_t min_tail, flags.GetInt("min-tail", 1));
  options.min_tail_observations = static_cast<int>(min_tail);
  const std::string criterion = flags.GetString("criterion", "aic");
  if (criterion == "aic") {
    options.criterion = ssm::SelectionCriterion::kAic;
  } else if (criterion == "aicc") {
    options.criterion = ssm::SelectionCriterion::kAicc;
  } else if (criterion == "bic") {
    options.criterion = ssm::SelectionCriterion::kBic;
  } else {
    return Status::InvalidArgument("unknown --criterion: " + criterion);
  }
  const std::string kind = flags.GetString("kind", "slope");
  if (kind == "slope") {
    options.candidate_kinds = {ssm::InterventionKind::kSlopeShift};
  } else if (kind == "level") {
    options.candidate_kinds = {ssm::InterventionKind::kLevelShift};
  } else if (kind == "pulse") {
    options.candidate_kinds = {ssm::InterventionKind::kPulse};
  } else if (kind == "auto") {
    options.candidate_kinds = {ssm::InterventionKind::kSlopeShift,
                               ssm::InterventionKind::kLevelShift};
  } else {
    return Status::InvalidArgument("unknown --kind: " + kind);
  }
  return options;
}

int RunDetect(const Flags& flags) {
  const std::string series_path = flags.GetString("series");
  if (series_path.empty()) {
    std::fprintf(stderr, "detect: --series is required\n");
    return 2;
  }
  Catalog catalog;
  auto series = medmodel::ReadSeriesCsvFile(series_path, catalog);
  if (!series.ok()) return Fail(series.status());

  auto options = DetectorOptionsFromFlags(flags);
  if (!options.ok()) return Fail(options.status());
  const bool exact = flags.GetString("algorithm", "exact") != "approx";
  auto max_breaks = flags.GetInt("max-breaks", 1);
  if (!max_breaks.ok()) return Fail(max_breaks.status());

  trend::TrendAnalyzerOptions analyzer_options;
  analyzer_options.detector = *options;
  analyzer_options.use_approximate = !exact;
  trend::TrendAnalyzer analyzer(analyzer_options);

  std::printf("kind,disease,medicine,change,month,lambda,criterion,"
              "criterion_no_change\n");
  auto emit = [&](trend::SeriesKind kind, DiseaseId d, MedicineId m,
                  const std::vector<double>& values) {
    const char* kind_name =
        kind == trend::SeriesKind::kDisease
            ? "disease"
            : (kind == trend::SeriesKind::kMedicine ? "medicine"
                                                    : "prescription");
    if (*max_breaks > 1) {
      // Multi-break report: run the greedy extension directly.
      std::vector<double> normalized = values;
      const double sd = stats::StdDev(values);
      if (sd > 0.0) {
        for (double& value : normalized) value /= sd;
      }
      ssm::ChangePointDetector detector(normalized, *options);
      auto result = detector.DetectMultiple(static_cast<int>(*max_breaks));
      if (!result.ok()) return;
      std::string months;
      std::string lambdas;
      for (std::size_t k = 0; k < result->interventions.size(); ++k) {
        if (k > 0) {
          months += '|';
          lambdas += '|';
        }
        months += std::to_string(result->interventions[k].change_point);
        lambdas += StrFormat(
            "%.3f", (k < result->best_model.lambdas.size()
                         ? result->best_model.lambdas[k] * sd
                         : 0.0));
      }
      std::printf("%s,%s,%s,%d,%s,%s,%.3f,%.3f\n", kind_name,
                  kind != trend::SeriesKind::kMedicine
                      ? catalog.diseases().Name(d).c_str()
                      : "-",
                  kind != trend::SeriesKind::kDisease
                      ? catalog.medicines().Name(m).c_str()
                      : "-",
                  result->interventions.empty() ? 0 : 1,
                  months.empty() ? "-" : months.c_str(),
                  lambdas.empty() ? "-" : lambdas.c_str(),
                  result->best_aic, result->aic_without_intervention);
      return;
    }
    auto analysis = analyzer.AnalyzeSeries(kind, d, m, values);
    if (!analysis.ok()) return;
    std::printf("%s,%s,%s,%d,%d,%.3f,%.3f,%.3f\n", kind_name,
                kind != trend::SeriesKind::kMedicine
                    ? catalog.diseases().Name(d).c_str()
                    : "-",
                kind != trend::SeriesKind::kDisease
                    ? catalog.medicines().Name(m).c_str()
                    : "-",
                analysis->has_change ? 1 : 0, analysis->change_point,
                analysis->lambda, analysis->aic,
                analysis->aic_without_intervention);
  };

  series->ForEachDisease([&](DiseaseId d, const std::vector<double>& v) {
    emit(trend::SeriesKind::kDisease, d, MedicineId(), v);
  });
  series->ForEachMedicine([&](MedicineId m, const std::vector<double>& v) {
    emit(trend::SeriesKind::kMedicine, DiseaseId(), m, v);
  });
  series->ForEachPair(
      [&](DiseaseId d, MedicineId m, const std::vector<double>& v) {
        emit(trend::SeriesKind::kPrescription, d, m, v);
      });
  return 0;
}

int RunPipeline(const Flags& flags) {
  const std::string corpus_path = flags.GetString("corpus");
  if (corpus_path.empty()) {
    std::fprintf(stderr, "pipeline: --corpus is required\n");
    return 2;
  }
  auto corpus = ReadCorpusCsvFile(corpus_path);
  if (!corpus.ok()) return Fail(corpus.status());

  auto pool = MakePoolFromFlags(flags);
  if (!pool.ok()) return Fail(pool.status());

  medmodel::ReproducerOptions reproducer;
  reproducer.model_options.pool = pool->get();
  auto min_total = flags.GetDouble("min-total", 10.0);
  if (!min_total.ok()) return Fail(min_total.status());
  reproducer.min_series_total = *min_total;
  auto series = medmodel::ReproduceSeries(*corpus, reproducer);
  if (!series.ok()) return Fail(series.status());
  std::printf("reproduced %zu disease, %zu medicine, %zu prescription "
              "series\n",
              series->num_diseases(), series->num_medicines(),
              series->num_pairs());

  trend::TrendAnalyzerOptions analyzer_options;
  analyzer_options.pool = pool->get();
  trend::TrendAnalyzer analyzer(analyzer_options);
  auto report = analyzer.AnalyzeAll(*series);
  if (!report.ok()) return Fail(report.status());

  const Catalog& catalog = corpus->catalog();
  const std::string out_path = flags.GetString("out");
  if (!out_path.empty()) {
    if (Status status = trend::WriteReportCsvFile(*report, analyzer,
                                                  catalog, out_path);
        !status.ok()) {
      return Fail(status);
    }
    std::printf("wrote analysis report to %s\n", out_path.c_str());
  }
  std::printf("\ndetected changes (pipeline defaults: Algorithm 2, "
              "margin 4, tail 3):\n");
  for (const trend::SeriesAnalysis& analysis : report->medicines) {
    if (!analysis.has_change) continue;
    std::printf("  medicine      %-32s month %2d  lambda %+8.2f\n",
                catalog.medicines().Name(analysis.medicine).c_str(),
                analysis.change_point, analysis.lambda);
  }
  for (const trend::SeriesAnalysis& analysis : report->diseases) {
    if (!analysis.has_change) continue;
    std::printf("  disease       %-32s month %2d  lambda %+8.2f\n",
                catalog.diseases().Name(analysis.disease).c_str(),
                analysis.change_point, analysis.lambda);
  }
  for (const trend::SeriesAnalysis& analysis : report->prescriptions) {
    if (!analysis.has_change) continue;
    const trend::ChangeCause cause =
        analyzer.ClassifyPrescriptionChange(*report, analysis);
    std::printf("  prescription  %s -> %s  month %2d  %s\n",
                catalog.diseases().Name(analysis.disease).c_str(),
                catalog.medicines().Name(analysis.medicine).c_str(),
                analysis.change_point,
                std::string(trend::ChangeCauseName(cause)).c_str());
  }
  if (flags.GetBool("runtime-stats")) {
    std::printf("runtime-stats threads=%d %s\n",
                (*pool)->num_threads(), (*pool)->stats().ToJson().c_str());
  }
  return 0;
}

int Main(int argc, char** argv) {
  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 flags.status().ToString().c_str());
    return Usage();
  }
  const std::string& command = flags->command();
  if (command == "generate") return RunGenerate(*flags);
  if (command == "stats") return RunStats(*flags);
  if (command == "reproduce") return RunReproduce(*flags);
  if (command == "detect") return RunDetect(*flags);
  if (command == "pipeline") return RunPipeline(*flags);
  return Usage();
}

}  // namespace
}  // namespace mic::tools

int main(int argc, char** argv) { return mic::tools::Main(argc, argv); }
