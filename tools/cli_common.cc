#include "tools/cli_common.h"

#include <cstdio>
#include <deque>

#include "common/logging.h"
#include "mic/io.h"
#include "obs/runtime_metrics.h"
#include "obs/trace.h"
#include "serve/registry.h"
#include "store/claim_store.h"

namespace mic::tools {
namespace {

// Shared flag groups, spliced into the per-command flag lists below.
// Every subcommand takes the observability outputs; the parallel ones
// additionally take --threads.
std::vector<FlagSpec> WithObsFlags(std::vector<FlagSpec> flags) {
  flags.push_back({"metrics-out", "m.json"});
  flags.push_back({"trace-out", "t.json"});
  flags.push_back({"log-json", "run.jsonl"});
  return flags;
}

std::vector<FlagSpec> WithExecFlags(std::vector<FlagSpec> flags) {
  flags.push_back({"threads", "N"});
  flags.push_back({"cache", "off|read|write|rw"});
  flags.push_back({"cache-dir", "dir"});
  return WithObsFlags(std::move(flags));
}

// The claim-store ingest group, for subcommands that read a corpus.
std::vector<FlagSpec> WithStoreFlags(std::vector<FlagSpec> flags) {
  flags.push_back({"store", "auto|mmap|file"});
  flags.push_back({"store-dir", "dir"});
  return flags;
}

// `query` flags come from the serve endpoint registry (wire member
// names with '_' turned into '-'). FlagSpec holds string_views, so the
// generated strings are interned in a deque (stable addresses) that
// lives as long as the command table does.
std::string_view Intern(std::string text) {
  static std::deque<std::string>* strings = new std::deque<std::string>();
  for (const std::string& existing : *strings) {
    if (existing == text) return existing;
  }
  strings->push_back(std::move(text));
  return strings->back();
}

std::string_view InternedCliFlagName(std::string_view param) {
  return Intern(CliFlagName(param));
}

// "health|metrics|...|shutdown": the --op value hint enumerates every
// registered op so the usage screen stays in lockstep with the server.
std::string_view OpValuePlaceholder() {
  std::string ops;
  for (const serve::EndpointSpec& endpoint : serve::EndpointTable()) {
    if (!ops.empty()) ops += '|';
    ops += endpoint.name;
  }
  return Intern(std::move(ops));
}

std::vector<FlagSpec> DetectorFlags(std::string_view margin,
                                    std::string_view min_tail,
                                    std::string_view algorithm) {
  return {
      {"algorithm", algorithm},
      {"margin", margin},
      {"criterion", "aic|aicc|bic"},
      {"kind", "slope|level|pulse|auto"},
      {"seasonal", "true"},
      {"min-tail", min_tail},
  };
}

std::vector<CommandSpec> BuildCommandTable() {
  std::vector<CommandSpec> table;
  table.push_back(
      {"generate",
       WithObsFlags({{"out", "corpus.csv", true},
                     {"world", "world.cfg"},
                     {"hospitals-out", "h.csv"},
                     {"months", "43"},
                     {"patients", "2000"},
                     {"background", "40"},
                     {"seed", "20190411"}})});
  table.push_back(
      {"import",
       WithObsFlags({{"corpus", "corpus.csv", true},
                     {"store-dir", "dir", true},
                     {"store", "auto|mmap|file"},
                     {"hospitals", "h.csv"},
                     {"append", ""}})});
  table.push_back(
      {"stats",
       WithObsFlags(WithStoreFlags({{"corpus", "corpus.csv", true}}))});
  table.push_back(
      {"reproduce",
       WithExecFlags(WithStoreFlags({{"corpus", "corpus.csv", true},
                                     {"out", "series.csv", true},
                                     {"min-total", "10"},
                                     {"coupling", "0"},
                                     {"model", "proposed|cooccurrence"}}))});
  {
    std::vector<FlagSpec> detect_flags = {{"series", "series.csv", true}};
    for (FlagSpec& flag : DetectorFlags("0", "1", "exact|approx")) {
      detect_flags.push_back(flag);
    }
    detect_flags.push_back({"max-breaks", "1"});
    table.push_back({"detect", WithExecFlags(std::move(detect_flags))});
  }
  {
    std::vector<FlagSpec> pipeline_flags =
        WithStoreFlags({{"corpus", "corpus.csv", true},
                        {"out", "report.csv"},
                        {"min-total", "10"}});
    for (FlagSpec& flag : DetectorFlags("4", "3", "approx|exact")) {
      pipeline_flags.push_back(flag);
    }
    table.push_back({"pipeline",
                     WithExecFlags(std::move(pipeline_flags))});
  }
  {
    std::vector<FlagSpec> serve_flags = {{"store-dir", "dir", true},
                                         {"store", "auto|mmap|file"},
                                         {"host", "127.0.0.1"},
                                         {"port", "0"},
                                         {"port-file", "port.txt"},
                                         {"workers", "4"},
                                         {"max-pending", "64"},
                                         {"max-frame", "8388608"},
                                         {"access-log", "access.jsonl"},
                                         {"slow-ms", "500"},
                                         {"swap-stall-ms", "1000"},
                                         {"min-total", "10"},
                                         {"coupling", "0"},
                                         {"model", "proposed|cooccurrence"}};
    for (FlagSpec& flag : DetectorFlags("4", "3", "approx|exact")) {
      serve_flags.push_back(flag);
    }
    table.push_back({"serve", WithExecFlags(std::move(serve_flags))});
  }
  {
    // Offline twin of the served `drilldown` / `explain` endpoints:
    // same tree, same JSON renderer, so --json / --explain-out files
    // byte-compare against `query --op drilldown/explain --out`.
    std::vector<FlagSpec> drill_flags =
        WithStoreFlags({{"corpus", "corpus.csv", true},
                        {"axis", "medicine|disease|hospital", true},
                        {"hospitals", "h.csv"},
                        {"out", "drill.csv"},
                        {"json", "drill.json"},
                        {"explain", "node"},
                        {"explain-out", "explain.json"},
                        {"min-share", "0.6"},
                        {"min-total", "10"},
                        {"coupling", "0"},
                        {"model", "proposed|cooccurrence"}});
    for (FlagSpec& flag : DetectorFlags("4", "3", "approx|exact")) {
      drill_flags.push_back(flag);
    }
    table.push_back({"drilldown", WithExecFlags(std::move(drill_flags))});
  }
  {
    // The request-parameter flags are generated from the serve
    // endpoint registry — the same table the server validates against —
    // so the client cannot drift from the protocol.
    std::vector<FlagSpec> query_flags = {{"port", "N", true},
                                         {"host", "127.0.0.1"},
                                         {"op", OpValuePlaceholder()},
                                         {"out", "resp.json"},
                                         {"timeout-ms", "30000"}};
    for (const serve::EndpointSpec& endpoint : serve::EndpointTable()) {
      for (const serve::ParamSpec& param : endpoint.params) {
        const std::string_view flag = InternedCliFlagName(param.name);
        bool seen = false;
        for (const FlagSpec& existing : query_flags) {
          if (existing.name == flag) {
            seen = true;
            break;
          }
        }
        if (!seen) {
          query_flags.push_back({flag, serve::ParamTypeName(param.type)});
        }
      }
    }
    table.push_back({"query", WithObsFlags(std::move(query_flags))});
  }
  return table;
}

}  // namespace

std::string CliFlagName(std::string_view param) {
  std::string flag(param);
  for (char& c : flag) {
    if (c == '_') c = '-';
  }
  return flag;
}

const std::vector<CommandSpec>& CommandTable() {
  static const std::vector<CommandSpec>* table =
      new std::vector<CommandSpec>(BuildCommandTable());
  return *table;
}

const CommandSpec* FindCommand(std::string_view name) {
  for (const CommandSpec& command : CommandTable()) {
    if (command.name == name) return &command;
  }
  return nullptr;
}

std::string BuildUsageText() {
  std::string usage = "usage: mictrend <";
  const std::vector<CommandSpec>& table = CommandTable();
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (i > 0) usage += '|';
    usage += table[i].name;
  }
  usage += "> [--flags]\n";

  constexpr std::size_t kIndent = 12;
  constexpr std::size_t kWidth = 76;
  for (const CommandSpec& command : table) {
    std::string line = "  ";
    line += command.name;
    while (line.size() < kIndent) line += ' ';
    for (const FlagSpec& flag : command.flags) {
      std::string item = "--";
      item += flag.name;
      if (!flag.value.empty()) {
        item += ' ';
        item += flag.value;
      }
      if (!flag.required) item = "[" + item + "]";
      if (line.size() + 1 + item.size() > kWidth &&
          line.size() > kIndent) {
        usage += line;
        usage += '\n';
        line.assign(kIndent, ' ');
      } else if (line.size() > kIndent) {
        line += ' ';
      }
      line += item;
    }
    usage += line;
    usage += '\n';
  }
  usage +=
      "--threads defaults to the hardware concurrency; 1 runs inline\n"
      "(either way the output is bit-identical). --metrics-out writes\n"
      "the run's counters, timers, and histograms as JSON; --trace-out\n"
      "writes a Chrome-trace/Perfetto event timeline; --log-json writes\n"
      "a structured JSON-lines run log (MICTREND_LOG_LEVEL filters it).\n"
      "--cache-dir names an incremental snapshot store and --cache sets\n"
      "the mode: write seeds it, read serves from it, rw does both;\n"
      "warm results are byte-identical to a cold run.\n"
      "`import` seeds a persistent claim store from a corpus CSV\n"
      "(--append extends it by the new months); --store-dir points the\n"
      "corpus-reading commands at one so they skip the CSV parse, and\n"
      "--store picks the segment backend. Store-ingested runs produce\n"
      "byte-identical reports to CSV runs; a failed store read warns\n"
      "and falls back to the --corpus CSV.\n"
      "`drilldown` aggregates the analyzed series up one hierarchy\n"
      "axis (--axis medicine|disease|hospital), writes the rollup tree\n"
      "(--out CSV, --json JSON), and --explain <node> descends to the\n"
      "smallest subgroup explaining that node's detected shift.\n"
      "`serve` holds a store's analyzed world hot behind an immutable\n"
      "snapshot and answers queries over a length-prefixed JSON TCP\n"
      "protocol (docs/serve_protocol.md); `query` is the matching\n"
      "client. An ingest appends new months, warm-starts the pipeline\n"
      "via the cache, and swaps the snapshot atomically; served\n"
      "reports and drill-down documents stay byte-identical to their\n"
      "offline `pipeline` / `drilldown` twins.\n"
      "query ops (generated from the serve endpoint registry; a wire\n"
      "parameter's '_' becomes '-' in its flag):\n" +
      serve::BuildOpsUsageText();
  return usage;
}

Status ValidateFlags(const CommandSpec& spec, const Flags& flags) {
  for (const std::string& key : flags.Keys()) {
    if (key == "runtime-stats") {
      // Removed after its PR 2 deprecation; keep the pointer to the
      // replacement rather than a generic unknown-flag error.
      return Status::InvalidArgument(
          "--runtime-stats was removed; use --metrics-out <file> (the "
          "JSON includes the runtime.* stage stats)");
    }
    bool known = false;
    for (const FlagSpec& flag : spec.flags) {
      if (flag.name == key) {
        known = true;
        break;
      }
    }
    if (!known) {
      return Status::InvalidArgument("unknown flag --" + key +
                                     " for command '" +
                                     std::string(spec.name) + "'");
    }
  }
  for (const FlagSpec& flag : spec.flags) {
    if (flag.required && !flags.Has(std::string(flag.name))) {
      return Status::InvalidArgument(std::string(spec.name) + ": --" +
                                     std::string(flag.name) +
                                     " is required");
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<runtime::ThreadPool>> MakePoolFromFlags(
    const Flags& flags) {
  MIC_ASSIGN_OR_RETURN(std::int64_t threads, flags.GetInt("threads", 0));
  if (flags.Has("threads") && threads < 1) {
    return Status::InvalidArgument("--threads must be >= 1");
  }
  return std::make_unique<runtime::ThreadPool>(static_cast<int>(threads));
}

Result<trend::CacheConfig> CacheConfigFromFlags(const Flags& flags) {
  trend::CacheConfig config;
  const std::string mode_text = flags.GetString("cache", "off");
  MIC_ASSIGN_OR_RETURN(config.mode, cache::ParseCacheMode(mode_text));
  config.directory = flags.GetString("cache-dir");
  if (config.mode != cache::CacheMode::kOff && config.directory.empty()) {
    return Status::InvalidArgument("--cache=" + mode_text +
                                   " requires --cache-dir <dir>");
  }
  if (config.mode == cache::CacheMode::kOff && !config.directory.empty()) {
    return Status::InvalidArgument(
        "--cache-dir is set but --cache is 'off'; pass "
        "--cache={read,write,rw} to use it");
  }
  return config;
}

Result<trend::StoreConfig> StoreConfigFromFlags(const Flags& flags) {
  trend::StoreConfig config;
  config.directory = flags.GetString("store-dir");
  const std::string backend_text = flags.GetString("store", "auto");
  MIC_ASSIGN_OR_RETURN(config.backend,
                       store::ParseBackendKind(backend_text));
  if (flags.Has("store") && config.directory.empty()) {
    return Status::InvalidArgument("--store=" + backend_text +
                                   " requires --store-dir <dir>");
  }
  return config;
}

Result<MicCorpus> LoadCorpusFromFlags(const Flags& flags,
                                      const CliRun& run) {
  MIC_ASSIGN_OR_RETURN(trend::StoreConfig store_config,
                       StoreConfigFromFlags(flags));
  const ExecContext context = run.context();
  if (store_config.enabled()) {
    Status failed = Status::OK();
    {
      obs::Span ingest_span(context, "ingest/store");
      auto opened = store::ClaimStore::Open(
          store_config.directory, {.backend = store_config.backend},
          run.metrics());
      if (opened.ok()) {
        auto world = opened->OpenWorld();
        if (world.ok()) {
          std::fprintf(stderr,
                       "ingested %zu months from store %s (%s backend)\n",
                       world->num_months(), store_config.directory.c_str(),
                       std::string(opened->backend_name()).c_str());
          return world;
        }
        failed = world.status();
      } else {
        failed = opened.status();
      }
    }
    // The store failed loudly (it is a source of truth, not a cache),
    // but this command also holds the original CSV — degrade to a cold
    // parse rather than failing the run.
    std::fprintf(stderr,
                 "warning: store ingest failed (%s); falling back to "
                 "cold CSV parse\n",
                 failed.ToString().c_str());
  }
  obs::Span ingest_span(context, "ingest/csv");
  return ReadCorpusCsvFile(flags.GetString("corpus"));
}

Result<trend::PipelineConfig> PipelineConfigFromFlags(
    const Flags& flags, const DetectorFlagDefaults& defaults) {
  trend::PipelineConfig config;
  MIC_ASSIGN_OR_RETURN(double min_total,
                       flags.GetDouble("min-total", 10.0));
  config.reproducer.min_series_total = min_total;
  MIC_ASSIGN_OR_RETURN(double coupling, flags.GetDouble("coupling", 0.0));
  config.reproducer.model_options.prior_strength = coupling;
  const std::string model = flags.GetString("model", "proposed");
  if (model == "cooccurrence") {
    config.reproducer.model_kind = medmodel::LinkModelKind::kCooccurrence;
  } else if (model != "proposed") {
    return Status::InvalidArgument("unknown --model: " + model);
  }
  MIC_ASSIGN_OR_RETURN(config.analyzer.detector,
                       DetectorOptionsFromFlags(flags, defaults));
  MIC_ASSIGN_OR_RETURN(const bool exact,
                       UseExactAlgorithm(flags, defaults));
  config.analyzer.use_approximate = !exact;
  MIC_ASSIGN_OR_RETURN(config.cache, CacheConfigFromFlags(flags));
  MIC_ASSIGN_OR_RETURN(config.store, StoreConfigFromFlags(flags));
  MIC_RETURN_IF_ERROR(config.Validate());
  return config;
}

Result<CliRun> CliRun::FromFlags(const Flags& flags, bool with_pool,
                                 bool force_metrics, bool force_trace) {
  CliRun run;
  if (with_pool) {
    MIC_ASSIGN_OR_RETURN(run.pool_, MakePoolFromFlags(flags));
  } else {
    run.pool_ = std::make_unique<runtime::ThreadPool>(1);
  }
  if (force_metrics || flags.Has("metrics-out")) {
    run.metrics_ = std::make_unique<obs::MetricsRegistry>();
  }
  if (force_trace || flags.Has("trace-out")) {
    run.trace_ = std::make_unique<obs::TraceLog>();
  }
  MIC_ASSIGN_OR_RETURN(trend::CacheConfig cache_config,
                       CacheConfigFromFlags(flags));
  if (cache_config.mode != cache::CacheMode::kOff) {
    auto store = std::make_unique<cache::CacheStore>(
        cache_config.directory, cache_config.mode, run.metrics_.get());
    if (Status opened = store->Open(); opened.ok()) {
      run.cache_ = std::move(store);
    } else {
      // The cache is an accelerator: a store that cannot open degrades
      // to a cold, uncached run instead of failing the command.
      std::fprintf(stderr, "warning: cache disabled for this run: %s\n",
                   opened.ToString().c_str());
    }
  }
  const std::string log_path = flags.GetString("log-json");
  if (!log_path.empty()) {
    MIC_RETURN_IF_ERROR(OpenLogFile(log_path));
    RunMetadata metadata;
    metadata.command = flags.command();
    MIC_ASSIGN_OR_RETURN(std::int64_t seed, flags.GetInt("seed", 0));
    metadata.seed = static_cast<std::uint64_t>(seed);
    metadata.threads = run.pool_->num_threads();
    LogRunMetadata(metadata);
  }
  return run;
}

Status CliRun::Finish(const Flags& flags) {
  const std::string metrics_path = flags.GetString("metrics-out");
  if (!metrics_path.empty()) {
    obs::FoldRuntimeStats(pool_->stats(), pool_->num_threads(),
                          metrics_.get());
    if (trace_ != nullptr) {
      // Wall-clock artifact of ring capacity vs. event volume — a
      // gauge, never a counter, so the deterministic counters section
      // stays thread-count- and tracing-invariant.
      metrics_->gauge("obs.trace.dropped")
          ->Set(static_cast<double>(trace_->dropped_count()));
    }
    MIC_RETURN_IF_ERROR(obs::WriteMetricsJsonFile(*metrics_, metrics_path));
    // stderr: `detect` streams its report CSV to stdout.
    std::fprintf(stderr, "wrote metrics to %s\n", metrics_path.c_str());
  }
  const std::string trace_path = flags.GetString("trace-out");
  if (!trace_path.empty()) {
    MIC_RETURN_IF_ERROR(obs::WriteTraceJsonFile(*trace_, trace_path));
    std::fprintf(stderr, "wrote trace to %s\n", trace_path.c_str());
  }
  if (flags.Has("log-json")) {
    MIC_LOG(Info) << "run finished: " << flags.command();
    CloseLogFile();
  }
  return Status::OK();
}

Result<ssm::ChangePointOptions> DetectorOptionsFromFlags(
    const Flags& flags, const DetectorFlagDefaults& defaults) {
  ssm::ChangePointOptions options;
  MIC_ASSIGN_OR_RETURN(options.seasonal, flags.GetBool("seasonal", true));
  MIC_ASSIGN_OR_RETURN(double margin,
                       flags.GetDouble("margin", defaults.margin));
  options.aic_margin = margin;
  MIC_ASSIGN_OR_RETURN(
      std::int64_t min_tail,
      flags.GetInt("min-tail", defaults.min_tail));
  options.min_tail_observations = static_cast<int>(min_tail);
  const std::string criterion = flags.GetString("criterion", "aic");
  if (criterion == "aic") {
    options.criterion = ssm::SelectionCriterion::kAic;
  } else if (criterion == "aicc") {
    options.criterion = ssm::SelectionCriterion::kAicc;
  } else if (criterion == "bic") {
    options.criterion = ssm::SelectionCriterion::kBic;
  } else {
    return Status::InvalidArgument("unknown --criterion: " + criterion);
  }
  const std::string kind = flags.GetString("kind", "slope");
  if (kind == "slope") {
    options.candidate_kinds = {ssm::InterventionKind::kSlopeShift};
  } else if (kind == "level") {
    options.candidate_kinds = {ssm::InterventionKind::kLevelShift};
  } else if (kind == "pulse") {
    options.candidate_kinds = {ssm::InterventionKind::kPulse};
  } else if (kind == "auto") {
    options.candidate_kinds = {ssm::InterventionKind::kSlopeShift,
                               ssm::InterventionKind::kLevelShift};
  } else {
    return Status::InvalidArgument("unknown --kind: " + kind);
  }
  return options;
}

Result<bool> UseExactAlgorithm(const Flags& flags,
                               const DetectorFlagDefaults& defaults) {
  const std::string algorithm =
      flags.GetString("algorithm", std::string(defaults.algorithm));
  if (algorithm == "exact") return true;
  if (algorithm == "approx") return false;
  return Status::InvalidArgument("unknown --algorithm: " + algorithm);
}

}  // namespace mic::tools
