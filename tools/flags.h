// Minimal --flag value command-line parsing for the mictrend CLI.

#ifndef MICTREND_TOOLS_FLAGS_H_
#define MICTREND_TOOLS_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/strings.h"

namespace mic::tools {

/// Parsed command line: one positional subcommand plus --key value
/// flags (boolean flags may omit the value).
class Flags {
 public:
  /// Parses argv[1:]; the first non-flag token is the subcommand.
  static Result<Flags> Parse(int argc, char** argv) {
    Flags flags;
    int i = 1;
    if (i < argc && argv[i][0] != '-') {
      flags.command_ = argv[i];
      ++i;
    }
    for (; i < argc; ++i) {
      std::string token = argv[i];
      if (token.rfind("--", 0) != 0) {
        return Status::InvalidArgument("unexpected argument: " + token);
      }
      std::string key = token.substr(2);
      if (key.empty()) {
        return Status::InvalidArgument("empty flag name");
      }
      std::string value;
      const std::size_t equals = key.find('=');
      if (equals != std::string::npos) {
        value = key.substr(equals + 1);
        key = key.substr(0, equals);
      } else if (i + 1 < argc && argv[i + 1][0] != '-') {
        value = argv[++i];
      } else {
        value = "true";  // Bare boolean flag.
      }
      flags.values_[key] = value;
    }
    return flags;
  }

  const std::string& command() const { return command_; }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  /// All flag names seen on the command line, sorted (std::map order);
  /// lets callers validate against a declared flag set.
  std::vector<std::string> Keys() const {
    std::vector<std::string> keys;
    keys.reserve(values_.size());
    for (const auto& [key, value] : values_) keys.push_back(key);
    return keys;
  }

  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  Result<std::int64_t> GetInt(const std::string& key,
                              std::int64_t fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return ParseInt64(it->second);
  }

  Result<double> GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return ParseDouble(it->second);
  }

  /// Strict boolean parse: only true/1/false/0 are accepted, so a typo
  /// like --seasonal=yes is an error instead of silently meaning false.
  Result<bool> GetBool(const std::string& key,
                       bool fallback = false) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    if (it->second == "true" || it->second == "1") return true;
    if (it->second == "false" || it->second == "0") return false;
    return Status::InvalidArgument("--" + key +
                                   " expects true or false, got '" +
                                   it->second + "'");
  }

 private:
  std::string command_;
  std::map<std::string, std::string> values_;
};

}  // namespace mic::tools

#endif  // MICTREND_TOOLS_FLAGS_H_
