// Shared plumbing for the mictrend subcommands.
//
// The command/flag table declared here is the single source of truth
// for the CLI surface: BuildUsageText() renders the usage screen from
// it and ValidateFlags() rejects anything not declared in it, so the
// two can never drift apart again (the old hand-written Usage() had
// silently dropped the pipeline detector flags).
//
// CliRun bundles the per-invocation execution state every subcommand
// shares — the --threads pool, the --metrics-out registry, the
// --trace-out event trace, and the --log-json structured run log — and
// hands it to the library as one mic::ExecContext.

#ifndef MICTREND_TOOLS_CLI_COMMON_H_
#define MICTREND_TOOLS_CLI_COMMON_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cache/cache_store.h"
#include "common/exec_context.h"
#include "common/result.h"
#include "obs/metrics.h"
#include "obs/trace_log.h"
#include "runtime/thread_pool.h"
#include "ssm/changepoint.h"
#include "tools/flags.h"
#include "trend/pipeline.h"

namespace mic::tools {

/// One flag a subcommand accepts.
struct FlagSpec {
  std::string_view name;   // without the leading "--"
  std::string_view value;  // usage placeholder; empty = boolean flag
  bool required = false;
};

/// One subcommand. The flag list drives BOTH the usage text and the
/// unknown-flag validation.
struct CommandSpec {
  std::string_view name;
  std::vector<FlagSpec> flags;
};

/// The full mictrend command surface, in usage-screen order.
const std::vector<CommandSpec>& CommandTable();

/// Spec for `name`, or null for an unknown subcommand.
const CommandSpec* FindCommand(std::string_view name);

/// Usage screen regenerated from CommandTable().
std::string BuildUsageText();

/// The CLI flag for a serve registry parameter: the wire name with
/// every '_' turned into '-' (wire "snapshot_months" = flag
/// --snapshot-months). `mictrend query` builds requests through this
/// mapping, in both directions.
std::string CliFlagName(std::string_view param);

/// Rejects flags not declared in `spec` and reports missing required
/// flags.
Status ValidateFlags(const CommandSpec& spec, const Flags& flags);

/// Pool for --threads N (default: hardware concurrency; 1 spawns no
/// workers and runs inline — output is bit-identical either way).
Result<std::unique_ptr<runtime::ThreadPool>> MakePoolFromFlags(
    const Flags& flags);

/// Per-invocation execution + observability state shared by every
/// subcommand: the --threads pool, the --metrics-out registry, the
/// --trace-out event trace buffer, the --cache/--cache-dir snapshot
/// store, and the --log-json structured run log (which also stamps the
/// run's metadata record).
class CliRun {
 public:
  /// `with_pool` = false builds a 1-thread (inline) pool for
  /// subcommands that do no parallel work. `force_metrics` creates the
  /// registry even without --metrics-out — the serve daemon needs one
  /// for its `metrics` endpoint and the cache.* counters regardless of
  /// whether the run exports a metrics file at exit. `force_trace`
  /// likewise creates the trace ring without --trace-out — the daemon's
  /// request-scoped tracing and tail-based slow-request retention need
  /// one for the lifetime of the server.
  static Result<CliRun> FromFlags(const Flags& flags, bool with_pool,
                                  bool force_metrics = false,
                                  bool force_trace = false);

  /// Context for the library entry points. metrics/trace/cache are null
  /// when the matching output was not requested, which keeps the hot
  /// paths on the disabled (pointer-compare) branch.
  ExecContext context() const {
    return ExecContext{pool_.get(), metrics_.get(), trace_.get(),
                       cache_.get()};
  }
  runtime::ThreadPool* pool() const { return pool_.get(); }
  obs::MetricsRegistry* metrics() const { return metrics_.get(); }
  obs::TraceLog* trace() const { return trace_.get(); }
  cache::CacheStore* cache() const { return cache_.get(); }

  /// Finishes the run: folds the pool's runtime stats into the
  /// registry, writes --metrics-out (deterministic JSON) and
  /// --trace-out (Chrome-trace JSON; drop count included), and closes
  /// the --log-json sink.
  Status Finish(const Flags& flags);

 private:
  std::unique_ptr<runtime::ThreadPool> pool_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<obs::TraceLog> trace_;
  std::unique_ptr<cache::CacheStore> cache_;
};

/// Defaults for the detector flag group, so `detect` keeps the paper's
/// plain search (margin 0, tail 1, exact) while `pipeline` keeps its
/// calibrated screening defaults (margin 4, tail 3, approximate).
struct DetectorFlagDefaults {
  double margin = 0.0;
  int min_tail = 1;
  std::string_view algorithm = "exact";
};

/// Parses the shared detector flag group (--seasonal --margin
/// --criterion --kind --min-tail) against `defaults`.
Result<ssm::ChangePointOptions> DetectorOptionsFromFlags(
    const Flags& flags, const DetectorFlagDefaults& defaults = {});

/// True when --algorithm resolves to the exact search (Algorithm 1).
Result<bool> UseExactAlgorithm(const Flags& flags,
                               const DetectorFlagDefaults& defaults);

/// Parses the cache flag group (--cache {off,read,write,rw} and
/// --cache-dir). Rejects inconsistent combinations with a message
/// naming the offending flag (e.g. --cache=read without --cache-dir).
Result<trend::CacheConfig> CacheConfigFromFlags(const Flags& flags);

/// Parses the claim-store flag group: --store-dir <dir> points a
/// subcommand at a persistent claim store and --store {auto,mmap,file}
/// picks the read backend. Rejects --store without --store-dir.
Result<trend::StoreConfig> StoreConfigFromFlags(const Flags& flags);

/// Ingests a subcommand's corpus. With --store-dir set the world loads
/// from the claim store (counted under the "ingest/store" span); a
/// failed store read warns on stderr and degrades to a cold parse of
/// the --corpus CSV, which is also the no-store path ("ingest/csv").
Result<MicCorpus> LoadCorpusFromFlags(const Flags& flags,
                                      const CliRun& run);

/// THE place the CLI turns flags into a trend::PipelineConfig: the
/// reproducer group (--min-total, --coupling, --model), the detector
/// group (via DetectorOptionsFromFlags with `defaults`), --algorithm,
/// and the cache group. Every subcommand that runs pipeline stages goes
/// through here, so a flag can never mean different things to
/// different commands. The result is already Validate()d.
Result<trend::PipelineConfig> PipelineConfigFromFlags(
    const Flags& flags, const DetectorFlagDefaults& defaults);

}  // namespace mic::tools

#endif  // MICTREND_TOOLS_CLI_COMMON_H_
