// Ablation: model selection criterion (AIC as the paper uses, vs AICc
// and BIC) and the evidence margin. Measures false positive rate on
// structureless series and recall on planted slope breaks — the
// operating characteristic behind the pipeline's margin-4 default.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "ssm/changepoint.h"

namespace mic {
namespace {

std::vector<double> Noise(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(43);
  for (double& value : x) value = rng.NextGaussian(6.0, 1.0);
  return x;
}

std::vector<double> Broken(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(43);
  const int change_point = 14 + static_cast<int>(seed % 16);
  for (int t = 0; t < 43; ++t) {
    x[t] = 6.0 + rng.NextGaussian(0.0, 1.0) +
           (t >= change_point ? 0.9 * (t - change_point + 1) : 0.0);
  }
  return x;
}

struct OperatingPoint {
  int false_positives = 0;
  int true_positives = 0;
};

OperatingPoint Measure(ssm::SelectionCriterion criterion, double margin,
                       int trials) {
  OperatingPoint point;
  for (int trial = 0; trial < trials; ++trial) {
    ssm::ChangePointOptions options;
    options.seasonal = false;
    options.fit.optimizer.max_evaluations = 160;
    options.criterion = criterion;
    options.aic_margin = margin;
    {
      ssm::ChangePointDetector detector(Noise(5000 + trial), options);
      auto result = detector.DetectExact();
      if (result.ok() && result->has_change) ++point.false_positives;
    }
    {
      ssm::ChangePointDetector detector(Broken(6000 + trial), options);
      auto result = detector.DetectExact();
      if (result.ok() && result->has_change) ++point.true_positives;
    }
  }
  return point;
}

}  // namespace

int Run() {
  const bench::BenchScale scale = bench::BenchScale::FromEnv();
  bench::BenchReport report("ablation_criteria", scale);
  bench::PrintHeader("Ablation: selection criterion and evidence margin");
  std::printf(
      "paper uses plain AIC ('performs at least as well as its\n"
      "alternatives (e.g. BIC)'); this table shows each criterion's\n"
      "false-positive/recall trade on 43-month series.\n\n");
  constexpr int kTrials = 15;

  std::printf("  %-10s %-8s %18s %14s\n", "criterion", "margin",
              "false pos (noise)", "recall (break)");
  const struct {
    ssm::SelectionCriterion criterion;
    double margin;
  } grid[] = {
      {ssm::SelectionCriterion::kAic, 0.0},
      {ssm::SelectionCriterion::kAic, 4.0},
      {ssm::SelectionCriterion::kAicc, 0.0},
      {ssm::SelectionCriterion::kBic, 0.0},
      {ssm::SelectionCriterion::kBic, 4.0},
  };
  for (const auto& cell : grid) {
    const OperatingPoint point =
        Measure(cell.criterion, cell.margin, kTrials);
    std::printf("  %-10s %-8.1f %10d/%-2d %14d/%-2d\n",
                std::string(ssm::SelectionCriterionName(cell.criterion))
                    .c_str(),
                cell.margin, point.false_positives, kTrials,
                point.true_positives, kTrials);
  }
  std::printf(
      "\n(BIC's log(n) penalty ~ 3.76 at n = 43 behaves like AIC with a\n"
      "margin of ~1.8 per extra parameter; the pipeline default, AIC with\n"
      "margin 4, suppresses noise detections while keeping full recall.)\n");
  report.WriteJsonFromEnv();
  return 0;
}

}  // namespace mic

int main() { return mic::Run(); }
