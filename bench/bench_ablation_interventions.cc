// Ablation: intervention shape and multi-break search (§IX extensions).
//
//   A. On planted SLOPE breaks: slope-shift search (the paper's model)
//      vs level-shift search — the matched shape should localize better.
//   B. On planted STEP breaks: the reverse.
//   C. On series with TWO breaks: the paper's single-break model vs the
//      greedy multi-break extension — multi-break should recover both
//      and fit better.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "ssm/changepoint.h"

namespace mic {
namespace {

std::vector<double> PlantBreak(bool step, int change_point, double size,
                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(43);
  for (int t = 0; t < 43; ++t) {
    double value = 10.0 + rng.NextGaussian(0.0, 0.6);
    if (t >= change_point) {
      value += step ? size : size * 0.25 * (t - change_point + 1);
    }
    x[t] = value;
  }
  return x;
}

struct KindStats {
  int detected = 0;
  double total_absolute_error = 0.0;
  int localized = 0;
};

KindStats Evaluate(ssm::InterventionKind kind, bool step_breaks,
                   int trials) {
  KindStats stats;
  for (int trial = 0; trial < trials; ++trial) {
    const int true_break = 12 + (trial * 7) % 20;
    const auto series =
        PlantBreak(step_breaks, true_break, 5.0, 900 + trial);
    ssm::ChangePointOptions options;
    options.seasonal = false;
    options.fit.optimizer.max_evaluations = 160;
    options.candidate_kinds = {kind};
    options.aic_margin = 2.0;
    ssm::ChangePointDetector detector(series, options);
    auto result = detector.DetectExact();
    if (!result.ok() || !result->has_change) continue;
    ++stats.detected;
    stats.total_absolute_error +=
        std::fabs(result->change_point - true_break);
    ++stats.localized;
  }
  return stats;
}

void PrintKindRow(const char* label, const KindStats& stats, int trials) {
  std::printf("  %-18s detected %2d/%2d   mean |error| %.2f months\n",
              label, stats.detected, trials,
              stats.localized > 0
                  ? stats.total_absolute_error / stats.localized
                  : 0.0);
}

}  // namespace

int Run() {
  const bench::BenchScale scale = bench::BenchScale::FromEnv();
  bench::BenchReport report("ablation_interventions", scale);
  bench::PrintHeader("Ablation: intervention shapes and multi-break "
                     "search");
  constexpr int kTrials = 12;

  std::printf("A. planted slope breaks (the paper's target shape):\n");
  PrintKindRow("slope search",
               Evaluate(ssm::InterventionKind::kSlopeShift, false,
                        kTrials),
               kTrials);
  PrintKindRow("level search",
               Evaluate(ssm::InterventionKind::kLevelShift, false,
                        kTrials),
               kTrials);

  std::printf("\nB. planted step breaks:\n");
  PrintKindRow("slope search",
               Evaluate(ssm::InterventionKind::kSlopeShift, true, kTrials),
               kTrials);
  PrintKindRow("level search",
               Evaluate(ssm::InterventionKind::kLevelShift, true, kTrials),
               kTrials);

  std::printf("\nC. two planted breaks (up t=12, reversal t=28):\n");
  int single_found_both = 0;
  int multi_found_both = 0;
  double single_aic = 0.0;
  double multi_aic = 0.0;
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(4000 + trial);
    std::vector<double> x(43);
    for (int t = 0; t < 43; ++t) {
      double value = 8.0 + rng.NextGaussian(0.0, 0.5);
      if (t >= 12) value += 1.2 * (t - 11);
      if (t >= 28) value -= 2.2 * (t - 27);
      x[t] = value;
    }
    ssm::ChangePointOptions options;
    options.seasonal = false;
    options.fit.optimizer.max_evaluations = 160;
    options.aic_margin = 2.0;
    ssm::ChangePointDetector detector(x, options);
    auto single = detector.DetectExact();
    auto multi = detector.DetectMultiple(3);
    if (!single.ok() || !multi.ok()) continue;
    single_aic += single->best_aic;
    multi_aic += multi->best_aic;
    auto near_any = [](const std::vector<ssm::Intervention>& found,
                       int target) {
      for (const ssm::Intervention& intervention : found) {
        if (std::abs(intervention.change_point - target) <= 3) return true;
      }
      return false;
    };
    if (near_any(multi->interventions, 12) &&
        near_any(multi->interventions, 28)) {
      ++multi_found_both;
    }
    // A single break cannot represent both by construction.
    if (single->has_change) ++single_found_both;
  }
  std::printf("  single-break model: finds a break in %d/%d runs "
              "(can never represent both); mean criterion %.1f\n",
              single_found_both, kTrials, single_aic / kTrials);
  std::printf("  multi-break greedy: recovers BOTH breaks in %d/%d runs; "
              "mean criterion %.1f\n",
              multi_found_both, kTrials, multi_aic / kTrials);
  std::printf("  (paper §IX: 'more than one change point can exist ... "
              "state space models can accept more than one intervention "
              "variable')\n");
  report.WriteJsonFromEnv();
  return 0;
}

}  // namespace mic

int main() { return mic::Run(); }
