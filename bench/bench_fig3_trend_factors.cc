// Reproduces Figure 3: the factors that shape prescription trends.
//   (a) seasonality — hay fever (spring), heatstroke (summer),
//       influenza (winter, with the 2014-15 outbreak outlier);
//   (b) a newly released medicine rising from zero for its target
//       diseases from the release month;
//   (c) indication expansion — an existing bronchodilator picking up
//       bronchial asthma mid-window.

#include <cstdio>

#include "bench/bench_util.h"

namespace mic {
namespace {

int ArgMax(const std::vector<double>& series) {
  int best = 0;
  for (int t = 1; t < static_cast<int>(series.size()); ++t) {
    if (series[t] > series[best]) best = t;
  }
  return best;
}

}  // namespace

int Run() {
  const bench::BenchScale scale = bench::BenchScale::FromEnv();
  bench::BenchReport report("fig3_trend_factors", scale);
  bench::PrintHeader("Figure 3: factors affecting monthly prescriptions");
  bench::BenchData data = bench::BuildBenchData(scale, 0.0);
  const synth::World& world = data.world;
  const int start_month = world.config().start_calendar_month;

  // (a) Seasonality.
  std::printf("(a) seasonal prescription series "
              "(t = 0 is calendar month %d, March):\n", start_month);
  struct {
    const char* disease;
    const char* medicine;
    int expected_peak_calendar;  // 0 = January
  } seasonal[] = {
      {synth::names::kHayFever, synth::names::kAntihistamine, 3},
      {synth::names::kHeatstroke, synth::names::kRehydrationSalt, 7},
      {synth::names::kInfluenza, synth::names::kAntiviral, 0},
  };
  for (const auto& entry : seasonal) {
    const auto series = data.series.Prescription(
        *world.FindDisease(entry.disease),
        *world.FindMedicine(entry.medicine));
    bench::PrintSeries(entry.disease, series);
    const int peak = ArgMax(series);
    const int peak_calendar = (start_month + peak) % 12;
    std::printf("    peak at t = %d (calendar month %d; expected %d)%s\n",
                peak, peak_calendar, entry.expected_peak_calendar,
                std::abs(peak_calendar - entry.expected_peak_calendar) <= 1 ||
                        std::abs(peak_calendar -
                                 entry.expected_peak_calendar) >= 11
                    ? "  [season REPRODUCED]"
                    : "");
  }

  // (b) New medicine.
  std::printf("\n(b) newly released bronchodilator (release month t = %d):\n",
              synth::PaperWorldEvents::kBronchodilatorRelease);
  const MedicineId broncho =
      *world.FindMedicine(synth::names::kNewBronchodilator);
  for (const char* disease :
       {synth::names::kCopd, synth::names::kBronchialAsthma,
        synth::names::kChronicBronchitis}) {
    bench::PrintSeries(disease, data.series.Prescription(
                                    *world.FindDisease(disease), broncho));
  }
  // All-zero before release?
  bool zero_before = true;
  for (const char* disease :
       {synth::names::kCopd, synth::names::kBronchialAsthma,
        synth::names::kChronicBronchitis}) {
    const auto series = data.series.Prescription(
        *world.FindDisease(disease), broncho);
    for (int t = 0; t < synth::PaperWorldEvents::kBronchodilatorRelease;
         ++t) {
      if (series[t] != 0.0) zero_before = false;
    }
  }
  std::printf("    zero before release: %s\n",
              zero_before ? "yes  [REPRODUCED]" : "NO");

  // (c) Indication expansion.
  std::printf("\n(c) existing COPD bronchodilator gaining bronchial asthma"
              " (expansion t = %d):\n",
              synth::PaperWorldEvents::kAsthmaIndicationExpansion);
  const MedicineId copd_drug =
      *world.FindMedicine(synth::names::kCopdBronchodilator);
  for (const char* disease :
       {synth::names::kCopd, synth::names::kBronchialAsthma}) {
    bench::PrintSeries(disease, data.series.Prescription(
                                    *world.FindDisease(disease),
                                    copd_drug));
  }
  const auto asthma_series = data.series.Prescription(
      *world.FindDisease(synth::names::kBronchialAsthma), copd_drug);
  double before = 0.0;
  double after = 0.0;
  const int expansion = synth::PaperWorldEvents::kAsthmaIndicationExpansion;
  for (int t = 0; t < expansion; ++t) before += asthma_series[t];
  for (int t = expansion;
       t < static_cast<int>(asthma_series.size()); ++t) {
    after += asthma_series[t];
  }
  std::printf("    asthma prescriptions before/after expansion: %.0f / %.0f"
              "%s\n",
              before, after,
              after > 4.0 * (before + 1.0)
                  ? "  [gradual uptake REPRODUCED]"
                  : "");
  report.WriteJsonFromEnv();
  return 0;
}

}  // namespace mic

int main() { return mic::Run(); }
