// Reproduces Figure 2: the adverse effect of missing prescription links.
// The cooccurrence baseline assigns the broad-use anti-inflammatory
// analgesic a LARGER "prescription count" for hypertension than the
// actual depressor, while the proposed medication model pushes the
// non-indicated analgesic to ~zero and keeps the depressor series
// intact.

#include <cstdio>

#include "bench/bench_util.h"
#include "medmodel/timeseries.h"

namespace mic {
namespace {

double Total(const std::vector<double>& series) {
  double total = 0.0;
  for (double value : series) total += value;
  return total;
}

}  // namespace

int Run() {
  const bench::BenchScale scale = bench::BenchScale::FromEnv();
  bench::BenchReport report("fig2_link_prediction", scale);
  bench::PrintHeader("Figure 2: prescription link prediction for "
                     "hypertension");
  std::printf(
      "paper: cooccurrence predicts MORE analgesic than depressor for\n"
      "hypertension although only the depressor is indicated; the\n"
      "proposed model sends the analgesic to ~zero (Fig. 2b).\n\n");

  bench::BenchData data = bench::BuildBenchData(scale, 0.0);
  const DiseaseId hypertension =
      *data.world.FindDisease(synth::names::kHypertension);
  const MedicineId depressor =
      *data.world.FindMedicine(synth::names::kDepressor);
  const MedicineId analgesic =
      *data.world.FindMedicine(synth::names::kAnalgesic);

  medmodel::ReproducerOptions cooccurrence_options;
  cooccurrence_options.model_kind =
      medmodel::LinkModelKind::kCooccurrence;
  cooccurrence_options.min_series_total = 0.0;
  auto cooccurrence = medmodel::ReproduceSeries(data.generated.corpus,
                                                cooccurrence_options);
  MIC_CHECK(cooccurrence.ok());

  std::printf("(a) cooccurrence-predicted monthly prescription counts:\n");
  bench::PrintSeries("  depressor",
                     cooccurrence->Prescription(hypertension, depressor));
  bench::PrintSeries("  analgesic",
                     cooccurrence->Prescription(hypertension, analgesic));

  std::printf("\n(b) proposed-model monthly prescription counts:\n");
  bench::PrintSeries("  depressor",
                     data.series.Prescription(hypertension, depressor));
  bench::PrintSeries("  analgesic",
                     data.series.Prescription(hypertension, analgesic));

  std::printf("\n(truth) simulator ground-truth counts:\n");
  bench::PrintSeries("  depressor",
                     data.generated.truth.Series(hypertension, depressor));
  bench::PrintSeries("  analgesic",
                     data.generated.truth.Series(hypertension, analgesic));

  const double cooccurrence_depressor =
      Total(cooccurrence->Prescription(hypertension, depressor));
  const double cooccurrence_analgesic =
      Total(cooccurrence->Prescription(hypertension, analgesic));
  const double proposed_depressor =
      Total(data.series.Prescription(hypertension, depressor));
  const double proposed_analgesic =
      Total(data.series.Prescription(hypertension, analgesic));
  const double truth_depressor =
      Total(data.generated.truth.Series(hypertension, depressor));

  std::printf("\nsummary (totals over the window):\n");
  std::printf("  cooccurrence: depressor %.0f, analgesic %.0f  -> "
              "mis-prediction %s\n",
              cooccurrence_depressor, cooccurrence_analgesic,
              cooccurrence_analgesic > cooccurrence_depressor
                  ? "REPRODUCED (analgesic wrongly dominates)"
                  : "not triggered at this scale");
  std::printf("  proposed:     depressor %.0f, analgesic %.0f  (truth "
              "depressor %.0f)\n",
              proposed_depressor, proposed_analgesic, truth_depressor);
  std::printf("  proposed analgesic / cooccurrence analgesic = %.3f "
              "(paper: ~0)\n",
              cooccurrence_analgesic > 0.0
                  ? proposed_analgesic / cooccurrence_analgesic
                  : 0.0);
  report.WriteJsonFromEnv();
  return 0;
}

}  // namespace mic

int main() { return mic::Run(); }
