// Reproduces Figure 5: the sensitivity of AIC to the assumed
// intervention point. A series with a planted slope change is fitted
// with every candidate change point; the AIC curve must dip at the true
// break (5a/5b), which is the property Algorithm 2's binary search
// exploits.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "ssm/changepoint.h"

namespace mic {
namespace {

// The paper's example: break in September 2013 = t 6 for a March-2013
// window start.
constexpr int kTrueBreak = 18;

}  // namespace

int Run() {
  const bench::BenchScale scale = bench::BenchScale::FromEnv();
  bench::BenchReport report("fig5_aic_sensitivity", scale);
  bench::PrintHeader("Figure 5: AIC sensitivity to the intervention point");
  std::printf(
      "paper: models fitted with an intervention point near the true\n"
      "change yield lower AIC than those far from it; the curve has a\n"
      "clear minimum at the break (here planted at t = %d).\n\n",
      kTrueBreak);

  Rng rng(20190411);
  std::vector<double> series(43);
  for (int t = 0; t < 43; ++t) {
    double value = 20.0 + rng.NextGaussian(0.0, 1.0);
    if (t >= kTrueBreak) value += 1.6 * (t - kTrueBreak + 1);
    series[t] = value;
  }
  bench::PrintSeries("(a) series", series);

  ssm::ChangePointOptions options;
  options.seasonal = false;
  options.fit.optimizer.max_evaluations = 250;
  ssm::ChangePointDetector detector(series, options);
  auto curve = detector.AicCurve();
  MIC_CHECK(curve.ok());

  std::printf("\n(b) AIC by assumed change point:\n");
  int argmin = 1;
  for (int t = 1; t < 43; ++t) {
    if ((*curve)[t] < (*curve)[argmin]) argmin = t;
  }
  for (int t = 1; t < 43; ++t) {
    std::printf("  t = %2d  AIC = %9.3f %s%s\n", t, (*curve)[t],
                t == argmin ? "  <-- minimum" : "",
                t == kTrueBreak ? "  (true break)" : "");
  }
  auto exact = detector.DetectExact();
  MIC_CHECK(exact.ok());
  std::printf("\nAIC without intervention: %.3f\n",
              exact->aic_without_intervention);
  std::printf("detected change point: %d (true %d)%s\n",
              exact->change_point, kTrueBreak,
              std::abs(exact->change_point - kTrueBreak) <= 1
                  ? "  [REPRODUCED]"
                  : "");
  report.WriteJsonFromEnv();
  return 0;
}

}  // namespace mic

int main() { return mic::Run(); }
