// Reproduces Figures 6 and 7: six case studies of the state space model
// on reproduced series, each decomposed into level / seasonal /
// intervention components with the detected change point.
//   6a influenza — seasonality plus the 2014-15 outbreak outlier
//   6b diarrhea — multi-peak seasonality
//   6c new osteoporosis medicine — medicine-derived break (release)
//   6d anti-platelet original — decline after generic entry
//   7a dementia drug for Lewy body dementia — indication expansion
//   7b swallowing aid for oral feeding difficulty — diagnostic
//      substitution (dehydration shows the opposite trend)

#include <cmath>
#include <cstdio>
#include <optional>

#include "bench/bench_util.h"
#include "ssm/changepoint.h"
#include "ssm/decompose.h"

namespace mic {
namespace {

struct CaseOutcome {
  bool has_change = false;
  int change_point = ssm::kNoChangePoint;
  double lambda = 0.0;
};

CaseOutcome RunCase(const char* title, const std::vector<double>& raw,
                    bool seasonal,
                    std::optional<int> expected_break = std::nullopt) {
  std::printf("\n");
  bench::PrintRule('-');
  std::printf("%s\n", title);
  bench::PrintRule('-');

  std::vector<double> series = raw;
  const double scale = bench::NormalizeBySd(series);

  ssm::ChangePointOptions options;
  options.seasonal = seasonal;
  options.fit.optimizer.max_evaluations = 250;
  // A "break" carried by fewer than three trailing months is an
  // end-of-window artifact, not a trend change.
  options.min_tail_observations = 4;
  ssm::ChangePointDetector detector(series, options);
  auto result = detector.DetectExact();
  MIC_CHECK(result.ok()) << result.status();

  auto decomposition = ssm::Decompose(result->best_model, series);
  MIC_CHECK(decomposition.ok()) << decomposition.status();

  // Rescale components back to original units for printing.
  auto rescale = [scale](std::vector<double> values) {
    for (double& value : values) value *= scale;
    return values;
  };
  bench::PrintSeries("original", raw);
  bench::PrintSeries("fitted", rescale(decomposition->fitted));
  bench::PrintSeries("level", rescale(decomposition->level));
  if (seasonal) {
    bench::PrintSeries("seasonal", rescale(decomposition->seasonal));
  }
  bench::PrintSeries("intervention",
                     rescale(decomposition->intervention));

  CaseOutcome outcome;
  outcome.has_change = result->has_change;
  outcome.change_point = result->change_point;
  outcome.lambda = decomposition->lambda * scale;
  std::printf("detected change point: %s",
              result->has_change
                  ? std::to_string(result->change_point).c_str()
                  : "none");
  if (expected_break.has_value()) {
    std::printf("  (scripted event at t = %d)%s", *expected_break,
                result->has_change &&
                        std::abs(result->change_point - *expected_break) <= 4
                    ? "  [REPRODUCED]"
                    : "");
  }
  std::printf("   lambda = %.2f / month\n", outcome.lambda);
  return outcome;
}

}  // namespace

int Run() {
  const bench::BenchScale scale = bench::BenchScale::FromEnv();
  bench::BenchReport report("fig67_case_studies", scale);
  bench::PrintHeader("Figures 6-7: case studies with decomposition");
  bench::BenchData data = bench::BuildBenchData(scale, 0.0);
  const synth::World& world = data.world;
  using E = synth::PaperWorldEvents;

  // 6a: influenza (seasonality + outlier).
  {
    const auto series =
        data.series.Disease(*world.FindDisease(synth::names::kInfluenza));
    RunCase("Fig 6a: influenza (seasonality + 2014-15 outbreak outlier)",
            series, /*seasonal=*/true);
    // The outbreak spike should land in the irregular term, not distort
    // the seasonal pattern: report the irregular at the outbreak month.
    std::vector<double> normalized = series;
    const double sd = bench::NormalizeBySd(normalized);
    ssm::StructuralSpec spec;
    spec.seasonal = true;
    auto fitted = ssm::FitStructuralModel(normalized, spec);
    if (fitted.ok()) {
      auto decomposition = ssm::Decompose(*fitted, normalized);
      if (decomposition.ok()) {
        std::printf("irregular at outbreak month t = %d: %.1f "
                    "(series SD %.1f) -> treated as outlier\n",
                    E::kOutbreakMonth,
                    decomposition->irregular[E::kOutbreakMonth] * sd, sd);
      }
    }
  }

  // 6b: diarrhea (multi-peak seasonality).
  RunCase("Fig 6b: diarrhea (more than one seasonal peak per year)",
          data.series.Disease(*world.FindDisease(synth::names::kDiarrhea)),
          /*seasonal=*/true);

  // 6c: new osteoporosis medicine.
  RunCase("Fig 6c: new osteoporosis medicine (release)",
          data.series.Medicine(
              *world.FindMedicine(synth::names::kNewOsteoporosisDrug)),
          /*seasonal=*/true, E::kOsteoporosisRelease);
  bench::PrintSeries(
      "related: incumbent",
      data.series.Medicine(
          *world.FindMedicine(synth::names::kOldOsteoporosisDrug)));

  // 6d: anti-platelet original declining after generics.
  RunCase("Fig 6d: anti-platelet original (decline after generic entry)",
          data.series.Medicine(
              *world.FindMedicine(synth::names::kAntiPlateletOriginal)),
          /*seasonal=*/true, E::kGenericEntry);
  for (const char* generic :
       {synth::names::kAntiPlateletGeneric1,
        synth::names::kAntiPlateletGeneric2,
        synth::names::kAntiPlateletGeneric3}) {
    bench::PrintSeries(
        generic, data.series.Medicine(*world.FindMedicine(generic)));
  }

  // 7a: new indication on the dementia drug.
  RunCase("Fig 7a: dementia drug for Lewy body dementia (new indication)",
          data.series.Prescription(
              *world.FindDisease(synth::names::kLewyBodyDementia),
              *world.FindMedicine(synth::names::kDementiaDrug)),
          /*seasonal=*/true, E::kLewyIndicationExpansion);
  bench::PrintSeries(
      "related: for alzheimers",
      data.series.Prescription(
          *world.FindDisease(synth::names::kAlzheimers),
          *world.FindMedicine(synth::names::kDementiaDrug)));

  // 7b: diagnostic substitution.
  RunCase(
      "Fig 7b: swallowing aid for oral feeding difficulty (diagnostic "
      "trend)",
      data.series.Prescription(
          *world.FindDisease(synth::names::kOralFeedingDifficulty),
          *world.FindMedicine(synth::names::kSwallowingAid)),
      /*seasonal=*/true, E::kDiagnosticSubstitution);
  bench::PrintSeries(
      "related1: dehydration",
      data.series.Disease(*world.FindDisease(synth::names::kDehydration)));
  std::printf("(dehydration declines while oral feeding difficulty rises:"
              " the paper's opposite-trend diagnostics signature)\n");

  report.WriteJsonFromEnv();
  return 0;
}

}  // namespace mic

int main() { return mic::Run(); }
