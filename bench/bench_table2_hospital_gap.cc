// Reproduces Table II: the inter-hospital prescription gap. Per
// bed-count class (small/medium/large), the top-10 diseases the
// antibiotic is prescribed for, with prescription-share ratios. The
// paper's finding: small hospitals prescribe antibiotics for
// virus-caused diseases (cold syndrome, influenza) that large hospitals
// do not.

#include <cstdio>

#include "apps/hospital_gap.h"
#include "bench/bench_util.h"

namespace mic {

int Run() {
  const bench::BenchScale scale = bench::BenchScale::FromEnv();
  bench::BenchReport bench_report("table2_hospital_gap", scale);
  bench::PrintHeader("Table II: antibiotic prescriptions by hospital class");
  std::printf(
      "paper: small hospitals prescribe the antibiotic for acute upper\n"
      "respiratory inflammation (9.8%%) and influenza (3.3%%) — both\n"
      "virus-caused — while these diseases are (almost) absent from the\n"
      "large-hospital top 10.\n\n");

  bench::BenchData data = bench::BuildBenchData(scale, 0.0);
  const Catalog& catalog = data.generated.corpus.catalog();
  const MedicineId antibiotic =
      *catalog.medicines().Lookup(synth::names::kAntibiotic);

  apps::HospitalGapOptions options;
  options.reproducer.min_series_total = 0.0;
  // City/class slices are small; the corpus-level min-5 pruning would
  // starve them.
  options.reproducer.filter_options.min_disease_count = 1;
  options.reproducer.filter_options.min_medicine_count = 1;
  options.top_k = 10;
  auto report = apps::AnalyzeHospitalGap(data.generated.corpus, antibiotic,
                                         options);
  MIC_CHECK(report.ok()) << report.status();

  double small_cold_ratio = 0.0;
  double large_cold_ratio = 0.0;
  for (const apps::HospitalClassRanking& ranking : report->classes) {
    std::printf("(%s hospitals; %.0f antibiotic prescriptions)\n",
                std::string(HospitalClassName(ranking.hospital_class))
                    .c_str(),
                ranking.total_prescriptions);
    std::printf("  %-42s %9s\n", "Disease", "Ratio (%)");
    for (const apps::DiseaseShare& share : ranking.top_diseases) {
      const std::string& name = catalog.diseases().Name(share.disease);
      std::printf("  %-42s %8.3f%%\n", name.c_str(), 100.0 * share.ratio);
      if (name == synth::names::kColdSyndrome) {
        if (ranking.hospital_class == HospitalClass::kSmall) {
          small_cold_ratio = share.ratio;
        } else if (ranking.hospital_class == HospitalClass::kLarge) {
          large_cold_ratio = share.ratio;
        }
      }
    }
    std::printf("\n");
  }

  std::printf("verdict: cold-syndrome share small %.1f%% vs large %.1f%%%s\n",
              100.0 * small_cold_ratio, 100.0 * large_cold_ratio,
              small_cold_ratio > large_cold_ratio + 0.02
                  ? "  [small-hospital antibiotic misuse REPRODUCED]"
                  : "");
  bench_report.WriteJsonFromEnv();
  return 0;
}

}  // namespace mic

int main() { return mic::Run(); }
