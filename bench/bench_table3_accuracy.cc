// Reproduces Table III: predictive performance (medicine perplexity on a
// 90/10 per-record holdout, per monthly dataset) and prescription
// relevance (AP@10 / NDCG@10 over the 100 most frequent diseases) for
// Unigram, Cooccurrence, and the proposed medication model, with paired
// t-tests as reported in §VIII-A.
//
// Ground-truth relevance comes from the simulator's indication map —
// the same package-insert criterion the paper's assessors applied.

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "bench/bench_util.h"
#include "medmodel/baselines.h"
#include "medmodel/evaluation.h"
#include "medmodel/medication_model.h"
#include "mic/filter.h"
#include "stats/metrics.h"

namespace mic {
namespace {

using bench::BenchData;
using bench::BenchScale;

struct PerplexityColumns {
  std::vector<double> unigram;
  std::vector<double> cooccurrence;
  std::vector<double> proposed;
};

PerplexityColumns MeasurePerplexity(const BenchData& data) {
  PerplexityColumns columns;
  Rng rng(4242);
  for (std::size_t t = 0; t < data.generated.corpus.num_months(); ++t) {
    MonthlyDataset month = data.generated.corpus.month(t);
    FilterOptions filter;  // Paper's <5-per-month pruning.
    FilterMonth(filter, month);
    if (month.empty()) continue;
    const medmodel::HoldoutSplit split =
        medmodel::SplitMedicines(month, 0.1, rng);
    if (split.NumTestMentions() == 0) continue;

    auto unigram = medmodel::UnigramModel::Fit(split.train);
    auto cooccurrence = medmodel::CooccurrenceModel::Fit(split.train);
    auto proposed = medmodel::MedicationModel::Fit(split.train);
    if (!unigram.ok() || !cooccurrence.ok() || !proposed.ok()) continue;

    auto ppl_unigram = medmodel::Perplexity(**unigram, split);
    auto ppl_cooccurrence = medmodel::Perplexity(**cooccurrence, split);
    auto ppl_proposed = medmodel::Perplexity(**proposed, split);
    if (!ppl_unigram.ok() || !ppl_cooccurrence.ok() || !ppl_proposed.ok()) {
      continue;
    }
    columns.unigram.push_back(*ppl_unigram);
    columns.cooccurrence.push_back(*ppl_cooccurrence);
    columns.proposed.push_back(*ppl_proposed);
  }
  return columns;
}

struct RankingColumns {
  std::vector<double> ap_cooccurrence;
  std::vector<double> ap_proposed;
  std::vector<double> ndcg_cooccurrence;
  std::vector<double> ndcg_proposed;
};

// Ranks medicines for each frequent disease by total reproduced
// prescription count and scores against the indication map.
RankingColumns MeasureRelevance(const BenchData& data,
                                const medmodel::SeriesSet& proposed,
                                const medmodel::SeriesSet& cooccurrence,
                                std::size_t num_frequent_diseases) {
  // Most frequent diseases over the whole period (by raw mentions).
  std::unordered_map<DiseaseId, std::uint64_t> totals;
  for (std::size_t t = 0; t < data.generated.corpus.num_months(); ++t) {
    for (const auto& [id, count] :
         data.generated.corpus.month(t).DiseaseFrequencies()) {
      totals[id] += count;
    }
  }
  std::vector<std::pair<DiseaseId, std::uint64_t>> ordered(totals.begin(),
                                                           totals.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (ordered.size() > num_frequent_diseases) {
    ordered.resize(num_frequent_diseases);
  }

  constexpr std::size_t kCutoff = 10;
  RankingColumns columns;
  for (const auto& [disease, mentions] : ordered) {
    // Candidate medicines: anything either model links to the disease.
    std::unordered_map<MedicineId, std::pair<double, double>> scores;
    proposed.ForEachPair([&](DiseaseId d, MedicineId m,
                             const std::vector<double>& series) {
      if (!(d == disease)) return;
      double total = 0.0;
      for (double value : series) total += value;
      scores[m].first = total;
    });
    cooccurrence.ForEachPair([&](DiseaseId d, MedicineId m,
                                 const std::vector<double>& series) {
      if (!(d == disease)) return;
      double total = 0.0;
      for (double value : series) total += value;
      scores[m].second = total;
    });
    if (scores.empty()) continue;

    std::size_t num_relevant = 0;
    for (const auto& [m, score] : scores) {
      if (data.world.IsIndicated(disease, m)) ++num_relevant;
    }

    auto ranked_labels = [&](bool use_proposed) {
      std::vector<std::pair<double, MedicineId>> ranking;
      ranking.reserve(scores.size());
      for (const auto& [m, score] : scores) {
        ranking.push_back({use_proposed ? score.first : score.second, m});
      }
      std::sort(ranking.begin(), ranking.end(),
                [](const auto& a, const auto& b) {
                  if (a.first != b.first) return a.first > b.first;
                  return a.second < b.second;  // Deterministic ties.
                });
      std::vector<bool> labels;
      labels.reserve(ranking.size());
      for (const auto& [score, m] : ranking) {
        labels.push_back(data.world.IsIndicated(disease, m));
      }
      return labels;
    };

    const auto proposed_labels = ranked_labels(true);
    const auto cooccurrence_labels = ranked_labels(false);
    columns.ap_proposed.push_back(
        stats::AveragePrecisionAtK(proposed_labels, kCutoff, num_relevant));
    columns.ap_cooccurrence.push_back(stats::AveragePrecisionAtK(
        cooccurrence_labels, kCutoff, num_relevant));
    columns.ndcg_proposed.push_back(
        stats::NdcgAtK(proposed_labels, kCutoff, num_relevant));
    columns.ndcg_cooccurrence.push_back(
        stats::NdcgAtK(cooccurrence_labels, kCutoff, num_relevant));
  }
  return columns;
}

void PrintTTest(const char* label, const std::vector<double>& a,
                const std::vector<double>& b) {
  auto test = stats::PairedTTest(a, b);
  if (!test.ok()) {
    std::printf("  %s: t-test unavailable (%s)\n", label,
                test.status().ToString().c_str());
    return;
  }
  std::printf(
      "  %s: t(%d) = %.3f, p = %.4g, Cohen's d = %.3f\n", label,
      test->degrees_of_freedom, test->t_statistic, test->p_value,
      test->cohens_d);
}

}  // namespace

int Run() {
  const BenchScale scale = BenchScale::FromEnv();
  bench::BenchReport report("table3_accuracy", scale);
  bench::PrintHeader(
      "Table III: predictive performance and prescription relevance");
  std::printf(
      "paper reports: perplexity Unigram 2315.1 (103.4), Cooccurrence\n"
      "168.2 (7.4), Proposed 112.4 (4.5); AP@10 0.304 -> 0.787; NDCG@10\n"
      "0.450 -> 0.835; all pairwise differences significant (p < .001).\n\n");

  BenchData data = bench::BuildBenchData(scale);

  // --- Perplexity (per monthly dataset). ---
  const PerplexityColumns perplexity = MeasurePerplexity(data);
  std::printf("Perplexity over %zu monthly datasets (mean (SD)):\n",
              perplexity.proposed.size());
  std::printf("  %-14s %10.3f (%.3f)\n", "Unigram",
              stats::Mean(perplexity.unigram),
              stats::StdDev(perplexity.unigram));
  std::printf("  %-14s %10.3f (%.3f)\n", "Cooccurrence",
              stats::Mean(perplexity.cooccurrence),
              stats::StdDev(perplexity.cooccurrence));
  std::printf("  %-14s %10.3f (%.3f)\n", "Proposed",
              stats::Mean(perplexity.proposed),
              stats::StdDev(perplexity.proposed));
  PrintTTest("Proposed vs Cooccurrence", perplexity.proposed,
             perplexity.cooccurrence);
  PrintTTest("Proposed vs Unigram", perplexity.proposed,
             perplexity.unigram);

  // --- Relevance (AP@10 / NDCG@10). ---
  medmodel::ReproducerOptions cooccurrence_options;
  cooccurrence_options.model_kind = medmodel::LinkModelKind::kCooccurrence;
  cooccurrence_options.min_series_total = 0.0;
  auto cooccurrence_series = medmodel::ReproduceSeries(
      data.generated.corpus, cooccurrence_options);
  MIC_CHECK(cooccurrence_series.ok());

  medmodel::ReproducerOptions proposed_options;
  proposed_options.min_series_total = 0.0;
  auto proposed_series =
      medmodel::ReproduceSeries(data.generated.corpus, proposed_options);
  MIC_CHECK(proposed_series.ok());

  const RankingColumns ranking = MeasureRelevance(
      data, *proposed_series, *cooccurrence_series,
      /*num_frequent_diseases=*/100);
  std::printf("\nRanking relevance over %zu frequent diseases (mean (SD)):\n",
              ranking.ap_proposed.size());
  std::printf("  %-14s AP@10 %.3f (%.3f)   NDCG@10 %.3f (%.3f)\n",
              "Cooccurrence", stats::Mean(ranking.ap_cooccurrence),
              stats::StdDev(ranking.ap_cooccurrence),
              stats::Mean(ranking.ndcg_cooccurrence),
              stats::StdDev(ranking.ndcg_cooccurrence));
  std::printf("  %-14s AP@10 %.3f (%.3f)   NDCG@10 %.3f (%.3f)\n",
              "Proposed", stats::Mean(ranking.ap_proposed),
              stats::StdDev(ranking.ap_proposed),
              stats::Mean(ranking.ndcg_proposed),
              stats::StdDev(ranking.ndcg_proposed));
  PrintTTest("AP@10 Proposed vs Cooccurrence", ranking.ap_proposed,
             ranking.ap_cooccurrence);
  PrintTTest("NDCG@10 Proposed vs Cooccurrence", ranking.ndcg_proposed,
             ranking.ndcg_cooccurrence);
  report.WriteJsonFromEnv();
  return 0;
}

}  // namespace mic

int main() { return mic::Run(); }
