// Truth-grounded evaluation of prescription link prediction — the
// experiment the paper could NOT run, because true links do not exist in
// real MIC data. The simulator records the causing disease of every
// prescription, so the reproduced per-pair series can be scored exactly:
//
//   - per-pair series RMSE and total-count error, proposed vs
//     cooccurrence counting;
//   - ablation of the temporal-coupling extension (prior_strength).

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "medmodel/timeseries.h"
#include "stats/metrics.h"

namespace mic {
namespace {

struct LinkAccuracy {
  /// Mean RMSE between reproduced and true pair series.
  double mean_series_rmse = 0.0;
  /// Total absolute error of pair totals, normalized by true mass.
  double relative_total_error = 0.0;
  std::size_t pairs_scored = 0;
};

LinkAccuracy Score(const bench::BenchData& data,
                   const medmodel::SeriesSet& series) {
  LinkAccuracy accuracy;
  double absolute_error = 0.0;
  double true_mass = 0.0;
  double rmse_sum = 0.0;
  data.generated.truth.ForEachPair(
      [&](DiseaseId d, MedicineId m,
          const std::vector<std::uint32_t>& true_counts) {
        double pair_total = 0.0;
        for (std::uint32_t count : true_counts) {
          pair_total += static_cast<double>(count);
        }
        if (pair_total < 20.0) return;  // Score substantial pairs.
        const std::vector<double> reproduced = series.Prescription(d, m);
        std::vector<double> truth(true_counts.size());
        for (std::size_t t = 0; t < true_counts.size(); ++t) {
          truth[t] = static_cast<double>(true_counts[t]);
        }
        auto rmse = stats::Rmse(reproduced, truth);
        if (!rmse.ok()) return;
        rmse_sum += *rmse;
        double reproduced_total = 0.0;
        for (double value : reproduced) reproduced_total += value;
        absolute_error += std::fabs(reproduced_total - pair_total);
        true_mass += pair_total;
        ++accuracy.pairs_scored;
      });
  if (accuracy.pairs_scored > 0) {
    accuracy.mean_series_rmse =
        rmse_sum / static_cast<double>(accuracy.pairs_scored);
  }
  if (true_mass > 0.0) {
    accuracy.relative_total_error = absolute_error / true_mass;
  }
  return accuracy;
}

medmodel::ReproducerOptions BaseOptions() {
  medmodel::ReproducerOptions options;
  options.min_series_total = 0.0;
  return options;
}

}  // namespace

int Run() {
  const bench::BenchScale scale = bench::BenchScale::FromEnv();
  bench::BenchReport report("truth_links", scale);
  bench::PrintHeader(
      "Truth-grounded link prediction accuracy (beyond the paper)");
  std::printf(
      "Real MIC data has no ground-truth links (the paper evaluated by\n"
      "proxy: held-out perplexity and package-insert relevance). The\n"
      "simulator records every prescription's causing disease, so the\n"
      "reproduced pair series can be scored exactly.\n\n");

  bench::BenchData data = bench::BuildBenchData(scale, 0.0);

  struct Row {
    const char* label;
    medmodel::ReproducerOptions options;
  };
  std::vector<Row> rows;
  {
    Row proposed{"proposed (paper)", BaseOptions()};
    rows.push_back(proposed);
    Row cooccurrence{"cooccurrence", BaseOptions()};
    cooccurrence.options.model_kind =
        medmodel::LinkModelKind::kCooccurrence;
    rows.push_back(cooccurrence);
    Row coupled10{"proposed + coupling 10", BaseOptions()};
    coupled10.options.model_options.prior_strength = 10.0;
    rows.push_back(coupled10);
    Row coupled100{"proposed + coupling 100", BaseOptions()};
    coupled100.options.model_options.prior_strength = 100.0;
    rows.push_back(coupled100);
  }

  std::printf("  %-26s %16s %22s\n", "link model", "mean series RMSE",
              "relative total error");
  for (const Row& row : rows) {
    auto series = medmodel::ReproduceSeries(data.generated.corpus,
                                            row.options);
    if (!series.ok()) {
      std::printf("  %-26s (failed: %s)\n", row.label,
                  series.status().ToString().c_str());
      continue;
    }
    const LinkAccuracy accuracy = Score(data, *series);
    std::printf("  %-26s %16.3f %21.1f%%  (%zu pairs)\n", row.label,
                accuracy.mean_series_rmse,
                100.0 * accuracy.relative_total_error,
                accuracy.pairs_scored);
  }
  std::printf(
      "\n(cooccurrence counting inflates every pair that merely shares\n"
      "records; the latent model's totals should sit close to truth, and\n"
      "mild temporal coupling should help by stabilizing sparse months.)\n");
  report.WriteJsonFromEnv();
  return 0;
}

}  // namespace mic

int main() { return mic::Run(); }
