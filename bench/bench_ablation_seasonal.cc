// Ablation: seasonal representation — the paper's 11-state dummy form
// vs trigonometric forms with 1..6 harmonics, on smooth (sinusoidal)
// and peaked (epidemic-style) seasonal series. Fewer harmonics cost
// fewer AIC parameters but cannot express narrow peaks.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "ssm/fit.h"

namespace mic {
namespace {

std::vector<double> MakeSeries(bool peaked, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(43);
  for (int t = 0; t < 43; ++t) {
    const double phase = 2.0 * M_PI * t / 12.0;
    double seasonal;
    if (peaked) {
      // Narrow winter peak (epidemic shape, cf. Fig. 3a influenza).
      seasonal = 8.0 * std::pow(0.5 * (std::cos(phase) + 1.0), 4.0);
    } else {
      seasonal = 4.0 * std::sin(phase);
    }
    x[t] = 12.0 + seasonal + rng.NextGaussian(0.0, 0.5);
  }
  return x;
}

void RunShape(const char* label, bool peaked) {
  std::printf("%s:\n", label);
  std::printf("  %-22s %10s %8s\n", "seasonal form", "mean AIC", "states");
  constexpr int kTrials = 8;

  auto evaluate = [&](const ssm::StructuralSpec& spec) {
    double total = 0.0;
    int succeeded = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      const auto x = MakeSeries(peaked, 3000 + trial);
      // Trig models with unused harmonics have flat likelihood ridges;
      // give Nelder-Mead headroom so the comparison is about the model,
      // not the optimizer.
      ssm::FitOptions fit;
      fit.optimizer.max_evaluations = 1500;
      fit.optimizer.tolerance = 1e-10;
      auto fitted = ssm::FitStructuralModel(x, spec, fit);
      if (!fitted.ok()) continue;
      total += fitted->aic;
      ++succeeded;
    }
    return succeeded > 0 ? total / succeeded
                         : std::numeric_limits<double>::quiet_NaN();
  };

  ssm::StructuralSpec dummy;
  dummy.seasonal = true;
  std::printf("  %-22s %10.2f %8d\n", "dummy (paper)", evaluate(dummy),
              dummy.NumSeasonalStates());
  for (int harmonics : {1, 2, 3, 6}) {
    ssm::StructuralSpec trig;
    trig.seasonal = true;
    trig.seasonal_form = ssm::SeasonalForm::kTrigonometric;
    trig.harmonics = harmonics;
    char name[32];
    std::snprintf(name, sizeof(name), "trig, %d harmonic%s", harmonics,
                  harmonics == 1 ? "" : "s");
    std::printf("  %-22s %10.2f %8d\n", name, evaluate(trig),
                trig.NumSeasonalStates());
  }
  std::printf("\n");
}

}  // namespace

int Run() {
  const bench::BenchScale scale = bench::BenchScale::FromEnv();
  bench::BenchReport report("ablation_seasonal", scale);
  bench::PrintHeader("Ablation: seasonal representation "
                     "(dummy vs trigonometric)");
  RunShape("smooth sinusoidal seasonality", /*peaked=*/false);
  RunShape("peaked epidemic seasonality", /*peaked=*/true);
  std::printf(
      "(on a pure sinusoid one harmonic wins on parameter count; narrow\n"
      "epidemic peaks need several harmonics, converging to the dummy\n"
      "form's flexibility — the paper's choice is the safe general one.\n"
      "Intermediate harmonic counts whose upper harmonics the data does\n"
      "not excite are weakly identified under the approximate-diffuse\n"
      "initialization, which inflates their trial-to-trial AIC spread.)\n");
  report.WriteJsonFromEnv();
  return 0;
}

}  // namespace mic

int main() { return mic::Run(); }
