// Reproduces Figure 8: geographical spread of the anti-platelet
// generics. Per-city medication models report original vs generic
// prescription shares one month before the generic entry, one month
// after, and one year after — including the authorized generic's
// dominance and the delayed-adoption northern city.

#include <cstdio>

#include "apps/geo_spread.h"
#include "bench/bench_util.h"

namespace mic {

int Run() {
  const bench::BenchScale scale = bench::BenchScale::FromEnv();
  bench::BenchReport bench_report("fig8_geo_spread", scale);
  bench::PrintHeader("Figure 8: geographic spread of anti-platelet "
                     "generics");
  std::printf(
      "paper: Generic-3 (the authorized generic) dominates from the first\n"
      "month and keeps its lead one year later; the northernmost area\n"
      "still used the original even after the generics' release.\n\n");

  bench::BenchData data = bench::BuildBenchData(scale, 0.0);
  const Catalog& catalog = data.generated.corpus.catalog();

  const std::vector<const char*> names = {
      synth::names::kAntiPlateletOriginal,
      synth::names::kAntiPlateletGeneric1,
      synth::names::kAntiPlateletGeneric2,
      synth::names::kAntiPlateletGeneric3};
  std::vector<MedicineId> group;
  for (const char* name : names) {
    group.push_back(*catalog.medicines().Lookup(name));
  }

  apps::GeoSpreadOptions options;
  options.reproducer.min_series_total = 0.0;
  // City/class slices are small; the corpus-level min-5 pruning would
  // starve them.
  options.reproducer.filter_options.min_disease_count = 1;
  options.reproducer.filter_options.min_medicine_count = 1;
  const int entry = synth::PaperWorldEvents::kGenericEntry;
  options.snapshot_months = {entry - 1, entry + 1, entry + 12};
  auto report =
      apps::AnalyzeGeoSpread(data.generated.corpus, group, options);
  MIC_CHECK(report.ok()) << report.status();

  const char* snapshot_labels[] = {"one month before release",
                                   "one month after release",
                                   "one year after release"};
  for (std::size_t snapshot = 0; snapshot < 3; ++snapshot) {
    std::printf("%s (t = %d): share of the anti-platelet market\n",
                snapshot_labels[snapshot],
                options.snapshot_months[snapshot]);
    std::printf("  %-12s %9s %9s %9s %9s\n", "city", "original", "gen-1",
                "gen-2", "gen-3");
    for (std::uint32_t c = 0; c < catalog.cities().size(); ++c) {
      const CityId city(c);
      std::printf("  %-12s", catalog.cities().Name(city).c_str());
      for (MedicineId medicine : group) {
        std::printf(" %8.1f%%",
                    100.0 * report->Share(city, medicine, group, snapshot));
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  // Verdicts.
  const CityId north = *catalog.cities().Lookup("north-city");
  const MedicineId original = group[0];
  const MedicineId generic3 = group[3];
  double generic3_share_sum = 0.0;
  double other_generics_share_sum = 0.0;
  int cities_counted = 0;
  for (std::uint32_t c = 0; c < catalog.cities().size(); ++c) {
    const CityId city(c);
    if (city == north) continue;  // Adoption delayed there by design.
    generic3_share_sum += report->Share(city, generic3, group, 2);
    other_generics_share_sum +=
        report->Share(city, group[1], group, 2) +
        report->Share(city, group[2], group, 2);
    ++cities_counted;
  }
  std::printf("verdicts:\n");
  std::printf("  Generic-3 mean share (1y, non-delayed cities): %.1f%% vs "
              "other generics combined %.1f%%%s\n",
              100.0 * generic3_share_sum / cities_counted,
              100.0 * other_generics_share_sum / cities_counted,
              generic3_share_sum > other_generics_share_sum
                  ? "  [authorized-generic dominance REPRODUCED]"
                  : "");
  std::printf("  north-city original share 1 month after release: %.1f%% "
              "(delayed adoption)%s\n",
              100.0 * report->Share(north, original, group, 1),
              report->Share(north, original, group, 1) > 0.95
                  ? "  [northern holdout REPRODUCED]"
                  : "");
  bench_report.WriteJsonFromEnv();
  return 0;
}

}  // namespace mic

int main() { return mic::Run(); }
