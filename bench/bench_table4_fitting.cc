// Reproduces Table IV: fitting quality (AIC, mean and SD) of Local
// Level (LL), LL+Seasonality, LL+Intervention, the full LL+S+I model,
// and the AIC-selected ARIMA baseline, over populations of disease,
// medicine, and prescription time series, with the paper's paired
// t-tests (LL+S+I vs the second-best structural variant).

#include <cstdio>
#include <string>

#include "arima/arima.h"
#include "bench/bench_util.h"
#include "ssm/changepoint.h"
#include "ssm/fit.h"
#include "stats/metrics.h"

namespace mic {
namespace {

struct AicColumns {
  std::vector<double> ll;
  std::vector<double> ll_s;
  std::vector<double> ll_i;
  std::vector<double> full;
  std::vector<double> arima;
  std::size_t changes_detected = 0;
  std::size_t changes_detected_margin4 = 0;
  std::size_t series_count = 0;
};

ssm::FitOptions MakeFitOptions() {
  ssm::FitOptions options;
  options.optimizer.max_evaluations = 160;
  return options;
}

AicColumns EvaluateSeries(const std::vector<std::vector<double>>& all) {
  AicColumns columns;
  for (const std::vector<double>& raw : all) {
    std::vector<double> series = raw;
    bench::NormalizeBySd(series);

    ssm::StructuralSpec ll;
    ssm::StructuralSpec ll_s;
    ll_s.seasonal = true;
    auto fit_ll = ssm::FitStructuralModel(series, ll, MakeFitOptions());
    auto fit_ll_s = ssm::FitStructuralModel(series, ll_s, MakeFitOptions());
    if (!fit_ll.ok() || !fit_ll_s.ok()) continue;

    // LL+I / LL+S+I: the intervention point is chosen by the exact
    // search; its AIC is the searched minimum (including the
    // no-intervention fallback), as in the paper's pipeline.
    ssm::ChangePointOptions plain;
    plain.seasonal = false;
    plain.fit = MakeFitOptions();
    ssm::ChangePointDetector detector_plain(series, plain);
    auto result_plain = detector_plain.DetectExact();
    ssm::ChangePointOptions seasonal;
    seasonal.seasonal = true;
    seasonal.fit = MakeFitOptions();
    ssm::ChangePointDetector detector_full(series, seasonal);
    auto result_full = detector_full.DetectExact();
    if (!result_plain.ok() || !result_full.ok()) continue;

    auto arima = arima::SelectArima(series);
    if (!arima.ok()) continue;

    columns.ll.push_back(fit_ll->aic);
    columns.ll_s.push_back(fit_ll_s->aic);
    columns.ll_i.push_back(result_plain->best_aic);
    columns.full.push_back(result_full->best_aic);
    columns.arima.push_back(arima->aic);
    if (result_full->has_change) ++columns.changes_detected;
    if (result_full->has_change &&
        result_full->best_aic <=
            result_full->aic_without_intervention - 4.0) {
      ++columns.changes_detected_margin4;
    }
    ++columns.series_count;
  }
  return columns;
}

void PrintColumns(const char* type, const AicColumns& columns) {
  std::printf("\n%s time series (n = %zu):\n", type, columns.series_count);
  const struct {
    const char* label;
    const std::vector<double>* values;
  } rows[] = {{"Local Level (LL)", &columns.ll},
              {"LL + Seasonality (S)", &columns.ll_s},
              {"LL + Intervention (I)", &columns.ll_i},
              {"LL + S + I (proposed)", &columns.full},
              {"ARIMA", &columns.arima}};
  for (const auto& row : rows) {
    std::printf("  %-24s %9.3f (%.3f)\n", row.label,
                stats::Mean(*row.values), stats::StdDev(*row.values));
  }
  auto test = stats::PairedTTest(columns.full, columns.ll_s);
  if (test.ok()) {
    std::printf(
        "  LL+S+I vs LL+S: t(%d) = %.3f, p = %.4g, Cohen's d = %.3f\n",
        test->degrees_of_freedom, test->t_statistic, test->p_value,
        test->cohens_d);
  }
  const double denom =
      columns.series_count == 0
          ? 1.0
          : static_cast<double>(columns.series_count);
  std::printf(
      "  change points detected: %zu / %zu (%.1f%%) at plain AIC;"
      " %zu (%.1f%%) with evidence margin 4\n",
      columns.changes_detected, columns.series_count,
      100.0 * static_cast<double>(columns.changes_detected) / denom,
      columns.changes_detected_margin4,
      100.0 * static_cast<double>(columns.changes_detected_margin4) /
          denom);
}

}  // namespace

int Run() {
  const bench::BenchScale scale = bench::BenchScale::FromEnv();
  bench::BenchReport report("table4_fitting", scale);
  bench::PrintHeader("Table IV: fitting quality (AIC) by model variant");
  std::printf(
      "paper reports (disease/medicine/prescription means): LL 326/277/119,\n"
      "LL+S 254/218/104, LL+I 317/269/108, LL+S+I 245/208/92, ARIMA\n"
      "286/242/88; LL+S+I significantly beats LL+S; changes detected for\n"
      "12%%/28%%/10%% of disease/medicine/prescription series.\n"
      "(Absolute AIC levels depend on series scaling; the ORDERING of the\n"
      "variants is the reproduced claim.)\n");

  bench::BenchData data = bench::BuildBenchData(scale);
  const std::uint64_t sample_seed = scale.seed ^ 0x7ab1e4;

  const auto diseases = bench::SampleSeries(
      bench::CollectDiseaseSeries(data.series), scale.max_series_per_type,
      sample_seed);
  const auto medicines = bench::SampleSeries(
      bench::CollectMedicineSeries(data.series), scale.max_series_per_type,
      sample_seed + 1);
  const auto prescriptions = bench::SampleSeries(
      bench::CollectPrescriptionSeries(data.series),
      scale.max_series_per_type, sample_seed + 2);

  PrintColumns("Disease", EvaluateSeries(diseases));
  PrintColumns("Medicine", EvaluateSeries(medicines));
  PrintColumns("Prescription", EvaluateSeries(prescriptions));
  report.WriteJsonFromEnv();
  return 0;
}

}  // namespace mic

int main() { return mic::Run(); }
