// Reproduces Table VI: agreement between the exact (Algorithm 1) and
// approximate (Algorithm 2) change point detectors — the positive/
// negative confusion matrix, the false-negative rate, Cohen's kappa,
// and the RMSE between the change points both algorithms detect.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "ssm/changepoint.h"
#include "stats/metrics.h"

namespace mic {
namespace {

struct ConsistencyRow {
  stats::BinaryConfusion confusion;
  // Squared month error over exact-positive cases the approximate
  // algorithm also flags.
  double squared_error = 0.0;
  std::size_t matched_positives = 0;
};

ssm::FitOptions MakeFitOptions() {
  ssm::FitOptions options;
  options.optimizer.max_evaluations = 160;
  return options;
}

ConsistencyRow Measure(const std::vector<std::vector<double>>& all) {
  ConsistencyRow row;
  for (const std::vector<double>& raw : all) {
    std::vector<double> series = raw;
    bench::NormalizeBySd(series);
    ssm::ChangePointOptions options;
    options.seasonal = true;
    options.fit = MakeFitOptions();
    // One detector instance: the exact sweep fills the AIC cache, and
    // the approximate run replays deterministically from it, exactly as
    // the two algorithms would behave independently.
    ssm::ChangePointDetector detector(series, options);
    auto exact = detector.DetectExact();
    auto approximate = detector.DetectApproximate();
    if (!exact.ok() || !approximate.ok()) continue;
    row.confusion.Add(exact->has_change, approximate->has_change);
    if (exact->has_change && approximate->has_change) {
      const double diff = static_cast<double>(exact->change_point -
                                              approximate->change_point);
      row.squared_error += diff * diff;
      ++row.matched_positives;
    }
  }
  return row;
}

void PrintRow(const char* type, const ConsistencyRow& row) {
  const auto& confusion = row.confusion;
  std::printf("\n%s time series (n = %llu):\n", type,
              static_cast<unsigned long long>(confusion.Total()));
  std::printf("                      approx pos   approx neg\n");
  std::printf("  exact pos       %10llu %12llu\n",
              static_cast<unsigned long long>(confusion.both_positive),
              static_cast<unsigned long long>(confusion.only_first));
  std::printf("  exact neg       %10llu %12llu\n",
              static_cast<unsigned long long>(confusion.only_second),
              static_cast<unsigned long long>(confusion.both_negative));
  const std::uint64_t exact_positives =
      confusion.both_positive + confusion.only_first;
  const double false_negative_rate =
      exact_positives == 0
          ? 0.0
          : 100.0 * static_cast<double>(confusion.only_first) /
                static_cast<double>(exact_positives);
  std::printf("  false-negative rate: %.3f%%   false positives: %llu\n",
              false_negative_rate,
              static_cast<unsigned long long>(confusion.only_second));
  auto kappa = stats::CohensKappa(confusion);
  if (kappa.ok()) {
    std::printf("  Cohen's kappa: %.3f\n", *kappa);
  }
  if (row.matched_positives > 0) {
    std::printf("  change point RMSE (both-positive, months): %.3f\n",
                std::sqrt(row.squared_error /
                          static_cast<double>(row.matched_positives)));
  }
}

}  // namespace

int Run() {
  const bench::BenchScale scale = bench::BenchScale::FromEnv();
  bench::BenchReport report("table6_consistency", scale);
  bench::PrintHeader(
      "Table VI: exact vs approximate change point consistency");
  std::printf(
      "paper reports: zero false positives for every type (a structural\n"
      "property of Algorithm 2's final AIC comparison), false-negative\n"
      "rates 8.6%%/7.3%%/9.8%%, kappa ~0.94-0.95, and change point RMSE\n"
      "3.9/7.2/4.5 months for disease/medicine/prescription series.\n");

  bench::BenchData data = bench::BuildBenchData(scale);
  const std::uint64_t sample_seed = scale.seed ^ 0x7ab1e6;
  const std::size_t cap = std::max<std::size_t>(
      10, scale.max_series_per_type / 2);

  PrintRow("Disease",
           Measure(bench::SampleSeries(
               bench::CollectDiseaseSeries(data.series), cap, sample_seed)));
  PrintRow("Medicine",
           Measure(bench::SampleSeries(
               bench::CollectMedicineSeries(data.series), cap,
               sample_seed + 1)));
  PrintRow("Prescription",
           Measure(bench::SampleSeries(
               bench::CollectPrescriptionSeries(data.series), cap,
               sample_seed + 2)));
  report.WriteJsonFromEnv();
  return 0;
}

}  // namespace mic

int main() { return mic::Run(); }
