// Early-signs growth prediction — the question the paper's discussion
// raises: "Can we predict the future growth of a prescription from its
// initial behavior?" (§IX).
//
// A population of prescription-style series with breaks of varying
// slopes is truncated k months after the break; the detector estimates
// the break and its slope lambda_hat from the truncated window, and the
// experiment reports (a) the correlation between lambda_hat and the true
// slope and (b) the error of the implied 12-months-ahead projection, as
// a function of the observation window k.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "ssm/changepoint.h"
#include "stats/metrics.h"

namespace mic {
namespace {

struct EarlySeries {
  std::vector<double> values;  // Full 43-month series.
  int change_point;
  double slope;
};

EarlySeries MakeSeries(std::uint64_t seed) {
  Rng rng(seed);
  EarlySeries series;
  series.change_point = 10 + static_cast<int>(rng.NextBounded(8));
  series.slope = 0.4 + 2.0 * rng.NextDouble();
  series.values.resize(43);
  for (int t = 0; t < 43; ++t) {
    double value = 8.0 + rng.NextGaussian(0.0, 0.8);
    if (t >= series.change_point) {
      value += series.slope * (t - series.change_point + 1);
    }
    series.values[t] = value;
  }
  return series;
}

}  // namespace

int Run() {
  const bench::BenchScale scale = bench::BenchScale::FromEnv();
  bench::BenchReport report("early_signs", scale);
  bench::PrintHeader(
      "Early signs: predicting prescription growth from initial "
      "behavior (paper §IX)");
  constexpr int kTrials = 24;
  constexpr int kProjection = 12;

  std::printf("%6s %22s %26s %10s\n", "k", "corr(lambda_hat, true)",
              "proj. RMSE @ +12mo (norm.)", "detected");
  for (int k : {3, 5, 8, 12}) {
    std::vector<double> estimated;
    std::vector<double> truth;
    double squared_error = 0.0;
    int projected = 0;
    int detected = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      const EarlySeries series = MakeSeries(7000 + trial);
      const int cut = series.change_point + k;
      if (cut + kProjection > 43) continue;
      const std::vector<double> train(series.values.begin(),
                                      series.values.begin() + cut);
      ssm::ChangePointOptions options;
      options.seasonal = false;
      options.fit.optimizer.max_evaluations = 200;
      options.aic_margin = 2.0;
      options.min_tail_observations = 2;
      ssm::ChangePointDetector detector(train, options);
      auto result = detector.DetectExact();
      if (!result.ok() || !result->has_change) continue;
      ++detected;
      estimated.push_back(result->best_model.lambda);
      truth.push_back(series.slope);
      // Project 12 months ahead with the estimated break.
      const double projection =
          train.back() +
          result->best_model.lambda * static_cast<double>(kProjection);
      const double actual = series.values[cut + kProjection - 1];
      const double scale = std::max(1.0, std::fabs(actual));
      squared_error += (projection - actual) * (projection - actual) /
                       (scale * scale);
      ++projected;
    }
    double correlation = 0.0;
    if (estimated.size() >= 3) {
      correlation =
          stats::PearsonCorrelation(estimated, truth).value_or(0.0);
    }
    std::printf("%6d %22.3f %26.3f %7d/%d\n", k, correlation,
                projected > 0 ? std::sqrt(squared_error / projected) : 0.0,
                detected, kTrials);
  }
  std::printf(
      "\n(the correlation between the early slope estimate and the true\n"
      "growth rate should rise quickly with the observation window k,\n"
      "supporting the paper's 'early signs' conjecture for prescriptions\n"
      "whose breaks follow the slope-shift shape.)\n");
  report.WriteJsonFromEnv();
  return 0;
}

}  // namespace mic

int main() { return mic::Run(); }
