// Shared infrastructure for the experiment-reproduction binaries: the
// benchmark world, series sampling, and table formatting.
//
// Every bench binary prints the rows/series of one paper table or
// figure, next to the values the paper reports, so EXPERIMENTS.md can
// record paper-vs-measured directly from the output.
//
// Scale knobs (environment variables, all optional):
//   MICTREND_BENCH_PATIENTS     world size (default 2000)
//   MICTREND_BENCH_BACKGROUND   background diseases (default 40)
//   MICTREND_BENCH_MAX_SERIES   per-type series cap for the fitting
//                               experiments (default 60)
//   MICTREND_BENCH_SEED         world/generator seed (default 20190411)
//   MICTREND_BENCH_THREADS      comma-separated pool widths for the
//                               parallel scaling stage, e.g. "1,2,4,8"
//                               (the default). A single value pins one
//                               width; the last entry is the headline
//                               width the other pooled stages use
//                               (0 = hardware concurrency). Outputs are
//                               bit-identical at every width.
//   MICTREND_BENCH_JSON         when set, the binary also writes its
//                               headline numbers to this path as one
//                               schema-stable BenchReport JSON object
//                               (scripts/bench_compare.py diffs two of
//                               them; bench/baselines/ holds the
//                               committed reference files).

#ifndef MICTREND_BENCH_BENCH_UTIL_H_
#define MICTREND_BENCH_BENCH_UTIL_H_

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/exec_context.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"
#include "medmodel/timeseries.h"
#include "obs/metrics.h"
#include "runtime/thread_pool.h"
#include "synth/generator.h"
#include "synth/scenario.h"

namespace mic::bench {

inline std::int64_t EnvInt(const char* name, std::int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

/// Parses a comma-separated integer list ("1,2,4,8"); returns
/// `fallback` when the variable is unset, empty, or malformed.
inline std::vector<int> EnvIntList(const char* name,
                                   std::vector<int> fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  std::vector<int> parsed;
  const char* cursor = value;
  while (true) {
    char* end = nullptr;
    const long long entry = std::strtoll(cursor, &end, 10);
    if (end == cursor) return fallback;
    parsed.push_back(static_cast<int>(entry));
    if (*end == '\0') break;
    if (*end != ',') return fallback;
    cursor = end + 1;
  }
  return parsed;
}

struct BenchScale {
  std::size_t patients = 2000;
  std::size_t background_diseases = 40;
  std::size_t max_series_per_type = 60;
  std::uint64_t seed = 20190411;
  /// Headline pool width (the last MICTREND_BENCH_THREADS entry);
  /// 0 = hardware concurrency.
  int threads = 0;
  /// The full scaling curve: every positive MICTREND_BENCH_THREADS
  /// entry, in order. The parallel bench stage runs once per width.
  std::vector<int> thread_curve = {1, 2, 4, 8};

  static BenchScale FromEnv() {
    BenchScale scale;
    scale.patients = static_cast<std::size_t>(
        EnvInt("MICTREND_BENCH_PATIENTS", 2000));
    scale.background_diseases = static_cast<std::size_t>(
        EnvInt("MICTREND_BENCH_BACKGROUND", 40));
    scale.max_series_per_type = static_cast<std::size_t>(
        EnvInt("MICTREND_BENCH_MAX_SERIES", 60));
    scale.seed =
        static_cast<std::uint64_t>(EnvInt("MICTREND_BENCH_SEED", 20190411));
    const std::vector<int> entries =
        EnvIntList("MICTREND_BENCH_THREADS", {1, 2, 4, 8});
    scale.threads = entries.empty() ? 0 : entries.back();
    scale.thread_curve.clear();
    for (int width : entries) {
      if (width > 0) scale.thread_curve.push_back(width);
    }
    if (scale.thread_curve.empty()) scale.thread_curve = {1, 2, 4, 8};
    return scale;
  }

  /// The pool the scale asks for (callers own it).
  runtime::ThreadPool MakePool() const {
    return runtime::ThreadPool(threads);
  }
};

/// Machine-readable result file for one bench run, written when the
/// MICTREND_BENCH_JSON environment variable names a path. The schema is
/// frozen (bench_compare.py refuses anything else):
///
///   {"schema_version":1,"bench":"table5",
///    "config":{"patients":2000,"background":40,"max_series":60,
///              "seed":20190411,"threads":0},
///    "machine":{"nproc":8,"host":"buildbox"},
///    "sections":{"<section>":{"<key>":<number>,...},...}}
///
/// "machine" records where the run happened (core count, hostname) so
/// bench_compare.py can refuse to compare wall-clock timings recorded
/// on machines with different core counts.
///
/// Sections and keys are emitted in sorted order so two files diff
/// cleanly. Key-name convention (bench_compare.py keys off it): values
/// named `*_seconds`, `*_rate`, `*_speedup`, or `speedup` are
/// wall-clock measurements
/// and only gate when a time factor is requested; everything else is
/// deterministic for a fixed config and compares within a strict
/// relative tolerance. A `totals/wall_seconds` entry (whole-binary wall
/// time) is stamped automatically at Write() time.
class BenchReport {
 public:
  BenchReport(std::string name, const BenchScale& scale)
      : name_(std::move(name)),
        scale_(scale),
        start_(std::chrono::steady_clock::now()) {}

  /// Records one number; overwrites an earlier Set() of the same key.
  void Set(const std::string& section, const std::string& key,
           double value) {
    sections_[section][key] = value;
  }

  std::string ToJson() const {
    std::string json = "{\"schema_version\":1,\"bench\":\"";
    AppendJsonEscaped(json, name_);
    json += StrFormat(
        "\",\"config\":{\"patients\":%zu,\"background\":%zu,"
        "\"max_series\":%zu,\"seed\":%llu,\"threads\":%d},",
        scale_.patients, scale_.background_diseases,
        scale_.max_series_per_type,
        static_cast<unsigned long long>(scale_.seed), scale_.threads);
    // Machine provenance, outside "config" because it describes where
    // the run happened, not what it computed. bench_compare.py skips
    // wall-clock comparisons when the core counts differ.
    char host[256] = {0};
    if (::gethostname(host, sizeof(host) - 1) != 0) host[0] = '\0';
    json += StrFormat("\"machine\":{\"nproc\":%u,\"host\":\"",
                      std::thread::hardware_concurrency());
    AppendJsonEscaped(json, host);
    json += "\"},\"sections\":{";
    bool first_section = true;
    for (const auto& [section, keys] : sections_) {
      if (!first_section) json += ',';
      first_section = false;
      json += '"';
      AppendJsonEscaped(json, section);
      json += "\":{";
      bool first_key = true;
      for (const auto& [key, value] : keys) {
        if (!first_key) json += ',';
        first_key = false;
        json += '"';
        AppendJsonEscaped(json, key);
        // %.17g round-trips doubles exactly, so re-running at identical
        // config reproduces deterministic values bit-for-bit.
        json += StrFormat("\":%.17g", value);
      }
      json += '}';
    }
    json += "}}";
    return json;
  }

  /// Writes the report to $MICTREND_BENCH_JSON (no-op when unset) and
  /// stamps totals/wall_seconds. Aborts on an unwritable path: a
  /// harness that asked for the file must not silently lose it.
  void WriteJsonFromEnv() {
    const char* path = std::getenv("MICTREND_BENCH_JSON");
    if (path == nullptr || *path == '\0') return;
    Set("totals", "wall_seconds",
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count());
    std::ofstream out(path);
    MIC_CHECK(out.good()) << "cannot open MICTREND_BENCH_JSON path "
                          << path;
    out << ToJson() << '\n';
    out.flush();
    MIC_CHECK(out.good()) << "failed writing " << path;
    std::fprintf(stderr, "wrote bench json to %s\n", path);
  }

 private:
  std::string name_;
  BenchScale scale_;
  std::chrono::steady_clock::time_point start_;
  // Ordered maps: sorted emission is part of the schema contract.
  std::map<std::string, std::map<std::string, double>> sections_;
};

/// One machine-readable line per bench binary so harnesses can scrape
/// the runtime counters next to the human-readable tables.
inline void PrintRuntimeStatsJson(const char* label,
                                  const runtime::RuntimeStats& stats) {
  std::printf("RUNTIME_STATS %s %s\n", label, stats.ToJson().c_str());
}

/// Same, for an obs::MetricsRegistry the bench threaded through an
/// ExecContext (deterministic key order, so lines diff cleanly).
inline void PrintMetricsJson(const char* label,
                             const obs::MetricsRegistry& registry) {
  std::printf("METRICS %s %s\n", label, registry.ToJson().c_str());
}

/// The benchmark world + generated data + reproduced series, built once
/// per binary.
struct BenchData {
  synth::World world;
  synth::GeneratedData generated;
  medmodel::SeriesSet series;
};

inline BenchData BuildBenchData(const BenchScale& scale,
                                double min_series_total = 10.0,
                                runtime::ThreadPool* pool = nullptr) {
  synth::PaperWorldOptions options;
  options.num_months = 43;
  options.seed = scale.seed;
  options.num_patients = scale.patients;
  options.num_background_diseases = scale.background_diseases;
  auto world = synth::MakePaperWorld(options);
  MIC_CHECK(world.ok()) << world.status();

  synth::ClaimGenerator generator(&*world);
  auto generated = generator.Generate();
  MIC_CHECK(generated.ok()) << generated.status();

  medmodel::ReproducerOptions reproducer;
  reproducer.filter_options.min_disease_count = 5;
  reproducer.filter_options.min_medicine_count = 5;
  reproducer.min_series_total = min_series_total;
  ExecContext context;
  context.pool = pool;  // null = inline, same output
  auto series =
      medmodel::ReproduceSeries(generated->corpus, reproducer, context);
  MIC_CHECK(series.ok()) << series.status();

  return BenchData{std::move(world).value(),
                   std::move(generated).value(),
                   std::move(series).value()};
}

/// Normalizes a series by its sample SD (the trend pipeline convention);
/// returns the scale used.
inline double NormalizeBySd(std::vector<double>& series) {
  double mean = 0.0;
  for (double value : series) mean += value;
  mean /= static_cast<double>(series.size());
  double variance = 0.0;
  for (double value : series) {
    variance += (value - mean) * (value - mean);
  }
  variance /= static_cast<double>(series.size() - 1);
  const double sd = variance > 0.0 ? std::sqrt(variance) : 1.0;
  if (sd > 0.0) {
    for (double& value : series) value /= sd;
  }
  return sd;
}

/// Deterministically samples at most `cap` of the given series,
/// preferring higher-volume ones (stable across runs for a fixed seed).
inline std::vector<std::vector<double>> SampleSeries(
    std::vector<std::vector<double>> all, std::size_t cap,
    std::uint64_t seed) {
  if (all.size() <= cap) return all;
  // Shuffle deterministically, then take `cap`: a representative sample
  // rather than only the largest series.
  Rng rng(seed);
  rng.Shuffle(all);
  all.resize(cap);
  return all;
}

/// Collects every series of one type from a SeriesSet.
inline std::vector<std::vector<double>> CollectDiseaseSeries(
    const medmodel::SeriesSet& set) {
  std::vector<std::vector<double>> out;
  set.ForEachDisease([&out](DiseaseId, const std::vector<double>& series) {
    out.push_back(series);
  });
  return out;
}

inline std::vector<std::vector<double>> CollectMedicineSeries(
    const medmodel::SeriesSet& set) {
  std::vector<std::vector<double>> out;
  set.ForEachMedicine([&out](MedicineId, const std::vector<double>& series) {
    out.push_back(series);
  });
  return out;
}

inline std::vector<std::vector<double>> CollectPrescriptionSeries(
    const medmodel::SeriesSet& set) {
  std::vector<std::vector<double>> out;
  set.ForEachPair([&out](DiseaseId, MedicineId,
                         const std::vector<double>& series) {
    out.push_back(series);
  });
  return out;
}

/// Prints a monthly series as one compact row.
inline void PrintSeries(const char* label,
                        const std::vector<double>& series) {
  std::printf("%-28s", label);
  for (double value : series) std::printf(" %7.1f", value);
  std::printf("\n");
}

inline void PrintRule(char fill = '-', int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar(fill);
  std::putchar('\n');
}

inline void PrintHeader(const std::string& title) {
  PrintRule('=');
  std::printf("%s\n", title.c_str());
  PrintRule('=');
}

}  // namespace mic::bench

#endif  // MICTREND_BENCH_BENCH_UTIL_H_
