// Shared infrastructure for the experiment-reproduction binaries: the
// benchmark world, series sampling, and table formatting.
//
// Every bench binary prints the rows/series of one paper table or
// figure, next to the values the paper reports, so EXPERIMENTS.md can
// record paper-vs-measured directly from the output.
//
// Scale knobs (environment variables, all optional):
//   MICTREND_BENCH_PATIENTS     world size (default 2000)
//   MICTREND_BENCH_BACKGROUND   background diseases (default 40)
//   MICTREND_BENCH_MAX_SERIES   per-type series cap for the fitting
//                               experiments (default 60)
//   MICTREND_BENCH_SEED         world/generator seed (default 20190411)
//   MICTREND_BENCH_THREADS      mic::runtime pool width for the stages
//                               that take one (default 0 = hardware
//                               concurrency; 1 = today's inline path).
//                               Outputs are bit-identical either way.

#ifndef MICTREND_BENCH_BENCH_UTIL_H_
#define MICTREND_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "medmodel/timeseries.h"
#include "obs/metrics.h"
#include "runtime/thread_pool.h"
#include "synth/generator.h"
#include "synth/scenario.h"

namespace mic::bench {

inline std::int64_t EnvInt(const char* name, std::int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

struct BenchScale {
  std::size_t patients = 2000;
  std::size_t background_diseases = 40;
  std::size_t max_series_per_type = 60;
  std::uint64_t seed = 20190411;
  /// Pool width for parallel stages; 0 = hardware concurrency.
  int threads = 0;

  static BenchScale FromEnv() {
    BenchScale scale;
    scale.patients = static_cast<std::size_t>(
        EnvInt("MICTREND_BENCH_PATIENTS", 2000));
    scale.background_diseases = static_cast<std::size_t>(
        EnvInt("MICTREND_BENCH_BACKGROUND", 40));
    scale.max_series_per_type = static_cast<std::size_t>(
        EnvInt("MICTREND_BENCH_MAX_SERIES", 60));
    scale.seed =
        static_cast<std::uint64_t>(EnvInt("MICTREND_BENCH_SEED", 20190411));
    scale.threads =
        static_cast<int>(EnvInt("MICTREND_BENCH_THREADS", 0));
    return scale;
  }

  /// The pool the scale asks for (callers own it).
  runtime::ThreadPool MakePool() const {
    return runtime::ThreadPool(threads);
  }
};

/// One machine-readable line per bench binary so harnesses can scrape
/// the runtime counters next to the human-readable tables.
inline void PrintRuntimeStatsJson(const char* label,
                                  const runtime::RuntimeStats& stats) {
  std::printf("RUNTIME_STATS %s %s\n", label, stats.ToJson().c_str());
}

/// Same, for an obs::MetricsRegistry the bench threaded through an
/// ExecContext (deterministic key order, so lines diff cleanly).
inline void PrintMetricsJson(const char* label,
                             const obs::MetricsRegistry& registry) {
  std::printf("METRICS %s %s\n", label, registry.ToJson().c_str());
}

/// The benchmark world + generated data + reproduced series, built once
/// per binary.
struct BenchData {
  synth::World world;
  synth::GeneratedData generated;
  medmodel::SeriesSet series;
};

inline BenchData BuildBenchData(const BenchScale& scale,
                                double min_series_total = 10.0,
                                runtime::ThreadPool* pool = nullptr) {
  synth::PaperWorldOptions options;
  options.num_months = 43;
  options.seed = scale.seed;
  options.num_patients = scale.patients;
  options.num_background_diseases = scale.background_diseases;
  auto world = synth::MakePaperWorld(options);
  MIC_CHECK(world.ok()) << world.status();

  synth::ClaimGenerator generator(&*world);
  auto generated = generator.Generate();
  MIC_CHECK(generated.ok()) << generated.status();

  medmodel::ReproducerOptions reproducer;
  reproducer.filter_options.min_disease_count = 5;
  reproducer.filter_options.min_medicine_count = 5;
  reproducer.min_series_total = min_series_total;
  reproducer.model_options.pool = pool;  // null = inline, same output
  auto series = medmodel::ReproduceSeries(generated->corpus, reproducer);
  MIC_CHECK(series.ok()) << series.status();

  return BenchData{std::move(world).value(),
                   std::move(generated).value(),
                   std::move(series).value()};
}

/// Normalizes a series by its sample SD (the trend pipeline convention);
/// returns the scale used.
inline double NormalizeBySd(std::vector<double>& series) {
  double mean = 0.0;
  for (double value : series) mean += value;
  mean /= static_cast<double>(series.size());
  double variance = 0.0;
  for (double value : series) {
    variance += (value - mean) * (value - mean);
  }
  variance /= static_cast<double>(series.size() - 1);
  const double sd = variance > 0.0 ? std::sqrt(variance) : 1.0;
  if (sd > 0.0) {
    for (double& value : series) value /= sd;
  }
  return sd;
}

/// Deterministically samples at most `cap` of the given series,
/// preferring higher-volume ones (stable across runs for a fixed seed).
inline std::vector<std::vector<double>> SampleSeries(
    std::vector<std::vector<double>> all, std::size_t cap,
    std::uint64_t seed) {
  if (all.size() <= cap) return all;
  // Shuffle deterministically, then take `cap`: a representative sample
  // rather than only the largest series.
  Rng rng(seed);
  rng.Shuffle(all);
  all.resize(cap);
  return all;
}

/// Collects every series of one type from a SeriesSet.
inline std::vector<std::vector<double>> CollectDiseaseSeries(
    const medmodel::SeriesSet& set) {
  std::vector<std::vector<double>> out;
  set.ForEachDisease([&out](DiseaseId, const std::vector<double>& series) {
    out.push_back(series);
  });
  return out;
}

inline std::vector<std::vector<double>> CollectMedicineSeries(
    const medmodel::SeriesSet& set) {
  std::vector<std::vector<double>> out;
  set.ForEachMedicine([&out](MedicineId, const std::vector<double>& series) {
    out.push_back(series);
  });
  return out;
}

inline std::vector<std::vector<double>> CollectPrescriptionSeries(
    const medmodel::SeriesSet& set) {
  std::vector<std::vector<double>> out;
  set.ForEachPair([&out](DiseaseId, MedicineId,
                         const std::vector<double>& series) {
    out.push_back(series);
  });
  return out;
}

/// Prints a monthly series as one compact row.
inline void PrintSeries(const char* label,
                        const std::vector<double>& series) {
  std::printf("%-28s", label);
  for (double value : series) std::printf(" %7.1f", value);
  std::printf("\n");
}

inline void PrintRule(char fill = '-', int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar(fill);
  std::putchar('\n');
}

inline void PrintHeader(const std::string& title) {
  PrintRule('=');
  std::printf("%s\n", title.c_str());
  PrintRule('=');
}

}  // namespace mic::bench

#endif  // MICTREND_BENCH_BENCH_UTIL_H_
