// Reproduces Figure 9 and the §VIII-B2 forecast experiment: train on the
// first 31 months, forecast the remaining 12, for (i) scripted seasonal
// series, (ii) scripted structural-break series, and (iii) a population
// of disease series (median RMSE on SD-normalized series, as the paper
// reports: ARIMA 0.169 vs proposed 0.187, with ARIMA unstable on
// seasonality and late breaks).

#include <algorithm>
#include <cstdio>

#include "arima/arima.h"
#include "bench/bench_util.h"
#include "ssm/changepoint.h"
#include "ssm/fit.h"
#include "stats/metrics.h"

namespace mic {
namespace {

constexpr int kTrain = 31;
constexpr int kHorizon = 12;

struct ForecastPair {
  std::vector<double> ssm;
  std::vector<double> arima;
  double ssm_rmse = 0.0;
  double arima_rmse = 0.0;
  bool ok = false;
};

// Fits both models on the first kTrain points of a normalized series
// and forecasts kHorizon ahead.
ForecastPair ForecastBoth(const std::vector<double>& series) {
  ForecastPair out;
  if (static_cast<int>(series.size()) < kTrain + kHorizon) return out;
  const std::vector<double> train(series.begin(),
                                  series.begin() + kTrain);
  const std::vector<double> test(series.begin() + kTrain,
                                 series.begin() + kTrain + kHorizon);

  // Proposed: LL+S+I with the change point searched on the training
  // window (Algorithm 1), then structural forecasting.
  ssm::ChangePointOptions options;
  options.seasonal = true;
  options.fit.optimizer.max_evaluations = 200;
  // A spurious break accepted on the training window extends a slope
  // through the whole forecast horizon; require solid AIC evidence
  // before forecasting with an intervention.
  options.aic_margin = 4.0;
  // A break needs a few post-break months before its slope is worth
  // extrapolating over a 12-month horizon.
  options.min_tail_observations = 4;
  ssm::ChangePointDetector detector(train, options);
  auto detected = detector.DetectExact();
  if (!detected.ok()) return out;
  auto ssm_forecast =
      ssm::ForecastStructural(detected->best_model, train, kHorizon);
  if (!ssm_forecast.ok()) return out;

  auto arima_model = arima::SelectArima(train);
  if (!arima_model.ok()) return out;
  auto arima_forecast = arima::ForecastArima(*arima_model, train, kHorizon);
  if (!arima_forecast.ok()) return out;

  out.ssm = ssm_forecast->mean;
  out.arima = *arima_forecast;
  // Prescription counts cannot be negative; clamp both forecasts.
  for (double& value : out.ssm) value = std::max(value, 0.0);
  for (double& value : out.arima) value = std::max(value, 0.0);
  out.ssm_rmse = *stats::Rmse(out.ssm, test);
  out.arima_rmse = *stats::Rmse(out.arima, test);
  out.ok = true;
  return out;
}

void RunCase(const char* title, const std::vector<double>& raw) {
  std::printf("\n");
  bench::PrintRule('-');
  std::printf("%s\n", title);
  bench::PrintRule('-');
  std::vector<double> series = raw;
  bench::NormalizeBySd(series);
  const ForecastPair result = ForecastBoth(series);
  if (!result.ok) {
    std::printf("  (model fitting failed on this series)\n");
    return;
  }
  bench::PrintSeries("actual (train|test)", series);
  std::vector<double> padded_ssm(kTrain, 0.0);
  padded_ssm.insert(padded_ssm.end(), result.ssm.begin(), result.ssm.end());
  std::vector<double> padded_arima(kTrain, 0.0);
  padded_arima.insert(padded_arima.end(), result.arima.begin(),
                      result.arima.end());
  bench::PrintSeries("proposed forecast", padded_ssm);
  bench::PrintSeries("ARIMA forecast", padded_arima);
  std::printf("  RMSE (normalized): proposed %.3f  ARIMA %.3f%s\n",
              result.ssm_rmse, result.arima_rmse,
              result.ssm_rmse < result.arima_rmse
                  ? "  [proposed more stable]"
                  : "");
}

}  // namespace

int Run() {
  const bench::BenchScale scale = bench::BenchScale::FromEnv();
  bench::BenchReport report("fig9_forecast", scale);
  bench::PrintHeader(
      "Figure 9: forecasting (train 31 months, forecast 12)");
  std::printf(
      "paper: median normalized RMSE over disease series 0.169 (ARIMA) vs\n"
      "0.187 (proposed) — comparable overall — but ARIMA fails on\n"
      "seasonal patterns and is unstable when a structural break falls\n"
      "near the end of training, where the proposed model stays accurate.\n");

  bench::BenchData data = bench::BuildBenchData(scale);
  const synth::World& world = data.world;

  // Scripted seasonal cases.
  RunCase("seasonal: influenza",
          data.series.Disease(*world.FindDisease(synth::names::kInfluenza)));
  RunCase("seasonal: hay fever",
          data.series.Disease(*world.FindDisease(synth::names::kHayFever)));
  // Structural-break cases (all break before t = 31, the paper's setup
  // of breaks near/inside the training window).
  RunCase("break: new osteoporosis medicine (release t=5)",
          data.series.Medicine(
              *world.FindMedicine(synth::names::kNewOsteoporosisDrug)));
  RunCase("break: anti-platelet original (generic entry t=14)",
          data.series.Medicine(
              *world.FindMedicine(synth::names::kAntiPlateletOriginal)));
  RunCase("break near training end: dementia drug for Lewy (t=18)",
          data.series.Prescription(
              *world.FindDisease(synth::names::kLewyBodyDementia),
              *world.FindMedicine(synth::names::kDementiaDrug)));

  // Population medians over disease series.
  const auto diseases = bench::SampleSeries(
      bench::CollectDiseaseSeries(data.series),
      scale.max_series_per_type, scale.seed ^ 0xF19);
  std::vector<double> ssm_rmse;
  std::vector<double> arima_rmse;
  for (const auto& raw : diseases) {
    std::vector<double> series = raw;
    bench::NormalizeBySd(series);
    const ForecastPair result = ForecastBoth(series);
    if (!result.ok) continue;
    ssm_rmse.push_back(result.ssm_rmse);
    arima_rmse.push_back(result.arima_rmse);
  }
  std::printf("\npopulation of %zu disease series (normalized RMSE):\n",
              ssm_rmse.size());
  if (!ssm_rmse.empty()) {
    std::printf("  proposed: median %.3f  mean %.3f (SD %.3f)\n",
                *stats::Median(ssm_rmse), stats::Mean(ssm_rmse),
                stats::StdDev(ssm_rmse));
    std::printf("  ARIMA:    median %.3f  mean %.3f (SD %.3f)\n",
                *stats::Median(arima_rmse), stats::Mean(arima_rmse),
                stats::StdDev(arima_rmse));
    std::printf("  (paper: medians comparable, ARIMA less stable -> "
                "larger spread)\n");
  }
  report.WriteJsonFromEnv();
  return 0;
}

}  // namespace mic

int main() { return mic::Run(); }
