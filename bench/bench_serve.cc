// Load bench for `mictrend serve`: requests/sec and tail latency of the
// snapshot-swapped query daemon, with one live monthly ingest landing
// mid-run. The headline numbers:
//
//   - rps_rate / p50 / p99 / max client-observed latency over a mixed
//     query stream (health + top_changes + report_csv) from N
//     concurrent connections;
//   - swap_drain_seconds: how long Publish() waited for in-flight
//     readers of the superseded snapshot (the RCU swap stall);
//   - identical: the served report CSV byte-compared against the
//     offline `mictrend pipeline` twin both before and after the
//     ingest (1 = both matched), using the same cache chaining the
//     daemon performs (cold seed at version 1, warm rebuild at 2).
//
// Extra scale knobs next to the bench_util ones:
//   MICTREND_BENCH_SERVE_CLIENTS    concurrent client connections (4)
//   MICTREND_BENCH_SERVE_REQUESTS   requests per client (50)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench/bench_util.h"
#include "cache/cache_store.h"
#include "common/exec_context.h"
#include "mic/io.h"
#include "obs/metrics.h"
#include "serve/server.h"
#include "serve/service.h"
#include "serve/wire.h"
#include "store/claim_store.h"
#include "synth/generator.h"
#include "synth/scenario.h"
#include "trend/pipeline.h"
#include "trend/report_io.h"

namespace mic {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

constexpr int kSeedMonths = 12;   // store contents at daemon start
constexpr int kTotalMonths = 13;  // month 12 arrives via live ingest

trend::PipelineConfig MakeConfig(const std::string& store_dir,
                                 const std::string& cache_dir) {
  trend::PipelineConfig config;
  config.reproducer.filter_options.min_disease_count = 5;
  config.reproducer.filter_options.min_medicine_count = 5;
  config.reproducer.min_series_total = 10.0;
  config.analyzer.detector.seasonal = false;  // 12-month seed window
  config.analyzer.detector.fit.optimizer.max_evaluations = 160;
  config.store.directory = store_dir;
  config.cache.mode = cache::CacheMode::kReadWrite;
  config.cache.directory = cache_dir;
  return config;
}

MicCorpus ParseCorpus(const std::string& corpus_csv,
                      const std::string& hospitals_csv) {
  auto corpus = ReadCorpusCsvFile(corpus_csv);
  MIC_CHECK(corpus.ok()) << corpus.status();
  std::ifstream in(hospitals_csv);
  MIC_CHECK(in.good()) << "cannot open " << hospitals_csv;
  auto joined = ReadHospitalsCsv(in, corpus->catalog());
  MIC_CHECK(joined.ok()) << joined;
  return std::move(*corpus);
}

// The offline twin of one daemon rebuild: RunPipeline over the parsed
// corpus with the given cache (the same cold-then-warm chaining the
// daemon's snapshot builds perform), serialized as report_io CSV.
std::string OfflineReportCsv(const MicCorpus& corpus,
                             const trend::PipelineConfig& config,
                             cache::CacheStore* cache) {
  ExecContext context;
  context.cache = cache;
  auto result = trend::RunPipeline(corpus, config, context);
  MIC_CHECK(result.ok()) << result.status();
  std::ostringstream csv;
  trend::TrendAnalyzer analyzer(config.analyzer);
  auto written = trend::WriteReportCsv(result->report, analyzer,
                                       corpus.catalog(), csv);
  MIC_CHECK(written.ok()) << written;
  return csv.str();
}

serve::JsonValue MakeRequest(const char* op) {
  serve::JsonValue request = serve::JsonValue::Object();
  request.Set("op", serve::JsonValue::String(op));
  return request;
}

// The per-client query mix, deterministic in the request index: mostly
// cheap health probes, some ranked-change queries, a periodic full
// report download.
serve::JsonValue MixedRequest(int index) {
  if (index % 10 == 0) return MakeRequest("report_csv");
  if (index % 3 == 0) {
    serve::JsonValue request = MakeRequest("top_changes");
    request.Set("k", serve::JsonValue::Int(5));
    return request;
  }
  return MakeRequest("health");
}

struct ClientResult {
  std::vector<double> latencies_seconds;
  int errors = 0;
};

void RunClient(int port, int requests, int client_index,
               ClientResult* result) {
  auto fd = serve::ConnectTcp("127.0.0.1", port);
  if (!fd.ok()) {
    result->errors = requests;
    return;
  }
  serve::WireLimits limits;
  limits.timeout_ms = 60000;
  result->latencies_seconds.reserve(requests);
  for (int i = 0; i < requests; ++i) {
    const serve::JsonValue request = MixedRequest(i + client_index);
    const auto start = Clock::now();
    auto response = serve::RoundTrip(*fd, request, limits);
    result->latencies_seconds.push_back(
        std::chrono::duration<double>(Clock::now() - start).count());
    if (!response.ok() || !response->GetBool("ok", false)) {
      ++result->errors;
    }
  }
  close(*fd);
}

double Percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t index = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(sorted.size())));
  return sorted[index];
}

}  // namespace

int Main() {
  const bench::BenchScale scale = bench::BenchScale::FromEnv();
  const int clients = static_cast<int>(
      bench::EnvInt("MICTREND_BENCH_SERVE_CLIENTS", 4));
  const int requests_per_client = static_cast<int>(
      bench::EnvInt("MICTREND_BENCH_SERVE_REQUESTS", 50));
  bench::BenchReport report("serve", scale);

  bench::PrintHeader(StrFormat(
      "mictrend serve load bench: %d clients x %d requests, "
      "one live ingest mid-run",
      clients, requests_per_client));

  // ---- the world: a 13-month store seed + the arriving month --------
  const fs::path work =
      fs::temp_directory_path() / "mictrend_bench_serve";
  std::error_code ec;
  fs::remove_all(work, ec);
  fs::create_directories(work);

  synth::PaperWorldOptions world_options;
  world_options.num_months = kTotalMonths;
  world_options.seed = scale.seed;
  world_options.num_patients = scale.patients;
  world_options.num_background_diseases = scale.background_diseases;
  auto world = synth::MakePaperWorld(world_options);
  MIC_CHECK(world.ok()) << world.status();
  synth::ClaimGenerator generator(&*world);
  auto generated = generator.Generate();
  MIC_CHECK(generated.ok()) << generated.status();

  const std::string hospitals_csv = (work / "hospitals.csv").string();
  const std::string corpus12_csv = (work / "corpus12.csv").string();
  const std::string corpus13_csv = (work / "corpus13.csv").string();
  {
    std::ofstream out(hospitals_csv);
    MIC_CHECK(
        WriteHospitalsCsv(generated->corpus.catalog(), out).ok());
  }
  MIC_CHECK(WriteCorpusCsvFile(generated->corpus, corpus13_csv).ok());
  {
    MicCorpus prefix(generated->corpus.shared_catalog());
    for (int t = 0; t < kSeedMonths; ++t) {
      MIC_CHECK(prefix.AddMonth(generated->corpus.month(t)).ok());
    }
    MIC_CHECK(WriteCorpusCsvFile(prefix, corpus12_csv).ok());
  }

  // Seed the store from the parsed CSV (deployment entity order), like
  // `mictrend import` would.
  const std::string store_dir = (work / "store").string();
  const MicCorpus parsed12 = ParseCorpus(corpus12_csv, hospitals_csv);
  {
    auto store = store::ClaimStore::Open(store_dir);
    MIC_CHECK(store.ok()) << store.status();
    auto imported = store::ImportCorpus(parsed12, *store);
    MIC_CHECK(imported.ok()) << imported.status();
  }

  // ---- offline references (the byte-identity gate) ------------------
  const trend::PipelineConfig offline_config =
      MakeConfig(store_dir, (work / "cache_offline").string());
  cache::CacheStore offline_cache(offline_config.cache.directory,
                                  cache::CacheMode::kReadWrite);
  MIC_CHECK(offline_cache.Open().ok());
  const auto offline_start = Clock::now();
  const std::string offline12 =
      OfflineReportCsv(parsed12, offline_config, &offline_cache);
  const std::string offline13 = OfflineReportCsv(
      ParseCorpus(corpus13_csv, hospitals_csv), offline_config,
      &offline_cache);
  const double offline_seconds =
      std::chrono::duration<double>(Clock::now() - offline_start).count();

  // ---- the daemon ---------------------------------------------------
  obs::MetricsRegistry metrics;
  const trend::PipelineConfig config =
      MakeConfig(store_dir, (work / "cache_serve").string());
  cache::CacheStore cache(config.cache.directory,
                          cache::CacheMode::kReadWrite, &metrics);
  MIC_CHECK(cache.Open().ok());
  ExecContext context;
  context.metrics = &metrics;
  context.cache = &cache;

  const auto boot_start = Clock::now();
  auto service = serve::TrendService::Create(config, context);
  MIC_CHECK(service.ok()) << service.status();
  const double boot_seconds =
      std::chrono::duration<double>(Clock::now() - boot_start).count();

  serve::ServerOptions options;
  // Persistent connections each occupy a worker; size the pool so no
  // client starves.
  options.num_workers = clients + 1;
  options.limits.poll_interval_ms = 20;
  auto server = serve::TcpServer::Start(service->get(), options);
  MIC_CHECK(server.ok()) << server.status();
  const int port = (*server)->port();
  std::thread serving([&server] { (void)(*server)->Serve(); });

  serve::WireLimits limits;
  limits.timeout_ms = 60000;

  // Pre-ingest identity: version 1 serves the 12-month offline twin.
  auto control = serve::ConnectTcp("127.0.0.1", port);
  MIC_CHECK(control.ok()) << control.status();
  auto pre = serve::RoundTrip(*control, MakeRequest("report_csv"), limits);
  MIC_CHECK(pre.ok() && pre->GetBool("ok", false));
  const bool identical_pre =
      pre->Find("data")->GetString("csv") == offline12;
  const std::int64_t months_pre = pre->GetInt("months", -1);

  // ---- the load phase ----------------------------------------------
  std::vector<ClientResult> results(clients);
  std::vector<std::thread> threads;
  const auto load_start = Clock::now();
  for (int i = 0; i < clients; ++i) {
    threads.emplace_back(RunClient, port, requests_per_client, i,
                         &results[i]);
  }

  // Month 12 arrives while the clients are hammering: the live ingest
  // warm-starts the rebuild and swaps the snapshot under them.
  serve::JsonValue ingest = MakeRequest("ingest");
  ingest.Set("corpus", serve::JsonValue::String(corpus13_csv));
  ingest.Set("hospitals", serve::JsonValue::String(hospitals_csv));
  const auto ingest_start = Clock::now();
  auto swapped = serve::RoundTrip(*control, ingest, limits);
  const double ingest_seconds =
      std::chrono::duration<double>(Clock::now() - ingest_start).count();
  MIC_CHECK(swapped.ok()) << swapped.status();
  MIC_CHECK(swapped->GetBool("ok", false)) << swapped->Serialize();
  const double swap_drain_seconds =
      swapped->Find("data")->GetDouble("drain_seconds", -1.0);
  const std::int64_t ingest_appended =
      swapped->Find("data")->GetInt("appended", -1);

  for (std::thread& thread : threads) thread.join();
  const double load_seconds =
      std::chrono::duration<double>(Clock::now() - load_start).count();

  // Post-ingest identity: version 2 serves the 13-month offline twin.
  auto post = serve::RoundTrip(*control, MakeRequest("report_csv"), limits);
  MIC_CHECK(post.ok() && post->GetBool("ok", false));
  const bool identical_post =
      post->Find("data")->GetString("csv") == offline13;
  const std::int64_t months_post = post->GetInt("months", -1);

  // Windowed telemetry must have seen the load: the stats op reports a
  // non-zero serve.health window and a positive request rate.
  auto stats = serve::RoundTrip(*control, MakeRequest("stats"), limits);
  MIC_CHECK(stats.ok() && stats->GetBool("ok", false))
      << (stats.ok() ? stats->Serialize() : stats.status().ToString());
  const serve::JsonValue* windows =
      stats->Find("data") ? stats->Find("data")->Find("windows") : nullptr;
  MIC_CHECK(windows != nullptr) << stats->Serialize();
  const serve::JsonValue* minute = windows->Find("60s");
  MIC_CHECK(minute != nullptr && minute->Find("serve.health") != nullptr)
      << stats->Serialize();
  const double stats_health_count =
      minute->Find("serve.health")->GetDouble("count", 0.0);
  const double stats_health_rps =
      minute->Find("serve.health")->GetDouble("rps", 0.0);
  MIC_CHECK(stats_health_count > 0.0 && stats_health_rps > 0.0)
      << stats->Serialize();

  auto stopping = serve::RoundTrip(*control, MakeRequest("shutdown"), limits);
  MIC_CHECK(stopping.ok() && stopping->GetBool("ok", false));
  close(*control);
  serving.join();

  // ---- aggregate ----------------------------------------------------
  std::vector<double> latencies;
  int errors = 0;
  for (const ClientResult& result : results) {
    latencies.insert(latencies.end(), result.latencies_seconds.begin(),
                     result.latencies_seconds.end());
    errors += result.errors;
  }
  std::sort(latencies.begin(), latencies.end());
  const double total_requests = static_cast<double>(latencies.size());
  const double p50 = Percentile(latencies, 0.50);
  const double p99 = Percentile(latencies, 0.99);
  const double max_latency = latencies.empty() ? 0.0 : latencies.back();
  const double rps =
      load_seconds > 0.0 ? total_requests / load_seconds : 0.0;
  const bool identical = identical_pre && identical_post;

  bench::PrintRule();
  std::printf("daemon boot (12-month cold pipeline)  %8.3f s\n",
              boot_seconds);
  std::printf("offline reference runs                %8.3f s\n",
              offline_seconds);
  std::printf("load phase: %4.0f requests             %8.3f s  (%.0f rps)\n",
              total_requests, load_seconds, rps);
  std::printf("latency p50 / p99 / max       %8.2f / %.2f / %.2f ms\n",
              p50 * 1e3, p99 * 1e3, max_latency * 1e3);
  std::printf("live ingest (warm rebuild + swap)     %8.3f s\n",
              ingest_seconds);
  std::printf("snapshot swap drain                   %8.2e s\n",
              swap_drain_seconds);
  std::printf("months %lld -> %lld (appended %lld), errors %d\n",
              static_cast<long long>(months_pre),
              static_cast<long long>(months_post),
              static_cast<long long>(ingest_appended), errors);
  std::printf("byte-identity vs offline pipeline: pre %s, post %s\n",
              identical_pre ? "OK" : "MISMATCH",
              identical_post ? "OK" : "MISMATCH");
  std::printf("stats op: serve.health window count %.0f (%.0f rps)\n",
              stats_health_count, stats_health_rps);
  bench::PrintMetricsJson("serve", metrics);

  report.Set("serve", "clients", clients);
  report.Set("serve", "requests", total_requests);
  report.Set("serve", "errors", errors);
  report.Set("serve", "identical", identical ? 1.0 : 0.0);
  report.Set("serve", "months_pre", static_cast<double>(months_pre));
  report.Set("serve", "months_post", static_cast<double>(months_post));
  report.Set("serve", "ingest_appended",
             static_cast<double>(ingest_appended));
  report.Set("serve", "boot_seconds", boot_seconds);
  report.Set("serve", "p50_seconds", p50);
  report.Set("serve", "p99_seconds", p99);
  report.Set("serve", "max_seconds", max_latency);
  report.Set("serve", "rps_rate", rps);
  report.Set("serve", "ingest_seconds", ingest_seconds);
  report.Set("serve", "swap_drain_seconds", swap_drain_seconds);
  report.Set("serve", "stats_health_rps_rate", stats_health_rps);
  report.WriteJsonFromEnv();

  if (!identical || errors != 0) {
    std::fprintf(stderr, "bench_serve FAILED: identical=%d errors=%d\n",
                 identical ? 1 : 0, errors);
    return 1;
  }
  return 0;
}

}  // namespace mic

int main() { return mic::Main(); }
