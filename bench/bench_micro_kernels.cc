// google-benchmark microbenchmarks of the performance-critical kernels:
// the Kalman filter (the inner loop of every fit), the structural model
// fit, one EM pass of the medication model, ARIMA selection, and claim
// generation throughput.

#include <benchmark/benchmark.h>

#include "arima/arima.h"
#include "common/rng.h"
#include "medmodel/medication_model.h"
#include "ssm/changepoint.h"
#include "ssm/fit.h"
#include "ssm/kalman.h"
#include "synth/generator.h"
#include "synth/scenario.h"

namespace mic {
namespace {

std::vector<double> MakeSeries(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (int t = 0; t < n; ++t) {
    x[t] = 10.0 + 3.0 * std::sin(2.0 * 3.14159265 * t / 12.0) +
           rng.NextGaussian(0.0, 0.5) + (t >= 20 ? 0.4 * (t - 19) : 0.0);
  }
  return x;
}

void BM_KalmanFilterLocalLevel(benchmark::State& state) {
  const auto series = MakeSeries(static_cast<int>(state.range(0)), 1);
  ssm::StructuralSpec spec;
  auto model = ssm::BuildStructuralModel(spec, {1.0, 0.1, 0.0});
  for (auto _ : state) {
    auto result = ssm::RunFilter(*model, series);
    benchmark::DoNotOptimize(result->log_likelihood);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KalmanFilterLocalLevel)->Arg(43)->Arg(120)->Arg(480);

void BM_KalmanFilterSeasonal(benchmark::State& state) {
  const auto series = MakeSeries(static_cast<int>(state.range(0)), 2);
  ssm::StructuralSpec spec;
  spec.seasonal = true;
  auto model = ssm::BuildStructuralModel(spec, {1.0, 0.1, 0.01});
  for (auto _ : state) {
    auto result = ssm::RunFilter(*model, series);
    benchmark::DoNotOptimize(result->log_likelihood);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KalmanFilterSeasonal)->Arg(43)->Arg(120);

void BM_KalmanFilterWithRegression(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto series = MakeSeries(n, 3);
  const auto regressor = ssm::SlopeShiftRegressor(n / 2, n);
  ssm::StructuralSpec spec;
  spec.seasonal = true;
  auto model = ssm::BuildStructuralModel(spec, {1.0, 0.1, 0.01});
  for (auto _ : state) {
    auto result = ssm::RunFilterWithRegression(*model, series, regressor);
    benchmark::DoNotOptimize(result->profiled_log_likelihood);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KalmanFilterWithRegression)->Arg(43)->Arg(120);

void BM_KalmanFilterSteadyStateOff(benchmark::State& state) {
  // The same seasonal filter with the steady-state shortcut disabled:
  // the gap to BM_KalmanFilterSeasonal is the shortcut's payoff.
  const auto series = MakeSeries(static_cast<int>(state.range(0)), 2);
  ssm::StructuralSpec spec;
  spec.seasonal = true;
  auto model = ssm::BuildStructuralModel(spec, {1.0, 0.1, 0.01});
  ssm::KalmanOptions options;
  options.allow_steady_state = false;
  for (auto _ : state) {
    auto result = ssm::RunFilter(*model, series, options);
    benchmark::DoNotOptimize(result->log_likelihood);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KalmanFilterSteadyStateOff)->Arg(43)->Arg(480);

void BM_KalmanFilterMultiRegressor(benchmark::State& state) {
  const int n = 43;
  const auto series = MakeSeries(n, 3);
  std::vector<std::vector<double>> regressors;
  for (int k = 0; k < state.range(0); ++k) {
    regressors.push_back(ssm::InterventionRegressor(
        {5 + 7 * static_cast<int>(k), ssm::InterventionKind::kSlopeShift},
        n));
  }
  ssm::StructuralSpec spec;
  spec.seasonal = true;
  auto model = ssm::BuildStructuralModel(spec, {1.0, 0.1, 0.01});
  for (auto _ : state) {
    auto result =
        ssm::RunFilterWithRegressors(*model, series, regressors);
    benchmark::DoNotOptimize(result->profiled_log_likelihood);
  }
}
BENCHMARK(BM_KalmanFilterMultiRegressor)->Arg(1)->Arg(3)->Arg(5);

void BM_StructuralFitSeasonal(benchmark::State& state) {
  const auto series = MakeSeries(43, 4);
  ssm::StructuralSpec spec;
  spec.seasonal = true;
  for (auto _ : state) {
    auto fitted = ssm::FitStructuralModel(series, spec);
    benchmark::DoNotOptimize(fitted->aic);
  }
}
BENCHMARK(BM_StructuralFitSeasonal);

void BM_ChangePointExact(benchmark::State& state) {
  const auto series = MakeSeries(43, 5);
  ssm::ChangePointOptions options;
  options.seasonal = true;
  options.fit.optimizer.max_evaluations = 160;
  for (auto _ : state) {
    ssm::ChangePointDetector detector(series, options);
    auto result = detector.DetectExact();
    benchmark::DoNotOptimize(result->best_aic);
  }
}
BENCHMARK(BM_ChangePointExact)->Unit(benchmark::kMillisecond);

void BM_ChangePointApproximate(benchmark::State& state) {
  const auto series = MakeSeries(43, 5);
  ssm::ChangePointOptions options;
  options.seasonal = true;
  options.fit.optimizer.max_evaluations = 160;
  for (auto _ : state) {
    ssm::ChangePointDetector detector(series, options);
    auto result = detector.DetectApproximate();
    benchmark::DoNotOptimize(result->best_aic);
  }
}
BENCHMARK(BM_ChangePointApproximate)->Unit(benchmark::kMillisecond);

void BM_ArimaSelect(benchmark::State& state) {
  const auto series = MakeSeries(43, 6);
  for (auto _ : state) {
    auto fitted = arima::SelectArima(series);
    benchmark::DoNotOptimize(fitted->aic);
  }
}
BENCHMARK(BM_ArimaSelect)->Unit(benchmark::kMillisecond);

void BM_MedicationModelFit(benchmark::State& state) {
  auto world = synth::World::Create(
      synth::MakeTinyWorldConfig(3, 99));
  synth::ClaimGenerator generator(&*world);
  auto data = generator.Generate();
  const MonthlyDataset& month = data->corpus.month(0);
  for (auto _ : state) {
    auto model = medmodel::MedicationModel::Fit(month);
    benchmark::DoNotOptimize((*model)->fit_stats().final_log_likelihood);
  }
  state.SetItemsProcessed(state.iterations() * month.size());
}
BENCHMARK(BM_MedicationModelFit)->Unit(benchmark::kMillisecond);

void BM_ClaimGeneration(benchmark::State& state) {
  auto world = synth::World::Create(synth::MakeTinyWorldConfig(12, 7));
  synth::ClaimGenerator generator(&*world);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto data = generator.Generate(seed++);
    benchmark::DoNotOptimize(data->corpus.TotalRecords());
  }
  state.SetItemsProcessed(state.iterations() * 12);
}
BENCHMARK(BM_ClaimGeneration)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mic

BENCHMARK_MAIN();
