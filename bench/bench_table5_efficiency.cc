// Reproduces Table V: wall-clock time to run change point detection over
// all series, exact (Algorithm 1) vs approximate (Algorithm 2), and the
// computation rate relative to a single no-intervention fit of the same
// model. The paper's theoretical rates are T = 43 for exact and about
// log2(43) ~ 5.4-7.4 for approximate; the measured rates should land
// near those regardless of absolute hardware speed.

// A second section benchmarks the mic::runtime parallel dispatch of the
// same per-series sweep: TrendAnalyzer::AnalyzeAll at 1 thread vs N
// threads must produce bit-identical reports, with the speedup bounded
// only by the hardware.

#include <chrono>
#include <cstdio>
#include <filesystem>

#include "bench/bench_util.h"
#include "cache/cache_store.h"
#include "common/exec_context.h"
#include "mic/io.h"
#include "obs/metrics.h"
#include "ssm/changepoint.h"
#include "ssm/fit.h"
#include "store/claim_store.h"
#include "trend/drilldown.h"
#include "trend/pipeline.h"
#include "trend/trend_analyzer.h"

namespace mic {
namespace {

using Clock = std::chrono::steady_clock;

ssm::FitOptions MakeFitOptions() {
  ssm::FitOptions options;
  options.optimizer.max_evaluations = 160;
  return options;
}

struct TimingRow {
  double base_seconds = 0.0;
  double exact_seconds = 0.0;
  double approximate_seconds = 0.0;
  int exact_fits = 0;
  int approximate_fits = 0;
  std::size_t series_count = 0;
};

TimingRow Measure(const std::vector<std::vector<double>>& all) {
  TimingRow row;
  for (const std::vector<double>& raw : all) {
    std::vector<double> series = raw;
    bench::NormalizeBySd(series);

    // Baseline: one fit of the model without intervention variables.
    {
      const auto start = Clock::now();
      ssm::StructuralSpec spec;
      spec.seasonal = true;
      auto fitted = ssm::FitStructuralModel(series, spec, MakeFitOptions());
      row.base_seconds +=
          std::chrono::duration<double>(Clock::now() - start).count();
      if (!fitted.ok()) continue;
    }

    ssm::ChangePointOptions options;
    options.seasonal = true;
    options.fit = MakeFitOptions();
    {
      ssm::ChangePointDetector detector(series, options);
      const auto start = Clock::now();
      auto result = detector.DetectExact();
      row.exact_seconds +=
          std::chrono::duration<double>(Clock::now() - start).count();
      if (result.ok()) row.exact_fits += result->fits_performed;
    }
    {
      ssm::ChangePointDetector detector(series, options);
      const auto start = Clock::now();
      auto result = detector.DetectApproximate();
      row.approximate_seconds +=
          std::chrono::duration<double>(Clock::now() - start).count();
      if (result.ok()) row.approximate_fits += result->fits_performed;
    }
    ++row.series_count;
  }
  return row;
}

// The row's numbers under `section` in the machine-readable report.
// Fit counts and the series count are deterministic for a fixed config;
// the seconds and rates are wall-clock.
void RecordRow(bench::BenchReport& report, const std::string& section,
               const TimingRow& row) {
  report.Set(section, "series_count",
             static_cast<double>(row.series_count));
  report.Set(section, "exact_fits", static_cast<double>(row.exact_fits));
  report.Set(section, "approx_fits",
             static_cast<double>(row.approximate_fits));
  report.Set(section, "base_seconds", row.base_seconds);
  report.Set(section, "exact_seconds", row.exact_seconds);
  report.Set(section, "approx_seconds", row.approximate_seconds);
  if (row.base_seconds > 0.0) {
    report.Set(section, "exact_rate", row.exact_seconds / row.base_seconds);
    report.Set(section, "approx_rate",
               row.approximate_seconds / row.base_seconds);
  }
}

void PrintRow(const char* type, const TimingRow& row) {
  const double exact_rate =
      row.base_seconds > 0.0 ? row.exact_seconds / row.base_seconds : 0.0;
  const double approximate_rate =
      row.base_seconds > 0.0 ? row.approximate_seconds / row.base_seconds
                             : 0.0;
  std::printf("\n%s time series (n = %zu):\n", type, row.series_count);
  std::printf("  %-22s %9.3f s\n", "no-intervention fit", row.base_seconds);
  std::printf("  %-22s %9.3f s  (rate %6.2fx, %5.1f fits/series)\n",
              "Exact Solution", row.exact_seconds, exact_rate,
              row.series_count == 0
                  ? 0.0
                  : static_cast<double>(row.exact_fits) /
                        static_cast<double>(row.series_count));
  std::printf("  %-22s %9.3f s  (rate %6.2fx, %5.1f fits/series)\n",
              "Approximate Solution", row.approximate_seconds,
              approximate_rate,
              row.series_count == 0
                  ? 0.0
                  : static_cast<double>(row.approximate_fits) /
                        static_cast<double>(row.series_count));
}

bool AnalysesBitIdentical(const std::vector<trend::SeriesAnalysis>& a,
                          const std::vector<trend::SeriesAnalysis>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].kind != b[i].kind || !(a[i].disease == b[i].disease) ||
        !(a[i].medicine == b[i].medicine) ||
        a[i].has_change != b[i].has_change ||
        a[i].change_point != b[i].change_point ||
        a[i].lambda != b[i].lambda || a[i].aic != b[i].aic ||
        a[i].aic_without_intervention != b[i].aic_without_intervention ||
        a[i].scale != b[i].scale ||
        a[i].fits_performed != b[i].fits_performed) {
      return false;
    }
  }
  return true;
}

bool ReportsBitIdentical(const trend::TrendReport& a,
                         const trend::TrendReport& b) {
  return AnalysesBitIdentical(a.diseases, b.diseases) &&
         AnalysesBitIdentical(a.medicines, b.medicines) &&
         AnalysesBitIdentical(a.prescriptions, b.prescriptions);
}

// The parallel candidate-sweep stage: the full AnalyzeAll run
// (pipeline defaults, Algorithm 2) at every MICTREND_BENCH_THREADS
// width. The 1-thread run is the reference; every wider run must
// reproduce its report bit for bit, and the per-width wall clocks form
// the scaling curve (t<w>_seconds / t<w>_speedup in the JSON report).
void MeasureParallelStage(const bench::BenchData& data,
                          const std::vector<int>& thread_curve,
                          bench::BenchReport& report) {
  trend::TrendAnalyzerOptions options;
  options.detector.fit = MakeFitOptions();

  const std::size_t series_count = data.series.num_diseases() +
                                   data.series.num_medicines() +
                                   data.series.num_pairs();
  std::printf("\nParallel candidate sweep (mic::runtime, %zu series, "
              "Algorithm 2, %d hardware threads):\n", series_count,
              runtime::ThreadPool::HardwareConcurrency());

  trend::TrendAnalyzer analyzer(options);

  auto timed_run = [&](int width, double* seconds) {
    runtime::ThreadPool pool(width);
    ExecContext context;
    context.pool = &pool;
    const auto start = Clock::now();
    auto result = analyzer.AnalyzeAll(context, data.series);
    *seconds = std::chrono::duration<double>(Clock::now() - start).count();
    MIC_CHECK(result.ok()) << result.status();
    if (width == thread_curve.back()) {
      bench::PrintRuntimeStatsJson("table5_parallel_analysis",
                                   pool.stats());
    }
    return std::move(result).value();
  };

  double serial_seconds = 0.0;
  const trend::TrendReport serial_report = timed_run(1, &serial_seconds);
  std::printf("  %-22s %9.3f s\n", "1 thread", serial_seconds);

  bool all_identical = true;
  double last_seconds = serial_seconds;
  double last_speedup = 1.0;
  int last_width = 1;
  for (int width : thread_curve) {
    double seconds = serial_seconds;
    bool identical = true;
    if (width == 1) {
      // The reference run already measured this width.
    } else {
      const trend::TrendReport wide_report = timed_run(width, &seconds);
      identical = ReportsBitIdentical(serial_report, wide_report);
    }
    const double speedup = seconds > 0.0 ? serial_seconds / seconds : 0.0;
    all_identical = all_identical && identical;
    last_seconds = seconds;
    last_speedup = speedup;
    last_width = width;
    char label[64];
    std::snprintf(label, sizeof(label), "%d threads", width);
    std::printf("  %-22s %9.3f s  (speedup %5.2fx%s)\n", label, seconds,
                speedup, identical ? "" : "; NOT bit-identical");
    MIC_CHECK(identical)
        << "parallel AnalyzeAll at " << width
        << " threads diverged from the single-thread report";
    char prefix[32];
    std::snprintf(prefix, sizeof(prefix), "t%d", width);
    report.Set("parallel", std::string(prefix) + "_seconds", seconds);
    report.Set("parallel", std::string(prefix) + "_speedup", speedup);
  }
  std::printf("  reports bit-identical: %s\n",
              all_identical ? "yes" : "NO");
  report.Set("parallel", "series_count",
             static_cast<double>(series_count));
  report.Set("parallel", "threads", static_cast<double>(last_width));
  report.Set("parallel", "curve_points",
             static_cast<double>(thread_curve.size()));
  report.Set("parallel", "identical", all_identical ? 1.0 : 0.0);
  report.Set("parallel", "serial_seconds", serial_seconds);
  // Headline keys keep their historical meaning: the widest run.
  report.Set("parallel", "parallel_seconds", last_seconds);
  report.Set("parallel", "speedup", last_speedup);
}

// The mic::cache incremental-update story, end to end: a cold seeding
// run (cache=write) followed by a warm rerun (cache=rw) of the same
// corpus. The warm pass must reproduce the cold report bit for bit
// while skipping every EM month and every series fit, which is the
// monthly-update workflow the cache layer exists for.
void MeasureIncremental(const bench::BenchData& data,
                        bench::BenchReport& report) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "mictrend_bench_table5_cache";
  std::error_code ec;
  fs::remove_all(dir, ec);

  trend::PipelineConfig config;
  config.reproducer.filter_options.min_disease_count = 5;
  config.reproducer.filter_options.min_medicine_count = 5;
  config.analyzer.detector.fit = MakeFitOptions();
  config.cache.directory = dir.string();

  runtime::ThreadPool single(1);
  auto timed_run = [&](cache::CacheMode mode, obs::MetricsRegistry* metrics,
                       double* seconds) {
    config.cache.mode = mode;
    ExecContext context;
    context.pool = &single;
    context.metrics = metrics;
    const auto start = Clock::now();
    auto result = trend::RunPipeline(data.generated.corpus, config, context);
    *seconds = std::chrono::duration<double>(Clock::now() - start).count();
    MIC_CHECK(result.ok()) << result.status();
    return std::move(result).value();
  };

  std::printf("\nIncremental update (mic::cache, cold seed vs warm rerun):\n");
  obs::MetricsRegistry cold_metrics;
  double cold_seconds = 0.0;
  const trend::PipelineResult cold =
      timed_run(cache::CacheMode::kWrite, &cold_metrics, &cold_seconds);
  obs::MetricsRegistry warm_metrics;
  double warm_seconds = 0.0;
  const trend::PipelineResult warm =
      timed_run(cache::CacheMode::kReadWrite, &warm_metrics, &warm_seconds);

  const bool identical = ReportsBitIdentical(cold.report, warm.report);
  const double speedup =
      warm_seconds > 0.0 ? cold_seconds / warm_seconds : 0.0;
  const auto hits = warm_metrics.counter_value("cache.hits");
  const auto misses = warm_metrics.counter_value("cache.misses");
  std::printf("  %-22s %9.3f s\n", "cold (cache=write)", cold_seconds);
  std::printf("  %-22s %9.3f s  (speedup %5.2fx)\n", "warm (cache=rw)",
              warm_seconds, speedup);
  std::printf("  warm cache hits/misses: %llu / %llu\n",
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(misses));
  std::printf("  reports bit-identical:  %s\n", identical ? "yes" : "NO");
  MIC_CHECK(identical)
      << "warm cached rerun diverged from the cold seeding report";
  MIC_CHECK(hits > 0) << "warm rerun hit nothing in the cache";
  bench::PrintMetricsJson("table5_incremental_warm", warm_metrics);
  report.Set("incremental", "cache_hits", static_cast<double>(hits));
  report.Set("incremental", "cache_misses", static_cast<double>(misses));
  report.Set("incremental", "identical", identical ? 1.0 : 0.0);
  report.Set("incremental", "cold_seconds", cold_seconds);
  report.Set("incremental", "warm_seconds", warm_seconds);
  report.Set("incremental", "speedup", speedup);
  fs::remove_all(dir, ec);
}

// The mic::store ingest story: what every run paid before the store
// existed (cold CSV re-parse) vs loading the persisted columnar
// segments (mmap where the platform has it), plus the marginal cost of
// appending one new month — the monthly-update path. The loaded world
// must reproduce the CSV corpus record for record; absolute times are
// wall-clock but the ratio is the reproduced claim (binary columns +
// interned ids remove all per-record text parsing).
void MeasureIngest(const bench::BenchData& data,
                   bench::BenchReport& report) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "mictrend_bench_table5_store";
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
  const std::string csv = (dir / "corpus.csv").string();
  const std::string store_dir = (dir / "store").string();

  const MicCorpus& corpus = data.generated.corpus;
  MIC_CHECK(WriteCorpusCsvFile(corpus, csv).ok());
  {
    auto store = store::ClaimStore::Open(store_dir);
    MIC_CHECK(store.ok()) << store.status();
    auto imported = store::ImportCorpus(corpus, *store);
    MIC_CHECK(imported.ok()) << imported.status();
  }

  std::size_t records = 0;
  for (std::size_t t = 0; t < corpus.num_months(); ++t) {
    records += corpus.month(t).records().size();
  }

  // Both paths are quick at smoke scale; keep the best of a few
  // repeats so scheduler noise cannot fake (or hide) the gap.
  constexpr int kRepeats = 5;
  auto best_of = [&](auto&& run) {
    double best = 0.0;
    for (int i = 0; i < kRepeats; ++i) {
      const auto start = Clock::now();
      run();
      const double seconds =
          std::chrono::duration<double>(Clock::now() - start).count();
      if (i == 0 || seconds < best) best = seconds;
    }
    return best;
  };

  bool round_trip_identical = true;
  const double csv_seconds = best_of([&] {
    auto parsed = ReadCorpusCsvFile(csv);
    MIC_CHECK(parsed.ok()) << parsed.status();
  });
  std::string backend_name;
  const double load_seconds = best_of([&] {
    auto store = store::ClaimStore::Open(store_dir);
    MIC_CHECK(store.ok()) << store.status();
    backend_name = store->backend_name();
    auto loaded = store->OpenWorld();
    MIC_CHECK(loaded.ok()) << loaded.status();
    if (loaded->num_months() != corpus.num_months()) {
      round_trip_identical = false;
      return;
    }
    for (std::size_t t = 0; t < corpus.num_months(); ++t) {
      if (loaded->month(t).records() != corpus.month(t).records()) {
        round_trip_identical = false;
      }
    }
  });

  // Appending the newest month to an already-populated store: the cost
  // the monthly-update workflow actually pays per cycle.
  const std::size_t last = corpus.num_months() - 1;
  double append_seconds = 0.0;
  for (int i = 0; i < kRepeats; ++i) {
    const std::string tail_dir =
        (dir / ("append" + std::to_string(i))).string();
    auto store = store::ClaimStore::Open(tail_dir);
    MIC_CHECK(store.ok()) << store.status();
    for (std::size_t t = 0; t < last; ++t) {
      MIC_CHECK(store->AppendMonth(corpus.month(t), corpus.catalog()).ok());
    }
    const auto start = Clock::now();
    MIC_CHECK(store->AppendMonth(corpus.month(last), corpus.catalog()).ok());
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (i == 0 || seconds < append_seconds) append_seconds = seconds;
  }

  // Deterministic for a fixed config: the columnar encoding has no
  // timestamps or random padding, so the byte total is reproducible.
  double store_bytes = 0.0;
  for (const auto& entry : fs::directory_iterator(store_dir)) {
    store_bytes += static_cast<double>(fs::file_size(entry.path(), ec));
  }

  const double speedup =
      load_seconds > 0.0 ? csv_seconds / load_seconds : 0.0;
  std::printf("\nIngest (mic::store, %zu months, %zu records):\n",
              corpus.num_months(), records);
  std::printf("  %-22s %9.3f ms\n", "cold CSV parse", csv_seconds * 1e3);
  std::printf("  %-22s %9.3f ms  (speedup %5.2fx, %s backend)\n",
              "store load", load_seconds * 1e3, speedup,
              backend_name.c_str());
  std::printf("  %-22s %9.3f ms\n", "one-month append",
              append_seconds * 1e3);
  std::printf("  round trip identical:  %s\n",
              round_trip_identical ? "yes" : "NO");
  MIC_CHECK(round_trip_identical)
      << "store load diverged from the CSV corpus";
  report.Set("ingest", "months",
             static_cast<double>(corpus.num_months()));
  report.Set("ingest", "records", static_cast<double>(records));
  report.Set("ingest", "round_trip_identical",
             round_trip_identical ? 1.0 : 0.0);
  report.Set("ingest", "store_bytes", store_bytes);
  report.Set("ingest", "csv_parse_seconds", csv_seconds);
  report.Set("ingest", "store_load_seconds", load_seconds);
  report.Set("ingest", "append_seconds", append_seconds);
  report.Set("ingest", "speedup", speedup);
  fs::remove_all(dir, ec);
}

bool DrillReportsBitIdentical(const trend::DrillDownReport& a,
                              const trend::DrillDownReport& b) {
  if (a.num_months != b.num_months || a.nodes.size() != b.nodes.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    const trend::DrillNode& x = a.nodes[i];
    const trend::DrillNode& y = b.nodes[i];
    if (x.name != y.name || x.parent != y.parent || x.depth != y.depth ||
        x.children != y.children || x.is_leaf != y.is_leaf ||
        x.series != y.series || x.total != y.total ||
        x.analysis.has_change != y.analysis.has_change ||
        x.analysis.change_point != y.analysis.change_point ||
        x.analysis.lambda != y.analysis.lambda ||
        x.analysis.aic != y.analysis.aic ||
        x.analysis.aic_without_intervention !=
            y.analysis.aic_without_intervention) {
      return false;
    }
  }
  return true;
}

// The drill-down rollup stage (PR 10): build the flat report once,
// then roll it up the medicine hierarchy serially and at the widest
// curve point. The wide run must reproduce the single-thread tree bit
// for bit — the determinism ExplainShift's greedy descent depends on —
// and the node/leaf/change counts are deterministic for a fixed
// config.
void MeasureDrilldown(const bench::BenchData& data,
                      const std::vector<int>& thread_curve,
                      bench::BenchReport& report) {
  trend::TrendAnalyzerOptions options;
  options.detector.fit = MakeFitOptions();
  trend::TrendAnalyzer analyzer(options);
  runtime::ThreadPool single(1);
  ExecContext serial_context;
  serial_context.pool = &single;
  auto flat = analyzer.AnalyzeAll(serial_context, data.series);
  MIC_CHECK(flat.ok()) << flat.status();

  auto timed_build = [&](int width, obs::MetricsRegistry* metrics,
                         double* seconds) {
    runtime::ThreadPool pool(width);
    ExecContext context;
    context.pool = &pool;
    context.metrics = metrics;
    const auto start = Clock::now();
    auto drill =
        trend::BuildDrillDown(context, data.generated.corpus, data.series,
                              *flat, trend::DrillAxis::kMedicine, options);
    *seconds = std::chrono::duration<double>(Clock::now() - start).count();
    MIC_CHECK(drill.ok()) << drill.status();
    return std::move(drill).value();
  };

  obs::MetricsRegistry metrics;
  double serial_seconds = 0.0;
  const trend::DrillDownReport serial_drill =
      timed_build(1, &metrics, &serial_seconds);
  const int widest = thread_curve.back();
  double wide_seconds = serial_seconds;
  bool identical = true;
  if (widest > 1) {
    const trend::DrillDownReport wide_drill =
        timed_build(widest, nullptr, &wide_seconds);
    identical = DrillReportsBitIdentical(serial_drill, wide_drill);
  }
  const double speedup =
      wide_seconds > 0.0 ? serial_seconds / wide_seconds : 0.0;

  std::size_t leaves = 0;
  std::size_t changes = 0;
  for (const trend::DrillNode& node : serial_drill.nodes) {
    if (node.is_leaf) ++leaves;
    if (node.analysis.has_change) ++changes;
  }
  const auto leaf_reuses = metrics.counter_value("trend.rollup.leaf_reuses");

  std::printf("\nDrill-down rollup (medicine axis, %zu nodes):\n",
              serial_drill.nodes.size());
  std::printf("  %-22s %9.3f s\n", "1 thread", serial_seconds);
  char label[64];
  std::snprintf(label, sizeof(label), "%d threads", widest);
  std::printf("  %-22s %9.3f s  (speedup %5.2fx%s)\n", label, wide_seconds,
              speedup, identical ? "" : "; NOT bit-identical");
  std::printf("  leaves / changes / leaf reuses: %zu / %zu / %llu\n",
              leaves, changes, static_cast<unsigned long long>(leaf_reuses));
  MIC_CHECK(identical)
      << "drill-down at " << widest
      << " threads diverged from the single-thread tree";
  report.Set("drilldown", "nodes",
             static_cast<double>(serial_drill.nodes.size()));
  report.Set("drilldown", "leaves", static_cast<double>(leaves));
  report.Set("drilldown", "changes", static_cast<double>(changes));
  report.Set("drilldown", "leaf_reuses", static_cast<double>(leaf_reuses));
  report.Set("drilldown", "identical", identical ? 1.0 : 0.0);
  report.Set("drilldown", "threads", static_cast<double>(widest));
  report.Set("drilldown", "serial_seconds", serial_seconds);
  report.Set("drilldown", "parallel_seconds", wide_seconds);
  report.Set("drilldown", "speedup", speedup);
}

// The mic::obs instrumentation cost on the same sweep. With no registry
// attached (the default) every hook is a null-pointer compare, so the
// disabled run must stay within noise of the uninstrumented baseline;
// the enabled-vs-disabled delta bounds that overhead from above.
void MeasureObsOverhead(const bench::BenchData& data,
                        bench::BenchReport& report) {
  trend::TrendAnalyzerOptions options;
  options.detector.fit = MakeFitOptions();
  trend::TrendAnalyzer analyzer(options);
  runtime::ThreadPool single(1);

  auto time_run = [&](const ExecContext& context) {
    const auto start = Clock::now();
    auto report = analyzer.AnalyzeAll(context, data.series);
    MIC_CHECK(report.ok()) << report.status();
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  std::printf("\nObservability overhead (serial AnalyzeAll sweep):\n");
  time_run(ExecContext{&single, nullptr});  // Warm caches.
  const double disabled_seconds = time_run(ExecContext{&single, nullptr});
  obs::MetricsRegistry registry;
  const double enabled_seconds = time_run(ExecContext{&single, &registry});
  const double overhead =
      disabled_seconds > 0.0
          ? (enabled_seconds - disabled_seconds) / disabled_seconds * 100.0
          : 0.0;
  std::printf("  %-22s %9.3f s\n", "metrics disabled", disabled_seconds);
  std::printf("  %-22s %9.3f s  (%+5.1f%% vs disabled)\n",
              "metrics enabled", enabled_seconds, overhead);
  std::printf("  series fits counted:   %llu\n",
              static_cast<unsigned long long>(
                  registry.counter_value("trend.series_fits")));
  bench::PrintMetricsJson("table5_analyze_all", registry);
  report.Set("obs_overhead", "series_fits",
             static_cast<double>(
                 registry.counter_value("trend.series_fits")));
  report.Set("obs_overhead", "disabled_seconds", disabled_seconds);
  report.Set("obs_overhead", "enabled_seconds", enabled_seconds);
}

}  // namespace

int Run() {
  const bench::BenchScale scale = bench::BenchScale::FromEnv();
  bench::BenchReport report("table5", scale);
  bench::PrintHeader(
      "Table V: change point search cost, exact vs approximate");
  std::printf(
      "paper reports increase rates vs the no-intervention fit: exact\n"
      "27.9x-35.5x (theory T = 43), approximate 6.0x-7.4x (theory\n"
      "log2(43) ~ 5.4). Absolute minutes depend on hardware; the rates\n"
      "and the exact/approximate gap are the reproduced claims.\n");

  bench::BenchData data = bench::BuildBenchData(scale);
  const std::uint64_t sample_seed = scale.seed ^ 0x7ab1e5;
  // Timing runs are expensive (43 fits per series for the exact
  // algorithm); a third of the Table IV cap keeps the binary brisk.
  const std::size_t cap = std::max<std::size_t>(
      8, scale.max_series_per_type / 3);

  const TimingRow disease = Measure(bench::SampleSeries(
      bench::CollectDiseaseSeries(data.series), cap, sample_seed));
  PrintRow("Disease", disease);
  RecordRow(report, "disease", disease);
  const TimingRow medicine = Measure(bench::SampleSeries(
      bench::CollectMedicineSeries(data.series), cap, sample_seed + 1));
  PrintRow("Medicine", medicine);
  RecordRow(report, "medicine", medicine);
  const TimingRow prescription = Measure(bench::SampleSeries(
      bench::CollectPrescriptionSeries(data.series), cap,
      sample_seed + 2));
  PrintRow("Prescription", prescription);
  RecordRow(report, "prescription", prescription);

  // The full scaling curve (default 1,2,4,8): on narrower hardware the
  // speedup degrades gracefully toward 1x but the bit-identical check
  // still bites at every width.
  MeasureParallelStage(data, scale.thread_curve, report);
  MeasureDrilldown(data, scale.thread_curve, report);
  MeasureIncremental(data, report);
  MeasureIngest(data, report);
  MeasureObsOverhead(data, report);
  report.WriteJsonFromEnv();
  return 0;
}

}  // namespace mic

int main() { return mic::Run(); }
