// Reproduces Table V: wall-clock time to run change point detection over
// all series, exact (Algorithm 1) vs approximate (Algorithm 2), and the
// computation rate relative to a single no-intervention fit of the same
// model. The paper's theoretical rates are T = 43 for exact and about
// log2(43) ~ 5.4-7.4 for approximate; the measured rates should land
// near those regardless of absolute hardware speed.

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "ssm/changepoint.h"
#include "ssm/fit.h"

namespace mic {
namespace {

using Clock = std::chrono::steady_clock;

ssm::StructuralFitOptions FitOptions() {
  ssm::StructuralFitOptions options;
  options.optimizer.max_evaluations = 160;
  return options;
}

struct TimingRow {
  double base_seconds = 0.0;
  double exact_seconds = 0.0;
  double approximate_seconds = 0.0;
  int exact_fits = 0;
  int approximate_fits = 0;
  std::size_t series_count = 0;
};

TimingRow Measure(const std::vector<std::vector<double>>& all) {
  TimingRow row;
  for (const std::vector<double>& raw : all) {
    std::vector<double> series = raw;
    bench::NormalizeBySd(series);

    // Baseline: one fit of the model without intervention variables.
    {
      const auto start = Clock::now();
      ssm::StructuralSpec spec;
      spec.seasonal = true;
      auto fitted = ssm::FitStructuralModel(series, spec, FitOptions());
      row.base_seconds +=
          std::chrono::duration<double>(Clock::now() - start).count();
      if (!fitted.ok()) continue;
    }

    ssm::ChangePointOptions options;
    options.seasonal = true;
    options.fit = FitOptions();
    {
      ssm::ChangePointDetector detector(series, options);
      const auto start = Clock::now();
      auto result = detector.DetectExact();
      row.exact_seconds +=
          std::chrono::duration<double>(Clock::now() - start).count();
      if (result.ok()) row.exact_fits += result->fits_performed;
    }
    {
      ssm::ChangePointDetector detector(series, options);
      const auto start = Clock::now();
      auto result = detector.DetectApproximate();
      row.approximate_seconds +=
          std::chrono::duration<double>(Clock::now() - start).count();
      if (result.ok()) row.approximate_fits += result->fits_performed;
    }
    ++row.series_count;
  }
  return row;
}

void PrintRow(const char* type, const TimingRow& row) {
  const double exact_rate =
      row.base_seconds > 0.0 ? row.exact_seconds / row.base_seconds : 0.0;
  const double approximate_rate =
      row.base_seconds > 0.0 ? row.approximate_seconds / row.base_seconds
                             : 0.0;
  std::printf("\n%s time series (n = %zu):\n", type, row.series_count);
  std::printf("  %-22s %9.3f s\n", "no-intervention fit", row.base_seconds);
  std::printf("  %-22s %9.3f s  (rate %6.2fx, %5.1f fits/series)\n",
              "Exact Solution", row.exact_seconds, exact_rate,
              row.series_count == 0
                  ? 0.0
                  : static_cast<double>(row.exact_fits) /
                        static_cast<double>(row.series_count));
  std::printf("  %-22s %9.3f s  (rate %6.2fx, %5.1f fits/series)\n",
              "Approximate Solution", row.approximate_seconds,
              approximate_rate,
              row.series_count == 0
                  ? 0.0
                  : static_cast<double>(row.approximate_fits) /
                        static_cast<double>(row.series_count));
}

}  // namespace

int Run() {
  const bench::BenchScale scale = bench::BenchScale::FromEnv();
  bench::PrintHeader(
      "Table V: change point search cost, exact vs approximate");
  std::printf(
      "paper reports increase rates vs the no-intervention fit: exact\n"
      "27.9x-35.5x (theory T = 43), approximate 6.0x-7.4x (theory\n"
      "log2(43) ~ 5.4). Absolute minutes depend on hardware; the rates\n"
      "and the exact/approximate gap are the reproduced claims.\n");

  bench::BenchData data = bench::BuildBenchData(scale);
  const std::uint64_t sample_seed = scale.seed ^ 0x7ab1e5;
  // Timing runs are expensive (43 fits per series for the exact
  // algorithm); a third of the Table IV cap keeps the binary brisk.
  const std::size_t cap = std::max<std::size_t>(
      8, scale.max_series_per_type / 3);

  PrintRow("Disease",
           Measure(bench::SampleSeries(
               bench::CollectDiseaseSeries(data.series), cap,
               sample_seed)));
  PrintRow("Medicine",
           Measure(bench::SampleSeries(
               bench::CollectMedicineSeries(data.series), cap,
               sample_seed + 1)));
  PrintRow("Prescription",
           Measure(bench::SampleSeries(
               bench::CollectPrescriptionSeries(data.series), cap,
               sample_seed + 2)));
  return 0;
}

}  // namespace mic

int main() { return mic::Run(); }
