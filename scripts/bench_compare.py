#!/usr/bin/env python3
"""Compare two BenchReport JSON files (bench_util.h schema version 1).

Usage:
    bench_compare.py BASELINE.json NEW.json [options]

Exit status 0 when NEW is schema-valid, was produced at the same config
as BASELINE, and every gated value is within threshold; 1 otherwise.

Keys are split by the bench_util.h naming convention:

  * timing keys  -- name ends with `_seconds`, `_rate`, or `_speedup`,
    or equals `speedup`: wall-clock measurements. Gated only when --time-factor is
    given (fail when NEW exceeds BASELINE * FACTOR); always reported.
  * value keys   -- everything else: deterministic for a fixed config
    (series counts, fit counts, bit-identical flags). Gated at
    --rel-tol relative tolerance (default 1e-9, i.e. exact for counts).

Reports may carry a "machine" object ({"nproc": N, "host": "..."}) —
timings recorded on machines with different core counts are not
comparable, so a nproc mismatch downgrades every timing comparison to
report-only (a loud warning, never a failure) even when --time-factor
is given. Value keys still gate — determinism doesn't depend on the
machine. Hostname differences are reported but gate nothing.

Keys present in BASELINE but missing from NEW fail; keys only in NEW
warn (a bench grew a section -- regenerate the baseline when intended).
"""

import argparse
import json
import sys

SCHEMA_VERSION = 1
TIMING_SUFFIXES = ("_seconds", "_rate", "_speedup")
TIMING_NAMES = ("speedup",)
CONFIG_KEYS = ("patients", "background", "max_series", "seed", "threads")


def fail(message):
    print(f"bench_compare: FAIL: {message}")
    return False


def is_timing_key(key):
    return key.endswith(TIMING_SUFFIXES) or key in TIMING_NAMES


def load_report(path):
    """Loads and schema-validates one report; exits on malformed input."""
    try:
        with open(path) as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        sys.exit(f"bench_compare: cannot read {path}: {error}")

    def die(message):
        sys.exit(f"bench_compare: {path}: schema error: {message}")

    if not isinstance(report, dict):
        die("top level is not an object")
    if report.get("schema_version") != SCHEMA_VERSION:
        die(f"schema_version {report.get('schema_version')!r} != "
            f"{SCHEMA_VERSION}")
    if not isinstance(report.get("bench"), str) or not report["bench"]:
        die("missing/empty 'bench' name")
    config = report.get("config")
    if not isinstance(config, dict):
        die("missing 'config' object")
    for key in CONFIG_KEYS:
        if not isinstance(config.get(key), (int, float)):
            die(f"config.{key} missing or not a number")
    machine = report.get("machine")
    if machine is not None:  # absent in pre-PR-9 reports
        if not isinstance(machine, dict):
            die("'machine' is not an object")
        if not isinstance(machine.get("nproc"), int) or machine["nproc"] < 0:
            die("machine.nproc missing or not a non-negative integer")
        if not isinstance(machine.get("host"), str):
            die("machine.host missing or not a string")
    sections = report.get("sections")
    if not isinstance(sections, dict) or not sections:
        die("missing/empty 'sections' object")
    for section, keys in sections.items():
        if not isinstance(keys, dict):
            die(f"section {section!r} is not an object")
        for key, value in keys.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                die(f"{section}/{key} is not a number")
    return report


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", help="committed reference JSON")
    parser.add_argument("new", help="freshly measured JSON")
    parser.add_argument(
        "--rel-tol", type=float, default=1e-9,
        help="relative tolerance for deterministic values (default 1e-9)")
    parser.add_argument(
        "--time-factor", type=float, default=0.0,
        help="fail when a timing value exceeds baseline * FACTOR; "
             "0 (default) reports timing drift without gating")
    args = parser.parse_args()

    baseline = load_report(args.baseline)
    new = load_report(args.new)

    ok = True
    if baseline["bench"] != new["bench"]:
        ok = fail(f"bench name mismatch: baseline {baseline['bench']!r} "
                  f"vs new {new['bench']!r}")
    for key in CONFIG_KEYS:
        if baseline["config"][key] != new["config"][key]:
            ok = fail(f"config.{key} mismatch: baseline "
                      f"{baseline['config'][key]} vs new "
                      f"{new['config'][key]} (values are only comparable "
                      f"at identical config)")

    # Machine provenance: timings from machines with different core
    # counts are not comparable — refuse to gate them, but keep
    # reporting the drift and keep gating deterministic values.
    gate_timings = args.time_factor > 0.0
    old_machine = baseline.get("machine") or {}
    new_machine = new.get("machine") or {}
    old_nproc = old_machine.get("nproc")
    new_nproc = new_machine.get("nproc")
    if old_nproc is not None and new_nproc is not None \
            and old_nproc != new_nproc:
        print(f"bench_compare: WARNING: core-count mismatch: baseline "
              f"ran on {old_nproc} cores "
              f"(host {old_machine.get('host', '?')!r}), new on "
              f"{new_nproc} cores (host {new_machine.get('host', '?')!r})"
              f" -- timing comparisons are NOT meaningful and will not "
              f"be gated; re-record the baseline on this machine to "
              f"gate timings again")
        gate_timings = False
    elif old_machine and new_machine \
            and old_machine.get("host") != new_machine.get("host"):
        print(f"bench_compare: note: hostname changed "
              f"({old_machine.get('host')!r} -> "
              f"{new_machine.get('host')!r}), same core count "
              f"({old_nproc}); timings compared as usual")

    for section, keys in sorted(baseline["sections"].items()):
        new_section = new["sections"].get(section)
        if new_section is None:
            ok = fail(f"section {section!r} missing from new report")
            continue
        for key, old_value in sorted(keys.items()):
            label = f"{section}/{key}"
            if key not in new_section:
                ok = fail(f"{label} missing from new report")
                continue
            new_value = new_section[key]
            if is_timing_key(key):
                ratio = (new_value / old_value) if old_value else float("inf")
                within = (not gate_timings) or \
                    new_value <= old_value * args.time_factor
                status = "ok" if within else "FAIL"
                print(f"bench_compare: [time ] {label}: {old_value:.6g} -> "
                      f"{new_value:.6g} ({ratio:.2f}x) {status}")
                if not within:
                    ok = fail(f"{label} regressed beyond "
                              f"{args.time_factor}x: {old_value:.6g} -> "
                              f"{new_value:.6g}")
            else:
                scale = max(1.0, abs(old_value))
                within = abs(new_value - old_value) <= args.rel_tol * scale
                status = "ok" if within else "FAIL"
                print(f"bench_compare: [value] {label}: {old_value:.17g} "
                      f"vs {new_value:.17g} {status}")
                if not within:
                    ok = fail(f"{label} drifted: {old_value:.17g} -> "
                              f"{new_value:.17g} (rel-tol {args.rel_tol})")

    for section, keys in sorted(new["sections"].items()):
        old_section = baseline["sections"].get(section, {})
        for key in sorted(keys):
            if section not in baseline["sections"] or key not in old_section:
                print(f"bench_compare: warning: {section}/{key} not in "
                      f"baseline (regenerate it if this is intended)")

    if ok:
        print(f"bench_compare: OK ({args.new} vs {args.baseline})")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
