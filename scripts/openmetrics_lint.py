#!/usr/bin/env python3
"""Validate an OpenMetrics exposition (the daemon's GET /metrics body).

Usage:
    openmetrics_lint.py SCRAPE1 [SCRAPE2]

Checks the subset of the OpenMetrics 1.0 text format that
RenderOpenMetrics() emits:

  * the body is valid UTF-8 and its final line is exactly `# EOF`;
  * every sample belongs to a family with a `# TYPE` (and `# HELP`)
    declared before its first sample, HELP before TYPE, neither
    repeated;
  * metric and label names are legal, label values use only the
    three escapes the spec allows (\\\\, \\", \\n), and sample values
    parse as floats;
  * counter families expose only `_total`-suffixed samples,
    histogram families only `_bucket`/`_count`/`_sum`, and
    `_bucket` series carry an `le` label with non-decreasing
    cumulative counts ending at `le="+Inf"`.

With a second scrape of the same endpoint, additionally checks that
every counter series present in both is monotone (value in SCRAPE2 >=
value in SCRAPE1) — the property Prometheus rate() depends on.

Exit status 0 when clean; 1 with one `openmetrics_lint: FAIL:` line
per violation otherwise.
"""

import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# One label: name="value" where value contains no raw " or \ except as
# one of the three legal escapes.
LABEL_PAIR = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\\\|\\"|\\n)*)"')
SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})?\s+(\S+)(\s+\S+)?$")

KNOWN_TYPES = ("counter", "gauge", "histogram", "summary", "unknown")
# Sample-name suffixes each type may emit (empty string = bare name).
TYPE_SUFFIXES = {
    "counter": ("_total", "_created"),
    "gauge": ("",),
    "histogram": ("_bucket", "_count", "_sum", "_created"),
    "summary": ("", "_count", "_sum", "_created"),
    "unknown": ("",),
}


class Lint:
    def __init__(self, path):
        self.path = path
        self.errors = []
        # family -> "counter" | "gauge" | ...
        self.types = {}
        self.helped = set()
        # (family, sample-name, sorted-label-tuple) -> value, for the
        # cross-scrape monotonicity check and duplicate detection.
        self.series = {}

    def fail(self, line_no, message):
        self.errors.append(f"{self.path}:{line_no}: {message}")

    def family_of(self, sample_name):
        """Longest declared family this sample name belongs to."""
        best = None
        for family, family_type in self.types.items():
            for suffix in TYPE_SUFFIXES[family_type]:
                if sample_name == family + suffix:
                    if best is None or len(family) > len(best):
                        best = family
        return best


def parse_labels(lint, line_no, labels_text):
    """Parses `{a="b",...}` strictly; returns sorted tuple or None."""
    inner = labels_text[1:-1]
    if inner == "":
        return ()
    pairs = []
    position = 0
    while position < len(inner):
        match = LABEL_PAIR.match(inner, position)
        if not match:
            lint.fail(line_no,
                      f"malformed or badly escaped label at ...{inner[position:]!r}")
            return None
        pairs.append((match.group(1), match.group(2)))
        position = match.end()
        if position < len(inner):
            if inner[position] != ",":
                lint.fail(line_no, f"expected ',' between labels in {inner!r}")
                return None
            position += 1
    names = [name for name, _ in pairs]
    if len(set(names)) != len(names):
        lint.fail(line_no, f"duplicate label name in {inner!r}")
        return None
    return tuple(sorted(pairs))


def lint_file(path):
    lint = Lint(path)
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as error:
        lint.fail(0, f"cannot read: {error}")
        return lint
    try:
        text = raw.decode("utf-8")
    except UnicodeDecodeError as error:
        lint.fail(0, f"not valid UTF-8: {error}")
        return lint

    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()  # the trailing newline after "# EOF"
    else:
        lint.fail(len(lines), "body does not end with a newline")
    if not lines or lines[-1] != "# EOF":
        lint.fail(len(lines), "final line is not '# EOF'")

    seen_eof = False
    # family -> list of (le-as-float, cumulative count) for bucket order
    buckets = {}
    for line_no, line in enumerate(lines, start=1):
        if line == "# EOF":
            if seen_eof:
                lint.fail(line_no, "multiple '# EOF' lines")
            seen_eof = True
            continue
        if seen_eof:
            lint.fail(line_no, "content after '# EOF'")
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP "):].split(" ", 1)
            family = parts[0]
            if not METRIC_NAME.match(family):
                lint.fail(line_no, f"bad metric name in HELP: {family!r}")
            if family in lint.helped:
                lint.fail(line_no, f"duplicate HELP for {family!r}")
            if family in lint.types:
                lint.fail(line_no, f"HELP for {family!r} after its TYPE")
            lint.helped.add(family)
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split(" ")
            if len(parts) != 2:
                lint.fail(line_no, f"malformed TYPE line: {line!r}")
                continue
            family, family_type = parts
            if not METRIC_NAME.match(family):
                lint.fail(line_no, f"bad metric name in TYPE: {family!r}")
                continue
            if family_type not in KNOWN_TYPES:
                lint.fail(line_no, f"unknown type {family_type!r}")
                continue
            if family in lint.types:
                lint.fail(line_no, f"duplicate TYPE for {family!r}")
            if family not in lint.helped:
                lint.fail(line_no, f"TYPE for {family!r} without prior HELP")
            lint.types[family] = family_type
            continue
        if line.startswith("#"):
            lint.fail(line_no, f"unrecognized comment line: {line!r}")
            continue
        if line.strip() == "":
            lint.fail(line_no, "blank line (not allowed in OpenMetrics)")
            continue

        match = SAMPLE.match(line)
        if not match:
            lint.fail(line_no, f"unparseable sample line: {line!r}")
            continue
        name, labels_text, value_text = match.group(1), match.group(2), \
            match.group(3)
        family = lint.family_of(name)
        if family is None:
            lint.fail(line_no, f"sample {name!r} has no preceding TYPE "
                               f"for its family")
            continue
        labels = parse_labels(lint, line_no, labels_text) \
            if labels_text else ()
        if labels is None:
            continue
        try:
            value = float(value_text)
        except ValueError:
            lint.fail(line_no, f"sample value {value_text!r} is not a number")
            continue

        key = (family, name, labels)
        if key in lint.series:
            lint.fail(line_no, f"duplicate series {name}{labels_text or ''}")
        lint.series[key] = value

        family_type = lint.types[family]
        if family_type == "counter":
            if value < 0:
                lint.fail(line_no, f"counter {name!r} is negative")
        if family_type == "histogram" and name == family + "_bucket":
            label_map = dict(labels)
            if "le" not in label_map:
                lint.fail(line_no, f"histogram bucket {name!r} missing "
                                   f"'le' label")
                continue
            le_text = label_map["le"]
            le = float("inf") if le_text == "+Inf" else None
            if le is None:
                try:
                    le = float(le_text)
                except ValueError:
                    lint.fail(line_no, f"bad le value {le_text!r}")
                    continue
            rest = tuple(sorted((k, v) for k, v in labels if k != "le"))
            buckets.setdefault((family, rest), []).append(
                (line_no, le, value))

    for (family, _), entries in sorted(buckets.items()):
        previous_le, previous_count = None, None
        for line_no, le, count in entries:  # renderer emits in le order
            if previous_le is not None and le <= previous_le:
                lint.fail(line_no, f"{family}_bucket le values not "
                                   f"increasing ({previous_le} -> {le})")
            if previous_count is not None and count < previous_count:
                lint.fail(line_no, f"{family}_bucket counts not cumulative "
                                   f"({previous_count} -> {count})")
            previous_le, previous_count = le, count
        if previous_le != float("inf"):
            lint.fail(entries[-1][0],
                      f"{family}_bucket series does not end at le=\"+Inf\"")
    return lint


def main():
    if len(sys.argv) not in (2, 3):
        sys.exit(__doc__.strip().split("\n")[2].strip())
    lints = [lint_file(path) for path in sys.argv[1:]]

    errors = []
    for lint in lints:
        errors.extend(lint.errors)

    if len(lints) == 2:
        first, second = lints
        compared = 0
        for key, old_value in sorted(first.series.items()):
            family, name, labels = key
            if first.types.get(family) != "counter":
                continue
            if second.types.get(family) != "counter":
                errors.append(f"{second.path}: counter family {family!r} "
                              f"disappeared or changed type")
                continue
            if key not in second.series:
                errors.append(f"{second.path}: counter series {name}"
                              f"{dict(labels)} disappeared between scrapes")
                continue
            compared += 1
            if second.series[key] < old_value:
                errors.append(
                    f"{second.path}: counter {name}{dict(labels)} went "
                    f"backwards: {old_value} -> {second.series[key]}")
        print(f"openmetrics_lint: {compared} counter series checked for "
              f"monotonicity across the two scrapes")

    for error in errors:
        print(f"openmetrics_lint: FAIL: {error}")
    if errors:
        return 1
    total = sum(len(lint.series) for lint in lints)
    print(f"openmetrics_lint: OK ({total} samples across "
          f"{len(lints)} scrape{'s' if len(lints) > 1 else ''})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
