#!/bin/sh
# Diffs a fresh MICTREND_BENCH_JSON report against a committed baseline.
#
#   scripts/bench_compare.sh bench/baselines/BENCH_table5.json new.json \
#       [--rel-tol T] [--time-factor F]
#
# Thin wrapper over bench_compare.py so harnesses that expect a shell
# entry point (scripts/check.sh, CI) have one.
set -e
exec python3 "$(dirname "$0")/bench_compare.py" "$@"
