#!/bin/sh
# Builds and tests every preset: the Release build plus the TSan and
# ASan+UBSan instrumented builds, then a bench-smoke stage that runs
# bench_table5_efficiency at a tiny scale, validates its
# MICTREND_BENCH_JSON report, and gates the deterministic values
# against the committed baseline. Run from the repo root:
#
#   scripts/check.sh              # all presets + bench/cache/store/serve/perf/obs smoke
#   scripts/check.sh default      # just one preset
#   scripts/check.sh bench-smoke  # just the bench regression gate
#   scripts/check.sh cache-smoke  # just the incremental-cache gate
#   scripts/check.sh store-smoke  # just the persistent-store gate
#   scripts/check.sh serve-smoke  # just the trend-query daemon gate
#   scripts/check.sh drill-smoke  # just the drill-down rollup gate
#   scripts/check.sh perf-smoke   # just the parallel-scaling gate
#   scripts/check.sh obs-smoke    # just the telemetry/OpenMetrics gate
#
# Presets come from CMakePresets.json (cmake >= 3.21); on older cmake
# this falls back to plain -B/-S invocations with the same cache
# variables.
set -e

cd "$(dirname "$0")/.."
PRESETS="${*:-default tsan asan bench-smoke cache-smoke store-smoke serve-smoke drill-smoke perf-smoke obs-smoke}"

# Runs bench_table5_efficiency at the pinned smoke scale (the config the
# committed baseline was generated with -- bench_compare refuses to diff
# across configs) and compares. Timing keys report but do not gate; the
# deterministic keys (series counts, fit counts, the bit-identical
# parallel check) must match the baseline exactly.
bench_smoke() {
  echo "==== bench-smoke: bench_table5_efficiency JSON regression gate ===="
  if [ ! -x build/bench/bench_table5_efficiency ]; then
    cmake -B build -S . -DCMAKE_BUILD_TYPE=Release \
      -DMICTREND_BUILD_BENCHMARKS=ON
    cmake --build build -j "$(nproc)" --target bench_table5_efficiency
  fi
  out="build/bench/BENCH_table5.json"
  MICTREND_BENCH_PATIENTS=200 \
  MICTREND_BENCH_BACKGROUND=10 \
  MICTREND_BENCH_MAX_SERIES=12 \
  MICTREND_BENCH_THREADS=1,2,4,8 \
  MICTREND_BENCH_JSON="$out" \
    build/bench/bench_table5_efficiency > build/bench/BENCH_table5.out
  scripts/bench_compare.sh bench/baselines/BENCH_table5.json "$out"
}

# The parallel-scaling gate: rerun the table5 bench at the pinned smoke
# scale with the 1,2,4,8 thread curve, gate timing keys against the
# baseline (--time-factor bounds regressions), and require the
# candidate-level sweep to reach >= 1.5x at 4 threads -- on hardware
# that has 4 cores to scale over. Narrower machines (CI containers)
# check bit-identity at every width but skip the speedup floor, since
# no scheduling can beat the core count.
perf_smoke() {
  echo "==== perf-smoke: parallel scaling gate (table5 thread curve) ===="
  if [ ! -x build/bench/bench_table5_efficiency ]; then
    cmake -B build -S . -DCMAKE_BUILD_TYPE=Release \
      -DMICTREND_BUILD_BENCHMARKS=ON
    cmake --build build -j "$(nproc)" --target bench_table5_efficiency
  fi
  out="build/bench/BENCH_table5_perf.json"
  MICTREND_BENCH_PATIENTS=200 \
  MICTREND_BENCH_BACKGROUND=10 \
  MICTREND_BENCH_MAX_SERIES=12 \
  MICTREND_BENCH_THREADS=1,2,4,8 \
  MICTREND_BENCH_JSON="$out" \
    build/bench/bench_table5_efficiency > build/bench/BENCH_table5_perf.out
  scripts/bench_compare.sh bench/baselines/BENCH_table5.json "$out" \
    --time-factor "${MICTREND_PERF_TIME_FACTOR:-10}"
  python3 - "$out" "$(nproc)" << 'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
parallel = report["sections"]["parallel"]
assert parallel["identical"] == 1, \
    f"parallel sweep not bit-identical across widths: {parallel}"
cores = int(sys.argv[2])
speedup = parallel.get("t4_speedup")
assert speedup is not None, "t4_speedup missing from parallel section"
if cores >= 4:
    assert speedup >= 1.5, (
        f"candidate sweep speedup at 4 threads is {speedup:.2f}x "
        f"(< 1.5x) on a {cores}-core machine")
    print(f"perf-smoke OK: {speedup:.2f}x at 4 threads ({cores} cores)")
else:
    print(f"perf-smoke: speedup floor skipped on {cores}-core hardware "
          f"(measured {speedup:.2f}x at 4 threads); bit-identity held")
EOF
}

# The mic::cache incremental-update gate: seed a cache with a cold
# pipeline run (--cache=write), rerun warm (--cache=rw), and require a
# byte-identical report with nonzero hits and zero misses/read errors.
cache_smoke() {
  echo "==== cache-smoke: cold seed -> warm rerun identity gate ===="
  if [ ! -x build/tools/mictrend ]; then
    cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build -j "$(nproc)" --target mictrend
  fi
  work="build/cache_smoke_work"
  rm -rf "$work"
  mkdir -p "$work"
  build/tools/mictrend generate --out "$work/corpus.csv" \
    --months 12 --patients 250 --background 3 --seed 7
  build/tools/mictrend pipeline --corpus "$work/corpus.csv" \
    --min-total 5 --seasonal false --cache write \
    --cache-dir "$work/cache" --out "$work/cold.csv" > /dev/null
  build/tools/mictrend pipeline --corpus "$work/corpus.csv" \
    --min-total 5 --seasonal false --cache rw \
    --cache-dir "$work/cache" --out "$work/warm.csv" \
    --metrics-out "$work/warm_metrics.json" > /dev/null
  cmp "$work/cold.csv" "$work/warm.csv"
  python3 - "$work/warm_metrics.json" << 'EOF'
import json, sys
counters = json.load(open(sys.argv[1]))["counters"]
assert counters.get("cache.hits", 0) > 0, counters
assert counters.get("cache.misses", 1) == 0, counters
assert counters.get("cache.read_errors", 1) == 0, counters
EOF
  echo "cache-smoke OK: warm rerun byte-identical with cache hits"
}

# The mic::store persistence gate: import a corpus into a columnar
# store, rerun the pipeline from the store (warm load), append one new
# month, and require every store-backed report to match its CSV-backed
# twin byte for byte.
store_smoke() {
  echo "==== store-smoke: import -> warm load -> append identity gate ===="
  if [ ! -x build/tools/mictrend ]; then
    cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build -j "$(nproc)" --target mictrend
  fi
  work="build/store_smoke_work"
  rm -rf "$work"
  mkdir -p "$work"
  # One 13-month world; the first 12 months are the "already imported"
  # history and month 12 is the newly arrived batch.
  build/tools/mictrend generate --out "$work/corpus13.csv" \
    --hospitals-out "$work/hospitals.csv" \
    --months 13 --patients 250 --background 3 --seed 7
  awk -F, 'NR == 1 || $1 != 12' "$work/corpus13.csv" > "$work/corpus12.csv"
  build/tools/mictrend import --corpus "$work/corpus12.csv" \
    --hospitals "$work/hospitals.csv" --store-dir "$work/store" \
    | grep -q "imported 12 of 12 months"
  build/tools/mictrend pipeline --corpus "$work/corpus12.csv" \
    --min-total 5 --seasonal false --out "$work/csv12.csv" > /dev/null
  build/tools/mictrend pipeline --corpus "$work/corpus12.csv" \
    --store-dir "$work/store" --min-total 5 --seasonal false \
    --out "$work/store12.csv" > /dev/null 2> "$work/ingest12.err"
  grep -q "ingested 12 months from store" "$work/ingest12.err"
  cmp "$work/csv12.csv" "$work/store12.csv"
  # Month 12 arrives: append extends the store in place, and the
  # store-backed report tracks the grown world.
  build/tools/mictrend import --corpus "$work/corpus13.csv" \
    --store-dir "$work/store" --append \
    | grep -q "imported 1 of 13 months"
  build/tools/mictrend pipeline --corpus "$work/corpus13.csv" \
    --min-total 5 --seasonal false --out "$work/csv13.csv" > /dev/null
  build/tools/mictrend pipeline --corpus "$work/corpus13.csv" \
    --store-dir "$work/store" --min-total 5 --seasonal false \
    --out "$work/store13.csv" > /dev/null 2> "$work/ingest13.err"
  grep -q "ingested 13 months from store" "$work/ingest13.err"
  cmp "$work/csv13.csv" "$work/store13.csv"
  echo "store-smoke OK: store-backed reports byte-identical through append"
}

# The mictrend serve gate: start the daemon on a 12-month store, ingest
# month 12 live, and require the served report to byte-match the
# offline pipeline both before and after the swap. The offline
# references are produced with the SAME cache chaining the daemon
# performs (cold 12-month seed, warm 13-month rerun against one cache
# directory) — a warm rebuild chains each month's EM fit from the
# previous snapshot, so a cold offline run would produce a different
# (equally valid) fit and the byte-compare would fail.
serve_smoke() {
  echo "==== serve-smoke: daemon query/ingest identity gate ===="
  if [ ! -x build/tools/mictrend ] || [ ! -x build/bench/bench_serve ]; then
    cmake -B build -S . -DCMAKE_BUILD_TYPE=Release \
      -DMICTREND_BUILD_BENCHMARKS=ON
    cmake --build build -j "$(nproc)" --target mictrend bench_serve
  fi
  work="build/serve_smoke_work"
  rm -rf "$work"
  mkdir -p "$work"
  bin=build/tools/mictrend
  # One 13-month world; the daemon starts on the first 12 months and
  # month 12 arrives through the ingest endpoint while it serves.
  $bin generate --out "$work/corpus13.csv" \
    --hospitals-out "$work/hospitals.csv" \
    --months 13 --patients 250 --background 3 --seed 7
  awk -F, 'NR == 1 || $1 != 12' "$work/corpus13.csv" > "$work/corpus12.csv"
  $bin import --corpus "$work/corpus12.csv" \
    --hospitals "$work/hospitals.csv" --store-dir "$work/store" \
    | grep -q "imported 12 of 12 months"
  $bin pipeline --corpus "$work/corpus12.csv" --min-total 5 \
    --seasonal false --cache rw --cache-dir "$work/cache_offline" \
    --out "$work/offline12.csv" > /dev/null
  $bin pipeline --corpus "$work/corpus13.csv" --min-total 5 \
    --seasonal false --cache rw --cache-dir "$work/cache_offline" \
    --out "$work/offline13.csv" > /dev/null
  # Cold 13-month twin for the cache-less tsan daemon round below.
  $bin pipeline --corpus "$work/corpus13.csv" --min-total 5 \
    --seasonal false --out "$work/offline13_cold.csv" > /dev/null

  rm -f "$work/port.txt"
  $bin serve --store-dir "$work/store" --min-total 5 --seasonal false \
    --cache rw --cache-dir "$work/cache_serve" \
    --port 0 --port-file "$work/port.txt" --workers 4 \
    > "$work/serve.log" 2>&1 &
  pid=$!
  i=0
  while [ ! -s "$work/port.txt" ]; do
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "serve daemon died during startup:" >&2
      cat "$work/serve.log" >&2
      exit 1
    fi
    i=$((i + 1))
    if [ "$i" -gt 240 ]; then
      echo "serve daemon never wrote the port file" >&2
      kill "$pid" 2>/dev/null || true
      exit 1
    fi
    sleep 0.5
  done
  port=$(cat "$work/port.txt")

  # Pre-ingest: the served report is the offline 12-month report, byte
  # for byte.
  $bin query --port "$port" --op health --out "$work/health12.json"
  $bin query --port "$port" --op report_csv --out "$work/served12.csv"
  cmp "$work/offline12.csv" "$work/served12.csv"

  # Live ingest of month 12 (full corpus + hospital attributes), then
  # the served report must track the offline 13-month twin.
  $bin query --port "$port" --op ingest --corpus "$work/corpus13.csv" \
    --hospitals "$work/hospitals.csv" --out "$work/ingest.json"
  $bin query --port "$port" --op report_csv --out "$work/served13.csv"
  cmp "$work/offline13.csv" "$work/served13.csv"
  $bin query --port "$port" --op metrics --out "$work/metrics.json"
  python3 - "$work/health12.json" "$work/ingest.json" \
    "$work/metrics.json" << 'EOF'
import json, sys
health, ingest, metrics = (json.load(open(p)) for p in sys.argv[1:4])
assert health["months"] == 12 and health["version"] == 1, health
assert ingest["months"] == 13 and ingest["version"] == 2, ingest
assert ingest["data"]["appended"] == 1, ingest
counters = metrics["data"]["counters"]
# The rebuild warm-started: the first 12 months came from the cache,
# not a full refit.
assert counters["reproduce.snapshot_hits"] >= 12, counters
assert counters["cache.hits"] > 0, counters
assert counters["serve.ingest.months_appended"] == 1, counters
assert counters["serve.snapshots_published"] == 2, counters
EOF

  # Every query endpoint answers from the new snapshot (names are read
  # off the served report, so this stays world-agnostic).
  dis=$(awk -F, '$1 == "disease" { print $2; exit }' "$work/served13.csv")
  med=$(awk -F, '$1 == "medicine" { print $3; exit }' "$work/served13.csv")
  $bin query --port "$port" --op series --kind disease \
    --disease "$dis" > /dev/null
  $bin query --port "$port" --op top_changes --k 5 > /dev/null
  $bin query --port "$port" --op geo_spread --medicines "$med" \
    --snapshot-months 0,6,12 > /dev/null
  $bin query --port "$port" --op hospital_gap --medicine "$med" \
    --top-k 3 > /dev/null

  $bin query --port "$port" --op shutdown > /dev/null
  wait "$pid"
  grep -q "server stopped" "$work/serve.log"

  # The load bench at the pinned smoke scale, gated against its
  # committed baseline (deterministic keys must match; timings report).
  out="build/bench/BENCH_serve.json"
  MICTREND_BENCH_PATIENTS=200 \
  MICTREND_BENCH_BACKGROUND=10 \
  MICTREND_BENCH_MAX_SERIES=12 \
  MICTREND_BENCH_JSON="$out" \
    build/bench/bench_serve > build/bench/BENCH_serve.out
  scripts/bench_compare.sh bench/baselines/BENCH_serve.json "$out"

  # A compact daemon round under ThreadSanitizer when the instrumented
  # binary is already built (the tsan preset's ctest run covers the
  # serve_test hammer either way). `wait` surfaces TSan's exit code.
  if [ -x build-tsan/tools/mictrend ]; then
    rm -f "$work/tsan_port.txt"
    build-tsan/tools/mictrend serve --store-dir "$work/store" \
      --min-total 5 --seasonal false \
      --port 0 --port-file "$work/tsan_port.txt" --workers 4 \
      > "$work/serve_tsan.log" 2>&1 &
    tpid=$!
    i=0
    while [ ! -s "$work/tsan_port.txt" ]; do
      if ! kill -0 "$tpid" 2>/dev/null; then
        echo "tsan serve daemon died during startup:" >&2
        cat "$work/serve_tsan.log" >&2
        exit 1
      fi
      i=$((i + 1))
      if [ "$i" -gt 600 ]; then
        echo "tsan serve daemon never wrote the port file" >&2
        kill "$tpid" 2>/dev/null || true
        exit 1
      fi
      sleep 0.5
    done
    tport=$(cat "$work/tsan_port.txt")
    tsan_bin=build-tsan/tools/mictrend
    $tsan_bin query --port "$tport" --op health > /dev/null
    $tsan_bin query --port "$tport" --op ingest > /dev/null  # refresh
    $tsan_bin query --port "$tport" --op report_csv \
      --out "$work/served_tsan.csv"
    cmp "$work/offline13_cold.csv" "$work/served_tsan.csv"
    $tsan_bin query --port "$tport" --op shutdown > /dev/null
    wait "$tpid"
    echo "serve-smoke: tsan daemon round clean"
  fi
  echo "serve-smoke OK: served reports byte-identical through live ingest"
}

# The drill-down rollup gate: the served drilldown document must
# byte-match the offline `mictrend drilldown` build both before and
# after a live ingest, and a warm rerun against a seeded cache must
# reproduce the cold document byte for byte while answering every
# rollup fit from the cache (nonzero hits, zero misses, nonzero leaf
# reuses). Everything runs with --seasonal false: an 11-state dummy
# seasonal cannot be fitted on a 12-month series, so the seasonal
# default would degenerate every fit to a skip and the gate would
# vacuously pass on empty documents.
drill_smoke() {
  echo "==== drill-smoke: drill-down rollup identity gate ===="
  if [ ! -x build/tools/mictrend ]; then
    cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build -j "$(nproc)" --target mictrend
  fi
  work="build/drill_smoke_work"
  rm -rf "$work"
  mkdir -p "$work"
  bin=build/tools/mictrend
  # Same world shape as serve-smoke: 13 months, daemon starts on the
  # first 12, month 12 arrives live.
  $bin generate --out "$work/corpus13.csv" \
    --hospitals-out "$work/hospitals.csv" \
    --months 13 --patients 250 --background 3 --seed 7
  awk -F, 'NR == 1 || $1 != 12' "$work/corpus13.csv" > "$work/corpus12.csv"
  $bin import --corpus "$work/corpus12.csv" \
    --hospitals "$work/hospitals.csv" --store-dir "$work/store" \
    | grep -q "imported 12 of 12 months"

  # Cold offline twins for each served comparison. The daemon below
  # runs cache-less, so its rebuilds are cold too and the documents
  # compare byte for byte.
  $bin drilldown --corpus "$work/corpus12.csv" \
    --hospitals "$work/hospitals.csv" --min-total 5 --seasonal false \
    --axis medicine --json "$work/offline12.json" > /dev/null
  $bin drilldown --corpus "$work/corpus12.csv" \
    --hospitals "$work/hospitals.csv" --min-total 5 --seasonal false \
    --axis hospital --json "$work/offline12h.json" > /dev/null
  $bin drilldown --corpus "$work/corpus13.csv" \
    --hospitals "$work/hospitals.csv" --min-total 5 --seasonal false \
    --axis medicine --json "$work/offline13.json" > /dev/null

  rm -f "$work/port.txt"
  $bin serve --store-dir "$work/store" --min-total 5 --seasonal false \
    --port 0 --port-file "$work/port.txt" --workers 2 \
    > "$work/serve.log" 2>&1 &
  pid=$!
  i=0
  while [ ! -s "$work/port.txt" ]; do
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "drill-smoke daemon died during startup:" >&2
      cat "$work/serve.log" >&2
      exit 1
    fi
    i=$((i + 1))
    if [ "$i" -gt 240 ]; then
      echo "drill-smoke daemon never wrote the port file" >&2
      kill "$pid" 2>/dev/null || true
      exit 1
    fi
    sleep 0.5
  done
  port=$(cat "$work/port.txt")

  $bin query --port "$port" --op drilldown --axis medicine \
    --out "$work/served12.json"
  cmp "$work/offline12.json" "$work/served12.json"
  $bin query --port "$port" --op drilldown --axis hospital \
    --out "$work/served12h.json"
  cmp "$work/offline12h.json" "$work/served12h.json"

  $bin query --port "$port" --op ingest --corpus "$work/corpus13.csv" \
    --hospitals "$work/hospitals.csv" > /dev/null
  $bin query --port "$port" --op drilldown --axis medicine \
    --out "$work/served13.json"
  cmp "$work/offline13.json" "$work/served13.json"
  $bin query --port "$port" --op shutdown > /dev/null
  wait "$pid"

  # Warm-cache leg: seed a cache with a cold write run, rerun rw, and
  # require the same bytes with every rollup fit answered from disk.
  $bin drilldown --corpus "$work/corpus13.csv" \
    --hospitals "$work/hospitals.csv" --min-total 5 --seasonal false \
    --axis medicine --json "$work/cold.json" \
    --cache write --cache-dir "$work/cache" > /dev/null
  $bin drilldown --corpus "$work/corpus13.csv" \
    --hospitals "$work/hospitals.csv" --min-total 5 --seasonal false \
    --axis medicine --json "$work/warm.json" \
    --cache rw --cache-dir "$work/cache" \
    --metrics-out "$work/warm_metrics.json" > /dev/null
  cmp "$work/cold.json" "$work/warm.json"
  python3 - "$work/warm_metrics.json" << 'EOF'
import json, sys
counters = json.load(open(sys.argv[1]))["counters"]
assert counters["trend.rollup.cache_hits"] > 0, counters
assert counters["trend.rollup.cache_misses"] == 0, counters
assert counters["trend.rollup.leaf_reuses"] > 0, counters
assert counters["cache.read_errors"] == 0, counters
EOF
  echo "drill-smoke OK: drill documents byte-identical served and cached"
}

# The telemetry gate: a daemon under a little query load must answer
# lint-clean OpenMetrics on /metrics (twice, so counter monotonicity is
# checked across scrapes), a parseable /varz whose window payload
# matches the framed `stats` op structurally, and an access log with
# one JSON record per request. When the ASan+UBSan build exists, one
# compact daemon round (health + /metrics scrape + shutdown) runs under
# it — `wait` surfaces the sanitizer's exit code.
obs_smoke() {
  echo "==== obs-smoke: windowed telemetry + OpenMetrics exposition gate ===="
  if [ ! -x build/tools/mictrend ]; then
    cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build -j "$(nproc)" --target mictrend
  fi
  work="build/obs_smoke_work"
  rm -rf "$work"
  mkdir -p "$work"
  bin=build/tools/mictrend
  $bin generate --out "$work/corpus.csv" \
    --hospitals-out "$work/hospitals.csv" \
    --months 12 --patients 250 --background 3 --seed 7
  $bin import --corpus "$work/corpus.csv" \
    --hospitals "$work/hospitals.csv" --store-dir "$work/store" \
    | grep -q "imported 12 of 12 months"

  rm -f "$work/port.txt"
  $bin serve --store-dir "$work/store" --min-total 5 --seasonal false \
    --port 0 --port-file "$work/port.txt" --workers 2 \
    --access-log "$work/access.jsonl" \
    > "$work/serve.log" 2>&1 &
  pid=$!
  i=0
  while [ ! -s "$work/port.txt" ]; do
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "obs-smoke daemon died during startup:" >&2
      cat "$work/serve.log" >&2
      exit 1
    fi
    i=$((i + 1))
    if [ "$i" -gt 240 ]; then
      echo "obs-smoke daemon never wrote the port file" >&2
      kill "$pid" 2>/dev/null || true
      exit 1
    fi
    sleep 0.5
  done
  port=$(cat "$work/port.txt")

  # A little framed load so the windows have something to show.
  $bin query --port "$port" --op health > /dev/null
  $bin query --port "$port" --op health > /dev/null
  $bin query --port "$port" --op top_changes --k 3 > /dev/null

  # Two /metrics scrapes with more load in between: the lint checks
  # both for format violations and the pair for counter monotonicity.
  fetch() {
    python3 -c 'import sys, urllib.request
body = urllib.request.urlopen(sys.argv[1], timeout=30).read()
sys.stdout.buffer.write(body)' "http://127.0.0.1:$port$1"
  }
  fetch /metrics > "$work/scrape1.txt"
  $bin query --port "$port" --op health > /dev/null
  $bin query --port "$port" --op stats --out "$work/stats.json"
  fetch /metrics > "$work/scrape2.txt"
  python3 scripts/openmetrics_lint.py "$work/scrape1.txt" "$work/scrape2.txt"

  fetch /healthz | grep -qx "ok"
  fetch /varz > "$work/varz.json"
  python3 - "$work/varz.json" "$work/stats.json" << 'EOF'
import json, sys
varz = json.load(open(sys.argv[1]))
stats = json.load(open(sys.argv[2]))["data"]
# /varz and the framed stats op render the same registry: identical
# window set; every channel the earlier stats payload saw is still in
# /varz (the HTTP requests in between may have added http.* channels,
# so equality only holds one way here).
assert varz["slot_width_seconds"] == stats["slot_width_seconds"], varz
assert sorted(varz["windows"]) == sorted(stats["windows"]), varz
for window in varz["windows"]:
    missing = set(stats["windows"][window]) - set(varz["windows"][window])
    assert not missing, f"{window}: channels {missing} lost from /varz"
minute = varz["windows"]["60s"]
assert minute["serve.health"]["count"] >= 3, minute["serve.health"]
assert minute["serve.health"]["errors"] == 0, minute["serve.health"]
assert minute["serve.top_changes"]["count"] >= 1, minute
EOF

  $bin query --port "$port" --op shutdown > /dev/null
  wait "$pid"

  # Every request the daemon handled is one JSON line with a unique id.
  python3 - "$work/access.jsonl" << 'EOF'
import json, sys
records = [json.loads(line) for line in open(sys.argv[1])]
assert len(records) >= 9, f"expected >= 9 access records, got {len(records)}"
ids = [record["id"] for record in records]
assert len(set(ids)) == len(ids), "duplicate request ids in access log"
endpoints = {record["endpoint"] for record in records}
assert "health" in endpoints and "/metrics" in endpoints, endpoints
for record in records:
    assert "latency_seconds" in record and "ts" in record, record
EOF
  echo "obs-smoke: access log complete with unique request ids"

  # One daemon round under ASan+UBSan when the instrumented binary is
  # already built.
  if [ -x build-asan/tools/mictrend ]; then
    rm -f "$work/asan_port.txt"
    build-asan/tools/mictrend serve --store-dir "$work/store" \
      --min-total 5 --seasonal false \
      --port 0 --port-file "$work/asan_port.txt" --workers 2 \
      --access-log "$work/access_asan.jsonl" \
      > "$work/serve_asan.log" 2>&1 &
    apid=$!
    i=0
    while [ ! -s "$work/asan_port.txt" ]; do
      if ! kill -0 "$apid" 2>/dev/null; then
        echo "asan obs daemon died during startup:" >&2
        cat "$work/serve_asan.log" >&2
        exit 1
      fi
      i=$((i + 1))
      if [ "$i" -gt 600 ]; then
        echo "asan obs daemon never wrote the port file" >&2
        kill "$apid" 2>/dev/null || true
        exit 1
      fi
      sleep 0.5
    done
    aport=$(cat "$work/asan_port.txt")
    build-asan/tools/mictrend query --port "$aport" --op health > /dev/null
    build-asan/tools/mictrend query --port "$aport" --op stats > /dev/null
    python3 -c 'import sys, urllib.request
body = urllib.request.urlopen(sys.argv[1], timeout=60).read()
assert body.endswith(b"# EOF\n"), body[-80:]' \
      "http://127.0.0.1:$aport/metrics"
    build-asan/tools/mictrend query --port "$aport" --op shutdown > /dev/null
    wait "$apid"
    echo "obs-smoke: asan daemon round clean"
  fi
  echo "obs-smoke OK: lint-clean exposition, matching stats/varz, full access log"
}

supports_presets() {
  cmake --list-presets >/dev/null 2>&1
}

sanitizer_for() {
  case "$1" in
    tsan) echo "thread" ;;
    asan) echo "address,undefined" ;;
    *) echo "" ;;
  esac
}

for preset in $PRESETS; do
  if [ "$preset" = "bench-smoke" ]; then
    bench_smoke
    continue
  fi
  if [ "$preset" = "cache-smoke" ]; then
    cache_smoke
    continue
  fi
  if [ "$preset" = "store-smoke" ]; then
    store_smoke
    continue
  fi
  if [ "$preset" = "serve-smoke" ]; then
    serve_smoke
    continue
  fi
  if [ "$preset" = "drill-smoke" ]; then
    drill_smoke
    continue
  fi
  if [ "$preset" = "perf-smoke" ]; then
    perf_smoke
    continue
  fi
  if [ "$preset" = "obs-smoke" ]; then
    obs_smoke
    continue
  fi
  echo "==== ${preset}: configure + build + test ===="
  if supports_presets; then
    cmake --preset "$preset"
    cmake --build --preset "$preset" -j "$(nproc)"
    ctest --preset "$preset"
  else
    build_dir="build"
    [ "$preset" != "default" ] && build_dir="build-$preset"
    sanitize="$(sanitizer_for "$preset")"
    cmake -B "$build_dir" -S . \
      -DCMAKE_BUILD_TYPE="$([ -n "$sanitize" ] && echo RelWithDebInfo || echo Release)" \
      -DMICTREND_SANITIZE="$sanitize" \
      -DMICTREND_BUILD_BENCHMARKS="$([ -n "$sanitize" ] && echo OFF || echo ON)" \
      -DMICTREND_BUILD_EXAMPLES="$([ -n "$sanitize" ] && echo OFF || echo ON)"
    cmake --build "$build_dir" -j "$(nproc)"
    (cd "$build_dir" && ctest --output-on-failure)
  fi
done
echo "all stages green"
