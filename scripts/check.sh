#!/bin/sh
# Builds and tests every preset: the Release build plus the TSan and
# ASan+UBSan instrumented builds, then a bench-smoke stage that runs
# bench_table5_efficiency at a tiny scale, validates its
# MICTREND_BENCH_JSON report, and gates the deterministic values
# against the committed baseline. Run from the repo root:
#
#   scripts/check.sh              # all three presets + bench-smoke
#   scripts/check.sh default      # just one preset
#   scripts/check.sh bench-smoke  # just the bench regression gate
#
# Presets come from CMakePresets.json (cmake >= 3.21); on older cmake
# this falls back to plain -B/-S invocations with the same cache
# variables.
set -e

cd "$(dirname "$0")/.."
PRESETS="${*:-default tsan asan bench-smoke}"

# Runs bench_table5_efficiency at the pinned smoke scale (the config the
# committed baseline was generated with -- bench_compare refuses to diff
# across configs) and compares. Timing keys report but do not gate; the
# deterministic keys (series counts, fit counts, the bit-identical
# parallel check) must match the baseline exactly.
bench_smoke() {
  echo "==== bench-smoke: bench_table5_efficiency JSON regression gate ===="
  if [ ! -x build/bench/bench_table5_efficiency ]; then
    cmake -B build -S . -DCMAKE_BUILD_TYPE=Release \
      -DMICTREND_BUILD_BENCHMARKS=ON
    cmake --build build -j "$(nproc)" --target bench_table5_efficiency
  fi
  out="build/bench/BENCH_table5.json"
  MICTREND_BENCH_PATIENTS=200 \
  MICTREND_BENCH_BACKGROUND=10 \
  MICTREND_BENCH_MAX_SERIES=12 \
  MICTREND_BENCH_THREADS=2 \
  MICTREND_BENCH_JSON="$out" \
    build/bench/bench_table5_efficiency > build/bench/BENCH_table5.out
  scripts/bench_compare.sh bench/baselines/BENCH_table5.json "$out"
}

supports_presets() {
  cmake --list-presets >/dev/null 2>&1
}

sanitizer_for() {
  case "$1" in
    tsan) echo "thread" ;;
    asan) echo "address,undefined" ;;
    *) echo "" ;;
  esac
}

for preset in $PRESETS; do
  if [ "$preset" = "bench-smoke" ]; then
    bench_smoke
    continue
  fi
  echo "==== ${preset}: configure + build + test ===="
  if supports_presets; then
    cmake --preset "$preset"
    cmake --build --preset "$preset" -j "$(nproc)"
    ctest --preset "$preset"
  else
    build_dir="build"
    [ "$preset" != "default" ] && build_dir="build-$preset"
    sanitize="$(sanitizer_for "$preset")"
    cmake -B "$build_dir" -S . \
      -DCMAKE_BUILD_TYPE="$([ -n "$sanitize" ] && echo RelWithDebInfo || echo Release)" \
      -DMICTREND_SANITIZE="$sanitize" \
      -DMICTREND_BUILD_BENCHMARKS="$([ -n "$sanitize" ] && echo OFF || echo ON)" \
      -DMICTREND_BUILD_EXAMPLES="$([ -n "$sanitize" ] && echo OFF || echo ON)"
    cmake --build "$build_dir" -j "$(nproc)"
    (cd "$build_dir" && ctest --output-on-failure)
  fi
done
echo "all stages green"
