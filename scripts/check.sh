#!/bin/sh
# Builds and tests every preset: the Release build plus the TSan and
# ASan+UBSan instrumented builds. Run from the repo root:
#
#   scripts/check.sh              # all three presets
#   scripts/check.sh default      # just one
#
# Presets come from CMakePresets.json (cmake >= 3.21); on older cmake
# this falls back to plain -B/-S invocations with the same cache
# variables.
set -e

cd "$(dirname "$0")/.."
PRESETS="${*:-default tsan asan}"

supports_presets() {
  cmake --list-presets >/dev/null 2>&1
}

sanitizer_for() {
  case "$1" in
    tsan) echo "thread" ;;
    asan) echo "address,undefined" ;;
    *) echo "" ;;
  esac
}

for preset in $PRESETS; do
  echo "==== ${preset}: configure + build + test ===="
  if supports_presets; then
    cmake --preset "$preset"
    cmake --build --preset "$preset" -j "$(nproc)"
    ctest --preset "$preset"
  else
    build_dir="build"
    [ "$preset" != "default" ] && build_dir="build-$preset"
    sanitize="$(sanitizer_for "$preset")"
    cmake -B "$build_dir" -S . \
      -DCMAKE_BUILD_TYPE="$([ -n "$sanitize" ] && echo RelWithDebInfo || echo Release)" \
      -DMICTREND_SANITIZE="$sanitize" \
      -DMICTREND_BUILD_BENCHMARKS="$([ -n "$sanitize" ] && echo OFF || echo ON)" \
      -DMICTREND_BUILD_EXAMPLES="$([ -n "$sanitize" ] && echo OFF || echo ON)"
    cmake --build "$build_dir" -j "$(nproc)"
    (cd "$build_dir" && ctest --output-on-failure)
  fi
done
echo "all presets green"
