#!/bin/sh
# Builds and tests every preset: the Release build plus the TSan and
# ASan+UBSan instrumented builds, then a bench-smoke stage that runs
# bench_table5_efficiency at a tiny scale, validates its
# MICTREND_BENCH_JSON report, and gates the deterministic values
# against the committed baseline. Run from the repo root:
#
#   scripts/check.sh              # all presets + bench-smoke + cache-smoke
#   scripts/check.sh default      # just one preset
#   scripts/check.sh bench-smoke  # just the bench regression gate
#   scripts/check.sh cache-smoke  # just the incremental-cache gate
#
# Presets come from CMakePresets.json (cmake >= 3.21); on older cmake
# this falls back to plain -B/-S invocations with the same cache
# variables.
set -e

cd "$(dirname "$0")/.."
PRESETS="${*:-default tsan asan bench-smoke cache-smoke}"

# Runs bench_table5_efficiency at the pinned smoke scale (the config the
# committed baseline was generated with -- bench_compare refuses to diff
# across configs) and compares. Timing keys report but do not gate; the
# deterministic keys (series counts, fit counts, the bit-identical
# parallel check) must match the baseline exactly.
bench_smoke() {
  echo "==== bench-smoke: bench_table5_efficiency JSON regression gate ===="
  if [ ! -x build/bench/bench_table5_efficiency ]; then
    cmake -B build -S . -DCMAKE_BUILD_TYPE=Release \
      -DMICTREND_BUILD_BENCHMARKS=ON
    cmake --build build -j "$(nproc)" --target bench_table5_efficiency
  fi
  out="build/bench/BENCH_table5.json"
  MICTREND_BENCH_PATIENTS=200 \
  MICTREND_BENCH_BACKGROUND=10 \
  MICTREND_BENCH_MAX_SERIES=12 \
  MICTREND_BENCH_THREADS=2 \
  MICTREND_BENCH_JSON="$out" \
    build/bench/bench_table5_efficiency > build/bench/BENCH_table5.out
  scripts/bench_compare.sh bench/baselines/BENCH_table5.json "$out"
}

# The mic::cache incremental-update gate: seed a cache with a cold
# pipeline run (--cache=write), rerun warm (--cache=rw), and require a
# byte-identical report with nonzero hits and zero misses/read errors.
cache_smoke() {
  echo "==== cache-smoke: cold seed -> warm rerun identity gate ===="
  if [ ! -x build/tools/mictrend ]; then
    cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
    cmake --build build -j "$(nproc)" --target mictrend
  fi
  work="build/cache_smoke_work"
  rm -rf "$work"
  mkdir -p "$work"
  build/tools/mictrend generate --out "$work/corpus.csv" \
    --months 12 --patients 250 --background 3 --seed 7
  build/tools/mictrend pipeline --corpus "$work/corpus.csv" \
    --min-total 5 --seasonal false --cache write \
    --cache-dir "$work/cache" --out "$work/cold.csv" > /dev/null
  build/tools/mictrend pipeline --corpus "$work/corpus.csv" \
    --min-total 5 --seasonal false --cache rw \
    --cache-dir "$work/cache" --out "$work/warm.csv" \
    --metrics-out "$work/warm_metrics.json" > /dev/null
  cmp "$work/cold.csv" "$work/warm.csv"
  python3 - "$work/warm_metrics.json" << 'EOF'
import json, sys
counters = json.load(open(sys.argv[1]))["counters"]
assert counters.get("cache.hits", 0) > 0, counters
assert counters.get("cache.misses", 1) == 0, counters
assert counters.get("cache.read_errors", 1) == 0, counters
EOF
  echo "cache-smoke OK: warm rerun byte-identical with cache hits"
}

supports_presets() {
  cmake --list-presets >/dev/null 2>&1
}

sanitizer_for() {
  case "$1" in
    tsan) echo "thread" ;;
    asan) echo "address,undefined" ;;
    *) echo "" ;;
  esac
}

for preset in $PRESETS; do
  if [ "$preset" = "bench-smoke" ]; then
    bench_smoke
    continue
  fi
  if [ "$preset" = "cache-smoke" ]; then
    cache_smoke
    continue
  fi
  echo "==== ${preset}: configure + build + test ===="
  if supports_presets; then
    cmake --preset "$preset"
    cmake --build --preset "$preset" -j "$(nproc)"
    ctest --preset "$preset"
  else
    build_dir="build"
    [ "$preset" != "default" ] && build_dir="build-$preset"
    sanitize="$(sanitizer_for "$preset")"
    cmake -B "$build_dir" -S . \
      -DCMAKE_BUILD_TYPE="$([ -n "$sanitize" ] && echo RelWithDebInfo || echo Release)" \
      -DMICTREND_SANITIZE="$sanitize" \
      -DMICTREND_BUILD_BENCHMARKS="$([ -n "$sanitize" ] && echo OFF || echo ON)" \
      -DMICTREND_BUILD_EXAMPLES="$([ -n "$sanitize" ] && echo OFF || echo ON)"
    cmake --build "$build_dir" -j "$(nproc)"
    (cd "$build_dir" && ctest --output-on-failure)
  fi
done
echo "all stages green"
