#include "cache/fingerprint.h"

#include <bit>

namespace mic::cache {
namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ull;

}  // namespace

Hasher& Hasher::Mix(std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    state_ ^= (value >> shift) & 0xffu;
    state_ *= kFnvPrime;
  }
  return *this;
}

Hasher& Hasher::MixSigned(std::int64_t value) {
  return Mix(static_cast<std::uint64_t>(value));
}

Hasher& Hasher::MixDouble(double value) {
  return Mix(std::bit_cast<std::uint64_t>(value));
}

Hasher& Hasher::MixString(std::string_view text) {
  for (unsigned char byte : text) {
    state_ ^= byte;
    state_ *= kFnvPrime;
  }
  // Length terminator so "ab" + "c" != "a" + "bc".
  return Mix(text.size());
}

Hasher& Hasher::MixBytes(const std::uint8_t* data, std::size_t size) {
  std::uint64_t state = state_;
  for (std::size_t i = 0; i < size; ++i) {
    state ^= data[i];
    state *= kFnvPrime;
  }
  state_ = state;
  return *this;
}

std::uint64_t FingerprintMonth(const MonthlyDataset& month) {
  Hasher hasher;
  hasher.MixSigned(month.month());
  hasher.Mix(month.records().size());
  for (const MicRecord& record : month.records()) {
    hasher.Mix(record.hospital.value());
    hasher.Mix(record.patient.value());
    hasher.Mix(record.diseases.size());
    for (const DiseaseCount& entry : record.diseases) {
      hasher.Mix(entry.id.value());
      hasher.Mix(entry.count);
    }
    hasher.Mix(record.medicines.size());
    for (const MedicineCount& entry : record.medicines) {
      hasher.Mix(entry.id.value());
      hasher.Mix(entry.count);
    }
  }
  return hasher.digest();
}

std::uint64_t FingerprintSeries(const std::vector<double>& values) {
  Hasher hasher;
  hasher.Mix(values.size());
  for (double value : values) hasher.MixDouble(value);
  return hasher.digest();
}

std::string KeyToHex(std::uint64_t key) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[key & 0xfu];
    key >>= 4;
  }
  return out;
}

}  // namespace mic::cache
