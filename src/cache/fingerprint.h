// Content fingerprints for the incremental computation layer.
//
// Cache keys are 64-bit FNV-1a digests of the exact inputs a cached
// artifact depends on: the claim records of a month for EM snapshots,
// the observation values plus detector options for per-series analysis
// reports. Equal inputs hash equal on every platform (doubles are mixed
// by bit pattern, container contents in a canonical order), so a warm
// rerun recomputes the same keys as the cold run that wrote them and an
// edited month changes its key with near-certainty.

#ifndef MICTREND_CACHE_FINGERPRINT_H_
#define MICTREND_CACHE_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mic/dataset.h"

namespace mic::cache {

/// Streaming 64-bit FNV-1a hasher. Mix* calls fold values into the
/// running digest byte by byte; the order of calls is significant.
class Hasher {
 public:
  Hasher& Mix(std::uint64_t value);
  Hasher& MixSigned(std::int64_t value);
  /// Mixes the IEEE-754 bit pattern, so round-trips through the binary
  /// snapshot format (which stores raw bits) re-derive the same key.
  Hasher& MixDouble(double value);
  Hasher& MixString(std::string_view text);
  /// Folds a raw byte run in one call (one FNV step per byte, not
  /// eight) — the claim store checksums whole segments through this.
  Hasher& MixBytes(const std::uint8_t* data, std::size_t size);

  std::uint64_t digest() const { return state_; }

 private:
  std::uint64_t state_ = 14695981039346656037ull;
};

/// Digest of one month of claims: every record's hospital, patient, and
/// both (id, multiplicity) bags, in stored order.
std::uint64_t FingerprintMonth(const MonthlyDataset& month);

/// Digest of an observation series (values in order, by bit pattern).
std::uint64_t FingerprintSeries(const std::vector<double>& values);

/// Fixed-width lowercase-hex rendering of a key, used as the on-disk
/// entry file name.
std::string KeyToHex(std::uint64_t key);

}  // namespace mic::cache

#endif  // MICTREND_CACHE_FINGERPRINT_H_
