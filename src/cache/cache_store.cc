#include "cache/cache_store.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <system_error>
#include <thread>

#include "cache/fingerprint.h"
#include "obs/metrics.h"

namespace mic::cache {
namespace {

// Entry envelope: magic, format version, payload checksum, payload
// size, payload bytes. The checksum is the FNV digest of the payload,
// so a torn or bit-flipped entry is detected before deserialization.
constexpr std::uint32_t kMagic = 0x4d494343;  // "MICC"
constexpr std::uint32_t kFormatVersion = 1;

std::uint64_t PayloadChecksum(const std::vector<std::uint8_t>& payload) {
  Hasher hasher;
  hasher.Mix(payload.size());
  for (std::uint8_t byte : payload) {
    hasher.Mix(byte);
  }
  return hasher.digest();
}

void AppendU32(std::string& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xffu));
  }
}

void AppendU64(std::string& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xffu));
  }
}

std::uint64_t ReadFixed(const std::string& bytes, std::size_t offset,
                        std::size_t width) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < width; ++i) {
    value |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(bytes[offset + i]))
             << (8 * i);
  }
  return value;
}

constexpr std::size_t kHeaderSize = 4 + 4 + 8 + 8;

}  // namespace

Result<CacheMode> ParseCacheMode(std::string_view text) {
  if (text == "off") return CacheMode::kOff;
  if (text == "read") return CacheMode::kRead;
  if (text == "write") return CacheMode::kWrite;
  if (text == "rw") return CacheMode::kReadWrite;
  return Status::InvalidArgument("--cache must be one of off, read, "
                                 "write, rw; got '" +
                                 std::string(text) + "'");
}

std::string_view CacheModeName(CacheMode mode) {
  switch (mode) {
    case CacheMode::kOff:
      return "off";
    case CacheMode::kRead:
      return "read";
    case CacheMode::kWrite:
      return "write";
    case CacheMode::kReadWrite:
      return "rw";
  }
  return "off";
}

CacheStore::CacheStore(std::string directory, CacheMode mode,
                       obs::MetricsRegistry* metrics)
    : directory_(std::move(directory)), mode_(mode) {
  hits_ = obs::GetCounter(metrics, "cache.hits");
  misses_ = obs::GetCounter(metrics, "cache.misses");
  read_errors_ = obs::GetCounter(metrics, "cache.read_errors");
  bytes_read_ = obs::GetCounter(metrics, "cache.bytes_read");
  bytes_written_ = obs::GetCounter(metrics, "cache.bytes_written");
}

Status CacheStore::Open() {
  if (mode_ == CacheMode::kOff) {
    opened_ = false;
    return Status::OK();
  }
  if (directory_.empty()) {
    return Status::InvalidArgument(
        "cache directory is empty (--cache-dir is required when "
        "--cache is not off)");
  }
  std::error_code error;
  std::filesystem::create_directories(directory_, error);
  if (error) {
    return Status::IoError("cannot create cache directory '" + directory_ +
                           "': " + error.message());
  }
  if (!std::filesystem::is_directory(directory_, error)) {
    return Status::IoError("cache path '" + directory_ +
                           "' is not a directory");
  }
  opened_ = true;
  return Status::OK();
}

bool CacheStore::can_read() const {
  return opened_ &&
         (mode_ == CacheMode::kRead || mode_ == CacheMode::kReadWrite);
}

bool CacheStore::can_write() const {
  return opened_ &&
         (mode_ == CacheMode::kWrite || mode_ == CacheMode::kReadWrite);
}

std::string CacheStore::EntryPath(std::string_view ns,
                                  std::uint64_t key) const {
  std::string path = directory_;
  path += '/';
  path += ns;
  path += '/';
  path += KeyToHex(key);
  path += ".snap";
  return path;
}

Result<std::vector<std::uint8_t>> CacheStore::Get(std::string_view ns,
                                                  std::uint64_t key) {
  if (!can_read()) {
    obs::Increment(misses_);
    return Status::NotFound("cache is not readable in mode '" +
                            std::string(CacheModeName(mode_)) + "'");
  }
  const std::string path = EntryPath(ns, key);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    obs::Increment(misses_);
    return Status::NotFound("no cache entry at " + path);
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    obs::Increment(misses_);
    obs::Increment(read_errors_);
    return Status::IoError("failed reading cache entry " + path);
  }
  if (bytes.size() < kHeaderSize) {
    obs::Increment(misses_);
    obs::Increment(read_errors_);
    return Status::FailedPrecondition("truncated cache entry " + path);
  }
  if (ReadFixed(bytes, 0, 4) != kMagic) {
    obs::Increment(misses_);
    obs::Increment(read_errors_);
    return Status::FailedPrecondition("bad magic in cache entry " + path);
  }
  if (ReadFixed(bytes, 4, 4) != kFormatVersion) {
    // A future format bump reads as a plain miss: old entries are
    // simply recomputed under the new version.
    obs::Increment(misses_);
    return Status::NotFound("cache entry " + path +
                            " has an unsupported format version");
  }
  const std::uint64_t checksum = ReadFixed(bytes, 8, 8);
  const std::uint64_t payload_size = ReadFixed(bytes, 16, 8);
  if (bytes.size() - kHeaderSize != payload_size) {
    obs::Increment(misses_);
    obs::Increment(read_errors_);
    return Status::FailedPrecondition("truncated cache entry " + path);
  }
  std::vector<std::uint8_t> payload(bytes.begin() + kHeaderSize,
                                    bytes.end());
  if (PayloadChecksum(payload) != checksum) {
    obs::Increment(misses_);
    obs::Increment(read_errors_);
    return Status::FailedPrecondition("checksum mismatch in cache entry " +
                                      path);
  }
  obs::Increment(hits_);
  obs::Increment(bytes_read_, bytes.size());
  return payload;
}

Status CacheStore::Put(std::string_view ns, std::uint64_t key,
                       const std::vector<std::uint8_t>& payload) {
  if (!can_write()) return Status::OK();

  std::error_code error;
  const std::string dir = directory_ + '/' + std::string(ns);
  std::filesystem::create_directories(dir, error);
  if (error) {
    return Status::IoError("cannot create cache namespace '" + dir +
                           "': " + error.message());
  }

  std::string bytes;
  bytes.reserve(kHeaderSize + payload.size());
  AppendU32(bytes, kMagic);
  AppendU32(bytes, kFormatVersion);
  AppendU64(bytes, PayloadChecksum(payload));
  AppendU64(bytes, payload.size());
  bytes.append(reinterpret_cast<const char*>(payload.data()),
               payload.size());

  // Stage + rename so a reader never observes a half-written entry.
  // The temp name embeds the writing thread; concurrent writers of the
  // same key carry identical content-addressed bytes, so either rename
  // winning is fine.
  const std::string path = EntryPath(ns, key);
  const std::string tmp =
      path + ".tmp" +
      std::to_string(std::hash<std::thread::id>{}(std::this_thread::get_id()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IoError("cannot open cache temp file " + tmp);
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      return Status::IoError("failed writing cache entry " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot publish cache entry " + path);
  }
  obs::Increment(bytes_written_, bytes.size());
  return Status::OK();
}

}  // namespace mic::cache
