// Little binary snapshot format used by every cached artifact.
//
// The writer appends fixed-width little-endian integers and raw
// IEEE-754 double bits; the reader consumes them in the same order and
// fails with a Status (never aborts) on truncation, so a corrupted or
// stale cache entry degrades to a cold recompute. Doubles round-trip
// bit-exactly, which is what makes a warm rerun byte-identical to the
// cold run that populated the cache.

#ifndef MICTREND_CACHE_SNAPSHOT_IO_H_
#define MICTREND_CACHE_SNAPSHOT_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace mic::cache {

/// Append-only byte buffer with typed put helpers.
class SnapshotWriter {
 public:
  void PutU32(std::uint32_t value);
  void PutU64(std::uint64_t value);
  void PutI64(std::int64_t value);
  void PutDouble(double value);
  void PutString(std::string_view text);

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> Take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Sequential reader over a snapshot payload. Every getter returns
/// FailedPrecondition once the payload runs short; callers bail out via
/// MIC_ASSIGN_OR_RETURN and fall back to the cold path.
class SnapshotReader {
 public:
  explicit SnapshotReader(const std::vector<std::uint8_t>& bytes)
      : bytes_(bytes.data()), size_(bytes.size()) {}
  /// View form for payloads that never lived in a vector (the claim
  /// store reads straight out of a memory-mapped segment).
  SnapshotReader(const std::uint8_t* bytes, std::size_t size)
      : bytes_(bytes), size_(size) {}

  Result<std::uint32_t> U32();
  Result<std::uint64_t> U64();
  Result<std::int64_t> I64();
  Result<double> Double();
  Result<std::string> String();

  /// Reads `count` little-endian u32s into `out` with one bounds check.
  /// The claim store's column loads are too hot for a per-element
  /// Result round trip; the tight loop here is what makes a store load
  /// beat re-parsing the CSV.
  Status U32Column(std::uint32_t* out, std::size_t count);

  /// Bytes left to consume; deserializers use it to sanity-check
  /// untrusted element counts before allocating.
  std::size_t remaining() const { return size_ - offset_; }

  /// True when every byte has been consumed; deserializers check this
  /// to reject payloads with trailing garbage.
  bool AtEnd() const { return offset_ == size_; }

 private:
  Result<std::uint64_t> Fixed(std::size_t width);

  const std::uint8_t* bytes_;
  std::size_t size_;
  std::size_t offset_ = 0;
};

}  // namespace mic::cache

#endif  // MICTREND_CACHE_SNAPSHOT_IO_H_
