// CacheStore: the content-addressed on-disk store behind the
// incremental monthly-update engine.
//
// Entries live under `<directory>/<namespace>/<key-hex>.snap`, where the
// namespace names the artifact kind ("em" for fitted medication-model
// snapshots, "series" for per-series analysis reports) and the key is a
// cache::Hasher fingerprint of everything the artifact depends on. A
// key therefore identifies its content: entries are never updated in
// place and never invalidated explicitly — a changed input simply hashes
// to a different key and the stale entry is ignored.
//
// Failure policy: the cache is an accelerator, not a source of truth.
// Every read failure — missing entry, truncated file, checksum or
// version mismatch, I/O error — surfaces as a non-OK Result that the
// caller treats as a miss and recomputes cold; write failures are
// reported but never abort a run. Concurrent writers are safe: Put
// stages through a per-key temp file and renames into place.
//
// When a MetricsRegistry is attached, the store exports
// cache.hits / cache.misses / cache.read_errors / cache.bytes_read /
// cache.bytes_written. Hit and miss totals are deterministic for a
// fixed starting cache state (each lookup's outcome is a pure function
// of the inputs and the state), so they are safe to assert on in tests.

#ifndef MICTREND_CACHE_CACHE_STORE_H_
#define MICTREND_CACHE_CACHE_STORE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace mic::obs {
class Counter;
class MetricsRegistry;
}  // namespace mic::obs

namespace mic::cache {

/// What a run is allowed to do with the store. kRead serves hits but
/// never writes (useful against a read-only shared cache); kWrite
/// populates without consulting (a "cold" run that seeds the cache);
/// kReadWrite is the normal incremental mode.
enum class CacheMode { kOff, kRead, kWrite, kReadWrite };

/// Parses the --cache flag value {off, read, write, rw}.
Result<CacheMode> ParseCacheMode(std::string_view text);
std::string_view CacheModeName(CacheMode mode);

class CacheStore {
 public:
  /// The store is inert until Open() succeeds. `metrics` (not owned,
  /// may be null) receives the cache.* counters.
  CacheStore(std::string directory, CacheMode mode,
             obs::MetricsRegistry* metrics = nullptr);

  /// Creates the cache directory if needed. Fails with IoError when the
  /// path cannot be created or is not a directory.
  Status Open();

  bool can_read() const;
  bool can_write() const;
  CacheMode mode() const { return mode_; }
  const std::string& directory() const { return directory_; }

  /// Looks up an entry. Returns the payload on a verified hit; NotFound
  /// on a miss; FailedPrecondition/IoError when an entry exists but is
  /// corrupt or unreadable (counted as cache.read_errors). Callers
  /// treat every non-OK result as "recompute cold".
  Result<std::vector<std::uint8_t>> Get(std::string_view ns,
                                        std::uint64_t key);

  /// Stores an entry. No-op (OK) when the mode does not allow writes.
  /// Concurrent Put calls for distinct keys never interfere; a lost
  /// race on the same key leaves either writer's identical bytes.
  Status Put(std::string_view ns, std::uint64_t key,
             const std::vector<std::uint8_t>& payload);

 private:
  std::string EntryPath(std::string_view ns, std::uint64_t key) const;

  std::string directory_;
  CacheMode mode_;
  bool opened_ = false;
  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Counter* read_errors_ = nullptr;
  obs::Counter* bytes_read_ = nullptr;
  obs::Counter* bytes_written_ = nullptr;
};

}  // namespace mic::cache

#endif  // MICTREND_CACHE_CACHE_STORE_H_
