#include "cache/snapshot_io.h"

#include <bit>

namespace mic::cache {

void SnapshotWriter::PutU32(std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    bytes_.push_back(static_cast<std::uint8_t>((value >> shift) & 0xffu));
  }
}

void SnapshotWriter::PutU64(std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    bytes_.push_back(static_cast<std::uint8_t>((value >> shift) & 0xffu));
  }
}

void SnapshotWriter::PutI64(std::int64_t value) {
  PutU64(static_cast<std::uint64_t>(value));
}

void SnapshotWriter::PutDouble(double value) {
  PutU64(std::bit_cast<std::uint64_t>(value));
}

void SnapshotWriter::PutString(std::string_view text) {
  PutU64(text.size());
  bytes_.insert(bytes_.end(), text.begin(), text.end());
}

Result<std::uint64_t> SnapshotReader::Fixed(std::size_t width) {
  if (size_ - offset_ < width) {
    return Status::FailedPrecondition("truncated snapshot payload");
  }
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < width; ++i) {
    value |= static_cast<std::uint64_t>(bytes_[offset_ + i]) << (8 * i);
  }
  offset_ += width;
  return value;
}

Status SnapshotReader::U32Column(std::uint32_t* out, std::size_t count) {
  if ((size_ - offset_) / 4 < count) {
    return Status::FailedPrecondition("truncated snapshot payload");
  }
  const std::uint8_t* src = bytes_ + offset_;
  for (std::size_t i = 0; i < count; ++i, src += 4) {
    out[i] = static_cast<std::uint32_t>(src[0]) |
             (static_cast<std::uint32_t>(src[1]) << 8) |
             (static_cast<std::uint32_t>(src[2]) << 16) |
             (static_cast<std::uint32_t>(src[3]) << 24);
  }
  offset_ += count * 4;
  return Status::OK();
}

Result<std::uint32_t> SnapshotReader::U32() {
  MIC_ASSIGN_OR_RETURN(std::uint64_t value, Fixed(4));
  return static_cast<std::uint32_t>(value);
}

Result<std::uint64_t> SnapshotReader::U64() { return Fixed(8); }

Result<std::int64_t> SnapshotReader::I64() {
  MIC_ASSIGN_OR_RETURN(std::uint64_t value, Fixed(8));
  return static_cast<std::int64_t>(value);
}

Result<double> SnapshotReader::Double() {
  MIC_ASSIGN_OR_RETURN(std::uint64_t value, Fixed(8));
  return std::bit_cast<double>(value);
}

Result<std::string> SnapshotReader::String() {
  MIC_ASSIGN_OR_RETURN(std::uint64_t length, U64());
  if (size_ - offset_ < length) {
    return Status::FailedPrecondition("truncated snapshot payload");
  }
  std::string out(reinterpret_cast<const char*>(bytes_ + offset_),
                  static_cast<std::size_t>(length));
  offset_ += static_cast<std::size_t>(length);
  return out;
}

}  // namespace mic::cache
