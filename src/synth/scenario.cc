#include "synth/scenario.h"

#include <string>

#include "common/rng.h"

namespace mic::synth {
namespace {

using names::kAcuteBronchitis;
using names::kAlzheimers;
using names::kAnalgesic;
using names::kAntibiotic;
using names::kAntidiarrheal;
using names::kAntihistamine;
using names::kAntiPlateletGeneric1;
using names::kAntiPlateletGeneric2;
using names::kAntiPlateletGeneric3;
using names::kAntiPlateletOriginal;
using names::kAntiviral;
using names::kArthritis;
using names::kBronchialAsthma;
using names::kCerebralInfarction;
using names::kChronicBronchitis;
using names::kClassicBronchodilator;
using names::kColdSyndrome;
using names::kCopd;
using names::kCopdBronchodilator;
using names::kDehydration;
using names::kDementiaDrug;
using names::kDementiaSymptomatic;
using names::kDepressor;
using names::kDiarrhea;
using names::kHayFever;
using names::kHeatstroke;
using names::kHypertension;
using names::kInfluenza;
using names::kLewyBodyDementia;
using names::kLowBackPain;
using names::kNewBronchodilator;
using names::kNewOsteoporosisDrug;
using names::kOldOsteoporosisDrug;
using names::kOralFeedingDifficulty;
using names::kOsteoporosis;
using names::kPneumonia;
using names::kRehydrationSalt;
using names::kSwallowingAid;

// Calendar months (0 = January).
constexpr int kMarch = 2;
constexpr int kApril = 3;
constexpr int kJuly = 6;
constexpr int kAugust = 7;
constexpr int kJanuary = 0;

void AddScriptedDiseases(WorldConfig& config) {
  using E = PaperWorldEvents;

  // Chronic, season-flat diseases.
  // Hypertension is diagnosed monthly on every chronic patient but a
  // depressor line appears less often than pain medication does — the
  // imbalance behind Fig. 2's cooccurrence mis-prediction.
  config.diseases.push_back({.name = kHypertension,
                             .base_weight = 0.2,
                             .chronic_fraction = 0.30,
                             .medication_intensity = 0.45});
  config.diseases.push_back({.name = kOsteoporosis,
                             .base_weight = 0.1,
                             .chronic_fraction = 0.12,
                             .medication_intensity = 0.8});
  config.diseases.push_back({.name = kCopd,
                             .base_weight = 0.08,
                             .chronic_fraction = 0.08,
                             .medication_intensity = 0.9});
  config.diseases.push_back({.name = kBronchialAsthma,
                             .base_weight = 0.08,
                             .chronic_fraction = 0.06,
                             .medication_intensity = 0.9});
  config.diseases.push_back({.name = kChronicBronchitis,
                             .base_weight = 0.08,
                             .chronic_fraction = 0.05,
                             .medication_intensity = 0.8});
  config.diseases.push_back({.name = kLewyBodyDementia,
                             .base_weight = 0.04,
                             .chronic_fraction = 0.06,
                             .medication_intensity = 0.9});
  config.diseases.push_back({.name = kAlzheimers,
                             .base_weight = 0.06,
                             .chronic_fraction = 0.06,
                             .medication_intensity = 0.7});
  config.diseases.push_back({.name = kCerebralInfarction,
                             .base_weight = 0.05,
                             .chronic_fraction = 0.08,
                             .medication_intensity = 0.9});

  // Seasonal acute diseases (Fig. 3a / 6a / 6b).
  config.diseases.push_back(
      {.name = kHayFever,
       .base_weight = 2.0,
       .seasonality = {.amplitude = 1.0, .peak_month = kApril,
                       .sharpness = 2.5},
       .medication_intensity = 0.9});
  config.diseases.push_back(
      {.name = kHeatstroke,
       .base_weight = 0.8,
       .seasonality = {.amplitude = 1.0, .peak_month = kAugust,
                       .sharpness = 2.0},
       .medication_intensity = 0.7});
  DiseaseSpec influenza{
      .name = kInfluenza,
      .base_weight = 1.6,
      .seasonality = {.amplitude = 1.2, .peak_month = kJanuary,
                      .sharpness = 3.0},
      .medication_intensity = 1.0};
  // Winter 2014-15 outbreak: a two-month spike treated as an outlier by
  // the state space model (Fig. 6a).
  influenza.outlier_multipliers[E::kOutbreakMonth] = 2.6;
  influenza.outlier_multipliers[E::kOutbreakMonth + 1] = 2.0;
  config.diseases.push_back(std::move(influenza));
  config.diseases.push_back(
      {.name = kDiarrhea,
       .base_weight = 1.0,
       // Two peaks per year at the season changes (Fig. 6b).
       .seasonality = {.amplitude = 0.25,
                       .peak_month = kApril,
                       .second_amplitude = 0.45,
                       .second_peak_month = kApril},
       .medication_intensity = 0.8});

  // Pain conditions treated with the broad-use analgesic (the Fig. 2
  // confounder: they cooccur with hypertension in elderly records).
  config.diseases.push_back({.name = kLowBackPain,
                             .base_weight = 1.8,
                             .chronic_fraction = 0.22,
                             .medication_intensity = 1.3});
  config.diseases.push_back({.name = kArthritis,
                             .base_weight = 1.2,
                             .chronic_fraction = 0.15,
                             .medication_intensity = 1.3});

  // Respiratory infections (Table II workload).
  config.diseases.push_back(
      {.name = kColdSyndrome,
       .base_weight = 2.2,
       .seasonality = {.amplitude = 0.5, .peak_month = kJanuary},
       .medication_intensity = 0.8});
  config.diseases.push_back(
      {.name = kAcuteBronchitis,
       .base_weight = 1.4,
       .seasonality = {.amplitude = 0.4, .peak_month = kJanuary},
       .medication_intensity = 0.9});
  config.diseases.push_back(
      {.name = kPneumonia,
       .base_weight = 0.5,
       .seasonality = {.amplitude = 0.3, .peak_month = kJanuary},
       .medication_intensity = 1.0});

  // Diagnostic substitution pair (Fig. 7b): oral feeding difficulty
  // rises from t = kDiagnosticSubstitution while dehydration declines.
  DiseaseSpec feeding{.name = kOralFeedingDifficulty,
                      .base_weight = 0.25,
                      .medication_intensity = 0.8};
  feeding.prevalence_events.push_back(
      {.month = E::kDiagnosticSubstitution,
       .target_multiplier = 4.5,
       .ramp_months = 8});
  config.diseases.push_back(std::move(feeding));
  DiseaseSpec dehydration{
      .name = kDehydration,
      .base_weight = 0.8,
      .seasonality = {.amplitude = 0.35, .peak_month = kAugust},
      .medication_intensity = 0.8};
  dehydration.prevalence_events.push_back(
      {.month = E::kDiagnosticSubstitution,
       .target_multiplier = 0.3,
       .ramp_months = 8});
  config.diseases.push_back(std::move(dehydration));
}

void AddScriptedMedicines(WorldConfig& config) {
  using E = PaperWorldEvents;

  // Fig. 2: depressor (effective for hypertension) vs broad-use
  // analgesic (no hypertension indication but massive cooccurrence).
  config.medicines.push_back(
      {.name = kDepressor,
       .propensity = 1.0,
       .indications = {{.disease = kHypertension, .weight = 1.0}}});
  config.medicines.push_back(
      {.name = kAnalgesic,
       .propensity = 1.4,
       .indications = {{.disease = kLowBackPain, .weight = 1.0},
                       {.disease = kArthritis, .weight = 1.0}}});

  // Seasonal symptomatic medicines (Fig. 3a).
  config.medicines.push_back(
      {.name = kAntihistamine,
       .indications = {{.disease = kHayFever, .weight = 1.0}}});
  config.medicines.push_back(
      {.name = kRehydrationSalt,
       .indications = {{.disease = kHeatstroke, .weight = 1.0},
                       {.disease = kDehydration, .weight = 1.0}}});
  config.medicines.push_back(
      {.name = kAntiviral,
       .indications = {{.disease = kInfluenza, .weight = 1.0}}});
  config.medicines.push_back(
      {.name = kAntidiarrheal,
       .indications = {{.disease = kDiarrhea, .weight = 1.0}}});

  // Fig. 3b / 6c analogues: brand-new medicines released mid-window.
  // Adoption is gradual (physicians switch over months), producing the
  // rising-slope shape the slope-shift intervention models: propensity
  // starts low at release and ramps towards its plateau.
  MedicineSpec broncho_new{
      .name = kNewBronchodilator,
      .release_month = E::kBronchodilatorRelease,
      .propensity = 1.2,
      .indications = {{.disease = kCopd, .weight = 1.0},
                      {.disease = kBronchialAsthma, .weight = 0.8},
                      {.disease = kChronicBronchitis, .weight = 0.6}}};
  broncho_new.propensity_events = {
      {.month = 0, .target_multiplier = 0.1},
      {.month = E::kBronchodilatorRelease, .target_multiplier = 1.0,
       .ramp_months = 26}};
  config.medicines.push_back(std::move(broncho_new));
  MedicineSpec osteo_new{
      .name = kNewOsteoporosisDrug,
      .release_month = E::kOsteoporosisRelease,
      .propensity = 1.5,
      .indications = {{.disease = kOsteoporosis, .weight = 1.0}}};
  osteo_new.propensity_events = {
      {.month = 0, .target_multiplier = 0.1},
      {.month = E::kOsteoporosisRelease, .target_multiplier = 1.0,
       .ramp_months = 30}};
  config.medicines.push_back(std::move(osteo_new));
  MedicineSpec osteo_old{
      .name = kOldOsteoporosisDrug,
      .propensity = 1.0,
      .indications = {{.disease = kOsteoporosis, .weight = 1.0}}};
  // The incumbent loses share once the new drug is on sale (Fig. 6c
  // bottom panel).
  osteo_old.propensity_events.push_back({.month = E::kOsteoporosisRelease,
                                         .target_multiplier = 0.45,
                                         .ramp_months = 24});
  config.medicines.push_back(std::move(osteo_old));

  // Fig. 3c / 7a analogues: indication expansion on existing medicines.
  config.medicines.push_back(
      {.name = kCopdBronchodilator,
       .propensity = 1.0,
       .indications = {{.disease = kCopd, .weight = 1.0},
                       {.disease = kChronicBronchitis, .weight = 0.7},
                       {.disease = kBronchialAsthma,
                        .weight = 0.9,
                        .start_month = E::kAsthmaIndicationExpansion,
                        .ramp_months = 18}}});
  config.medicines.push_back(
      {.name = kClassicBronchodilator,
       .propensity = 0.9,
       .indications = {{.disease = kCopd, .weight = 0.8},
                       {.disease = kBronchialAsthma, .weight = 1.0},
                       {.disease = kChronicBronchitis, .weight = 0.6}}});
  config.medicines.push_back(
      {.name = kDementiaDrug,
       .propensity = 1.0,
       .indications = {{.disease = kAlzheimers, .weight = 1.0},
                       {.disease = kLewyBodyDementia,
                        .weight = 1.8,
                        .start_month = E::kLewyIndicationExpansion,
                        .ramp_months = 20}}});
  // Incumbent symptomatic treatment for the dementias: gives the
  // expanding indication a competitor so its share (and the pair
  // series) grows gradually rather than jumping.
  config.medicines.push_back(
      {.name = kDementiaSymptomatic,
       .propensity = 1.0,
       .indications = {{.disease = kLewyBodyDementia, .weight = 1.0},
                       {.disease = kAlzheimers, .weight = 0.4}}});
  config.medicines.push_back(
      {.name = kSwallowingAid,
       .propensity = 1.0,
       .indications = {{.disease = kOralFeedingDifficulty, .weight = 1.0},
                       {.disease = kCerebralInfarction, .weight = 0.4}}});

  // Fig. 6d / Fig. 8: anti-platelet original with three generics entering
  // at kGenericEntry; adoption is staggered across cities, and
  // generic-3 (the authorized generic) dominates.
  MedicineSpec original{
      .name = kAntiPlateletOriginal,
      .propensity = 1.6,
      .indications = {{.disease = kCerebralInfarction, .weight = 1.0}}};
  // Share erosion starts abruptly at the generics' entry and continues
  // through the end of the window (the paper's Fig. 6d decline does not
  // plateau before the window closes).
  original.propensity_events.push_back(
      {.month = E::kGenericEntry, .target_multiplier = 0.55,
       .ramp_months = 2});
  original.propensity_events.push_back(
      {.month = E::kGenericEntry + 3, .target_multiplier = 0.06,
       .ramp_months = 26});
  config.medicines.push_back(std::move(original));
  const struct {
    const char* name;
    double propensity;
  } generics[] = {{kAntiPlateletGeneric1, 0.35},
                  {kAntiPlateletGeneric2, 0.45},
                  {kAntiPlateletGeneric3, 0.95}};
  for (const auto& generic : generics) {
    MedicineSpec spec{
        .name = generic.name,
        .release_month = E::kGenericEntry,
        .propensity = generic.propensity,
        .indications = {{.disease = kCerebralInfarction, .weight = 1.0}},
        .generic_of = kAntiPlateletOriginal};
    // Northern cities keep using the original longer (Fig. 8's
    // northernmost holdout).
    spec.city_release_delays["north-city"] = 12;
    spec.city_release_delays["hill-city"] = 4;
    config.medicines.push_back(std::move(spec));
  }

  // Table II: antibiotic indicated for bacterial infections only.
  config.medicines.push_back(
      {.name = kAntibiotic,
       .propensity = 1.2,
       .indications = {{.disease = kAcuteBronchitis, .weight = 1.0},
                       {.disease = kPneumonia, .weight = 0.9},
                       {.disease = kChronicBronchitis, .weight = 0.5}}});
}

void AddClassBiases(WorldConfig& config) {
  // §VII-C: small hospitals prescribe antibiotics for virus-caused
  // diseases; medium hospitals a little; large hospitals essentially not.
  config.class_biases.push_back({.hospital_class = HospitalClass::kSmall,
                                 .medicine = kAntibiotic,
                                 .disease = kColdSyndrome,
                                 .weight = 1.6});
  config.class_biases.push_back({.hospital_class = HospitalClass::kSmall,
                                 .medicine = kAntibiotic,
                                 .disease = kInfluenza,
                                 .weight = 0.7});
  config.class_biases.push_back({.hospital_class = HospitalClass::kMedium,
                                 .medicine = kAntibiotic,
                                 .disease = kColdSyndrome,
                                 .weight = 0.08});
}

void AddBackgroundPopulation(const PaperWorldOptions& options,
                             WorldConfig& config) {
  Rng rng(options.seed ^ 0xB06DFACADEULL);
  for (std::size_t i = 0; i < options.num_background_diseases; ++i) {
    DiseaseSpec disease;
    disease.name = "bg-disease-" + std::to_string(i);
    disease.base_weight = 0.1 + 1.4 * rng.NextDouble();
    // Most real diseases carry clear seasonality (the paper's Table IV
    // shows the seasonal component helping disease series the most).
    if (rng.NextBernoulli(0.7)) {
      disease.seasonality.amplitude = 0.35 + 0.65 * rng.NextDouble();
      disease.seasonality.peak_month = static_cast<int>(rng.NextInt(0, 11));
      disease.seasonality.sharpness = 1.0 + 2.5 * rng.NextDouble();
    }
    if (rng.NextBernoulli(0.2)) {
      disease.chronic_fraction = 0.01 + 0.05 * rng.NextDouble();
    }
    disease.medication_intensity = 0.5 + 0.6 * rng.NextDouble();
    config.diseases.push_back(disease);

    const std::size_t num_medicines = 1 + rng.NextBounded(
        options.max_medicines_per_background_disease);
    for (std::size_t j = 0; j < num_medicines; ++j) {
      MedicineSpec medicine;
      medicine.name =
          "bg-medicine-" + std::to_string(i) + "-" + std::to_string(j);
      medicine.propensity = 0.4 + 1.2 * rng.NextDouble();
      medicine.indications.push_back(
          {.disease = disease.name, .weight = 0.5 + rng.NextDouble()});
      // Cross-indication to a previous background disease sometimes, so
      // background records interleave diseases.
      if (i > 0 && rng.NextBernoulli(0.35)) {
        medicine.indications.push_back(
            {.disease = "bg-disease-" + std::to_string(rng.NextBounded(i)),
             .weight = 0.2 + 0.6 * rng.NextDouble()});
      }
      if (rng.NextBernoulli(options.background_event_fraction)) {
        if (rng.NextBernoulli(0.5)) {
          // Mid-window release.
          medicine.release_month =
              static_cast<int>(rng.NextInt(4, options.num_months - 8));
        } else {
          // Propensity shift (price revision / competitor entry).
          medicine.propensity_events.push_back(
              {.month = static_cast<int>(
                   rng.NextInt(6, options.num_months - 6)),
               .target_multiplier = rng.NextBernoulli(0.5) ? 2.2 : 0.4,
               .ramp_months = static_cast<int>(rng.NextInt(0, 6))});
        }
      }
      config.medicines.push_back(std::move(medicine));
    }
  }
}

}  // namespace

WorldConfig MakePaperWorldConfig(const PaperWorldOptions& options) {
  WorldConfig config;
  config.num_months = options.num_months;
  config.start_calendar_month = kMarch;  // Paper window starts March 2013.
  config.seed = options.seed;

  AddScriptedDiseases(config);
  AddScriptedMedicines(config);
  AddClassBiases(config);
  AddBackgroundPopulation(options, config);

  config.cities = {{"port-city", 3.0}, {"river-city", 2.0},
                   {"hill-city", 1.5}, {"north-city", 1.0},
                   {"coast-city", 1.5}};
  config.hospitals.count = options.num_hospitals;
  config.patients.count = options.num_patients;
  return config;
}

Result<World> MakePaperWorld(const PaperWorldOptions& options) {
  return World::Create(MakePaperWorldConfig(options));
}

WorldConfig MakeTinyWorldConfig(int num_months, std::uint64_t seed) {
  WorldConfig config;
  config.num_months = num_months;
  config.seed = seed;
  config.diseases = {
      {.name = "flu",
       .base_weight = 1.0,
       .seasonality = {.amplitude = 0.8, .peak_month = 0},
       .medication_intensity = 1.0},
      {.name = "bp", .base_weight = 0.3, .chronic_fraction = 0.4,
       .medication_intensity = 1.0},
      {.name = "pain", .base_weight = 1.0, .medication_intensity = 0.9},
  };
  config.medicines = {
      {.name = "antiviral",
       .indications = {{.disease = "flu", .weight = 1.0}}},
      {.name = "depressor",
       .indications = {{.disease = "bp", .weight = 1.0}}},
      {.name = "analgesic",
       .propensity = 1.3,
       .indications = {{.disease = "pain", .weight = 1.0}}},
      {.name = "new-drug",
       .release_month = num_months / 2,
       .propensity = 1.2,
       .indications = {{.disease = "pain", .weight = 0.8}},
       // Gradual adoption after release, still rising when the window
       // closes: the slope shape a change point detector should find.
       .propensity_events = {{.month = 0, .target_multiplier = 0.1},
                             {.month = num_months / 2,
                              .target_multiplier = 1.0,
                              .ramp_months = num_months}}},
  };
  config.cities = {{"a", 1.0}, {"b", 1.0}};
  config.hospitals.count = 6;
  config.patients.count = 300;
  config.patients.mean_acute_diseases = 1.5;
  return config;
}

}  // namespace mic::synth
