#include "synth/world.h"

#include <cmath>
#include <set>
#include <unordered_set>

namespace mic::synth {
namespace {

constexpr double kPi = 3.14159265358979323846;

}  // namespace

double EventMultiplier(const std::vector<ScheduledEvent>& events, int t) {
  double multiplier = 1.0;
  for (const ScheduledEvent& event : events) {
    if (t < event.month) continue;
    if (event.ramp_months <= 0 || t >= event.month + event.ramp_months) {
      multiplier = event.target_multiplier;
    } else {
      const double progress = static_cast<double>(t - event.month) /
                              static_cast<double>(event.ramp_months);
      multiplier += (event.target_multiplier - multiplier) * progress;
    }
  }
  return multiplier;
}

double SeasonalityProfile::Multiplier(int calendar_month) const {
  const double phase1 =
      2.0 * kPi * static_cast<double>(calendar_month - peak_month) / 12.0;
  const double phase2 =
      4.0 * kPi * static_cast<double>(calendar_month - second_peak_month) /
      12.0;
  const double shaped =
      std::pow(0.5 * (std::cos(phase1) + 1.0), std::max(sharpness, 1.0));
  const double value = 1.0 + amplitude * (2.0 * shaped - 1.0) +
                       second_amplitude * std::cos(phase2);
  return value > 0.0 ? value : 0.0;
}

Result<World> World::Create(WorldConfig config) {
  if (config.num_months <= 0) {
    return Status::InvalidArgument("num_months must be positive");
  }
  if (config.start_calendar_month < 0 || config.start_calendar_month > 11) {
    return Status::InvalidArgument("start_calendar_month must be in [0,11]");
  }
  if (config.diseases.empty() || config.medicines.empty()) {
    return Status::InvalidArgument("world needs diseases and medicines");
  }
  if (config.cities.empty()) {
    config.cities.push_back({"city-0", 1.0});
  }
  if (config.hospitals.count == 0 || config.patients.count == 0) {
    return Status::InvalidArgument("world needs hospitals and patients");
  }

  World world;
  world.catalog_ = std::make_shared<Catalog>();
  Catalog& catalog = *world.catalog_;

  // Intern diseases; names must be unique.
  std::unordered_map<std::string, std::size_t> disease_by_name;
  for (std::size_t i = 0; i < config.diseases.size(); ++i) {
    const DiseaseSpec& spec = config.diseases[i];
    if (spec.name.empty()) {
      return Status::InvalidArgument("disease with empty name");
    }
    if (!disease_by_name.emplace(spec.name, i).second) {
      return Status::AlreadyExists("duplicate disease name: " + spec.name);
    }
    if (spec.base_weight < 0 || spec.chronic_fraction < 0 ||
        spec.chronic_fraction > 1 || spec.medication_intensity < 0) {
      return Status::InvalidArgument("invalid parameters for disease " +
                                     spec.name);
    }
    const DiseaseId id = catalog.diseases().Intern(spec.name);
    world.disease_ids_.push_back(id);
    world.disease_index_.emplace(id, i);
  }

  // Intern cities.
  std::unordered_map<std::string, CityId> city_by_name;
  for (const CitySpec& city : config.cities) {
    if (city.name.empty() || city.population_weight < 0) {
      return Status::InvalidArgument("invalid city spec");
    }
    if (city_by_name.count(city.name) > 0) {
      return Status::AlreadyExists("duplicate city name: " + city.name);
    }
    city_by_name.emplace(city.name, catalog.cities().Intern(city.name));
  }

  // Intern medicines and resolve indications.
  std::unordered_map<std::string, std::size_t> medicine_by_name;
  for (std::size_t i = 0; i < config.medicines.size(); ++i) {
    const MedicineSpec& spec = config.medicines[i];
    if (spec.name.empty()) {
      return Status::InvalidArgument("medicine with empty name");
    }
    if (!medicine_by_name.emplace(spec.name, i).second) {
      return Status::AlreadyExists("duplicate medicine name: " + spec.name);
    }
    if (spec.propensity < 0 || spec.release_month < 0) {
      return Status::InvalidArgument("invalid parameters for medicine " +
                                     spec.name);
    }
    const MedicineId id = catalog.medicines().Intern(spec.name);
    world.medicine_ids_.push_back(id);
    world.medicine_index_.emplace(id, i);
  }

  world.indications_.resize(config.diseases.size());
  world.city_delays_.resize(config.medicines.size());
  for (std::size_t i = 0; i < config.medicines.size(); ++i) {
    const MedicineSpec& spec = config.medicines[i];
    if (spec.indications.empty()) {
      return Status::InvalidArgument("medicine " + spec.name +
                                     " has no indications");
    }
    for (const IndicationSpec& indication : spec.indications) {
      auto it = disease_by_name.find(indication.disease);
      if (it == disease_by_name.end()) {
        return Status::NotFound("indication of " + spec.name +
                                " references unknown disease '" +
                                indication.disease + "'");
      }
      if (indication.weight < 0 || indication.start_month < 0 ||
          indication.ramp_months < 0) {
        return Status::InvalidArgument("invalid indication on " + spec.name);
      }
      world.indications_[it->second][i] = indication;
    }
    if (!spec.generic_of.empty() &&
        medicine_by_name.count(spec.generic_of) == 0) {
      return Status::NotFound("generic_of of " + spec.name +
                              " references unknown medicine '" +
                              spec.generic_of + "'");
    }
    for (const auto& [city_name, delay] : spec.city_release_delays) {
      auto it = city_by_name.find(city_name);
      if (it == city_by_name.end()) {
        return Status::NotFound("city delay of " + spec.name +
                                " references unknown city '" + city_name +
                                "'");
      }
      if (delay < 0) {
        return Status::InvalidArgument("negative city delay on " + spec.name);
      }
      world.city_delays_[i][it->second.value()] = delay;
    }
  }

  // Resolve class biases.
  world.class_bias_.assign(
      3, std::vector<std::unordered_map<std::size_t, double>>(
             config.diseases.size()));
  for (const ClassBiasSpec& bias : config.class_biases) {
    auto disease_it = disease_by_name.find(bias.disease);
    auto medicine_it = medicine_by_name.find(bias.medicine);
    if (disease_it == disease_by_name.end()) {
      return Status::NotFound("class bias references unknown disease '" +
                              bias.disease + "'");
    }
    if (medicine_it == medicine_by_name.end()) {
      return Status::NotFound("class bias references unknown medicine '" +
                              bias.medicine + "'");
    }
    if (bias.weight < 0) {
      return Status::InvalidArgument("negative class-bias weight");
    }
    world.class_bias_[static_cast<int>(bias.hospital_class)]
                     [disease_it->second][medicine_it->second] += bias.weight;
  }

  // Candidate medicine lists per disease: indication edges plus class-bias
  // edges.
  world.candidates_.resize(config.diseases.size());
  for (std::size_t d = 0; d < config.diseases.size(); ++d) {
    std::set<std::size_t> candidates;
    for (const auto& [m, indication] : world.indications_[d]) {
      candidates.insert(m);
    }
    for (int cls = 0; cls < 3; ++cls) {
      for (const auto& [m, weight] : world.class_bias_[cls][d]) {
        candidates.insert(m);
      }
    }
    world.candidates_[d].assign(candidates.begin(), candidates.end());
  }

  world.config_ = std::move(config);
  return world;
}

Result<DiseaseId> World::FindDisease(const std::string& name) const {
  return catalog_->diseases().Lookup(name);
}

Result<MedicineId> World::FindMedicine(const std::string& name) const {
  return catalog_->medicines().Lookup(name);
}

bool World::IsIndicated(DiseaseId d, MedicineId m) const {
  auto disease_it = disease_index_.find(d);
  auto medicine_it = medicine_index_.find(m);
  if (disease_it == disease_index_.end() ||
      medicine_it == medicine_index_.end()) {
    return false;
  }
  return indications_[disease_it->second].count(medicine_it->second) > 0;
}

double World::DiseaseWeight(std::size_t d, int t) const {
  const DiseaseSpec& spec = config_.diseases[d];
  double weight = spec.base_weight *
                  spec.seasonality.Multiplier(CalendarMonth(t)) *
                  EventMultiplier(spec.prevalence_events, t);
  auto it = spec.outlier_multipliers.find(t);
  if (it != spec.outlier_multipliers.end()) weight *= it->second;
  return weight;
}

double World::PropensityMultiplier(std::size_t m, int t) const {
  return EventMultiplier(config_.medicines[m].propensity_events, t);
}

bool World::IsAvailable(std::size_t m, int t, CityId city) const {
  int release = config_.medicines[m].release_month;
  const auto& delays = city_delays_[m];
  auto it = delays.find(city.value());
  if (it != delays.end()) release += it->second;
  return t >= release;
}

double World::IndicationWeight(std::size_t d, std::size_t m, int t) const {
  const auto& edges = indications_[d];
  auto it = edges.find(m);
  if (it == edges.end()) return 0.0;
  const IndicationSpec& indication = it->second;
  if (t < indication.start_month) return 0.0;
  if (indication.ramp_months <= 0 ||
      t >= indication.start_month + indication.ramp_months) {
    return indication.weight;
  }
  const double progress =
      static_cast<double>(t - indication.start_month + 1) /
      static_cast<double>(indication.ramp_months + 1);
  return indication.weight * progress;
}

double World::ClassBiasWeight(HospitalClass hospital_class, std::size_t d,
                              std::size_t m) const {
  const auto& edges = class_bias_[static_cast<int>(hospital_class)][d];
  auto it = edges.find(m);
  return it == edges.end() ? 0.0 : it->second;
}

}  // namespace mic::synth
