#include "synth/world_io.h"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/strings.h"

namespace mic::synth {
namespace {

// One "key=value" field; positional fields have an empty key.
struct Field {
  std::string key;
  std::string value;
};

Result<std::vector<Field>> ParseFields(const std::string& line) {
  std::vector<Field> fields;
  for (const std::string& token : Split(line, ',')) {
    const std::string_view stripped = StripWhitespace(token);
    if (stripped.empty()) continue;
    const std::size_t equals = stripped.find('=');
    Field field;
    if (equals == std::string_view::npos) {
      field.value = std::string(stripped);
    } else {
      field.key = std::string(StripWhitespace(stripped.substr(0, equals)));
      field.value =
          std::string(StripWhitespace(stripped.substr(equals + 1)));
      if (field.key.empty()) {
        return Status::InvalidArgument("empty key in '" + token + "'");
      }
    }
    fields.push_back(std::move(field));
  }
  return fields;
}

Result<double> FieldDouble(const Field& field) {
  return ParseDouble(field.value);
}

Result<int> FieldInt(const Field& field) {
  MIC_ASSIGN_OR_RETURN(std::int64_t value, ParseInt64(field.value));
  return static_cast<int>(value);
}

// Parses "a:b:c" into exactly `parts` numeric pieces (missing trailing
// pieces default to 0).
Result<std::vector<double>> ParseTuple(const std::string& value,
                                       std::size_t max_parts) {
  std::vector<double> numbers;
  const auto pieces = Split(value, ':');
  if (pieces.size() > max_parts) {
    return Status::InvalidArgument("too many ':' fields in '" + value +
                                   "'");
  }
  for (const std::string& piece : pieces) {
    MIC_ASSIGN_OR_RETURN(double number, ParseDouble(piece));
    numbers.push_back(number);
  }
  numbers.resize(max_parts, 0.0);
  return numbers;
}

Status ParseDisease(const std::vector<Field>& fields, WorldConfig& config) {
  if (fields.size() < 2 || !fields[1].key.empty()) {
    return Status::InvalidArgument("disease line needs a name");
  }
  DiseaseSpec spec;
  spec.name = fields[1].value;
  for (std::size_t i = 2; i < fields.size(); ++i) {
    const Field& field = fields[i];
    if (field.key == "weight") {
      MIC_ASSIGN_OR_RETURN(spec.base_weight, FieldDouble(field));
    } else if (field.key == "amplitude") {
      MIC_ASSIGN_OR_RETURN(spec.seasonality.amplitude, FieldDouble(field));
    } else if (field.key == "peak") {
      MIC_ASSIGN_OR_RETURN(spec.seasonality.peak_month, FieldInt(field));
    } else if (field.key == "sharpness") {
      MIC_ASSIGN_OR_RETURN(spec.seasonality.sharpness, FieldDouble(field));
    } else if (field.key == "second_amplitude") {
      MIC_ASSIGN_OR_RETURN(spec.seasonality.second_amplitude,
                           FieldDouble(field));
    } else if (field.key == "second_peak") {
      MIC_ASSIGN_OR_RETURN(spec.seasonality.second_peak_month,
                           FieldInt(field));
    } else if (field.key == "chronic") {
      MIC_ASSIGN_OR_RETURN(spec.chronic_fraction, FieldDouble(field));
    } else if (field.key == "intensity") {
      MIC_ASSIGN_OR_RETURN(spec.medication_intensity, FieldDouble(field));
    } else if (field.key == "outlier") {
      MIC_ASSIGN_OR_RETURN(std::vector<double> tuple,
                           ParseTuple(field.value, 2));
      spec.outlier_multipliers[static_cast<int>(tuple[0])] = tuple[1];
    } else if (field.key == "prevalence") {
      MIC_ASSIGN_OR_RETURN(std::vector<double> tuple,
                           ParseTuple(field.value, 3));
      spec.prevalence_events.push_back({static_cast<int>(tuple[0]),
                                        tuple[1],
                                        static_cast<int>(tuple[2])});
    } else {
      return Status::InvalidArgument("unknown disease key: " + field.key);
    }
  }
  config.diseases.push_back(std::move(spec));
  return Status::OK();
}

Status ParseMedicine(const std::vector<Field>& fields,
                     WorldConfig& config) {
  if (fields.size() < 2 || !fields[1].key.empty()) {
    return Status::InvalidArgument("medicine line needs a name");
  }
  MedicineSpec spec;
  spec.name = fields[1].value;
  for (std::size_t i = 2; i < fields.size(); ++i) {
    const Field& field = fields[i];
    if (field.key == "propensity") {
      MIC_ASSIGN_OR_RETURN(spec.propensity, FieldDouble(field));
    } else if (field.key == "release") {
      MIC_ASSIGN_OR_RETURN(spec.release_month, FieldInt(field));
    } else if (field.key == "generic_of") {
      spec.generic_of = field.value;
    } else if (field.key == "indication") {
      // name:weight:start:ramp
      const auto pieces = Split(field.value, ':');
      if (pieces.empty() || pieces[0].empty()) {
        return Status::InvalidArgument("indication needs a disease name");
      }
      IndicationSpec indication;
      indication.disease = pieces[0];
      if (pieces.size() > 1) {
        MIC_ASSIGN_OR_RETURN(indication.weight, ParseDouble(pieces[1]));
      }
      if (pieces.size() > 2) {
        MIC_ASSIGN_OR_RETURN(std::int64_t start, ParseInt64(pieces[2]));
        indication.start_month = static_cast<int>(start);
      }
      if (pieces.size() > 3) {
        MIC_ASSIGN_OR_RETURN(std::int64_t ramp, ParseInt64(pieces[3]));
        indication.ramp_months = static_cast<int>(ramp);
      }
      spec.indications.push_back(std::move(indication));
    } else if (field.key == "propensity_event") {
      MIC_ASSIGN_OR_RETURN(std::vector<double> tuple,
                           ParseTuple(field.value, 3));
      spec.propensity_events.push_back({static_cast<int>(tuple[0]),
                                        tuple[1],
                                        static_cast<int>(tuple[2])});
    } else if (field.key == "city_delay") {
      const auto pieces = Split(field.value, ':');
      if (pieces.size() != 2) {
        return Status::InvalidArgument("city_delay needs city:months");
      }
      MIC_ASSIGN_OR_RETURN(std::int64_t delay, ParseInt64(pieces[1]));
      spec.city_release_delays[pieces[0]] = static_cast<int>(delay);
    } else {
      return Status::InvalidArgument("unknown medicine key: " + field.key);
    }
  }
  config.medicines.push_back(std::move(spec));
  return Status::OK();
}

Result<HospitalClass> ParseClass(const std::string& name) {
  if (name == "small") return HospitalClass::kSmall;
  if (name == "medium") return HospitalClass::kMedium;
  if (name == "large") return HospitalClass::kLarge;
  return Status::InvalidArgument("unknown hospital class: " + name);
}

Status ParseBias(const std::vector<Field>& fields, WorldConfig& config) {
  if (fields.size() < 4) {
    return Status::InvalidArgument(
        "bias line needs class, medicine, disease");
  }
  ClassBiasSpec bias;
  MIC_ASSIGN_OR_RETURN(bias.hospital_class, ParseClass(fields[1].value));
  bias.medicine = fields[2].value;
  bias.disease = fields[3].value;
  for (std::size_t i = 4; i < fields.size(); ++i) {
    if (fields[i].key == "weight") {
      MIC_ASSIGN_OR_RETURN(bias.weight, FieldDouble(fields[i]));
    } else {
      return Status::InvalidArgument("unknown bias key: " + fields[i].key);
    }
  }
  config.class_biases.push_back(std::move(bias));
  return Status::OK();
}

}  // namespace

Result<WorldConfig> ReadWorldConfig(std::istream& in) {
  WorldConfig config;
  config.diseases.clear();
  config.medicines.clear();
  config.cities.clear();

  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    if (StripWhitespace(line).empty()) continue;

    auto fields = ParseFields(line);
    if (!fields.ok()) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": " + fields.status().message());
    }
    const std::string& kind = (*fields)[0].value;
    Status status = Status::OK();
    if (kind == "disease") {
      status = ParseDisease(*fields, config);
    } else if (kind == "medicine") {
      status = ParseMedicine(*fields, config);
    } else if (kind == "bias") {
      status = ParseBias(*fields, config);
    } else if (kind == "city") {
      if (fields->size() < 2) {
        status = Status::InvalidArgument("city line needs a name");
      } else {
        CitySpec city;
        city.name = (*fields)[1].value;
        for (std::size_t i = 2; i < fields->size(); ++i) {
          if ((*fields)[i].key == "weight") {
            auto weight = FieldDouble((*fields)[i]);
            if (!weight.ok()) {
              status = weight.status();
              break;
            }
            city.population_weight = *weight;
          }
        }
        if (status.ok()) config.cities.push_back(std::move(city));
      }
    } else if (kind == "config" || kind == "hospitals" ||
               kind == "patients") {
      for (std::size_t i = 1; i < fields->size(); ++i) {
        const Field& field = (*fields)[i];
        Result<double> number = FieldDouble(field);
        if (!number.ok()) {
          status = number.status();
          break;
        }
        const double value = *number;
        if (kind == "config") {
          if (field.key == "months") {
            config.num_months = static_cast<int>(value);
          } else if (field.key == "start_month") {
            config.start_calendar_month = static_cast<int>(value);
          } else if (field.key == "seed") {
            config.seed = static_cast<std::uint64_t>(value);
          } else {
            status =
                Status::InvalidArgument("unknown config key: " + field.key);
            break;
          }
        } else if (kind == "hospitals") {
          if (field.key == "count") {
            config.hospitals.count = static_cast<std::size_t>(value);
          } else if (field.key == "small") {
            config.hospitals.small_fraction = value;
          } else if (field.key == "medium") {
            config.hospitals.medium_fraction = value;
          } else if (field.key == "large") {
            config.hospitals.large_fraction = value;
          } else {
            status = Status::InvalidArgument("unknown hospitals key: " +
                                             field.key);
            break;
          }
        } else {  // patients
          if (field.key == "count") {
            config.patients.count = static_cast<std::size_t>(value);
          } else if (field.key == "visit") {
            config.patients.base_visit_probability = value;
          } else if (field.key == "boost") {
            config.patients.chronic_visit_boost = value;
          } else if (field.key == "acute") {
            config.patients.mean_acute_diseases = value;
          } else {
            status = Status::InvalidArgument("unknown patients key: " +
                                             field.key);
            break;
          }
        }
      }
    } else {
      status = Status::InvalidArgument("unknown line kind: " + kind);
    }
    if (!status.ok()) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": " + status.message());
    }
  }
  return config;
}

Result<WorldConfig> ReadWorldConfigFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  return ReadWorldConfig(in);
}

Status WriteWorldConfig(const WorldConfig& config, std::ostream& out) {
  // Shortest-round-trip precision so Read(Write(config)) is lossless.
  out << std::setprecision(17);
  out << "config,months=" << config.num_months
      << ",start_month=" << config.start_calendar_month
      << ",seed=" << config.seed << "\n";
  out << "hospitals,count=" << config.hospitals.count
      << ",small=" << config.hospitals.small_fraction
      << ",medium=" << config.hospitals.medium_fraction
      << ",large=" << config.hospitals.large_fraction << "\n";
  out << "patients,count=" << config.patients.count
      << ",visit=" << config.patients.base_visit_probability
      << ",boost=" << config.patients.chronic_visit_boost
      << ",acute=" << config.patients.mean_acute_diseases << "\n";
  for (const CitySpec& city : config.cities) {
    out << "city," << city.name << ",weight=" << city.population_weight
        << "\n";
  }
  for (const DiseaseSpec& disease : config.diseases) {
    out << "disease," << disease.name << ",weight=" << disease.base_weight;
    if (!disease.seasonality.IsFlat()) {
      out << ",amplitude=" << disease.seasonality.amplitude
          << ",peak=" << disease.seasonality.peak_month
          << ",sharpness=" << disease.seasonality.sharpness
          << ",second_amplitude=" << disease.seasonality.second_amplitude
          << ",second_peak=" << disease.seasonality.second_peak_month;
    }
    out << ",chronic=" << disease.chronic_fraction
        << ",intensity=" << disease.medication_intensity;
    for (const auto& [month, multiplier] : disease.outlier_multipliers) {
      out << ",outlier=" << month << ':' << multiplier;
    }
    for (const ScheduledEvent& event : disease.prevalence_events) {
      out << ",prevalence=" << event.month << ':'
          << event.target_multiplier << ':' << event.ramp_months;
    }
    out << "\n";
  }
  for (const MedicineSpec& medicine : config.medicines) {
    out << "medicine," << medicine.name
        << ",propensity=" << medicine.propensity
        << ",release=" << medicine.release_month;
    if (!medicine.generic_of.empty()) {
      out << ",generic_of=" << medicine.generic_of;
    }
    for (const IndicationSpec& indication : medicine.indications) {
      out << ",indication=" << indication.disease << ':'
          << indication.weight << ':' << indication.start_month << ':'
          << indication.ramp_months;
    }
    for (const ScheduledEvent& event : medicine.propensity_events) {
      out << ",propensity_event=" << event.month << ':'
          << event.target_multiplier << ':' << event.ramp_months;
    }
    for (const auto& [city, delay] : medicine.city_release_delays) {
      out << ",city_delay=" << city << ':' << delay;
    }
    out << "\n";
  }
  for (const ClassBiasSpec& bias : config.class_biases) {
    out << "bias," << HospitalClassName(bias.hospital_class) << ','
        << bias.medicine << ',' << bias.disease
        << ",weight=" << bias.weight << "\n";
  }
  if (!out.good()) return Status::IoError("stream failure writing world");
  return Status::OK();
}

Status WriteWorldConfigFile(const WorldConfig& config,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  return WriteWorldConfig(config, out);
}

}  // namespace mic::synth
