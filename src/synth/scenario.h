// Prebuilt world configurations mirroring the paper's case studies.
//
// MakePaperWorldConfig() scripts every named phenomenon the paper plots
// (Figs. 2, 3, 6, 7, 8; Table II) and adds configurable background
// populations of diseases/medicines so the aggregate experiments
// (Tables III-VI) run over a whole population of series, as in the paper.

#ifndef MICTREND_SYNTH_SCENARIO_H_
#define MICTREND_SYNTH_SCENARIO_H_

#include <cstdint>

#include "synth/world.h"

namespace mic::synth {

/// Knobs for the paper world. Defaults produce a laptop-scale corpus
/// (tests shrink it further; benches may enlarge it).
struct PaperWorldOptions {
  int num_months = 43;
  std::uint64_t seed = 20190411;
  std::size_t num_patients = 2000;
  std::size_t num_hospitals = 36;
  /// Background diseases beyond the scripted ones.
  std::size_t num_background_diseases = 40;
  /// Background medicines per background disease (1..this).
  std::size_t max_medicines_per_background_disease = 3;
  /// Fraction of background medicines that receive a structural event
  /// (release mid-window or propensity shift) so that the change point
  /// benchmarks see a population of genuine breaks.
  double background_event_fraction = 0.2;
};

/// Names of the scripted entities (stable API for examples/benches).
namespace names {

// Diseases.
inline constexpr const char kHypertension[] = "hypertension";
inline constexpr const char kHayFever[] = "hay-fever";
inline constexpr const char kHeatstroke[] = "heatstroke";
inline constexpr const char kInfluenza[] = "influenza";
inline constexpr const char kDiarrhea[] = "diarrhea";
inline constexpr const char kLowBackPain[] = "low-back-pain";
inline constexpr const char kArthritis[] = "arthritis";
inline constexpr const char kCopd[] = "copd";
inline constexpr const char kBronchialAsthma[] = "bronchial-asthma";
inline constexpr const char kChronicBronchitis[] = "chronic-bronchitis";
inline constexpr const char kOsteoporosis[] = "osteoporosis";
inline constexpr const char kLewyBodyDementia[] = "lewy-body-dementia";
inline constexpr const char kAlzheimers[] = "alzheimers-dementia";
inline constexpr const char kOralFeedingDifficulty[] =
    "oral-feeding-difficulty";
inline constexpr const char kDehydration[] = "dehydration";
inline constexpr const char kColdSyndrome[] =
    "acute-upper-respiratory-inflammation";
inline constexpr const char kAcuteBronchitis[] = "acute-bronchitis";
inline constexpr const char kPneumonia[] = "pneumonia";
inline constexpr const char kCerebralInfarction[] = "cerebral-infarction";

// Medicines.
inline constexpr const char kDepressor[] = "depressor";
inline constexpr const char kAnalgesic[] = "anti-inflammatory-analgesic";
inline constexpr const char kAntihistamine[] = "antihistamine";
inline constexpr const char kRehydrationSalt[] = "oral-rehydration-salt";
inline constexpr const char kAntiviral[] = "anti-influenza-viral";
inline constexpr const char kAntidiarrheal[] = "antidiarrheal";
inline constexpr const char kNewBronchodilator[] = "bronchodilator-new";
inline constexpr const char kCopdBronchodilator[] = "bronchodilator-copd";
inline constexpr const char kClassicBronchodilator[] =
    "bronchodilator-classic";
inline constexpr const char kNewOsteoporosisDrug[] = "osteoporosis-new";
inline constexpr const char kOldOsteoporosisDrug[] = "osteoporosis-classic";
inline constexpr const char kAntiPlateletOriginal[] =
    "anti-platelet-original";
inline constexpr const char kAntiPlateletGeneric1[] =
    "anti-platelet-generic-1";
inline constexpr const char kAntiPlateletGeneric2[] =
    "anti-platelet-generic-2";
inline constexpr const char kAntiPlateletGeneric3[] =
    "anti-platelet-generic-3";
inline constexpr const char kDementiaDrug[] = "dementia-drug";
inline constexpr const char kDementiaSymptomatic[] = "dementia-symptomatic";
inline constexpr const char kSwallowingAid[] = "swallowing-aid";
inline constexpr const char kAntibiotic[] = "antibiotic";

}  // namespace names

/// Structural-event months used by the scripted scenario (time indices;
/// t = 0 is March of year 0, matching the paper's March 2013 start).
struct PaperWorldEvents {
  /// New osteoporosis medicine goes on sale (paper: Aug 2013 -> t = 5).
  static constexpr int kOsteoporosisRelease = 5;
  /// New bronchodilator goes on sale (Fig. 3b analogue).
  static constexpr int kBronchodilatorRelease = 8;
  /// Generics of the anti-platelet original enter (Fig. 6d / Fig. 8).
  static constexpr int kGenericEntry = 14;
  /// COPD bronchodilator gains the bronchial-asthma indication
  /// (paper: end of 2014 -> t = 21).
  static constexpr int kAsthmaIndicationExpansion = 21;
  /// Dementia drug gains the Lewy-body-dementia indication (Fig. 7a).
  static constexpr int kLewyIndicationExpansion = 18;
  /// Diagnostic substitution starts: oral feeding difficulty rises while
  /// dehydration declines (Fig. 7b).
  static constexpr int kDiagnosticSubstitution = 20;
  /// Influenza outbreak months (winter 2014-15, Fig. 6a outlier).
  static constexpr int kOutbreakMonth = 22;
};

/// Builds the scripted paper world configuration.
WorldConfig MakePaperWorldConfig(const PaperWorldOptions& options = {});

/// Convenience: validated World from MakePaperWorldConfig.
Result<World> MakePaperWorld(const PaperWorldOptions& options = {});

/// A deliberately tiny world (3 diseases, 4 medicines, small population)
/// for fast unit tests.
WorldConfig MakeTinyWorldConfig(int num_months = 12,
                                std::uint64_t seed = 7);

}  // namespace mic::synth

#endif  // MICTREND_SYNTH_SCENARIO_H_
