// ClaimGenerator: samples monthly MIC records from a World.
//
// Generative loop per month t:
//   1. every patient visits with a probability driven by their chronic
//      burden; a visiting patient produces one MIC record at their home
//      hospital (claims aggregate a whole month, §III-A);
//   2. the record's disease bag = the patient's chronic diseases plus
//      Poisson-many acute diseases drawn from the month-t prevalence
//      distribution (seasonality/outliers included);
//   3. each disease mention spawns Poisson(medication_intensity)
//      prescriptions drawn from the disease's indication distribution at
//      (t, hospital class, city) — availability, indication activation
//      ramps, propensity events, and class biases all apply.
// True (disease -> medicine) causes are recorded in TruthLinks and then
// discarded from the observable record.

#ifndef MICTREND_SYNTH_GENERATOR_H_
#define MICTREND_SYNTH_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "mic/dataset.h"
#include "synth/truth.h"
#include "synth/world.h"

namespace mic::synth {

/// The observable corpus plus the hidden ground truth.
struct GeneratedData {
  MicCorpus corpus;
  TruthLinks truth;
};

/// Samples corpora from a World. Deterministic given (world seed, the
/// explicit seed override, and the config).
class ClaimGenerator {
 public:
  explicit ClaimGenerator(const World* world);

  /// Generates all num_months datasets. `seed_override`, when nonzero,
  /// replaces the world config seed (so multiple replicates can be drawn
  /// from one world).
  Result<GeneratedData> Generate(std::uint64_t seed_override = 0) const;

 private:
  struct Patient {
    HospitalId hospital;
    CityId city;
    HospitalClass hospital_class;
    std::vector<std::size_t> chronic_diseases;  // disease spec indices
    double visit_probability = 0.0;
  };

  const World* world_;  // Not owned; must outlive the generator.
};

}  // namespace mic::synth

#endif  // MICTREND_SYNTH_GENERATOR_H_
