// Ground-truth prescription links recorded during claim generation.
//
// The generator knows which disease caused every prescription; the
// observable corpus discards that link (as real MIC data does, §III-A),
// while TruthLinks keeps the per-pair monthly counts so link-prediction
// quality can be scored exactly.

#ifndef MICTREND_SYNTH_TRUTH_H_
#define MICTREND_SYNTH_TRUTH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mic/types.h"

namespace mic::synth {

/// Monthly true prescription counts per (disease, medicine) pair.
class TruthLinks {
 public:
  explicit TruthLinks(int num_months = 0) : num_months_(num_months) {}

  int num_months() const { return num_months_; }

  /// Records `count` prescriptions of `m` caused by `d` in month `t`.
  void Add(DiseaseId d, MedicineId m, int t, std::uint32_t count = 1);

  /// True monthly series (length num_months) for a pair; all-zero when
  /// the pair never occurred.
  std::vector<double> Series(DiseaseId d, MedicineId m) const;

  /// Total true count over all months for a pair.
  std::uint64_t Total(DiseaseId d, MedicineId m) const;

  /// Number of distinct pairs that occurred at least once.
  std::size_t num_pairs() const { return counts_.size(); }

  /// Visits every stored pair: f(DiseaseId, MedicineId, counts vector).
  template <typename Fn>
  void ForEachPair(Fn&& fn) const {
    for (const auto& [key, counts] : counts_) {
      fn(DiseaseId(static_cast<std::uint32_t>(key >> 32)),
         MedicineId(static_cast<std::uint32_t>(key & 0xFFFFFFFFull)),
         counts);
    }
  }

 private:
  static std::uint64_t Key(DiseaseId d, MedicineId m) {
    return (static_cast<std::uint64_t>(d.value()) << 32) |
           static_cast<std::uint64_t>(m.value());
  }

  int num_months_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> counts_;
};

}  // namespace mic::synth

#endif  // MICTREND_SYNTH_TRUTH_H_
