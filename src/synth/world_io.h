// Text format for world configurations, so custom worlds can be defined
// without recompiling (used by the CLI's `generate --world file`).
//
// Line-oriented; '#' starts a comment. Each line is
// `kind,arg1,arg2,...` with kind-specific comma-separated fields;
// key=value pairs may appear in any order after the positional fields.
//
//   config,months=43,start_month=2,seed=20190411
//   hospitals,count=36,small=0.6,medium=0.3,large=0.1
//   patients,count=2000,visit=0.35,boost=0.4,acute=2.0
//   city,port-city,weight=3.0
//   disease,influenza,weight=1.6,amplitude=1.2,peak=0,sharpness=3,
//           chronic=0.0,intensity=1.0,outlier=22:2.6,prevalence=20:0.4:10
//   medicine,antiviral,propensity=1.0,release=0,
//            indication=influenza:1.0:0:0,propensity_event=14:0.45:6,
//            generic_of=original,city_delay=north-city:12
//   bias,small,antibiotic,cold-syndrome,weight=0.8
//
// Repeated keys (indication=, outlier=, ...) accumulate.

#ifndef MICTREND_SYNTH_WORLD_IO_H_
#define MICTREND_SYNTH_WORLD_IO_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "synth/world.h"

namespace mic::synth {

/// Parses a world configuration from the text format above.
Result<WorldConfig> ReadWorldConfig(std::istream& in);
Result<WorldConfig> ReadWorldConfigFile(const std::string& path);

/// Writes `config` in the same format (round-trips through
/// ReadWorldConfig).
Status WriteWorldConfig(const WorldConfig& config, std::ostream& out);
Status WriteWorldConfigFile(const WorldConfig& config,
                            const std::string& path);

}  // namespace mic::synth

#endif  // MICTREND_SYNTH_WORLD_IO_H_
