#include "synth/truth.h"

#include "common/logging.h"

namespace mic::synth {

void TruthLinks::Add(DiseaseId d, MedicineId m, int t, std::uint32_t count) {
  MIC_CHECK(t >= 0 && t < num_months_);
  auto& counts = counts_[Key(d, m)];
  if (counts.empty()) counts.assign(num_months_, 0);
  counts[t] += count;
}

std::vector<double> TruthLinks::Series(DiseaseId d, MedicineId m) const {
  std::vector<double> series(num_months_, 0.0);
  auto it = counts_.find(Key(d, m));
  if (it != counts_.end()) {
    for (int t = 0; t < num_months_; ++t) {
      series[t] = static_cast<double>(it->second[t]);
    }
  }
  return series;
}

std::uint64_t TruthLinks::Total(DiseaseId d, MedicineId m) const {
  auto it = counts_.find(Key(d, m));
  if (it == counts_.end()) return 0;
  std::uint64_t total = 0;
  for (std::uint32_t count : it->second) total += count;
  return total;
}

}  // namespace mic::synth
