// Configurable MIC world: the ground-truth generative process from which
// synthetic claim records are drawn (see DESIGN.md, data substitution).
//
// The world encodes exactly the phenomena the paper's models must cope
// with (§III-B): disease seasonality/epidemics/outliers, new-medicine
// releases, price/generic propensity shifts, indication expansions,
// hospital size classes with prescribing biases, and cities with
// different adoption delays.

#ifndef MICTREND_SYNTH_WORLD_H_
#define MICTREND_SYNTH_WORLD_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "mic/catalog.h"
#include "mic/types.h"

namespace mic::synth {

/// Multiplicative 12-month seasonality. The primary term is a shaped
/// cosine: with c = (cos(2*pi*(m-peak_month)/12) + 1) / 2 in [0, 1],
/// the contribution is amplitude * (2 * c^sharpness - 1); sharpness 1
/// is a plain cosine, larger values produce the narrow epidemic peaks
/// of the paper's Fig. 3a (influenza), which low-order ARMA models
/// cannot mimic. A second plain harmonic produces multi-peak shapes
/// like the diarrhea example (Fig. 6b). The result is clamped at 0.
struct SeasonalityProfile {
  double amplitude = 0.0;
  int peak_month = 0;
  /// Peak narrowness; >= 1.
  double sharpness = 1.0;
  double second_amplitude = 0.0;
  int second_peak_month = 0;

  bool IsFlat() const {
    return amplitude == 0.0 && second_amplitude == 0.0;
  }
  double Multiplier(int calendar_month) const;
};

/// A scheduled multiplicative change ramping linearly from the previous
/// level to `target_multiplier` over `ramp_months` starting at `month`.
/// Used for medicine propensity shifts (generic entry, price revision)
/// and disease prevalence drifts (diagnostic substitution, Fig. 7b).
struct ScheduledEvent {
  int month = 0;
  double target_multiplier = 1.0;
  int ramp_months = 0;
};

/// Effective multiplier of an event list at time t (1 before the first
/// event; each event ramps from the previous level to its target).
double EventMultiplier(const std::vector<ScheduledEvent>& events, int t);

/// One disease in the world.
struct DiseaseSpec {
  std::string name;
  /// Relative prevalence among acute draws.
  double base_weight = 1.0;
  SeasonalityProfile seasonality;
  /// Fraction of patients carrying this disease chronically (diagnosed
  /// every visiting month), e.g. hypertension.
  double chronic_fraction = 0.0;
  /// Mean number of prescriptions issued per diagnosis mention.
  double medication_intensity = 0.8;
  /// Epidemic/outlier spikes: month index -> prevalence multiplier
  /// (e.g. the 2014-winter influenza outbreak of Fig. 3a / 6a).
  std::map<int, double> outlier_multipliers;
  /// Slow structural prevalence changes (e.g. a diagnosis falling out of
  /// use while a substitute rises, Fig. 7b).
  std::vector<ScheduledEvent> prevalence_events;
};

/// One (disease -> medicine) edge of the ground-truth indication map.
struct IndicationSpec {
  std::string disease;
  /// Relative weight among the medicines indicated for this disease.
  double weight = 1.0;
  /// Month from which this indication is active; > 0 models indication
  /// expansion (paper Fig. 3c / 7a).
  int start_month = 0;
  /// Linear adoption ramp (months) after start_month before the weight
  /// reaches its full value.
  int ramp_months = 0;
};

/// One medicine in the world.
struct MedicineSpec {
  std::string name;
  /// Month the medicine goes on sale; 0 = available from the start
  /// (> 0 models new-medicine releases, Fig. 3b / 6c).
  int release_month = 0;
  /// Overall prescribing propensity scale.
  double propensity = 1.0;
  std::vector<IndicationSpec> indications;
  /// Overall propensity changes, e.g. decline after a generic enters
  /// (Fig. 6d) or a price revision.
  std::vector<ScheduledEvent> propensity_events;
  /// Name of the original medicine when this is a generic (metadata for
  /// the geographic-spread application; empty otherwise).
  std::string generic_of;
  /// Extra availability delay per city name (Fig. 8's staggered
  /// geographic adoption). Cities not listed use release_month.
  std::map<std::string, int> city_release_delays;
};

/// Prescribing bias attached to a hospital size class: hospitals of
/// `hospital_class` prescribe `medicine` for `disease` with `weight`
/// even though the indication map does not license it (§VII-C's
/// antibiotics-for-colds misuse).
struct ClassBiasSpec {
  HospitalClass hospital_class;
  std::string medicine;
  std::string disease;
  double weight = 1.0;
};

/// One city with a share of the hospitals/patients.
struct CitySpec {
  std::string name;
  double population_weight = 1.0;
};

struct HospitalPopulationSpec {
  std::size_t count = 30;
  /// Probability a hospital is small / medium / large (normalized).
  double small_fraction = 0.6;
  double medium_fraction = 0.3;
  double large_fraction = 0.1;
};

struct PatientPopulationSpec {
  std::size_t count = 2000;
  /// Monthly visit probability for patients with no chronic disease.
  double base_visit_probability = 0.35;
  /// Additional visit probability per chronic condition (capped at 0.95).
  double chronic_visit_boost = 0.4;
  /// Mean number of acute diseases drawn per visiting record.
  double mean_acute_diseases = 2.0;
};

/// Full description of one synthetic MIC world.
struct WorldConfig {
  /// Number of monthly datasets to generate (paper: 43).
  int num_months = 43;
  /// Calendar month of t = 0 (0 = January; paper starts March -> 2).
  int start_calendar_month = 2;
  std::uint64_t seed = 20190411;

  std::vector<DiseaseSpec> diseases;
  std::vector<MedicineSpec> medicines;
  std::vector<ClassBiasSpec> class_biases;
  std::vector<CitySpec> cities;
  HospitalPopulationSpec hospitals;
  PatientPopulationSpec patients;
};

/// A validated, id-resolved world ready for claim generation.
class World {
 public:
  /// Validates `config` (unique names, known references, sane ranges)
  /// and resolves names to catalog ids.
  static Result<World> Create(WorldConfig config);

  const WorldConfig& config() const { return config_; }
  const std::shared_ptr<Catalog>& catalog() const { return catalog_; }

  std::size_t num_diseases() const { return config_.diseases.size(); }
  std::size_t num_medicines() const { return config_.medicines.size(); }
  int num_months() const { return config_.num_months; }

  /// Catalog id of the i-th disease/medicine spec.
  DiseaseId disease_id(std::size_t index) const {
    return disease_ids_[index];
  }
  MedicineId medicine_id(std::size_t index) const {
    return medicine_ids_[index];
  }

  /// Spec index from catalog id.
  std::size_t disease_index(DiseaseId id) const {
    return disease_index_.at(id);
  }
  std::size_t medicine_index(MedicineId id) const {
    return medicine_index_.at(id);
  }

  /// Looks up ids by configured name.
  Result<DiseaseId> FindDisease(const std::string& name) const;
  Result<MedicineId> FindMedicine(const std::string& name) const;

  /// Ground-truth relevance: true iff the indication map ever licenses
  /// medicine `m` for disease `d` (the package-insert criterion of the
  /// paper's Table III ground truth).
  bool IsIndicated(DiseaseId d, MedicineId m) const;

  /// Calendar month (0-11) of time index t.
  int CalendarMonth(int t) const {
    return (config_.start_calendar_month + t) % 12;
  }

  /// Prevalence weight of disease spec `d` at time t (base * seasonality
  /// * outliers).
  double DiseaseWeight(std::size_t d, int t) const;

  /// Effective propensity multiplier of medicine spec `m` at time t
  /// (1 before any event, ramping towards each event's target).
  double PropensityMultiplier(std::size_t m, int t) const;

  /// Availability of medicine spec `m` at time t in city `city`.
  bool IsAvailable(std::size_t m, int t, CityId city) const;

  /// Weight of the indication edge (disease spec d -> medicine spec m)
  /// at time t; 0 when absent or not yet active. Ramps linearly over
  /// `ramp_months` after activation.
  double IndicationWeight(std::size_t d, std::size_t m, int t) const;

  /// Class-bias weight for (hospital class, disease spec, medicine spec);
  /// 0 when no bias is configured.
  double ClassBiasWeight(HospitalClass hospital_class, std::size_t d,
                         std::size_t m) const;

  /// Medicines with an indication edge from disease spec `d` (including
  /// inactive-yet edges) plus medicines reaching `d` only through a class
  /// bias; used by the generator to avoid scanning all medicines.
  const std::vector<std::size_t>& CandidateMedicines(std::size_t d) const {
    return candidates_[d];
  }

 private:
  World() = default;

  WorldConfig config_;
  std::shared_ptr<Catalog> catalog_;
  std::vector<DiseaseId> disease_ids_;
  std::vector<MedicineId> medicine_ids_;
  std::unordered_map<DiseaseId, std::size_t> disease_index_;
  std::unordered_map<MedicineId, std::size_t> medicine_index_;
  /// indication_weight_[d] : medicine spec index -> IndicationSpec.
  std::vector<std::unordered_map<std::size_t, IndicationSpec>> indications_;
  /// class_bias_[class][d] : medicine spec index -> weight.
  std::vector<std::vector<std::unordered_map<std::size_t, double>>>
      class_bias_;
  std::vector<std::vector<std::size_t>> candidates_;
  /// Per-medicine city delays resolved to CityId (city id value -> delay).
  std::vector<std::unordered_map<std::uint32_t, int>> city_delays_;
};

}  // namespace mic::synth

#endif  // MICTREND_SYNTH_WORLD_H_
