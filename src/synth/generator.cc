#include "synth/generator.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/logging.h"

namespace mic::synth {

ClaimGenerator::ClaimGenerator(const World* world) : world_(world) {
  MIC_CHECK(world != nullptr);
}

Result<GeneratedData> ClaimGenerator::Generate(
    std::uint64_t seed_override) const {
  const WorldConfig& config = world_->config();
  Catalog& catalog = *world_->catalog();
  Rng rng(seed_override != 0 ? seed_override : config.seed);

  // --- Build the static population. ---
  // Cities are weighted by population; hospitals and patients are placed
  // into cities proportionally.
  std::vector<double> city_weights;
  city_weights.reserve(config.cities.size());
  for (const CitySpec& city : config.cities) {
    city_weights.push_back(city.population_weight);
  }

  // Hospitals: id, city, bed class.
  struct Hospital {
    HospitalId id;
    CityId city;
    HospitalClass hospital_class;
  };
  std::vector<Hospital> hospitals;
  hospitals.reserve(config.hospitals.count);
  const double class_total = config.hospitals.small_fraction +
                             config.hospitals.medium_fraction +
                             config.hospitals.large_fraction;
  if (class_total <= 0.0) {
    return Status::InvalidArgument("hospital class fractions are all zero");
  }
  // Class quotas by largest remainder, so every configured class with a
  // positive fraction is represented even in small worlds.
  std::vector<HospitalClass> class_assignments;
  {
    const double fractions[3] = {config.hospitals.small_fraction,
                                 config.hospitals.medium_fraction,
                                 config.hospitals.large_fraction};
    const double total_count =
        static_cast<double>(config.hospitals.count);
    std::size_t quotas[3];
    double remainders[3];
    std::size_t assigned = 0;
    for (int cls = 0; cls < 3; ++cls) {
      const double exact = total_count * fractions[cls] / class_total;
      quotas[cls] = static_cast<std::size_t>(exact);
      if (quotas[cls] == 0 && fractions[cls] > 0.0 &&
          config.hospitals.count >= 3) {
        quotas[cls] = 1;
      }
      remainders[cls] = exact - static_cast<double>(quotas[cls]);
      assigned += quotas[cls];
    }
    while (assigned < config.hospitals.count) {
      int best = 0;
      for (int cls = 1; cls < 3; ++cls) {
        if (remainders[cls] > remainders[best]) best = cls;
      }
      ++quotas[best];
      remainders[best] -= 1.0;
      ++assigned;
    }
    while (assigned > config.hospitals.count) {
      int best = 0;
      for (int cls = 1; cls < 3; ++cls) {
        if (quotas[cls] > quotas[best]) best = cls;
      }
      --quotas[best];
      --assigned;
    }
    for (int cls = 0; cls < 3; ++cls) {
      for (std::size_t i = 0; i < quotas[cls]; ++i) {
        class_assignments.push_back(static_cast<HospitalClass>(cls));
      }
    }
    rng.Shuffle(class_assignments);
  }

  std::vector<std::vector<std::size_t>> hospitals_by_city(
      config.cities.size());
  for (std::size_t h = 0; h < config.hospitals.count; ++h) {
    Hospital hospital;
    hospital.id = catalog.hospitals().Intern("hospital-" + std::to_string(h));
    std::size_t city_index = rng.NextCategorical(city_weights);
    if (city_index >= config.cities.size()) city_index = 0;
    hospital.city = catalog.cities().Lookup(config.cities[city_index].name)
                        .value_or(CityId(0));
    std::uint32_t beds = 0;
    switch (class_assignments[h]) {
      case HospitalClass::kSmall:
        beds = static_cast<std::uint32_t>(rng.NextInt(0, 19));
        break;
      case HospitalClass::kMedium:
        beds = static_cast<std::uint32_t>(rng.NextInt(20, 399));
        break;
      case HospitalClass::kLarge:
        beds = static_cast<std::uint32_t>(rng.NextInt(400, 900));
        break;
    }
    hospital.hospital_class = ClassifyHospital(beds);
    catalog.SetHospitalInfo(hospital.id, HospitalInfo{hospital.city, beds});
    hospitals_by_city[city_index].push_back(h);
    hospitals.push_back(hospital);
  }
  // Guarantee every city has at least one hospital (move one if needed) —
  // otherwise its patients could not visit anywhere.
  for (std::size_t c = 0; c < hospitals_by_city.size(); ++c) {
    if (hospitals_by_city[c].empty() && !hospitals.empty()) {
      // Reassign a random hospital to this city.
      const std::size_t h = rng.NextBounded(hospitals.size());
      const CityId city =
          catalog.cities().Lookup(config.cities[c].name).value_or(CityId(0));
      hospitals[h].city = city;
      auto info = catalog.GetHospitalInfo(hospitals[h].id);
      catalog.SetHospitalInfo(hospitals[h].id,
                              HospitalInfo{city, info.ok() ? info->beds : 0});
      for (auto& bucket : hospitals_by_city) {
        bucket.erase(std::remove(bucket.begin(), bucket.end(), h),
                     bucket.end());
      }
      hospitals_by_city[c].push_back(h);
    }
  }

  // Patients: home city -> home hospital, chronic conditions.
  std::vector<Patient> patients;
  patients.reserve(config.patients.count);
  std::vector<std::size_t> chronic_candidates;
  for (std::size_t d = 0; d < config.diseases.size(); ++d) {
    if (config.diseases[d].chronic_fraction > 0.0) {
      chronic_candidates.push_back(d);
    }
  }
  for (std::size_t p = 0; p < config.patients.count; ++p) {
    Patient patient;
    std::size_t city_index = rng.NextCategorical(city_weights);
    if (city_index >= config.cities.size()) city_index = 0;
    const auto& city_hospitals = hospitals_by_city[city_index];
    const Hospital& hospital =
        hospitals[city_hospitals[rng.NextBounded(city_hospitals.size())]];
    patient.hospital = hospital.id;
    patient.city = hospital.city;
    patient.hospital_class = hospital.hospital_class;
    for (std::size_t d : chronic_candidates) {
      if (rng.NextBernoulli(config.diseases[d].chronic_fraction)) {
        patient.chronic_diseases.push_back(d);
      }
    }
    patient.visit_probability = std::min(
        0.95, config.patients.base_visit_probability +
                  config.patients.chronic_visit_boost *
                      static_cast<double>(patient.chronic_diseases.size()));
    patients.push_back(std::move(patient));
  }

  // Intern stable patient names so records can round-trip through CSV.
  std::vector<PatientId> patient_ids;
  patient_ids.reserve(patients.size());
  for (std::size_t p = 0; p < patients.size(); ++p) {
    patient_ids.push_back(
        catalog.patients().Intern("patient-" + std::to_string(p)));
  }

  // --- Generate monthly datasets. ---
  GeneratedData data;
  data.corpus = MicCorpus(world_->catalog());
  data.truth = TruthLinks(config.num_months);

  const std::size_t num_diseases = config.diseases.size();
  std::vector<double> acute_weights(num_diseases, 0.0);

  for (int t = 0; t < config.num_months; ++t) {
    Rng month_rng = rng.Fork();
    MonthlyDataset month(t);

    // Month-t acute prevalence distribution.
    for (std::size_t d = 0; d < num_diseases; ++d) {
      acute_weights[d] = world_->DiseaseWeight(d, t);
    }

    for (std::size_t p = 0; p < patients.size(); ++p) {
      const Patient& patient = patients[p];
      if (!month_rng.NextBernoulli(patient.visit_probability)) continue;

      MicRecord record;
      record.hospital = patient.hospital;
      record.patient = patient_ids[p];

      // Disease bag: chronic conditions plus acute draws.
      std::vector<std::size_t> mentions;  // disease spec index, one per
                                          // diagnosis mention
      for (std::size_t d : patient.chronic_diseases) mentions.push_back(d);
      const std::int64_t num_acute =
          month_rng.NextPoisson(config.patients.mean_acute_diseases);
      for (std::int64_t i = 0; i < num_acute; ++i) {
        const std::size_t d = month_rng.NextCategorical(acute_weights);
        if (d < num_diseases) mentions.push_back(d);
      }
      if (mentions.empty()) continue;  // Nothing diagnosed; no claim line.

      // Prescriptions caused by each mention.
      std::vector<double> medicine_weights;
      std::vector<std::size_t> medicine_slots;
      for (std::size_t d : mentions) {
        record.diseases.push_back({world_->disease_id(d), 1});
        const std::int64_t num_meds = month_rng.NextPoisson(
            config.diseases[d].medication_intensity);
        if (num_meds == 0) continue;

        // Candidate medicine distribution for (d, t, class, city).
        const auto& candidates = world_->CandidateMedicines(d);
        medicine_weights.clear();
        medicine_slots.clear();
        for (std::size_t m : candidates) {
          if (!world_->IsAvailable(m, t, patient.city)) continue;
          double weight =
              world_->IndicationWeight(d, m, t) +
              world_->ClassBiasWeight(patient.hospital_class, d, m);
          if (weight <= 0.0) continue;
          weight *= config.medicines[m].propensity *
                    world_->PropensityMultiplier(m, t);
          if (weight <= 0.0) continue;
          medicine_weights.push_back(weight);
          medicine_slots.push_back(m);
        }
        if (medicine_slots.empty()) continue;

        for (std::int64_t i = 0; i < num_meds; ++i) {
          const std::size_t pick =
              month_rng.NextCategorical(medicine_weights);
          if (pick >= medicine_slots.size()) continue;
          const std::size_t m = medicine_slots[pick];
          record.medicines.push_back({world_->medicine_id(m), 1});
          data.truth.Add(world_->disease_id(d), world_->medicine_id(m), t);
        }
      }

      record.Normalize();
      month.AddRecord(std::move(record));
    }

    MIC_RETURN_IF_ERROR(data.corpus.AddMonth(std::move(month)));
  }

  return data;
}

}  // namespace mic::synth
