// Deterministic per-task RNG seed splitting.
//
// A parallel stage that samples must give every task its own stream:
// sharing one Rng across threads would race, and handing out streams in
// scheduling order would tie the results to the thread count. Deriving
// each task's seed purely from (base_seed, task_index) — the SplitMix64
// finalizer over the pair, the same mixer Rng itself uses to expand
// seeds — keeps streams decorrelated and the results bit-identical at
// any thread count.

#ifndef MICTREND_RUNTIME_TASK_SEED_H_
#define MICTREND_RUNTIME_TASK_SEED_H_

#include <cstdint>

#include "common/rng.h"
#include "runtime/thread_pool.h"

namespace mic::runtime {

/// Derives an independent seed for task `task_index` under `base_seed`.
/// Pure function: the same pair always yields the same seed.
inline std::uint64_t SplitTaskSeed(std::uint64_t base_seed,
                                   std::uint64_t task_index) {
  std::uint64_t z =
      base_seed + 0x9E3779B97F4A7C15ULL * (task_index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// An Rng seeded for one task.
inline Rng MakeTaskRng(std::uint64_t base_seed, std::uint64_t task_index) {
  return Rng(SplitTaskSeed(base_seed, task_index));
}

/// ParallelFor whose chunks each receive their own deterministic Rng,
/// seeded from (base_seed, chunk_index).
/// fn(chunk_begin, chunk_end, chunk_index, rng).
inline Status ParallelForSeeded(
    ThreadPool* pool, std::size_t begin, std::size_t end, std::size_t chunk,
    std::uint64_t base_seed,
    const std::function<Status(std::size_t, std::size_t, std::size_t, Rng&)>&
        fn,
    std::string_view stage = "parallel_for_seeded") {
  return ParallelFor(
      pool, begin, end, chunk,
      [&fn, base_seed](std::size_t chunk_begin, std::size_t chunk_end,
                       std::size_t chunk_index) {
        Rng rng = MakeTaskRng(base_seed, chunk_index);
        return fn(chunk_begin, chunk_end, chunk_index, rng);
      },
      stage);
}

}  // namespace mic::runtime

#endif  // MICTREND_RUNTIME_TASK_SEED_H_
