#include "runtime/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>

#include "common/strings.h"

namespace mic::runtime {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

// The pool whose task is executing on this thread (nested-use guard).
thread_local const ThreadPool* tl_current_pool = nullptr;

// Runs one chunk, converting any escaping exception into a Status so it
// can cross the thread boundary as a value.
Status RunOneChunk(const ThreadPool::ChunkFn& fn, std::size_t begin,
                   std::size_t end, std::size_t index) {
  try {
    return fn(begin, end, index);
  } catch (const std::exception& e) {
    return Status::Internal(
        std::string("uncaught exception in ParallelFor task: ") + e.what());
  } catch (...) {
    return Status::Internal(
        "uncaught non-standard exception in ParallelFor task");
  }
}

Status ValidateRange(std::size_t begin, std::size_t end, std::size_t chunk) {
  if (chunk == 0) {
    return Status::InvalidArgument("ParallelFor chunk must be positive");
  }
  if (end < begin) {
    return Status::InvalidArgument("ParallelFor range end precedes begin");
  }
  return Status::OK();
}

}  // namespace

StageStats RuntimeStats::Totals() const {
  StageStats totals;
  for (const StageStats& stage : stages) {
    totals.calls += stage.calls;
    totals.tasks += stage.tasks;
    totals.items += stage.items;
    totals.wall_seconds += stage.wall_seconds;
    totals.busy_seconds += stage.busy_seconds;
    totals.wait_seconds += stage.wait_seconds;
  }
  return totals;
}

std::string RuntimeStats::ToJson() const {
  std::string json = "{\"stages\":[";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const StageStats& stage = stages[i];
    if (i > 0) json += ',';
    json += StrFormat(
        "{\"stage\":\"%s\",\"calls\":%zu,\"tasks\":%zu,\"items\":%zu,"
        "\"wall_seconds\":%.6f,\"busy_seconds\":%.6f,"
        "\"wait_seconds\":%.6f}",
        stage.stage.c_str(), stage.calls, stage.tasks, stage.items,
        stage.wall_seconds, stage.busy_seconds, stage.wait_seconds);
  }
  json += "]}";
  return json;
}

struct ThreadPool::Job {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t chunk = 1;
  std::size_t num_chunks = 0;
  const ChunkFn* fn = nullptr;
  Clock::time_point publish_time;

  std::atomic<std::size_t> next_chunk{0};
  std::atomic<bool> cancelled{false};
  /// Workers currently inside RunChunks; guarded by the pool's mu_.
  int active_workers = 0;

  std::mutex result_mu;
  bool has_error = false;
  std::size_t error_chunk = 0;
  Status error;

  std::atomic<std::uint64_t> tasks{0};
  std::atomic<std::uint64_t> busy_ns{0};
  std::atomic<std::uint64_t> wait_ns{0};
};

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) num_threads = HardwareConcurrency();
  workers_.reserve(static_cast<std::size_t>(num_threads - 1));
  for (int i = 1; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

int ThreadPool::HardwareConcurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::WorkerLoop() {
  std::uint64_t last_seen = 0;
  while (true) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (job_ != nullptr && job_id_ != last_seen);
      });
      if (shutdown_) return;
      job = job_;
      last_seen = job_id_;
      ++job->active_workers;
    }
    tl_current_pool = this;
    RunChunks(*job);
    tl_current_pool = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      --job->active_workers;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::RunChunks(Job& job) {
  bool first_chunk = true;
  while (!job.cancelled.load(std::memory_order_acquire)) {
    const std::size_t index =
        job.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (index >= job.num_chunks) break;
    const auto start = Clock::now();
    if (first_chunk) {
      first_chunk = false;
      job.wait_ns.fetch_add(
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  start - job.publish_time)
                  .count()),
          std::memory_order_relaxed);
    }
    const std::size_t chunk_begin = job.begin + index * job.chunk;
    const std::size_t chunk_end =
        std::min(job.end, chunk_begin + job.chunk);
    Status status = RunOneChunk(*job.fn, chunk_begin, chunk_end, index);
    job.busy_ns.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - start)
                .count()),
        std::memory_order_relaxed);
    job.tasks.fetch_add(1, std::memory_order_relaxed);
    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(job.result_mu);
      if (!job.has_error || index < job.error_chunk) {
        job.has_error = true;
        job.error_chunk = index;
        job.error = std::move(status);
      }
      job.cancelled.store(true, std::memory_order_release);
    }
  }
}

Status ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                               std::size_t chunk, const ChunkFn& fn,
                               std::string_view stage) {
  MIC_RETURN_IF_ERROR(ValidateRange(begin, end, chunk));
  if (tl_current_pool == this) {
    return Status::FailedPrecondition(
        "nested ParallelFor on the same pool would deadlock; run the "
        "inner loop inline or on a different pool");
  }
  if (begin == end) return Status::OK();

  auto job = std::make_shared<Job>();
  job->begin = begin;
  job->end = end;
  job->chunk = chunk;
  job->num_chunks = (end - begin + chunk - 1) / chunk;
  job->fn = &fn;
  const auto wall_start = Clock::now();
  job->publish_time = wall_start;

  const bool publish = !workers_.empty() && job->num_chunks > 1;
  if (publish) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_ = job;
      ++job_id_;
    }
    work_cv_.notify_all();
  }

  // The caller participates; mark it so tasks that re-enter are caught.
  const ThreadPool* previous = tl_current_pool;
  tl_current_pool = this;
  RunChunks(*job);
  tl_current_pool = previous;

  if (publish) {
    std::unique_lock<std::mutex> lock(mu_);
    // Unpublish first so idle workers stop joining, then drain the ones
    // already inside.
    if (job_ == job) job_.reset();
    done_cv_.wait(lock, [&] { return job->active_workers == 0; });
  }

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    StageStats* entry = nullptr;
    for (StageStats& existing : stats_.stages) {
      if (existing.stage == stage) {
        entry = &existing;
        break;
      }
    }
    if (entry == nullptr) {
      stats_.stages.emplace_back();
      entry = &stats_.stages.back();
      entry->stage = std::string(stage);
    }
    entry->calls += 1;
    entry->tasks += static_cast<std::size_t>(
        job->tasks.load(std::memory_order_relaxed));
    entry->items += end - begin;
    entry->wall_seconds += Seconds(Clock::now() - wall_start);
    entry->busy_seconds +=
        static_cast<double>(job->busy_ns.load(std::memory_order_relaxed)) *
        1e-9;
    entry->wait_seconds +=
        static_cast<double>(job->wait_ns.load(std::memory_order_relaxed)) *
        1e-9;
  }

  // All participants are done: the error fields are stable without the
  // result mutex.
  if (job->has_error) return job->error;
  return Status::OK();
}

RuntimeStats ThreadPool::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void ThreadPool::ResetStats() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.stages.clear();
}

Status ParallelFor(ThreadPool* pool, std::size_t begin, std::size_t end,
                   std::size_t chunk, const ThreadPool::ChunkFn& fn,
                   std::string_view stage) {
  if (pool != nullptr) {
    return pool->ParallelFor(begin, end, chunk, fn, stage);
  }
  MIC_RETURN_IF_ERROR(ValidateRange(begin, end, chunk));
  const std::size_t num_chunks =
      begin == end ? 0 : (end - begin + chunk - 1) / chunk;
  for (std::size_t index = 0; index < num_chunks; ++index) {
    const std::size_t chunk_begin = begin + index * chunk;
    const std::size_t chunk_end = std::min(end, chunk_begin + chunk);
    MIC_RETURN_IF_ERROR(RunOneChunk(fn, chunk_begin, chunk_end, index));
  }
  return Status::OK();
}

}  // namespace mic::runtime
