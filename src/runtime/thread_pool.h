// Deterministic parallel execution runtime (mic::runtime).
//
// The paper's workload is embarrassingly parallel at two layers: the EM
// E-step iterates hundreds of thousands of claim records per month and
// change detection runs an independent Kalman/AIC sweep per series.
// ThreadPool::ParallelFor farms fixed-size chunks of an index range out
// to a fixed set of workers. The chunk decomposition depends only on
// (range, chunk) — never on the thread count or on scheduling — so a
// caller that reduces per-chunk partial results in chunk-index order
// gets bit-identical output at any thread count, including the inline
// single-threaded path used when no pool is supplied.
//
// Error model: the first failing chunk (lowest chunk index among the
// failures observed) wins; its Status is returned and remaining chunks
// are cooperatively cancelled. Exceptions escaping a task are caught at
// the chunk boundary and surfaced as an Internal Status — consistent
// with the library-wide "no exceptions cross public APIs" rule, and
// necessary anyway because an exception unwinding out of a worker
// thread would terminate the process.

#ifndef MICTREND_RUNTIME_THREAD_POOL_H_
#define MICTREND_RUNTIME_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/status.h"

namespace mic::runtime {

/// Counters and timers for one named stage, aggregated over every
/// ParallelFor call that used the stage name.
struct StageStats {
  std::string stage;
  /// ParallelFor invocations.
  std::size_t calls = 0;
  /// Chunks executed (cancelled chunks are not counted).
  std::size_t tasks = 0;
  /// Range items covered (end - begin summed over calls).
  std::size_t items = 0;
  /// Wall time of the ParallelFor calls (caller-observed).
  double wall_seconds = 0.0;
  /// Total in-chunk execution time summed over all threads; with
  /// perfect scaling busy/wall approaches the thread count.
  double busy_seconds = 0.0;
  /// Scheduling latency: per participating thread, time from job
  /// publication to its first chunk starting (queue/wakeup wait).
  double wait_seconds = 0.0;
};

/// Snapshot of a pool's per-stage activity.
struct RuntimeStats {
  std::vector<StageStats> stages;

  /// Sums every stage into one anonymous StageStats.
  StageStats Totals() const;

  /// One-line JSON for bench output, e.g.
  /// {"stages":[{"stage":"trend-sweep","calls":1,...}]}.
  std::string ToJson() const;
};

/// Fixed-size pool. `num_threads` is the total parallelism including
/// the calling thread: a pool of 1 spawns no workers and runs every
/// chunk inline, preserving exact single-threaded behavior.
class ThreadPool {
 public:
  /// fn(chunk_begin, chunk_end, chunk_index): processes one half-open
  /// index chunk. chunk_index identifies the chunk deterministically
  /// (chunk i covers [begin + i*chunk, min(end, begin + (i+1)*chunk))).
  using ChunkFn =
      std::function<Status(std::size_t, std::size_t, std::size_t)>;

  /// num_threads <= 0 selects the hardware concurrency.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (workers + the calling thread).
  int num_threads() const {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// std::thread::hardware_concurrency with a floor of 1.
  static int HardwareConcurrency();

  /// Runs fn over [begin, end) in chunks of `chunk` items. Blocks until
  /// every chunk has finished or been cancelled. The calling thread
  /// participates. Returns the first error by chunk index; on error the
  /// remaining chunks are skipped. Rejects nested use: calling
  /// ParallelFor from inside a task of the same pool returns
  /// FailedPrecondition (the task would deadlock waiting for workers
  /// that are busy running it).
  Status ParallelFor(std::size_t begin, std::size_t end, std::size_t chunk,
                     const ChunkFn& fn,
                     std::string_view stage = "parallel_for");

  /// Per-stage counters accumulated since construction / ResetStats.
  RuntimeStats stats() const;
  void ResetStats();

 private:
  struct Job;

  void WorkerLoop();
  void RunChunks(Job& job);

  std::vector<std::thread> workers_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait for a job
  std::condition_variable done_cv_;  // the caller waits for completion
  std::shared_ptr<Job> job_;         // currently published job
  std::uint64_t job_id_ = 0;
  bool shutdown_ = false;

  mutable std::mutex stats_mu_;
  RuntimeStats stats_;
};

/// Pool-optional ParallelFor: dispatches to `pool` when one is given,
/// otherwise runs the identical chunk decomposition inline (sequential,
/// first error cancels the rest). Library stages take a nullable pool
/// and call this, so the no-pool, one-thread, and N-thread paths all
/// reduce over the same chunks and stay bit-identical.
Status ParallelFor(ThreadPool* pool, std::size_t begin, std::size_t end,
                   std::size_t chunk, const ThreadPool::ChunkFn& fn,
                   std::string_view stage = "parallel_for");

}  // namespace mic::runtime

#endif  // MICTREND_RUNTIME_THREAD_POOL_H_
