// Small dense linear algebra used by the state space machinery.
//
// State dimensions here are tiny (<= ~16: level + 11 seasonal states +
// intervention coefficient, or an ARMA companion block), so a simple
// row-major dense matrix with O(n^3) kernels is the right tool; no
// external BLAS dependency.

#ifndef MICTREND_LA_MATRIX_H_
#define MICTREND_LA_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/result.h"

namespace mic::la {

/// Dense column vector of doubles.
class Vector {
 public:
  Vector() = default;
  explicit Vector(std::size_t size, double fill = 0.0)
      : data_(size, fill) {}
  Vector(std::initializer_list<double> values) : data_(values) {}
  explicit Vector(std::vector<double> values) : data_(std::move(values)) {}

  std::size_t size() const { return data_.size(); }
  double& operator[](std::size_t i) { return data_[i]; }
  double operator[](std::size_t i) const { return data_[i]; }
  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  Vector& operator+=(const Vector& other);
  Vector& operator-=(const Vector& other);
  Vector& operator*=(double scale);

  /// Resets to `size` zeros, reusing the existing allocation when it is
  /// large enough (workspace reuse in the Kalman hot loop).
  void Resize(std::size_t size) { data_.assign(size, 0.0); }

  /// Euclidean norm.
  double Norm() const;

  /// Sum of elements.
  double Sum() const;

  std::string ToString() const;

 private:
  std::vector<double> data_;
};

Vector operator+(Vector lhs, const Vector& rhs);
Vector operator-(Vector lhs, const Vector& rhs);
Vector operator*(double scale, Vector vec);

/// Dot product; requires equal sizes.
double Dot(const Vector& a, const Vector& b);

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer lists; all rows must be equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix Identity(std::size_t n);
  /// Diagonal matrix from a vector.
  static Matrix Diagonal(const Vector& diag);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scale);

  /// Resets to rows x cols zeros, reusing the existing allocation when
  /// it is large enough (workspace reuse in the Kalman hot loop).
  void Resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0);
  }

  Matrix Transpose() const;

  /// Row `r` as a vector.
  Vector Row(std::size_t r) const;
  /// Column `c` as a vector.
  Vector Col(std::size_t c) const;

  /// Symmetrizes in place: A <- (A + A') / 2. Used to keep covariance
  /// matrices symmetric under floating-point drift.
  void Symmetrize();

  /// Max |a_ij|.
  double MaxAbs() const;

  std::string ToString() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

Matrix operator+(Matrix lhs, const Matrix& rhs);
Matrix operator-(Matrix lhs, const Matrix& rhs);
Matrix operator*(double scale, Matrix m);
Matrix operator*(const Matrix& a, const Matrix& b);
Vector operator*(const Matrix& m, const Vector& v);

/// Allocation-free kernels for preallocated outputs: each computes into
/// `*out` (resized as needed, reusing its buffer) with exactly the same
/// floating-point accumulation order as the operator form, so switching
/// a call site between the two never changes a bit of the result. The
/// output must not alias an input.
void MultiplyInto(const Matrix& a, const Matrix& b, Matrix* out);
void MultiplyInto(const Matrix& m, const Vector& v, Vector* out);
void TransposeInto(const Matrix& a, Matrix* out);

/// a * b' (outer product).
Matrix Outer(const Vector& a, const Vector& b);

/// Quadratic form z' M z.
double QuadraticForm(const Vector& z, const Matrix& m);

/// Cholesky factor L (lower triangular, A = L L') of a symmetric positive
/// definite matrix; fails with NumericError if A is not SPD.
Result<Matrix> Cholesky(const Matrix& a);

/// Solves A x = b for symmetric positive definite A via Cholesky.
Result<Vector> CholeskySolve(const Matrix& a, const Vector& b);

/// Solves A X = B with partial-pivoting LU; A must be square.
Result<Matrix> Solve(const Matrix& a, const Matrix& b);

/// Matrix inverse via LU; fails on singular input.
Result<Matrix> Inverse(const Matrix& a);

/// log(det(A)) for symmetric positive definite A.
Result<double> LogDet(const Matrix& a);

}  // namespace mic::la

#endif  // MICTREND_LA_MATRIX_H_
