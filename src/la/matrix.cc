#include "la/matrix.h"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/logging.h"

namespace mic::la {

Vector& Vector::operator+=(const Vector& other) {
  MIC_CHECK_EQ(size(), other.size());
  for (std::size_t i = 0; i < size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& other) {
  MIC_CHECK_EQ(size(), other.size());
  for (std::size_t i = 0; i < size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Vector& Vector::operator*=(double scale) {
  for (auto& value : data_) value *= scale;
  return *this;
}

double Vector::Norm() const {
  double total = 0.0;
  for (double value : data_) total += value * value;
  return std::sqrt(total);
}

double Vector::Sum() const {
  double total = 0.0;
  for (double value : data_) total += value;
  return total;
}

std::string Vector::ToString() const {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < size(); ++i) {
    if (i > 0) out << ", ";
    out << data_[i];
  }
  out << "]";
  return out.str();
}

Vector operator+(Vector lhs, const Vector& rhs) { return lhs += rhs; }
Vector operator-(Vector lhs, const Vector& rhs) { return lhs -= rhs; }
Vector operator*(double scale, Vector vec) { return vec *= scale; }

double Dot(const Vector& a, const Vector& b) {
  MIC_CHECK_EQ(a.size(), b.size());
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) total += a[i] * b[i];
  return total;
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    MIC_CHECK_EQ(row.size(), cols_) << "ragged initializer";
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(std::size_t n) {
  Matrix eye(n, n);
  for (std::size_t i = 0; i < n; ++i) eye(i, i) = 1.0;
  return eye;
}

Matrix Matrix::Diagonal(const Vector& diag) {
  Matrix m(diag.size(), diag.size());
  for (std::size_t i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
  return m;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  MIC_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  MIC_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scale) {
  for (auto& value : data_) value *= scale;
  return *this;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

Vector Matrix::Row(std::size_t r) const {
  MIC_CHECK_LT(r, rows_);
  Vector out(cols_);
  for (std::size_t c = 0; c < cols_; ++c) out[c] = (*this)(r, c);
  return out;
}

Vector Matrix::Col(std::size_t c) const {
  MIC_CHECK_LT(c, cols_);
  Vector out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

void Matrix::Symmetrize() {
  MIC_CHECK_EQ(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = r + 1; c < cols_; ++c) {
      const double avg = 0.5 * ((*this)(r, c) + (*this)(c, r));
      (*this)(r, c) = avg;
      (*this)(c, r) = avg;
    }
  }
}

double Matrix::MaxAbs() const {
  double best = 0.0;
  for (double value : data_) best = std::max(best, std::fabs(value));
  return best;
}

std::string Matrix::ToString() const {
  std::ostringstream out;
  for (std::size_t r = 0; r < rows_; ++r) {
    out << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c > 0) out << ", ";
      out << (*this)(r, c);
    }
    out << (r + 1 == rows_ ? "]" : "\n");
  }
  return out.str();
}

Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
Matrix operator*(double scale, Matrix m) { return m *= scale; }

Matrix operator*(const Matrix& a, const Matrix& b) {
  MIC_CHECK_EQ(a.cols(), b.rows());
  Matrix out(a.rows(), b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double a_rk = a(r, k);
      if (a_rk == 0.0) continue;
      for (std::size_t c = 0; c < b.cols(); ++c) {
        out(r, c) += a_rk * b(k, c);
      }
    }
  }
  return out;
}

Vector operator*(const Matrix& m, const Vector& v) {
  MIC_CHECK_EQ(m.cols(), v.size());
  Vector out(m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double total = 0.0;
    for (std::size_t c = 0; c < m.cols(); ++c) total += m(r, c) * v[c];
    out[r] = total;
  }
  return out;
}

void MultiplyInto(const Matrix& a, const Matrix& b, Matrix* out) {
  MIC_CHECK_EQ(a.cols(), b.rows());
  MIC_CHECK(out != &a && out != &b) << "MultiplyInto output aliases input";
  out->Resize(a.rows(), b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double a_rk = a(r, k);
      if (a_rk == 0.0) continue;
      for (std::size_t c = 0; c < b.cols(); ++c) {
        (*out)(r, c) += a_rk * b(k, c);
      }
    }
  }
}

void MultiplyInto(const Matrix& m, const Vector& v, Vector* out) {
  MIC_CHECK_EQ(m.cols(), v.size());
  MIC_CHECK(out != &v) << "MultiplyInto output aliases input";
  out->Resize(m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double total = 0.0;
    for (std::size_t c = 0; c < m.cols(); ++c) total += m(r, c) * v[c];
    (*out)[r] = total;
  }
}

void TransposeInto(const Matrix& a, Matrix* out) {
  MIC_CHECK(out != &a) << "TransposeInto output aliases input";
  out->Resize(a.cols(), a.rows());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) (*out)(c, r) = a(r, c);
  }
}

Matrix Outer(const Vector& a, const Vector& b) {
  Matrix out(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r) {
    for (std::size_t c = 0; c < b.size(); ++c) out(r, c) = a[r] * b[c];
  }
  return out;
}

double QuadraticForm(const Vector& z, const Matrix& m) {
  MIC_CHECK(m.rows() == z.size() && m.cols() == z.size());
  double total = 0.0;
  for (std::size_t r = 0; r < z.size(); ++r) {
    for (std::size_t c = 0; c < z.size(); ++c) {
      total += z[r] * m(r, c) * z[c];
    }
  }
  return total;
}

Result<Matrix> Cholesky(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  const std::size_t n = a.rows();
  Matrix chol(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= chol(j, k) * chol(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return Status::NumericError("matrix is not positive definite");
    }
    chol(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double value = a(i, j);
      for (std::size_t k = 0; k < j; ++k) value -= chol(i, k) * chol(j, k);
      chol(i, j) = value / chol(j, j);
    }
  }
  return chol;
}

Result<Vector> CholeskySolve(const Matrix& a, const Vector& b) {
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("dimension mismatch in CholeskySolve");
  }
  MIC_ASSIGN_OR_RETURN(Matrix chol, Cholesky(a));
  const std::size_t n = b.size();
  // Forward substitution: L y = b.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double value = b[i];
    for (std::size_t k = 0; k < i; ++k) value -= chol(i, k) * y[k];
    y[i] = value / chol(i, i);
  }
  // Back substitution: L' x = y.
  Vector x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double value = y[i];
    for (std::size_t k = i + 1; k < n; ++k) value -= chol(k, i) * x[k];
    x[i] = value / chol(i, i);
  }
  return x;
}

namespace {

// LU decomposition with partial pivoting. Returns false on singularity.
bool LuDecompose(Matrix& lu, std::vector<std::size_t>& perm, int& sign) {
  const std::size_t n = lu.rows();
  perm.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  sign = 1;
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::fabs(lu(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mag = std::fabs(lu(r, col));
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (best == 0.0 || !std::isfinite(best)) return false;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu(pivot, c), lu(col, c));
      }
      std::swap(perm[pivot], perm[col]);
      sign = -sign;
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      lu(r, col) /= lu(col, col);
      const double factor = lu(r, col);
      for (std::size_t c = col + 1; c < n; ++c) {
        lu(r, c) -= factor * lu(col, c);
      }
    }
  }
  return true;
}

}  // namespace

Result<Matrix> Solve(const Matrix& a, const Matrix& b) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Solve requires a square matrix");
  }
  if (a.rows() != b.rows()) {
    return Status::InvalidArgument("dimension mismatch in Solve");
  }
  Matrix lu = a;
  std::vector<std::size_t> perm;
  int sign = 0;
  if (!LuDecompose(lu, perm, sign)) {
    return Status::NumericError("singular matrix in Solve");
  }
  const std::size_t n = a.rows();
  Matrix x(n, b.cols());
  for (std::size_t col = 0; col < b.cols(); ++col) {
    // Forward substitution on permuted b.
    Vector y(n);
    for (std::size_t i = 0; i < n; ++i) {
      double value = b(perm[i], col);
      for (std::size_t k = 0; k < i; ++k) value -= lu(i, k) * y[k];
      y[i] = value;
    }
    // Back substitution.
    for (std::size_t ii = n; ii > 0; --ii) {
      const std::size_t i = ii - 1;
      double value = y[i];
      for (std::size_t k = i + 1; k < n; ++k) value -= lu(i, k) * x(k, col);
      x(i, col) = value / lu(i, i);
    }
  }
  return x;
}

Result<Matrix> Inverse(const Matrix& a) {
  return Solve(a, Matrix::Identity(a.rows()));
}

Result<double> LogDet(const Matrix& a) {
  MIC_ASSIGN_OR_RETURN(Matrix chol, Cholesky(a));
  double logdet = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    logdet += std::log(chol(i, i));
  }
  return 2.0 * logdet;
}

}  // namespace mic::la
