#include "store/backend.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <system_error>
#include <thread>

#include "cache/fingerprint.h"

#if defined(__unix__) || defined(__APPLE__)
#define MICTREND_STORE_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define MICTREND_STORE_HAS_MMAP 0
#endif

namespace mic::store {
namespace {

// Segment envelope: magic, format version, payload checksum, payload
// size, payload bytes — the cache-entry layout, reused so corruption
// detection behaves identically across both on-disk formats.
constexpr std::uint32_t kMagic = 0x4d494353;  // "MICS"
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::size_t kEnvelopeSize = 4 + 4 + 8 + 8;

// The checksum guards against torn writes and bit rot, not attackers:
// a word-at-a-time FNV fold (one multiply per 8 payload bytes) keeps
// verification cheap enough to run on every segment load. Words are
// assembled little-endian so the digest is byte-order portable.
std::uint64_t PayloadChecksum(const std::uint8_t* data, std::size_t size) {
  constexpr std::uint64_t kFnvPrime = 1099511628211ull;
  std::uint64_t state = 14695981039346656037ull;
  state = (state ^ size) * kFnvPrime;
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    std::uint64_t word = 0;
    for (int b = 0; b < 8; ++b) {
      word |= static_cast<std::uint64_t>(data[i + b]) << (8 * b);
    }
    state = (state ^ word) * kFnvPrime;
  }
  std::uint64_t tail = 0;
  for (int b = 0; i + b < size; ++b) {
    tail |= static_cast<std::uint64_t>(data[i + b]) << (8 * b);
  }
  state = (state ^ tail) * kFnvPrime;
  return state;
}

void AppendU32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((value >> shift) & 0xffu));
  }
}

void AppendU64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((value >> shift) & 0xffu));
  }
}

std::uint64_t ReadFixed(const std::uint8_t* bytes, std::size_t width) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < width; ++i) {
    value |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
  }
  return value;
}

class FileBackend final : public StoreBackend {
 public:
  std::string_view name() const override { return "file"; }

  Result<SegmentView> Read(const std::string& path) override {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::NotFound("no store segment at " + path);
    auto buffer = std::make_shared<std::vector<std::uint8_t>>(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof()) {
      return Status::IoError("failed reading store segment " + path);
    }
    SegmentView view;
    view.data = buffer->data();
    view.size = buffer->size();
    view.owner = std::shared_ptr<const void>(buffer, buffer->data());
    return view;
  }
};

#if MICTREND_STORE_HAS_MMAP

// Releases one mapping; shared from the SegmentView owner so the pages
// stay valid for as long as any view into them is alive.
struct Mapping {
  void* address = nullptr;
  std::size_t size = 0;
  ~Mapping() {
    if (address != nullptr && size > 0) munmap(address, size);
  }
};

class MmapBackend final : public StoreBackend {
 public:
  std::string_view name() const override { return "mmap"; }

  Result<SegmentView> Read(const std::string& path) override {
    const int fd = open(path.c_str(), O_RDONLY);
    if (fd < 0) return Status::NotFound("no store segment at " + path);
    struct stat info;
    if (fstat(fd, &info) != 0) {
      close(fd);
      return Status::IoError("cannot stat store segment " + path);
    }
    const auto size = static_cast<std::size_t>(info.st_size);
    if (size == 0) {
      // mmap rejects zero-length maps; an empty file is simply an empty
      // (and therefore invalid-envelope) segment.
      close(fd);
      return SegmentView{};
    }
    void* address = mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    close(fd);  // The mapping outlives the descriptor.
    if (address == MAP_FAILED) {
      return Status::IoError("cannot map store segment " + path);
    }
    auto mapping = std::make_shared<Mapping>();
    mapping->address = address;
    mapping->size = size;
    SegmentView view;
    view.data = static_cast<const std::uint8_t*>(address);
    view.size = size;
    view.owner = std::shared_ptr<const void>(mapping, mapping->address);
    return view;
  }
};

#endif  // MICTREND_STORE_HAS_MMAP

}  // namespace

Result<BackendKind> ParseBackendKind(std::string_view text) {
  if (text == "auto") return BackendKind::kAuto;
  if (text == "mmap") return BackendKind::kMmap;
  if (text == "file") return BackendKind::kFile;
  return Status::InvalidArgument("--store must be one of auto, mmap, "
                                 "file; got '" +
                                 std::string(text) + "'");
}

std::string_view BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kAuto:
      return "auto";
    case BackendKind::kMmap:
      return "mmap";
    case BackendKind::kFile:
      return "file";
  }
  return "auto";
}

bool MmapAvailable() { return MICTREND_STORE_HAS_MMAP != 0; }

Result<std::unique_ptr<StoreBackend>> MakeBackend(BackendKind kind) {
  if (kind == BackendKind::kAuto) {
    kind = MmapAvailable() ? BackendKind::kMmap : BackendKind::kFile;
  }
#if MICTREND_STORE_HAS_MMAP
  if (kind == BackendKind::kMmap) {
    return std::unique_ptr<StoreBackend>(new MmapBackend());
  }
#else
  if (kind == BackendKind::kMmap) {
    return Status::NotImplemented(
        "the mmap store backend is not available on this platform; use "
        "--store=file");
  }
#endif
  return std::unique_ptr<StoreBackend>(new FileBackend());
}

Status AtomicWriteFile(const std::string& path,
                       const std::vector<std::uint8_t>& bytes) {
  const std::string tmp =
      path + ".tmp" +
      std::to_string(
          std::hash<std::thread::id>{}(std::this_thread::get_id()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open store temp file " + tmp);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      return Status::IoError("failed writing store file " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot publish store file " + path);
  }
  return Status::OK();
}

std::vector<std::uint8_t> SealSegment(
    const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(kEnvelopeSize + payload.size());
  AppendU32(bytes, kMagic);
  AppendU32(bytes, kFormatVersion);
  AppendU64(bytes, PayloadChecksum(payload.data(), payload.size()));
  AppendU64(bytes, payload.size());
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  return bytes;
}

Result<SegmentView> UnsealSegment(const SegmentView& segment,
                                  const std::string& path) {
  if (segment.size < kEnvelopeSize) {
    return Status::FailedPrecondition("truncated store segment " + path);
  }
  if (ReadFixed(segment.data, 4) != kMagic) {
    return Status::FailedPrecondition("bad magic in store segment " +
                                      path);
  }
  if (ReadFixed(segment.data + 4, 4) != kFormatVersion) {
    return Status::NotFound("store segment " + path +
                            " has an unsupported format version");
  }
  const std::uint64_t checksum = ReadFixed(segment.data + 8, 8);
  const std::uint64_t payload_size = ReadFixed(segment.data + 16, 8);
  if (segment.size - kEnvelopeSize != payload_size) {
    return Status::FailedPrecondition("truncated store segment " + path);
  }
  const std::uint8_t* payload = segment.data + kEnvelopeSize;
  if (PayloadChecksum(payload, payload_size) != checksum) {
    return Status::FailedPrecondition("checksum mismatch in store segment " +
                                      path);
  }
  SegmentView view;
  view.data = payload;
  view.size = static_cast<std::size_t>(payload_size);
  view.owner = segment.owner;
  return view;
}

}  // namespace mic::store
