// mic::store — the persistent columnar claim store that replaces
// per-run CSV re-parse.
//
// A store directory is a claim world at rest:
//
//   <dir>/MANIFEST        num_months, the dictionary fingerprint, and
//                         one content fingerprint per month (the commit
//                         point: appends publish it last)
//   <dir>/dict.seg        the interned id dictionaries — every
//                         disease / medicine / hospital / city /
//                         patient name in intern order, plus hospital
//                         attributes — rewritten whole on append
//   <dir>/m<NNNN>.seg     one columnar segment per month: the record
//                         count, then dense u32 columns (hospital ids,
//                         patient ids, bag offsets, bag ids, bag
//                         multiplicities)
//
// Every file wears the checksummed, versioned segment envelope
// (store/backend.h) and is published with a temp-file + rename, the
// same snapshot-IO idioms as src/cache. How segment bytes get into
// memory is pluggable (StoreBackend): memory-mapped by default,
// plain file I/O as the portable fallback.
//
// Identity contract: loading a world from the store yields records
// bit-identical to the corpus that was imported — same month order,
// same record order, same interned ids resolving to the same names —
// so a store-backed pipeline run produces byte-identical reports to
// the CSV ingest path. Each month's cache::FingerprintMonth digest is
// persisted at append time and stamped onto the loaded MonthlyDataset,
// which lets the mic::cache warm-start layer key its snapshots without
// re-hashing raw records.
//
// Failure policy: unlike the cache, the store is a source of truth, so
// reads fail loudly (a corrupt segment is an error, not a miss) and
// callers that hold the original CSV degrade to a warned cold parse.
//
// With a MetricsRegistry attached the store exports store.* counters
// (segments/bytes/records read and written, dictionary entries) plus
// store.bytes_mapped and store.intern.* gauges and store.append /
// store.load timers. All store.* counters count I/O that happens on
// the (serial) ingest path, so they are bit-identical at any pipeline
// thread count.

#ifndef MICTREND_STORE_CLAIM_STORE_H_
#define MICTREND_STORE_CLAIM_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "mic/dataset.h"
#include "store/backend.h"

namespace mic::obs {
class Counter;
class MetricsRegistry;
}  // namespace mic::obs

namespace mic::store {

struct StoreOptions {
  BackendKind backend = BackendKind::kAuto;
};

class ClaimStore {
 public:
  /// Opens the store at `directory`, creating an empty one (and the
  /// directory) when no manifest exists yet. Fails on an unreadable or
  /// corrupt manifest, or when options.backend is unavailable.
  /// `metrics` (not owned, may be null) receives the store.* metrics.
  static Result<ClaimStore> Open(std::string directory,
                                 const StoreOptions& options = {},
                                 obs::MetricsRegistry* metrics = nullptr);

  ClaimStore(ClaimStore&&) = default;
  ClaimStore& operator=(ClaimStore&&) = default;

  std::size_t num_months() const { return month_fingerprints_.size(); }
  const std::string& directory() const { return directory_; }
  /// The resolved backend ("mmap" or "file" — never "auto").
  std::string_view backend_name() const { return backend_->name(); }

  /// Content fingerprint of the whole store: the dictionary digest
  /// chained with every month digest. Two stores holding the same world
  /// fingerprint equal; any append or edit changes it.
  std::uint64_t Fingerprint() const;

  /// cache::FingerprintMonth digest of stored month `t` (persisted at
  /// append time; no re-hash).
  std::uint64_t MonthFingerprint(std::size_t t) const {
    return month_fingerprints_.at(t);
  }

  /// Appends the next month. `month.month()` must equal num_months()
  /// (months are consecutive from 0, matching MicCorpus), and every id
  /// in its records must resolve in `catalog`. Persists the segment,
  /// rewrites the dictionaries, then publishes the manifest — in that
  /// order, so a crash mid-append leaves the previous consistent state.
  Status AppendMonth(const MonthlyDataset& month, const Catalog& catalog);

  /// Loads the first `count` months into a fresh corpus. The catalog is
  /// rebuilt in intern order (ids match the imported corpus exactly)
  /// and each loaded month carries its stored content fingerprint.
  Result<MicCorpus> LoadMonths(std::size_t count) const;

  /// The whole stored world: LoadMonths(num_months()). Fails on an
  /// empty store — an ingest source with no months is a caller bug or a
  /// wrong directory, not a valid world.
  Result<MicCorpus> OpenWorld() const;

 private:
  ClaimStore(std::string directory, std::unique_ptr<StoreBackend> backend,
             obs::MetricsRegistry* metrics);

  std::string ManifestPath() const;
  std::string DictPath() const;
  std::string MonthPath(std::size_t t) const;

  /// Reads + unseals one store file; counts it into the read metrics.
  Result<SegmentView> ReadSealed(const std::string& path) const;
  Status WriteSealed(const std::string& path,
                     const std::vector<std::uint8_t>& payload) const;

  Status LoadManifest();
  Status WriteManifest() const;
  Status WriteDict(const Catalog& catalog);
  Result<std::shared_ptr<Catalog>> LoadDict() const;
  Status LoadMonthInto(std::size_t t, MicCorpus& corpus) const;

  std::string directory_;
  std::unique_ptr<StoreBackend> backend_;
  std::vector<std::uint64_t> month_fingerprints_;
  std::uint64_t dict_fingerprint_ = 0;

  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* segments_read_ = nullptr;
  obs::Counter* segments_written_ = nullptr;
  obs::Counter* bytes_read_ = nullptr;
  obs::Counter* bytes_written_ = nullptr;
  obs::Counter* records_read_ = nullptr;
  obs::Counter* records_written_ = nullptr;
  obs::Counter* read_errors_ = nullptr;
};

/// Appends every corpus month the store does not yet hold (the
/// incremental monthly batch: stored months [0, k) stay untouched,
/// corpus months [k, T) are appended). Months both sides hold must
/// agree — each overlapping month's fingerprint is verified and a
/// mismatch fails with FailedPrecondition before anything is written.
/// Returns the number of months appended (0 when the store is already
/// up to date).
Result<std::size_t> ImportCorpus(const MicCorpus& corpus,
                                 ClaimStore& store);

}  // namespace mic::store

#endif  // MICTREND_STORE_CLAIM_STORE_H_
