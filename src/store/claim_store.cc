#include "store/claim_store.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "cache/fingerprint.h"
#include "cache/snapshot_io.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mic::store {
namespace {

// One dictionary: every name in intern order, so re-interning on load
// reassigns the exact ids the imported corpus used.
template <typename Id>
void PutVocabulary(cache::SnapshotWriter& writer,
                   const Vocabulary<Id>& vocab) {
  writer.PutU64(vocab.size());
  for (std::uint32_t i = 0; i < vocab.size(); ++i) {
    writer.PutString(vocab.Name(Id(i)));
  }
}

template <typename Id>
Status GetVocabulary(cache::SnapshotReader& reader, Vocabulary<Id>& vocab) {
  MIC_ASSIGN_OR_RETURN(std::uint64_t count, reader.U64());
  for (std::uint64_t i = 0; i < count; ++i) {
    MIC_ASSIGN_OR_RETURN(std::string name, reader.String());
    const Id id = vocab.Intern(name);
    if (id.value() != i) {
      return Status::FailedPrecondition(
          "store dictionary holds duplicate name '" + name + "'");
    }
  }
  return Status::OK();
}

// One record bag as three dense columns (offsets, ids, multiplicities)
// shared across the whole month.
template <typename Id>
Status PutBagColumns(cache::SnapshotWriter& writer,
                     const std::vector<MicRecord>& records,
                     std::vector<IdCount<Id>> MicRecord::* bag,
                     std::size_t vocab_size) {
  std::uint64_t total = 0;
  writer.PutU64(records.size() + 1);  // Offset column length.
  for (const MicRecord& record : records) {
    writer.PutU32(static_cast<std::uint32_t>(total));
    total += (record.*bag).size();
  }
  writer.PutU32(static_cast<std::uint32_t>(total));
  writer.PutU64(total);
  for (const MicRecord& record : records) {
    for (const auto& entry : (record.*bag)) {
      if (entry.id.value() >= vocab_size) {
        return Status::InvalidArgument(
            "record references an id outside the catalog; intern the "
            "names before appending");
      }
      writer.PutU32(entry.id.value());
    }
  }
  for (const MicRecord& record : records) {
    for (const auto& entry : (record.*bag)) {
      writer.PutU32(entry.count);
    }
  }
  return Status::OK();
}

template <typename Id>
Status GetBagColumns(cache::SnapshotReader& reader,
                     std::vector<MicRecord>& records,
                     std::vector<IdCount<Id>> MicRecord::* bag) {
  MIC_ASSIGN_OR_RETURN(std::uint64_t offset_count, reader.U64());
  if (offset_count != records.size() + 1) {
    return Status::FailedPrecondition(
        "store segment bag offset column has the wrong length");
  }
  std::vector<std::uint32_t> offsets(offset_count);
  MIC_RETURN_IF_ERROR(reader.U32Column(offsets.data(), offsets.size()));
  MIC_ASSIGN_OR_RETURN(std::uint64_t total, reader.U64());
  if (offsets.front() != 0 || offsets.back() != total ||
      total > reader.remaining() / 4) {
    return Status::FailedPrecondition(
        "store segment bag offsets do not cover the entry columns");
  }
  std::vector<std::uint32_t> ids(total);
  MIC_RETURN_IF_ERROR(reader.U32Column(ids.data(), ids.size()));
  std::vector<std::uint32_t> counts(total);
  MIC_RETURN_IF_ERROR(reader.U32Column(counts.data(), counts.size()));
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (offsets[i] > offsets[i + 1]) {
      return Status::FailedPrecondition(
          "store segment bag offsets are not monotone");
    }
    std::vector<IdCount<Id>>& entries = records[i].*bag;
    entries.resize(offsets[i + 1] - offsets[i]);
    for (std::size_t j = 0; j < entries.size(); ++j) {
      entries[j].id = Id(ids[offsets[i] + j]);
      entries[j].count = counts[offsets[i] + j];
    }
  }
  return Status::OK();
}

std::uint64_t FingerprintBytes(const std::uint8_t* bytes,
                               std::size_t size) {
  cache::Hasher hasher;
  hasher.Mix(size);
  hasher.MixBytes(bytes, size);
  return hasher.digest();
}

std::uint64_t FingerprintBytes(const std::vector<std::uint8_t>& bytes) {
  return FingerprintBytes(bytes.data(), bytes.size());
}

}  // namespace

ClaimStore::ClaimStore(std::string directory,
                       std::unique_ptr<StoreBackend> backend,
                       obs::MetricsRegistry* metrics)
    : directory_(std::move(directory)),
      backend_(std::move(backend)),
      metrics_(metrics) {
  segments_read_ = obs::GetCounter(metrics, "store.segments_read");
  segments_written_ = obs::GetCounter(metrics, "store.segments_written");
  bytes_read_ = obs::GetCounter(metrics, "store.bytes_read");
  bytes_written_ = obs::GetCounter(metrics, "store.bytes_written");
  records_read_ = obs::GetCounter(metrics, "store.records_read");
  records_written_ = obs::GetCounter(metrics, "store.records_written");
  read_errors_ = obs::GetCounter(metrics, "store.read_errors");
}

Result<ClaimStore> ClaimStore::Open(std::string directory,
                                    const StoreOptions& options,
                                    obs::MetricsRegistry* metrics) {
  if (directory.empty()) {
    return Status::InvalidArgument(
        "store directory is empty (--store-dir is required)");
  }
  MIC_ASSIGN_OR_RETURN(std::unique_ptr<StoreBackend> backend,
                       MakeBackend(options.backend));
  std::error_code error;
  std::filesystem::create_directories(directory, error);
  if (error) {
    return Status::IoError("cannot create store directory '" + directory +
                           "': " + error.message());
  }
  ClaimStore store(std::move(directory), std::move(backend), metrics);
  if (std::filesystem::exists(store.ManifestPath(), error)) {
    // An existing manifest must parse: any failure here (truncation,
    // checksum, future format) is an error, never "empty store" — that
    // would let a later append silently bury the old world.
    MIC_RETURN_IF_ERROR(store.LoadManifest());
  }
  return store;
}

std::string ClaimStore::ManifestPath() const {
  return directory_ + "/MANIFEST";
}

std::string ClaimStore::DictPath() const { return directory_ + "/dict.seg"; }

std::string ClaimStore::MonthPath(std::size_t t) const {
  char name[32];
  std::snprintf(name, sizeof(name), "/m%04zu.seg", t);
  return directory_ + name;
}

std::uint64_t ClaimStore::Fingerprint() const {
  cache::Hasher hasher;
  hasher.Mix(dict_fingerprint_);
  hasher.Mix(month_fingerprints_.size());
  for (std::uint64_t fingerprint : month_fingerprints_) {
    hasher.Mix(fingerprint);
  }
  return hasher.digest();
}

Result<SegmentView> ClaimStore::ReadSealed(const std::string& path) const {
  auto raw = backend_->Read(path);
  if (!raw.ok()) {
    obs::Increment(read_errors_);
    return raw.status();
  }
  auto payload = UnsealSegment(*raw, path);
  if (!payload.ok()) {
    obs::Increment(read_errors_);
    return payload.status();
  }
  obs::Increment(segments_read_);
  obs::Increment(bytes_read_, raw->size);
  if (backend_->name() == "mmap") {
    obs::Add(obs::GetGauge(metrics_, "store.bytes_mapped"),
             static_cast<double>(raw->size));
  }
  return payload;
}

Status ClaimStore::WriteSealed(
    const std::string& path,
    const std::vector<std::uint8_t>& payload) const {
  const std::vector<std::uint8_t> sealed = SealSegment(payload);
  MIC_RETURN_IF_ERROR(AtomicWriteFile(path, sealed));
  obs::Increment(segments_written_);
  obs::Increment(bytes_written_, sealed.size());
  return Status::OK();
}

Status ClaimStore::LoadManifest() {
  MIC_ASSIGN_OR_RETURN(SegmentView payload, ReadSealed(ManifestPath()));
  cache::SnapshotReader reader(payload.data, payload.size);
  MIC_ASSIGN_OR_RETURN(std::uint64_t num_months, reader.U64());
  MIC_ASSIGN_OR_RETURN(dict_fingerprint_, reader.U64());
  month_fingerprints_.resize(num_months);
  for (auto& fingerprint : month_fingerprints_) {
    MIC_ASSIGN_OR_RETURN(fingerprint, reader.U64());
  }
  if (!reader.AtEnd()) {
    return Status::FailedPrecondition("trailing bytes in store manifest " +
                                      ManifestPath());
  }
  return Status::OK();
}

Status ClaimStore::WriteManifest() const {
  cache::SnapshotWriter writer;
  writer.PutU64(month_fingerprints_.size());
  writer.PutU64(dict_fingerprint_);
  for (std::uint64_t fingerprint : month_fingerprints_) {
    writer.PutU64(fingerprint);
  }
  return WriteSealed(ManifestPath(), writer.bytes());
}

Status ClaimStore::WriteDict(const Catalog& catalog) {
  cache::SnapshotWriter writer;
  PutVocabulary(writer, catalog.diseases());
  PutVocabulary(writer, catalog.medicines());
  PutVocabulary(writer, catalog.hospitals());
  PutVocabulary(writer, catalog.cities());
  PutVocabulary(writer, catalog.patients());
  for (std::uint32_t i = 0; i < catalog.hospitals().size(); ++i) {
    auto info = catalog.GetHospitalInfo(HospitalId(i));
    if (info.ok()) {
      writer.PutU32(1);
      writer.PutU32(info->city.value());
      writer.PutU32(info->beds);
    } else {
      writer.PutU32(0);
    }
  }
  const std::vector<std::uint8_t>& payload = writer.bytes();
  dict_fingerprint_ = FingerprintBytes(payload);
  obs::Set(obs::GetGauge(metrics_, "store.intern.diseases"),
           static_cast<double>(catalog.diseases().size()));
  obs::Set(obs::GetGauge(metrics_, "store.intern.medicines"),
           static_cast<double>(catalog.medicines().size()));
  obs::Set(obs::GetGauge(metrics_, "store.intern.hospitals"),
           static_cast<double>(catalog.hospitals().size()));
  obs::Set(obs::GetGauge(metrics_, "store.intern.patients"),
           static_cast<double>(catalog.patients().size()));
  return WriteSealed(DictPath(), payload);
}

Result<std::shared_ptr<Catalog>> ClaimStore::LoadDict() const {
  MIC_ASSIGN_OR_RETURN(SegmentView payload, ReadSealed(DictPath()));
  if (FingerprintBytes(payload.data, payload.size) != dict_fingerprint_) {
    return Status::FailedPrecondition(
        "store dictionary does not match the manifest (torn append?): " +
        DictPath());
  }
  auto catalog = std::make_shared<Catalog>();
  cache::SnapshotReader reader(payload.data, payload.size);
  MIC_RETURN_IF_ERROR(GetVocabulary(reader, catalog->diseases()));
  MIC_RETURN_IF_ERROR(GetVocabulary(reader, catalog->medicines()));
  MIC_RETURN_IF_ERROR(GetVocabulary(reader, catalog->hospitals()));
  MIC_RETURN_IF_ERROR(GetVocabulary(reader, catalog->cities()));
  MIC_RETURN_IF_ERROR(GetVocabulary(reader, catalog->patients()));
  for (std::uint32_t i = 0; i < catalog->hospitals().size(); ++i) {
    MIC_ASSIGN_OR_RETURN(std::uint32_t has_info, reader.U32());
    if (has_info == 0) continue;
    HospitalInfo info;
    MIC_ASSIGN_OR_RETURN(std::uint32_t city, reader.U32());
    MIC_ASSIGN_OR_RETURN(info.beds, reader.U32());
    info.city = CityId(city);
    catalog->SetHospitalInfo(HospitalId(i), info);
  }
  if (!reader.AtEnd()) {
    return Status::FailedPrecondition(
        "trailing bytes in store dictionary " + DictPath());
  }
  obs::Set(obs::GetGauge(metrics_, "store.intern.diseases"),
           static_cast<double>(catalog->diseases().size()));
  obs::Set(obs::GetGauge(metrics_, "store.intern.medicines"),
           static_cast<double>(catalog->medicines().size()));
  obs::Set(obs::GetGauge(metrics_, "store.intern.hospitals"),
           static_cast<double>(catalog->hospitals().size()));
  obs::Set(obs::GetGauge(metrics_, "store.intern.patients"),
           static_cast<double>(catalog->patients().size()));
  return catalog;
}

Status ClaimStore::AppendMonth(const MonthlyDataset& month,
                               const Catalog& catalog) {
  obs::ScopedTimer append_timer(metrics_, "store.append");
  if (month.month() != static_cast<MonthIndex>(num_months())) {
    return Status::InvalidArgument(
        "store holds " + std::to_string(num_months()) +
        " months; cannot append month " + std::to_string(month.month()) +
        " (months are consecutive from 0)");
  }
  const std::uint64_t fingerprint = cache::FingerprintMonth(month);

  cache::SnapshotWriter writer;
  writer.PutI64(month.month());
  // The fingerprint rides inside the segment too, so load can verify
  // segment <-> manifest agreement without re-hashing records.
  writer.PutU64(fingerprint);
  const std::vector<MicRecord>& records = month.records();
  writer.PutU64(records.size());
  for (const MicRecord& record : records) {
    if (record.hospital.value() >= catalog.hospitals().size() ||
        record.patient.value() >= catalog.patients().size()) {
      return Status::InvalidArgument(
          "record references a hospital or patient outside the catalog");
    }
    writer.PutU32(record.hospital.value());
  }
  for (const MicRecord& record : records) {
    writer.PutU32(record.patient.value());
  }
  MIC_RETURN_IF_ERROR(PutBagColumns(writer, records, &MicRecord::diseases,
                                    catalog.diseases().size()));
  MIC_RETURN_IF_ERROR(PutBagColumns(writer, records, &MicRecord::medicines,
                                    catalog.medicines().size()));

  // Segment first, dictionaries second, manifest last: the manifest is
  // the commit point, so a crash between any two writes leaves the
  // previous consistent world (plus harmless orphan files).
  MIC_RETURN_IF_ERROR(WriteSealed(MonthPath(num_months()), writer.bytes()));
  MIC_RETURN_IF_ERROR(WriteDict(catalog));
  month_fingerprints_.push_back(fingerprint);
  if (Status status = WriteManifest(); !status.ok()) {
    month_fingerprints_.pop_back();
    return status;
  }
  obs::Increment(records_written_, records.size());
  return Status::OK();
}

Status ClaimStore::LoadMonthInto(std::size_t t, MicCorpus& corpus) const {
  MIC_ASSIGN_OR_RETURN(SegmentView payload, ReadSealed(MonthPath(t)));
  cache::SnapshotReader reader(payload.data, payload.size);
  MIC_ASSIGN_OR_RETURN(std::int64_t month_index, reader.I64());
  MIC_ASSIGN_OR_RETURN(std::uint64_t fingerprint, reader.U64());
  if (month_index != static_cast<std::int64_t>(t) ||
      fingerprint != month_fingerprints_[t]) {
    return Status::FailedPrecondition(
        "store segment " + MonthPath(t) +
        " does not match the manifest (torn append?)");
  }
  MIC_ASSIGN_OR_RETURN(std::uint64_t num_records, reader.U64());
  if (num_records > reader.remaining() / 8) {
    return Status::FailedPrecondition(
        "store segment " + MonthPath(t) +
        " claims more records than its payload holds");
  }
  MonthlyDataset month(static_cast<MonthIndex>(t));
  std::vector<MicRecord> records(num_records);
  std::vector<std::uint32_t> column(num_records);
  MIC_RETURN_IF_ERROR(reader.U32Column(column.data(), column.size()));
  for (std::size_t i = 0; i < num_records; ++i) {
    records[i].hospital = HospitalId(column[i]);
  }
  MIC_RETURN_IF_ERROR(reader.U32Column(column.data(), column.size()));
  for (std::size_t i = 0; i < num_records; ++i) {
    records[i].patient = PatientId(column[i]);
  }
  MIC_RETURN_IF_ERROR(GetBagColumns(reader, records, &MicRecord::diseases));
  MIC_RETURN_IF_ERROR(
      GetBagColumns(reader, records, &MicRecord::medicines));
  if (!reader.AtEnd()) {
    return Status::FailedPrecondition("trailing bytes in store segment " +
                                      MonthPath(t));
  }
  month.mutable_records() = std::move(records);
  month.set_content_fingerprint(month_fingerprints_[t]);
  obs::Increment(records_read_, num_records);
  return corpus.AddMonth(std::move(month));
}

Result<MicCorpus> ClaimStore::LoadMonths(std::size_t count) const {
  obs::ScopedTimer load_timer(metrics_, "store.load");
  if (count > num_months()) {
    return Status::OutOfRange("store holds " +
                              std::to_string(num_months()) +
                              " months; cannot load " +
                              std::to_string(count));
  }
  MIC_ASSIGN_OR_RETURN(std::shared_ptr<Catalog> catalog, LoadDict());
  MicCorpus corpus(std::move(catalog));
  for (std::size_t t = 0; t < count; ++t) {
    MIC_RETURN_IF_ERROR(LoadMonthInto(t, corpus));
  }
  return corpus;
}

Result<MicCorpus> ClaimStore::OpenWorld() const {
  if (num_months() == 0) {
    return Status::FailedPrecondition(
        "store at '" + directory_ +
        "' holds no months; run `mictrend import` first");
  }
  return LoadMonths(num_months());
}

Result<std::size_t> ImportCorpus(const MicCorpus& corpus,
                                 ClaimStore& store) {
  const std::size_t overlap =
      std::min(store.num_months(), corpus.num_months());
  for (std::size_t t = 0; t < overlap; ++t) {
    if (cache::FingerprintMonth(corpus.month(t)) !=
        store.MonthFingerprint(t)) {
      return Status::FailedPrecondition(
          "month " + std::to_string(t) +
          " differs between the corpus and the store; appends must "
          "extend the stored world, not rewrite it");
    }
  }
  std::size_t appended = 0;
  for (std::size_t t = store.num_months(); t < corpus.num_months(); ++t) {
    MIC_RETURN_IF_ERROR(store.AppendMonth(corpus.month(t),
                                          corpus.catalog()));
    ++appended;
  }
  return appended;
}

}  // namespace mic::store
