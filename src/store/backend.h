// Pluggable read backends for the persistent claim store (mic::store).
//
// A store directory holds checksummed binary segments (see
// claim_store.h for the layout); how a segment's bytes get into memory
// is the backend's business. Two implementations ship:
//
//   - MmapBackend: maps the file read-only and hands out a zero-copy
//     view. This is the fast path for repeated "open the world" loads —
//     the page cache keeps warm segments resident across runs.
//   - FileBackend: reads the file into an owned buffer with plain
//     stream I/O. It exists so the mmap path is optional per platform:
//     kAuto resolves to mmap where POSIX mmap is available and degrades
//     to file I/O everywhere else, with identical results.
//
// Writes are backend-independent (every backend produces the same
// bytes): AtomicWriteFile stages through a temp file and renames into
// place, the same publish idiom the cache store uses, so a reader never
// observes a half-written segment.
//
// The segment envelope (SealSegment/UnsealSegment) wraps every payload
// in a magic + format version + FNV-1a checksum header; a torn,
// truncated, or bit-flipped segment surfaces as a non-OK Status that
// callers treat as "this store is unusable, fall back to CSV".

#ifndef MICTREND_STORE_BACKEND_H_
#define MICTREND_STORE_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace mic::store {

/// Which read backend a store uses. kAuto picks mmap when the platform
/// supports it, plain file I/O otherwise.
enum class BackendKind { kAuto, kMmap, kFile };

/// Parses the --store flag value {auto, mmap, file}.
Result<BackendKind> ParseBackendKind(std::string_view text);
std::string_view BackendKindName(BackendKind kind);

/// True when this build can memory-map segments (POSIX mmap).
bool MmapAvailable();

/// A read-only view of one segment file's bytes. `owner` keeps the
/// backing storage (mapping or buffer) alive for the view's lifetime.
struct SegmentView {
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
  std::shared_ptr<const void> owner;
};

/// How segment bytes get into memory. Implementations must be safe to
/// call from one thread at a time (the store serializes its I/O).
class StoreBackend {
 public:
  virtual ~StoreBackend() = default;
  /// Stable name for logs and metrics ("mmap" / "file").
  virtual std::string_view name() const = 0;
  /// Brings the file at `path` into memory. NotFound when the file does
  /// not exist; IoError on any read/map failure.
  virtual Result<SegmentView> Read(const std::string& path) = 0;
};

/// Builds the backend for `kind`. kMmap fails with NotImplemented on
/// platforms without mmap; kAuto never fails.
Result<std::unique_ptr<StoreBackend>> MakeBackend(BackendKind kind);

/// Writes `bytes` to `path` via a temp file + rename, so concurrent
/// readers see either the old file or the complete new one.
Status AtomicWriteFile(const std::string& path,
                       const std::vector<std::uint8_t>& bytes);

/// Wraps a payload in the segment envelope: magic, format version,
/// payload checksum, payload size, payload bytes.
std::vector<std::uint8_t> SealSegment(
    const std::vector<std::uint8_t>& payload);

/// Validates the envelope of a read segment and returns a view of its
/// payload (sharing `segment`'s owner — no copy). FailedPrecondition on
/// bad magic, truncation, or checksum mismatch; NotFound on a format
/// version this build does not understand.
Result<SegmentView> UnsealSegment(const SegmentView& segment,
                                  const std::string& path);

}  // namespace mic::store

#endif  // MICTREND_STORE_BACKEND_H_
