#include "ssm/changepoint.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/metrics.h"

namespace mic::ssm {

std::string_view SelectionCriterionName(SelectionCriterion criterion) {
  switch (criterion) {
    case SelectionCriterion::kAic:
      return "AIC";
    case SelectionCriterion::kAicc:
      return "AICc";
    case SelectionCriterion::kBic:
      return "BIC";
  }
  return "?";
}

std::optional<SharedAicMemo::Entry> SharedAicMemo::Lookup(
    std::uint64_t series_key, int t_cp) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto series_it = entries_.find(series_key);
  if (series_it == entries_.end()) return std::nullopt;
  auto entry_it = series_it->second.find(t_cp);
  if (entry_it == series_it->second.end()) return std::nullopt;
  return entry_it->second;
}

void SharedAicMemo::Store(std::uint64_t series_key, int t_cp,
                          const Entry& entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_[series_key].emplace(t_cp, entry);  // First writer wins.
}

std::size_t SharedAicMemo::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [key, per_candidate] : entries_) {
    total += per_candidate.size();
  }
  return total;
}

double InformationCriterion(double log_likelihood, int parameters, int n,
                            SelectionCriterion criterion) {
  const double k = static_cast<double>(parameters);
  const double base = -2.0 * log_likelihood + 2.0 * k;
  switch (criterion) {
    case SelectionCriterion::kAic:
      return base;
    case SelectionCriterion::kAicc: {
      const double denominator = static_cast<double>(n) - k - 1.0;
      if (denominator <= 0.0) {
        return std::numeric_limits<double>::infinity();
      }
      return base + 2.0 * k * (k + 1.0) / denominator;
    }
    case SelectionCriterion::kBic:
      return -2.0 * log_likelihood +
             k * std::log(static_cast<double>(n));
  }
  return base;
}

ChangePointDetector::ChangePointDetector(std::vector<double> series,
                                         const ChangePointOptions& options)
    : series_(std::move(series)), options_(options) {
  obs::MetricsRegistry* metrics = options_.fit.metrics;
  pruned_counter_ =
      obs::GetCounter(metrics, "changepoint.candidates_pruned");
  shared_memo_counter_ =
      obs::GetCounter(metrics, "changepoint.shared_memo_hits");
  evaluations_counter_ =
      obs::GetCounter(metrics, "changepoint.aic_evaluations");
  exact_counter_ =
      obs::GetCounter(metrics, "changepoint.exact.aic_evaluations");
  approximate_counter_ =
      obs::GetCounter(metrics, "changepoint.approximate.aic_evaluations");
  multiple_counter_ = obs::GetCounter(metrics, "changepoint.multiple.fits");
}

void ChangePointDetector::ResetCache() {
  aic_cache_.clear();
  model_cache_.clear();
  fits_performed_ = 0;
}

double ChangePointDetector::CriterionOf(
    const FittedStructuralModel& fitted) const {
  return InformationCriterion(fitted.log_likelihood,
                              fitted.spec.TotalParameters(),
                              static_cast<int>(series_.size()),
                              options_.criterion);
}

Result<FittedStructuralModel> ChangePointDetector::FitWith(
    const std::vector<Intervention>& interventions) {
  StructuralSpec spec;
  spec.seasonal = options_.seasonal;
  spec.period = options_.period;
  spec.interventions = interventions;
  MIC_ASSIGN_OR_RETURN(FittedStructuralModel fitted,
                       FitStructuralModel(series_, spec, options_.fit));
  ++fits_performed_;
  return fitted;
}

Result<double> ChangePointDetector::AicAt(int t_cp) {
  auto it = aic_cache_.find(t_cp);
  if (it != aic_cache_.end()) {
    // Candidate answered from the memo: the search pruned a fit.
    obs::Increment(pruned_counter_);
    return it->second;
  }
  if (options_.shared_memo != nullptr) {
    // A detector that ran earlier under the same key already fitted
    // this candidate; adopt its verdict (criterion AND model, so
    // Finalize returns the identical best_model). Neither an
    // evaluation nor a fit is counted — nothing was computed.
    auto shared =
        options_.shared_memo->Lookup(options_.series_key, t_cp);
    if (shared.has_value()) {
      obs::Increment(shared_memo_counter_);
      aic_cache_.emplace(t_cp, shared->criterion);
      model_cache_.emplace(t_cp, std::move(shared->model));
      return shared->criterion;
    }
  }
  obs::Increment(evaluations_counter_);
  obs::Increment(active_counter_);

  if (t_cp == kNoChangePoint) {
    MIC_ASSIGN_OR_RETURN(FittedStructuralModel fitted, FitWith({}));
    const double criterion = CriterionOf(fitted);
    if (options_.shared_memo != nullptr) {
      options_.shared_memo->Store(options_.series_key, t_cp,
                                  {criterion, fitted});
    }
    aic_cache_.emplace(t_cp, criterion);
    model_cache_.emplace(t_cp, std::move(fitted));
    return criterion;
  }

  // One fit per candidate kind; keep the criterion-best shape.
  double best_criterion = std::numeric_limits<double>::infinity();
  std::optional<FittedStructuralModel> best_fit;
  Status last_error = Status::OK();
  for (InterventionKind kind : options_.candidate_kinds) {
    auto fitted = FitWith({{t_cp, kind}});
    if (!fitted.ok()) {
      last_error = fitted.status();
      continue;
    }
    const double criterion = CriterionOf(*fitted);
    if (criterion < best_criterion) {
      best_criterion = criterion;
      best_fit = std::move(fitted).value();
    }
  }
  if (!best_fit.has_value()) {
    return last_error.ok()
               ? Status::InvalidArgument("no candidate kinds configured")
               : last_error;
  }
  if (options_.shared_memo != nullptr) {
    options_.shared_memo->Store(options_.series_key, t_cp,
                                {best_criterion, *best_fit});
  }
  aic_cache_.emplace(t_cp, best_criterion);
  model_cache_.emplace(t_cp, std::move(*best_fit));
  return best_criterion;
}

Result<ChangePointResult> ChangePointDetector::Finalize(int best_candidate) {
  // Final comparison against the no-intervention model (the paper's
  // t = infinity candidate).
  MIC_ASSIGN_OR_RETURN(const double aic_without, AicAt(kNoChangePoint));
  MIC_ASSIGN_OR_RETURN(const double aic_best, AicAt(best_candidate));

  ChangePointResult result;
  result.aic_without_intervention = aic_without;
  result.fits_performed = fits_performed_;
  if (best_candidate != kNoChangePoint &&
      aic_best <= aic_without - options_.aic_margin) {
    result.has_change = true;
    result.change_point = best_candidate;
    result.best_aic = aic_best;
    result.best_model = model_cache_.at(best_candidate);
    if (!result.best_model.spec.interventions.empty()) {
      result.kind = result.best_model.spec.interventions.front().kind;
    }
  } else {
    result.has_change = false;
    result.change_point = kNoChangePoint;
    result.best_aic = aic_without;
    result.best_model = model_cache_.at(kNoChangePoint);
  }
  return result;
}

Result<ChangePointResult> ChangePointDetector::DetectExact() {
  active_counter_ = exact_counter_;
  obs::Increment(
      obs::GetCounter(options_.fit.metrics, "changepoint.exact.searches"));
  const int n = static_cast<int>(series_.size()) -
                std::max(options_.min_tail_observations - 1, 0);
  int best_candidate = kNoChangePoint;
  double best_aic = std::numeric_limits<double>::infinity();
  for (int t = options_.min_candidate; t < n; ++t) {
    auto aic = AicAt(t);
    if (!aic.ok()) continue;  // Numerically infeasible candidate.
    if (*aic <= best_aic) {
      best_aic = *aic;
      best_candidate = t;
    }
  }
  return Finalize(best_candidate);
}

Result<ChangePointResult> ChangePointDetector::DetectApproximate() {
  active_counter_ = approximate_counter_;
  obs::Increment(obs::GetCounter(options_.fit.metrics,
                                 "changepoint.approximate.searches"));
  const int n = static_cast<int>(series_.size()) -
                std::max(options_.min_tail_observations - 1, 0);
  int left = options_.min_candidate;
  int right = n - 1;
  if (left >= right) return Finalize(left < n ? left : kNoChangePoint);

  // Algorithm 2: halve towards the endpoint with the lower criterion.
  while (right - left > 1) {
    const int middle = (left + right) / 2;
    MIC_ASSIGN_OR_RETURN(const double aic_left, AicAt(left));
    MIC_ASSIGN_OR_RETURN(const double aic_right, AicAt(right));
    if (aic_left < aic_right) {
      right = middle;
    } else {
      left = middle;
    }
  }
  MIC_ASSIGN_OR_RETURN(const double aic_left, AicAt(left));
  MIC_ASSIGN_OR_RETURN(const double aic_right, AicAt(right));
  const int best = aic_left <= aic_right ? left : right;
  return Finalize(best);
}

Result<MultiChangePointResult> ChangePointDetector::DetectMultiple(
    int max_breaks) {
  if (max_breaks < 1) {
    return Status::InvalidArgument("max_breaks must be >= 1");
  }
  active_counter_ = multiple_counter_;
  obs::Increment(obs::GetCounter(options_.fit.metrics,
                                 "changepoint.multiple.searches"));
  const int n = static_cast<int>(series_.size()) -
                std::max(options_.min_tail_observations - 1, 0);

  MultiChangePointResult result;
  MIC_ASSIGN_OR_RETURN(FittedStructuralModel current, FitWith({}));
  obs::Increment(multiple_counter_);
  result.aic_without_intervention = CriterionOf(current);
  double current_criterion = result.aic_without_intervention;
  std::vector<Intervention> accepted;

  for (int round = 0; round < max_breaks; ++round) {
    double best_criterion = std::numeric_limits<double>::infinity();
    std::optional<FittedStructuralModel> best_fit;
    std::optional<Intervention> best_intervention;
    for (int t = options_.min_candidate; t < n; ++t) {
      for (InterventionKind kind : options_.candidate_kinds) {
        const Intervention candidate{t, kind};
        if (std::find(accepted.begin(), accepted.end(), candidate) !=
            accepted.end()) {
          continue;
        }
        std::vector<Intervention> trial = accepted;
        trial.push_back(candidate);
        auto fitted = FitWith(trial);
        obs::Increment(multiple_counter_);
        if (!fitted.ok()) continue;
        const double criterion = CriterionOf(*fitted);
        if (criterion < best_criterion) {
          best_criterion = criterion;
          best_fit = std::move(fitted).value();
          best_intervention = candidate;
        }
      }
    }
    if (!best_intervention.has_value() ||
        best_criterion > current_criterion - options_.aic_margin) {
      break;  // No further break pays for its parameter.
    }
    accepted.push_back(*best_intervention);
    current = std::move(*best_fit);
    current_criterion = best_criterion;
  }

  result.interventions = accepted;
  result.best_aic = current_criterion;
  result.best_model = std::move(current);
  result.fits_performed = fits_performed_;
  return result;
}

Result<std::vector<double>> ChangePointDetector::AicCurve() {
  active_counter_ = exact_counter_;
  const int n = static_cast<int>(series_.size());
  std::vector<double> curve(n, std::numeric_limits<double>::quiet_NaN());
  for (int t = options_.min_candidate; t < n; ++t) {
    auto aic = AicAt(t);
    if (aic.ok()) curve[t] = *aic;
  }
  return curve;
}

}  // namespace mic::ssm
