#include "ssm/changepoint.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "obs/metrics.h"

namespace mic::ssm {

std::string_view SelectionCriterionName(SelectionCriterion criterion) {
  switch (criterion) {
    case SelectionCriterion::kAic:
      return "AIC";
    case SelectionCriterion::kAicc:
      return "AICc";
    case SelectionCriterion::kBic:
      return "BIC";
  }
  return "?";
}

std::optional<SharedAicMemo::Entry> SharedAicMemo::Lookup(
    std::uint64_t series_key, int t_cp) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto series_it = entries_.find(series_key);
  if (series_it == entries_.end()) return std::nullopt;
  auto entry_it = series_it->second.find(t_cp);
  if (entry_it == series_it->second.end()) return std::nullopt;
  return entry_it->second;
}

void SharedAicMemo::Store(std::uint64_t series_key, int t_cp,
                          const Entry& entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_[series_key].emplace(t_cp, entry);  // First writer wins.
}

bool SharedAicMemo::Contains(std::uint64_t series_key, int t_cp) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto series_it = entries_.find(series_key);
  if (series_it == entries_.end()) return false;
  return series_it->second.find(t_cp) != series_it->second.end();
}

std::size_t SharedAicMemo::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [key, per_candidate] : entries_) {
    total += per_candidate.size();
  }
  return total;
}

double InformationCriterion(double log_likelihood, int parameters, int n,
                            SelectionCriterion criterion) {
  const double k = static_cast<double>(parameters);
  const double base = -2.0 * log_likelihood + 2.0 * k;
  switch (criterion) {
    case SelectionCriterion::kAic:
      return base;
    case SelectionCriterion::kAicc: {
      const double denominator = static_cast<double>(n) - k - 1.0;
      if (denominator <= 0.0) {
        return std::numeric_limits<double>::infinity();
      }
      return base + 2.0 * k * (k + 1.0) / denominator;
    }
    case SelectionCriterion::kBic:
      return -2.0 * log_likelihood +
             k * std::log(static_cast<double>(n));
  }
  return base;
}

Result<CandidateEvaluation> EvaluateCandidate(
    const std::vector<double>& series, const ChangePointOptions& options,
    int t_cp) {
  FitOptions fit_options = options.fit;
  fit_options.metrics = nullptr;  // Deltas travel in the result instead.
  CandidateEvaluation eval;
  const int n = static_cast<int>(series.size());

  auto fit_with = [&](const std::vector<Intervention>& interventions)
      -> Result<FittedStructuralModel> {
    StructuralSpec spec;
    spec.seasonal = options.seasonal;
    spec.period = options.period;
    spec.interventions = interventions;
    MIC_ASSIGN_OR_RETURN(FittedStructuralModel fitted,
                         FitStructuralModel(series, spec, fit_options));
    ++eval.fits_performed;
    eval.nelder_mead_evaluations +=
        static_cast<std::uint64_t>(fitted.optimizer_evaluations);
    eval.kalman_passes += fitted.kalman_passes;
    return fitted;
  };
  auto criterion_of = [&](const FittedStructuralModel& fitted) {
    return InformationCriterion(fitted.log_likelihood,
                                fitted.spec.TotalParameters(), n,
                                options.criterion);
  };

  if (t_cp == kNoChangePoint) {
    MIC_ASSIGN_OR_RETURN(FittedStructuralModel fitted, fit_with({}));
    eval.criterion = criterion_of(fitted);
    eval.model = std::move(fitted);
    return eval;
  }

  // One fit per candidate kind; keep the criterion-best shape.
  double best_criterion = std::numeric_limits<double>::infinity();
  std::optional<FittedStructuralModel> best_fit;
  Status last_error = Status::OK();
  for (InterventionKind kind : options.candidate_kinds) {
    auto fitted = fit_with({{t_cp, kind}});
    if (!fitted.ok()) {
      last_error = fitted.status();
      continue;
    }
    const double criterion = criterion_of(*fitted);
    if (criterion < best_criterion) {
      best_criterion = criterion;
      best_fit = std::move(fitted).value();
    }
  }
  if (!best_fit.has_value()) {
    return last_error.ok()
               ? Status::InvalidArgument("no candidate kinds configured")
               : last_error;
  }
  eval.criterion = best_criterion;
  eval.model = std::move(*best_fit);
  return eval;
}

ChangePointDetector::ChangePointDetector(std::vector<double> series,
                                         const ChangePointOptions& options)
    : series_(std::move(series)), options_(options) {
  obs::MetricsRegistry* metrics = options_.fit.metrics;
  pruned_counter_ =
      obs::GetCounter(metrics, "changepoint.candidates_pruned");
  shared_memo_counter_ =
      obs::GetCounter(metrics, "changepoint.shared_memo_hits");
  evaluations_counter_ =
      obs::GetCounter(metrics, "changepoint.aic_evaluations");
  exact_counter_ =
      obs::GetCounter(metrics, "changepoint.exact.aic_evaluations");
  approximate_counter_ =
      obs::GetCounter(metrics, "changepoint.approximate.aic_evaluations");
  multiple_counter_ = obs::GetCounter(metrics, "changepoint.multiple.fits");
}

void ChangePointDetector::ResetCache() {
  aic_cache_.clear();
  model_cache_.clear();
  fits_performed_ = 0;
  phase_ = SearchPhase::kIdle;
  pending_.clear();
  pending_set_.clear();
  staged_.clear();
  failed_this_search_.clear();
  sweep_values_.clear();
}

double ChangePointDetector::CriterionOf(
    const FittedStructuralModel& fitted) const {
  return InformationCriterion(fitted.log_likelihood,
                              fitted.spec.TotalParameters(),
                              static_cast<int>(series_.size()),
                              options_.criterion);
}

Result<FittedStructuralModel> ChangePointDetector::FitWith(
    const std::vector<Intervention>& interventions) {
  StructuralSpec spec;
  spec.seasonal = options_.seasonal;
  spec.period = options_.period;
  spec.interventions = interventions;
  MIC_ASSIGN_OR_RETURN(FittedStructuralModel fitted,
                       FitStructuralModel(series_, spec, options_.fit));
  ++fits_performed_;
  return fitted;
}

Result<double> ChangePointDetector::AicAt(int t_cp) {
  auto it = aic_cache_.find(t_cp);
  if (it != aic_cache_.end()) {
    // Candidate answered from the memo: the search pruned a fit.
    obs::Increment(pruned_counter_);
    return it->second;
  }
  if (options_.shared_memo != nullptr) {
    // A detector that ran earlier under the same key already fitted
    // this candidate; adopt its verdict (criterion AND model, so
    // Finalize returns the identical best_model). Neither an
    // evaluation nor a fit is counted — nothing was computed.
    auto shared =
        options_.shared_memo->Lookup(options_.series_key, t_cp);
    if (shared.has_value()) {
      obs::Increment(shared_memo_counter_);
      aic_cache_.emplace(t_cp, shared->criterion);
      model_cache_.emplace(t_cp, std::move(shared->model));
      return shared->criterion;
    }
  }
  obs::Increment(evaluations_counter_);
  obs::Increment(active_counter_);

  if (t_cp == kNoChangePoint) {
    MIC_ASSIGN_OR_RETURN(FittedStructuralModel fitted, FitWith({}));
    const double criterion = CriterionOf(fitted);
    if (options_.shared_memo != nullptr) {
      options_.shared_memo->Store(options_.series_key, t_cp,
                                  {criterion, fitted});
    }
    aic_cache_.emplace(t_cp, criterion);
    model_cache_.emplace(t_cp, std::move(fitted));
    return criterion;
  }

  // One fit per candidate kind; keep the criterion-best shape.
  double best_criterion = std::numeric_limits<double>::infinity();
  std::optional<FittedStructuralModel> best_fit;
  Status last_error = Status::OK();
  for (InterventionKind kind : options_.candidate_kinds) {
    auto fitted = FitWith({{t_cp, kind}});
    if (!fitted.ok()) {
      last_error = fitted.status();
      continue;
    }
    const double criterion = CriterionOf(*fitted);
    if (criterion < best_criterion) {
      best_criterion = criterion;
      best_fit = std::move(fitted).value();
    }
  }
  if (!best_fit.has_value()) {
    return last_error.ok()
               ? Status::InvalidArgument("no candidate kinds configured")
               : last_error;
  }
  if (options_.shared_memo != nullptr) {
    options_.shared_memo->Store(options_.series_key, t_cp,
                                {best_criterion, *best_fit});
  }
  aic_cache_.emplace(t_cp, best_criterion);
  model_cache_.emplace(t_cp, std::move(*best_fit));
  return best_criterion;
}

bool ChangePointDetector::NeedsEvaluation(int t_cp) const {
  if (aic_cache_.find(t_cp) != aic_cache_.end()) return false;
  if (options_.shared_memo != nullptr &&
      options_.shared_memo->Contains(options_.series_key, t_cp)) {
    return false;
  }
  return true;
}

void ChangePointDetector::Request(int t_cp) {
  if (pending_set_.insert(t_cp).second) pending_.push_back(t_cp);
}

std::optional<Result<double>> ChangePointDetector::MachineAicAt(int t_cp) {
  auto it = aic_cache_.find(t_cp);
  if (it != aic_cache_.end()) {
    obs::Increment(pruned_counter_);
    return Result<double>(it->second);
  }
  auto failed = failed_this_search_.find(t_cp);
  if (failed != failed_this_search_.end()) {
    return Result<double>(failed->second);
  }
  if (options_.shared_memo != nullptr) {
    auto shared = options_.shared_memo->Lookup(options_.series_key, t_cp);
    if (shared.has_value()) {
      obs::Increment(shared_memo_counter_);
      aic_cache_.emplace(t_cp, shared->criterion);
      model_cache_.emplace(t_cp, std::move(shared->model));
      return Result<double>(shared->criterion);
    }
  }
  auto staged = staged_.find(t_cp);
  if (staged == staged_.end()) {
    Request(t_cp);
    return std::nullopt;
  }

  // This is where the serial algorithm would have fitted the candidate:
  // consume the staged evaluation and perform the bookkeeping the fit
  // would have done, in the same order.
  obs::Increment(evaluations_counter_);
  obs::Increment(active_counter_);
  Result<CandidateEvaluation> evaluation = std::move(staged->second);
  staged_.erase(staged);
  if (!evaluation.ok()) {
    failed_this_search_.emplace(t_cp, evaluation.status());
    return Result<double>(evaluation.status());
  }
  CandidateEvaluation& eval = *evaluation;
  fits_performed_ += eval.fits_performed;
  obs::MetricsRegistry* metrics = options_.fit.metrics;
  if (metrics != nullptr && eval.fits_performed > 0) {
    obs::Increment(obs::GetCounter(metrics, "ssm.fits"),
                   static_cast<std::uint64_t>(eval.fits_performed));
    obs::Increment(
        obs::GetCounter(metrics, "ssm.nelder_mead_evaluations"),
        eval.nelder_mead_evaluations);
    obs::Increment(obs::GetCounter(metrics, "ssm.kalman_passes"),
                   eval.kalman_passes);
  }
  if (options_.shared_memo != nullptr) {
    options_.shared_memo->Store(options_.series_key, t_cp,
                                {eval.criterion, eval.model});
  }
  aic_cache_.emplace(t_cp, eval.criterion);
  model_cache_.emplace(t_cp, std::move(eval.model));
  return Result<double>(eval.criterion);
}

void ChangePointDetector::FailSearch(const Status& failure) {
  search_failure_ = failure;
  phase_ = SearchPhase::kFailed;
  pending_.clear();
  pending_set_.clear();
}

void ChangePointDetector::BeginSearch(bool approximate) {
  pending_.clear();
  pending_set_.clear();
  staged_.clear();
  failed_this_search_.clear();
  sweep_values_.clear();
  bisect_left_value_.reset();
  bisect_right_value_.reset();
  best_candidate_ = kNoChangePoint;
  search_failure_ = Status::OK();
  search_n_ = static_cast<int>(series_.size()) -
              std::max(options_.min_tail_observations - 1, 0);

  if (approximate) {
    active_counter_ = approximate_counter_;
    obs::Increment(obs::GetCounter(options_.fit.metrics,
                                   "changepoint.approximate.searches"));
    // The no-change fit is always needed by the final comparison;
    // requesting it up front (counter-neutrally) lets it ride the first
    // evaluation batch.
    if (NeedsEvaluation(kNoChangePoint)) Request(kNoChangePoint);
    bisect_left_ = options_.min_candidate;
    bisect_right_ = search_n_ - 1;
    if (bisect_left_ >= bisect_right_) {
      best_candidate_ =
          bisect_left_ < search_n_ ? bisect_left_ : kNoChangePoint;
      if (best_candidate_ != kNoChangePoint &&
          NeedsEvaluation(best_candidate_)) {
        Request(best_candidate_);
      }
      phase_ = SearchPhase::kFinalize;
      return;
    }
    phase_ = SearchPhase::kBisect;
    AdvanceSearch();
    return;
  }

  active_counter_ = exact_counter_;
  obs::Increment(
      obs::GetCounter(options_.fit.metrics, "changepoint.exact.searches"));
  phase_ = SearchPhase::kExactSweep;
  // Pass 1: answer what the caches can (with the counters the serial
  // sweep would bump at each hit) and queue everything else as one
  // batch.
  for (int t = options_.min_candidate; t < search_n_; ++t) {
    if (NeedsEvaluation(t)) {
      Request(t);
      continue;
    }
    auto value = MachineAicAt(t);
    if (value.has_value() && value->ok()) {
      sweep_values_.emplace(t, **value);
    }
  }
  if (NeedsEvaluation(kNoChangePoint)) Request(kNoChangePoint);
  AdvanceSearch();
}

void ChangePointDetector::AdvanceSearch() {
  if (!pending_.empty()) return;
  switch (phase_) {
    case SearchPhase::kExactSweep: {
      // Pass 2: consume the supplied sweep candidates in ascending
      // order; failed candidates are skipped like the serial sweep's.
      for (int t = options_.min_candidate; t < search_n_; ++t) {
        if (sweep_values_.find(t) != sweep_values_.end() ||
            failed_this_search_.find(t) != failed_this_search_.end()) {
          continue;
        }
        auto value = MachineAicAt(t);
        if (!value.has_value()) return;  // Still pending (defensive).
        if (value->ok()) sweep_values_.emplace(t, **value);
      }
      double best_aic = std::numeric_limits<double>::infinity();
      best_candidate_ = kNoChangePoint;
      for (const auto& [t, aic] : sweep_values_) {
        if (aic <= best_aic) {  // Ties go to the later candidate.
          best_aic = aic;
          best_candidate_ = t;
        }
      }
      phase_ = SearchPhase::kFinalize;
      return;
    }
    case SearchPhase::kBisect: {
      // Algorithm 2: halve towards the endpoint with the lower
      // criterion. Endpoint queries keep the serial order — the right
      // endpoint's counters are only touched once the left endpoint
      // resolved successfully (the serial loop aborts between the two
      // on error) — but a right endpoint that needs a fit is requested
      // alongside the left one so both ride the same batch.
      while (bisect_right_ - bisect_left_ > 1) {
        const int middle = (bisect_left_ + bisect_right_) / 2;
        if (!bisect_left_value_.has_value()) {
          auto value = MachineAicAt(bisect_left_);
          if (value.has_value()) {
            if (!value->ok()) {
              FailSearch(value->status());
              return;
            }
            bisect_left_value_ = **value;
          }
        }
        if (!bisect_left_value_.has_value()) {
          if (NeedsEvaluation(bisect_right_)) Request(bisect_right_);
          return;  // Blocked on the left endpoint.
        }
        if (!bisect_right_value_.has_value()) {
          auto value = MachineAicAt(bisect_right_);
          if (value.has_value()) {
            if (!value->ok()) {
              FailSearch(value->status());
              return;
            }
            bisect_right_value_ = **value;
          }
        }
        if (!bisect_right_value_.has_value()) return;
        if (*bisect_left_value_ < *bisect_right_value_) {
          bisect_right_ = middle;
        } else {
          bisect_left_ = middle;
        }
        bisect_left_value_.reset();
        bisect_right_value_.reset();
      }
      phase_ = SearchPhase::kFinalEval;
      AdvanceSearch();
      return;
    }
    case SearchPhase::kFinalEval: {
      // The serial post-loop AicAt(left) / AicAt(right) comparison.
      if (!bisect_left_value_.has_value()) {
        auto value = MachineAicAt(bisect_left_);
        if (value.has_value()) {
          if (!value->ok()) {
            FailSearch(value->status());
            return;
          }
          bisect_left_value_ = **value;
        }
      }
      if (!bisect_left_value_.has_value()) {
        if (NeedsEvaluation(bisect_right_)) Request(bisect_right_);
        return;
      }
      if (!bisect_right_value_.has_value()) {
        auto value = MachineAicAt(bisect_right_);
        if (value.has_value()) {
          if (!value->ok()) {
            FailSearch(value->status());
            return;
          }
          bisect_right_value_ = **value;
        }
      }
      if (!bisect_right_value_.has_value()) return;
      best_candidate_ = *bisect_left_value_ <= *bisect_right_value_
                            ? bisect_left_
                            : bisect_right_;
      phase_ = SearchPhase::kFinalize;
      return;
    }
    default:
      return;
  }
}

std::vector<int> ChangePointDetector::PendingCandidates() const {
  return pending_;
}

void ChangePointDetector::SupplyEvaluation(
    int t_cp, Result<CandidateEvaluation> evaluation) {
  auto it = pending_set_.find(t_cp);
  if (it == pending_set_.end()) return;  // Stale or speculative.
  pending_set_.erase(it);
  pending_.erase(std::find(pending_.begin(), pending_.end(), t_cp));
  staged_.emplace(t_cp, std::move(evaluation));
  if (pending_.empty()) AdvanceSearch();
}

bool ChangePointDetector::SearchDone() const {
  return pending_.empty() && (phase_ == SearchPhase::kFinalize ||
                              phase_ == SearchPhase::kFailed);
}

Result<ChangePointResult> ChangePointDetector::FinishSearch() {
  const SearchPhase phase = phase_;
  phase_ = SearchPhase::kIdle;
  Result<ChangePointResult> result = [&]() -> Result<ChangePointResult> {
    if (phase == SearchPhase::kFailed) return search_failure_;
    if (phase != SearchPhase::kFinalize) {
      return Status::FailedPrecondition(
          "FinishSearch called before the search completed");
    }
    return Finalize(best_candidate_);
  }();
  // Speculative evaluations an aborted search never consumed are
  // dropped here, unseen by any counter.
  pending_.clear();
  pending_set_.clear();
  staged_.clear();
  failed_this_search_.clear();
  sweep_values_.clear();
  return result;
}

Result<ChangePointResult> ChangePointDetector::DriveSearch() {
  while (!SearchDone()) {
    const std::vector<int> batch = PendingCandidates();
    for (int t_cp : batch) {
      SupplyEvaluation(t_cp, EvaluateCandidate(series_, options_, t_cp));
    }
  }
  return FinishSearch();
}

Result<ChangePointResult> ChangePointDetector::Finalize(int best_candidate) {
  // Final comparison against the no-intervention model (the paper's
  // t = infinity candidate). Both values resolve from the caches or the
  // staged evaluations; the counter effects land exactly where the
  // serial algorithm's AicAt calls would put them.
  auto without = MachineAicAt(kNoChangePoint);
  if (!without.has_value()) {
    return Status::Internal(
        "change point search finished without the no-change fit");
  }
  if (!without->ok()) return without->status();
  const double aic_without = **without;
  auto best = MachineAicAt(best_candidate);
  if (!best.has_value()) {
    return Status::Internal(
        "change point search finished without the best-candidate fit");
  }
  if (!best->ok()) return best->status();
  const double aic_best = **best;

  ChangePointResult result;
  result.aic_without_intervention = aic_without;
  result.fits_performed = fits_performed_;
  if (best_candidate != kNoChangePoint &&
      aic_best <= aic_without - options_.aic_margin) {
    result.has_change = true;
    result.change_point = best_candidate;
    result.best_aic = aic_best;
    result.best_model = model_cache_.at(best_candidate);
    if (!result.best_model.spec.interventions.empty()) {
      result.kind = result.best_model.spec.interventions.front().kind;
    }
  } else {
    result.has_change = false;
    result.change_point = kNoChangePoint;
    result.best_aic = aic_without;
    result.best_model = model_cache_.at(kNoChangePoint);
  }
  return result;
}

Result<ChangePointResult> ChangePointDetector::DetectExact() {
  BeginSearch(/*approximate=*/false);
  return DriveSearch();
}

Result<ChangePointResult> ChangePointDetector::DetectApproximate() {
  BeginSearch(/*approximate=*/true);
  return DriveSearch();
}

Result<MultiChangePointResult> ChangePointDetector::DetectMultiple(
    int max_breaks) {
  if (max_breaks < 1) {
    return Status::InvalidArgument("max_breaks must be >= 1");
  }
  active_counter_ = multiple_counter_;
  obs::Increment(obs::GetCounter(options_.fit.metrics,
                                 "changepoint.multiple.searches"));
  const int n = static_cast<int>(series_.size()) -
                std::max(options_.min_tail_observations - 1, 0);

  MultiChangePointResult result;
  MIC_ASSIGN_OR_RETURN(FittedStructuralModel current, FitWith({}));
  obs::Increment(multiple_counter_);
  result.aic_without_intervention = CriterionOf(current);
  double current_criterion = result.aic_without_intervention;
  std::vector<Intervention> accepted;

  for (int round = 0; round < max_breaks; ++round) {
    double best_criterion = std::numeric_limits<double>::infinity();
    std::optional<FittedStructuralModel> best_fit;
    std::optional<Intervention> best_intervention;
    for (int t = options_.min_candidate; t < n; ++t) {
      for (InterventionKind kind : options_.candidate_kinds) {
        const Intervention candidate{t, kind};
        if (std::find(accepted.begin(), accepted.end(), candidate) !=
            accepted.end()) {
          continue;
        }
        std::vector<Intervention> trial = accepted;
        trial.push_back(candidate);
        auto fitted = FitWith(trial);
        obs::Increment(multiple_counter_);
        if (!fitted.ok()) continue;
        const double criterion = CriterionOf(*fitted);
        if (criterion < best_criterion) {
          best_criterion = criterion;
          best_fit = std::move(fitted).value();
          best_intervention = candidate;
        }
      }
    }
    if (!best_intervention.has_value() ||
        best_criterion > current_criterion - options_.aic_margin) {
      break;  // No further break pays for its parameter.
    }
    accepted.push_back(*best_intervention);
    current = std::move(*best_fit);
    current_criterion = best_criterion;
  }

  result.interventions = accepted;
  result.best_aic = current_criterion;
  result.best_model = std::move(current);
  result.fits_performed = fits_performed_;
  return result;
}

Result<std::vector<double>> ChangePointDetector::AicCurve() {
  active_counter_ = exact_counter_;
  const int n = static_cast<int>(series_.size());
  std::vector<double> curve(n, std::numeric_limits<double>::quiet_NaN());
  for (int t = options_.min_candidate; t < n; ++t) {
    auto aic = AicAt(t);
    if (aic.ok()) curve[t] = *aic;
  }
  return curve;
}

}  // namespace mic::ssm
