#include "ssm/optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mic::ssm {

Result<NelderMeadResult> MinimizeNelderMead(
    const std::function<double(const std::vector<double>&)>& objective,
    const std::vector<double>& start, const NelderMeadOptions& options) {
  if (start.empty()) {
    return Status::InvalidArgument("empty start point");
  }
  const std::size_t dim = start.size();

  // Standard coefficients.
  constexpr double kReflect = 1.0;
  constexpr double kExpand = 2.0;
  constexpr double kContract = 0.5;
  constexpr double kShrink = 0.5;

  NelderMeadResult result;
  auto evaluate = [&](const std::vector<double>& point) {
    ++result.evaluations;
    const double value = objective(point);
    return std::isfinite(value) ? value
                                : std::numeric_limits<double>::infinity();
  };

  // Initial simplex: start plus one step along each axis.
  std::vector<std::vector<double>> simplex;
  std::vector<double> values;
  simplex.reserve(dim + 1);
  simplex.push_back(start);
  for (std::size_t i = 0; i < dim; ++i) {
    std::vector<double> vertex = start;
    vertex[i] += options.initial_step;
    simplex.push_back(std::move(vertex));
  }
  values.reserve(dim + 1);
  for (const auto& vertex : simplex) values.push_back(evaluate(vertex));

  std::vector<std::size_t> order(dim + 1);
  while (result.evaluations < options.max_evaluations) {
    // Order vertices by value.
    for (std::size_t i = 0; i <= dim; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&values](std::size_t a, std::size_t b) {
                return values[a] < values[b];
              });
    const std::size_t best = order[0];
    const std::size_t worst = order[dim];
    const std::size_t second_worst = order[dim - 1];

    if (std::isfinite(values[best]) &&
        values[worst] - values[best] < options.tolerance) {
      result.converged = true;
      break;
    }

    // Centroid of all but the worst vertex.
    std::vector<double> centroid(dim, 0.0);
    for (std::size_t i = 0; i <= dim; ++i) {
      if (i == worst) continue;
      for (std::size_t j = 0; j < dim; ++j) centroid[j] += simplex[i][j];
    }
    for (double& coordinate : centroid) {
      coordinate /= static_cast<double>(dim);
    }

    auto blend = [&](double alpha) {
      std::vector<double> point(dim);
      for (std::size_t j = 0; j < dim; ++j) {
        point[j] = centroid[j] + alpha * (centroid[j] - simplex[worst][j]);
      }
      return point;
    };

    const std::vector<double> reflected = blend(kReflect);
    const double reflected_value = evaluate(reflected);
    if (reflected_value < values[order[0]]) {
      // Try expanding further.
      const std::vector<double> expanded = blend(kExpand);
      const double expanded_value = evaluate(expanded);
      if (expanded_value < reflected_value) {
        simplex[worst] = expanded;
        values[worst] = expanded_value;
      } else {
        simplex[worst] = reflected;
        values[worst] = reflected_value;
      }
      continue;
    }
    if (reflected_value < values[second_worst]) {
      simplex[worst] = reflected;
      values[worst] = reflected_value;
      continue;
    }
    // Contract (outside if the reflection helped at all, inside otherwise).
    const bool outside = reflected_value < values[worst];
    const std::vector<double> contracted =
        blend(outside ? kReflect * kContract : -kContract);
    const double contracted_value = evaluate(contracted);
    if (contracted_value < std::min(reflected_value, values[worst])) {
      simplex[worst] = contracted;
      values[worst] = contracted_value;
      continue;
    }
    // Shrink towards the best vertex.
    for (std::size_t i = 0; i <= dim; ++i) {
      if (i == best) continue;
      for (std::size_t j = 0; j < dim; ++j) {
        simplex[i][j] =
            simplex[best][j] + kShrink * (simplex[i][j] - simplex[best][j]);
      }
      values[i] = evaluate(simplex[i]);
    }
  }

  std::size_t best = 0;
  for (std::size_t i = 1; i <= dim; ++i) {
    if (values[i] < values[best]) best = i;
  }
  result.best_point = simplex[best];
  result.best_value = values[best];
  return result;
}

}  // namespace mic::ssm
