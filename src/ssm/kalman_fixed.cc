#include "ssm/kalman_fixed.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <string>

#include "la/matrix.h"

namespace mic::ssm {
namespace {

constexpr double kLogTwoPi = 1.8378770664093453;

bool IsMissing(double x) { return std::isnan(x); }

// --- Flat-array twins of the la:: kernels. ---------------------------
//
// Each helper reproduces the corresponding la:: loop body verbatim
// (including the a_rk == 0.0 shortcut of MultiplyInto, which changes
// the accumulation sequence for the sparse transition/selection
// matrices), so a fixed pass and a dynamic pass accumulate every double
// in the same order and agree bit for bit.

template <int Dim>
inline void MatMul(const double* a, const double* b, double* out) {
  for (int i = 0; i < Dim * Dim; ++i) out[i] = 0.0;
  for (int r = 0; r < Dim; ++r) {
    for (int k = 0; k < Dim; ++k) {
      const double a_rk = a[r * Dim + k];
      if (a_rk == 0.0) continue;
      for (int c = 0; c < Dim; ++c) {
        out[r * Dim + c] += a_rk * b[k * Dim + c];
      }
    }
  }
}

template <int Dim>
inline void MatVec(const double* m, const double* v, double* out) {
  for (int r = 0; r < Dim; ++r) {
    double total = 0.0;
    for (int c = 0; c < Dim; ++c) total += m[r * Dim + c] * v[c];
    out[r] = total;
  }
}

template <int Dim>
inline double Dot(const double* a, const double* b) {
  double total = 0.0;
  for (int i = 0; i < Dim; ++i) total += a[i] * b[i];
  return total;
}

template <int Dim>
inline void Symmetrize(double* m) {
  for (int r = 0; r < Dim; ++r) {
    for (int c = r + 1; c < Dim; ++c) {
      const double avg = 0.5 * (m[r * Dim + c] + m[c * Dim + r]);
      m[r * Dim + c] = avg;
      m[c * Dim + r] = avg;
    }
  }
}

template <int Dim>
inline double MaxAbs(const double* m) {
  double best = 0.0;
  for (int i = 0; i < Dim * Dim; ++i) {
    best = std::max(best, std::fabs(m[i]));
  }
  return best;
}

// Per-pass constant data copied to flat storage once. RQR' and T' are
// produced by the very la:: calls the dynamic setup uses, so their bits
// match by construction.
template <int Dim>
struct FixedModel {
  double transition[Dim * Dim] = {};
  double transition_t[Dim * Dim] = {};
  double rqr[Dim * Dim] = {};
  double z_base[Dim] = {};
  bool has_time_varying = false;

  explicit FixedModel(const StateSpaceModel& model) {
    la::Matrix rq, selection_t, rqr_m, transition_t_m;
    la::MultiplyInto(model.selection, model.state_noise, &rq);
    la::TransposeInto(model.selection, &selection_t);
    la::MultiplyInto(rq, selection_t, &rqr_m);
    la::TransposeInto(model.transition, &transition_t_m);
    for (int r = 0; r < Dim; ++r) {
      for (int c = 0; c < Dim; ++c) {
        transition[r * Dim + c] = model.transition(r, c);
        transition_t[r * Dim + c] = transition_t_m(r, c);
        rqr[r * Dim + c] = rqr_m(r, c);
      }
    }
    for (int i = 0; i < Dim; ++i) z_base[i] = model.observation[i];
    has_time_varying = !model.time_varying.empty();
  }

  // Z_t into `z` (same values as ObservationVectorInto).
  void ObservationAt(const StateSpaceModel& model, std::size_t t,
                     double* z) const {
    for (int i = 0; i < Dim; ++i) z[i] = z_base[i];
    if (!has_time_varying) return;
    for (const TimeVaryingObservation& entry : model.time_varying) {
      if (t < entry.values.size()) {
        z[entry.state_index] = entry.values[t];
      }
    }
  }
};

// covariance <- T * source * T' + rqr, symmetrized (the dynamic path's
// AdvanceCovariance, with the buffer swap realized as a copy).
template <int Dim>
inline void AdvanceCovariance(const FixedModel<Dim>& fm, const double* source,
                              double* cov, double* tmp, double* next) {
  MatMul<Dim>(fm.transition, source, tmp);
  MatMul<Dim>(tmp, fm.transition_t, next);
  for (int i = 0; i < Dim * Dim; ++i) next[i] += fm.rqr[i];
  Symmetrize<Dim>(next);
  for (int i = 0; i < Dim * Dim; ++i) cov[i] = next[i];
}

template <int Dim>
la::Vector ToVector(const double* v) {
  la::Vector out(Dim);
  for (int i = 0; i < Dim; ++i) out[i] = v[i];
  return out;
}

template <int Dim>
la::Matrix ToMatrix(const double* m) {
  la::Matrix out(Dim, Dim);
  for (int r = 0; r < Dim; ++r) {
    for (int c = 0; c < Dim; ++c) out(r, c) = m[r * Dim + c];
  }
  return out;
}

// --- Fixed twin of RunFilter (see kalman.cc for the annotated form; the
// control flow here matches it statement for statement). --------------
template <int Dim>
Result<FilterResult> RunFilterImpl(const StateSpaceModel& model,
                                   const std::vector<double>& observations,
                                   const KalmanOptions& options) {
  MIC_RETURN_IF_ERROR(model.Validate());
  const std::size_t n = observations.size();

  FilterResult result;
  result.predictions.resize(n);
  result.prediction_variances.resize(n);
  result.innovations.resize(n);
  if (options.store_states) {
    result.predicted_states.reserve(n);
    result.predicted_covariances.reserve(n);
  }

  const FixedModel<Dim> fm(model);
  double z[Dim] = {};
  double state[Dim] = {};
  double tmp_vec[Dim] = {};
  double filtered[Dim] = {};
  double pz[Dim] = {};
  double steady_pz[Dim] = {};
  double cov[Dim * Dim] = {};
  double filtered_cov[Dim * Dim] = {};
  double tmp_mat[Dim * Dim] = {};
  double next_cov[Dim * Dim] = {};
  for (int i = 0; i < Dim; ++i) state[i] = model.initial_state[i];
  for (int r = 0; r < Dim; ++r) {
    for (int c = 0; c < Dim; ++c) {
      cov[r * Dim + c] = model.initial_covariance(r, c);
    }
  }

  int skipped_diffuse = 0;
  double log_likelihood = 0.0;
  int effective = 0;

  const bool may_go_steady = options.allow_steady_state &&
                             model.time_varying.empty() &&
                             !options.store_states &&
                             n >= static_cast<std::size_t>(Dim * Dim) + 20;
  bool steady = false;
  double steady_variance = 0.0;

  for (std::size_t t = 0; t < n; ++t) {
    fm.ObservationAt(model, t, z);
    if (options.store_states) {
      result.predicted_states.push_back(ToVector<Dim>(state));
      result.predicted_covariances.push_back(ToMatrix<Dim>(cov));
    }

    if (!steady) MatVec<Dim>(cov, z, pz);
    const double* pz_sel = steady ? steady_pz : pz;
    const double prediction = Dot<Dim>(z, state);
    const double prediction_variance =
        steady ? steady_variance
               : Dot<Dim>(z, pz_sel) + model.observation_variance;
    result.predictions[t] = prediction;
    result.prediction_variances[t] = prediction_variance;

    const double x = observations[t];
    if (IsMissing(x)) {
      result.innovations[t] = std::numeric_limits<double>::quiet_NaN();
      MatVec<Dim>(fm.transition, state, tmp_vec);
      for (int i = 0; i < Dim; ++i) state[i] = tmp_vec[i];
      if (steady) {
        steady = false;
      }
      AdvanceCovariance<Dim>(fm, cov, cov, tmp_mat, next_cov);
      continue;
    }

    if (!(prediction_variance > 0.0) ||
        !std::isfinite(prediction_variance)) {
      return Status::NumericError(
          "non-positive prediction variance at t=" + std::to_string(t));
    }

    const double innovation = x - prediction;
    result.innovations[t] = innovation;

    if (prediction_variance > options.diffuse_variance_threshold) {
      ++skipped_diffuse;
    } else {
      log_likelihood -=
          0.5 * (kLogTwoPi + std::log(prediction_variance) +
                 innovation * innovation / prediction_variance);
      ++effective;
    }

    const double gain_scale = innovation / prediction_variance;
    for (int i = 0; i < Dim; ++i) {
      filtered[i] = state[i] + pz_sel[i] * gain_scale;
    }
    MatVec<Dim>(fm.transition, filtered, tmp_vec);
    for (int i = 0; i < Dim; ++i) state[i] = tmp_vec[i];
    if (steady) continue;  // Covariance frozen.

    for (int r = 0; r < Dim; ++r) {
      for (int c = 0; c < Dim; ++c) {
        filtered_cov[r * Dim + c] =
            cov[r * Dim + c] - pz[r] * pz[c] / prediction_variance;
      }
    }
    MatMul<Dim>(fm.transition, filtered_cov, tmp_mat);
    MatMul<Dim>(tmp_mat, fm.transition_t, next_cov);
    for (int i = 0; i < Dim * Dim; ++i) next_cov[i] += fm.rqr[i];
    Symmetrize<Dim>(next_cov);
    if (may_go_steady) {
      double max_change = 0.0;
      for (int r = 0; r < Dim; ++r) {
        for (int c = 0; c < Dim; ++c) {
          max_change = std::max(
              max_change,
              std::fabs(next_cov[r * Dim + c] - cov[r * Dim + c]));
        }
      }
      const double scale = std::max(MaxAbs<Dim>(cov), 1e-300);
      if (max_change <= options.steady_state_tolerance * scale) {
        steady = true;
        MatVec<Dim>(next_cov, z, steady_pz);
        steady_variance =
            Dot<Dim>(z, steady_pz) + model.observation_variance;
      }
    }
    for (int i = 0; i < Dim * Dim; ++i) cov[i] = next_cov[i];
  }

  result.log_likelihood = log_likelihood;
  result.effective_observations = effective;
  result.skipped_diffuse = skipped_diffuse;
  result.final_state = ToVector<Dim>(state);
  result.final_covariance = ToMatrix<Dim>(cov);
  return result;
}

// --- Fixed twin of RunFilterWithRegression. --------------------------
template <int Dim>
Result<RegressionFilterResult> RunRegressionImpl(
    const StateSpaceModel& model, const std::vector<double>& observations,
    const std::vector<double>& regressor, const KalmanOptions& options) {
  if (regressor.size() < observations.size()) {
    return Status::InvalidArgument(
        "regressor shorter than the observations");
  }
  MIC_RETURN_IF_ERROR(model.Validate());
  const std::size_t n = observations.size();

  RegressionFilterResult result;
  FilterResult& base = result.base;
  base.predictions.resize(n);
  base.prediction_variances.resize(n);
  base.innovations.resize(n);
  if (options.store_states) {
    base.predicted_states.reserve(n);
    base.predicted_covariances.reserve(n);
  }

  const FixedModel<Dim> fm(model);
  double z[Dim] = {};
  double state[Dim] = {};
  double state_aux[Dim] = {};
  double tmp_vec[Dim] = {};
  double filtered[Dim] = {};
  double filtered_aux[Dim] = {};
  double pz[Dim] = {};
  double cov[Dim * Dim] = {};
  double filtered_cov[Dim * Dim] = {};
  double tmp_mat[Dim * Dim] = {};
  double next_cov[Dim * Dim] = {};
  for (int i = 0; i < Dim; ++i) state[i] = model.initial_state[i];
  for (int r = 0; r < Dim; ++r) {
    for (int c = 0; c < Dim; ++c) {
      cov[r * Dim + c] = model.initial_covariance(r, c);
    }
  }

  double log_likelihood = 0.0;
  int effective = 0;
  int skipped_diffuse = 0;
  double s_ww = 0.0;
  double s_wx = 0.0;

  for (std::size_t t = 0; t < n; ++t) {
    fm.ObservationAt(model, t, z);
    if (options.store_states) {
      base.predicted_states.push_back(ToVector<Dim>(state));
      base.predicted_covariances.push_back(ToMatrix<Dim>(cov));
    }

    MatVec<Dim>(cov, z, pz);
    const double prediction_x = Dot<Dim>(z, state);
    const double prediction_variance =
        Dot<Dim>(z, pz) + model.observation_variance;
    base.predictions[t] = prediction_x;
    base.prediction_variances[t] = prediction_variance;

    const double x = observations[t];
    if (IsMissing(x)) {
      base.innovations[t] = std::numeric_limits<double>::quiet_NaN();
      MatVec<Dim>(fm.transition, state, tmp_vec);
      for (int i = 0; i < Dim; ++i) state[i] = tmp_vec[i];
      MatVec<Dim>(fm.transition, state_aux, tmp_vec);
      for (int i = 0; i < Dim; ++i) state_aux[i] = tmp_vec[i];
      AdvanceCovariance<Dim>(fm, cov, cov, tmp_mat, next_cov);
      continue;
    }
    if (!(prediction_variance > 0.0) ||
        !std::isfinite(prediction_variance)) {
      return Status::NumericError(
          "non-positive prediction variance at t=" + std::to_string(t));
    }

    const double v_x = x - prediction_x;
    const double v_w = regressor[t] - Dot<Dim>(z, state_aux);
    base.innovations[t] = v_x;

    if (prediction_variance > options.diffuse_variance_threshold) {
      ++skipped_diffuse;
    } else {
      log_likelihood -=
          0.5 * (kLogTwoPi + std::log(prediction_variance) +
                 v_x * v_x / prediction_variance);
      ++effective;
      s_ww += v_w * v_w / prediction_variance;
      s_wx += v_w * v_x / prediction_variance;
    }

    const double gain_x = v_x / prediction_variance;
    const double gain_w = v_w / prediction_variance;
    for (int i = 0; i < Dim; ++i) {
      filtered[i] = state[i] + pz[i] * gain_x;
      filtered_aux[i] = state_aux[i] + pz[i] * gain_w;
    }
    for (int r = 0; r < Dim; ++r) {
      for (int c = 0; c < Dim; ++c) {
        filtered_cov[r * Dim + c] =
            cov[r * Dim + c] - pz[r] * pz[c] / prediction_variance;
      }
    }
    MatVec<Dim>(fm.transition, filtered, state);
    MatVec<Dim>(fm.transition, filtered_aux, state_aux);
    AdvanceCovariance<Dim>(fm, filtered_cov, cov, tmp_mat, next_cov);
  }

  base.log_likelihood = log_likelihood;
  base.effective_observations = effective;
  base.skipped_diffuse = skipped_diffuse;
  base.final_state = ToVector<Dim>(state);
  base.final_covariance = ToMatrix<Dim>(cov);
  if (s_ww > 1e-12) {
    result.identified = true;
    result.lambda = s_wx / s_ww;
    result.lambda_variance = 1.0 / s_ww;
    result.profiled_log_likelihood =
        result.base.log_likelihood + 0.5 * s_wx * s_wx / s_ww;
  } else {
    result.identified = false;
    result.lambda = 0.0;
    result.lambda_variance = std::numeric_limits<double>::infinity();
    result.profiled_log_likelihood = result.base.log_likelihood;
  }
  return result;
}

// --- Fixed twin of RunFilterWithRegressors. --------------------------
template <int Dim>
Result<MultiRegressionFilterResult> RunRegressorsImpl(
    const StateSpaceModel& model, const std::vector<double>& observations,
    const std::vector<std::vector<double>>& regressors,
    const KalmanOptions& options) {
  const std::size_t k = regressors.size();
  for (const auto& regressor : regressors) {
    if (regressor.size() < observations.size()) {
      return Status::InvalidArgument(
          "regressor shorter than the observations");
    }
  }
  MIC_RETURN_IF_ERROR(model.Validate());
  const std::size_t n = observations.size();

  MultiRegressionFilterResult result;
  FilterResult& base = result.base;
  base.predictions.resize(n);
  base.prediction_variances.resize(n);
  base.innovations.resize(n);

  const FixedModel<Dim> fm(model);
  double z[Dim] = {};
  double state[Dim] = {};
  double tmp_vec[Dim] = {};
  double filtered[Dim] = {};
  double pz[Dim] = {};
  double cov[Dim * Dim] = {};
  double filtered_cov[Dim * Dim] = {};
  double tmp_mat[Dim * Dim] = {};
  double next_cov[Dim * Dim] = {};
  for (int i = 0; i < Dim; ++i) state[i] = model.initial_state[i];
  for (int r = 0; r < Dim; ++r) {
    for (int c = 0; c < Dim; ++c) {
      cov[r * Dim + c] = model.initial_covariance(r, c);
    }
  }
  // K is a per-call property of the query, so the per-regressor state
  // means stay heap-backed exactly as in the dynamic path.
  std::vector<std::array<double, Dim>> state_w(k);
  for (auto& sw : state_w) sw.fill(0.0);

  double log_likelihood = 0.0;
  int effective = 0;
  int skipped_diffuse = 0;
  la::Matrix s_ww(k, k);
  la::Vector s_wx(k);
  std::vector<double> v_w(k);

  for (std::size_t t = 0; t < n; ++t) {
    fm.ObservationAt(model, t, z);
    MatVec<Dim>(cov, z, pz);
    const double prediction_x = Dot<Dim>(z, state);
    const double prediction_variance =
        Dot<Dim>(z, pz) + model.observation_variance;
    base.predictions[t] = prediction_x;
    base.prediction_variances[t] = prediction_variance;

    const double x = observations[t];
    if (IsMissing(x)) {
      base.innovations[t] = std::numeric_limits<double>::quiet_NaN();
      MatVec<Dim>(fm.transition, state, tmp_vec);
      for (int i = 0; i < Dim; ++i) state[i] = tmp_vec[i];
      for (auto& sw : state_w) {
        MatVec<Dim>(fm.transition, sw.data(), tmp_vec);
        for (int i = 0; i < Dim; ++i) sw[i] = tmp_vec[i];
      }
      AdvanceCovariance<Dim>(fm, cov, cov, tmp_mat, next_cov);
      continue;
    }
    if (!(prediction_variance > 0.0) ||
        !std::isfinite(prediction_variance)) {
      return Status::NumericError(
          "non-positive prediction variance at t=" + std::to_string(t));
    }

    const double v_x = x - prediction_x;
    base.innovations[t] = v_x;
    for (std::size_t j = 0; j < k; ++j) {
      v_w[j] = regressors[j][t] - Dot<Dim>(z, state_w[j].data());
    }

    if (prediction_variance > options.diffuse_variance_threshold) {
      ++skipped_diffuse;
    } else {
      log_likelihood -=
          0.5 * (kLogTwoPi + std::log(prediction_variance) +
                 v_x * v_x / prediction_variance);
      ++effective;
      for (std::size_t a = 0; a < k; ++a) {
        s_wx[a] += v_w[a] * v_x / prediction_variance;
        for (std::size_t b = 0; b < k; ++b) {
          s_ww(a, b) += v_w[a] * v_w[b] / prediction_variance;
        }
      }
    }

    const double gain_x = v_x / prediction_variance;
    for (int i = 0; i < Dim; ++i) {
      filtered[i] = state[i] + pz[i] * gain_x;
    }
    for (std::size_t j = 0; j < k; ++j) {
      const double gain_w = v_w[j] / prediction_variance;
      for (int i = 0; i < Dim; ++i) {
        state_w[j][i] += pz[i] * gain_w;
      }
      MatVec<Dim>(fm.transition, state_w[j].data(), tmp_vec);
      for (int i = 0; i < Dim; ++i) state_w[j][i] = tmp_vec[i];
    }
    for (int r = 0; r < Dim; ++r) {
      for (int c = 0; c < Dim; ++c) {
        filtered_cov[r * Dim + c] =
            cov[r * Dim + c] - pz[r] * pz[c] / prediction_variance;
      }
    }
    MatVec<Dim>(fm.transition, filtered, state);
    AdvanceCovariance<Dim>(fm, filtered_cov, cov, tmp_mat, next_cov);
  }

  base.log_likelihood = log_likelihood;
  base.effective_observations = effective;
  base.skipped_diffuse = skipped_diffuse;
  base.final_state = ToVector<Dim>(state);
  base.final_covariance = ToMatrix<Dim>(cov);

  result.lambdas.assign(k, 0.0);
  result.profiled_log_likelihood = log_likelihood;
  if (k > 0) {
    auto solution = la::CholeskySolve(s_ww, s_wx);
    if (solution.ok()) {
      result.identified = true;
      result.lambdas = solution->data();
      result.profiled_log_likelihood =
          log_likelihood + 0.5 * la::Dot(s_wx, *solution);
    }
  } else {
    result.identified = true;
  }
  return result;
}

Status NoKernelError(std::size_t dim) {
  return Status::InvalidArgument(
      "no fixed Kalman kernel compiled for state dimension " +
      std::to_string(dim) +
      " (use KalmanKernel::kAuto or kDynamic, or add the dimension to "
      "kalman_fixed.cc)");
}

}  // namespace

// The structural models the pipeline fits: LL (dim 1), LL + two
// trigonometric harmonics (dim 5), and LL + period-12 dummy seasonal
// (dim 12). Adding a dimension is one line per dispatcher.
bool HasFixedKernel(std::size_t state_dim) {
  return state_dim == 1 || state_dim == 5 || state_dim == 12;
}

Result<FilterResult> RunFilterFixed(const StateSpaceModel& model,
                                    const std::vector<double>& observations,
                                    const KalmanOptions& options) {
  switch (model.state_dim()) {
    case 1:
      return RunFilterImpl<1>(model, observations, options);
    case 5:
      return RunFilterImpl<5>(model, observations, options);
    case 12:
      return RunFilterImpl<12>(model, observations, options);
    default:
      return NoKernelError(model.state_dim());
  }
}

Result<RegressionFilterResult> RunFilterWithRegressionFixed(
    const StateSpaceModel& model, const std::vector<double>& observations,
    const std::vector<double>& regressor, const KalmanOptions& options) {
  switch (model.state_dim()) {
    case 1:
      return RunRegressionImpl<1>(model, observations, regressor, options);
    case 5:
      return RunRegressionImpl<5>(model, observations, regressor, options);
    case 12:
      return RunRegressionImpl<12>(model, observations, regressor, options);
    default:
      return NoKernelError(model.state_dim());
  }
}

Result<MultiRegressionFilterResult> RunFilterWithRegressorsFixed(
    const StateSpaceModel& model, const std::vector<double>& observations,
    const std::vector<std::vector<double>>& regressors,
    const KalmanOptions& options) {
  switch (model.state_dim()) {
    case 1:
      return RunRegressorsImpl<1>(model, observations, regressors, options);
    case 5:
      return RunRegressorsImpl<5>(model, observations, regressors, options);
    case 12:
      return RunRegressorsImpl<12>(model, observations, regressors,
                                   options);
    default:
      return NoKernelError(model.state_dim());
  }
}

bool ResolveToFixedKernel(KalmanKernel kernel,
                          const StateSpaceModel& model) {
  switch (kernel) {
    case KalmanKernel::kDynamic:
      return false;
    case KalmanKernel::kFixed:
      return true;
    case KalmanKernel::kAuto:
      return HasFixedKernel(model.state_dim());
  }
  return false;
}

Result<FilterResult> RunFilterKernel(KalmanKernel kernel,
                                     const StateSpaceModel& model,
                                     const std::vector<double>& observations,
                                     const KalmanOptions& options) {
  return ResolveToFixedKernel(kernel, model)
             ? RunFilterFixed(model, observations, options)
             : RunFilter(model, observations, options);
}

Result<RegressionFilterResult> RunFilterWithRegressionKernel(
    KalmanKernel kernel, const StateSpaceModel& model,
    const std::vector<double>& observations,
    const std::vector<double>& regressor, const KalmanOptions& options) {
  return ResolveToFixedKernel(kernel, model)
             ? RunFilterWithRegressionFixed(model, observations, regressor,
                                            options)
             : RunFilterWithRegression(model, observations, regressor,
                                       options);
}

Result<MultiRegressionFilterResult> RunFilterWithRegressorsKernel(
    KalmanKernel kernel, const StateSpaceModel& model,
    const std::vector<double>& observations,
    const std::vector<std::vector<double>>& regressors,
    const KalmanOptions& options) {
  return ResolveToFixedKernel(kernel, model)
             ? RunFilterWithRegressorsFixed(model, observations, regressors,
                                            options)
             : RunFilterWithRegressors(model, observations, regressors,
                                       options);
}

}  // namespace mic::ssm
