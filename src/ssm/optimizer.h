// Derivative-free Nelder-Mead minimizer used to maximize the Kalman
// log-likelihood over the (log-)variance hyperparameters.

#ifndef MICTREND_SSM_OPTIMIZER_H_
#define MICTREND_SSM_OPTIMIZER_H_

#include <functional>
#include <vector>

#include "common/result.h"

namespace mic::ssm {

struct NelderMeadOptions {
  int max_evaluations = 500;
  /// Stop when the simplex function-value spread falls below this.
  double tolerance = 1e-8;
  /// Initial simplex step added to each coordinate of the start point.
  double initial_step = 0.5;
};

struct NelderMeadResult {
  std::vector<double> best_point;
  double best_value = 0.0;
  int evaluations = 0;
  bool converged = false;
};

/// Minimizes `objective` starting at `start`. The objective may return
/// +infinity to reject a point (e.g. a numerically failed Kalman run).
/// Fails only on empty input.
Result<NelderMeadResult> MinimizeNelderMead(
    const std::function<double(const std::vector<double>&)>& objective,
    const std::vector<double>& start, const NelderMeadOptions& options = {});

}  // namespace mic::ssm

#endif  // MICTREND_SSM_OPTIMIZER_H_
