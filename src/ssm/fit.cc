#include "ssm/fit.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "ssm/kalman_fixed.h"
#include "stats/metrics.h"

namespace mic::ssm {
namespace {

// Builds variances from the optimizer's log-variance point.
StructuralVariances VariancesFromPoint(const std::vector<double>& point,
                                       bool seasonal) {
  StructuralVariances variances;
  variances.observation = std::exp(point[0]);
  variances.level = std::exp(point[1]);
  variances.seasonal = seasonal ? std::exp(point[2]) : 0.0;
  return variances;
}

std::vector<std::vector<double>> BuildRegressors(
    const StructuralSpec& spec, int length) {
  std::vector<std::vector<double>> regressors;
  regressors.reserve(spec.interventions.size());
  for (const Intervention& intervention : spec.interventions) {
    regressors.push_back(InterventionRegressor(intervention, length));
  }
  return regressors;
}

}  // namespace

Status FitOptions::Validate() const {
  if (kernel != KalmanKernel::kAuto && kernel != KalmanKernel::kDynamic &&
      kernel != KalmanKernel::kFixed) {
    return Status::InvalidArgument(
        "fit.kernel must be auto, dynamic, or fixed");
  }
  if (restarts < 0) {
    return Status::InvalidArgument("fit.restarts must be >= 0");
  }
  if (optimizer.max_evaluations < 1) {
    return Status::InvalidArgument(
        "fit.optimizer.max_evaluations must be >= 1");
  }
  if (!(optimizer.tolerance > 0.0)) {
    return Status::InvalidArgument("fit.optimizer.tolerance must be > 0");
  }
  if (!(optimizer.initial_step > 0.0)) {
    return Status::InvalidArgument(
        "fit.optimizer.initial_step must be > 0");
  }
  return Status::OK();
}

double StructuralAic(double log_likelihood, const StructuralSpec& spec) {
  return -2.0 * log_likelihood +
         2.0 * static_cast<double>(spec.TotalParameters());
}

Result<FittedStructuralModel> FitStructuralModel(
    const std::vector<double>& series, const StructuralSpec& spec,
    const FitOptions& options) {
  MIC_RETURN_IF_ERROR(options.Validate());
  const int n = static_cast<int>(series.size());
  if (n < spec.NumDiffuseStates() + 2) {
    return Status::InvalidArgument(
        "series too short for spec " + spec.ToString() + ": " +
        std::to_string(n) + " observations");
  }
  if (options.kernel == KalmanKernel::kFixed &&
      !HasFixedKernel(static_cast<std::size_t>(spec.NumDiffuseStates()))) {
    return Status::InvalidArgument(
        "fit.kernel is fixed but state dimension " +
        std::to_string(spec.NumDiffuseStates()) +
        " has no compiled kernel");
  }
  for (const Intervention& intervention : spec.interventions) {
    if (intervention.change_point < 0 || intervention.change_point >= n) {
      return Status::InvalidArgument("change point outside the series");
    }
  }

  const std::vector<std::vector<double>> regressors =
      BuildRegressors(spec, n);
  const bool single = regressors.size() == 1;

  // Kalman passes are tallied locally (one fit runs serially) and folded
  // into the registry once at the end, keeping the hot loop allocation-
  // and lock-free.
  std::uint64_t kalman_passes = 0;

  // Scale-aware starting point for the log-variances.
  double variance = 0.0;
  {
    const double sd = stats::StdDev(series);
    variance = std::max(sd * sd, 1e-8);
  }
  std::vector<double> start;
  start.push_back(std::log(0.5 * variance));   // observation
  start.push_back(std::log(0.1 * variance));   // level
  if (spec.seasonal) {
    start.push_back(std::log(0.05 * variance));  // seasonal
  }

  auto log_likelihood_at =
      [&](const StructuralVariances& variances) -> Result<double> {
    ++kalman_passes;
    MIC_ASSIGN_OR_RETURN(StateSpaceModel model,
                         BuildStructuralModel(spec, variances));
    if (regressors.empty()) {
      MIC_ASSIGN_OR_RETURN(
          FilterResult filtered,
          RunFilterKernel(options.kernel, model, series));
      return filtered.log_likelihood;
    }
    if (single) {
      MIC_ASSIGN_OR_RETURN(RegressionFilterResult filtered,
                           RunFilterWithRegressionKernel(
                               options.kernel, model, series,
                               regressors.front()));
      return filtered.profiled_log_likelihood;
    }
    MIC_ASSIGN_OR_RETURN(
        MultiRegressionFilterResult filtered,
        RunFilterWithRegressorsKernel(options.kernel, model, series,
                                      regressors));
    return filtered.profiled_log_likelihood;
  };

  auto objective = [&](const std::vector<double>& point) -> double {
    // Guard against variance over/underflow driving the filter unstable.
    for (double value : point) {
      if (value > 50.0 || value < -50.0) {
        return std::numeric_limits<double>::infinity();
      }
    }
    auto log_likelihood =
        log_likelihood_at(VariancesFromPoint(point, spec.seasonal));
    if (!log_likelihood.ok()) {
      return std::numeric_limits<double>::infinity();
    }
    return -*log_likelihood;
  };

  MIC_ASSIGN_OR_RETURN(NelderMeadResult optimum,
                       MinimizeNelderMead(objective, start,
                                          options.optimizer));
  for (int restart = 0; restart < options.restarts; ++restart) {
    NelderMeadOptions restart_options = options.optimizer;
    restart_options.initial_step = options.optimizer.initial_step *
                                   0.5 / static_cast<double>(restart + 1);
    MIC_ASSIGN_OR_RETURN(
        NelderMeadResult again,
        MinimizeNelderMead(objective, optimum.best_point,
                           restart_options));
    again.evaluations += optimum.evaluations;
    if (again.best_value < optimum.best_value) {
      optimum = std::move(again);
    } else {
      optimum.evaluations = again.evaluations;
      break;  // Converged: the restart found nothing better.
    }
  }
  if (!std::isfinite(optimum.best_value)) {
    return Status::NumericError("likelihood optimization failed for " +
                                spec.ToString());
  }

  FittedStructuralModel fitted;
  fitted.spec = spec;
  fitted.variances = VariancesFromPoint(optimum.best_point, spec.seasonal);
  MIC_ASSIGN_OR_RETURN(fitted.model,
                       BuildStructuralModel(spec, fitted.variances));
  fitted.log_likelihood = -optimum.best_value;
  fitted.lambda_variance = std::numeric_limits<double>::infinity();
  if (single) {
    ++kalman_passes;
    MIC_ASSIGN_OR_RETURN(RegressionFilterResult filtered,
                         RunFilterWithRegressionKernel(
                             options.kernel, fitted.model, series,
                             regressors.front()));
    fitted.lambdas = {filtered.lambda};
    fitted.lambda = filtered.lambda;
    fitted.lambda_variance = filtered.lambda_variance;
  } else if (!regressors.empty()) {
    ++kalman_passes;
    MIC_ASSIGN_OR_RETURN(
        MultiRegressionFilterResult filtered,
        RunFilterWithRegressorsKernel(options.kernel, fitted.model, series,
                                      regressors));
    fitted.lambdas = filtered.lambdas;
    fitted.lambda = filtered.lambdas.empty() ? 0.0 : filtered.lambdas[0];
  }
  fitted.aic = StructuralAic(fitted.log_likelihood, spec);
  fitted.optimizer_evaluations = optimum.evaluations;
  fitted.kalman_passes = kalman_passes;
  if (options.metrics != nullptr) {
    obs::Increment(obs::GetCounter(options.metrics, "ssm.fits"));
    obs::Increment(
        obs::GetCounter(options.metrics, "ssm.nelder_mead_evaluations"),
        static_cast<std::uint64_t>(optimum.evaluations));
    obs::Increment(obs::GetCounter(options.metrics, "ssm.kalman_passes"),
                   kalman_passes);
  }
  return fitted;
}

Result<ForecastResult> ForecastStructural(
    const FittedStructuralModel& fitted, const std::vector<double>& series,
    int horizon) {
  if (horizon <= 0) {
    return Status::InvalidArgument("horizon must be positive");
  }
  const int n = static_cast<int>(series.size());
  if (!fitted.spec.has_intervention()) {
    return ForecastAhead(fitted.model, series, horizon);
  }
  // Remove the intervention contributions, forecast the base
  // components, then extend sum_k lambda_k w_kt over the horizon.
  const std::vector<std::vector<double>> regressors =
      BuildRegressors(fitted.spec, n + horizon);
  std::vector<double> adjusted(series);
  for (std::size_t k = 0; k < regressors.size(); ++k) {
    const double lambda =
        k < fitted.lambdas.size() ? fitted.lambdas[k] : 0.0;
    for (int t = 0; t < n; ++t) adjusted[t] -= lambda * regressors[k][t];
  }
  MIC_ASSIGN_OR_RETURN(ForecastResult base,
                       ForecastAhead(fitted.model, adjusted, horizon));
  for (int h = 0; h < horizon; ++h) {
    for (std::size_t k = 0; k < regressors.size(); ++k) {
      const double lambda =
          k < fitted.lambdas.size() ? fitted.lambdas[k] : 0.0;
      base.mean[h] += lambda * regressors[k][n + h];
    }
    // Single-intervention case: carry the lambda sampling uncertainty.
    if (regressors.size() == 1 && std::isfinite(fitted.lambda_variance)) {
      base.variance[h] += fitted.lambda_variance * regressors[0][n + h] *
                          regressors[0][n + h];
    }
  }
  return base;
}

}  // namespace mic::ssm
