// Information-criterion-driven change point detection (§V-B): exhaustive
// search (Algorithm 1, exact) and criterion binary search (Algorithm 2,
// approximate). Both end by comparing the best intervention model
// against the no-intervention model, so "no change" is a possible
// verdict; the procedure is hyperparameter-free, as the paper requires.
//
// Extensions beyond the paper's §V (its §IX future work):
//   - the intervention shape is selectable (slope / level / pulse);
//   - the criterion is pluggable (AIC as in the paper, or AICc / BIC);
//   - DetectMultiple() finds several breaks by greedy forward selection
//     over the multi-intervention structural model.

#ifndef MICTREND_SSM_CHANGEPOINT_H_
#define MICTREND_SSM_CHANGEPOINT_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "ssm/fit.h"

namespace mic::obs {
class Counter;
}  // namespace mic::obs

namespace mic::ssm {

/// Model selection criterion for the change point search.
enum class SelectionCriterion : int {
  kAic = 0,   // -2 logL + 2k                (the paper's choice)
  kAicc = 1,  // AIC + 2k(k+1) / (n - k - 1) (small-sample correction)
  kBic = 2,   // -2 logL + k log(n)
};

std::string_view SelectionCriterionName(SelectionCriterion criterion);

/// Generic criterion value; `n` is the number of likelihood
/// observations.
double InformationCriterion(double log_likelihood, int parameters, int n,
                            SelectionCriterion criterion);

/// Criterion memo shared ACROSS detector instances: maps
/// (series_key, candidate change point) to the fitted criterion and
/// model. A detector given one via ChangePointOptions consults it
/// before fitting and publishes what it fits, so Algorithm 1 and
/// Algorithm 2 runs over the same series (e.g. the Table V
/// exact-vs-approximate comparison, or repeated detections under one
/// cache key) share every candidate fit instead of redoing it.
///
/// The caller owns the keying discipline: series_key must fingerprint
/// the series AND every option that affects a fit (cache/fingerprint.h
/// provides the hash). Entries are mutex-guarded, so concurrent
/// detectors are memory-safe; hit/miss counters are deterministic only
/// under sequential use, which is how the pipeline uses it.
class SharedAicMemo {
 public:
  struct Entry {
    double criterion = 0.0;
    FittedStructuralModel model;
  };

  /// Returns the entry for (series_key, t_cp), or nullopt on miss.
  std::optional<Entry> Lookup(std::uint64_t series_key, int t_cp) const;

  /// Publishes an entry (first writer wins; later stores are no-ops,
  /// which keeps concurrent detectors agreeing on one fitted model).
  void Store(std::uint64_t series_key, int t_cp, const Entry& entry);

  /// Entries currently held (test hook).
  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::unordered_map<int, Entry>>
      entries_;
};

struct ChangePointOptions {
  /// Whether the underlying structural model carries a seasonal
  /// component (LL+S+I vs LL+I).
  bool seasonal = true;
  int period = 12;
  StructuralFitOptions fit;
  /// Candidate change points are
  /// [min_candidate, series length - min_tail_observations].
  int min_candidate = 1;
  /// Require at least this many observations at/after a candidate break
  /// so lambda is estimated from data rather than a single point. The
  /// paper's search allows 1 (every t); forecasting callers should
  /// require more.
  int min_tail_observations = 1;
  /// Extra criterion evidence required to declare a change: the
  /// intervention model must satisfy
  /// crit_best <= crit_no_change - aic_margin. The paper's plain AIC
  /// comparison is margin 0; a positive margin counteracts the
  /// select-the-minimum optimism of searching many candidates.
  double aic_margin = 0.0;
  /// Shapes of the searched intervention. The paper uses slope shifts
  /// only; adding kLevelShift makes the search also consider abrupt
  /// jumps and pick the better-fitting shape per candidate by the
  /// criterion.
  std::vector<InterventionKind> candidate_kinds = {
      InterventionKind::kSlopeShift};
  /// Model selection criterion (the paper uses AIC).
  SelectionCriterion criterion = SelectionCriterion::kAic;
  /// Optional cross-detector criterion memo (not owned). When set, a
  /// candidate already fitted under `series_key` — by this detector OR
  /// any earlier one sharing the memo — is answered without a fit and
  /// counted under changepoint.shared_memo_hits.
  SharedAicMemo* shared_memo = nullptr;
  /// Key the shared memo entries live under; must fingerprint the
  /// series and the fit-affecting options (see SharedAicMemo docs).
  std::uint64_t series_key = 0;
};

struct ChangePointResult {
  /// True when the best intervention model beats the no-intervention
  /// model on the criterion.
  bool has_change = false;
  /// Detected change point (0-based month), or kNoChangePoint.
  int change_point = kNoChangePoint;
  /// Shape of the winning intervention (meaningful when has_change).
  InterventionKind kind = InterventionKind::kSlopeShift;
  /// Criterion value of the winning model.
  double best_aic = 0.0;
  /// Criterion value of the model without the intervention component.
  double aic_without_intervention = 0.0;
  /// Distinct model fits performed (the cost driver of Table V).
  int fits_performed = 0;
  /// The winning fitted model.
  FittedStructuralModel best_model;
};

/// Result of the greedy multi-break search.
struct MultiChangePointResult {
  /// Accepted interventions in acceptance order.
  std::vector<Intervention> interventions;
  /// Criterion value of the final model.
  double best_aic = 0.0;
  /// Criterion value of the no-intervention model.
  double aic_without_intervention = 0.0;
  int fits_performed = 0;
  FittedStructuralModel best_model;
};

/// Detector over one series; memoizes the criterion per candidate so
/// exact and approximate runs on the same instance are counted fairly.
///
/// When options.fit.metrics is set the detector also reports
/// changepoint.aic_evaluations (criterion computed for a fresh
/// candidate, split per algorithm under changepoint.exact.* /
/// changepoint.approximate.*), changepoint.candidates_pruned (candidate
/// answered from the memo cache), and changepoint.multiple.fits. All
/// are pure functions of the series and options.
class ChangePointDetector {
 public:
  ChangePointDetector(std::vector<double> series,
                      const ChangePointOptions& options = {});

  /// Algorithm 1: evaluates every candidate in
  /// [options.min_candidate, T - min_tail] plus "no change".
  Result<ChangePointResult> DetectExact();

  /// Algorithm 2: criterion binary search over the candidate range plus
  /// the final comparison with "no change".
  Result<ChangePointResult> DetectApproximate();

  /// §IX extension: greedy forward selection of up to `max_breaks`
  /// interventions. Each round scans all candidates given the already
  /// accepted interventions and keeps the best if it improves the
  /// criterion by at least aic_margin.
  Result<MultiChangePointResult> DetectMultiple(int max_breaks);

  /// Criterion value as a function of the assumed change point — the
  /// curve of Fig. 5b. Runs the exact sweep as a side effect.
  Result<std::vector<double>> AicCurve();

  /// Distinct fits performed so far on this instance.
  int fits_performed() const { return fits_performed_; }

  /// The series this detector owns (as passed in, e.g. normalized).
  const std::vector<double>& series() const { return series_; }

  /// Clears the memo (e.g. to time exact and approximate independently).
  void ResetCache();

 private:
  /// Memoized criterion of the model with change point `t_cp`
  /// (kNoChangePoint = no intervention) under the BEST candidate kind.
  Result<double> AicAt(int t_cp);

  /// Criterion of a fitted model under the configured criterion.
  double CriterionOf(const FittedStructuralModel& fitted) const;

  /// Fits the structural model with the given interventions.
  Result<FittedStructuralModel> FitWith(
      const std::vector<Intervention>& interventions);

  Result<ChangePointResult> Finalize(int best_candidate);

  std::vector<double> series_;
  ChangePointOptions options_;
  /// Keyed by change point; holds the best criterion over the
  /// candidate kinds and the corresponding fitted model.
  std::unordered_map<int, double> aic_cache_;
  std::unordered_map<int, FittedStructuralModel> model_cache_;
  int fits_performed_ = 0;

  // Counter handles pre-resolved from options_.fit.metrics in the
  // constructor (all null when metrics are disabled); active_counter_
  // points at the per-algorithm evaluation counter of the search
  // currently running.
  obs::Counter* pruned_counter_ = nullptr;
  obs::Counter* shared_memo_counter_ = nullptr;
  obs::Counter* evaluations_counter_ = nullptr;
  obs::Counter* exact_counter_ = nullptr;
  obs::Counter* approximate_counter_ = nullptr;
  obs::Counter* multiple_counter_ = nullptr;
  obs::Counter* active_counter_ = nullptr;
};

}  // namespace mic::ssm

#endif  // MICTREND_SSM_CHANGEPOINT_H_
