// Information-criterion-driven change point detection (§V-B): exhaustive
// search (Algorithm 1, exact) and criterion binary search (Algorithm 2,
// approximate). Both end by comparing the best intervention model
// against the no-intervention model, so "no change" is a possible
// verdict; the procedure is hyperparameter-free, as the paper requires.
//
// Extensions beyond the paper's §V (its §IX future work):
//   - the intervention shape is selectable (slope / level / pulse);
//   - the criterion is pluggable (AIC as in the paper, or AICc / BIC);
//   - DetectMultiple() finds several breaks by greedy forward selection
//     over the multi-intervention structural model.

#ifndef MICTREND_SSM_CHANGEPOINT_H_
#define MICTREND_SSM_CHANGEPOINT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "ssm/fit.h"

namespace mic::obs {
class Counter;
}  // namespace mic::obs

namespace mic::ssm {

/// Model selection criterion for the change point search.
enum class SelectionCriterion : int {
  kAic = 0,   // -2 logL + 2k                (the paper's choice)
  kAicc = 1,  // AIC + 2k(k+1) / (n - k - 1) (small-sample correction)
  kBic = 2,   // -2 logL + k log(n)
};

std::string_view SelectionCriterionName(SelectionCriterion criterion);

/// Generic criterion value; `n` is the number of likelihood
/// observations.
double InformationCriterion(double log_likelihood, int parameters, int n,
                            SelectionCriterion criterion);

/// Criterion memo shared ACROSS detector instances: maps
/// (series_key, candidate change point) to the fitted criterion and
/// model. A detector given one via ChangePointOptions consults it
/// before fitting and publishes what it fits, so Algorithm 1 and
/// Algorithm 2 runs over the same series (e.g. the Table V
/// exact-vs-approximate comparison, or repeated detections under one
/// cache key) share every candidate fit instead of redoing it.
///
/// The caller owns the keying discipline: series_key must fingerprint
/// the series AND every option that affects a fit (cache/fingerprint.h
/// provides the hash). Entries are mutex-guarded, so concurrent
/// detectors are memory-safe; hit/miss counters are deterministic only
/// under sequential use, which is how the pipeline uses it.
class SharedAicMemo {
 public:
  struct Entry {
    double criterion = 0.0;
    FittedStructuralModel model;
  };

  /// Returns the entry for (series_key, t_cp), or nullopt on miss.
  std::optional<Entry> Lookup(std::uint64_t series_key, int t_cp) const;

  /// Presence probe without copying the entry (no counters either way;
  /// used by the search planner to decide what to request).
  bool Contains(std::uint64_t series_key, int t_cp) const;

  /// Publishes an entry (first writer wins; later stores are no-ops,
  /// which keeps concurrent detectors agreeing on one fitted model).
  void Store(std::uint64_t series_key, int t_cp, const Entry& entry);

  /// Entries currently held (test hook).
  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::unordered_map<int, Entry>>
      entries_;
};

struct ChangePointOptions {
  /// Whether the underlying structural model carries a seasonal
  /// component (LL+S+I vs LL+I).
  bool seasonal = true;
  int period = 12;
  FitOptions fit;
  /// Candidate change points are
  /// [min_candidate, series length - min_tail_observations].
  int min_candidate = 1;
  /// Require at least this many observations at/after a candidate break
  /// so lambda is estimated from data rather than a single point. The
  /// paper's search allows 1 (every t); forecasting callers should
  /// require more.
  int min_tail_observations = 1;
  /// Extra criterion evidence required to declare a change: the
  /// intervention model must satisfy
  /// crit_best <= crit_no_change - aic_margin. The paper's plain AIC
  /// comparison is margin 0; a positive margin counteracts the
  /// select-the-minimum optimism of searching many candidates.
  double aic_margin = 0.0;
  /// Shapes of the searched intervention. The paper uses slope shifts
  /// only; adding kLevelShift makes the search also consider abrupt
  /// jumps and pick the better-fitting shape per candidate by the
  /// criterion.
  std::vector<InterventionKind> candidate_kinds = {
      InterventionKind::kSlopeShift};
  /// Model selection criterion (the paper uses AIC).
  SelectionCriterion criterion = SelectionCriterion::kAic;
  /// Optional cross-detector criterion memo (not owned). When set, a
  /// candidate already fitted under `series_key` — by this detector OR
  /// any earlier one sharing the memo — is answered without a fit and
  /// counted under changepoint.shared_memo_hits.
  SharedAicMemo* shared_memo = nullptr;
  /// Key the shared memo entries live under; must fingerprint the
  /// series and the fit-affecting options (see SharedAicMemo docs).
  std::uint64_t series_key = 0;
};

struct ChangePointResult {
  /// True when the best intervention model beats the no-intervention
  /// model on the criterion.
  bool has_change = false;
  /// Detected change point (0-based month), or kNoChangePoint.
  int change_point = kNoChangePoint;
  /// Shape of the winning intervention (meaningful when has_change).
  InterventionKind kind = InterventionKind::kSlopeShift;
  /// Criterion value of the winning model.
  double best_aic = 0.0;
  /// Criterion value of the model without the intervention component.
  double aic_without_intervention = 0.0;
  /// Distinct model fits performed (the cost driver of Table V).
  int fits_performed = 0;
  /// The winning fitted model.
  FittedStructuralModel best_model;
};

/// Output of one candidate fit, produced off-detector (possibly on a
/// worker thread) and folded back in by SupplyEvaluation. The counter
/// deltas are carried here instead of being written to the metrics
/// registry at fit time, so a speculative evaluation that the serial
/// algorithm would never have performed (e.g. the sibling of a failed
/// bisection endpoint) can be discarded without a trace.
struct CandidateEvaluation {
  /// Criterion of the best candidate kind (the detector's AicAt value).
  double criterion = 0.0;
  /// The criterion-best fitted model.
  FittedStructuralModel model;
  /// Successful model fits this evaluation performed.
  int fits_performed = 0;
  /// Deferred ssm.* metric deltas (successful fits only, matching what
  /// FitStructuralModel would have recorded itself).
  std::uint64_t nelder_mead_evaluations = 0;
  std::uint64_t kalman_passes = 0;
};

/// Fits candidate `t_cp` (kNoChangePoint = the no-intervention model)
/// exactly as ChangePointDetector::AicAt would: one fit per candidate
/// kind, keeping the criterion-best. Pure function of its arguments —
/// no detector state, no shared memo, no metrics registry writes
/// (options.fit.metrics is ignored; deltas come back in the result) —
/// so concurrent calls over different candidates are safe and
/// bit-deterministic.
Result<CandidateEvaluation> EvaluateCandidate(
    const std::vector<double>& series, const ChangePointOptions& options,
    int t_cp);

/// Result of the greedy multi-break search.
struct MultiChangePointResult {
  /// Accepted interventions in acceptance order.
  std::vector<Intervention> interventions;
  /// Criterion value of the final model.
  double best_aic = 0.0;
  /// Criterion value of the no-intervention model.
  double aic_without_intervention = 0.0;
  int fits_performed = 0;
  FittedStructuralModel best_model;
};

/// Detector over one series; memoizes the criterion per candidate so
/// exact and approximate runs on the same instance are counted fairly.
///
/// When options.fit.metrics is set the detector also reports
/// changepoint.aic_evaluations (criterion computed for a fresh
/// candidate, split per algorithm under changepoint.exact.* /
/// changepoint.approximate.*), changepoint.candidates_pruned (candidate
/// answered from the memo cache), and changepoint.multiple.fits. All
/// are pure functions of the series and options.
class ChangePointDetector {
 public:
  ChangePointDetector(std::vector<double> series,
                      const ChangePointOptions& options = {});

  /// Algorithm 1: evaluates every candidate in
  /// [options.min_candidate, T - min_tail] plus "no change".
  Result<ChangePointResult> DetectExact();

  /// Algorithm 2: criterion binary search over the candidate range plus
  /// the final comparison with "no change".
  Result<ChangePointResult> DetectApproximate();

  /// §IX extension: greedy forward selection of up to `max_breaks`
  /// interventions. Each round scans all candidates given the already
  /// accepted interventions and keeps the best if it improves the
  /// criterion by at least aic_margin.
  Result<MultiChangePointResult> DetectMultiple(int max_breaks);

  /// Criterion value as a function of the assumed change point — the
  /// curve of Fig. 5b. Runs the exact sweep as a side effect.
  Result<std::vector<double>> AicCurve();

  // --- Resumable candidate-level search -----------------------------
  //
  // DetectExact / DetectApproximate are thin serial drivers over this
  // API, which splits a detection into (a) planning which candidates
  // need a model fit and (b) consuming fit results — so a caller can
  // run step (b)'s fits for MANY detectors through one ParallelFor
  // batch. The protocol:
  //
  //   detector.BeginSearch(approximate);
  //   while (!detector.SearchDone()) {
  //     for (int t : detector.PendingCandidates())   // evaluate freely
  //       evals[t] = EvaluateCandidate(detector.series(), options, t);
  //     for (int t : pending order)                  // fold back in
  //       detector.SupplyEvaluation(t, std::move(evals[t]));
  //   }
  //   result = detector.FinishSearch();
  //
  // All detector-side effects (fit counts, metrics, memo publication)
  // happen inside SupplyEvaluation/FinishSearch on the supplying
  // thread, in the exact order the serial algorithms would have
  // produced them — a search driven this way is bit- and
  // counter-identical to DetectExact / DetectApproximate, at any
  // evaluation parallelism.

  /// Starts an exact (Algorithm 1) or approximate (Algorithm 2) search.
  void BeginSearch(bool approximate);

  /// Candidates the search cannot answer from its caches (in request
  /// order; may include kNoChangePoint). Empty while SearchDone().
  std::vector<int> PendingCandidates() const;

  /// Feeds back the evaluation of one pending candidate. Evaluations
  /// for candidates that are no longer pending (e.g. after an
  /// approximate search aborted on a failed endpoint) are discarded.
  void SupplyEvaluation(int t_cp, Result<CandidateEvaluation> evaluation);

  /// True when no more evaluations are needed.
  bool SearchDone() const;

  /// Completes the search and returns the detection result (or the
  /// error the serial algorithm would have returned).
  Result<ChangePointResult> FinishSearch();

  /// Distinct fits performed so far on this instance.
  int fits_performed() const { return fits_performed_; }

  /// The series this detector owns (as passed in, e.g. normalized).
  const std::vector<double>& series() const { return series_; }

  /// Clears the memo (e.g. to time exact and approximate independently).
  void ResetCache();

 private:
  enum class SearchPhase {
    kIdle = 0,
    kExactSweep,   // waiting on the round-0 batch of sweep candidates
    kBisect,       // Algorithm 2 halving loop
    kFinalEval,    // Algorithm 2 post-loop left/right comparison
    kFinalize,     // all candidate values resolved; FinishSearch ready
    kFailed,       // a required evaluation failed; FinishSearch errors
  };

  /// Memoized criterion of the model with change point `t_cp`
  /// (kNoChangePoint = no intervention) under the BEST candidate kind.
  Result<double> AicAt(int t_cp);

  /// The search-machine twin of AicAt: answers from the caches (with
  /// the same counters AicAt would bump) or consumes a staged
  /// evaluation (bumping the evaluation counters and folding in the
  /// deferred fit metrics, exactly as the serial fit-at-call-site
  /// would). Returns nullopt — after queueing the candidate on
  /// pending_ — when a fit is needed.
  std::optional<Result<double>> MachineAicAt(int t_cp);

  /// Whether a search would have to fit `t_cp` (no cache, no memo).
  /// Counter-neutral, unlike MachineAicAt.
  bool NeedsEvaluation(int t_cp) const;

  /// Queues a candidate for evaluation (deduplicated).
  void Request(int t_cp);

  /// Runs the search state machine forward until it blocks on pending
  /// evaluations or reaches kFinalize/kFailed.
  void AdvanceSearch();

  /// Aborts the search with `failure` (the serial algorithms propagate
  /// the first evaluation error).
  void FailSearch(const Status& failure);

  /// Serial driver: evaluates every pending candidate inline until the
  /// search completes (what DetectExact/DetectApproximate run on).
  Result<ChangePointResult> DriveSearch();

  /// Criterion of a fitted model under the configured criterion.
  double CriterionOf(const FittedStructuralModel& fitted) const;

  /// Fits the structural model with the given interventions.
  Result<FittedStructuralModel> FitWith(
      const std::vector<Intervention>& interventions);

  Result<ChangePointResult> Finalize(int best_candidate);

  std::vector<double> series_;
  ChangePointOptions options_;
  /// Keyed by change point; holds the best criterion over the
  /// candidate kinds and the corresponding fitted model.
  std::unordered_map<int, double> aic_cache_;
  std::unordered_map<int, FittedStructuralModel> model_cache_;
  int fits_performed_ = 0;

  // --- Search-machine state (live between BeginSearch/FinishSearch).
  SearchPhase phase_ = SearchPhase::kIdle;
  int search_n_ = 0;  // candidate range is [min_candidate, search_n_)
  std::vector<int> pending_;
  std::unordered_set<int> pending_set_;
  /// Supplied-but-not-yet-consumed evaluations.
  std::map<int, Result<CandidateEvaluation>> staged_;
  /// Candidates whose evaluation failed this search (status kept so a
  /// later query in the same search returns the serial error).
  std::unordered_map<int, Status> failed_this_search_;
  /// Exact sweep: resolved criterion per candidate (failures absent);
  /// ordered so the best-candidate scan runs in ascending t.
  std::map<int, double> sweep_values_;
  // Algorithm 2 state.
  int bisect_left_ = 0;
  int bisect_right_ = 0;
  std::optional<double> bisect_left_value_;
  std::optional<double> bisect_right_value_;
  int best_candidate_ = kNoChangePoint;
  Status search_failure_ = Status::OK();

  // Counter handles pre-resolved from options_.fit.metrics in the
  // constructor (all null when metrics are disabled); active_counter_
  // points at the per-algorithm evaluation counter of the search
  // currently running.
  obs::Counter* pruned_counter_ = nullptr;
  obs::Counter* shared_memo_counter_ = nullptr;
  obs::Counter* evaluations_counter_ = nullptr;
  obs::Counter* exact_counter_ = nullptr;
  obs::Counter* approximate_counter_ = nullptr;
  obs::Counter* multiple_counter_ = nullptr;
  obs::Counter* active_counter_ = nullptr;
};

}  // namespace mic::ssm

#endif  // MICTREND_SSM_CHANGEPOINT_H_
