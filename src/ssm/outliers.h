// Iterative outlier detection: months whose standardized irregular
// exceeds a threshold are absorbed by pulse interventions and the model
// is refitted — the explicit counterpart of the paper's observation
// that spikes (e.g. the 2014-15 influenza outbreak) are "treated as
// outliers for better fitting" by the irregular term.

#ifndef MICTREND_SSM_OUTLIERS_H_
#define MICTREND_SSM_OUTLIERS_H_

#include <vector>

#include "common/result.h"
#include "ssm/decompose.h"
#include "ssm/fit.h"

namespace mic::ssm {

struct OutlierDetectionOptions {
  /// Base model shape (the intervention list of `base_spec` is kept and
  /// extended with pulses).
  StructuralSpec base_spec;
  FitOptions fit;
  /// A month is an outlier when |irregular| exceeds this many sample
  /// SDs of the irregular component.
  double threshold_sd = 3.0;
  /// Stop after this many pulses.
  int max_outliers = 3;
};

struct OutlierReport {
  /// Detected outlier months in detection order.
  std::vector<int> outlier_months;
  /// Pulse magnitudes aligned with outlier_months.
  std::vector<double> magnitudes;
  /// Model refitted with the pulse interventions included.
  FittedStructuralModel final_model;
  /// Decomposition under the final model.
  Decomposition decomposition;
};

/// Runs the detect-pulse-refit loop on `series`.
Result<OutlierReport> DetectOutliers(
    const std::vector<double>& series,
    const OutlierDetectionOptions& options = {});

}  // namespace mic::ssm

#endif  // MICTREND_SSM_OUTLIERS_H_
