// Kalman filter, Durbin-Koopman disturbance smoother, and forecasting
// for the univariate-observation linear Gaussian model of model.h.
//
// Missing observations (NaN) are supported: the filter skips the update
// step and the likelihood contribution at those times, which is also how
// out-of-sample forecasting is implemented.

#ifndef MICTREND_SSM_KALMAN_H_
#define MICTREND_SSM_KALMAN_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "la/matrix.h"
#include "ssm/model.h"

namespace mic::ssm {

/// Which filter implementation a fit runs on. The dynamic path works
/// for any state dimension; the fixed path (kalman_fixed.h) is a
/// compile-time specialization for the structural model's small fixed
/// dimensions (flat stack arrays, no heap) that is bit-exact with the
/// dynamic path. kAuto picks fixed whenever the model's dimension has a
/// compiled kernel.
enum class KalmanKernel : int {
  kAuto = 0,
  kDynamic = 1,
  kFixed = 2,
};

std::string_view KalmanKernelName(KalmanKernel kernel);

/// Output of one filtering pass.
struct FilterResult {
  /// Gaussian log-likelihood excluding diffuse prediction errors: terms
  /// whose variance F_t still carries the big-kappa initialization (the
  /// state observed at t was not yet identified) are dropped, the
  /// standard big-kappa approximation to the exact diffuse likelihood.
  /// This also covers the intervention coefficient, which only becomes
  /// identified at the change point itself.
  double log_likelihood = 0.0;
  /// Non-missing observations contributing to the likelihood.
  int effective_observations = 0;
  /// Prediction errors dropped as diffuse.
  int skipped_diffuse = 0;

  /// One-step-ahead predictions E[x_t | x_{1..t-1}] and variances F_t.
  std::vector<double> predictions;
  std::vector<double> prediction_variances;
  /// Innovations v_t (NaN at missing times).
  std::vector<double> innovations;

  // Stored only when KalmanOptions::store_states is set.
  std::vector<la::Vector> predicted_states;       // a_{t|t-1}
  std::vector<la::Matrix> predicted_covariances;  // P_{t|t-1}
  /// State mean/covariance after the final time step (a_{n+1|n}), the
  /// starting point for forecasting.
  la::Vector final_state;
  la::Matrix final_covariance;
};

/// Per-thread scratch buffers for the filter hot loops. A filter pass
/// over a dim-d state touches ~6 d x d temporaries per step; borrowing
/// them from a thread_local workspace instead of allocating turns the
/// steady-state cost into pure arithmetic. All in-place kernels used
/// with these buffers preserve the operator form's accumulation order,
/// so workspace reuse never changes a bit of any filter output.
///
/// The filter functions borrow the workspace internally — callers never
/// pass one. ThreadLocal() is exposed for tests and for the `acquires`
/// pass counter.
class KalmanWorkspace {
 public:
  /// This thread's workspace (created on first use).
  static KalmanWorkspace& ThreadLocal();

  /// Filter passes that borrowed this workspace (test hook).
  std::uint64_t acquires = 0;

  // Scratch buffers (internal to the filter implementations).
  la::Vector z, pz, steady_pz, state, state_aux, filtered, filtered_aux,
      tmp_vector;
  la::Matrix rqr, transition_transpose, covariance, filtered_covariance,
      next_covariance, tmp_matrix, tmp_matrix2;
};

struct KalmanOptions {
  /// Store per-step predicted states (needed by the smoother).
  bool store_states = false;
  /// Prediction errors with F_t above this are treated as diffuse and
  /// excluded from the likelihood. Series should be scaled well below
  /// this (the trend pipeline normalizes by the sample SD).
  double diffuse_variance_threshold = kDiffuseKappa * 1e-4;
  /// For time-invariant models (no time-varying Z) the covariance
  /// recursion converges to a steady state; once the predicted
  /// covariance stops changing the filter freezes it and skips the
  /// O(n^3) covariance updates. Exact to within the tolerance below.
  bool allow_steady_state = true;
  /// Relative max-abs change of P under which it is declared steady.
  double steady_state_tolerance = 1e-12;
};

/// Runs the Kalman filter over `observations`. Fails on invalid model
/// dimensions or a non-positive prediction variance.
Result<FilterResult> RunFilter(const StateSpaceModel& model,
                               const std::vector<double>& observations,
                               const KalmanOptions& options = {});

/// Filter pass with a deterministic regressor profiled out by GLS in
/// innovation space (augmented Kalman filter): for the observation
/// equation x_t = signal_t + lambda * w_t + eps_t, the regressor series
/// w is passed through the same filter gains, and
///   lambda_hat = sum(v_w v_x / F) / sum(v_w^2 / F)
/// maximizes the likelihood. Every likelihood term used is shared with
/// the plain filter, which keeps AIC comparisons against the
/// no-regressor model exact (no dropped-term asymmetry).
struct RegressionFilterResult {
  /// Plain filter output on x (log-likelihood without the regressor).
  FilterResult base;
  /// GLS estimate of the regression coefficient (0 if unidentified).
  double lambda = 0.0;
  /// Sampling variance of lambda_hat given the model variances
  /// (infinity when unidentified).
  double lambda_variance = 0.0;
  /// max_lambda log-likelihood.
  double profiled_log_likelihood = 0.0;
  /// Whether the regressor was identifiable from the usable terms.
  bool identified = false;
};

Result<RegressionFilterResult> RunFilterWithRegression(
    const StateSpaceModel& model, const std::vector<double>& observations,
    const std::vector<double>& regressor, const KalmanOptions& options = {});

/// Multi-regressor generalization: x_t = signal_t + sum_k lambda_k
/// w_kt + eps_t. The coefficient vector solves the GLS normal equations
/// in innovation space; all regressors share the single covariance
/// recursion, so the cost grows only by O(K n) state-mean updates.
struct MultiRegressionFilterResult {
  FilterResult base;
  /// GLS estimates (size K).
  std::vector<double> lambdas;
  /// max_lambda log-likelihood.
  double profiled_log_likelihood = 0.0;
  /// Whether the normal equations were solvable (full column rank).
  bool identified = false;
};

Result<MultiRegressionFilterResult> RunFilterWithRegressors(
    const StateSpaceModel& model, const std::vector<double>& observations,
    const std::vector<std::vector<double>>& regressors,
    const KalmanOptions& options = {});

/// Output of the smoothing pass: E[a_t | all observations].
struct SmootherResult {
  std::vector<la::Vector> smoothed_states;
  /// Smoothed state variances (diagonals of V_t).
  std::vector<la::Vector> smoothed_variances;
};

/// Durbin-Koopman backward smoother; runs the filter internally.
Result<SmootherResult> RunSmoother(const StateSpaceModel& model,
                                   const std::vector<double>& observations);

/// Point forecasts with variances for `horizon` steps past the end of
/// `observations`. Time-varying Z entries must extend at least
/// observations.size() + horizon steps (the structural builder arranges
/// this for the intervention regressor).
struct ForecastResult {
  std::vector<double> mean;
  std::vector<double> variance;
};

Result<ForecastResult> ForecastAhead(const StateSpaceModel& model,
                                     const std::vector<double>& observations,
                                     int horizon);

}  // namespace mic::ssm

#endif  // MICTREND_SSM_KALMAN_H_
