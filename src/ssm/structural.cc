#include "ssm/structural.h"

#include <cmath>
#include <string>

namespace mic::ssm {

std::string_view InterventionKindName(InterventionKind kind) {
  switch (kind) {
    case InterventionKind::kSlopeShift:
      return "slope";
    case InterventionKind::kLevelShift:
      return "level";
    case InterventionKind::kPulse:
      return "pulse";
  }
  return "?";
}

std::string_view SeasonalFormName(SeasonalForm form) {
  switch (form) {
    case SeasonalForm::kDummy:
      return "dummy";
    case SeasonalForm::kTrigonometric:
      return "trig";
  }
  return "?";
}

std::string StructuralSpec::ToString() const {
  std::string out = "LL";
  if (seasonal) {
    out += "+S";
    if (seasonal_form == SeasonalForm::kTrigonometric) {
      out += "(trig:" + std::to_string(harmonics) + ")";
    }
  }
  for (const Intervention& intervention : interventions) {
    out += "+I(";
    out += InterventionKindName(intervention.kind);
    out += "@" + std::to_string(intervention.change_point) + ")";
  }
  return out;
}

std::vector<double> SlopeShiftRegressor(int change_point, int length) {
  std::vector<double> w(length, 0.0);
  if (change_point == kNoChangePoint) return w;
  for (int t = 0; t < length; ++t) {
    if (t >= change_point) {
      w[t] = static_cast<double>(t - change_point + 1);
    }
  }
  return w;
}

std::vector<double> InterventionRegressor(const Intervention& intervention,
                                          int length) {
  switch (intervention.kind) {
    case InterventionKind::kSlopeShift:
      return SlopeShiftRegressor(intervention.change_point, length);
    case InterventionKind::kLevelShift: {
      std::vector<double> w(length, 0.0);
      if (intervention.change_point == kNoChangePoint) return w;
      for (int t = intervention.change_point; t < length; ++t) {
        if (t >= 0) w[t] = 1.0;
      }
      return w;
    }
    case InterventionKind::kPulse: {
      std::vector<double> w(length, 0.0);
      if (intervention.change_point >= 0 &&
          intervention.change_point < length) {
        w[intervention.change_point] = 1.0;
      }
      return w;
    }
  }
  return std::vector<double>(length, 0.0);
}

StructuralLayout LayoutFor(const StructuralSpec& spec) {
  StructuralLayout layout;
  layout.level_index = 0;
  layout.seasonal_count =
      static_cast<std::size_t>(spec.NumSeasonalStates());
  layout.state_dim = 1 + layout.seasonal_count;
  return layout;
}

double SeasonalContribution(const StructuralSpec& spec,
                            const StructuralLayout& layout,
                            const la::Vector& state) {
  if (!spec.seasonal) return 0.0;
  if (spec.seasonal_form == SeasonalForm::kDummy) {
    return state[layout.seasonal_index];
  }
  // Trigonometric: the observed seasonal is the sum of each harmonic's
  // leading (cosine) state.
  double total = 0.0;
  std::size_t offset = layout.seasonal_index;
  for (int j = 1; j <= spec.harmonics; ++j) {
    total += state[offset];
    offset += (2 * j == spec.period) ? 1 : 2;
  }
  return total;
}

Result<StateSpaceModel> BuildStructuralModel(
    const StructuralSpec& spec, const StructuralVariances& variances) {
  if (spec.period < 2) {
    return Status::InvalidArgument("seasonal period must be >= 2");
  }
  if (spec.seasonal &&
      spec.seasonal_form == SeasonalForm::kTrigonometric &&
      (spec.harmonics < 1 || 2 * spec.harmonics > spec.period)) {
    return Status::InvalidArgument(
        "harmonics must be in [1, period/2]");
  }
  for (const Intervention& intervention : spec.interventions) {
    if (intervention.change_point < 0) {
      return Status::InvalidArgument("change point must be non-negative");
    }
  }
  if (!(variances.observation > 0.0)) {
    return Status::InvalidArgument("observation variance must be positive");
  }
  if (variances.level < 0.0 || variances.seasonal < 0.0) {
    return Status::InvalidArgument("state variances must be non-negative");
  }

  const StructuralLayout layout = LayoutFor(spec);
  const std::size_t dim = layout.state_dim;
  const bool trigonometric =
      spec.seasonal && spec.seasonal_form == SeasonalForm::kTrigonometric;
  // Dummy seasonality carries one shared disturbance; trigonometric
  // seasonality gives each seasonal state its own (same variance).
  const std::size_t num_noise =
      1 + (spec.seasonal ? (trigonometric ? layout.seasonal_count : 1)
                         : 0);

  StateSpaceModel model;
  model.transition = la::Matrix(dim, dim);
  model.selection = la::Matrix(dim, num_noise);
  model.state_noise = la::Matrix(num_noise, num_noise);
  model.observation = la::Vector(dim);
  model.initial_state = la::Vector(dim);
  model.initial_covariance = la::Matrix(dim, dim);
  model.observation_variance = variances.observation;

  // Level: random walk.
  model.transition(layout.level_index, layout.level_index) = 1.0;
  model.observation[layout.level_index] = 1.0;
  model.selection(layout.level_index, 0) = 1.0;
  model.state_noise(0, 0) = variances.level;

  if (spec.seasonal && !trigonometric) {
    // Dummy-variable form with period-1 states:
    // gamma_{t+1} = -(gamma_t + ... + gamma_{t-period+2}) + omega_t.
    const std::size_t s0 = layout.seasonal_index;
    const std::size_t count = static_cast<std::size_t>(spec.period - 1);
    for (std::size_t j = 0; j < count; ++j) {
      model.transition(s0, s0 + j) = -1.0;
    }
    for (std::size_t j = 1; j < count; ++j) {
      model.transition(s0 + j, s0 + j - 1) = 1.0;
    }
    model.observation[s0] = 1.0;
    model.selection(s0, 1) = 1.0;
    model.state_noise(1, 1) = variances.seasonal;
  } else if (trigonometric) {
    // Stochastic trigonometric cycles: per harmonic j,
    // [g; g*]_{t+1} = rotation(2 pi j / period) [g; g*]_t + noise.
    constexpr double kPi = 3.14159265358979323846;
    std::size_t offset = layout.seasonal_index;
    std::size_t noise_index = 1;
    for (int j = 1; j <= spec.harmonics; ++j) {
      const double frequency =
          2.0 * kPi * static_cast<double>(j) /
          static_cast<double>(spec.period);
      if (2 * j == spec.period) {
        // Nyquist: single state, g_{t+1} = -g_t + noise.
        model.transition(offset, offset) = -1.0;
        model.observation[offset] = 1.0;
        model.selection(offset, noise_index) = 1.0;
        model.state_noise(noise_index, noise_index) = variances.seasonal;
        offset += 1;
        noise_index += 1;
      } else {
        const double c = std::cos(frequency);
        const double s = std::sin(frequency);
        model.transition(offset, offset) = c;
        model.transition(offset, offset + 1) = s;
        model.transition(offset + 1, offset) = -s;
        model.transition(offset + 1, offset + 1) = c;
        model.observation[offset] = 1.0;  // Only the cosine state is
                                          // observed.
        model.selection(offset, noise_index) = 1.0;
        model.selection(offset + 1, noise_index + 1) = 1.0;
        model.state_noise(noise_index, noise_index) = variances.seasonal;
        model.state_noise(noise_index + 1, noise_index + 1) =
            variances.seasonal;
        offset += 2;
        noise_index += 2;
      }
    }
  }

  // Approximate diffuse initialization for every state.
  for (std::size_t i = 0; i < dim; ++i) {
    model.initial_covariance(i, i) = kDiffuseKappa;
  }
  model.num_diffuse = spec.NumDiffuseStates();
  return model;
}

}  // namespace mic::ssm
